// Seeded bug: unguarded publish from a goroutine. The producer goroutine
// writes data and ready with no lock while the main thread reads them under
// mu — the classic broken publication pattern.
package publish

import "sync"

var mu sync.Mutex
var ready int
var data int

func produce() {
	data = 42
	ready = 1
}

func consume() int {
	mu.Lock()
	r := ready
	d := data
	mu.Unlock()
	if r == 1 {
		return d
	}
	return 0
}

func run() int {
	go produce()
	return consume()
}
