// Seeded bug: a racy snapshot read between spawn and join. Workers update
// total under mu; run reads it with no lock while they are still running.
// The read after wg.Wait is single-threaded again and is not a defect.
package stats

import "sync"

var mu sync.Mutex
var total int

func worker(n int, wg *sync.WaitGroup) {
	mu.Lock()
	total += n
	mu.Unlock()
	wg.Done()
}

func run() int {
	var wg sync.WaitGroup
	wg.Add(2)
	go worker(1, &wg)
	go worker(2, &wg)
	snapshot := total
	wg.Wait()
	return total + snapshot
}
