// Clean variant of cache_rwmutex: every reader takes the read lock.
package cache

import "sync"

type Cache struct {
	mu  sync.RWMutex
	val int
}

func (c *Cache) Put(v int) {
	c.mu.Lock()
	c.val = v
	c.mu.Unlock()
}

func (c *Cache) GetSlow() int {
	c.mu.RLock()
	v := c.val
	c.mu.RUnlock()
	return v
}

func (c *Cache) GetFast() int {
	c.mu.RLock()
	v := c.val
	c.mu.RUnlock()
	return v
}

func run() int {
	c := &Cache{}
	go c.Put(1)
	return c.GetSlow() + c.GetFast()
}
