// Seeded bug: double-guarded field with a divergent reader. Writers protect
// Pair.f with both mu1 and mu2 (SetBoth) or just mu1 (Bump), but Peek reads
// it under mu2 alone — no single lock covers every access.
package pair

import "sync"

type Pair struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
	f   int
}

func (p *Pair) SetBoth(v int) {
	p.mu1.Lock()
	p.mu2.Lock()
	p.f = v
	p.mu2.Unlock()
	p.mu1.Unlock()
}

func (p *Pair) Bump() {
	p.mu1.Lock()
	p.f++
	p.mu1.Unlock()
}

// Peek holds the wrong half of the pair.
func (p *Pair) Peek() int {
	p.mu2.Lock()
	v := p.f
	p.mu2.Unlock()
	return v
}

func run() int {
	p := &Pair{}
	go p.SetBoth(1)
	go p.Bump()
	return p.Peek()
}
