// Clean variant of order_inversion: both paths acquire mu1 before mu2.
package order

import "sync"

var mu1 sync.Mutex
var mu2 sync.Mutex
var x int
var y int

func moveXY(v int) {
	mu1.Lock()
	mu2.Lock()
	x = x - v
	y = y + v
	mu2.Unlock()
	mu1.Unlock()
}

func moveYX(v int) {
	mu1.Lock()
	mu2.Lock()
	y = y - v
	x = x + v
	mu2.Unlock()
	mu1.Unlock()
}

func run() {
	go moveXY(1)
	moveYX(1)
}
