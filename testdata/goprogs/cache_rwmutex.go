// Seeded bug: a reader that skips the read lock. Put writes Cache.val under
// the write lock and GetSlow reads it under RLock, but GetFast reads it with
// nothing held.
package cache

import "sync"

type Cache struct {
	mu  sync.RWMutex
	val int
}

func (c *Cache) Put(v int) {
	c.mu.Lock()
	c.val = v
	c.mu.Unlock()
}

func (c *Cache) GetSlow() int {
	c.mu.RLock()
	v := c.val
	c.mu.RUnlock()
	return v
}

// GetFast trades correctness for speed.
func (c *Cache) GetFast() int {
	return c.val
}

func run() int {
	c := &Cache{}
	go c.Put(1)
	return c.GetSlow() + c.GetFast()
}
