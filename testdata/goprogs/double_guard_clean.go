// Clean variant of double_guard: mu1 alone guards Pair.f everywhere; mu2
// still exists for unrelated state but never guards f.
package pair

import "sync"

type Pair struct {
	mu1 sync.Mutex
	f   int
}

func (p *Pair) SetBoth(v int) {
	p.mu1.Lock()
	p.f = v
	p.mu1.Unlock()
}

func (p *Pair) Bump() {
	p.mu1.Lock()
	p.f++
	p.mu1.Unlock()
}

func (p *Pair) Peek() int {
	p.mu1.Lock()
	v := p.f
	p.mu1.Unlock()
	return v
}

func run() int {
	p := &Pair{}
	go p.SetBoth(1)
	go p.Bump()
	return p.Peek()
}
