// Seeded bug: lock-order inversion. moveXY nests mu2 inside mu1 while
// moveYX nests mu1 inside mu2; run them concurrently and they can deadlock.
package order

import "sync"

var mu1 sync.Mutex
var mu2 sync.Mutex
var x int
var y int

func moveXY(v int) {
	mu1.Lock()
	mu2.Lock()
	x = x - v
	y = y + v
	mu2.Unlock()
	mu1.Unlock()
}

func moveYX(v int) {
	mu2.Lock()
	mu1.Lock()
	y = y - v
	x = x + v
	mu1.Unlock()
	mu2.Unlock()
}

func run() {
	go moveXY(1)
	moveYX(1)
}
