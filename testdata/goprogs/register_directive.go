// Seeded bug: an access outside any atomic section in a directive-annotated
// package. record and snapshot run their bodies in //lockinfer:atomic
// sections (locks chosen by the inference), but drain mutates the registers
// bare.
package register

import "sync"

var regCount int
var regTotal int

func record(v int) {
	//lockinfer:atomic
	{
		regCount++
		regTotal += v
	}
}

func snapshot() int {
	var v int
	//lockinfer:atomic
	{
		v = regCount + regTotal
	}
	return v
}

// drain skips the directive.
func drain() {
	regCount = 0
	regTotal = 0
}

func spin(wg *sync.WaitGroup) {
	record(3)
	record(4)
	wg.Done()
}

func run() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go spin(&wg)
	drain()
	wg.Wait()
	return snapshot()
}
