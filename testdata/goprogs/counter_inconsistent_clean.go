// Clean variant of counter_inconsistent: every access to Counter.n holds
// Counter.mu.
package counter

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

func run() int {
	c := &Counter{}
	go c.Inc()
	go c.Inc()
	c.Reset()
	return c.Get()
}
