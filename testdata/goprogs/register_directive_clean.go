// Clean variant of register_directive, and the end-to-end showcase: every
// register access sits in a //lockinfer:atomic section, so the pipeline
// infers a lock plan for each section and the audit comes back clean.
package register

import "sync"

var regCount int
var regTotal int

func record(v int) {
	//lockinfer:atomic
	{
		regCount++
		regTotal += v
	}
}

func snapshot() int {
	var v int
	//lockinfer:atomic
	{
		v = regCount + regTotal
	}
	return v
}

func drain() {
	//lockinfer:atomic
	{
		regCount = 0
		regTotal = 0
	}
}

func spin(wg *sync.WaitGroup) {
	record(3)
	record(4)
	wg.Done()
}

func run() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go spin(&wg)
	drain()
	wg.Wait()
	return snapshot()
}
