// Clean variant of stats_mixed: the mid-flight snapshot takes the lock (and
// the declaration is hoisted out of the recovered span so the final read
// still sees it); the read after wg.Wait needs no lock.
package stats

import "sync"

var mu sync.Mutex
var total int

func worker(n int, wg *sync.WaitGroup) {
	mu.Lock()
	total += n
	mu.Unlock()
	wg.Done()
}

func run() int {
	var wg sync.WaitGroup
	wg.Add(2)
	go worker(1, &wg)
	go worker(2, &wg)
	mu.Lock()
	snapshot := total
	mu.Unlock()
	wg.Wait()
	return total + snapshot
}
