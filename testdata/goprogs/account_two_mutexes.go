// Seeded bug: two different mutexes guard the same field. Deposit protects
// Account.bal with mu1 while Withdraw uses mu2, so the two sections do not
// exclude each other.
package account

import "sync"

type Account struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
	bal int
}

func (a *Account) Deposit(v int) {
	a.mu1.Lock()
	a.bal += v
	a.mu1.Unlock()
}

func (a *Account) Withdraw(v int) {
	a.mu2.Lock()
	a.bal -= v
	a.mu2.Unlock()
}

func run() {
	a := &Account{}
	go a.Deposit(10)
	a.Withdraw(5)
}
