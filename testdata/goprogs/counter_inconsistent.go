// Seeded bug: inconsistent field guard. Counter.n is guarded by Counter.mu
// in Inc and Get, but Reset writes it with no lock held while increments
// run in spawned goroutines.
package counter

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// Reset forgets the lock.
func (c *Counter) Reset() {
	c.n = 0
}

func run() int {
	c := &Counter{}
	go c.Inc()
	go c.Inc()
	c.Reset()
	return c.Get()
}
