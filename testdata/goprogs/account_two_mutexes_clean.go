// Clean variant of account_two_mutexes: a single mutex serializes both
// operations on Account.bal.
package account

import "sync"

type Account struct {
	mu  sync.Mutex
	bal int
}

func (a *Account) Deposit(v int) {
	a.mu.Lock()
	a.bal += v
	a.mu.Unlock()
}

func (a *Account) Withdraw(v int) {
	a.mu.Lock()
	a.bal -= v
	a.mu.Unlock()
}

func run() {
	a := &Account{}
	go a.Deposit(10)
	a.Withdraw(5)
}
