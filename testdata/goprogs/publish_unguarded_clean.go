// Clean variant of publish_unguarded: the producer takes the same lock the
// consumer reads under.
package publish

import "sync"

var mu sync.Mutex
var ready int
var data int

func produce() {
	mu.Lock()
	data = 42
	ready = 1
	mu.Unlock()
}

func consume() int {
	mu.Lock()
	r := ready
	d := data
	mu.Unlock()
	if r == 1 {
		return d
	}
	return 0
}

func run() int {
	go produce()
	return consume()
}
