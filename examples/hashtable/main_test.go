package main

import (
	"io"
	"testing"

	"lockinfer/internal/workload"
)

// The example must pass its invariant checks on all four runtimes; the
// test shrinks the op count so the smoke stays fast under -race.
func TestHashtableRuns(t *testing.T) {
	cfg := workload.RunConfig{Threads: 4, OpsPerThread: 200, Seed: 42}
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
}
