// Hashtable runs the hashtable-2 micro-benchmark (the paper's headline case
// for fine-grain expression locks) on the real goroutine runtimes: the
// global lock, the multi-granularity lock runtime with the coarse (k=0) and
// fine (k=9) plans, and the TL2-style STM. Wall-clock numbers depend on the
// host's core count — the calibrated performance study runs on the machine
// simulator (cmd/lockbench) — but the runtimes, statistics and invariant
// checks here are the real thing.
//
//	go run ./examples/hashtable
package main

import (
	"fmt"
	"log"

	"lockinfer/internal/workload"
)

func main() {
	cfg := workload.RunConfig{Threads: 8, OpsPerThread: 2000, Seed: 42}
	type setup struct {
		name  string
		w     workload.Workload
		ex    workload.Exec
		grain string
	}
	setups := []setup{
		{"global lock", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewGlobalExec(), ""},
		{"MGL coarse (k=0 plan)", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewMGLExec("mgl-coarse"), ""},
		{"MGL fine (k=9 plan)", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainFine),
			workload.NewMGLExec("mgl-fine"), ""},
		{"TL2 STM", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewSTMExec(), ""},
	}
	fmt.Printf("hashtable-2, high mix (66%% puts), %d threads x %d ops\n\n",
		cfg.Threads, cfg.OpsPerThread)
	for _, s := range setups {
		elapsed, err := workload.Run(s.w, s.ex, cfg)
		if err != nil {
			log.Fatalf("%s: invariant check failed: %v", s.name, err)
		}
		stats := s.ex.Stats()
		if stats != "" {
			stats = "  (" + stats + ")"
		}
		fmt.Printf("%-24s %10v  invariants ok%s\n", s.name, elapsed, stats)
	}
	fmt.Println("\nEvery run passed the structure's atomicity invariants " +
		"(bucket residency and exact element accounting).")
}
