// Hashtable runs the hashtable-2 micro-benchmark (the paper's headline case
// for fine-grain expression locks) on the real goroutine runtimes: the
// global lock, the multi-granularity lock runtime with the coarse (k=0) and
// fine (k=9) plans, and the TL2-style STM. Wall-clock numbers depend on the
// host's core count — the calibrated performance study runs on the machine
// simulator (cmd/lockbench) — but the runtimes, statistics and invariant
// checks here are the real thing.
//
//	go run ./examples/hashtable
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer/internal/workload"
)

func run(w io.Writer, cfg workload.RunConfig) error {
	type setup struct {
		name  string
		w     workload.Workload
		ex    workload.Exec
		grain string
	}
	setups := []setup{
		{"global lock", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewGlobalExec(), ""},
		{"MGL coarse (k=0 plan)", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewMGLExec("mgl-coarse"), ""},
		{"MGL fine (k=9 plan)", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainFine),
			workload.NewMGLExec("mgl-fine"), ""},
		{"TL2 STM", workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainCoarse),
			workload.NewSTMExec(), ""},
	}
	fmt.Fprintf(w, "hashtable-2, high mix (66%% puts), %d threads x %d ops\n\n",
		cfg.Threads, cfg.OpsPerThread)
	for _, s := range setups {
		elapsed, err := workload.Run(s.w, s.ex, cfg)
		if err != nil {
			return fmt.Errorf("%s: invariant check failed: %w", s.name, err)
		}
		stats := s.ex.Stats()
		if stats != "" {
			stats = "  (" + stats + ")"
		}
		fmt.Fprintf(w, "%-24s %10v  invariants ok%s\n", s.name, elapsed, stats)
	}
	fmt.Fprintln(w, "\nEvery run passed the structure's atomicity invariants "+
		"(bucket residency and exact element accounting).")
	return nil
}

func main() {
	if err := run(os.Stdout, workload.RunConfig{Threads: 8, OpsPerThread: 2000, Seed: 42}); err != nil {
		log.Fatal(err)
	}
}
