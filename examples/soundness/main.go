// Soundness demonstrates the operational semantics of §4.2: the checking
// interpreter treats an atomic-section access with no covering lock as the
// stuck state. Running a program under its inferred locks never trips the
// checker (Theorem 1); deliberately weakening the lock plan does.
//
//	go run ./examples/soundness
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer"
	"lockinfer/internal/interp"
	"lockinfer/internal/progs"
)

func run(w io.Writer) error {
	// The counter program ships in the corpus package so the static auditor
	// (cmd/lockaudit) and the fuzzers sweep the exact same source.
	p, err := progs.Get("counter")
	if err != nil {
		return err
	}
	c, err := lockinfer.Compile(p.Source(), lockinfer.WithK(3))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Inferred locks:")
	fmt.Fprintln(w, c.LockReport())

	specs := []lockinfer.ThreadSpec{
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
	}

	// 1. The inferred plan: checked execution succeeds and the counter is
	// exact.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Run(specs); err != nil {
		return fmt.Errorf("unexpected: inferred locks tripped the checker: %w", err)
	}
	v, err := m.Global("counter")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "with inferred locks: no violation, counter = %s (want 1500)\n", v)
	if v.Int != 1500 {
		return fmt.Errorf("counter = %s, want 1500", v)
	}

	// 2. An empty plan: the checker reports the stuck state immediately.
	empty := map[int]lockinfer.LockSet{}
	m2 := c.NewMachine(lockinfer.Checked(), lockinfer.WithPlan(empty))
	err = m2.Run(specs)
	var violation *interp.Violation
	if !errors.As(err, &violation) {
		return fmt.Errorf("expected a soundness violation, got: %v", err)
	}
	fmt.Fprintf(w, "with locks removed:  %v\n", err)
	fmt.Fprintln(w, "\nThe checker is the executable form of the paper's Theorem 1: "+
		"acquiring the analysis' locks at each section entry keeps every "+
		"execution out of the stuck state.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
