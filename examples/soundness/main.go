// Soundness demonstrates the operational semantics of §4.2: the checking
// interpreter treats an atomic-section access with no covering lock as the
// stuck state. Running a program under its inferred locks never trips the
// checker (Theorem 1); deliberately weakening the lock plan does.
//
//	go run ./examples/soundness
package main

import (
	"errors"
	"fmt"
	"log"

	"lockinfer"
	"lockinfer/internal/interp"
)

const src = `
int counter;

void bump(int n) {
  int i = 0;
  while (i < n) {
    atomic {
      counter = counter + 1;
    }
    i = i + 1;
  }
}
`

func main() {
	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred locks:")
	fmt.Println(c.LockReport())

	specs := []lockinfer.ThreadSpec{
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
		{Fn: "bump", Args: []lockinfer.Value{lockinfer.IntV(500)}},
	}

	// 1. The inferred plan: checked execution succeeds and the counter is
	// exact.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Run(specs); err != nil {
		log.Fatalf("unexpected: inferred locks tripped the checker: %v", err)
	}
	v, err := m.Global("counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with inferred locks: no violation, counter = %s (want 1500)\n", v)

	// 2. An empty plan: the checker reports the stuck state immediately.
	empty := map[int]lockinfer.LockSet{}
	m2 := c.NewMachine(lockinfer.Checked(), lockinfer.WithPlan(empty))
	err = m2.Run(specs)
	var violation *interp.Violation
	if !errors.As(err, &violation) {
		log.Fatalf("expected a soundness violation, got: %v", err)
	}
	fmt.Printf("with locks removed:  %v\n", err)
	fmt.Println("\nThe checker is the executable form of the paper's Theorem 1: " +
		"acquiring the analysis' locks at each section entry keeps every " +
		"execution out of the stuck state.")
}
