package main

import (
	"io"
	"testing"
)

// Both halves of the demonstration must hold: the inferred plan runs clean
// with an exact counter, and the emptied plan trips the §4.2 checker.
func TestSoundnessRuns(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
