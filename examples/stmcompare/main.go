// Stmcompare reproduces the paper's central performance claim live: on the
// simulated 8-core machine, the pessimistic multi-grain locks beat the
// optimistic TL2-style STM exactly where the paper says they should
// (rollback-heavy workloads like vacation), and lose exactly where the
// paper concedes (low-contention workloads and labyrinth).
//
//	go run ./examples/stmcompare
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer/internal/sim"
	"lockinfer/internal/workload"
)

func run(w io.Writer, cfg sim.Config) error {
	cases := []struct {
		name string
		why  string
		mk   func() workload.Workload
	}{
		{"vacation", "long transactions over hot tables -> STM abort storm",
			func() workload.Workload { return workload.NewVacation("vacation") }},
		{"genome", "write-heavy shared dedup table -> rollbacks dominate",
			func() workload.Workload { return workload.NewGenome("genome", workload.GrainCoarse) }},
		{"labyrinth", "long private compute, short commit -> STM wins",
			func() workload.Workload { return workload.NewLabyrinth("labyrinth") }},
		{"rbtree-low", "read-heavy, low contention -> STM wins",
			func() workload.Workload { return workload.NewRBTree("rbtree-low", workload.LowMix) }},
	}
	fmt.Fprintf(w, "%-12s %12s %12s %10s  %s\n", "program", "mgl-locks", "tl2-stm", "aborts", "who wins")
	for _, c := range cases {
		lockRes, err := sim.Run(c.mk(), sim.ModeMGL, cfg)
		if err != nil {
			return fmt.Errorf("%s under locks: %w", c.name, err)
		}
		stmRes, err := sim.Run(c.mk(), sim.ModeSTM, cfg)
		if err != nil {
			return fmt.Errorf("%s under stm: %w", c.name, err)
		}
		winner := "locks"
		if stmRes.SimTime < lockRes.SimTime {
			winner = "stm"
		}
		fmt.Fprintf(w, "%-12s %12d %12d %10d  %s (%s)\n",
			c.name, lockRes.SimTime, stmRes.SimTime, stmRes.Aborts, winner, c.why)
	}
	fmt.Fprintln(w, "\nTimes are deterministic simulated units on an 8-core machine model;")
	fmt.Fprintln(w, "see EXPERIMENTS.md for the full Table 2 against the paper.")
	return nil
}

func main() {
	if err := run(os.Stdout, sim.Config{Cores: 8, Threads: 8, OpsPerThread: 300, Seed: 11}); err != nil {
		log.Fatal(err)
	}
}
