package main

import (
	"io"
	"testing"

	"lockinfer/internal/sim"
)

// The simulated comparison must run all four workloads under both modes;
// the test shrinks the op count so the smoke stays fast under -race.
func TestStmcompareRuns(t *testing.T) {
	cfg := sim.Config{Cores: 8, Threads: 8, OpsPerThread: 60, Seed: 11}
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
}
