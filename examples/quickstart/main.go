// Quickstart: compile a small program with an atomic section and inspect
// what the lock inference produces.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer"
)

const src = `
struct account { int balance; }

account* a1;
account* a2;

void init() {
  a1 = new account;
  a2 = new account;
  a1->balance = 100;
  a2->balance = 100;
}

void transfer(account* from, account* to, int amount) {
  atomic {
    if (from->balance >= amount) {
      from->balance = from->balance - amount;
      to->balance = to->balance + amount;
    }
  }
}

int totalBalance() {
  int t = 0;
  atomic {
    t = a1->balance + a2->balance;
  }
  return t;
}

void worker(int n) {
  int i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      transfer(a1, a2, 1);
    } else {
      transfer(a2, a1, 1);
    }
    i = i + 1;
  }
}
`

func run(w io.Writer) error {
	// Compile with the Σ3 scheme (k=3), the configuration of the paper's
	// Figure 1 example.
	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "== Inferred locks ==")
	fmt.Fprintln(w, c.LockReport())

	fmt.Fprintln(w, "== Transformed program ==")
	fmt.Fprintln(w, c.TransformedSource())

	// Execute concurrently on the checking interpreter: every shared access
	// inside an atomic section is verified against the held locks.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Init(); err != nil {
		return err
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		return err
	}
	specs := make([]lockinfer.ThreadSpec, 4)
	for i := range specs {
		specs[i] = lockinfer.ThreadSpec{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(200)}}
	}
	if err := m.Run(specs); err != nil {
		return err
	}
	total, err := m.Call(0, "totalBalance", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Execution ==\n4 threads x 200 transfers done; total balance = %s (want 200)\n", total)
	if total.Int != 200 {
		return fmt.Errorf("total balance = %s, want 200", total)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
