// Quickstart: compile a small program with an atomic section and inspect
// what the lock inference produces.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer"
	"lockinfer/internal/progs"
)

func run(w io.Writer) error {
	// The two-account transfer program ships in the corpus package so the
	// static auditor (cmd/lockaudit) and the fuzzers sweep the exact same
	// source this example compiles.
	p, err := progs.Get("accounts")
	if err != nil {
		return err
	}
	// Compile with the Σ3 scheme (k=3), the configuration of the paper's
	// Figure 1 example.
	c, err := lockinfer.Compile(p.Source(), lockinfer.WithK(3))
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "== Inferred locks ==")
	fmt.Fprintln(w, c.LockReport())

	fmt.Fprintln(w, "== Transformed program ==")
	fmt.Fprintln(w, c.TransformedSource())

	// Execute concurrently on the checking interpreter: every shared access
	// inside an atomic section is verified against the held locks.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Init(); err != nil {
		return err
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		return err
	}
	specs := make([]lockinfer.ThreadSpec, 4)
	for i := range specs {
		specs[i] = lockinfer.ThreadSpec{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(200)}}
	}
	if err := m.Run(specs); err != nil {
		return err
	}
	total, err := m.Call(0, "totalBalance", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Execution ==\n4 threads x 200 transfers done; total balance = %s (want 200)\n", total)
	if total.Int != 200 {
		return fmt.Errorf("total balance = %s, want 200", total)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
