package main

import (
	"io"
	"testing"
)

// The example must run to completion with the documented outcome; CI runs
// this so the quickstart in the README cannot rot.
func TestQuickstartRuns(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
