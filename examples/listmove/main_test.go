package main

import (
	"io"
	"testing"
)

// The Figure 1 walkthrough must run to completion: inference at both k
// settings, the transformed source, and the opposing-moves execution with
// the checker on.
func TestListmoveRuns(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
