// Listmove runs the paper's Figure 1 example end to end: the move()
// function that transfers all elements between two lists. It shows how the
// lock choice changes with k (all-coarse at k=0 versus the fine+coarse mix
// of Figure 1(c) at k=3), then executes the deadlock-prone concurrent
// scenario — move(l1,l2) racing move(l2,l1) — under the inferred
// multi-grain locks with the soundness checker enabled.
//
//	go run ./examples/listmove
package main

import (
	"fmt"
	"log"

	"lockinfer"
	"lockinfer/internal/progs"
)

func main() {
	p, err := progs.Get("move")
	if err != nil {
		log.Fatal(err)
	}
	src := p.Source()

	for _, k := range []int{0, 3} {
		c, err := lockinfer.Compile(src, lockinfer.WithK(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Locks at k=%d ==\n%s\n", k, c.LockReport())
	}

	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Transformed move() (Figure 1(c)) ==")
	fmt.Println(c.TransformedSource())

	// The concurrent scenario that deadlocks a naive fine-grain scheme:
	// threads shuttling elements in opposite directions. The hierarchical
	// protocol acquires everything at the section entry in one canonical
	// order, so this cannot deadlock, and the checker verifies that every
	// access is covered.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Init(); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Call(0, "setup", []lockinfer.Value{lockinfer.IntV(16)}); err != nil {
		log.Fatal(err)
	}
	specs := []lockinfer.ThreadSpec{
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(0)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(1)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(0)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(1)}},
	}
	if err := m.Run(specs); err != nil {
		log.Fatal(err)
	}
	total, err := m.Call(0, "total", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Execution ==\n4 threads x 100 opposing moves done; elements = %s (want 16), no deadlock, no violation\n", total)
}
