// Listmove runs the paper's Figure 1 example end to end: the move()
// function that transfers all elements between two lists. It shows how the
// lock choice changes with k (all-coarse at k=0 versus the fine+coarse mix
// of Figure 1(c) at k=3), then executes the deadlock-prone concurrent
// scenario — move(l1,l2) racing move(l2,l1) — under the inferred
// multi-grain locks with the soundness checker enabled.
//
//	go run ./examples/listmove
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"lockinfer"
	"lockinfer/internal/progs"
)

func run(w io.Writer) error {
	p, err := progs.Get("move")
	if err != nil {
		return err
	}
	src := p.Source()

	for _, k := range []int{0, 3} {
		c, err := lockinfer.Compile(src, lockinfer.WithK(k))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Locks at k=%d ==\n%s\n", k, c.LockReport())
	}

	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Transformed move() (Figure 1(c)) ==")
	fmt.Fprintln(w, c.TransformedSource())

	// The concurrent scenario that deadlocks a naive fine-grain scheme:
	// threads shuttling elements in opposite directions. The hierarchical
	// protocol acquires everything at the section entry in one canonical
	// order, so this cannot deadlock, and the checker verifies that every
	// access is covered.
	m := c.NewMachine(lockinfer.Checked())
	if err := m.Init(); err != nil {
		return err
	}
	if _, err := m.Call(0, "setup", []lockinfer.Value{lockinfer.IntV(16)}); err != nil {
		return err
	}
	specs := []lockinfer.ThreadSpec{
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(0)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(1)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(0)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100), lockinfer.IntV(1)}},
	}
	if err := m.Run(specs); err != nil {
		return err
	}
	total, err := m.Call(0, "total", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Execution ==\n4 threads x 100 opposing moves done; elements = %s (want 16), no deadlock, no violation\n", total)
	if total.Int != 16 {
		return fmt.Errorf("element count = %s, want 16", total)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
