// Command lockgen drives the native backend end to end: it compiles a
// mini-C program with atomic sections through the pipeline, emits a real Go
// program implementing it under the inferred lock plan (internal/codegen),
// builds the result with the host toolchain, runs it, and prints the
// canonical final-state fingerprint — the same fingerprint the interpreter
// and the conformance harness use.
//
// Usage:
//
//	lockgen -prog move -threads 2 -ops 8            (corpus program, native run)
//	lockgen -emit file.minic                        (print the generated Go source)
//	lockgen -thread 'worker:8,3' file.minic         (explicit thread specs)
//	lockgen -prog counter -plan drop-all            (run the baked mutant plan)
//	lockgen -prog move -mutate permute              (reverse acquisition plans)
//
// With neither -prog nor a file argument, lockgen reads standard input.
// Exit status 1 when the native run reports flags (soundness violations,
// deadlocks, order violations, runtime errors), 2 on usage or pipeline
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lockinfer/internal/codegen"
	"lockinfer/internal/interp"
	"lockinfer/internal/oracle"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
)

type specList []codegen.Spec

func (s *specList) String() string { return fmt.Sprint(*s) }

func (s *specList) Set(v string) error {
	sp, err := parseSpec(v)
	if err != nil {
		return err
	}
	*s = append(*s, sp)
	return nil
}

func parseSpec(v string) (codegen.Spec, error) {
	fn, rest, has := strings.Cut(v, ":")
	sp := codegen.Spec{Fn: fn}
	if fn == "" {
		return sp, fmt.Errorf("empty function name in spec %q", v)
	}
	if !has || rest == "" {
		return sp, nil
	}
	for _, part := range strings.Split(rest, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return sp, fmt.Errorf("bad argument %q in spec %q", part, v)
		}
		sp.Args = append(sp.Args, n)
	}
	return sp, nil
}

func fail(code int, args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"lockgen:"}, args...)...)
	os.Exit(code)
}

func main() {
	var threadSpecs specList
	var (
		prog      = flag.String("prog", "", "run a corpus program by name instead of a source file")
		k         = flag.Int("k", 2, "expression-lock length bound")
		threads   = flag.Int("threads", 2, "worker threads (with -prog)")
		ops       = flag.Int("ops", 8, "operations per worker (with -prog)")
		setupFlag = flag.String("setup", "", "setup spec fn[:a,b,...] run before the threads (source mode)")
		emit      = flag.Bool("emit", false, "print the generated Go source and exit")
		plan      = flag.String("plan", codegen.VariantInferred, "baked plan variant to run: inferred or drop-all")
		mutate    = flag.String("mutate", "", "runtime plan mutation: permute (reverse acquisition plans)")
		unchecked = flag.Bool("unchecked", false, "disable the lock-coverage checker (benchmark mode)")
		nowatch   = flag.Bool("nowatch", false, "disable the lock-order watcher (benchmark mode)")
		nopwork   = flag.Int("nopwork", 0, "spin iterations per guarded access (benchmark mode)")
		workers   = flag.Int("workers", 1, "inference workers (-1 for GOMAXPROCS)")
		trace     = flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	)
	flag.Var(&threadSpecs, "thread", "thread spec fn[:a,b,...] (repeatable, source mode)")
	flag.Parse()
	pipeline.SetDefaultWorkers(*workers)

	var tg *oracle.Target
	var err error
	if *prog != "" {
		p, perr := progs.Get(*prog)
		if perr != nil {
			fail(2, perr)
		}
		tg, err = oracle.FromCorpus(p, *k, *threads, *ops)
	} else {
		var src []byte
		switch flag.NArg() {
		case 0:
			src, err = io.ReadAll(os.Stdin)
		case 1:
			src, err = os.ReadFile(flag.Arg(0))
		default:
			fail(2, "at most one source file")
		}
		if err != nil {
			fail(2, err)
		}
		var ws []interp.ThreadSpec
		for _, sp := range threadSpecs {
			ws = append(ws, toInterp(sp))
		}
		var setup *interp.ThreadSpec
		if *setupFlag != "" {
			sp, serr := parseSpec(*setupFlag)
			if serr != nil {
				fail(2, serr)
			}
			s := toInterp(sp)
			setup = &s
		}
		name := "stdin"
		if flag.NArg() == 1 {
			name = flag.Arg(0)
		}
		tg, err = oracle.FromSource(name, string(src), *k, ws, setup)
	}
	if err != nil {
		fail(2, err)
	}

	src, err := tg.C.GoSource()
	if err != nil {
		fail(2, err)
	}
	if *emit {
		fmt.Print(src)
		pipeline.DumpShared(os.Stderr, *trace)
		return
	}

	bin, err := codegen.Build(src)
	if err != nil {
		fail(2, err)
	}
	opts := codegen.RunOptions{
		Plan:      *plan,
		Mutate:    *mutate,
		Unchecked: *unchecked,
		NoWatch:   *nowatch,
		NopWork:   *nopwork,
	}
	if tg.Setup != nil {
		s, serr := fromInterp(*tg.Setup)
		if serr != nil {
			fail(2, serr)
		}
		opts.Setup = &s
	}
	for _, th := range tg.Threads {
		s, serr := fromInterp(th)
		if serr != nil {
			fail(2, serr)
		}
		opts.Threads = append(opts.Threads, s)
	}
	res, err := codegen.Run(bin, opts)
	if err != nil {
		fail(2, err)
	}

	fmt.Printf("state %s\n", res.State)
	if *mutate != "" {
		fmt.Printf("permuted %d\n", res.Permuted)
	}
	fmt.Printf("elapsed %s\n", res.Elapsed)
	pipeline.DumpShared(os.Stderr, *trace)
	if len(res.Flags) > 0 {
		for _, f := range res.Flags {
			fmt.Printf("FLAG %s\n", f)
		}
		os.Exit(1)
	}
}

func toInterp(sp codegen.Spec) interp.ThreadSpec {
	ts := interp.ThreadSpec{Fn: sp.Fn}
	for _, a := range sp.Args {
		ts.Args = append(ts.Args, interp.IntV(a))
	}
	return ts
}

func fromInterp(ts interp.ThreadSpec) (codegen.Spec, error) {
	sp := codegen.Spec{Fn: ts.Fn}
	for _, a := range ts.Args {
		if a.Kind != interp.VInt {
			return sp, fmt.Errorf("non-integer thread arg %s", a)
		}
		sp.Args = append(sp.Args, a.Int)
	}
	return sp, nil
}
