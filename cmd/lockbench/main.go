// Command lockbench regenerates the paper's evaluation: Table 1 (analysis
// times), Figure 7 (lock distribution over k), Table 2 (simulated 8-thread
// execution times under the four runtimes) and Figure 8 (scalability
// curves), plus the ablation studies.
//
// Usage:
//
//	lockbench [-table1] [-fig7] [-table2] [-fig8] [-ablate] [-all]
//	          [-scale F] [-ops N] [-threads N] [-cores N] [-seed N]
//
// It also has a real (wall-clock) multi-goroutine throughput mode that
// measures the sharded lock runtime against the pre-sharding reference
// and a global mutex, emits a machine-readable report, and can gate
// against a committed baseline:
//
//	lockbench -throughput [-goroutines 1,2,4,8] [-tput-ops N] [-seed N]
//	          [-json BENCH_PR2.json] [-baseline BENCH_PR2.json] [-gate-tol 0.20]
//
// And a hybrid-runtime contention sweep comparing the adaptive engine
// against the pure pessimistic and optimistic runtimes at both mix
// extremes:
//
//	lockbench -hybrid [-goroutines 1,2,4,8] [-hyb-ops N] [-seed N]
//	          [-json BENCH_PR7.json]
//
// And a server load sweep that stands up an in-process lockinferd, drives
// it open-loop through rising RPS levels with a mixed-tenant workload, and
// reports tail latency, saturation throughput and cache hit rates:
//
//	lockbench -server [-rps 50,100,200,400,800] [-seed N]
//	          [-json BENCH_PR8.json]
//
// And a profile-guided tuning sweep that closes the runtime→inference
// feedback loop: each generated program is profiled on a calibration run,
// its plan is rewritten by the refinement pass, and both plans re-run the
// same workload. The report's headline number is the dynamic lock-acquire
// reduction, gated at 20%:
//
//	lockbench -tune [-tune-seeds N] [-json BENCH_PR10.json]
//	lockbench -tune-short            (reduced CI budget)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lockinfer/internal/bench"
	"lockinfer/internal/pipeline"
)

func main() {
	var (
		t1    = flag.Bool("table1", false, "Table 1: program size and analysis time")
		f7    = flag.Bool("fig7", false, "Figure 7: lock distribution as k sweeps 0..9")
		t2    = flag.Bool("table2", false, "Table 2: simulated execution times, 8 threads")
		f8    = flag.Bool("fig8", false, "Figure 8: execution time vs. thread count")
		abl   = flag.Bool("ablate", false, "ablations: read-only locks and partitions")
		all   = flag.Bool("all", false, "everything")
		scale = flag.Float64("scale", 1.0, "SPEC-substitute size multiplier for Table 1")
		ops   = flag.Int("ops", 400, "operations per thread")
		thr   = flag.Int("threads", 8, "threads for Table 2")
		cores = flag.Int("cores", 8, "simulated cores")
		seed  = flag.Int64("seed", 11, "workload seed")

		tput     = flag.Bool("throughput", false, "wall-clock multi-goroutine throughput sweep")
		gorList  = flag.String("goroutines", "1,2,4,8", "comma-separated goroutine counts for -throughput")
		tputOps  = flag.Int("tput-ops", 20000, "operations per goroutine for -throughput")
		jsonPath = flag.String("json", "", "write the -throughput report to this JSON file")
		basePath = flag.String("baseline", "", "gate -throughput against this committed report")
		gateTol  = flag.Float64("gate-tol", bench.DefaultGateTolerance, "allowed fractional regression for -baseline")

		pipe      = flag.Bool("pipeline", false, "serial-vs-parallel inference wall-time sweep")
		pipeShort = flag.Bool("pipeline-short", false, "reduced -pipeline budget for CI")
		pipeWkrs  = flag.String("pipe-workers", "1,2,4,8", "comma-separated worker counts for -pipeline")

		cg      = flag.Bool("codegen", false, "interpreter-vs-native execution sweep (BENCH_PR6)")
		cgShort = flag.Bool("codegen-short", false, "reduced -codegen budget for CI")
		cgOps   = flag.Int("cg-ops", 2000, "operations per worker for -codegen")

		hyb      = flag.Bool("hybrid", false, "hybrid-vs-pure-runtime contention sweep (BENCH_PR7)")
		hybShort = flag.Bool("hybrid-short", false, "reduced -hybrid budget for CI")
		hybOps   = flag.Int("hyb-ops", 20000, "operations per goroutine for -hybrid")

		svr      = flag.Bool("server", false, "lockinferd open-loop load sweep (BENCH_PR8)")
		svrShort = flag.Bool("server-short", false, "reduced -server budget for CI")
		svrRPS   = flag.String("rps", "", "comma-separated target RPS levels for -server")

		tune      = flag.Bool("tune", false, "profile-guided tuning sweep: profile, refine, re-run (BENCH_PR10)")
		tuneShort = flag.Bool("tune-short", false, "reduced -tune budget for CI")
		tuneSeeds = flag.Int64("tune-seeds", 0, "progen seed count for -tune (0 for the default 20)")

		trace = flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	)
	flag.Parse()
	defer pipeline.DumpShared(os.Stderr, *trace)
	if *pipe || *pipeShort {
		if err := runPipelineBench(*pipeWkrs, *pipeShort, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if *cg || *cgShort {
		if err := runCodegenBench(*gorList, *cgOps, *cgShort, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if *hyb || *hybShort {
		if err := runHybridBench(*gorList, *hybOps, *seed, *hybShort, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if *tune || *tuneShort {
		if err := runTuneBench(*tuneSeeds, *tuneShort, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if *svr || *svrShort {
		if err := runServerBench(*svrRPS, *seed, *svrShort, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if *tput {
		if err := runThroughput(*gorList, *tputOps, *seed, *jsonPath, *basePath, *gateTol); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	if !(*t1 || *f7 || *t2 || *f8 || *abl) {
		*all = true
	}
	opt := bench.RunOptions{Cores: *cores, Threads: *thr, OpsPerThread: *ops, Seed: *seed}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lockbench:", err)
		os.Exit(1)
	}
	if *all || *t1 {
		fmt.Println("=== Table 1: program size and analysis time ===")
		rows, err := bench.Table1(bench.Table1Options{SPECScale: *scale})
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
	}
	if *all || *f7 {
		fmt.Println("=== Figure 7: lock distribution across k ===")
		cols, err := bench.Figure7([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatFigure7(cols))
		fmt.Println()
	}
	if *all || *t2 {
		fmt.Printf("=== Table 2: simulated execution times (%d threads, %d cores) ===\n",
			opt.Threads, opt.Cores)
		rows, err := bench.Table2(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
	}
	if *all || *f8 {
		fmt.Println("=== Figure 8: execution time vs. threads (fixed total work) ===")
		series, err := bench.Figure8(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatFigure8(series))
	}
	if *all || *abl {
		fmt.Println("=== Ablations ===")
		ro, err := bench.AblateReadOnlyLocks(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatAblation("Σε removed (all locks exclusive):", ro))
		parts, err := bench.AblatePartitions(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatAblation("Σ≡ removed (all coarse locks global):", parts))
	}
}

// runPipelineBench drives the serial-vs-parallel inference sweep: print the
// table, optionally persist the BENCH_PR5.json report.
func runPipelineBench(workerList string, short bool, jsonPath string) error {
	workers, err := parseCounts(workerList)
	if err != nil {
		return err
	}
	rep, err := bench.PipelineBench(bench.PipelineBenchOptions{Workers: workers, Short: short})
	if err != nil {
		return err
	}
	fmt.Println("=== Pipeline: inference wall time, serial vs parallel workers ===")
	fmt.Print(bench.FormatPipelineBench(rep))
	if jsonPath != "" {
		if err := bench.WritePipelineBench(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runCodegenBench drives the interpreter-vs-native sweep: print the table,
// optionally persist the BENCH_PR6.json report.
func runCodegenBench(gorList string, opsPerG int, short bool, jsonPath string) error {
	gors, err := parseCounts(gorList)
	if err != nil {
		return fmt.Errorf("bad -goroutines list: %w", err)
	}
	rep, err := bench.CodegenBench(bench.CodegenBenchOptions{
		Goroutines: gors,
		OpsPerG:    opsPerG,
		Short:      short,
	})
	if err != nil {
		return err
	}
	fmt.Println("=== Codegen: interpreter vs native execution, wall-clock ops/sec ===")
	fmt.Print(bench.FormatCodegenBench(rep))
	if jsonPath != "" {
		if err := bench.WriteCodegenBench(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runHybridBench drives the hybrid-vs-pure contention sweep: print the
// table, optionally persist the BENCH_PR7.json report. Short mode shrinks
// the sweep to a smoke test (2 levels, few ops, 2 reps).
func runHybridBench(gorList string, opsPerG int, seed int64, short bool, jsonPath string) error {
	gors, err := parseCounts(gorList)
	if err != nil {
		return fmt.Errorf("bad -goroutines list: %w", err)
	}
	opt := bench.HybridOptions{Goroutines: gors, OpsPerG: opsPerG, Seed: seed}
	if short {
		opt.Goroutines = []int{1, 4}
		opt.OpsPerG = 2000
		opt.Reps = 2
	}
	rep, err := bench.HybridSweep(opt)
	if err != nil {
		return err
	}
	fmt.Println("=== Hybrid: adaptive vs pure runtimes, read-heavy and write-heavy ===")
	fmt.Print(bench.FormatHybrid(rep))
	if jsonPath != "" {
		if err := bench.WriteHybrid(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runTuneBench drives the profile-guided tuning sweep (the
// runtime→inference feedback loop): print the table, optionally persist the
// BENCH_PR10.json report, and gate the sweep's headline claim — the refined
// plans must cut dynamic lock-tree grants by at least 20%.
func runTuneBench(seeds int64, short bool, jsonPath string) error {
	opt := bench.TuneOptions{Seeds: seeds, Short: short}
	rep, err := bench.TuneBench(opt)
	if err != nil {
		return err
	}
	fmt.Println("=== Tune: profile-guided refinement, baseline vs refined plans ===")
	fmt.Print(bench.FormatTune(rep))
	if jsonPath != "" {
		if err := bench.WriteTune(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if rep.AcquireReduction < 0.20 {
		return fmt.Errorf("tune gate: acquire reduction %.1f%% below the 20%% bar", 100*rep.AcquireReduction)
	}
	fmt.Printf("tune gate: %.1f%% acquire reduction (>= 20%% bar)\n", 100*rep.AcquireReduction)
	return nil
}

// runServerBench drives the lockinferd load sweep: print the table,
// optionally persist the BENCH_PR8.json report.
func runServerBench(rpsList string, seed int64, short bool, jsonPath string) error {
	opt := bench.ServerBenchOptions{Short: short, Seed: seed}
	if rpsList != "" {
		counts, err := parseCounts(rpsList)
		if err != nil {
			return fmt.Errorf("bad -rps list: %w", err)
		}
		for _, n := range counts {
			opt.RPSLevels = append(opt.RPSLevels, float64(n))
		}
	}
	rep, err := bench.ServerBench(opt)
	if err != nil {
		return err
	}
	fmt.Println("=== Server: lockinferd open-loop load sweep ===")
	fmt.Print(bench.FormatServerBench(rep))
	if jsonPath != "" {
		if err := bench.WriteServerBench(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func parseCounts(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runThroughput drives the wall-clock throughput sweep: print the table,
// optionally persist JSON, optionally gate against a baseline.
func runThroughput(gorList string, opsPerG int, seed int64, jsonPath, basePath string, tol float64) error {
	gors, err := parseCounts(gorList)
	if err != nil {
		return fmt.Errorf("bad -goroutines list: %w", err)
	}
	rep, err := bench.Throughput(bench.ThroughputOptions{
		Goroutines: gors,
		OpsPerG:    opsPerG,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("=== Throughput: wall-clock ops/sec by runtime and goroutine count ===")
	fmt.Print(bench.FormatThroughput(rep))
	if jsonPath != "" {
		if err := bench.WriteThroughput(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if basePath != "" {
		base, err := bench.LoadThroughput(basePath)
		if err != nil {
			return err
		}
		if err := bench.CompareBaseline(base, rep, tol); err != nil {
			return err
		}
		fmt.Printf("bench gate: within %.0f%% of %s\n", tol*100, basePath)
	}
	return nil
}
