// Command lockvet is a lock-consistency checker for real Go packages. It
// lowers each target through the internal/gofront frontend (a practical
// subset of Go: package state, methods, goroutines, sync.Mutex/RWMutex/
// WaitGroup) and reports:
//
//   - inconsistent: a shared field or global guarded by one mutex at most
//     sites but accessed under a different lock elsewhere;
//   - unguarded: a slot shared between goroutine contexts, with at least
//     one write, accessed with no lock held on some path;
//   - lock-order: a cycle in the whole-program lock acquisition order;
//   - note: for each implicated atomic section, the lock plan the paper's
//     inference derives for it (what the locking should have been).
//
// Targets are Go files or package directories. Output lines follow the
// conventional <file>:<line>:<col>: <kind>: <message> shape, sorted by
// position; declarations outside the gofront subset are listed as
// "subset" warnings (suppressed with -q) and do not affect the exit
// status.
//
// Usage:
//
//	lockvet ./pkgdir file.go ...
//	lockvet -suggest=false ./pkgdir    (skip the inference notes)
//	lockvet -q ./pkgdir                (hide subset warnings)
//
// Exit status 1 when any target has a diagnostic, 2 on usage or frontend
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockinfer/internal/gofront"
	"lockinfer/internal/vet"
)

func main() {
	var (
		suggest = flag.Bool("suggest", true, "attach inferred-plan notes to diagnosed sections")
		quiet   = flag.Bool("q", false, "suppress subset warnings (declarations the frontend skipped)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lockvet [-suggest=false] [-q] <dir|file.go>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, target := range flag.Args() {
		pkg, err := lower(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockvet:", err)
			os.Exit(2)
		}
		rep := vet.Analyze(pkg, vet.Options{NoSuggest: !*suggest})
		for _, d := range rep.Diags {
			fmt.Println(d)
		}
		if !*quiet {
			for _, d := range rep.Subset {
				fmt.Println(d)
			}
		}
		if rep.Failed() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lower(target string) (*gofront.Package, error) {
	st, err := os.Stat(target)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return gofront.LowerDir(target)
	}
	src, err := os.ReadFile(target)
	if err != nil {
		return nil, err
	}
	return gofront.LowerSource(target, string(src))
}
