// Command lockcheck runs the dynamic concurrency oracle against a program
// compiled through the lock-inference pipeline: a vector-clock
// happens-before race detector, the mgl deadlock monitor (waits-for and
// lock-order graphs, canonical-order assertions), and a bounded systematic
// scheduler enumerating preemption-bounded interleavings. Clean output is
// the paper's Theorem 1 observed on real executions; the -drop and
// -reorder mutations demonstrate that the oracle fires when the inferred
// plan is artificially weakened.
//
// Usage:
//
//	lockcheck -list
//	lockcheck -prog move [-k N] [-threads N] [-ops N]
//	lockcheck -gen 7 [-k N] ...
//	lockcheck path/to/prog.minic        (needs init()/worker(ops, seed))
//	lockcheck -prog move -drop 'pts#'   (mutation: drop matching locks)
//	lockcheck -prog move -reorder       (mutation: reverse odd sessions)
//	lockcheck -prog move -engine hybrid (free-running conformance check
//	                                     under one execution engine)
//	lockcheck -prog move -profile p.json (refine the plan under a runtime
//	                                     profile before checking)
//
// -engine replaces the systematic exploration with the conformance
// protocol: the program runs concurrently under the named backend (mgl,
// mgl-ref, global, stm, native, or the adaptive hybrid) with that engine's
// dynamic oracles attached, and the final state must match a serialization
// of its atomic sections. Mutations compose with it, so
// `-engine mgl -drop pts#` demonstrates a weakened plan being caught.
// (Under -engine hybrid the optimistic path masks dropped locks until a
// section actually falls back; the conformance suite's hybrid mutants pin
// the policy at forced fallback to exercise that path deterministically.)
//
// Exit status 1 when the oracle fires, 2 on usage or pipeline errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockinfer/internal/conform"
	"lockinfer/internal/interp"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
	"lockinfer/internal/oracle"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
	"lockinfer/internal/refine"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list corpus programs and exit")
		prog      = flag.String("prog", "", "corpus program to check")
		gen       = flag.Int64("gen", -1, "generate a random program from this seed instead")
		k         = flag.Int("k", 2, "backward-trace depth bound for inference")
		threads   = flag.Int("threads", 2, "worker threads")
		ops       = flag.Int("ops", 3, "operations per worker")
		schedules = flag.Int("schedules", 96, "max interleavings to explore")
		preempt   = flag.Int("preempt", 2, "preemption budget per schedule (-1 for none)")
		checked   = flag.Bool("checked", true, "also run the §4.2 lock-coverage checker")
		drop      = flag.String("drop", "", "mutation: drop inferred locks whose name contains this")
		reorder   = flag.Bool("reorder", false, "mutation: odd sessions acquire in reverse order")
		engine    = flag.String("engine", "", "free-running conformance check under this engine instead of exploration: mgl, mgl-ref, global, stm, native, hybrid")
		repeat    = flag.Int("repeat", 2, "concurrent executions for -engine")
		profile   = flag.String("profile", "", "runtime lock profile (JSON): refine the plan before checking")
		workers   = flag.Int("workers", 1, "inference workers (-1 for GOMAXPROCS; plans are identical at any count)")
		trace     = flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	)
	flag.Parse()
	pipeline.SetDefaultWorkers(*workers)

	if *list {
		for _, p := range progs.All() {
			fmt.Printf("%-12s %-18s %d sections\n", p.Name, p.File, p.Sections)
		}
		return
	}

	tg, err := buildTarget(*prog, *gen, flag.Arg(0), *k, *threads, *ops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(2)
	}
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockcheck:", err)
			os.Exit(2)
		}
		prof, err := locks.ParseProfile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockcheck:", err)
			os.Exit(2)
		}
		refined, res := conform.RefineTarget(tg, prof, refine.Options{})
		for _, line := range res.Lines() {
			fmt.Println("refine:", line)
		}
		tg = refined
	}
	if *drop != "" {
		mut, dropped := tg.DropLock(*drop)
		fmt.Printf("mutation: dropped locks matching %q from %d section plan(s)\n", *drop, dropped)
		tg = mut
	}
	if *reorder {
		fmt.Println("mutation: odd sessions acquire in reverse canonical order")
		tg.PlanMutator = func(session int64, steps []mgl.PlanStep) []mgl.PlanStep {
			if session%2 == 0 {
				return steps
			}
			out := make([]mgl.PlanStep, len(steps))
			for i, st := range steps {
				out[len(steps)-1-i] = st
			}
			return out
		}
	}

	if *engine != "" {
		os.Exit(runEngineCheck(tg, *engine, *repeat, *schedules, *trace))
	}

	res, err := tg.Explore(oracle.ExploreOptions{
		Preemptions:  *preempt,
		MaxSchedules: *schedules,
		Checked:      *checked,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(2)
	}

	fmt.Printf("%s: %d schedule(s), %d branch(es) pruned, truncated=%v, longest simulated run %v\n",
		tg.Name, res.Schedules, res.Pruned, res.Truncated, res.LongestSim)
	for _, r := range res.Races {
		fmt.Println("  RACE:", r)
	}
	for _, v := range res.OrderViolations {
		fmt.Println("  ORDER:", v)
	}
	for _, c := range res.LockOrderCycles {
		fmt.Println("  CYCLE:", c)
	}
	for _, d := range res.Deadlocks {
		fmt.Println("  DEADLOCK:", d.Error())
	}
	for _, e := range res.Errs {
		fmt.Println("  ERROR:", e)
	}
	pipeline.DumpShared(os.Stderr, *trace)
	if err := res.Err(); err != nil {
		fmt.Println("oracle FIRED")
		os.Exit(1)
	}
	fmt.Println("oracle clean: no races, no deadlocks, no order violations")
}

// runEngineCheck runs the conformance protocol for one or more named
// engines on the (possibly mutated) target and returns the process exit
// code: 0 clean, 1 when an oracle fired or a final state was
// non-serializable.
func runEngineCheck(tg *oracle.Target, engines string, repeat, maxSer int, trace string) int {
	engs, err := conform.ParseEngines(engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		return 2
	}
	res, err := conform.Check(tg, conform.Options{
		Engines:           engs,
		Repeat:            repeat,
		MaxSerializations: maxSer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		return 2
	}
	fmt.Printf("%s: %d serialization(s), %d reachable state(s), truncated=%v\n",
		tg.Name, res.Serializations, len(res.States), res.Truncated)
	for i := range res.Runs {
		run := &res.Runs[i]
		verdict := "serializable"
		switch {
		case run.Flagged():
			verdict = "FLAGGED " + run.Flags[0]
		case run.Unknown:
			verdict = "inconclusive (oracle truncated)"
		case !run.Serializable:
			verdict = "NON-SERIALIZABLE state " + run.State
		}
		fmt.Printf("  [%s] %s\n", run.Engine, verdict)
	}
	pipeline.DumpShared(os.Stderr, trace)
	if err := res.Err(); err != nil {
		fmt.Println("oracle FIRED:", err)
		return 1
	}
	fmt.Println("oracle clean: every engine run conforms")
	return 0
}

func buildTarget(prog string, gen int64, file string, k, threads, ops int) (*oracle.Target, error) {
	switch {
	case prog != "":
		p, err := progs.Get(prog)
		if err != nil {
			return nil, err
		}
		return oracle.FromCorpus(p, k, threads, ops)
	case gen >= 0:
		return oracle.FromProgen(gen, k, threads, ops)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var workers []interp.ThreadSpec
		for i := 0; i < threads; i++ {
			workers = append(workers, interp.ThreadSpec{
				Fn:   "worker",
				Args: []interp.Value{interp.IntV(int64(ops)), interp.IntV(int64(i*7919 + 13))},
			})
		}
		setup := &interp.ThreadSpec{Fn: "init"}
		return oracle.FromSource(file, string(src), k, workers, setup)
	default:
		return nil, fmt.Errorf("need -prog, -gen, or a source file (see -h)")
	}
}
