// Command lockc is the lock-inference compiler driver: it reads a mini-C
// program with atomic sections and emits the equivalent lock-based program
// (the transformation of §4.1), the inferred lock report, or the lowered
// IR.
//
// Usage:
//
//	lockc [-k N] [-mode source|locks|ir] [-workers N] [-profile p.json] [-trace json|table] file.minic
//
// With no file, lockc reads standard input. -trace dumps the per-pass
// pipeline trace (wall time, iterations, facts, cache hits) to stderr.
// -profile loads a runtime lock profile (the JSON the engines export and
// lockinferd serves under /metrics) and runs the profile-guided refinement
// pass: -mode locks then reports the refined plan, with the refinement
// decision log (demotions and splits) on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lockinfer"
	"lockinfer/internal/pipeline"
)

func main() {
	k := flag.Int("k", 3, "expression-lock length bound (0..9)")
	mode := flag.String("mode", "source", "output: source (transformed program), locks (lock report), ir (lowered program)")
	workers := flag.Int("workers", 1, "inference workers (-1 for GOMAXPROCS; plans are identical at any count)")
	profile := flag.String("profile", "", "runtime lock profile (JSON) for the refinement pass")
	trace := flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: lockc [-k N] [-mode source|locks|ir] [file]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockc:", err)
		os.Exit(1)
	}

	copts := []lockinfer.Option{lockinfer.WithK(*k), lockinfer.WithWorkers(*workers)}
	var prof *lockinfer.Profile
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockc:", err)
			os.Exit(1)
		}
		if prof, err = lockinfer.ParseProfile(data); err != nil {
			fmt.Fprintln(os.Stderr, "lockc:", err)
			os.Exit(1)
		}
		copts = append(copts, lockinfer.WithProfile(prof))
	}
	c, err := lockinfer.Compile(string(src), copts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockc:", err)
		os.Exit(1)
	}
	switch *mode {
	case "source":
		fmt.Print(c.TransformedSource())
	case "locks":
		if prof != nil {
			plan, decisions := c.RefinedPlan()
			fmt.Print(refinedReport(c, plan))
			for _, d := range decisions {
				fmt.Fprintln(os.Stderr, "refine:", d)
			}
			break
		}
		fmt.Print(c.LockReport())
	case "ir":
		for _, f := range c.Program.Funcs {
			fmt.Print(c.Program.FuncString(f))
		}
	default:
		fmt.Fprintf(os.Stderr, "lockc: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	pipeline.DumpShared(os.Stderr, *trace)
}

// refinedReport renders the refined per-section plan in LockReport's shape.
func refinedReport(c *lockinfer.Compilation, plan map[int]lockinfer.LockSet) string {
	var b strings.Builder
	for _, sec := range c.Program.Sections {
		fmt.Fprintf(&b, "section #%d in %s (line %d), k=%d (refined):\n",
			sec.ID, sec.Fn.Name, sec.Pos.Line, c.K)
		ls := plan[sec.ID].Strings(c.Program)
		if len(ls) == 0 {
			b.WriteString("  (no locks: the section touches only thread-local state)\n")
			continue
		}
		for _, l := range ls {
			fmt.Fprintf(&b, "  acquire %s\n", l)
		}
	}
	return b.String()
}
