// Command lockc is the lock-inference compiler driver: it reads a mini-C
// program with atomic sections and emits the equivalent lock-based program
// (the transformation of §4.1), the inferred lock report, or the lowered
// IR.
//
// Usage:
//
//	lockc [-k N] [-mode source|locks|ir] [-workers N] [-trace json|table] file.minic
//
// With no file, lockc reads standard input. -trace dumps the per-pass
// pipeline trace (wall time, iterations, facts, cache hits) to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lockinfer"
	"lockinfer/internal/pipeline"
)

func main() {
	k := flag.Int("k", 3, "expression-lock length bound (0..9)")
	mode := flag.String("mode", "source", "output: source (transformed program), locks (lock report), ir (lowered program)")
	workers := flag.Int("workers", 1, "inference workers (-1 for GOMAXPROCS; plans are identical at any count)")
	trace := flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: lockc [-k N] [-mode source|locks|ir] [file]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockc:", err)
		os.Exit(1)
	}

	c, err := lockinfer.Compile(string(src), lockinfer.WithK(*k), lockinfer.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockc:", err)
		os.Exit(1)
	}
	switch *mode {
	case "source":
		fmt.Print(c.TransformedSource())
	case "locks":
		fmt.Print(c.LockReport())
	case "ir":
		for _, f := range c.Program.Funcs {
			fmt.Print(c.Program.FuncString(f))
		}
	default:
		fmt.Fprintf(os.Stderr, "lockc: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	pipeline.DumpShared(os.Stderr, *trace)
}
