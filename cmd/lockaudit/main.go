// Command lockaudit statically validates inferred lock plans: each selected
// program is compiled through the full pipeline and its plan is checked —
// without executing anything — by the internal/audit translation validator.
// For every atomic section the auditor derives an interprocedural
// read/write footprint (forward effect analysis refined by an
// inclusion-based points-to analysis, independent of the inference's
// backward dataflow) and reports accesses no acquired lock covers, locks
// protecting nothing the section touches, ⊤ fallbacks, and static
// lock-order defects. With -mutants (the default), the same fault
// injections the dynamic conformance harness executes — all locks dropped,
// acquisition plans reversed — must each be flagged statically.
//
// Usage:
//
//	lockaudit                            (50 progen seeds + corpus + examples)
//	lockaudit -short                     (10 seeds, for CI)
//	lockaudit -seed-start 100 -seeds 5   (a specific seed range)
//	lockaudit -json report.json          (machine-readable precision report)
//	lockaudit -mutants=false             (skip static mutation checks)
//
// Exit status 1 on any soundness violation, order defect, or unflagged
// mutant, 2 on usage or pipeline errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lockinfer/internal/audit"
	"lockinfer/internal/locks"
	"lockinfer/internal/oracle"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
	"lockinfer/internal/refine"
)

func main() {
	var (
		seedStart = flag.Int64("seed-start", 1, "first progen seed")
		seeds     = flag.Int64("seeds", 50, "number of progen seeds to sweep")
		k         = flag.Int("k", 2, "backward-trace depth bound for inference")
		corpus    = flag.Bool("corpus", true, "also audit the hand-written corpus programs")
		examples  = flag.Bool("examples", true, "also audit the documentation example programs")
		mutants   = flag.Bool("mutants", true, "also run static mutation checks (fault injection)")
		short     = flag.Bool("short", false, "reduced budget: 10 seeds")
		profile   = flag.String("profile", "", "runtime lock profile (JSON): also audit each profile-refined plan")
		jsonOut   = flag.String("json", "", "write the precision report to this file")
		verbose   = flag.Bool("v", false, "log per-program results")
		workers   = flag.Int("workers", pipeline.AutoWorkers, "inference workers per program (-1 for GOMAXPROCS; plans are identical at any count)")
		trace     = flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	)
	flag.Parse()
	pipeline.SetDefaultWorkers(*workers)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lockaudit:", err)
		os.Exit(2)
	}

	var prof *locks.Profile
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err != nil {
			fail(err)
		}
		if prof, err = locks.ParseProfile(data); err != nil {
			fail(err)
		}
	}

	var targets []*oracle.Target
	nseeds := *seeds
	if *short && nseeds > 10 {
		nseeds = 10
	}
	for seed := *seedStart; seed < *seedStart+nseeds; seed++ {
		tg, err := oracle.FromProgen(seed, *k, 2, 2)
		if err != nil {
			fail(err)
		}
		targets = append(targets, tg)
	}
	if *corpus && !*short {
		for _, p := range progs.All() {
			tg, err := oracle.FromCorpus(p, *k, 2, 2)
			if err != nil {
				fail(err)
			}
			targets = append(targets, tg)
		}
	}
	if *examples {
		for _, p := range progs.Examples() {
			tg, err := oracle.FromCorpus(p, 3, 2, 2)
			if err != nil {
				fail(err)
			}
			targets = append(targets, tg)
		}
	}

	failures := 0
	checkedMutants, flaggedMutants := 0, 0
	var precisions []audit.Precision
	for _, tg := range targets {
		// The pipeline computes (and caches, and traces) the Andersen
		// refinement once per program; the auditor reuses it.
		rep := audit.Run(tg.Prog, tg.Pts, tg.C.Andersen(), tg.Plan, audit.Options{})
		precisions = append(precisions, rep.Precision(tg.Name))
		if err := rep.Err(); err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", tg.Name, err)
		} else if *verbose {
			p := precisions[len(precisions)-1]
			fmt.Printf("ok   %-24s %d sections, %d/%d classes refined, %d top\n",
				tg.Name, len(p.Sections), p.RefinedClasses, p.SteensClasses, p.TopSections)
		}
		if prof != nil {
			// The profile-refined plan must re-audit sound: the split side
			// conditions (shard.go) are re-derived from scratch here.
			res := refine.Refine(tg.Prog, tg.Pts, tg.C.Andersen(), tg.Plan, prof, refine.Options{})
			rrep := audit.Run(tg.Prog, tg.Pts, tg.C.Andersen(), res.Plan, audit.Options{})
			if err := rrep.Err(); err != nil {
				failures++
				fmt.Printf("FAIL %s/refined: %v\n", tg.Name, err)
			} else if *verbose && res.Changed() {
				fmt.Printf("ok   %-24s refined sound (%d decisions)\n", tg.Name, len(res.Decisions))
			}
		}
		if !*mutants {
			continue
		}
		err := audit.CheckMutants(tg.Name, tg.Prog, tg.Pts, tg.C.Andersen(), tg.Plan, nil)
		checkedMutants++
		if err != nil {
			failures++
			fmt.Printf("FAIL %v\n", err)
		} else {
			flaggedMutants++
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(precisions, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}

	verdict := "sound"
	if failures > 0 {
		verdict = "checked"
	}
	fmt.Printf("lockaudit: %d programs audited %s", len(targets), verdict)
	if *mutants {
		fmt.Printf("; %d/%d mutation checks passed", flaggedMutants, checkedMutants)
	}
	fmt.Println()
	pipeline.DumpShared(os.Stderr, *trace)
	if failures > 0 {
		fmt.Printf("lockaudit: %d FAILURES\n", failures)
		os.Exit(1)
	}
}
