// Command lockconform runs the cross-engine conformance harness: each
// selected program is compiled through the full pipeline, executed
// concurrently under every execution backend (inferred locks on the sharded
// manager, inferred locks on the frozen reference manager, the global-lock
// plan, the TL2 STM runtime, the natively compiled binary emitted by the
// codegen backend, and the adaptive hybrid engine that starts optimistic
// and falls back to the inferred locks), and every outcome's final shared
// state is checked against the set of states reachable by some
// serialization of its atomic sections. With -refined (the default), the
// runtime→inference feedback loop is closed per program: a runtime lock
// profile is collected, the plan is rewritten by the profile-guided
// refinement pass, and the refined plan is checked on every engine to the
// same bar. With -mutants (the default), every program is also re-run with
// injected faults — all locks dropped, acquisition plans reversed, the
// hybrid fallback uncovered or misordered, the STM validation disabled, a
// hot lock demoted, a class split without its disjointness proof — and the
// harness must flag each one.
//
// Usage:
//
//	lockconform                          (50 progen seeds + corpus, all engines)
//	lockconform -seeds 10 -short         (fast sweep for CI)
//	lockconform -engines mgl,stm         (subset of backends)
//	lockconform -seed-start 100 -seeds 5 (a specific seed range)
//	lockconform -mutants=false           (skip negative conformance)
//
// Exit status 1 on any conformance failure or unflagged mutant, 2 on usage
// or pipeline errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockinfer/internal/conform"
	"lockinfer/internal/oracle"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
)

func main() {
	var (
		seedStart = flag.Int64("seed-start", 1, "first progen seed")
		seeds     = flag.Int64("seeds", 50, "number of progen seeds to sweep")
		k         = flag.Int("k", 2, "backward-trace depth bound for inference")
		threads   = flag.Int("threads", 2, "worker threads per program")
		ops       = flag.Int("ops", 2, "operations per worker")
		engines   = flag.String("engines", "all", "comma-separated engines: mgl,mgl-ref,global,stm,native,hybrid")
		repeat    = flag.Int("repeat", 2, "concurrent executions per engine")
		maxSer    = flag.Int("max-ser", 96, "serialization enumeration budget per program")
		corpus    = flag.Bool("corpus", true, "also check the hand-written corpus programs")
		refined   = flag.Bool("refined", true, "also close the feedback loop: profile each program, refine its plan, and check the refined plan on every engine")
		mutants   = flag.Bool("mutants", true, "also run negative conformance (fault injection)")
		short     = flag.Bool("short", false, "reduced budget: 10 seeds, 1 repeat, 48 serializations")
		verbose   = flag.Bool("v", false, "log per-program progress")
		workers   = flag.Int("workers", pipeline.AutoWorkers, "inference workers per program (-1 for GOMAXPROCS; plans are identical at any count)")
		trace     = flag.String("trace", "", "dump the per-pass pipeline trace to stderr: json or table")
	)
	flag.Parse()
	pipeline.SetDefaultWorkers(*workers)

	engs, err := conform.ParseEngines(*engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockconform:", err)
		os.Exit(2)
	}
	opts := conform.Options{Engines: engs, Repeat: *repeat, MaxSerializations: *maxSer}
	nseeds := *seeds
	if *short {
		if nseeds > 10 {
			nseeds = 10
		}
		opts.Repeat = 1
		opts.MaxSerializations = 48
	}
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	if *verbose {
		opts.Log = logf
	}

	var targets []*oracle.Target
	for seed := *seedStart; seed < *seedStart+nseeds; seed++ {
		tg, err := oracle.FromProgen(seed, *k, *threads, *ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockconform:", err)
			os.Exit(2)
		}
		targets = append(targets, tg)
	}
	if *corpus && !*short {
		for _, p := range progs.All() {
			for _, name := range []string{"move", "hashtable", "list"} {
				if p.Name == name {
					tg, err := oracle.FromCorpus(p, *k, *threads, *ops)
					if err != nil {
						fmt.Fprintln(os.Stderr, "lockconform:", err)
						os.Exit(2)
					}
					targets = append(targets, tg)
				}
			}
		}
	}

	failures := 0
	runs, flagged, mutantRuns := 0, 0, 0
	refinedRuns, refinedChanged := 0, 0
	for _, tg := range targets {
		res, err := conform.Check(tg, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockconform:", err)
			os.Exit(2)
		}
		runs += len(res.Runs)
		if err := res.Err(); err != nil {
			failures++
			fmt.Printf("FAIL %s\n", err)
		} else if *verbose {
			fmt.Printf("ok   %-24s %d serializations, %d states, %d runs\n",
				tg.Name, res.Serializations, len(res.States), len(res.Runs))
		}
		if *refined {
			rres, dec, err := conform.CheckRefined(tg, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockconform:", err)
				os.Exit(2)
			}
			refinedRuns += len(rres.Runs)
			if dec.Changed() {
				refinedChanged++
			}
			if err := rres.Err(); err != nil {
				failures++
				fmt.Printf("FAIL %s\n", err)
			} else if *verbose {
				fmt.Printf("ok   %-24s refined (%d decisions), %d runs\n",
					tg.Name+"/refined", len(dec.Decisions), len(rres.Runs))
			}
		}
		if !*mutants {
			continue
		}
		// Reuse the serialization oracle's state set so the skip-validation
		// mutant doesn't re-enumerate it.
		mopts := opts
		mopts.States, mopts.StatesTruncated = res.States, res.Truncated
		mruns, err := conform.CheckMutants(tg, mopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockconform:", err)
			os.Exit(2)
		}
		mutantRuns += len(mruns)
		for _, mr := range mruns {
			if mr.Flagged {
				flagged++
			} else {
				failures++
				fmt.Printf("FAIL mutant %s (%s) not flagged\n", mr.Target, mr.Kind)
			}
		}
	}

	verdict := "conformant"
	if failures > 0 {
		verdict = "checked"
	}
	fmt.Printf("lockconform: %d programs x %d engines: %d runs %s",
		len(targets), len(engs), runs, verdict)
	if *refined {
		fmt.Printf("; %d refined runs (%d plans rewritten)", refinedRuns, refinedChanged)
	}
	if *mutants {
		fmt.Printf("; %d/%d mutants flagged", flagged, mutantRuns)
	}
	fmt.Println()
	pipeline.DumpShared(os.Stderr, *trace)
	if failures > 0 {
		fmt.Printf("lockconform: %d FAILURES\n", failures)
		os.Exit(1)
	}
}
