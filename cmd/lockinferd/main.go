// Command lockinferd runs the compile-and-execute daemon: an HTTP/JSON
// service that compiles submitted mini-C programs through the shared
// pipeline artifact cache and executes atomic sections from many
// concurrent clients against long-lived worlds under a selectable engine
// (mgl, stm, hybrid, native).
//
// Usage:
//
//	lockinferd [-addr :8745] [-max-inflight 32] [-queue 128]
//	           [-timeout 30s] [-max-threads 64] [-trace json|table]
//
// Endpoints: POST /v1/programs, POST /v1/worlds, POST /v1/execute,
// GET /v1/state?world=ID, GET /metrics, GET /healthz. See README for a
// curl quickstart. SIGINT/SIGTERM drains gracefully: queued requests are
// shed with 503, in-flight executions finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockinfer/internal/pipeline"
	"lockinfer/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8745", "listen address")
		inflight = flag.Int("max-inflight", 32, "max concurrently executing requests")
		queue    = flag.Int("queue", 128, "admission queue depth beyond -max-inflight")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request execution timeout")
		threads  = flag.Int("max-threads", 64, "max thread specs per execute request")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		trace    = flag.String("trace", "", "dump the per-pass pipeline trace on exit: json or table")
	)
	flag.Parse()
	defer pipeline.DumpShared(os.Stderr, *trace)

	logf := log.New(os.Stderr, "lockinferd: ", log.LstdFlags).Printf
	srv := server.New(server.Config{
		MaxInFlight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxThreads:     *threads,
		Log:            logf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("listening on %s (max-inflight=%d queue=%d timeout=%s)", *addr, *inflight, *queue, *timeout)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lockinferd: %v", err)
		}
	case <-ctx.Done():
		logf("shutdown signal; draining (budget %s)", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			logf("%v", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			logf("http shutdown: %v", err)
		}
		logf("drained; bye")
	}
}
