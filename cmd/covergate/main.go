// Command covergate is the coverage ratchet: it computes per-package
// statement coverage from a Go cover profile and fails when any gated
// package has dropped more than the tolerance below its committed
// baseline. Run with -update after intentionally changing coverage to
// re-commit the baseline.
//
// Usage:
//
//	go test -short -coverprofile=cover.out ./internal/mgl/ ./internal/infer/
//	covergate -profile cover.out -baseline coverage_baseline.txt
//	covergate -profile cover.out -baseline coverage_baseline.txt -update
//
// Exit status 1 when the gate fails, 2 on usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"lockinfer/internal/pipeline"
)

func main() {
	var (
		profile   = flag.String("profile", "cover.out", "cover profile to read")
		baseline  = flag.String("baseline", "coverage_baseline.txt", "committed per-package baseline")
		tolerance = flag.Float64("tolerance", 2.0, "allowed drop in percentage points")
		update    = flag.Bool("update", false, "rewrite the baseline from the profile and exit")
		trace     = flag.String("trace", "", "dump the per-pass trace to stderr: json or table")
	)
	flag.Parse()

	start := time.Now()
	got, err := packageCoverage(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}
	// The gate records its phases into the same trace the compiler passes
	// use, so -trace works uniformly across the cmd tools.
	pipeline.Shared().Record(pipeline.Sample{
		Pass: "coverprofile", Wall: time.Since(start), Facts: int64(len(got)),
	})
	if *update {
		if err := writeBaseline(*baseline, got); err != nil {
			fmt.Fprintln(os.Stderr, "covergate:", err)
			os.Exit(2)
		}
		for _, pkg := range sortedKeys(got) {
			fmt.Printf("covergate: baseline %s = %.1f%%\n", pkg, got[pkg])
		}
		return
	}
	want, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}
	start = time.Now()
	failed := false
	for _, pkg := range sortedKeys(want) {
		base := want[pkg]
		cur, ok := got[pkg]
		if !ok {
			fmt.Printf("covergate: FAIL %s: no coverage in profile (baseline %.1f%%)\n", pkg, base)
			failed = true
			continue
		}
		switch {
		case cur+*tolerance < base:
			fmt.Printf("covergate: FAIL %s: %.1f%% is more than %.1fpts below baseline %.1f%%\n",
				pkg, cur, *tolerance, base)
			failed = true
		default:
			fmt.Printf("covergate: ok   %s: %.1f%% (baseline %.1f%%)\n", pkg, cur, base)
		}
	}
	pipeline.Shared().Record(pipeline.Sample{
		Pass: "gate", Wall: time.Since(start), Facts: int64(len(want)),
	})
	pipeline.DumpShared(os.Stderr, *trace)
	if failed {
		fmt.Println("covergate: coverage ratchet failed; if the drop is intentional, rerun with -update and commit the baseline")
		os.Exit(1)
	}
}

// packageCoverage folds a cover profile into per-package statement
// coverage percentages.
func packageCoverage(profile string) (map[string]float64, error) {
	f, err := os.Open(profile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type counts struct{ total, covered int }
	byPkg := map[string]*counts{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:sl.sc,el.ec numStmts hitCount
		colon := strings.LastIndex(line, ".go:")
		if colon < 0 {
			continue
		}
		pkg := path.Dir(line[:colon+3])
		fields := strings.Fields(line[colon+4:])
		if len(fields) != 3 {
			continue
		}
		stmts, err1 := strconv.Atoi(fields[1])
		hits, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			continue
		}
		c := byPkg[pkg]
		if c == nil {
			c = &counts{}
			byPkg[pkg] = c
		}
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for pkg, c := range byPkg {
		if c.total > 0 {
			out[pkg] = 100 * float64(c.covered) / float64(c.total)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("profile %s contains no coverage blocks", profile)
	}
	return out, nil
}

func readBaseline(name string) (map[string]float64, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("baseline %s: bad line %q", name, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: bad percentage in %q", name, line)
		}
		out[fields[0]] = pct
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("baseline %s lists no packages", name)
	}
	return out, sc.Err()
}

func writeBaseline(name string, got map[string]float64) error {
	var b strings.Builder
	b.WriteString("# Per-package statement coverage baseline for the covergate ratchet.\n")
	b.WriteString("# Regenerate: make cover-update (see EXPERIMENTS.md).\n")
	for _, pkg := range sortedKeys(got) {
		fmt.Fprintf(&b, "%s %.1f\n", pkg, got[pkg])
	}
	return os.WriteFile(name, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
