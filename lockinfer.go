// Package lockinfer is a from-scratch reproduction of "Inferring Locks for
// Atomic Sections" (Cherem, Chilimbi, Gulwani; PLDI 2008): a compiler that
// reads programs written with atomic sections and produces equivalent
// programs that use only locking primitives, plus the multi-granularity
// lock runtime the generated code needs and a TL2-style STM baseline.
//
// The facade covers the common path — compile a mini-C program, inspect or
// emit the inferred locks, and execute the result on the checking
// interpreter:
//
//	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
//	fmt.Println(c.LockReport())
//	fmt.Println(c.TransformedSource())
//	m := c.NewMachine(lockinfer.Checked())
//	err = m.Run([]lockinfer.ThreadSpec{{Fn: "worker", Args: ...}})
//
// The building blocks live in internal packages: internal/lang (front end),
// internal/ir (the Figure 3 core language), internal/steens (unification
// points-to analysis), internal/infer (the backward lock inference),
// internal/mgl (the hierarchical lock runtime of Section 5), internal/stm
// (the optimistic baseline), internal/interp (the operational semantics of
// Section 4.2) and internal/bench (the Section 6 experiments).
package lockinfer

import (
	"fmt"
	"strings"

	"lockinfer/internal/infer"
	"lockinfer/internal/interp"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/steens"
)

// Re-exported types, so callers can hold and pass the pipeline's artifacts.
type (
	// Machine executes compiled programs (see internal/interp).
	Machine = interp.Machine
	// ThreadSpec names a thread entry point for Machine.Run.
	ThreadSpec = interp.ThreadSpec
	// Value is an interpreter value.
	Value = interp.Value
	// LockSet is a set of inferred locks.
	LockSet = locks.Set
	// InferResult is the analysis outcome for one atomic section.
	InferResult = infer.Result
	// ExternSpec specifies an external (pre-compiled) function for the
	// analysis (§4.3): the globals whose reachable structure it may read or
	// write, and where its returned pointer lives.
	ExternSpec = steens.ExternSpec
	// ExternFunc is a host implementation of an external function for the
	// interpreter.
	ExternFunc = interp.ExternFunc
	// Trace aggregates per-pass observability (wall time, iteration and
	// fact counts, cache hits) across compilations; see internal/pipeline.
	Trace = pipeline.Trace
	// Profile is a runtime lock profile: per-lock acquire/wait counters and
	// per-section contention stats, emitted by the execution engines and
	// consumed by the profile-guided refinement pass (see internal/locks).
	Profile = locks.Profile
)

// ParseProfile decodes a lock profile from its JSON form (the format the
// engines export and lockinferd serves under /metrics).
func ParseProfile(data []byte) (*Profile, error) { return locks.ParseProfile(data) }

// NewTrace returns an empty per-pass trace for WithTrace.
func NewTrace() *Trace { return pipeline.NewTrace() }

// SharedTrace returns the process-wide trace that compilations record into
// by default (what the cmd tools dump under -trace).
func SharedTrace() *Trace { return pipeline.Shared() }

// IntV builds an integer Value for thread arguments.
func IntV(i int64) Value { return interp.IntV(i) }

type config struct {
	pipeline.Options
}

// Option configures Compile.
type Option func(*config)

// WithK sets the expression-lock length bound (the paper sweeps 0..9;
// default 3, the Σ3 scheme of the Figure 1 example).
func WithK(k int) Option {
	return func(c *config) { c.Options = c.Options.WithK(k) }
}

// WithIndexMax bounds symbolic array-index expressions (default 8).
func WithIndexMax(n int) Option { return func(c *config) { c.IndexMax = n } }

// WithSpecs supplies function specifications for external (pre-compiled)
// functions declared as prototypes. Externs without a spec are covered by
// the global lock.
func WithSpecs(specs map[string]ExternSpec) Option {
	return func(c *config) { c.Specs = specs }
}

// WithName labels the compilation in errors and traces.
func WithName(name string) Option { return func(c *config) { c.Name = name } }

// WithWorkers analyzes atomic sections on n goroutines (n <= 1 serial,
// AutoWorkers for GOMAXPROCS). Plans are byte-identical to serial.
func WithWorkers(n int) Option { return func(c *config) { c.Workers = n } }

// AutoWorkers, passed to WithWorkers, selects GOMAXPROCS workers.
const AutoWorkers = pipeline.AutoWorkers

// WithTrace records this compilation's passes into t instead of the shared
// process-wide trace.
func WithTrace(t *Trace) Option { return func(c *config) { c.Trace = t } }

// WithoutCache disables artifact memoization for this compilation.
func WithoutCache() Option { return func(c *config) { c.NoCache = true } }

// WithProfile supplies a runtime lock profile for the profile-guided
// refinement pass; RefinedPlan then rewrites the inferred plan under it.
func WithProfile(p *Profile) Option { return func(c *config) { c.Profile = p } }

// Compilation is the result of compiling a program with atomic sections.
type Compilation struct {
	// AST is the parsed surface program.
	AST *lang.Program
	// Program is the lowered IR.
	Program *ir.Program
	// Points is the Steensgaard points-to analysis result.
	Points *steens.Analysis
	// Results holds the inferred locks, one entry per atomic section.
	Results []*InferResult
	// K is the expression length bound used.
	K int

	pc *pipeline.Compilation
}

// Compile runs the compilation pipeline (see internal/pipeline): parse,
// lower, points-to analysis, lock inference. Pass artifacts are memoized
// process-wide (WithoutCache opts out) and every pass records into the
// trace (WithTrace overrides the shared one).
func Compile(src string, opts ...Option) (*Compilation, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pc, err := pipeline.Compile(src, cfg.Options)
	if err != nil {
		return nil, err
	}
	return &Compilation{
		AST:     pc.AST,
		Program: pc.Program,
		Points:  pc.Points,
		Results: pc.Results,
		K:       pc.K,
		pc:      pc,
	}, nil
}

// Plan returns the per-section lock sets, keyed by section id.
func (c *Compilation) Plan() map[int]LockSet { return c.pc.Plan() }

// GlobalPlan returns the single-global-lock baseline plan.
func (c *Compilation) GlobalPlan() map[int]LockSet { return c.pc.GlobalPlan() }

// CoarsePlan returns the plan with every fine lock coarsened to its
// partition (the k=0 shape).
func (c *Compilation) CoarsePlan() map[int]LockSet { return c.pc.CoarsePlan() }

// TransformedSource renders the program with every atomic section rewritten
// to the to_acquire/acquire_all/release_all form of Figure 1(c).
func (c *Compilation) TransformedSource() string { return c.pc.TransformedSource() }

// RefinedPlan runs the profile-guided refinement pass (see internal/refine)
// over the inferred plan and the profile supplied via WithProfile, returning
// the refined per-section lock sets plus the human-readable decision log
// (one line per demotion or split; ["no change"] when nothing rewrote).
// Without a profile the plan comes back unchanged.
func (c *Compilation) RefinedPlan() (map[int]LockSet, []string) {
	plan, res := c.pc.RefinedPlan()
	return plan, res.Lines()
}

// LockReport renders the inferred locks per atomic section.
func (c *Compilation) LockReport() string {
	var b strings.Builder
	for _, r := range c.Results {
		sec := r.Section
		fmt.Fprintf(&b, "section #%d in %s (line %d), k=%d:\n",
			sec.ID, sec.Fn.Name, sec.Pos.Line, c.K)
		ls := r.Locks.Strings(c.Program)
		if len(ls) == 0 {
			b.WriteString("  (no locks: the section touches only thread-local state)\n")
			continue
		}
		for _, l := range ls {
			fmt.Fprintf(&b, "  acquire %s\n", l)
		}
	}
	return b.String()
}

// MachineOption configures NewMachine.
type MachineOption func(*machineConfig)

type machineConfig struct {
	checked bool
	plan    map[int]LockSet
}

// Checked enables the soundness checker: an access inside an atomic section
// not covered by a held lock aborts the run with a Violation error.
func Checked() MachineOption {
	return func(m *machineConfig) { m.checked = true }
}

// WithPlan overrides the lock plan (e.g. GlobalPlan or CoarsePlan).
func WithPlan(plan map[int]LockSet) MachineOption {
	return func(m *machineConfig) { m.plan = plan }
}

// NewMachine builds an interpreter for the compiled program using the
// inferred locks.
func (c *Compilation) NewMachine(opts ...MachineOption) *Machine {
	cfg := machineConfig{plan: c.Plan()}
	for _, o := range opts {
		o(&cfg)
	}
	m := interp.NewMachine(c.Program, c.Points, cfg.plan)
	m.Checked = cfg.checked
	return m
}
