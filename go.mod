module lockinfer

go 1.22
