package lockinfer_test

import (
	"fmt"
	"log"

	"lockinfer"
)

// ExampleCompile shows the core pipeline: a program with an atomic section
// goes in, the inferred locks come out.
func ExampleCompile() {
	src := `
struct elem { elem* next; int* data; }
struct list { elem* head; }

void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null) {
        x = x->next;
      }
      x->next = y;
    }
  }
}
`
	c, err := lockinfer.Compile(src, lockinfer.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range c.Plan()[0].Strings(c.Program) {
		fmt.Println(line)
	}
	// The coarse lock covers the element partition (the unbounded
	// traversal); the two fine locks are the list heads of Figure 1(c).
	// Output:
	// pts#19/rw
	// &(to->head)/rw
	// &(from->head)/rw
}

// ExampleCompilation_TransformedSource shows the acquireAll/releaseAll
// rewriting of Figure 1(c).
func ExampleCompilation_TransformedSource() {
	src := `
int counter;
void bump() {
  atomic {
    counter = counter + 1;
  }
}
`
	c, err := lockinfer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.TransformedSource())
	// Output:
	// int counter;
	//
	// void bump() {
	//   {
	//     to_acquire(&(counter), pts#0, rw);
	//     acquire_all();
	//     counter = counter + 1;
	//     release_all();
	//   }
	// }
}

// ExampleCompilation_NewMachine executes a compiled program concurrently on
// the checking interpreter: the inferred locks make the increments atomic,
// and the checker verifies every access is covered.
func ExampleCompilation_NewMachine() {
	src := `
int counter;
void worker(int n) {
  int i = 0;
  while (i < n) {
    atomic {
      counter = counter + 1;
    }
    i = i + 1;
  }
}
`
	c, err := lockinfer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	m := c.NewMachine(lockinfer.Checked())
	specs := []lockinfer.ThreadSpec{
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100)}},
		{Fn: "worker", Args: []lockinfer.Value{lockinfer.IntV(100)}},
	}
	if err := m.Run(specs); err != nil {
		log.Fatal(err)
	}
	v, err := m.Global("counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: 300
}
