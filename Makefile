# Tier-1 verification for lockinfer. `make check` is what CI runs:
# static vetting, the full test suite under the Go race detector, and the
# short-mode concurrency-oracle suite as a fast smoke layer.

GO ?= go

.PHONY: check build test vet race oracle-short bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode oracle suite: the fast subset of the race-detector, deadlock
# monitor and schedule-exploration tests (full suite runs under `test`).
oracle-short:
	$(GO) test -short ./internal/oracle/ ./internal/mgl/

check: build vet race oracle-short

bench:
	$(GO) test -bench 'Table|Figure' -benchtime 1x -run XXX .
