# Tier-1 verification for lockinfer. `make check` is what CI runs:
# static vetting, the full test suite under the Go race detector, and the
# short-mode concurrency-oracle suite as a fast smoke layer.

GO ?= go

.PHONY: check build test vet race oracle-short bench bench-paper fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode oracle suite: the fast subset of the race-detector, deadlock
# monitor and schedule-exploration tests (full suite runs under `test`).
oracle-short:
	$(GO) test -short ./internal/oracle/ ./internal/mgl/

check: build vet race oracle-short

# Wall-clock throughput of the sharded lock runtime vs the pre-sharding
# baseline, gated against the committed BENCH_PR2.json (fails on >20%
# regression of any sharded cell). Regenerate the baseline with
# `go run ./cmd/lockbench -throughput -json BENCH_PR2.json` (see
# EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/lockbench -throughput -json BENCH_PR2.latest.json -baseline BENCH_PR2.json

# Paper-reproduction tables on the machine simulator (the pre-PR `bench`).
bench-paper:
	$(GO) test -bench 'Table|Figure' -benchtime 1x -run XXX .

# Native fuzzers: parser round-trip and lock-plan invariants, 30s each.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/lang
	$(GO) test -run '^$$' -fuzz FuzzBuildPlan -fuzztime 30s ./internal/mgl
