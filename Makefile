# Tier-1 verification for lockinfer. `make check` is what CI runs:
# static vetting, the short-mode test suite under the Go race detector, the
# short-mode concurrency-oracle suite, the coverage ratchet, and the
# short-mode cross-engine conformance sweep. `make check-long` adds the
# full-depth suites (paper-shape replication, 1000-schedule differential
# stress, the 50-seed conformance sweep).

GO ?= go

.PHONY: check check-long build test test-long vet vet-go race race-long \
	oracle-short conform conform-short audit audit-short cover cover-update bench \
	bench-paper bench-pipeline bench-pipeline-short bench-codegen \
	bench-codegen-short bench-hybrid bench-hybrid-short bench-server \
	bench-server-short bench-tune bench-tune-short tune-short \
	tune-short-update soak soak-short fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lock-consistency vetting of the real-Go corpus: lockvet (the gofront
# frontend + internal/vet diagnostics) runs over every buggy/clean pair
# under testdata/goprogs and its output must match the committed goldens —
# every seeded bug flagged, every clean variant silent. Regenerate the
# goldens with `go test ./internal/vet -run Goldens -update`.
vet-go:
	@status=0; for f in testdata/goprogs/*.go; do \
		base=$$(basename $$f .go); \
		$(GO) run ./cmd/lockvet $$f > /tmp/lockvet.$$base.out 2>/dev/null; \
		if ! cmp -s /tmp/lockvet.$$base.out testdata/goprogs/golden/$$base.txt; then \
			echo "lockvet output differs from golden for $$f:"; \
			diff testdata/goprogs/golden/$$base.txt /tmp/lockvet.$$base.out; \
			status=1; \
		fi; \
	done; \
	if [ $$status -eq 0 ]; then echo "vet-go: all corpus goldens match"; fi; \
	exit $$status

test:
	$(GO) test ./...

test-long:
	$(GO) test -race ./...

race:
	$(GO) test -short -race ./...

race-long:
	$(GO) test -race ./...

# Short-mode oracle suite: the fast subset of the race-detector, deadlock
# monitor and schedule-exploration tests (full suite runs under `test`).
oracle-short:
	$(GO) test -short ./internal/oracle/ ./internal/mgl/

# Cross-engine conformance: every program runs under all six execution
# backends (sharded mgl, reference mgl, global lock, TL2 STM, the natively
# compiled codegen binary, and the adaptive optimistic-first hybrid) and
# each final state is checked against
# the serialization oracle; injected faults (dropped locks, permuted plans)
# must be flagged — through the codegen path too. Native builds are cached
# under .lockgen/ by source hash, so repeat sweeps pay no compiles. The
# full sweep is the PR-gate acceptance run; conform-short is the CI smoke.
conform:
	$(GO) run ./cmd/lockconform -seeds 50

conform-short:
	$(GO) run ./cmd/lockconform -short

# Static translation validation: every inferred plan is re-checked by the
# independent auditor (forward effect analysis + inclusion-based points-to)
# without executing anything, and the same fault injections the dynamic
# conformance suite runs (dropped locks, reversed plans) must each be
# flagged statically. The full sweep mirrors `conform`'s program set;
# audit-short is the CI smoke.
audit:
	$(GO) run ./cmd/lockaudit -seeds 50

audit-short:
	$(GO) run ./cmd/lockaudit -short

# Coverage ratchet: per-package statement coverage of the lock runtime and
# the inference engine must not drop more than 2pts below the committed
# baseline. After intentional changes run `make cover-update` and commit
# coverage_baseline.txt.
cover:
	$(GO) test -short -coverprofile=cover.out ./internal/mgl/ ./internal/infer/ ./internal/andersen/ ./internal/audit/ ./internal/pipeline/ ./internal/codegen/ ./internal/hybrid/ ./internal/server/ ./internal/gofront/ ./internal/vet/ ./internal/refine/ ./internal/locks/
	$(GO) run ./cmd/covergate -profile cover.out -baseline coverage_baseline.txt

cover-update:
	$(GO) test -short -coverprofile=cover.out ./internal/mgl/ ./internal/infer/ ./internal/andersen/ ./internal/audit/ ./internal/pipeline/ ./internal/codegen/ ./internal/hybrid/ ./internal/server/ ./internal/gofront/ ./internal/vet/ ./internal/refine/ ./internal/locks/
	$(GO) run ./cmd/covergate -profile cover.out -baseline coverage_baseline.txt -update

# Profile-guided tuning gate: the refinement decision log over the 20-seed
# progen sweep must match the committed golden byte for byte (the refine
# pass is plan-deterministic, and the calibration profile it consumes is
# single-threaded, so the decisions are reproducible on any host). After an
# intentional refinement-policy change run `make tune-short-update` and
# commit internal/bench/testdata/tune_decisions.golden.
tune-short:
	$(GO) test -short -run 'TestTune' ./internal/bench/

tune-short-update:
	$(GO) test -short -run TestTuneDecisionsGolden -update ./internal/bench/

# Soak: sustained mixed-tenant open-loop traffic against an in-process
# lockinferd under the Go race detector, with the deadlock Watcher attached
# and serial-replay conformance fingerprint checks at the end. soak-short is
# the ~seconds CI smoke (also part of `make check` via the short-mode test
# suite); `soak` runs the full >=60s acceptance soak.
soak:
	LOCKINFER_SOAK=60s $(GO) test -race -run TestSoak -v -timeout 20m ./internal/server/

soak-short:
	$(GO) test -short -race -run TestSoak ./internal/server/

check: build vet vet-go race oracle-short cover conform-short audit-short tune-short bench-pipeline-short bench-hybrid-short

check-long: build vet vet-go race-long oracle-short cover conform audit tune-short bench-pipeline soak

# Wall-clock throughput of the sharded lock runtime vs the pre-sharding
# baseline, gated against the committed BENCH_PR2.json (fails on >20%
# regression of any sharded cell). Regenerate the baseline with
# `go run ./cmd/lockbench -throughput -json BENCH_PR2.json` (see
# EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/lockbench -throughput -json BENCH_PR2.latest.json -baseline BENCH_PR2.json

# Paper-reproduction tables on the machine simulator (the pre-PR `bench`).
bench-paper:
	$(GO) test -bench 'Table|Figure' -benchtime 1x -run XXX .

# Serial-vs-parallel inference wall time over the conform sweep, the corpus
# and a sections-heavy generated suite, at 1/2/4/8 workers. The committed
# BENCH_PR5.json is the evidence artifact (its notes explain hosts or
# suites where parallel speedup is unobtainable); the short variant is the
# CI smoke and writes only the ignored .latest file.
bench-pipeline:
	$(GO) run ./cmd/lockbench -pipeline -json BENCH_PR5.json

bench-pipeline-short:
	$(GO) run ./cmd/lockbench -pipeline-short -json BENCH_PR5.latest.json

# Interpreter vs native execution over the PR 2 workload shapes (corpus
# programs, both engines unchecked, identical lock plans). The committed
# BENCH_PR6.json is the evidence artifact; the short variant is the CI
# smoke and writes only the ignored .latest file.
bench-codegen:
	$(GO) run ./cmd/lockbench -codegen -json BENCH_PR6.json

bench-codegen-short:
	$(GO) run ./cmd/lockbench -codegen-short -json BENCH_PR6.latest.json

# Hybrid-runtime contention sweep: the adaptive optimistic-first engine vs
# the pure pessimistic (mgl) and optimistic (stm) runtimes at the
# read-heavy and write-heavy mix extremes. The committed BENCH_PR7.json is
# the evidence artifact (its notes explain hosts where the fallback signal
# cannot materialize); the short variant is the CI smoke and writes only
# the ignored .latest file.
bench-hybrid:
	$(GO) run ./cmd/lockbench -hybrid -json BENCH_PR7.json

bench-hybrid-short:
	$(GO) run ./cmd/lockbench -hybrid-short -json BENCH_PR7.latest.json

# lockinferd load sweep: an in-process daemon under rising open-loop RPS
# with a mixed-tenant workload (counter on mgl/stm/hybrid, hashtable,
# repeat submissions, metrics scrapes). The committed BENCH_PR8.json is the
# evidence artifact — p50/p99/p999 latency per level, saturation
# throughput, and the pipeline-cache hit rate; the short variant is the CI
# smoke and writes only the ignored .latest file.
bench-server:
	$(GO) run ./cmd/lockbench -server -json BENCH_PR8.json

bench-server-short:
	$(GO) run ./cmd/lockbench -server-short -json BENCH_PR8.latest.json

# Profile-guided tune loop: infer -> profile (single-worker calibration) ->
# refine -> re-run over the 20-seed progen sweep. The committed
# BENCH_PR10.json is the evidence artifact — total lock acquires before and
# after refinement (the >=20% reduction gate; acquire counts are
# schedule-independent and reproduce on any host) plus the host-dependent
# wall-clock ratio. The short variant is the CI smoke and writes only the
# ignored .latest file.
bench-tune:
	$(GO) run ./cmd/lockbench -tune -json BENCH_PR10.json

bench-tune-short:
	$(GO) run ./cmd/lockbench -tune-short -json BENCH_PR10.latest.json

# Native fuzzers: parser round-trip, lock-plan invariants, the audit
# no-false-positives property, and codegen well-formedness, 30s each.
# FuzzParse is seeded with the corpus, the examples' embedded sources, and
# generated programs (progen.Generate / GenerateConcurrent), so parser
# fuzzing covers the exact syntax the conformance workloads exercise.
# FuzzAudit asserts that for any accepted program, the inferred plan audits
# clean; FuzzCodegen that the emitted Go source always parses and
# type-checks; FuzzGoFront (seeded with the real-Go corpus) that the Go
# frontend never panics and that everything it lowers compiles through the
# full pipeline.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/lang
	$(GO) test -run '^$$' -fuzz FuzzBuildPlan -fuzztime 30s ./internal/mgl
	$(GO) test -run '^$$' -fuzz FuzzAudit -fuzztime 30s ./internal/audit
	$(GO) test -run '^$$' -fuzz FuzzCodegen -fuzztime 30s ./internal/codegen
	$(GO) test -run '^$$' -fuzz FuzzGoFront -fuzztime 30s ./internal/gofront
