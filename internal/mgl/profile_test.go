package mgl

import (
	"sync"
	"testing"
	"time"

	"lockinfer/internal/locks"
)

// TestProfileCollection drives both runtimes through the same request mix
// and checks the exported locks.Profile: identical keys, identical acquire
// counts, mode histograms that match the §5.1 protocol (intention modes on
// ancestors, leaf modes at the requested node).
func TestProfileCollection(t *testing.T) {
	runtimes := map[string]LockRuntime{
		"manager": NewManager(),
		"ref":     NewRefManager(),
	}
	for name, rt := range runtimes {
		t.Run(name, func(t *testing.T) {
			rt.EnableProfiling()
			s := rt.NewLockSession()
			for i := 0; i < 3; i++ {
				s.ToAcquire(Req{Class: 1, Fine: true, Addr: 0x10, Write: true})
				s.ToAcquire(Req{Class: 2, Write: false})
				s.AcquireAll()
				s.ReleaseAll()
			}
			prof := locks.NewProfile("t", name)
			rt.FillProfile(prof)

			wantAcq := map[string]int64{
				locks.RootKey():        3,
				locks.ClassKey(1):      3,
				locks.FineKey(1, 0x10): 3,
				locks.ClassKey(2):      3,
			}
			for key, want := range wantAcq {
				lp := prof.Locks[key]
				if lp == nil {
					t.Fatalf("missing profile entry %s (have %v)", key, profKeys(prof))
				}
				if lp.Acquires != want {
					t.Errorf("%s acquires = %d, want %d", key, lp.Acquires, want)
				}
				if lp.Waits != 0 {
					t.Errorf("%s waits = %d, want 0 (single session)", key, lp.Waits)
				}
			}
			if got := prof.Locks[locks.RootKey()].Modes[IX]; got != 3 {
				t.Errorf("root IX grants = %d, want 3", got)
			}
			if got := prof.Locks[locks.FineKey(1, 0x10)].Modes[X]; got != 3 {
				t.Errorf("fine X grants = %d, want 3", got)
			}
			if got := prof.Locks[locks.ClassKey(2)].Modes[S]; got != 3 {
				t.Errorf("class#2 S grants = %d, want 3", got)
			}
		})
	}
}

func profKeys(p *locks.Profile) []string {
	var ks []string
	for k := range p.Locks {
		ks = append(ks, k)
	}
	return ks
}

// TestProfileDisabledStaysEmpty: without EnableProfiling the sessions must
// record nothing (the benchmark fast path).
func TestProfileDisabledStaysEmpty(t *testing.T) {
	for name, rt := range map[string]LockRuntime{"manager": NewManager(), "ref": NewRefManager()} {
		s := rt.NewLockSession()
		s.ToAcquire(Req{Class: 1, Write: true})
		s.AcquireAll()
		s.ReleaseAll()
		prof := locks.NewProfile("t", name)
		rt.FillProfile(prof)
		if !prof.Empty() {
			t.Errorf("%s: profile populated while profiling disabled: %v", name, profKeys(prof))
		}
	}
}

// TestProfileWaitsUnderContention: a session acquiring a class held in X by
// another session must record the blocked grant on that class's node. The
// holder keeps the lock until the waiter has demonstrably parked (the
// sharded manager spins briefly before parking), so the wait is guaranteed.
func TestProfileWaitsUnderContention(t *testing.T) {
	for name, rt := range map[string]LockRuntime{"manager": NewManager(), "ref": NewRefManager()} {
		rt.EnableProfiling()
		holder := rt.NewLockSession()
		holder.ToAcquire(Req{Class: 7, Write: true})
		holder.AcquireAll()

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := rt.NewLockSession()
			s.ToAcquire(Req{Class: 7, Write: true})
			s.AcquireAll()
			s.ReleaseAll()
		}()
		// Outlast the waiter's bounded spin so it parks for real.
		time.Sleep(20 * time.Millisecond)
		holder.ReleaseAll()
		wg.Wait()

		prof := locks.NewProfile("t", name)
		rt.FillProfile(prof)
		lp := prof.Locks[locks.ClassKey(7)]
		if lp == nil || lp.Acquires != 2 {
			t.Fatalf("%s: class#7 profile = %+v, want 2 acquires", name, lp)
		}
		if lp.Waits != 1 {
			t.Errorf("%s: class#7 waits = %d, want 1", name, lp.Waits)
		}
		if got := lp.Modes[X]; got != 2 {
			t.Errorf("%s: class#7 X grants = %d, want 2", name, got)
		}
	}
}

// TestShardAddr pins the tagged shard address space.
func TestShardAddr(t *testing.T) {
	if ShardAddr(1) == ShardAddr(2) {
		t.Errorf("shard addresses collide")
	}
	if ShardAddr(3)&shardAddrTag == 0 {
		t.Errorf("shard address missing tag bit")
	}
	if ShardAddr(5) == 5 {
		t.Errorf("shard address aliases a small cell address")
	}
}
