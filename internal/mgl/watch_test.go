package mgl

import (
	"errors"
	"sync"
	"testing"
)

// reverse is the plan mutation used by the oracle's reorder tests: acquire
// in the opposite of the canonical order.
func reverse(steps []PlanStep) []PlanStep {
	out := make([]PlanStep, len(steps))
	for i, st := range steps {
		out[len(steps)-1-i] = st
	}
	return out
}

func fineWrite(class ClassID, addr uint64) Req {
	return Req{Class: class, Fine: true, Addr: addr, Write: true}
}

// A single session acquiring against the canonical order must trip the
// order assertion on every out-of-order grant.
func TestWatcherOrderViolation(t *testing.T) {
	m := NewManager()
	w := NewWatcher()
	m.SetWatcher(w)
	s := m.NewSession()
	s.PermutePlan = reverse
	s.ToAcquire(fineWrite(0, 1))
	s.ToAcquire(fineWrite(0, 2))
	s.AcquireAll()
	s.ReleaseAll()
	if got := w.OrderViolations(); len(got) == 0 {
		t.Fatalf("reversed plan produced no order violations")
	} else {
		t.Logf("violations: %v", got)
	}
	if err := w.Err(); err == nil {
		t.Fatalf("watcher Err() nil after order violations")
	}
}

// A canonical-order session must be clean: no violations, no cycles, no
// deadlocks.
func TestWatcherCanonicalOrderClean(t *testing.T) {
	m := NewManager()
	w := NewWatcher()
	m.SetWatcher(w)
	s := m.NewSession()
	s.ToAcquire(fineWrite(0, 2))
	s.ToAcquire(fineWrite(1, 1))
	s.ToAcquire(Req{Global: false, Class: 2, Write: false})
	s.AcquireAll()
	s.ReleaseAll()
	if err := w.Err(); err != nil {
		t.Fatalf("canonical acquisition flagged: %v", err)
	}
}

// Two sessions acquiring the same pair of locks in opposite orders build a
// cycle in the cumulative lock-order graph even when their executions never
// overlap (Goodlock: the potential deadlock is reported anyway).
func TestWatcherLockOrderCycle(t *testing.T) {
	m := NewManager()
	w := NewWatcher()
	m.SetWatcher(w)

	s1 := m.NewSession()
	s1.ToAcquire(fineWrite(0, 1))
	s1.ToAcquire(fineWrite(0, 2))
	s1.AcquireAll()
	s1.ReleaseAll()

	s2 := m.NewSession()
	s2.PermutePlan = reverse
	s2.ToAcquire(fineWrite(0, 1))
	s2.ToAcquire(fineWrite(0, 2))
	s2.AcquireAll()
	s2.ReleaseAll()

	if got := w.LockOrderCycles(); len(got) == 0 {
		t.Fatalf("opposite acquisition orders produced no lock-order cycle")
	} else {
		t.Logf("cycles: %v", got)
	}
}

// Two overlapping sessions acquiring in opposite orders manifest a real
// deadlock; the monitor must detect the waits-for cycle and abort the
// closing acquisition with *DeadlockError so the other session completes.
func TestWatcherLiveDeadlockAborted(t *testing.T) {
	m := NewManager()
	w := NewWatcher()
	m.SetWatcher(w)

	// s1 takes A then B (canonical), s2 takes B then A (reversed). The
	// AcquireHooks sequence the interleaving: each session grabs its first
	// fine lock, then both race for the other's.
	const addrA, addrB = 1, 2
	s1HasA := make(chan struct{})
	s2HasB := make(chan struct{})

	errs := make([]error, 2)
	var wg sync.WaitGroup
	run := func(i int, s *Session) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				err, ok := r.(error)
				if !ok {
					panic(r)
				}
				errs[i] = err
				return
			}
			s.ReleaseAll()
		}()
		s.AcquireAll()
	}

	s1 := m.NewSession()
	s1.ToAcquire(fineWrite(0, addrA))
	s1.ToAcquire(fineWrite(0, addrB))
	s1.AcquireHook = func(st PlanStep) {
		if st.Kind == 2 && st.Addr == addrB {
			close(s1HasA)
			<-s2HasB
		}
	}

	s2 := m.NewSession()
	s2.PermutePlan = reverse
	s2.ToAcquire(fineWrite(0, addrA))
	s2.ToAcquire(fineWrite(0, addrB))
	s2.AcquireHook = func(st PlanStep) {
		if st.Kind == 2 && st.Addr == addrA {
			close(s2HasB)
			<-s1HasA
		}
	}

	wg.Add(2)
	go run(0, s1)
	go run(1, s2)
	wg.Wait()

	aborted := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		var d *DeadlockError
		if !errors.As(err, &d) {
			t.Fatalf("session failed with non-deadlock error: %v", err)
		}
		aborted++
	}
	if aborted != 1 {
		t.Fatalf("want exactly one aborted session, got %d (errs=%v)", aborted, errs)
	}
	if got := w.Deadlocks(); len(got) == 0 {
		t.Fatalf("monitor recorded no deadlock")
	} else {
		t.Logf("deadlock: %v", got[0].Error())
	}
	// The deadlock was aborted, so both sessions terminated and the
	// manager is reusable: a fresh canonical session must succeed.
	s3 := m.NewSession()
	s3.ToAcquire(fineWrite(0, addrA))
	s3.ToAcquire(fineWrite(0, addrB))
	s3.AcquireAll()
	s3.ReleaseAll()
}

// PermutePlan installed on the manager reaches sessions it creates.
func TestManagerPermutePlanInherited(t *testing.T) {
	m := NewManager()
	w := NewWatcher()
	m.SetWatcher(w)
	m.PermutePlan = func(session int64, steps []PlanStep) []PlanStep {
		if session%2 == 1 {
			return reverse(steps)
		}
		return steps
	}
	s1 := m.NewSession() // id 1: reversed
	s1.ToAcquire(fineWrite(0, 1))
	s1.ToAcquire(fineWrite(0, 2))
	s1.AcquireAll()
	s1.ReleaseAll()
	s2 := m.NewSession() // id 2: canonical
	s2.ToAcquire(fineWrite(0, 1))
	s2.ToAcquire(fineWrite(0, 2))
	s2.AcquireAll()
	s2.ReleaseAll()
	if len(w.OrderViolations()) == 0 {
		t.Fatalf("odd session's reversed plan produced no order violation")
	}
	if len(w.LockOrderCycles()) == 0 {
		t.Fatalf("mixed orders produced no lock-order cycle")
	}
}
