package mgl

import (
	"sync"

	"lockinfer/internal/locks"
)

// Runtime lock profiling: when enabled, every session records per-node
// acquire/wait counts and the per-mode grant histogram, and the manager
// exports the merged counters as a locks.Profile — the feedback artifact
// the profile-guided refinement pass (internal/refine) consumes. Profiling
// is off by default: the recording path takes a per-session mutex once per
// AcquireAll, which the throughput-benchmark fast paths must not pay.

// profKey identifies one lock-tree node mode-independently.
type profKey struct {
	kind  int
	class ClassID
	addr  uint64
}

// profStat is the per-node counter set. Single-writer (the owning session's
// goroutine) under the session's profMu; readers aggregate under the same
// mutex, so plain fields suffice.
type profStat struct {
	acquires int64
	waits    int64
	modes    [6]int64
}

// sessProf is the per-session profiling state shared by Session and
// RefSession.
type sessProf struct {
	mu    sync.Mutex
	stats map[profKey]*profStat
}

// record folds one acquisition batch (the plan steps of one AcquireAll,
// with per-step wait flags) into the session's counters.
func (p *sessProf) record(steps []PlanStep, waited []bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stats == nil {
		p.stats = map[profKey]*profStat{}
	}
	for i, st := range steps {
		k := profKey{kind: st.Kind, class: st.Class, addr: st.Addr}
		ps := p.stats[k]
		if ps == nil {
			ps = &profStat{}
			p.stats[k] = ps
		}
		ps.acquires++
		if waited[i] {
			ps.waits++
		}
		ps.modes[st.Mode]++
	}
}

// fill merges the session's counters into a profile.
func (p *sessProf) fill(out *locks.Profile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, ps := range p.stats {
		var key string
		switch k.kind {
		case 0:
			key = locks.RootKey()
		case 1:
			key = locks.ClassKey(int64(k.class))
		default:
			key = locks.FineKey(int64(k.class), k.addr)
		}
		lp := out.Lock(key)
		lp.Acquires += ps.acquires
		lp.Waits += ps.waits
		for i := range lp.Modes {
			lp.Modes[i] += ps.modes[i]
		}
	}
}

// EnableProfiling turns on per-lock profiling for every session (existing
// and future) of this manager. It cannot be turned off again; callers that
// need an unprofiled run use a fresh manager.
func (m *Manager) EnableProfiling() { m.profiling.Store(true) }

// FillProfile merges every session's per-lock counters into out. Safe to
// call while sessions run (a live scrape observes a consistent per-session
// prefix of the counters).
func (m *Manager) FillProfile(out *locks.Profile) {
	m.eachSession(func(s *Session) { s.prof.fill(out) })
}

// EnableProfiling turns on per-lock profiling on the reference runtime.
func (m *RefManager) EnableProfiling() { m.profiling.Store(true) }

// FillProfile merges every reference session's counters into out.
func (m *RefManager) FillProfile(out *locks.Profile) {
	m.sessMu.Lock()
	defer m.sessMu.Unlock()
	for _, s := range m.sessions {
		s.prof.fill(out)
	}
}

// ShardAddr returns the synthetic fine-leaf address of a split-lock shard
// (see locks.ShardLock): shard ids live in their own tagged address space
// so they can never alias the runtime addresses of path-lock cells.
func ShardAddr(shard int) uint64 { return shardAddrTag | uint64(shard) }

// shardAddrTag is the high tag bit of the shard address space. Real cell
// addresses are arena offsets that stay far below it.
const shardAddrTag = uint64(1) << 62
