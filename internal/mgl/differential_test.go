package mgl

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The differential stress suite drives the sharded Manager and the retained
// single-mutex RefManager with identical randomized concurrent session
// schedules and asserts they are observably the same runtime:
//
//   - identical acquisition plans (the mode-compatibility grants both
//     runtimes hand out) for every request set;
//   - the hierarchical-protocol invariants on every grant: intention locks
//     held above fine grants, strictly canonical acquire order;
//   - pairwise mode compatibility of simultaneously granted nodes (via a
//     shadow holder table);
//   - no lost updates on plain (non-atomic) counters protected only by the
//     inferred locks — which also lets `go test -race` observe any
//     exclusion failure directly.

// diffReqs draws one random request set: 1..4 descriptors mixing global,
// coarse and fine locks over a handful of classes and addresses.
func diffReqs(r *rand.Rand) []Req {
	n := 1 + r.Intn(4)
	reqs := make([]Req, 0, n)
	for i := 0; i < n; i++ {
		switch p := r.Intn(20); {
		case p < 2: // 10% global
			reqs = append(reqs, Req{Global: true, Write: r.Intn(2) == 0})
		case p < 10: // 40% coarse
			reqs = append(reqs, Req{Class: ClassID(r.Intn(4)), Write: r.Intn(2) == 0})
		default: // 50% fine
			reqs = append(reqs, Req{
				Class: ClassID(r.Intn(4)),
				Fine:  true,
				Addr:  uint64(1 + r.Intn(8)),
				Write: r.Intn(2) == 0,
			})
		}
	}
	return reqs
}

// diffSchedule is one precomputed schedule: per goroutine, per operation,
// the request set to acquire.
type diffSchedule struct {
	seed int64
	ops  [][][]Req
}

func makeSchedule(seed int64, goroutines, ops int) diffSchedule {
	r := rand.New(rand.NewSource(seed))
	sched := diffSchedule{seed: seed, ops: make([][][]Req, goroutines)}
	for g := range sched.ops {
		sched.ops[g] = make([][]Req, ops)
		for i := range sched.ops[g] {
			sched.ops[g][i] = diffReqs(r)
		}
	}
	return sched
}

// protKey names the protected resource a descriptor guards: the designated
// cell whose plain counter the schedule increments under the lock.
func protKey(r Req) string {
	switch {
	case r.Global:
		return "⊤"
	case r.Fine:
		return fmt.Sprintf("f%d.%d", r.Class, r.Addr)
	default:
		return fmt.Sprintf("c%d", r.Class)
	}
}

// shadowTable tracks, per plan node, how many sessions currently hold it in
// each mode, and asserts that every co-held pair is compatible. Grants are
// registered after AcquireAll returns and removed before ReleaseAll, so any
// real-time overlap of incompatible grants that lasts through both
// registrations is caught.
type shadowTable struct {
	mu    sync.Mutex
	held  map[PlanStep]int // counts keyed by (node, mode)
	fails []string
}

func stepNode(st PlanStep) PlanStep { return PlanStep{Kind: st.Kind, Class: st.Class, Addr: st.Addr} }

func (t *shadowTable) enter(steps []PlanStep) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range steps {
		t.held[st]++
	}
	// Every pair of co-held modes on the same node must be compatible.
	for a, ca := range t.held {
		if ca == 0 {
			continue
		}
		for b, cb := range t.held {
			if cb == 0 || stepNode(a) != stepNode(b) {
				continue
			}
			if a == b {
				// ca sessions share this exact mode: fine iff self-compatible.
				if ca > 1 && !Compatible(a.Mode, a.Mode) && len(t.fails) < 8 {
					t.fails = append(t.fails, fmt.Sprintf("%d sessions co-hold %v", ca, a))
				}
				continue
			}
			if !Compatible(a.Mode, b.Mode) && len(t.fails) < 8 {
				t.fails = append(t.fails, fmt.Sprintf("incompatible co-grant %v vs %v", a, b))
			}
		}
	}
}

func (t *shadowTable) exit(steps []PlanStep) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range steps {
		t.held[st]--
	}
}

// checkPlanInvariants asserts the hierarchical-protocol shape of one
// granted plan: strictly increasing canonical order, root first, and an
// intention (or stronger) ancestor above every descendant grant.
func checkPlanInvariants(t *testing.T, reqs []Req, steps []PlanStep) {
	t.Helper()
	if len(steps) == 0 {
		t.Fatalf("empty plan for %v", reqs)
	}
	if steps[0].Kind != 0 {
		t.Fatalf("plan does not start at the root: %v", steps)
	}
	rank := func(st PlanStep) nodeRank {
		return nodeRank{kind: st.Kind, class: st.Class, addr: st.Addr}
	}
	classMode := map[ClassID]Mode{}
	for i, st := range steps {
		if i > 0 && !rank(steps[i-1]).less(rank(st)) {
			t.Fatalf("plan out of canonical order at %d: %v", i, steps)
		}
		if st.Kind == 1 {
			classMode[st.Class] = st.Mode
		}
		if st.Kind == 2 {
			cm, ok := classMode[st.Class]
			if !ok {
				t.Fatalf("fine grant %v without class ancestor in %v", st, steps)
			}
			need := intention(st.Mode)
			if Join(cm, need) != cm {
				t.Fatalf("class %d held in %s, too weak for fine grant %v", st.Class, cm, st)
			}
		}
	}
}

func TestDifferentialStress(t *testing.T) {
	schedules := 1000
	goroutines, ops := 4, 12
	if testing.Short() {
		schedules = 150
	}
	for i := 0; i < schedules; i++ {
		sched := makeSchedule(int64(1000+i), goroutines, ops)

		// Expected writer increments per resource, from the schedule alone.
		want := map[string]int{}
		for g := range sched.ops {
			for _, reqs := range sched.ops[g] {
				for _, r := range reqs {
					if r.Write {
						want[protKey(r)]++
					}
				}
			}
		}

		var watcher *Watcher
		mgr := NewManager()
		if i%10 == 0 {
			// Every tenth schedule runs with the monitor attached: the
			// sharded watcher must stay silent on canonical executions.
			watcher = NewWatcher()
			mgr.SetWatcher(watcher)
		}
		shadow := &shadowTable{held: map[PlanStep]int{}}
		newPlans, newCounts := execSchedule(t, mgr, sched, shadow)
		if len(shadow.fails) > 0 {
			t.Fatalf("schedule %d: sharded runtime compatibility violations: %v", i, shadow.fails)
		}
		if watcher != nil {
			if err := watcher.Err(); err != nil {
				t.Fatalf("schedule %d: watcher flagged canonical run: %v", i, err)
			}
		}

		refShadow := &shadowTable{held: map[PlanStep]int{}}
		refPlans, refCounts := execSchedule(t, NewRefManager(), sched, refShadow)
		if len(refShadow.fails) > 0 {
			t.Fatalf("schedule %d: reference runtime compatibility violations: %v", i, refShadow.fails)
		}

		// Both runtimes must hand out the same grants for the same request
		// sets, and both must have provided real exclusion.
		for g := range sched.ops {
			for op := range sched.ops[g] {
				a, b := newPlans[g][op], refPlans[g][op]
				if len(a) != len(b) {
					t.Fatalf("schedule %d g%d op%d: plan size %d vs ref %d", i, g, op, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("schedule %d g%d op%d step %d: %v vs ref %v", i, g, op, j, a[j], b[j])
					}
				}
				checkPlanInvariants(t, sched.ops[g][op], a)
			}
		}
		for k, w := range want {
			if newCounts[k] != w {
				t.Fatalf("schedule %d: sharded runtime lost updates on %s: %d, want %d", i, k, newCounts[k], w)
			}
			if refCounts[k] != w {
				t.Fatalf("schedule %d: reference runtime lost updates on %s: %d, want %d", i, k, refCounts[k], w)
			}
		}
	}
}

// execSchedule executes one schedule on a runtime, returning the granted
// plan per (goroutine, op) and the final per-resource counter values.
func execSchedule(t *testing.T, rt LockRuntime, sched diffSchedule, shadow *shadowTable) ([][][]PlanStep, map[string]int) {
	t.Helper()
	goroutines := len(sched.ops)
	plans := make([][][]PlanStep, goroutines)
	counters := map[string]*int{}
	for g := range sched.ops {
		for _, reqs := range sched.ops[g] {
			for _, r := range reqs {
				if _, ok := counters[protKey(r)]; !ok {
					counters[protKey(r)] = new(int)
				}
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		plans[g] = make([][]PlanStep, len(sched.ops[g]))
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := rt.NewLockSession()
			for i, reqs := range sched.ops[g] {
				for _, r := range reqs {
					s.ToAcquire(r)
				}
				s.AcquireAll()
				held := s.HeldSteps()
				plans[g][i] = held
				shadow.enter(held)
				for _, r := range reqs {
					c := counters[protKey(r)]
					if r.Write {
						*c++
					} else {
						_ = *c
					}
				}
				shadow.exit(held)
				s.ReleaseAll()
			}
		}()
	}
	wg.Wait()
	out := map[string]int{}
	for k, c := range counters {
		out[k] = *c
	}
	return plans, out
}

// TestPlanCacheStability acquires the same request sets repeatedly through
// one session and asserts the memoized plans stay identical to fresh
// BuildPlan output — the cache must never alias two different sections.
func TestPlanCacheStability(t *testing.T) {
	m := NewManager()
	s := m.NewSession()
	r := rand.New(rand.NewSource(7))
	sets := make([][]Req, 64)
	for i := range sets {
		sets[i] = diffReqs(r)
	}
	for round := 0; round < 50; round++ {
		for _, reqs := range sets {
			for _, q := range reqs {
				s.ToAcquire(q)
			}
			s.AcquireAll()
			got := s.HeldSteps()
			want := BuildPlan(reqs)
			if len(got) != len(want) {
				t.Fatalf("cached plan diverged: %v vs %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cached plan step %d: %v vs %v", i, got[i], want[i])
				}
			}
			s.ReleaseAll()
		}
	}
}

// TestFastPathCounting verifies the uncontended path is actually lock-free
// (fast-path hits observed) and disabled when a watcher is installed.
func TestFastPathCounting(t *testing.T) {
	m := NewManager()
	s := m.NewSession()
	s.ToAcquire(Req{Class: 1, Fine: true, Addr: 3, Write: true})
	s.AcquireAll()
	s.ReleaseAll()
	if m.FastPathHits() == 0 {
		t.Fatal("uncontended acquisition never took the fast path")
	}

	wm := NewManager()
	wm.SetWatcher(NewWatcher())
	ws := wm.NewSession()
	ws.ToAcquire(Req{Class: 1, Write: true})
	ws.AcquireAll()
	ws.ReleaseAll()
	if wm.FastPathHits() != 0 {
		t.Fatalf("fast path used under a watcher (%d hits); monitor bookkeeping requires the slow path", wm.FastPathHits())
	}
}
