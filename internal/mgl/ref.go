package mgl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lockinfer/internal/locks"
)

// LockSession is the per-goroutine view of a lock runtime: the §5.2
// to-acquire / acquire-all / release-all protocol. Both the sharded Session
// and the reference RefSession implement it, which is what lets the
// differential stress tests and the throughput benchmarks drive either
// runtime through one code path.
type LockSession interface {
	ToAcquire(Req)
	AcquireAll()
	ReleaseAll()
	HeldSteps() []PlanStep
	Nesting() int
	// WaitCount returns how many of this session's node acquisitions had to
	// block (the hybrid engine's contention signal).
	WaitCount() int64
}

// LockRuntime is a lock-tree runtime: the sharded Manager or the retained
// single-mutex RefManager.
type LockRuntime interface {
	NewLockSession() LockSession
	Acquires() int64
	Waits() int64
	// EnableProfiling turns on per-lock profile counters (irreversibly);
	// FillProfile merges them into a runtime lock profile (see profile.go).
	EnableProfiling()
	FillProfile(*locks.Profile)
}

// NewLockSession implements LockRuntime.
func (m *Manager) NewLockSession() LockSession { return m.NewSession() }

// RefManager is the pre-sharding lock runtime, kept verbatim as a
// differential-test double and benchmark baseline: one global mutex guards
// the node tables (every plan resolution serializes through it), nodes park
// waiters on per-waiter channels, and plans are rebuilt — maps, sort and
// all — on every AcquireAll. Its observable grant semantics (mode
// compatibility, strict-FIFO wakeup, canonical acquisition order) are
// identical to Manager's; only the concurrency structure differs, which is
// exactly what the differential stress tests assert.
type RefManager struct {
	mu      sync.Mutex
	root    *refNode
	classes map[ClassID]*refNode
	fine    map[fineKey]*refNode

	acquires atomic.Int64
	waits    atomic.Int64

	// Session registry and gate for the per-lock profile counters (see
	// profile.go).
	sessMu    sync.Mutex
	sessions  []*RefSession
	profiling atomic.Bool
}

// NewRefManager returns an empty reference lock tree.
func NewRefManager() *RefManager {
	return &RefManager{
		root:    &refNode{name: "⊤"},
		classes: map[ClassID]*refNode{},
		fine:    map[fineKey]*refNode{},
	}
}

// Acquires returns the total number of node acquisitions performed.
func (m *RefManager) Acquires() int64 { return m.acquires.Load() }

// Waits returns the number of node acquisitions that had to block.
func (m *RefManager) Waits() int64 { return m.waits.Load() }

// NewLockSession implements LockRuntime.
func (m *RefManager) NewLockSession() LockSession { return m.NewSession() }

// NewSession creates a session on the reference manager.
func (m *RefManager) NewSession() *RefSession {
	s := &RefSession{m: m}
	m.sessMu.Lock()
	m.sessions = append(m.sessions, s)
	m.sessMu.Unlock()
	return s
}

func (m *RefManager) classNode(c ClassID) *refNode {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.classes[c]
	if !ok {
		n = &refNode{name: fmt.Sprintf("pts#%d", c)}
		m.classes[c] = n
	}
	return n
}

func (m *RefManager) fineNode(c ClassID, addr uint64) *refNode {
	k := fineKey{c, addr}
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.fine[k]
	if !ok {
		n = &refNode{name: fmt.Sprintf("fine(%d,%#x)", c, addr)}
		m.fine[k] = n
	}
	return n
}

// refBuildPlan is the pre-sharding planner, frozen with the rest of this
// file: per-node modes joined through maps and the canonical order
// restored with a reflective sort, rebuilt on every AcquireAll. BuildPlan
// has since grown an allocation-light small-input path; the baseline must
// not inherit such improvements, so it keeps its own copy. The
// differential tests assert the two planners still agree.
func refBuildPlan(reqs []Req) []PlanStep {
	rootMode := ModeNone
	classMode := map[ClassID]Mode{}
	fineMode := map[fineKey]Mode{}
	leaf := func(w bool) Mode {
		if w {
			return X
		}
		return S
	}
	for _, r := range reqs {
		switch {
		case r.Global:
			rootMode = Join(rootMode, leaf(r.Write))
		case !r.Fine:
			classMode[r.Class] = Join(classMode[r.Class], leaf(r.Write))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		default:
			k := fineKey{r.Class, r.Addr}
			fineMode[k] = Join(fineMode[k], leaf(r.Write))
			classMode[r.Class] = Join(classMode[r.Class], intention(leaf(r.Write)))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		}
	}
	if rootMode == ModeNone {
		return nil
	}
	plan := make([]PlanStep, 0, 1+len(classMode)+len(fineMode))
	plan = append(plan, PlanStep{Kind: 0, Mode: rootMode})
	for c, mode := range classMode {
		plan = append(plan, PlanStep{Kind: 1, Class: c, Mode: mode})
	}
	for k, mode := range fineMode {
		plan = append(plan, PlanStep{Kind: 2, Class: k.class, Addr: k.addr, Mode: mode})
	}
	sort.Slice(plan, func(i, j int) bool { return stepLess(plan[i], plan[j]) })
	return plan
}

// RefSession is one thread's view of the reference runtime. Like Session it
// must be used by a single goroutine at a time.
type RefSession struct {
	m       *RefManager
	pending []Req
	held    []refPlanStep
	steps   []PlanStep
	nlevel  int
	waits   int64

	prof        sessProf
	waitScratch []bool
}

type refPlanStep struct {
	n    *refNode
	mode Mode
}

// ToAcquire appends a lock descriptor to the pending list.
func (s *RefSession) ToAcquire(r Req) {
	if s.nlevel > 0 {
		return
	}
	s.pending = append(s.pending, r)
}

// AcquireAll acquires all pending locks in the canonical global order.
func (s *RefSession) AcquireAll() {
	s.nlevel++
	if s.nlevel > 1 {
		return
	}
	steps := refBuildPlan(s.pending)
	plan := make([]refPlanStep, len(steps))
	for i, st := range steps {
		var n *refNode
		switch st.Kind {
		case 0:
			n = s.m.root
		case 1:
			n = s.m.classNode(st.Class)
		default:
			n = s.m.fineNode(st.Class, st.Addr)
		}
		plan[i] = refPlanStep{n: n, mode: st.Mode}
	}
	profiling := s.m.profiling.Load()
	var waitedFlags []bool
	if profiling {
		waitedFlags = s.waitScratch[:0]
	}
	for _, st := range plan {
		waited := st.n.acquire(st.mode)
		if waited {
			s.m.waits.Add(1)
			s.waits++
		}
		if profiling {
			waitedFlags = append(waitedFlags, waited)
		}
		s.m.acquires.Add(1)
	}
	if profiling {
		s.waitScratch = waitedFlags
		s.prof.record(steps, waitedFlags)
	}
	s.held = plan
	s.steps = steps
	s.pending = s.pending[:0]
}

// ReleaseAll releases every held lock, bottom-up.
func (s *RefSession) ReleaseAll() {
	if s.nlevel == 0 {
		panic("mgl: ReleaseAll without AcquireAll")
	}
	s.nlevel--
	if s.nlevel > 0 {
		return
	}
	for i := len(s.held) - 1; i >= 0; i-- {
		s.held[i].n.release(s.held[i].mode)
	}
	s.held = s.held[:0]
	s.steps = nil
}

// HeldSteps returns the canonical descriptors of the held locks, in
// acquisition order.
func (s *RefSession) HeldSteps() []PlanStep {
	return append([]PlanStep(nil), s.steps...)
}

// Nesting returns the current atomic nesting level.
func (s *RefSession) Nesting() int { return s.nlevel }

// WaitCount returns the number of this session's node acquisitions that had
// to block.
func (s *RefSession) WaitCount() int64 { return s.waits }

// refNode is the pre-sharding node: a mode lock with a strict-FIFO wait
// queue parking each waiter on its own channel.
type refNode struct {
	name  string
	mu    sync.Mutex
	count [6]int
	queue []*refWaiter
}

type refWaiter struct {
	mode  Mode
	ready chan struct{}
}

func (n *refNode) compatibleWithHeld(mode Mode) bool {
	for m := IS; m <= X; m++ {
		if n.count[m] > 0 && !Compatible(mode, m) {
			return false
		}
	}
	return true
}

// acquire blocks until the node is granted in the given mode; it reports
// whether it had to wait.
func (n *refNode) acquire(mode Mode) bool {
	n.mu.Lock()
	if len(n.queue) == 0 && n.compatibleWithHeld(mode) {
		n.count[mode]++
		n.mu.Unlock()
		return false
	}
	wt := &refWaiter{mode: mode, ready: make(chan struct{})}
	n.queue = append(n.queue, wt)
	n.mu.Unlock()
	<-wt.ready
	return true
}

// release drops one holder in the given mode and wakes queued waiters in
// FIFO order while they remain compatible.
func (n *refNode) release(mode Mode) {
	n.mu.Lock()
	if n.count[mode] <= 0 {
		n.mu.Unlock()
		panic("mgl: release of unheld mode " + mode.String() + " on " + n.name)
	}
	n.count[mode]--
	for len(n.queue) > 0 && n.compatibleWithHeld(n.queue[0].mode) {
		wt := n.queue[0]
		n.queue = n.queue[1:]
		n.count[wt.mode]++
		close(wt.ready)
	}
	n.mu.Unlock()
}
