// Package mgl implements the multi-granularity locking runtime of Section 5
// of the paper, following Gray's hierarchical locking protocol: locks are
// arranged in a tree (the root ⊤, one child per points-to partition, and
// per-address leaves under each partition), each node can be held in the
// access modes S, X, IS, IX and SIX with the compatibility matrix of
// Figure 6, ancestors are acquired top-down with intention modes before
// descendants, and all sessions acquire in one canonical global order, which
// together with acquire-all-at-entry makes the protocol deadlock free.
package mgl

// Mode is a hierarchical lock access mode.
type Mode uint8

// Access modes. The order encodes the mode lattice used when one session
// needs a node for several reasons (e.g. IX for a fine write below plus S
// for a coarse read of the node itself joins to SIX).
const (
	// ModeNone is the absence of a request.
	ModeNone Mode = iota
	// IS declares the intention to take S locks below this node.
	IS
	// IX declares the intention to take X locks below this node.
	IX
	// S locks the node's whole subtree for reading.
	S
	// SIX locks the subtree for reading with the intention to write below.
	SIX
	// X locks the subtree exclusively.
	X
)

var modeNames = [...]string{"none", "IS", "IX", "S", "SIX", "X"}

func (m Mode) String() string { return modeNames[m] }

// compat is Figure 6(b): compat[a][b] reports whether a node held in b can
// simultaneously be granted in a.
var compat = [6][6]bool{
	IS:  {ModeNone: true, IS: true, IX: true, S: true, SIX: true, X: false},
	IX:  {ModeNone: true, IS: true, IX: true, S: false, SIX: false, X: false},
	S:   {ModeNone: true, IS: true, IX: false, S: true, SIX: false, X: false},
	SIX: {ModeNone: true, IS: true, IX: false, S: false, SIX: false, X: false},
	X:   {ModeNone: true, IS: false, IX: false, S: false, SIX: false, X: false},
}

// Compatible reports whether modes a and b can be held concurrently by
// different sessions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// Join returns the weakest mode granting the rights of both a and b:
// the least upper bound in the mode lattice IS < {IX, S} < SIX < X.
func Join(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	// Now a < b in the numeric order.
	switch {
	case a == ModeNone:
		return b
	case a == IS:
		return b
	case a == IX && b == S, a == IX && b == SIX, a == S && b == SIX:
		return SIX
	default:
		return X
	}
}

// intention returns the ancestor mode required before taking a descendant
// in mode m: IS below reads, IX below writes.
func intention(m Mode) Mode {
	switch m {
	case IS, S:
		return IS
	default:
		return IX
	}
}
