package mgl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The per-node lock state is packed into one atomic word so uncontended
// acquisitions and releases are a single CAS:
//
//	bit 63        slow bit — the node has queued waiters (or a slow-path
//	              transition in flight); every fast path defers to the
//	              node mutex while it is set
//	bits 0..59    five 12-bit holder counts, one per mode IS..X
//
// The word is the single source of truth for holder counts. Fast paths
// mutate it with CAS; the slow path mutates it while holding the node
// mutex. Setting the slow bit (always done under the mutex) invalidates any
// fast-path CAS whose compare value was read before the transition, so once
// it is observed set, the word only changes under the mutex — that is the
// linearization argument for mixing both paths.
const (
	fieldBits = 12
	fieldMask = 1<<fieldBits - 1
	slowBit   = uint64(1) << 63
)

// fieldShift returns the bit offset of mode m's holder count (m in IS..X).
func fieldShift(m Mode) uint { return uint(m-1) * fieldBits }

// incompatMask[m] covers the count fields of every mode incompatible with
// m; a word with none of those bits set can grant m immediately.
var incompatMask [6]uint64

func init() {
	for m := IS; m <= X; m++ {
		for o := IS; o <= X; o++ {
			if !Compatible(m, o) {
				incompatMask[m] |= uint64(fieldMask) << fieldShift(o)
			}
		}
	}
}

// count extracts mode m's holder count from a packed word.
func count(w uint64, m Mode) uint64 { return (w >> fieldShift(m)) & fieldMask }

// node is one lock in the tree: a packed atomic holder word for the
// uncontended fast path, plus a mutex+condvar slow path with a strict-FIFO
// wait queue (granting the head and any following compatible waiters),
// which prevents starvation while still batching compatible requests.
type node struct {
	name string
	rank nodeRank

	word atomic.Uint64

	mu    sync.Mutex
	cond  sync.Cond
	queue []*waiter

	// watch is the Watcher's per-node holder registration, allocated on
	// first grant when a monitor is installed (see watch.go).
	watchOnce sync.Once
	watch     *nodeWatch
}

type waiter struct {
	s       *Session
	mode    Mode
	granted bool
}

func newNode(name string, rank nodeRank) *node { return &node{name: name, rank: rank} }

// step renders the node back as a canonical plan step in the given mode.
func (n *node) step(mode Mode) PlanStep {
	return PlanStep{Kind: n.rank.kind, Class: n.rank.class, Addr: n.rank.addr, Mode: mode}
}

// orSlow sets the slow bit and returns the resulting word. Callers must
// hold n.mu. After it returns, fast paths cannot mutate the word until the
// bit is cleared.
func (n *node) orSlow() uint64 {
	for {
		w := n.word.Load()
		if w&slowBit != 0 {
			return w
		}
		if n.word.CompareAndSwap(w, w|slowBit) {
			return w | slowBit
		}
	}
}

// maybeClearSlow drops the slow bit when no waiters remain. Callers must
// hold n.mu; the queue must have been settled first.
func (n *node) maybeClearSlow() {
	if len(n.queue) != 0 {
		return
	}
	for {
		w := n.word.Load()
		if w&slowBit == 0 {
			return
		}
		if n.word.CompareAndSwap(w, w&^slowBit) {
			return
		}
	}
}

// grantable reports whether a packed word can immediately admit mode:
// no incompatible holders and the mode's own count not saturated.
func grantable(w uint64, mode Mode) bool {
	return w&incompatMask[mode] == 0 && count(w, mode) < fieldMask
}

// fastAcquire attempts the lock-free grant: no waiters, no slow-path
// transition, no incompatible holders. It retries a CAS a few times before
// giving up to the slow path.
func (n *node) fastAcquire(mode Mode) bool {
	for i := 0; i < 4; i++ {
		w := n.word.Load()
		if w&slowBit != 0 || !grantable(w, mode) {
			return false
		}
		if n.word.CompareAndSwap(w, w+1<<fieldShift(mode)) {
			return true
		}
	}
	return false
}

// fastRelease attempts the lock-free release; it fails (deferring to the
// slow path) whenever waiters may need waking.
func (n *node) fastRelease(mode Mode) bool {
	for i := 0; i < 4; i++ {
		w := n.word.Load()
		if w&slowBit != 0 {
			return false
		}
		if count(w, mode) == 0 {
			panic("mgl: release of unheld mode " + mode.String() + " on " + n.name)
		}
		if n.word.CompareAndSwap(w, w-1<<fieldShift(mode)) {
			return true
		}
	}
	return false
}

// spinAttempts bounds the optimistic yield-and-retry loop before an
// incompatible acquisition parks on the condvar.
const spinAttempts = 8

// acquire blocks until the node is granted to s in the given mode; it
// reports whether it had to wait. With a watcher installed the fast path is
// disabled (the monitor's bookkeeping must be synchronous with grants) and
// an acquisition that would close a waits-for cycle returns a
// *DeadlockError instead of enqueueing.
func (n *node) acquire(s *Session, mode Mode) (bool, error) {
	w := s.m.watch
	if w == nil {
		if n.fastAcquire(mode) {
			bump(&s.statFast)
			return false, nil
		}
		// Before parking, yield and retry a few times: a holder that was
		// preempted mid-section (common when goroutines outnumber cores)
		// gets to release on its own fast path, sparing both sides a
		// park/wake round trip. The loop stops the moment a queue forms
		// (slow bit set) — spinning past enqueued waiters would barge
		// ahead of the FIFO order.
		for i := 0; i < spinAttempts && n.word.Load()&slowBit == 0; i++ {
			runtime.Gosched()
			if n.fastAcquire(mode) {
				bump(&s.statFast)
				return false, nil
			}
		}
	}
	n.mu.Lock()
	if n.cond.L == nil {
		n.cond.L = &n.mu
	}
	word := n.orSlow()
	if len(n.queue) == 0 && grantable(word, mode) {
		n.word.Add(1 << fieldShift(mode))
		if w != nil {
			w.grant(s, n, mode)
		}
		n.maybeClearSlow()
		n.mu.Unlock()
		return false, nil
	}
	if w != nil {
		if err := w.wait(s, n, mode); err != nil {
			n.maybeClearSlow()
			n.mu.Unlock()
			return true, err
		}
	}
	wt := &waiter{s: s, mode: mode}
	n.queue = append(n.queue, wt)
	for !wt.granted {
		n.cond.Wait()
	}
	n.mu.Unlock()
	return true, nil
}

// release drops one holder in the given mode and wakes queued waiters in
// FIFO order while they remain compatible.
func (n *node) release(s *Session, mode Mode) {
	w := s.m.watch
	if w == nil && n.fastRelease(mode) {
		return
	}
	n.mu.Lock()
	if count(n.word.Load(), mode) == 0 {
		n.mu.Unlock()
		panic("mgl: release of unheld mode " + mode.String() + " on " + n.name)
	}
	n.word.Add(^(uint64(1) << fieldShift(mode)) + 1) // two's-complement decrement of the mode field
	if w != nil {
		w.unhold(s, n)
	}
	woke := false
	for len(n.queue) > 0 && grantable(n.word.Load(), n.queue[0].mode) {
		wt := n.queue[0]
		n.queue = n.queue[1:]
		n.word.Add(1 << fieldShift(wt.mode))
		if w != nil {
			w.grant(wt.s, n, wt.mode)
		}
		wt.granted = true
		woke = true
	}
	if woke {
		n.cond.Broadcast()
	}
	n.maybeClearSlow()
	n.mu.Unlock()
}
