package mgl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rightsLeq encodes the mode privilege order: a ≤ b means b grants every
// right a grants. none < IS < {IX, S} < SIX < X.
func rightsLeq(a, b Mode) bool {
	if a == b {
		return true
	}
	switch a {
	case ModeNone:
		return true
	case IS:
		return b == IX || b == S || b == SIX || b == X
	case IX, S:
		return b == SIX || b == X
	case SIX:
		return b == X
	default:
		return false
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	// Figure 6(b) row by row.
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, SIX}: true, {IS, X}: false,
		{IX, IX}: true, {IX, S}: false, {IX, SIX}: false, {IX, X}: false,
		{S, S}: true, {S, SIX}: false, {S, X}: false,
		{SIX, SIX}: false, {SIX, X}: false,
		{X, X}: false,
	}
	for pair, w := range want {
		if got := Compatible(pair[0], pair[1]); got != w {
			t.Errorf("Compatible(%s,%s) = %v, want %v", pair[0], pair[1], got, w)
		}
		if got := Compatible(pair[1], pair[0]); got != w {
			t.Errorf("Compatible(%s,%s) = %v, want %v (symmetry)", pair[1], pair[0], got, w)
		}
	}
}

func TestCompatibilityMonotone(t *testing.T) {
	// A stronger mode is compatible with no more than a weaker one.
	modes := []Mode{ModeNone, IS, IX, S, SIX, X}
	for _, a := range modes[1:] {
		for _, b := range modes[1:] {
			if !rightsLeq(a, b) {
				continue
			}
			for _, c := range modes[1:] {
				if Compatible(b, c) && !Compatible(a, c) {
					t.Errorf("compat not antitone: %s≤%s but Compatible(%s,%s) && !Compatible(%s,%s)",
						a, b, b, c, a, c)
				}
			}
		}
	}
}

func TestJoinIsLub(t *testing.T) {
	modes := []Mode{ModeNone, IS, IX, S, SIX, X}
	for _, a := range modes {
		for _, b := range modes {
			j := Join(a, b)
			if !rightsLeq(a, j) || !rightsLeq(b, j) {
				t.Errorf("Join(%s,%s)=%s is not an upper bound", a, b, j)
			}
			for _, c := range modes {
				if rightsLeq(a, c) && rightsLeq(b, c) && !rightsLeq(j, c) {
					t.Errorf("Join(%s,%s)=%s not least: %s is a smaller upper bound", a, b, j, c)
				}
			}
			if Join(b, a) != j {
				t.Errorf("Join not commutative at (%s,%s)", a, b)
			}
		}
	}
}

func TestMutualExclusionFine(t *testing.T) {
	m := NewManager()
	var counter int
	var wg sync.WaitGroup
	const threads, iters = 8, 200
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewSession()
			for j := 0; j < iters; j++ {
				s.ToAcquire(Req{Class: 1, Fine: true, Addr: 42, Write: true})
				s.AcquireAll()
				counter++
				s.ReleaseAll()
			}
		}()
	}
	wg.Wait()
	if counter != threads*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, threads*iters)
	}
}

func TestReadParallelism(t *testing.T) {
	m := NewManager()
	var inside atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewSession()
			<-start
			s.ToAcquire(Req{Class: 7, Write: false})
			s.AcquireAll()
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			inside.Add(-1)
			s.ReleaseAll()
		}()
	}
	close(start)
	wg.Wait()
	if peak.Load() < 2 {
		t.Errorf("readers never overlapped (peak=%d); S locks must be shared", peak.Load())
	}
}

// TestIntentionBlocking checks that a coarse X on a class excludes fine
// locks under it but not fine locks under a different class.
func TestIntentionBlocking(t *testing.T) {
	m := NewManager()
	coarse := m.NewSession()
	coarse.ToAcquire(Req{Class: 1, Write: true})
	coarse.AcquireAll()

	blocked := make(chan struct{})
	go func() {
		s := m.NewSession()
		s.ToAcquire(Req{Class: 1, Fine: true, Addr: 5, Write: false})
		s.AcquireAll()
		close(blocked)
		s.ReleaseAll()
	}()

	free := make(chan struct{})
	go func() {
		s := m.NewSession()
		s.ToAcquire(Req{Class: 2, Fine: true, Addr: 5, Write: true})
		s.AcquireAll()
		close(free)
		s.ReleaseAll()
	}()

	select {
	case <-free:
	case <-time.After(2 * time.Second):
		t.Fatal("fine lock under an unrelated class was blocked by coarse X")
	}
	select {
	case <-blocked:
		t.Fatal("fine lock under class 1 was granted while coarse X held")
	case <-time.After(50 * time.Millisecond):
	}
	coarse.ReleaseAll()
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("fine lock never granted after coarse release")
	}
}

// TestMovePatternNoDeadlock hammers the Figure 1 deadlock scenario:
// concurrent move(l1,l2) and move(l2,l1) style acquisitions.
func TestMovePatternNoDeadlock(t *testing.T) {
	m := NewManager()
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := m.NewSession()
				for j := 0; j < 500; j++ {
					a, b := uint64(1), uint64(2)
					if (i+j)%2 == 0 {
						a, b = b, a
					}
					s.ToAcquire(Req{Class: 1, Fine: true, Addr: a, Write: true})
					s.ToAcquire(Req{Class: 1, Fine: true, Addr: b, Write: true})
					s.ToAcquire(Req{Class: 2, Write: j%2 == 0})
					s.AcquireAll()
					s.ReleaseAll()
				}
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: move pattern did not complete")
	}
}

func TestNestedSections(t *testing.T) {
	m := NewManager()
	s := m.NewSession()
	s.ToAcquire(Req{Class: 3, Write: true})
	s.AcquireAll()
	if s.Nesting() != 1 {
		t.Fatalf("nesting = %d, want 1", s.Nesting())
	}
	// Inner section: descriptors are dropped, level bumps.
	s.ToAcquire(Req{Class: 4, Write: true})
	s.AcquireAll()
	if s.Nesting() != 2 {
		t.Fatalf("nesting = %d, want 2", s.Nesting())
	}
	s.ReleaseAll()
	if !s.Held() {
		t.Fatal("outer section released by inner ReleaseAll")
	}
	// Class 4 must still be free for others (inner request was dropped).
	other := m.NewSession()
	granted := make(chan struct{})
	go func() {
		other.ToAcquire(Req{Class: 4, Write: true})
		other.AcquireAll()
		close(granted)
		other.ReleaseAll()
	}()
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("inner-section descriptor leaked a lock")
	}
	s.ReleaseAll()
	if s.Held() {
		t.Fatal("session still held after final ReleaseAll")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewManager()
	m.NewSession().ReleaseAll()
}

// TestGlobalLockExcludesEverything checks that the root ⊤ in X mode blocks
// all other requests.
func TestGlobalLockExcludesEverything(t *testing.T) {
	m := NewManager()
	g := m.NewSession()
	g.ToAcquire(Req{Global: true, Write: true})
	g.AcquireAll()

	probe := make(chan struct{})
	go func() {
		s := m.NewSession()
		s.ToAcquire(Req{Class: 9, Fine: true, Addr: 1, Write: false})
		s.AcquireAll()
		close(probe)
		s.ReleaseAll()
	}()
	select {
	case <-probe:
		t.Fatal("fine ro lock granted while global X held")
	case <-time.After(50 * time.Millisecond):
	}
	g.ReleaseAll()
	select {
	case <-probe:
	case <-time.After(2 * time.Second):
		t.Fatal("lock never granted after global release")
	}
}

// TestFIFOPreventsWriterStarvation checks that a queued writer is granted
// ahead of readers that arrive after it.
func TestFIFOPreventsWriterStarvation(t *testing.T) {
	m := NewManager()
	r1 := m.NewSession()
	r1.ToAcquire(Req{Class: 1, Write: false})
	r1.AcquireAll()

	var order []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	writerQueued := make(chan struct{})
	go func() {
		defer wg.Done()
		w := m.NewSession()
		w.ToAcquire(Req{Class: 1, Write: true})
		close(writerQueued)
		w.AcquireAll()
		record("writer")
		w.ReleaseAll()
	}()
	<-writerQueued
	time.Sleep(20 * time.Millisecond) // let the writer actually enqueue
	go func() {
		defer wg.Done()
		r2 := m.NewSession()
		r2.ToAcquire(Req{Class: 1, Write: false})
		r2.AcquireAll()
		record("reader2")
		r2.ReleaseAll()
	}()
	time.Sleep(20 * time.Millisecond)
	r1.ReleaseAll()
	wg.Wait()
	if len(order) != 2 || order[0] != "writer" {
		t.Errorf("grant order = %v, want writer first (FIFO)", order)
	}
}

func TestStatsCounting(t *testing.T) {
	m := NewManager()
	s := m.NewSession()
	s.ToAcquire(Req{Class: 1, Fine: true, Addr: 1, Write: true})
	s.AcquireAll() // root + class + fine = 3 acquisitions
	s.ReleaseAll()
	if m.Acquires() != 3 {
		t.Errorf("acquires = %d, want 3", m.Acquires())
	}
	if m.Waits() != 0 {
		t.Errorf("waits = %d, want 0", m.Waits())
	}
}

// TestSIXMode: a session needing a coarse read of a class plus a fine
// write below it joins to SIX on the class node, which excludes other
// readers of the class but admits unrelated intention holders.
func TestSIXMode(t *testing.T) {
	m := NewManager()
	s := m.NewSession()
	s.ToAcquire(Req{Class: 1, Write: false})                     // coarse S
	s.ToAcquire(Req{Class: 1, Fine: true, Addr: 7, Write: true}) // fine X below
	s.AcquireAll()

	// A fine reader under class 1 at another address is granted: IS is
	// compatible with SIX and its leaf is free. (This must run before any
	// incompatible waiter enqueues: the FIFO discipline would otherwise
	// park it behind them by design.)
	fine := make(chan struct{})
	go func() {
		fr := m.NewSession()
		fr.ToAcquire(Req{Class: 1, Fine: true, Addr: 99, Write: false})
		fr.AcquireAll()
		close(fine)
		fr.ReleaseAll()
	}()
	select {
	case <-fine:
	case <-time.After(2 * time.Second):
		t.Fatal("fine reader under SIX (IS-compatible) was blocked")
	}

	// Another coarse reader of class 1 must block (S vs SIX).
	reader := make(chan struct{})
	go func() {
		r := m.NewSession()
		r.ToAcquire(Req{Class: 1, Write: false})
		r.AcquireAll()
		close(reader)
		r.ReleaseAll()
	}()
	select {
	case <-reader:
		t.Fatal("coarse S granted while SIX held")
	case <-time.After(50 * time.Millisecond):
	}

	s.ReleaseAll()
	select {
	case <-reader:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never granted after SIX release")
	}
}

// TestBuildPlanShapes spot-checks the exported plan construction.
func TestBuildPlanShapes(t *testing.T) {
	plan := BuildPlan([]Req{
		{Class: 2, Fine: true, Addr: 5, Write: true},
		{Class: 2, Write: false},
		{Class: 1, Write: true},
	})
	if len(plan) != 4 {
		t.Fatalf("plan length %d, want 4 (root, class1, class2, fine)", len(plan))
	}
	if plan[0].Kind != 0 || plan[0].Mode != IX {
		t.Errorf("root step = %+v, want IX root", plan[0])
	}
	if plan[1].Class != 1 || plan[1].Mode != X {
		t.Errorf("class1 step = %+v", plan[1])
	}
	if plan[2].Class != 2 || plan[2].Mode != SIX {
		t.Errorf("class2 step = %+v, want SIX (S join IX)", plan[2])
	}
	if plan[3].Kind != 2 || plan[3].Mode != X {
		t.Errorf("fine step = %+v", plan[3])
	}
	if BuildPlan(nil) != nil {
		t.Error("empty request list should yield no plan")
	}
}

// TestCanonicalPlanOrder: BuildPlan output is canonical under StepLess;
// any reversal of a multi-step plan is not, and the step renderings are
// stable lock identities.
func TestCanonicalPlanOrder(t *testing.T) {
	plan := BuildPlan([]Req{
		{Class: 2, Fine: true, Addr: 5, Write: true},
		{Class: 1, Write: true},
	})
	if !CanonicalPlan(plan) {
		t.Fatalf("BuildPlan output not canonical: %v", plan)
	}
	rev := make([]PlanStep, len(plan))
	for i, s := range plan {
		rev[len(plan)-1-i] = s
	}
	if CanonicalPlan(rev) {
		t.Fatalf("reversed plan passed the canonical check: %v", rev)
	}
	for i := 1; i < len(plan); i++ {
		if StepLess(plan[i], plan[i-1]) {
			t.Errorf("steps %d,%d out of order: %v < %v", i-1, i, plan[i], plan[i-1])
		}
	}
	for _, want := range []string{"root/IX", "class#1/X", "class#2/IX", "fine#2@5/X"} {
		found := false
		for _, s := range plan {
			if s.String() == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no step renders as %q in %v", want, plan)
		}
	}
}
