package mgl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ClassID identifies one points-to partition (a coarse-grain lock). The
// compiler assigns these from the Steensgaard analysis; runtimes may use any
// stable numbering.
type ClassID int64

// Req is a lock descriptor, the runtime triple of §5.2: the partition, an
// optional concrete address within it (fine-grain), and the effect.
type Req struct {
	// Global requests the root ⊤ lock; Class and Addr are ignored.
	Global bool
	// Class is the points-to partition.
	Class ClassID
	// Fine selects a per-address leaf below the partition.
	Fine bool
	// Addr is the orderable identity of the protected cell (fine only).
	Addr uint64
	// Write requests exclusive (X) access; otherwise shared (S).
	Write bool
}

func (r Req) String() string {
	eff := "S"
	if r.Write {
		eff = "X"
	}
	switch {
	case r.Global:
		return "⊤/" + eff
	case r.Fine:
		return fmt.Sprintf("fine(%d,%#x)/%s", r.Class, r.Addr, eff)
	default:
		return fmt.Sprintf("coarse(%d)/%s", r.Class, eff)
	}
}

type fineKey struct {
	class ClassID
	addr  uint64
}

// nStripes is the fixed stripe count of the node tables. Node lookups hash
// their key to one stripe, so sessions touching disjoint partitions never
// contend on table locks.
const nStripes = 64

// stripe is one shard of the node tables: a read-mostly map under its own
// RWMutex. Steady-state lookups take only the read lock; the write lock is
// taken once per node, on creation.
type stripe struct {
	mu      sync.RWMutex
	classes map[ClassID]*node
	fine    map[fineKey]*node
}

// classStripe hashes a partition id to its stripe index.
func classStripe(c ClassID) uint64 {
	return (uint64(c) * 0x9E3779B97F4A7C15) >> (64 - 6) // top 6 bits, nStripes=64
}

// fineStripe hashes a (class, addr) pair to its stripe index.
func fineStripe(c ClassID, addr uint64) uint64 {
	h := uint64(c)*0x9E3779B97F4A7C15 ^ addr*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return (h * 0x94D049BB133111EB) >> (64 - 6)
}

// Manager owns the lock tree. One Manager serializes one program's atomic
// sections; independent programs use independent managers. The node tables
// are striped and each node carries its own grant state, so sessions over
// disjoint partitions proceed without shared locks (the §5.2 runtime's
// whole point — see also RefManager, the retained single-mutex baseline).
type Manager struct {
	root    *node
	stripes [nStripes]stripe
	watch   *Watcher

	// PermutePlan, when set before sessions are created, is inherited by
	// every new session as its plan mutator (see Session.PermutePlan),
	// receiving the session id so mutation tests can corrupt only some
	// sessions and provoke mixed acquisition orders.
	PermutePlan func(session int64, steps []PlanStep) []PlanStep

	// Session registry for statistics aggregation (see Session's
	// single-writer counters).
	sessMu    sync.Mutex
	sessions  []*Session
	nsessions atomic.Int64

	// profiling gates the per-lock profile counters (see profile.go).
	profiling atomic.Bool
}

// NewManager returns an empty lock tree.
func NewManager() *Manager {
	return &Manager{root: newNode("⊤", nodeRank{kind: 0})}
}

// SetWatcher installs a deadlock/lock-order monitor. It must be installed
// before any session acquires locks and cannot be swapped mid-run.
// Installing a watcher disables the uncontended fast path: the monitor's
// bookkeeping must stay synchronous with every grant.
func (m *Manager) SetWatcher(w *Watcher) { m.watch = w }

// Watcher returns the installed monitor, if any.
func (m *Manager) Watcher() *Watcher { return m.watch }

// Acquires returns the total number of node acquisitions performed.
func (m *Manager) Acquires() int64 {
	var t int64
	m.eachSession(func(s *Session) { t += s.statAcq.Load() })
	return t
}

// Waits returns the number of node acquisitions that had to block.
func (m *Manager) Waits() int64 {
	var t int64
	m.eachSession(func(s *Session) { t += s.statWait.Load() })
	return t
}

// FastPathHits returns the number of acquisitions granted by the atomic
// fast path (no node mutex taken).
func (m *Manager) FastPathHits() int64 {
	var t int64
	m.eachSession(func(s *Session) { t += s.statFast.Load() })
	return t
}

// ModeAcquires returns the per-mode acquisition histogram, indexed by Mode.
func (m *Manager) ModeAcquires() [6]int64 {
	var out [6]int64
	m.eachSession(func(s *Session) {
		for i := range out {
			out[i] += s.statMode[i].Load()
		}
	})
	return out
}

func (m *Manager) eachSession(f func(*Session)) {
	m.sessMu.Lock()
	defer m.sessMu.Unlock()
	for _, s := range m.sessions {
		f(s)
	}
}

func (m *Manager) classNode(c ClassID) *node {
	st := &m.stripes[classStripe(c)]
	st.mu.RLock()
	n := st.classes[c]
	st.mu.RUnlock()
	if n != nil {
		return n
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if n = st.classes[c]; n != nil {
		return n
	}
	if st.classes == nil {
		st.classes = map[ClassID]*node{}
	}
	n = newNode(fmt.Sprintf("pts#%d", c), nodeRank{kind: 1, class: c})
	st.classes[c] = n
	return n
}

func (m *Manager) fineNode(c ClassID, addr uint64) *node {
	k := fineKey{c, addr}
	st := &m.stripes[fineStripe(c, addr)]
	st.mu.RLock()
	n := st.fine[k]
	st.mu.RUnlock()
	if n != nil {
		return n
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if n = st.fine[k]; n != nil {
		return n
	}
	if st.fine == nil {
		st.fine = map[fineKey]*node{}
	}
	n = newNode(fmt.Sprintf("fine(%d,%#x)", c, addr), nodeRank{kind: 2, class: c, addr: addr})
	st.fine[k] = n
	return n
}

// planCacheCap bounds each session's memoized plan table; when full the
// table is reset wholesale (cheap, amortized over the refill).
const planCacheCap = 512

// cachedPlan is one memoized acquisition plan: the exact request sequence
// it was built from (compared on lookup, so hash collisions cannot alias
// two different sections onto one plan) and the resolved node steps.
type cachedPlan struct {
	reqs []Req
	plan []planStep
}

// Session is one thread's view of the lock runtime. A session must be used
// by a single goroutine at a time.
type Session struct {
	m       *Manager
	id      int64
	pending []Req
	held    []planStep
	nlevel  int

	// plans memoizes buildPlan keyed by a hash of the request sequence:
	// repeated atomic sections (the common case — the same section entry
	// emits the same descriptors) skip the sort and the node lookups.
	plans map[uint64]*cachedPlan

	// PermutePlan, when non-nil, rewrites the acquisition plan right before
	// the locks are taken. It exists as a fault-injection point for the
	// oracle's mutation tests (e.g. swapping two steps to violate the
	// canonical global order); production code must leave it nil. Setting
	// it disables the session's plan cache.
	PermutePlan func([]PlanStep) []PlanStep
	// AcquireHook, when non-nil, runs before each plan node is acquired.
	// It is test instrumentation: deadlock tests use it to interleave two
	// sessions deterministically between plan steps.
	AcquireHook func(PlanStep)

	// watcher-side registration of held nodes (see watch.go).
	wmu   sync.Mutex
	wheld map[*node]Mode

	// Single-writer statistic counters: only the owning goroutine writes
	// them, so bump uses a plain load+store instead of an atomic RMW — at
	// throughput-benchmark rates the LOCK-prefixed adds of a shared counter
	// are measurable. The Manager's stat accessors aggregate across
	// sessions with atomic loads.
	statAcq  atomic.Int64
	statWait atomic.Int64
	statFast atomic.Int64
	statMode [6]atomic.Int64

	// prof holds the per-lock counters when the manager's profiling is
	// enabled (see profile.go); waitScratch is its reusable flag buffer.
	prof        sessProf
	waitScratch []bool
}

// bump increments a single-writer counter without an atomic RMW.
func bump(c *atomic.Int64) { c.Store(c.Load() + 1) }

// NewSession creates a session on the manager.
func (m *Manager) NewSession() *Session {
	s := &Session{m: m, id: m.nsessions.Add(1)}
	if m.PermutePlan != nil {
		id := s.id
		s.PermutePlan = func(steps []PlanStep) []PlanStep { return m.PermutePlan(id, steps) }
	}
	m.sessMu.Lock()
	m.sessions = append(m.sessions, s)
	m.sessMu.Unlock()
	return s
}

// ID returns the session's manager-unique identity (used in monitor
// reports).
func (s *Session) ID() int64 { return s.id }

// ToAcquire appends a lock descriptor to the pending list (§5.2
// to-acquire). Descriptors added while already inside an atomic section are
// discarded: the outer section's locks cover the inner section.
func (s *Session) ToAcquire(r Req) {
	if s.nlevel > 0 {
		return
	}
	s.pending = append(s.pending, r)
}

// Held reports whether the session currently holds locks (is inside an
// atomic section).
func (s *Session) Held() bool { return s.nlevel > 0 }

// Nesting returns the current atomic nesting level.
func (s *Session) Nesting() int { return s.nlevel }

// WaitCount returns the number of this session's node acquisitions that had
// to block — the hybrid policy's contention signal.
func (s *Session) WaitCount() int64 { return s.statWait.Load() }

// PlanStep is one node of an acquisition plan in the canonical global
// order: the root first, then partition nodes by class id, then fine nodes
// by (class, address). Kind is 0 for the root, 1 for a partition, 2 for a
// fine leaf.
type PlanStep struct {
	Kind  int
	Class ClassID
	Addr  uint64
	Mode  Mode
}

// String renders the step's lock identity and mode, e.g. "root/X",
// "class#3/S" or "fine#3@7/X".
func (s PlanStep) String() string {
	switch s.Kind {
	case 0:
		return "root/" + s.Mode.String()
	case 1:
		return fmt.Sprintf("class#%d/%s", s.Class, s.Mode)
	default:
		return fmt.Sprintf("fine#%d@%d/%s", s.Class, s.Addr, s.Mode)
	}
}

// stepLess is the canonical global order over plan steps: the root first,
// then partitions by class id, then fine leaves by (class, address).
func stepLess(a, b PlanStep) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Addr < b.Addr
}

// StepLess exposes the canonical global acquisition order over plan steps:
// the root first, then partitions by class id, then fine leaves by
// (class, address). The Watcher asserts it dynamically on every grant; the
// static plan auditor asserts it on whole plans without executing.
func StepLess(a, b PlanStep) bool { return stepLess(a, b) }

// CanonicalPlan reports whether steps respect the canonical global order
// (nondecreasing under StepLess). BuildPlan always returns a canonical plan;
// a non-canonical one can only come from a plan mutator.
func CanonicalPlan(steps []PlanStep) bool {
	for i := 1; i < len(steps); i++ {
		if stepLess(steps[i], steps[i-1]) {
			return false
		}
	}
	return true
}

// smallPlanReqs bounds the descriptor count handled by the allocation-light
// plan builder; longer lists fall back to the map-based path.
const smallPlanReqs = 16

// BuildPlan folds a descriptor list into the ordered per-node mode plan of
// the hierarchical protocol: leaf modes are joined per node and every
// ancestor receives the matching intention mode. The same plan logic drives
// both the real runtime and the machine simulator.
func BuildPlan(reqs []Req) []PlanStep {
	if len(reqs) <= smallPlanReqs {
		return buildPlanSmall(reqs)
	}
	return buildPlanMaps(reqs)
}

// joinStep joins mode into the matching step among buf's first n entries,
// appending a new step when absent; it returns the new entry count.
func joinStep(buf []PlanStep, n, kind int, class ClassID, addr uint64, mode Mode) int {
	for i := 0; i < n; i++ {
		if buf[i].Kind == kind && buf[i].Class == class && buf[i].Addr == addr {
			buf[i].Mode = Join(buf[i].Mode, mode)
			return n
		}
	}
	buf[n] = PlanStep{Kind: kind, Class: class, Addr: addr, Mode: mode}
	return n + 1
}

// buildPlanSmall is BuildPlan for short descriptor lists — the common case,
// since one section entry emits a handful of descriptors. The per-node
// joins are linear scans over a stack buffer and the canonical order is
// restored by insertion sort, so a cache-missing buildPlan costs one slice
// allocation (the returned plan) instead of two maps and a reflective sort.
func buildPlanSmall(reqs []Req) []PlanStep {
	rootMode := ModeNone
	var buf [2 * smallPlanReqs]PlanStep // each descriptor adds at most a leaf and its class
	n := 0
	for _, r := range reqs {
		m := S
		if r.Write {
			m = X
		}
		if r.Global {
			rootMode = Join(rootMode, m)
			continue
		}
		rootMode = Join(rootMode, intention(m))
		if r.Fine {
			n = joinStep(buf[:], n, 2, r.Class, r.Addr, m)
			n = joinStep(buf[:], n, 1, r.Class, 0, intention(m))
		} else {
			n = joinStep(buf[:], n, 1, r.Class, 0, m)
		}
	}
	if rootMode == ModeNone {
		return nil
	}
	for i := 1; i < n; i++ {
		st := buf[i]
		j := i
		for j > 0 && stepLess(st, buf[j-1]) {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = st
	}
	plan := make([]PlanStep, 1+n)
	plan[0] = PlanStep{Kind: 0, Mode: rootMode}
	copy(plan[1:], buf[:n])
	return plan
}

// buildPlanMaps is the general-size plan builder: per-node modes joined
// through maps, canonical order restored by sort.
func buildPlanMaps(reqs []Req) []PlanStep {
	rootMode := ModeNone
	classMode := map[ClassID]Mode{}
	fineMode := map[fineKey]Mode{}
	leaf := func(w bool) Mode {
		if w {
			return X
		}
		return S
	}
	for _, r := range reqs {
		switch {
		case r.Global:
			rootMode = Join(rootMode, leaf(r.Write))
		case !r.Fine:
			classMode[r.Class] = Join(classMode[r.Class], leaf(r.Write))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		default:
			k := fineKey{r.Class, r.Addr}
			fineMode[k] = Join(fineMode[k], leaf(r.Write))
			classMode[r.Class] = Join(classMode[r.Class], intention(leaf(r.Write)))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		}
	}
	if rootMode == ModeNone {
		return nil
	}
	plan := make([]PlanStep, 0, 1+len(classMode)+len(fineMode))
	plan = append(plan, PlanStep{Kind: 0, Mode: rootMode})
	for c, mode := range classMode {
		plan = append(plan, PlanStep{Kind: 1, Class: c, Mode: mode})
	}
	for k, mode := range fineMode {
		plan = append(plan, PlanStep{Kind: 2, Class: k.class, Addr: k.addr, Mode: mode})
	}
	sort.Slice(plan, func(i, j int) bool { return stepLess(plan[i], plan[j]) })
	return plan
}

// planStep is one (node, mode) pair of a session's acquisition plan.
type planStep struct {
	n    *node
	mode Mode
}

// AcquireAll requests all pending locks using the hierarchical protocol
// (§5.2 acquire-all): per-node modes are joined, ancestors receive intention
// modes, and nodes are taken top-down in the canonical global order.
// Nested calls only bump the nesting level (§5.3).
//
// If a Watcher is installed and an acquisition would close a waits-for
// cycle, the already-acquired prefix is released and the call panics with a
// *DeadlockError (the monitor's recovery point for injected-deadlock
// tests); without a watcher such a schedule blocks forever, as any real
// deadlock would.
func (s *Session) AcquireAll() {
	s.nlevel++
	if s.nlevel > 1 {
		return
	}
	plan := s.buildPlan()
	profiling := s.m.profiling.Load()
	var waitedFlags []bool
	if profiling {
		waitedFlags = s.waitScratch[:0]
	}
	for i, st := range plan {
		if s.AcquireHook != nil {
			s.AcquireHook(st.n.step(st.mode))
		}
		waited, err := st.n.acquire(s, st.mode)
		if waited {
			bump(&s.statWait)
		}
		if profiling {
			waitedFlags = append(waitedFlags, waited)
		}
		bump(&s.statAcq)
		bump(&s.statMode[st.mode])
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				plan[j].n.release(s, plan[j].mode)
			}
			s.nlevel--
			s.pending = s.pending[:0]
			panic(err)
		}
	}
	if profiling {
		s.waitScratch = waitedFlags
		steps := make([]PlanStep, len(plan))
		for i, st := range plan {
			steps[i] = st.n.step(st.mode)
		}
		s.prof.record(steps, waitedFlags)
	}
	s.held = plan
	s.pending = s.pending[:0]
}

// ReleaseAll releases every lock held by the session, bottom-up (§5.2
// release-all). Inner nested sections only decrement the nesting level.
func (s *Session) ReleaseAll() {
	if s.nlevel == 0 {
		panic("mgl: ReleaseAll without AcquireAll")
	}
	s.nlevel--
	if s.nlevel > 0 {
		return
	}
	for i := len(s.held) - 1; i >= 0; i-- {
		s.held[i].n.release(s, s.held[i].mode)
	}
	s.held = s.held[:0]
}

// HeldSteps returns the canonical descriptors of the locks the session
// currently holds, in acquisition order. The oracle's race detector derives
// its happens-before edges from these.
func (s *Session) HeldSteps() []PlanStep {
	out := make([]PlanStep, len(s.held))
	for i, st := range s.held {
		out[i] = st.n.step(st.mode)
	}
	return out
}

// reqHash folds the request sequence into the plan-cache key
// (order-sensitive splitmix-style word mixing over the descriptor fields:
// the same section entry emits the same sequence, which is all the cache
// needs to hit, and collisions are harmless — lookups verify the full
// sequence).
func reqHash(reqs []Req) uint64 {
	const prime = 0xBF58476D1CE4E5B9
	h := uint64(0x9E3779B97F4A7C15)
	for _, r := range reqs {
		var bits uint64
		if r.Global {
			bits |= 1
		}
		if r.Fine {
			bits |= 2
		}
		if r.Write {
			bits |= 4
		}
		h = (h ^ bits) * prime
		h ^= h >> 29
		h = (h ^ uint64(r.Class)) * prime
		h ^= h >> 29
		h = (h ^ r.Addr) * prime
		h ^= h >> 29
	}
	return h
}

func reqsEqual(a, b []Req) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildPlan resolves the shared plan logic onto this manager's nodes,
// memoizing the result per request sequence. Mutated sessions (PermutePlan
// set) bypass the cache so fault injection always sees a fresh plan.
func (s *Session) buildPlan() []planStep {
	if s.PermutePlan != nil {
		return s.resolve(s.PermutePlan(BuildPlan(s.pending)))
	}
	key := reqHash(s.pending)
	if c, ok := s.plans[key]; ok && reqsEqual(c.reqs, s.pending) {
		return c.plan
	}
	plan := s.resolve(BuildPlan(s.pending))
	if s.plans == nil {
		s.plans = map[uint64]*cachedPlan{}
	} else if len(s.plans) >= planCacheCap {
		s.plans = make(map[uint64]*cachedPlan, planCacheCap)
	}
	s.plans[key] = &cachedPlan{reqs: append([]Req(nil), s.pending...), plan: plan}
	return plan
}

// resolve maps canonical plan steps onto this manager's nodes.
func (s *Session) resolve(steps []PlanStep) []planStep {
	plan := make([]planStep, len(steps))
	for i, st := range steps {
		var n *node
		switch st.Kind {
		case 0:
			n = s.m.root
		case 1:
			n = s.m.classNode(st.Class)
		default:
			n = s.m.fineNode(st.Class, st.Addr)
		}
		plan[i] = planStep{n: n, mode: st.Mode}
	}
	return plan
}

// nodeRank is a node's position in the canonical global acquisition order
// (the PlanStep sort key: root < partitions by class < leaves by address).
type nodeRank struct {
	kind  int
	class ClassID
	addr  uint64
}

// less is the canonical global order over nodes.
func (r nodeRank) less(o nodeRank) bool {
	if r.kind != o.kind {
		return r.kind < o.kind
	}
	if r.class != o.class {
		return r.class < o.class
	}
	return r.addr < o.addr
}
