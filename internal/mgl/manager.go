package mgl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ClassID identifies one points-to partition (a coarse-grain lock). The
// compiler assigns these from the Steensgaard analysis; runtimes may use any
// stable numbering.
type ClassID int64

// Req is a lock descriptor, the runtime triple of §5.2: the partition, an
// optional concrete address within it (fine-grain), and the effect.
type Req struct {
	// Global requests the root ⊤ lock; Class and Addr are ignored.
	Global bool
	// Class is the points-to partition.
	Class ClassID
	// Fine selects a per-address leaf below the partition.
	Fine bool
	// Addr is the orderable identity of the protected cell (fine only).
	Addr uint64
	// Write requests exclusive (X) access; otherwise shared (S).
	Write bool
}

func (r Req) String() string {
	eff := "S"
	if r.Write {
		eff = "X"
	}
	switch {
	case r.Global:
		return "⊤/" + eff
	case r.Fine:
		return fmt.Sprintf("fine(%d,%#x)/%s", r.Class, r.Addr, eff)
	default:
		return fmt.Sprintf("coarse(%d)/%s", r.Class, eff)
	}
}

type fineKey struct {
	class ClassID
	addr  uint64
}

// Manager owns the lock tree. One Manager serializes one program's atomic
// sections; independent programs use independent managers.
type Manager struct {
	mu      sync.Mutex
	root    *node
	classes map[ClassID]*node
	fine    map[fineKey]*node
	watch   *Watcher

	// PermutePlan, when set before sessions are created, is inherited by
	// every new session as its plan mutator (see Session.PermutePlan),
	// receiving the session id so mutation tests can corrupt only some
	// sessions and provoke mixed acquisition orders.
	PermutePlan func(session int64, steps []PlanStep) []PlanStep

	// Stats.
	acquires  atomic.Int64
	waits     atomic.Int64
	nsessions atomic.Int64
}

// NewManager returns an empty lock tree.
func NewManager() *Manager {
	return &Manager{
		root:    newNode("⊤", nodeRank{kind: 0}),
		classes: map[ClassID]*node{},
		fine:    map[fineKey]*node{},
	}
}

// SetWatcher installs a deadlock/lock-order monitor. It must be installed
// before any session acquires locks and cannot be swapped mid-run.
func (m *Manager) SetWatcher(w *Watcher) { m.watch = w }

// Watcher returns the installed monitor, if any.
func (m *Manager) Watcher() *Watcher { return m.watch }

// Acquires returns the total number of node acquisitions performed.
func (m *Manager) Acquires() int64 { return m.acquires.Load() }

// Waits returns the number of node acquisitions that had to block.
func (m *Manager) Waits() int64 { return m.waits.Load() }

func (m *Manager) classNode(c ClassID) *node {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.classes[c]
	if !ok {
		n = newNode(fmt.Sprintf("pts#%d", c), nodeRank{kind: 1, class: c})
		m.classes[c] = n
	}
	return n
}

func (m *Manager) fineNode(c ClassID, addr uint64) *node {
	k := fineKey{c, addr}
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.fine[k]
	if !ok {
		n = newNode(fmt.Sprintf("fine(%d,%#x)", c, addr), nodeRank{kind: 2, class: c, addr: addr})
		m.fine[k] = n
	}
	return n
}

// Session is one thread's view of the lock runtime. A session must be used
// by a single goroutine at a time.
type Session struct {
	m       *Manager
	id      int64
	pending []Req
	held    []planStep
	nlevel  int

	// PermutePlan, when non-nil, rewrites the acquisition plan right before
	// the locks are taken. It exists as a fault-injection point for the
	// oracle's mutation tests (e.g. swapping two steps to violate the
	// canonical global order); production code must leave it nil.
	PermutePlan func([]PlanStep) []PlanStep
	// AcquireHook, when non-nil, runs before each plan node is acquired.
	// It is test instrumentation: deadlock tests use it to interleave two
	// sessions deterministically between plan steps.
	AcquireHook func(PlanStep)
}

// NewSession creates a session on the manager.
func (m *Manager) NewSession() *Session {
	s := &Session{m: m, id: m.nsessions.Add(1)}
	if m.PermutePlan != nil {
		id := s.id
		s.PermutePlan = func(steps []PlanStep) []PlanStep { return m.PermutePlan(id, steps) }
	}
	return s
}

// ID returns the session's manager-unique identity (used in monitor
// reports).
func (s *Session) ID() int64 { return s.id }

// ToAcquire appends a lock descriptor to the pending list (§5.2
// to-acquire). Descriptors added while already inside an atomic section are
// discarded: the outer section's locks cover the inner section.
func (s *Session) ToAcquire(r Req) {
	if s.nlevel > 0 {
		return
	}
	s.pending = append(s.pending, r)
}

// Held reports whether the session currently holds locks (is inside an
// atomic section).
func (s *Session) Held() bool { return s.nlevel > 0 }

// Nesting returns the current atomic nesting level.
func (s *Session) Nesting() int { return s.nlevel }

// PlanStep is one node of an acquisition plan in the canonical global
// order: the root first, then partition nodes by class id, then fine nodes
// by (class, address). Kind is 0 for the root, 1 for a partition, 2 for a
// fine leaf.
type PlanStep struct {
	Kind  int
	Class ClassID
	Addr  uint64
	Mode  Mode
}

// BuildPlan folds a descriptor list into the ordered per-node mode plan of
// the hierarchical protocol: leaf modes are joined per node and every
// ancestor receives the matching intention mode. The same plan logic drives
// both the real runtime and the machine simulator.
func BuildPlan(reqs []Req) []PlanStep {
	rootMode := ModeNone
	classMode := map[ClassID]Mode{}
	fineMode := map[fineKey]Mode{}
	leaf := func(w bool) Mode {
		if w {
			return X
		}
		return S
	}
	for _, r := range reqs {
		switch {
		case r.Global:
			rootMode = Join(rootMode, leaf(r.Write))
		case !r.Fine:
			classMode[r.Class] = Join(classMode[r.Class], leaf(r.Write))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		default:
			k := fineKey{r.Class, r.Addr}
			fineMode[k] = Join(fineMode[k], leaf(r.Write))
			classMode[r.Class] = Join(classMode[r.Class], intention(leaf(r.Write)))
			rootMode = Join(rootMode, intention(leaf(r.Write)))
		}
	}
	if rootMode == ModeNone {
		return nil
	}
	plan := make([]PlanStep, 0, 1+len(classMode)+len(fineMode))
	plan = append(plan, PlanStep{Kind: 0, Mode: rootMode})
	for c, mode := range classMode {
		plan = append(plan, PlanStep{Kind: 1, Class: c, Mode: mode})
	}
	for k, mode := range fineMode {
		plan = append(plan, PlanStep{Kind: 2, Class: k.class, Addr: k.addr, Mode: mode})
	}
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Addr < b.Addr
	})
	return plan
}

// planStep is one (node, mode) pair of a session's acquisition plan.
type planStep struct {
	n    *node
	mode Mode
}

// AcquireAll requests all pending locks using the hierarchical protocol
// (§5.2 acquire-all): per-node modes are joined, ancestors receive intention
// modes, and nodes are taken top-down in the canonical global order.
// Nested calls only bump the nesting level (§5.3).
//
// If a Watcher is installed and an acquisition would close a waits-for
// cycle, the already-acquired prefix is released and the call panics with a
// *DeadlockError (the monitor's recovery point for injected-deadlock
// tests); without a watcher such a schedule blocks forever, as any real
// deadlock would.
func (s *Session) AcquireAll() {
	s.nlevel++
	if s.nlevel > 1 {
		return
	}
	plan := s.buildPlan()
	for i, st := range plan {
		if s.AcquireHook != nil {
			s.AcquireHook(st.n.step(st.mode))
		}
		waited, err := st.n.acquire(s, st.mode)
		if waited {
			s.m.waits.Add(1)
		}
		s.m.acquires.Add(1)
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				plan[j].n.release(s, plan[j].mode)
			}
			s.nlevel--
			s.pending = s.pending[:0]
			panic(err)
		}
	}
	s.held = plan
	s.pending = s.pending[:0]
}

// ReleaseAll releases every lock held by the session, bottom-up (§5.2
// release-all). Inner nested sections only decrement the nesting level.
func (s *Session) ReleaseAll() {
	if s.nlevel == 0 {
		panic("mgl: ReleaseAll without AcquireAll")
	}
	s.nlevel--
	if s.nlevel > 0 {
		return
	}
	for i := len(s.held) - 1; i >= 0; i-- {
		s.held[i].n.release(s, s.held[i].mode)
	}
	s.held = s.held[:0]
}

// HeldSteps returns the canonical descriptors of the locks the session
// currently holds, in acquisition order. The oracle's race detector derives
// its happens-before edges from these.
func (s *Session) HeldSteps() []PlanStep {
	out := make([]PlanStep, len(s.held))
	for i, st := range s.held {
		out[i] = st.n.step(st.mode)
	}
	return out
}

// buildPlan resolves the shared plan logic onto this manager's nodes.
func (s *Session) buildPlan() []planStep {
	steps := BuildPlan(s.pending)
	if s.PermutePlan != nil {
		steps = s.PermutePlan(steps)
	}
	plan := make([]planStep, len(steps))
	for i, st := range steps {
		var n *node
		switch st.Kind {
		case 0:
			n = s.m.root
		case 1:
			n = s.m.classNode(st.Class)
		default:
			n = s.m.fineNode(st.Class, st.Addr)
		}
		plan[i] = planStep{n: n, mode: st.Mode}
	}
	return plan
}

// nodeRank is a node's position in the canonical global acquisition order
// (the PlanStep sort key: root < partitions by class < leaves by address).
type nodeRank struct {
	kind  int
	class ClassID
	addr  uint64
}

// less is the canonical global order over nodes.
func (r nodeRank) less(o nodeRank) bool {
	if r.kind != o.kind {
		return r.kind < o.kind
	}
	if r.class != o.class {
		return r.class < o.class
	}
	return r.addr < o.addr
}

// node is one lock in the tree: a mode lock with a strict-FIFO wait queue
// (granting the head and any following compatible waiters), which prevents
// starvation while still batching compatible requests.
type node struct {
	name  string
	rank  nodeRank
	mu    sync.Mutex
	count [6]int // held count per mode
	queue []*waiter
}

type waiter struct {
	s     *Session
	mode  Mode
	ready chan struct{}
}

func newNode(name string, rank nodeRank) *node { return &node{name: name, rank: rank} }

// step renders the node back as a canonical plan step in the given mode.
func (n *node) step(mode Mode) PlanStep {
	return PlanStep{Kind: n.rank.kind, Class: n.rank.class, Addr: n.rank.addr, Mode: mode}
}

// compatibleWithHeld reports whether mode can be granted alongside the
// currently held modes.
func (n *node) compatibleWithHeld(mode Mode) bool {
	for m := IS; m <= X; m++ {
		if n.count[m] > 0 && !Compatible(mode, m) {
			return false
		}
	}
	return true
}

// acquire blocks until the node is granted to s in the given mode; it
// reports whether it had to wait. With a watcher installed, an acquisition
// that would close a waits-for cycle returns a *DeadlockError instead of
// enqueueing.
func (n *node) acquire(s *Session, mode Mode) (bool, error) {
	w := s.m.watch
	n.mu.Lock()
	if len(n.queue) == 0 && n.compatibleWithHeld(mode) {
		n.count[mode]++
		if w != nil {
			w.grant(s, n, mode)
		}
		n.mu.Unlock()
		return false, nil
	}
	if w != nil {
		if err := w.wait(s, n, mode); err != nil {
			n.mu.Unlock()
			return true, err
		}
	}
	wt := &waiter{s: s, mode: mode, ready: make(chan struct{})}
	n.queue = append(n.queue, wt)
	n.mu.Unlock()
	<-wt.ready
	return true, nil
}

// release drops one holder in the given mode and wakes queued waiters in
// FIFO order while they remain compatible.
func (n *node) release(s *Session, mode Mode) {
	w := s.m.watch
	n.mu.Lock()
	if n.count[mode] <= 0 {
		n.mu.Unlock()
		panic("mgl: release of unheld mode " + mode.String() + " on " + n.name)
	}
	n.count[mode]--
	if w != nil {
		w.unhold(s, n)
	}
	for len(n.queue) > 0 && n.compatibleWithHeld(n.queue[0].mode) {
		wt := n.queue[0]
		n.queue = n.queue[1:]
		n.count[wt.mode]++
		if w != nil {
			w.grant(wt.s, n, wt.mode)
		}
		close(wt.ready)
	}
	n.mu.Unlock()
}
