package mgl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Watcher is the deadlock monitor of the concurrency oracle: it shadows the
// manager's grants and waits to maintain
//
//   - a live waits-for graph over sessions, checked for cycles at every
//     blocking acquisition (a cycle is a manifest deadlock; the closing
//     acquisition is aborted with a *DeadlockError so tests can recover);
//   - a cumulative lock-order graph with an edge a→b whenever some session
//     acquired b while holding a (Goodlock-style: a cycle here is a
//     potential deadlock even if no schedule manifested it);
//   - the canonical-order assertion: within one acquire-all, every grant
//     must follow the global node order the transform emits, which is the
//     protocol's deadlock-freedom argument (§5.2).
//
// The sharded runtime has no global lock to piggyback on, so the monitor's
// state is sharded the same way the runtime is: holder sets are registered
// per node (nodeWatch, under each node's own small mutex) and per session
// (Session.wheld), and a seqlock-style sequence counter brackets every
// mutation. Cycle detection walks the per-node registrations without any
// global lock and retries until it observes an unchanged sequence — the
// snapshot is then consistent. Installing a Watcher disables the manager's
// atomic fast path, so every grant and release still reaches the monitor
// synchronously, under the owning node's mutex.
type Watcher struct {
	// seq brackets mutations of the sharded holder/wait registrations:
	// incremented before and after each one (odd = mutation in flight).
	seq atomic.Uint64

	// waitPathMu serializes wait registration + cycle detection, so of two
	// sessions closing a cycle against each other exactly one observes it
	// (the second), matching the single-lock monitor's behavior.
	waitPathMu sync.Mutex

	waitsMu sync.Mutex
	waits   map[*Session]waitReq

	// repMu guards the cumulative findings and the lock-order graph.
	repMu      sync.Mutex
	order      map[*node]map[*node]bool
	violations []OrderViolation
	cycles     []OrderCycle
	deadlocks  []DeadlockError
}

// nodeWatch is the per-node holder registration, allocated lazily on a
// node's first monitored grant.
type nodeWatch struct {
	mu      sync.Mutex
	holders map[*Session]Mode
}

// watchState returns the node's registration, allocating it once.
func (n *node) watchState() *nodeWatch {
	n.watchOnce.Do(func() { n.watch = &nodeWatch{holders: map[*Session]Mode{}} })
	return n.watch
}

type waitReq struct {
	n    *node
	mode Mode
}

// NewWatcher returns an empty monitor.
func NewWatcher() *Watcher {
	return &Watcher{
		waits: map[*Session]waitReq{},
		order: map[*node]map[*node]bool{},
	}
}

// DeadlockError reports a manifest deadlock: the waits-for cycle that a
// blocking acquisition would have closed.
type DeadlockError struct {
	// Cycle lists "session N waits for <node>" entries, one per edge.
	Cycle []string
}

func (e *DeadlockError) Error() string {
	return "mgl: deadlock: " + strings.Join(e.Cycle, " -> ")
}

// OrderViolation reports an acquisition against the canonical global order:
// a session was granted Acquired while already holding Holding, which ranks
// at or after it.
type OrderViolation struct {
	Session  int64
	Holding  string
	Acquired string
}

func (v OrderViolation) String() string {
	return fmt.Sprintf("session %d acquired %s while holding %s (canonical order violated)",
		v.Session, v.Acquired, v.Holding)
}

// OrderCycle is a cycle in the cumulative lock-order graph: a potential
// deadlock, reported even when no interleaving manifested it.
type OrderCycle struct {
	Nodes []string
}

func (c OrderCycle) String() string {
	return "lock-order cycle: " + strings.Join(c.Nodes, " -> ")
}

// OrderViolations returns all canonical-order assertion failures.
func (w *Watcher) OrderViolations() []OrderViolation {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	return append([]OrderViolation(nil), w.violations...)
}

// LockOrderCycles returns all cycles found in the lock-order graph.
func (w *Watcher) LockOrderCycles() []OrderCycle {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	return append([]OrderCycle(nil), w.cycles...)
}

// Deadlocks returns all manifest deadlocks detected (and aborted).
func (w *Watcher) Deadlocks() []DeadlockError {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	return append([]DeadlockError(nil), w.deadlocks...)
}

// Err summarizes the monitor's findings as a single error, nil when clean.
func (w *Watcher) Err() error {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	switch {
	case len(w.deadlocks) > 0:
		d := w.deadlocks[0]
		return &d
	case len(w.violations) > 0:
		return fmt.Errorf("mgl: %s", w.violations[0])
	case len(w.cycles) > 0:
		return fmt.Errorf("mgl: %s", w.cycles[0])
	}
	return nil
}

// grant records that s now holds n in mode; called under n's mutex at every
// grant (immediate or queued — the fast path is disabled while a monitor is
// installed).
func (w *Watcher) grant(s *Session, n *node, mode Mode) {
	w.seq.Add(1)
	defer w.seq.Add(1)

	w.waitsMu.Lock()
	delete(w.waits, s)
	w.waitsMu.Unlock()

	// Snapshot the session's held set before inserting n, for the
	// canonical-order assertion and the lock-order graph edges.
	s.wmu.Lock()
	if s.wheld == nil {
		s.wheld = map[*node]Mode{}
	}
	prior := make([]*node, 0, len(s.wheld))
	for h := range s.wheld {
		prior = append(prior, h)
	}
	s.wheld[n] = mode
	s.wmu.Unlock()

	w.repMu.Lock()
	for _, h := range prior {
		if !h.rank.less(n.rank) {
			w.violations = append(w.violations, OrderViolation{
				Session: s.id, Holding: h.name, Acquired: n.name,
			})
		}
		w.addOrderEdge(h, n)
	}
	w.repMu.Unlock()

	nw := n.watchState()
	nw.mu.Lock()
	nw.holders[s] = mode
	nw.mu.Unlock()
}

// unhold removes s as a holder of n; called under n's mutex on release.
func (w *Watcher) unhold(s *Session, n *node) {
	w.seq.Add(1)
	defer w.seq.Add(1)

	nw := n.watchState()
	nw.mu.Lock()
	delete(nw.holders, s)
	nw.mu.Unlock()

	s.wmu.Lock()
	delete(s.wheld, n)
	s.wmu.Unlock()
}

// wait registers that s is about to block on n; if the new edge closes a
// waits-for cycle the deadlock is recorded and an error returned instead,
// leaving no wait registered.
func (w *Watcher) wait(s *Session, n *node, mode Mode) error {
	w.waitPathMu.Lock()
	defer w.waitPathMu.Unlock()

	w.seq.Add(1)
	w.waitsMu.Lock()
	w.waits[s] = waitReq{n: n, mode: mode}
	w.waitsMu.Unlock()
	w.seq.Add(1)

	if cycle := w.findWaitCycle(s); cycle != nil {
		w.seq.Add(1)
		w.waitsMu.Lock()
		delete(w.waits, s)
		w.waitsMu.Unlock()
		w.seq.Add(1)
		d := DeadlockError{Cycle: cycle}
		w.repMu.Lock()
		w.deadlocks = append(w.deadlocks, d)
		w.repMu.Unlock()
		return &d
	}
	return nil
}

// findWaitCycle walks the waits-for graph from start under the seqlock
// discipline: read the sequence, take a consistent copy of the wait edges,
// walk per-node holder registrations, and accept the result only if the
// sequence is unchanged (even and equal); otherwise retry. An edge leads
// from a waiting session to every session holding the awaited node in an
// incompatible mode. It returns a description of the cycle through start,
// or nil. After maxSnapshotRetries the last walk is accepted as-is — by
// then the graph has mutated under every attempt, which a quiescing
// deadlock (all parties blocked) cannot do.
func (w *Watcher) findWaitCycle(start *Session) []string {
	const maxSnapshotRetries = 32
	var found []string
	for attempt := 0; ; attempt++ {
		s1 := w.seq.Load()
		if s1%2 == 1 && attempt < maxSnapshotRetries {
			continue
		}
		found = w.walkWaits(start)
		s2 := w.seq.Load()
		if s1 == s2 || attempt >= maxSnapshotRetries {
			return found
		}
	}
}

// walkWaits is one cycle-detection pass over the current registrations.
func (w *Watcher) walkWaits(start *Session) []string {
	w.waitsMu.Lock()
	waits := make(map[*Session]waitReq, len(w.waits))
	for s, r := range w.waits {
		waits[s] = r
	}
	w.waitsMu.Unlock()

	holdersOf := func(n *node) map[*Session]Mode {
		nw := n.watchState()
		nw.mu.Lock()
		out := make(map[*Session]Mode, len(nw.holders))
		for s, m := range nw.holders {
			out[s] = m
		}
		nw.mu.Unlock()
		return out
	}

	seen := map[*Session]bool{}
	var path []string
	var found []string
	var visit func(s *Session) bool
	visit = func(s *Session) bool {
		req, waiting := waits[s]
		if !waiting {
			return false
		}
		path = append(path, fmt.Sprintf("session %d waits for %s/%s", s.id, req.n.name, req.mode))
		defer func() { path = path[:len(path)-1] }()
		for holder, hm := range holdersOf(req.n) {
			if holder == s || Compatible(req.mode, hm) {
				continue
			}
			if holder == start {
				found = append(append([]string(nil), path...), fmt.Sprintf("session %d", start.id))
				return true
			}
			if seen[holder] {
				continue
			}
			seen[holder] = true
			if visit(holder) {
				return true
			}
		}
		return false
	}
	visit(start)
	return found
}

// addOrderEdge inserts a→b into the lock-order graph and records a cycle if
// b already reaches a. Callers hold repMu.
func (w *Watcher) addOrderEdge(a, b *node) {
	if a == b {
		return
	}
	es := w.order[a]
	if es == nil {
		es = map[*node]bool{}
		w.order[a] = es
	}
	if es[b] {
		return
	}
	es[b] = true
	if path := w.orderPath(b, a); path != nil {
		names := make([]string, 0, len(path)+1)
		for _, n := range path {
			names = append(names, n.name)
		}
		names = append(names, b.name)
		w.cycles = append(w.cycles, OrderCycle{Nodes: names})
	}
}

// orderPath returns a path from a to b in the order graph, or nil. Callers
// hold repMu.
func (w *Watcher) orderPath(a, b *node) []*node {
	seen := map[*node]bool{a: true}
	var dfs func(n *node, acc []*node) []*node
	dfs = func(n *node, acc []*node) []*node {
		acc = append(acc, n)
		if n == b {
			return append([]*node(nil), acc...)
		}
		// Deterministic iteration keeps reports stable.
		succs := make([]*node, 0, len(w.order[n]))
		for m := range w.order[n] {
			succs = append(succs, m)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].rank.less(succs[j].rank) })
		for _, m := range succs {
			if seen[m] {
				continue
			}
			seen[m] = true
			if p := dfs(m, acc); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(a, nil)
}
