package mgl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Watcher is the deadlock monitor of the concurrency oracle: it shadows the
// manager's grants and waits to maintain
//
//   - a live waits-for graph over sessions, checked for cycles at every
//     blocking acquisition (a cycle is a manifest deadlock; the closing
//     acquisition is aborted with a *DeadlockError so tests can recover);
//   - a cumulative lock-order graph with an edge a→b whenever some session
//     acquired b while holding a (Goodlock-style: a cycle here is a
//     potential deadlock even if no schedule manifested it);
//   - the canonical-order assertion: within one acquire-all, every grant
//     must follow the global node order the transform emits, which is the
//     protocol's deadlock-freedom argument (§5.2).
//
// All bookkeeping happens synchronously under the node mutexes, so the
// recorded graphs exactly match the grant/wait history.
type Watcher struct {
	mu      sync.Mutex
	holders map[*node]map[*Session]Mode
	held    map[*Session]map[*node]Mode
	waits   map[*Session]waitReq
	order   map[*node]map[*node]bool

	violations []OrderViolation
	cycles     []OrderCycle
	deadlocks  []DeadlockError
}

type waitReq struct {
	n    *node
	mode Mode
}

// NewWatcher returns an empty monitor.
func NewWatcher() *Watcher {
	return &Watcher{
		holders: map[*node]map[*Session]Mode{},
		held:    map[*Session]map[*node]Mode{},
		waits:   map[*Session]waitReq{},
		order:   map[*node]map[*node]bool{},
	}
}

// DeadlockError reports a manifest deadlock: the waits-for cycle that a
// blocking acquisition would have closed.
type DeadlockError struct {
	// Cycle lists "session N waits for <node>" entries, one per edge.
	Cycle []string
}

func (e *DeadlockError) Error() string {
	return "mgl: deadlock: " + strings.Join(e.Cycle, " -> ")
}

// OrderViolation reports an acquisition against the canonical global order:
// a session was granted Acquired while already holding Holding, which ranks
// at or after it.
type OrderViolation struct {
	Session  int64
	Holding  string
	Acquired string
}

func (v OrderViolation) String() string {
	return fmt.Sprintf("session %d acquired %s while holding %s (canonical order violated)",
		v.Session, v.Acquired, v.Holding)
}

// OrderCycle is a cycle in the cumulative lock-order graph: a potential
// deadlock, reported even when no interleaving manifested it.
type OrderCycle struct {
	Nodes []string
}

func (c OrderCycle) String() string {
	return "lock-order cycle: " + strings.Join(c.Nodes, " -> ")
}

// OrderViolations returns all canonical-order assertion failures.
func (w *Watcher) OrderViolations() []OrderViolation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]OrderViolation(nil), w.violations...)
}

// LockOrderCycles returns all cycles found in the lock-order graph.
func (w *Watcher) LockOrderCycles() []OrderCycle {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]OrderCycle(nil), w.cycles...)
}

// Deadlocks returns all manifest deadlocks detected (and aborted).
func (w *Watcher) Deadlocks() []DeadlockError {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]DeadlockError(nil), w.deadlocks...)
}

// Err summarizes the monitor's findings as a single error, nil when clean.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case len(w.deadlocks) > 0:
		d := w.deadlocks[0]
		return &d
	case len(w.violations) > 0:
		return fmt.Errorf("mgl: %s", w.violations[0])
	case len(w.cycles) > 0:
		return fmt.Errorf("mgl: %s", w.cycles[0])
	}
	return nil
}

// grant records that s now holds n in mode; called under n's mutex at every
// grant (immediate or queued).
func (w *Watcher) grant(s *Session, n *node, mode Mode) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.waits, s)
	hs := w.held[s]
	if hs == nil {
		hs = map[*node]Mode{}
		w.held[s] = hs
	}
	// Canonical-order assertion plus lock-order graph edges from every node
	// already held.
	for h := range hs {
		if !h.rank.less(n.rank) {
			w.violations = append(w.violations, OrderViolation{
				Session: s.id, Holding: h.name, Acquired: n.name,
			})
		}
		w.addOrderEdge(h, n)
	}
	hs[n] = mode
	ns := w.holders[n]
	if ns == nil {
		ns = map[*Session]Mode{}
		w.holders[n] = ns
	}
	ns[s] = mode
}

// unhold removes s as a holder of n; called under n's mutex on release.
func (w *Watcher) unhold(s *Session, n *node) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.holders[n], s)
	delete(w.held[s], n)
}

// wait registers that s is about to block on n; if the new edge closes a
// waits-for cycle the deadlock is recorded and an error returned instead,
// leaving no wait registered.
func (w *Watcher) wait(s *Session, n *node, mode Mode) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waits[s] = waitReq{n: n, mode: mode}
	if cycle := w.findWaitCycle(s); cycle != nil {
		delete(w.waits, s)
		d := DeadlockError{Cycle: cycle}
		w.deadlocks = append(w.deadlocks, d)
		return &d
	}
	return nil
}

// findWaitCycle walks the waits-for graph from start: an edge leads from a
// waiting session to every session holding the awaited node in an
// incompatible mode. It returns a description of the cycle through start,
// or nil.
func (w *Watcher) findWaitCycle(start *Session) []string {
	seen := map[*Session]bool{}
	var path []string
	var found []string
	var visit func(s *Session) bool
	visit = func(s *Session) bool {
		req, waiting := w.waits[s]
		if !waiting {
			return false
		}
		path = append(path, fmt.Sprintf("session %d waits for %s/%s", s.id, req.n.name, req.mode))
		defer func() { path = path[:len(path)-1] }()
		for holder, hm := range w.holders[req.n] {
			if holder == s || Compatible(req.mode, hm) {
				continue
			}
			if holder == start {
				found = append(append([]string(nil), path...), fmt.Sprintf("session %d", start.id))
				return true
			}
			if seen[holder] {
				continue
			}
			seen[holder] = true
			if visit(holder) {
				return true
			}
		}
		return false
	}
	visit(start)
	return found
}

// addOrderEdge inserts a→b into the lock-order graph and records a cycle if
// b already reaches a.
func (w *Watcher) addOrderEdge(a, b *node) {
	if a == b {
		return
	}
	es := w.order[a]
	if es == nil {
		es = map[*node]bool{}
		w.order[a] = es
	}
	if es[b] {
		return
	}
	es[b] = true
	if path := w.orderPath(b, a); path != nil {
		names := make([]string, 0, len(path)+1)
		for _, n := range path {
			names = append(names, n.name)
		}
		names = append(names, b.name)
		w.cycles = append(w.cycles, OrderCycle{Nodes: names})
	}
}

// orderPath returns a path from a to b in the order graph, or nil.
func (w *Watcher) orderPath(a, b *node) []*node {
	seen := map[*node]bool{a: true}
	var dfs func(n *node, acc []*node) []*node
	dfs = func(n *node, acc []*node) []*node {
		acc = append(acc, n)
		if n == b {
			return append([]*node(nil), acc...)
		}
		// Deterministic iteration keeps reports stable.
		succs := make([]*node, 0, len(w.order[n]))
		for m := range w.order[n] {
			succs = append(succs, m)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].rank.less(succs[j].rank) })
		for _, m := range succs {
			if seen[m] {
				continue
			}
			seen[m] = true
			if p := dfs(m, acc); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(a, nil)
}
