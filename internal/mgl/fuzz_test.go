package mgl

import (
	"testing"
)

// decodeReqs turns fuzzer bytes into a request list, 4 bytes per
// descriptor: shape selector, class, address, effect.
func decodeReqs(data []byte) []Req {
	var reqs []Req
	for i := 0; i+4 <= len(data) && len(reqs) < 32; i += 4 {
		r := Req{
			Class: ClassID(data[i+1] % 8),
			Addr:  uint64(data[i+2]%16) + 1,
			Write: data[i+3]&1 == 1,
		}
		switch data[i] % 4 {
		case 0:
			r.Global = true
		case 1:
			// coarse
		default:
			r.Fine = true
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// FuzzBuildPlan checks the plan constructor's invariants on arbitrary
// request lists: canonical strict ordering, one step per node, intention
// ancestors above every descendant, order-insensitivity (a rotated request
// list yields the identical plan), and agreement between the sharded
// session's memoized plans and fresh BuildPlan output.
func FuzzBuildPlan(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 1, 1, 1, 2, 1, 5, 0, 2, 1, 5, 1})
	f.Add([]byte{3, 7, 15, 1, 0, 0, 0, 0, 1, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs := decodeReqs(data)
		plan := BuildPlan(reqs)
		if len(reqs) == 0 {
			if plan != nil {
				t.Fatalf("empty requests produced plan %v", plan)
			}
			return
		}
		if len(plan) == 0 || plan[0].Kind != 0 {
			t.Fatalf("plan for %v does not start at the root: %v", reqs, plan)
		}
		rank := func(st PlanStep) nodeRank {
			return nodeRank{kind: st.Kind, class: st.Class, addr: st.Addr}
		}
		classMode := map[ClassID]Mode{}
		for i, st := range plan {
			if st.Mode == ModeNone {
				t.Fatalf("plan step %v carries no mode", st)
			}
			if i > 0 && !rank(plan[i-1]).less(rank(st)) {
				t.Fatalf("plan for %v not in strict canonical order: %v", reqs, plan)
			}
			if st.Kind == 1 {
				classMode[st.Class] = st.Mode
			}
			if st.Kind == 2 {
				cm, ok := classMode[st.Class]
				if !ok {
					t.Fatalf("fine step %v lacks class ancestor in %v", st, plan)
				}
				if need := intention(st.Mode); Join(cm, need) != cm {
					t.Fatalf("class %d mode %s too weak for fine step %v", st.Class, cm, st)
				}
			}
		}
		// The three planners must agree: BuildPlan (which picks the
		// allocation-light small path for short lists), the map-based
		// general path, and the frozen pre-sharding planner.
		for name, alt := range map[string][]PlanStep{
			"buildPlanMaps": buildPlanMaps(reqs),
			"refBuildPlan":  refBuildPlan(reqs),
		} {
			if len(alt) != len(plan) {
				t.Fatalf("%s for %v disagrees: %v vs %v", name, reqs, alt, plan)
			}
			for i := range plan {
				if plan[i] != alt[i] {
					t.Fatalf("%s for %v disagrees: %v vs %v", name, reqs, alt, plan)
				}
			}
		}
		// Order-insensitivity: the plan is a function of the request set.
		rotated := append(append([]Req(nil), reqs[1:]...), reqs[0])
		replan := BuildPlan(rotated)
		if len(replan) != len(plan) {
			t.Fatalf("rotated requests changed plan size: %v vs %v", plan, replan)
		}
		for i := range plan {
			if plan[i] != replan[i] {
				t.Fatalf("rotated requests changed plan: %v vs %v", plan, replan)
			}
		}
		// The memoized session plan must match fresh construction, twice
		// (second hit comes from the cache).
		m := NewManager()
		s := m.NewSession()
		for round := 0; round < 2; round++ {
			for _, r := range reqs {
				s.ToAcquire(r)
			}
			s.AcquireAll()
			held := s.HeldSteps()
			if len(held) != len(plan) {
				t.Fatalf("round %d: session granted %v, want %v", round, held, plan)
			}
			for i := range held {
				if held[i] != plan[i] {
					t.Fatalf("round %d: session granted %v, want %v", round, held, plan)
				}
			}
			s.ReleaseAll()
		}
	})
}
