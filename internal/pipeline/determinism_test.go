package pipeline_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lockinfer/internal/infer"
	"lockinfer/internal/locks"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// renderPlan canonically renders a plan for byte-wise comparison.
func renderPlan(plan map[int]locks.Set) string {
	ids := make([]int, 0, len(plan))
	for id := range plan {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "section %d:\n", id)
		for _, l := range plan[id].Sorted() {
			fmt.Fprintf(&b, "  %s\n", l.Key())
		}
	}
	return b.String()
}

// checkPlansEqual compiles src through the front end and points-to passes
// once, then drives a serial and a parallel inference engine over the same
// artifacts and asserts Plan, GlobalPlan and CoarsePlan are byte-equal.
// (Lock keys embed *ir.Var identities, so byte-identity is only meaningful
// over a shared program — which is exactly how the pipeline drives the
// engine.)
func checkPlansEqual(t *testing.T, name, src string, k, workers int) {
	t.Helper()
	c, err := pipeline.Compile(src, pipeline.Options{Name: name, NoCache: true, Trace: pipeline.NewTrace(), Workers: 1}.WithK(k))
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	serial := c.Results
	par := infer.New(c.Program, c.Points, infer.Options{K: k}).AnalyzeAllParallel(workers)
	for _, cmp := range []struct {
		kind string
		s, p map[int]locks.Set
	}{
		{"Plan", transform.SectionLocks(serial), transform.SectionLocks(par)},
		{"GlobalPlan", transform.GlobalLockPlan(c.Program), transform.GlobalLockPlan(c.Program)},
		{"CoarsePlan", transform.Coarsen(transform.SectionLocks(serial)), transform.Coarsen(transform.SectionLocks(par))},
	} {
		sr, pr := renderPlan(cmp.s), renderPlan(cmp.p)
		if sr != pr {
			t.Errorf("%s: %s differs between serial and parallel inference\nserial:\n%s\nparallel:\n%s",
				name, cmp.kind, sr, pr)
		}
	}
}

// TestParallelMatchesSerial is the determinism property: over the generated
// concurrent corpus, parallel inference (at several worker counts) produces
// byte-identical Plan/GlobalPlan/CoarsePlan output to the serial engine.
// make check runs the package under -race, so this also exercises the
// parallel driver's memory safety.
func TestParallelMatchesSerial(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, k := range []int{1, 2, 3} {
			workers := []int{2, 8}[int(seed)%2]
			name := fmt.Sprintf("progen/seed=%d/k=%d/w=%d", seed, k, workers)
			checkPlansEqual(t, name, progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}), k, workers)
		}
	}
}

// TestParallelMatchesSerialCorpus runs the same property over the
// hand-written corpus at the k values the harnesses use.
func TestParallelMatchesSerialCorpus(t *testing.T) {
	ks := []int{0, 2, 9}
	if testing.Short() {
		ks = []int{2}
	}
	for _, p := range progs.All() {
		for _, k := range ks {
			checkPlansEqual(t, fmt.Sprintf("%s/k=%d", p.Name, k), p.Source(), k, 4)
		}
	}
}

// TestInferenceDoesNotGrowPointsTo pins the invariant the parallel driver's
// determinism argument leans on: analyzing sections never materializes new
// points-to classes (every deref chain a lock path mentions was already
// built by steens.Run), so per-section clones stay in the same NodeID space
// as the serial engine's shared structure.
func TestInferenceDoesNotGrowPointsTo(t *testing.T) {
	check := func(name, src string, k int) {
		t.Helper()
		c, err := pipeline.Compile(src, pipeline.Options{Name: name, NoCache: true, Trace: pipeline.NewTrace()}.WithK(k))
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		before := c.Points.NumNodes()
		infer.New(c.Program, c.Points, infer.Options{K: k}).AnalyzeAll()
		if after := c.Points.NumNodes(); after != before {
			t.Errorf("%s: inference grew the points-to graph from %d to %d nodes", name, before, after)
		}
	}
	for _, p := range progs.All() {
		check(p.Name, p.Source(), 9)
	}
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		check(fmt.Sprintf("progen/seed=%d", seed),
			progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}), 3)
	}
}

// TestParallelStats sanity-checks the engine counters the trace reports.
func TestParallelStats(t *testing.T) {
	src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: 3})
	c, err := pipeline.Compile(src, pipeline.Options{NoCache: true, Trace: pipeline.NewTrace()}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	pts := steens.Run(c.Program)
	eng := infer.New(c.Program, pts, infer.Options{K: 2})
	res := eng.AnalyzeAllParallel(4)
	st := eng.Stats()
	if len(res) != len(c.Program.Sections) {
		t.Fatalf("got %d results for %d sections", len(res), len(c.Program.Sections))
	}
	if st.Sections != len(res) {
		t.Errorf("stats.Sections = %d, want %d", st.Sections, len(res))
	}
	if st.Tasks == 0 || st.Facts == 0 {
		t.Errorf("stats report no work: %+v", st)
	}
	if st.Workers < 2 {
		t.Errorf("stats.Workers = %d, want >= 2 for a parallel drive", st.Workers)
	}
}
