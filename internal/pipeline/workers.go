package pipeline

import (
	"runtime"
	"sync/atomic"
)

// AutoWorkers, given as a worker count, selects GOMAXPROCS workers.
const AutoWorkers = -1

// defaultWorkers is the process-wide inference drive for compilations that
// leave Options.Workers zero: 1 (serial) unless a CLI opts its sweep into
// parallelism via SetDefaultWorkers. Plans do not depend on the setting
// (the parallel driver is byte-identical to serial), only wall time does.
var defaultWorkers atomic.Int32

// DefaultWorkers returns the resolved process-wide worker default.
func DefaultWorkers() int {
	n := int(defaultWorkers.Load())
	switch {
	case n == 0:
		return 1
	case n < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return n
	}
}

// SetDefaultWorkers sets the process-wide worker default: n > 1 for a fixed
// worker count, AutoWorkers for GOMAXPROCS, 0 or 1 for serial.
func SetDefaultWorkers(n int) {
	defaultWorkers.Store(int32(n))
}
