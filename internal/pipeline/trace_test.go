package pipeline_test

import (
	"lockinfer/internal/pipeline"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// wallRe normalizes the only nondeterministic field in the JSON dump.
var wallRe = regexp.MustCompile(`"wall_ns": \d+`)

// TestTraceJSONGolden pins the -trace json shape: field names, pass
// ordering, and aggregate semantics. Wall times are normalized; every other
// field is deterministic for a fixed compile sequence.
func TestTraceJSONGolden(t *testing.T) {
	src := mustGet(t, "counter").Source()
	tr := pipeline.NewTrace()
	cache := pipeline.NewCache(0)
	opts := pipeline.Options{Cache: cache, Trace: tr}.WithK(2)
	c, err := pipeline.Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Plan()
	c.TransformedSource()
	if _, err := c.GoSource(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Compile(src, opts); err != nil { // all passes hit
		t.Fatal(err)
	}

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := wallRe.ReplaceAllString(string(data), `"wall_ns": 0`)

	want := strings.TrimSpace(`
{
  "passes": [
    {
      "pass": "parse",
      "runs": 2,
      "cache_hits": 1,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "parse")) + `,
      "workers": 0
    },
    {
      "pass": "lower",
      "runs": 2,
      "cache_hits": 1,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "lower")) + `,
      "workers": 0
    },
    {
      "pass": "pointsto",
      "runs": 2,
      "cache_hits": 1,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "pointsto")) + `,
      "workers": 0
    },
    {
      "pass": "infer",
      "runs": 2,
      "cache_hits": 1,
      "wall_ns": 0,
      "iterations": ` + itoa(iterationsOf(tr, "infer")) + `,
      "facts": ` + itoa(factsOf(tr, "infer")) + `,
      "workers": 1
    },
    {
      "pass": "plan",
      "runs": 1,
      "cache_hits": 0,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "plan")) + `,
      "workers": 0
    },
    {
      "pass": "transform",
      "runs": 1,
      "cache_hits": 0,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "transform")) + `,
      "workers": 0
    },
    {
      "pass": "codegen",
      "runs": 1,
      "cache_hits": 0,
      "wall_ns": 0,
      "iterations": 0,
      "facts": ` + itoa(factsOf(tr, "codegen")) + `,
      "workers": 0
    }
  ]
}`)
	if got != want {
		t.Errorf("-trace json shape drifted\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

func factsOf(t *pipeline.Trace, pass string) int64 {
	for _, ps := range t.Passes() {
		if ps.Pass == pass {
			return ps.Facts
		}
	}
	return -1
}

func iterationsOf(t *pipeline.Trace, pass string) int64 {
	for _, ps := range t.Passes() {
		if ps.Pass == pass {
			return ps.Iterations
		}
	}
	return -1
}

// TestTraceTable sanity-checks the human rendering: a header plus one row
// per pass, in canonical order.
func TestTraceTable(t *testing.T) {
	tr := pipeline.NewTrace()
	tr.Record(pipeline.Sample{Pass: "zzz-custom", Wall: time.Millisecond})
	tr.Record(pipeline.Sample{Pass: "infer", Iterations: 7, Facts: 9, Workers: 4})
	tr.Record(pipeline.Sample{Pass: "parse", Wall: time.Microsecond})
	lines := strings.Split(strings.TrimRight(tr.Table(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 3 rows:\n%s", len(lines), tr.Table())
	}
	for i, pass := range []string{"pass", "parse", "infer", "zzz-custom"} {
		if !strings.HasPrefix(lines[i], pass) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], pass)
		}
	}
}

// TestTraceDumpFormats checks the format dispatch.
func TestTraceDumpFormats(t *testing.T) {
	tr := pipeline.NewTrace()
	tr.Record(pipeline.Sample{Pass: "parse"})
	var b strings.Builder
	if err := tr.Dump(&b, "json"); err != nil || !strings.Contains(b.String(), `"passes"`) {
		t.Errorf("json dump: err=%v out=%q", err, b.String())
	}
	b.Reset()
	if err := tr.Dump(&b, ""); err != nil || !strings.HasPrefix(b.String(), "pass") {
		t.Errorf("default table dump: err=%v out=%q", err, b.String())
	}
	if err := tr.Dump(&b, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
