package pipeline

import "fmt"

// PipelineError wraps the failure of one pipeline pass, so every driver —
// the public facade, the corpus loader, the harnesses, the CLIs — reports
// front-end and analysis failures the same way instead of each formatting
// parse errors its own way. Err keeps the pass's own diagnostic (for parse
// failures a *lang.Error with its source position) reachable via Unwrap.
type PipelineError struct {
	// Pass is the canonical pass name: "parse", "lower", "pointsto",
	// "andersen", "infer", "plan" or "transform".
	Pass string
	// Name labels the compilation when the driver supplied one (a corpus
	// program, a progen seed); empty for anonymous sources.
	Name string
	// Err is the underlying diagnostic.
	Err error
}

func (e *PipelineError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("%s: %s: %v", e.Name, e.Pass, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Pass, e.Err)
}

func (e *PipelineError) Unwrap() error { return e.Err }

// failed wraps err as a PipelineError for one pass, keeping an existing
// PipelineError intact (a nested pipeline call already attributed it).
func failed(pass, name string, err error) error {
	if pe, ok := err.(*PipelineError); ok {
		return pe
	}
	return &PipelineError{Pass: pass, Name: name, Err: err}
}
