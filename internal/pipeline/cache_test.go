package pipeline_test

import (
	"errors"
	"testing"

	"lockinfer/internal/lang"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
	"lockinfer/internal/steens"
)

func mustGet(t *testing.T, name string) progs.Prog {
	t.Helper()
	p, err := progs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheHitsAndMisses pins the memoization contract: identical inputs
// hit every pass; a different k re-runs only the inference; different
// specs or index bounds re-run the passes that depend on them.
func TestCacheHitsAndMisses(t *testing.T) {
	src := mustGet(t, "counter").Source()
	cache := pipeline.NewCache(0)
	opts := pipeline.Options{Cache: cache, Trace: pipeline.NewTrace()}.WithK(2)

	c1, err := pipeline.Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("cold compile recorded %d hits", hits)
	}

	// Identical inputs: everything hits, artifacts are shared.
	c2, err := pipeline.Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Program != c1.Program || c2.Points != c1.Points {
		t.Error("identical inputs did not share front/points-to artifacts")
	}
	if len(c1.Results) > 0 && c2.Results[0] != c1.Results[0] {
		t.Error("identical inputs did not share the inference artifact")
	}
	hits, _ := cache.Stats()
	if hits != 3 { // front, steens, infer
		t.Errorf("identical recompile: %d hits, want 3", hits)
	}

	// Different k: front and points-to hit, inference misses.
	c3, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: pipeline.NewTrace()}.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if c3.Program != c1.Program {
		t.Error("k change invalidated the front end")
	}
	if len(c3.Results) > 0 && len(c1.Results) > 0 && c3.Results[0] == c1.Results[0] {
		t.Error("k change reused the k=2 inference artifact")
	}

	// Different IndexMax: inference misses.
	c4, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: pipeline.NewTrace(), IndexMax: 2}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c4.Results) > 0 && len(c1.Results) > 0 && c4.Results[0] == c1.Results[0] {
		t.Error("IndexMax change reused the default-index inference artifact")
	}

	// Different specs: points-to and inference miss (front still hits).
	specs := map[string]steens.ExternSpec{"ext": {Reads: []string{"g"}}}
	c5, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: pipeline.NewTrace(), Specs: specs}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if c5.Points == c1.Points {
		t.Error("specs change reused the spec-free points-to artifact")
	}
	if c5.Program != c1.Program {
		t.Error("specs change invalidated the front end")
	}
}

// TestCacheDisabled checks NoCache compilations neither read nor write the
// shared artifacts.
func TestCacheDisabled(t *testing.T) {
	src := mustGet(t, "counter").Source()
	cache := pipeline.NewCache(0)
	base := pipeline.Options{Cache: cache, Trace: pipeline.NewTrace()}.WithK(2)
	c1, err := pipeline.Compile(src, base)
	if err != nil {
		t.Fatal(err)
	}
	nc := base
	nc.NoCache = true
	c2, err := pipeline.Compile(src, nc)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Program == c1.Program || c2.Points == c1.Points {
		t.Error("NoCache compilation shared cached artifacts")
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Errorf("NoCache compilation hit the cache %d times", hits)
	}
}

// TestPipelineError checks the structured error contract: one error type,
// attributed to its pass, unwrapping to the front end's positioned
// diagnostic.
func TestPipelineError(t *testing.T) {
	_, err := pipeline.Compile("int x = ;", pipeline.Options{Name: "bad", NoCache: true, Trace: pipeline.NewTrace()})
	if err == nil {
		t.Fatal("malformed program compiled")
	}
	var pe *pipeline.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *pipeline.PipelineError", err)
	}
	if pe.Pass != "parse" || pe.Name != "bad" {
		t.Errorf("error attributed to pass %q name %q, want parse/bad", pe.Pass, pe.Name)
	}
	var le *lang.Error
	if !errors.As(err, &le) {
		t.Errorf("PipelineError does not unwrap to *lang.Error (got %v)", err)
	}
}
