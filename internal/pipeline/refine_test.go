package pipeline_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progen"
)

// renderPlanNames renders a plan with source-level lock names (not Key(),
// which embeds *ir.Var identities), so plans from independent compilations
// of the same source can be compared byte-wise.
func renderPlanNames(prog *ir.Program, plan map[int]locks.Set) string {
	ids := make([]int, 0, len(plan))
	for id := range plan {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "section %d:\n", id)
		for _, s := range plan[id].Strings(prog) {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return b.String()
}

// coldProfile marks every lock of the plan acquired and never contended —
// the shape that triggers demotion wherever fine locks exist.
func coldProfile(plan map[int]locks.Set) *locks.Profile {
	p := locks.NewProfile("pipeline_test", "mgl")
	for _, set := range plan {
		for _, l := range set.Sorted() {
			switch {
			case l.Fine:
				p.Lock(locks.FineKey(int64(l.Class), 1)).Acquires += 10
			default:
				p.Lock(locks.ClassKey(int64(l.Class))).Acquires += 10
			}
		}
	}
	return p
}

// TestRefinedPlanDeterministicAcrossWorkers is the acceptance property for
// the refinement pass: under the same profile, the refined plan and the
// decision log are byte-identical at any -workers count. (Workers is
// deliberately absent from the refine cache key for the same reason.)
func TestRefinedPlanDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{2, 4, 6, 11}
	if testing.Short() {
		seeds = []int64{2, 4}
	}
	for _, seed := range seeds {
		src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed})
		base, err := pipeline.Compile(src, pipeline.Options{NoCache: true, Trace: pipeline.NewTrace(), Workers: 1}.WithK(2))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := coldProfile(base.Plan())

		var wantPlan, wantLog string
		changed := false
		for _, workers := range []int{1, 2, 8} {
			c, err := pipeline.Compile(src, pipeline.Options{
				NoCache: true,
				Trace:   pipeline.NewTrace(),
				Workers: workers,
				Profile: prof,
			}.WithK(2))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			plan, res := c.RefinedPlan()
			got := renderPlanNames(c.Program, plan)
			log := strings.Join(res.Lines(), "\n")
			if workers == 1 {
				wantPlan, wantLog, changed = got, log, res.Changed()
				continue
			}
			if got != wantPlan {
				t.Errorf("seed %d: refined plan differs at workers=%d\nserial:\n%s\nparallel:\n%s",
					seed, workers, wantPlan, got)
			}
			if log != wantLog {
				t.Errorf("seed %d: decision log differs at workers=%d\nserial:\n%s\nparallel:\n%s",
					seed, workers, wantLog, log)
			}
		}
		if changed {
			t.Logf("seed %d: refinement rewrote the plan:\n%s", seed, wantLog)
		}
	}
}

// TestRefinedPlanCached pins the memoization contract of the refine pass:
// the artifact is keyed on the profile hash, so an identical recompile hits
// and a different profile misses.
func TestRefinedPlanCached(t *testing.T) {
	src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: 4})
	cache := pipeline.NewCache(0)
	base, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: pipeline.NewTrace()}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	prof := coldProfile(base.Plan())

	refineStats := func(tr *pipeline.Trace) (runs, hits int64) {
		for _, ps := range tr.Passes() {
			if ps.Pass == "refine" {
				return ps.Runs, ps.CacheHits
			}
		}
		return 0, 0
	}

	tr1 := pipeline.NewTrace()
	c1, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: tr1, Profile: prof}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	plan1, _ := c1.RefinedPlan()
	if runs, hits := refineStats(tr1); runs != 1 || hits != 0 {
		t.Errorf("cold refine: %d runs %d hits, want 1/0", runs, hits)
	}

	tr2 := pipeline.NewTrace()
	c2, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: tr2, Profile: prof}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := c2.RefinedPlan()
	if runs, hits := refineStats(tr2); runs != 1 || hits != 1 {
		t.Errorf("identical recompile: %d refine runs %d hits, want 1/1", runs, hits)
	}
	if renderPlan(plan1) != renderPlan(plan2) {
		t.Error("cache hit returned a different refined plan")
	}

	// A different profile (different hash) must miss.
	hot := coldProfile(base.Plan())
	for _, lp := range hot.Locks {
		lp.Waits = lp.Acquires
	}
	tr3 := pipeline.NewTrace()
	c3, err := pipeline.Compile(src, pipeline.Options{Cache: cache, Trace: tr3, Profile: hot}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	c3.RefinedPlan()
	if runs, hits := refineStats(tr3); runs != 1 || hits != 0 {
		t.Errorf("different profile: %d refine runs %d hits, want 1/0", runs, hits)
	}
}

// TestRefinedPlanWithoutProfile checks the no-profile path: the refined
// plan is the inferred plan, and the decision log says so.
func TestRefinedPlanWithoutProfile(t *testing.T) {
	src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: 3})
	c, err := pipeline.Compile(src, pipeline.Options{NoCache: true, Trace: pipeline.NewTrace()}.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, res := c.RefinedPlan()
	if res.Changed() {
		t.Errorf("nil profile rewrote the plan: %v", res.Lines())
	}
	if got, want := renderPlan(plan), renderPlan(c.Plan()); got != want {
		t.Errorf("nil profile: refined plan differs from inferred plan\nrefined:\n%s\ninferred:\n%s", got, want)
	}
	if lines := res.Lines(); len(lines) != 1 || lines[0] != "no change" {
		t.Errorf("decision log = %q, want [\"no change\"]", lines)
	}
}
