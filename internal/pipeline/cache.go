package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lockinfer/internal/steens"
)

// Cache memoizes pipeline artifacts across compilations. Each artifact is
// keyed by the source hash plus exactly the options it depends on, so a
// sweep that compiles the same corpus under several configurations (the
// conformance harness's six engines, Figure 7's ten k values, the audit
// differential) re-parses and re-runs Steensgaard once per distinct input
// instead of once per configuration. Cached artifacts are shared and must
// be treated as immutable by every consumer — the pipeline's own passes
// only read them, and plan-mutation hooks (DropLock, PermutePlan) already
// operate on copies.
type Cache struct {
	mu      sync.Mutex
	entries map[string]any
	order   []string // FIFO eviction order
	cap     int
	hits    int64
	misses  int64
}

// DefaultCacheSize bounds the shared cache; a sweep's working set (a few
// hundred artifact entries across a ~50-program corpus) fits comfortably.
const DefaultCacheSize = 512

// NewCache returns an empty cache evicting FIFO beyond capacity (<= 0
// selects DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{entries: map[string]any{}, cap: capacity}
}

var sharedCache = NewCache(0)

// SharedCache returns the process-wide artifact cache, used by every
// compilation whose Options leave Cache nil (and caching enabled).
func SharedCache() *Cache { return sharedCache }

// Stats returns the hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
}

// srcHash fingerprints the program text.
func srcHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// specsKey canonically encodes extern specs (order-independent).
func specsKey(specs map[string]steens.ExternSpec) string {
	if len(specs) == 0 {
		return "-"
	}
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		s := specs[name]
		fmt.Fprintf(&b, "%s{r=%s;w=%s;ret=%s}", name,
			strings.Join(sortedCopy(s.Reads), ","),
			strings.Join(sortedCopy(s.Writes), ","),
			s.ReturnsFrom)
	}
	return b.String()
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
