package pipeline_test

import (
	"testing"

	"lockinfer/internal/pipeline"
)

const goCounterSrc = `package counter

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n = c.n + 1
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func run() {
	c := &Counter{}
	go c.Inc()
	c.Inc()
}
`

// TestCompileGoSource pins the second parse pass: a real Go package is
// detected by its package clause, lowered by gofront, and flows through
// the whole pipeline to an inferred plan for every recovered section.
func TestCompileGoSource(t *testing.T) {
	cache := pipeline.NewCache(0)
	opts := pipeline.Options{Cache: cache, Trace: pipeline.NewTrace(), Name: "counter.go"}
	c, err := pipeline.Compile(goCounterSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.GoPackage == nil {
		t.Fatal("Go source compiled without a GoPackage artifact")
	}
	if got, want := len(c.GoPackage.Sections), 2; got != want {
		t.Fatalf("recovered %d sections, want %d", got, want)
	}
	if got, want := len(c.Program.Sections), 2; got != want {
		t.Fatalf("IR has %d sections, want %d", got, want)
	}
	// The i-th gofront section corresponds to the i-th IR section: the
	// lowered atomic keyword sits on the minic line gofront recorded.
	for i, sec := range c.GoPackage.Sections {
		if c.Program.Sections[i].Pos.Line != sec.MinicLine {
			t.Errorf("section %d: IR line %d, gofront MinicLine %d",
				i, c.Program.Sections[i].Pos.Line, sec.MinicLine)
		}
	}
	plan := c.Plan()
	for i := range c.Program.Sections {
		if len(plan[i]) == 0 {
			t.Errorf("section %d inferred an empty lock set", i)
		}
	}

	// Recompiling identical Go source hits the front cache and restores
	// the GoPackage artifact.
	tr := pipeline.NewTrace()
	c2, err := pipeline.Compile(goCounterSrc, pipeline.Options{Cache: cache, Trace: tr, Name: "counter.go"})
	if err != nil {
		t.Fatal(err)
	}
	if c2.GoPackage != c.GoPackage {
		t.Error("cache hit did not share the GoPackage artifact")
	}
	hit := false
	for _, ps := range tr.Passes() {
		if ps.Pass == "gofront" && ps.CacheHits > 0 {
			hit = true
		}
	}
	if !hit {
		t.Error("recompile did not replay a gofront cache-hit sample")
	}

	// Toy-language sources keep GoPackage nil.
	toy, err := pipeline.Compile("int g;\nvoid main() { atomic { g = 1; } }\n",
		pipeline.Options{Trace: pipeline.NewTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if toy.GoPackage != nil {
		t.Error("toy source unexpectedly produced a GoPackage")
	}
}

// TestCompileGoSourceFrontError pins the error surface: a Go package whose
// lowering fails entirely still reports a positioned gofront failure.
func TestCompileGoSourceFrontError(t *testing.T) {
	src := "package broken\n\nfunc f() { undefined() }\n"
	c, err := pipeline.Compile(src, pipeline.Options{Trace: pipeline.NewTrace(), Name: "broken.go"})
	if err != nil {
		t.Fatalf("partial lowering should still compile: %v", err)
	}
	if c.GoPackage == nil || len(c.GoPackage.Errors) == 0 {
		t.Fatal("expected per-declaration errors on the GoPackage")
	}
}
