package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one pass execution, as recorded by the pipeline (or by a tool
// instrumenting its own phases, the way cmd/covergate does).
type Sample struct {
	// Pass is the pass name ("parse", "infer", ...).
	Pass string
	// Wall is the pass's wall-clock time.
	Wall time.Duration
	// Iterations is the pass's own notion of work: worklist tasks for the
	// backward inference, solver waves for the inclusion-based points-to.
	Iterations int64
	// Facts is the pass's output volume: statements lowered, abstract
	// cells, dataflow items, locks planned.
	Facts int64
	// CacheHit marks a run satisfied from the artifact cache.
	CacheHit bool
	// Workers records a parallel drive's worker count (0 when not
	// applicable).
	Workers int
}

// PassStat aggregates every recorded Sample of one pass.
type PassStat struct {
	Pass       string `json:"pass"`
	Runs       int64  `json:"runs"`
	CacheHits  int64  `json:"cache_hits"`
	WallNS     int64  `json:"wall_ns"`
	Iterations int64  `json:"iterations"`
	Facts      int64  `json:"facts"`
	// Workers is the largest worker count observed (1 = serial; 0 for
	// passes with no parallel drive).
	Workers int `json:"workers"`
}

// Trace accumulates per-pass observability across any number of
// compilations. It is safe for concurrent use; the zero value is not ready
// — use NewTrace (or Shared for the process-wide instance every compile
// records into by default).
type Trace struct {
	mu     sync.Mutex
	passes map[string]*PassStat
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{passes: map[string]*PassStat{}}
}

var shared = NewTrace()

// Shared returns the process-wide trace. Compilations with Options.Trace
// nil record here, so a CLI can run an arbitrary sweep and dump one
// aggregate at exit (the -trace flag of the cmd tools).
func Shared() *Trace { return shared }

// Record folds one pass execution into the aggregate.
func (t *Trace) Record(s Sample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.passes[s.Pass]
	if ps == nil {
		ps = &PassStat{Pass: s.Pass}
		t.passes[s.Pass] = ps
	}
	ps.Runs++
	if s.CacheHit {
		ps.CacheHits++
	}
	ps.WallNS += s.Wall.Nanoseconds()
	ps.Iterations += s.Iterations
	ps.Facts += s.Facts
	if s.Workers > ps.Workers {
		ps.Workers = s.Workers
	}
}

// canonicalOrder fixes the display order of the compiler's own passes;
// foreign passes sort alphabetically after them.
var canonicalOrder = map[string]int{
	"gofront": -1,
	"parse":   0, "lower": 1, "pointsto": 2, "andersen": 3,
	"infer": 4, "plan": 5, "refine": 6, "transform": 7, "codegen": 8,
}

// Passes returns the aggregated stats in canonical pass order.
func (t *Trace) Passes() []PassStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PassStat, 0, len(t.passes))
	for _, ps := range t.passes {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := canonicalOrder[out[i].Pass]
		oj, jok := canonicalOrder[out[j].Pass]
		switch {
		case iok && jok:
			return oi < oj
		case iok != jok:
			return iok
		default:
			return out[i].Pass < out[j].Pass
		}
	})
	return out
}

// traceJSON is the serialized shape (kept stable; trace_test.go pins it).
type traceJSON struct {
	Passes []PassStat `json:"passes"`
}

// JSON renders the trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(traceJSON{Passes: t.Passes()}, "", "  ")
}

// Table renders the trace as a human-readable table.
func (t *Trace) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %12s %12s %12s %8s\n",
		"pass", "runs", "hits", "wall", "iterations", "facts", "workers")
	for _, ps := range t.Passes() {
		workers := "-"
		if ps.Workers > 0 {
			workers = fmt.Sprintf("%d", ps.Workers)
		}
		fmt.Fprintf(&b, "%-10s %6d %6d %12s %12d %12d %8s\n",
			ps.Pass, ps.Runs, ps.CacheHits,
			time.Duration(ps.WallNS).Round(time.Microsecond),
			ps.Iterations, ps.Facts, workers)
	}
	return b.String()
}

// Dump writes the trace to w in the requested format: "json" or "table".
func (t *Trace) Dump(w io.Writer, format string) error {
	switch format {
	case "json":
		data, err := t.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	case "table", "":
		_, err := io.WriteString(w, t.Table())
		return err
	default:
		return fmt.Errorf("pipeline: unknown trace format %q (have json, table)", format)
	}
}

// DumpShared writes the process-wide trace to w when format is non-empty —
// the exit hook behind every cmd tool's -trace flag. A bad format is
// reported on w rather than returned; by the time a tool dumps its trace
// the run's real exit status is already decided.
func DumpShared(w io.Writer, format string) {
	if format == "" {
		return
	}
	if err := Shared().Dump(w, format); err != nil {
		fmt.Fprintln(w, "trace:", err)
	}
}

// WallOf returns the accumulated wall time of one pass (zero when the pass
// never ran), so measurement harnesses can report per-stage times without
// re-instrumenting.
func (t *Trace) WallOf(pass string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps := t.passes[pass]; ps != nil {
		return time.Duration(ps.WallNS)
	}
	return 0
}
