package pipeline

import (
	"testing"

	"lockinfer/internal/steens"
)

// TestCacheEviction checks the FIFO bound.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.Len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Error("newest entry missing")
	}
}

// TestSpecsKeyCanonical checks the cache key for extern specs is
// order-independent and distinguishes read from write effects.
func TestSpecsKeyCanonical(t *testing.T) {
	a := map[string]steens.ExternSpec{
		"f": {Reads: []string{"x", "y"}},
		"g": {Writes: []string{"z"}},
	}
	b := map[string]steens.ExternSpec{
		"g": {Writes: []string{"z"}},
		"f": {Reads: []string{"y", "x"}},
	}
	if specsKey(a) != specsKey(b) {
		t.Errorf("specsKey is order-dependent: %q vs %q", specsKey(a), specsKey(b))
	}
	w := map[string]steens.ExternSpec{"f": {Writes: []string{"x", "y"}}}
	r := map[string]steens.ExternSpec{"f": {Reads: []string{"x", "y"}}}
	if specsKey(w) == specsKey(r) {
		t.Error("specsKey conflates read and write effects")
	}
	if specsKey(nil) != "-" {
		t.Errorf("specsKey(nil) = %q, want \"-\"", specsKey(nil))
	}
}
