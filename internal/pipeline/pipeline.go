// Package pipeline is the single staged driver of the lock-inference
// compiler: Parse → Lower → PointsTo (Steensgaard, optionally refined by
// the inclusion-based Andersen analysis) → Infer → Plan → Transform. Every
// consumer — the public lockinfer facade, the corpus loader, the
// concurrency-oracle, conformance, audit and bench harnesses, and the CLIs
// — compiles through Compile instead of hand-wiring lang.Parse, ir.Lower,
// steens.Run and infer.New, so the staging exists exactly once.
//
// The pipeline adds two properties the bespoke wirings lacked:
//
//   - Memoization: each pass's artifact is cached keyed by source hash plus
//     the options that pass depends on, so sweeps that recompile the same
//     corpus under several configurations stop re-parsing and re-running
//     the points-to analysis per configuration (see Cache).
//
//   - Observability: each pass records wall time, iteration counts, fact
//     counts and cache hits into a Trace that every cmd tool can dump
//     (-trace json|table).
//
// Inference can be driven in parallel: Options.Workers > 1 analyzes atomic
// sections on that many goroutines over an immutable snapshot of the
// engine's read-only state, with a deterministic merge that makes plans
// byte-identical to the serial engine (see infer.AnalyzeAllParallel and
// DESIGN.md §7.9).
package pipeline

import (
	"fmt"
	"runtime"
	"time"

	"lockinfer/internal/andersen"
	"lockinfer/internal/codegen"
	"lockinfer/internal/gofront"
	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/refine"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// Options configures one compilation.
type Options struct {
	// Name labels the compilation in errors and diagnostics (a corpus
	// program name, "progen/seed=7", ...). Empty for anonymous sources.
	Name string
	// K bounds the length of fine-grain lock expressions (default 3, the
	// paper's Figure 1 scheme; the facade and the sweeps override it).
	K int
	// KIsSet distinguishes an explicit K=0 (the paper's coarse-only
	// scheme) from an unset K that should default to 3.
	KIsSet bool
	// IndexMax bounds symbolic array-index expressions (0 = default 8).
	IndexMax int
	// Specs supplies external-function specifications (§4.3), consumed by
	// both the points-to pass and the inference.
	Specs map[string]steens.ExternSpec
	// Workers drives the inference: <= 1 uses the serial engine, larger
	// values analyze atomic sections on that many goroutines
	// (deterministically — plans are byte-identical to serial). Zero
	// consults DefaultWorkers, so CLIs can turn a whole sweep parallel
	// without threading a knob through every harness.
	Workers int
	// Profile supplies a runtime lock profile for the profile-guided
	// refinement pass (RefinedPlan). Nil means no profile: RefinedPlan then
	// returns the unrefined plan (no evidence, no rewrite).
	Profile *locks.Profile
	// RefineOpts tunes the refinement thresholds (zero value = defaults).
	RefineOpts refine.Options
	// NoCache disables artifact memoization for this compilation (timing
	// harnesses measure real pass work; tests isolate cache behavior).
	NoCache bool
	// Cache overrides the artifact cache (nil = the process-wide
	// SharedCache, unless NoCache).
	Cache *Cache
	// Trace overrides the observability sink (nil = the process-wide
	// Shared trace).
	Trace *Trace
}

// DefaultK is the expression-lock length bound used when K is unset.
const DefaultK = 3

func (o Options) resolved() Options {
	if o.K == 0 && !o.KIsSet {
		o.K = DefaultK
	}
	if o.Trace == nil {
		o.Trace = Shared()
	}
	if o.Cache == nil && !o.NoCache {
		o.Cache = SharedCache()
	}
	if o.NoCache {
		o.Cache = nil
	}
	if o.Workers == 0 {
		o.Workers = DefaultWorkers()
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// WithK returns o with the bound set explicitly (K=0 stays 0).
func (o Options) WithK(k int) Options {
	o.K = k
	o.KIsSet = true
	return o
}

// Compilation is the result of one pipeline run: every pass artifact, plus
// derived-pass entry points (Plan, TransformedSource) that record into the
// same trace.
type Compilation struct {
	// Name echoes Options.Name.
	Name string
	// Source is the program text.
	Source string
	// AST is the parsed surface program.
	AST *lang.Program
	// Program is the lowered IR.
	Program *ir.Program
	// Points is the Steensgaard points-to analysis (the Σ≡ partition).
	Points *steens.Analysis
	// Results holds the inferred locks, one entry per atomic section.
	Results []*infer.Result
	// K is the expression length bound used.
	K int
	// GoPackage is the real-Go frontend artifact when Source was a Go file
	// (detected by its package clause); nil for toy-language sources. Its
	// Minic text is what the rest of the pipeline compiled.
	GoPackage *gofront.Package

	opts Options
	hash string
	and  *andersen.Analysis
}

// frontArtifacts bundles the parse and lower outputs (cached jointly: all
// depend only on the source), plus the Go frontend artifact for Go sources.
type frontArtifacts struct {
	ast   *lang.Program
	prog  *ir.Program
	gopkg *gofront.Package
}

// inferArtifacts bundles the inference outputs with the engine counters
// that produced them (replayed into the trace on cache hits).
type inferArtifacts struct {
	results []*infer.Result
	stats   infer.Stats
}

// Compile runs the pipeline on src.
func Compile(src string, opts Options) (*Compilation, error) {
	o := opts.resolved()
	c := &Compilation{Name: o.Name, Source: src, K: o.K, opts: o, hash: srcHash(src)}

	if err := c.front(); err != nil {
		return nil, err
	}
	c.pointsTo()
	if err := c.infer(); err != nil {
		return nil, err
	}
	return c, nil
}

// front runs (or recalls) the parse and lower passes. Go sources (detected
// by their package clause) first pass through the gofront lowering; the
// toy-language text it emits is what parse and lower then consume.
func (c *Compilation) front() error {
	key := "front|" + c.hash
	if v, ok := cacheGet(c.opts.Cache, key); ok {
		fa := v.(*frontArtifacts)
		c.AST, c.Program, c.GoPackage = fa.ast, fa.prog, fa.gopkg
		if fa.gopkg != nil {
			c.opts.Trace.Record(Sample{Pass: "gofront", CacheHit: true})
		}
		c.opts.Trace.Record(Sample{Pass: "parse", CacheHit: true})
		c.opts.Trace.Record(Sample{Pass: "lower", CacheHit: true})
		return nil
	}
	parseSrc := c.Source
	if gofront.IsGoSource(c.Source) {
		start := time.Now()
		pkg, err := gofront.LowerSource(c.Name, c.Source)
		if err != nil {
			return failed("gofront", c.Name, err)
		}
		c.opts.Trace.Record(Sample{
			Pass: "gofront", Wall: time.Since(start), Facts: int64(len(pkg.Funcs)),
		})
		c.GoPackage = pkg
		parseSrc = pkg.Minic
	}
	start := time.Now()
	ast, err := lang.Parse(parseSrc)
	if err != nil {
		return failed("parse", c.Name, err)
	}
	c.opts.Trace.Record(Sample{
		Pass: "parse", Wall: time.Since(start), Facts: int64(len(ast.Funcs)),
	})
	start = time.Now()
	prog, err := ir.Lower(ast)
	if err != nil {
		return failed("lower", c.Name, err)
	}
	var stmts int64
	for _, f := range prog.Funcs {
		stmts += int64(len(f.Stmts))
	}
	c.opts.Trace.Record(Sample{Pass: "lower", Wall: time.Since(start), Facts: stmts})
	c.AST, c.Program = ast, prog
	cachePut(c.opts.Cache, key, &frontArtifacts{ast: ast, prog: prog, gopkg: c.GoPackage})
	return nil
}

// pointsTo runs (or recalls) the Steensgaard pass.
func (c *Compilation) pointsTo() {
	key := "steens|" + c.hash + "|" + specsKey(c.opts.Specs)
	if v, ok := cacheGet(c.opts.Cache, key); ok {
		c.Points = v.(*steens.Analysis)
		c.opts.Trace.Record(Sample{Pass: "pointsto", CacheHit: true})
		return
	}
	start := time.Now()
	pts := steens.RunWithSpecs(c.Program, c.opts.Specs)
	c.opts.Trace.Record(Sample{
		Pass: "pointsto", Wall: time.Since(start), Facts: int64(pts.NumNodes()),
	})
	c.Points = pts
	cachePut(c.opts.Cache, key, pts)
}

// infer runs (or recalls) the lock-inference pass, serial or parallel per
// Options.Workers. Workers is deliberately not part of the cache key: the
// parallel driver is plan-deterministic (byte-identical to serial), so the
// artifact is the same either way.
func (c *Compilation) infer() error {
	key := fmt.Sprintf("infer|%s|%s|k=%d|ix=%d", c.hash, specsKey(c.opts.Specs), c.opts.K, c.opts.IndexMax)
	if v, ok := cacheGet(c.opts.Cache, key); ok {
		ia := v.(*inferArtifacts)
		c.Results = ia.results
		c.opts.Trace.Record(Sample{
			Pass: "infer", CacheHit: true, Workers: ia.stats.Workers,
		})
		return nil
	}
	start := time.Now()
	eng := infer.New(c.Program, c.Points, infer.Options{
		K: c.opts.K, IndexMax: c.opts.IndexMax, Specs: c.opts.Specs,
	})
	var results []*infer.Result
	if c.opts.Workers > 1 {
		results = eng.AnalyzeAllParallel(c.opts.Workers)
	} else {
		results = eng.AnalyzeAll()
	}
	st := eng.Stats()
	c.opts.Trace.Record(Sample{
		Pass: "infer", Wall: time.Since(start),
		Iterations: st.Tasks, Facts: st.Facts, Workers: st.Workers,
	})
	c.Results = results
	cachePut(c.opts.Cache, key, &inferArtifacts{results: results, stats: st})
	return nil
}

// Andersen returns (running or recalling on first use) the inclusion-based
// points-to analysis over the same program and specs — the audit pass's
// refinement oracle.
func (c *Compilation) Andersen() *andersen.Analysis {
	if c.and != nil {
		return c.and
	}
	key := "andersen|" + c.hash + "|" + specsKey(c.opts.Specs)
	if v, ok := cacheGet(c.opts.Cache, key); ok {
		c.and = v.(*andersen.Analysis)
		c.opts.Trace.Record(Sample{Pass: "andersen", CacheHit: true})
		return c.and
	}
	start := time.Now()
	a := andersen.RunWithSpecs(c.Program, c.opts.Specs)
	c.opts.Trace.Record(Sample{
		Pass: "andersen", Wall: time.Since(start),
		Iterations: int64(a.Rounds()), Facts: int64(a.NumLocations()),
	})
	c.and = a
	cachePut(c.opts.Cache, key, a)
	return a
}

// Plan returns the per-section lock sets, keyed by section id (the
// structured transform output the runtimes consume).
func (c *Compilation) Plan() map[int]locks.Set {
	start := time.Now()
	plan := transform.SectionLocks(c.Results)
	c.opts.Trace.Record(Sample{
		Pass: "plan", Wall: time.Since(start), Facts: planLocks(plan),
	})
	return plan
}

// refineArtifacts is the cached refinement output: the refined plan plus
// its decision log (replayed into traces and goldens on cache hits).
type refineArtifacts struct {
	res *refine.Result
}

// RefinedPlan runs (or recalls) the profile-guided refinement pass over the
// inferred plan and Options.Profile, returning the refined per-section lock
// sets plus the decision log. With no profile the pass is a recorded no-op
// returning the unrefined plan. The artifact is cached on the compilation
// hash plus the profile hash — Workers is deliberately not in the key: the
// refinement is plan-deterministic, so the artifact is identical either way.
func (c *Compilation) RefinedPlan() (map[int]locks.Set, *refine.Result) {
	plan := c.Plan()
	key := fmt.Sprintf("refine|%s|%s|k=%d|ix=%d|%s",
		c.hash, specsKey(c.opts.Specs), c.opts.K, c.opts.IndexMax, c.opts.Profile.Hash())
	if v, ok := cacheGet(c.opts.Cache, key); ok {
		ra := v.(*refineArtifacts)
		c.opts.Trace.Record(Sample{Pass: "refine", CacheHit: true})
		return ra.res.Plan, ra.res
	}
	start := time.Now()
	opts := c.opts.RefineOpts
	if opts.Specs == nil {
		opts.Specs = c.opts.Specs
	}
	res := refine.Refine(c.Program, c.Points, c.Andersen(), plan, c.opts.Profile, opts)
	c.opts.Trace.Record(Sample{
		Pass: "refine", Wall: time.Since(start), Facts: int64(len(res.Decisions)),
	})
	cachePut(c.opts.Cache, key, &refineArtifacts{res: res})
	return res.Plan, res
}

// GlobalPlan returns the single-global-lock baseline plan.
func (c *Compilation) GlobalPlan() map[int]locks.Set {
	start := time.Now()
	plan := transform.GlobalLockPlan(c.Program)
	c.opts.Trace.Record(Sample{
		Pass: "plan", Wall: time.Since(start), Facts: planLocks(plan),
	})
	return plan
}

// CoarsePlan returns the plan with every fine lock coarsened to its
// partition (the k=0 shape).
func (c *Compilation) CoarsePlan() map[int]locks.Set {
	start := time.Now()
	plan := transform.Coarsen(transform.SectionLocks(c.Results))
	c.opts.Trace.Record(Sample{
		Pass: "plan", Wall: time.Since(start), Facts: planLocks(plan),
	})
	return plan
}

// TransformedSource renders the program with every atomic section rewritten
// to the to_acquire/acquire_all/release_all form of Figure 1(c).
func (c *Compilation) TransformedSource() string {
	start := time.Now()
	src := transform.Source(c.Program, c.Results)
	c.opts.Trace.Record(Sample{
		Pass: "transform", Wall: time.Since(start),
		Facts: int64(len(c.Program.Sections)),
	})
	return src
}

// GoSource runs the native backend pass: it emits one self-contained Go
// main package implementing the program under the inferred plan plus its
// drop-all mutant variant (see internal/codegen). The emission is recorded
// as the "codegen" pass in the trace.
func (c *Compilation) GoSource() (string, error) {
	start := time.Now()
	src, err := codegen.Emit(codegen.Program{
		Name:     c.Name,
		Prog:     c.Program,
		Pts:      c.Points,
		Variants: codegen.DefaultVariants(transform.SectionLocks(c.Results)),
	})
	if err != nil {
		return "", failed("codegen", c.Name, err)
	}
	c.opts.Trace.Record(Sample{
		Pass: "codegen", Wall: time.Since(start),
		Facts: int64(len(c.Program.Sections)),
	})
	return src, nil
}

func planLocks(plan map[int]locks.Set) int64 {
	var n int64
	for _, s := range plan {
		n += int64(len(s))
	}
	return n
}

func cacheGet(c *Cache, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	return c.get(key)
}

func cachePut(c *Cache, key string, v any) {
	if c != nil {
		c.put(key, v)
	}
}
