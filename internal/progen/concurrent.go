package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// ConcurrentSpec describes a generated concurrent program: shared global
// structures, helper functions, and a worker whose body mixes atomic
// sections over the shared state with private computation. These programs
// fuzz the whole pipeline end to end: the soundness property test compiles
// them at random k and executes them under the checking interpreter.
type ConcurrentSpec struct {
	Seed int64
	// Funcs is the number of helper functions (each contains 0-2 atomic
	// sections). Zero means 6.
	Funcs int
}

// GenerateConcurrent produces the program text. The program always defines
// init() and worker(ops, seed).
func GenerateConcurrent(spec ConcurrentSpec) string {
	if spec.Funcs == 0 {
		spec.Funcs = 6
	}
	g := &cgen{r: rand.New(rand.NewSource(spec.Seed)), nfuncs: spec.Funcs}
	g.emit()
	return g.b.String()
}

type cgen struct {
	r      *rand.Rand
	b      strings.Builder
	nfuncs int
	// helper names with their atomic-capable signature: fn(i int) int
	helpers []string
}

func (g *cgen) w(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// emit writes the whole program: a node graph shared through globals,
// helpers that mutate it inside atomic sections, and the worker loop.
func (g *cgen) emit() {
	g.w("struct node {")
	g.w("  node* next;")
	g.w("  node* other;")
	g.w("  int val;")
	g.w("}")
	g.w("node* gA;")
	g.w("node* gB;")
	g.w("int gcount;")
	g.w("")
	g.w("void init() {")
	g.w("  gA = new node;")
	g.w("  gB = new node;")
	g.w("  node* c = gA;")
	g.w("  int i = 0;")
	g.w("  while (i < 8) {")
	g.w("    node* n = new node;")
	g.w("    n->val = i;")
	g.w("    c->next = n;")
	g.w("    c = n;")
	g.w("    i = i + 1;")
	g.w("  }")
	g.w("  gB->other = gA->next;")
	g.w("}")
	for i := 0; i < g.nfuncs; i++ {
		g.emitHelper(i)
	}
	g.emitWorker()
}

// emitHelper writes one function that may read and mutate the shared graph
// inside atomic sections.
func (g *cgen) emitHelper(id int) {
	name := fmt.Sprintf("op%d", id)
	g.helpers = append(g.helpers, name)
	g.w("")
	g.w("int %s(int i) {", name)
	g.w("  int acc = 0;")
	sections := 1 + g.r.Intn(2)
	for s := 0; s < sections; s++ {
		g.w("  atomic {")
		g.emitSectionBody()
		g.w("  }")
		if g.r.Intn(2) == 0 {
			g.w("  acc = acc + i;")
		}
	}
	g.w("  return acc;")
	g.w("}")
}

// emitSectionBody writes a random mix of shared-graph operations. Every
// statement keeps the program memory-safe (null checks before dereferences
// on nullable chains) so that any interpreter error is a true finding.
func (g *cgen) emitSectionBody() {
	n := 2 + g.r.Intn(5)
	for j := 0; j < n; j++ {
		switch g.r.Intn(7) {
		case 0: // bump the shared counter
			g.w("    gcount = gcount + 1;")
		case 1: // walk the gA chain
			g.w("    node* w%d = gA;", j)
			g.w("    while (w%d != null) {", j)
			g.w("      w%d = w%d->next;", j, j)
			g.w("    }")
		case 2: // mutate a fixed-depth cell (fine-grain lockable)
			g.w("    node* p%d = gA->next;", j)
			g.w("    if (p%d != null) {", j)
			g.w("      p%d->val = p%d->val + 1;", j, j)
			g.w("    }")
		case 3: // cross-link the structures
			g.w("    gB->other = gA->next;")
		case 4: // read through the cross link
			g.w("    node* q%d = gB->other;", j)
			g.w("    if (q%d != null) {", j)
			g.w("      gcount = gcount + q%d->val;", j)
			g.w("    }")
		case 5: // insert a fresh node after the head
			g.w("    node* f%d = new node;", j)
			g.w("    f%d->val = gcount;", j)
			g.w("    f%d->next = gA->next;", j)
			g.w("    gA->next = f%d;", j)
		default: // swap heads through a local
			g.w("    node* t%d = gA->next;", j)
			g.w("    node* u%d = gB->next;", j)
			g.w("    gA->next = u%d;", j)
			g.w("    gB->next = t%d;", j)
		}
	}
}

// emitWorker writes the per-thread driver calling random helpers.
func (g *cgen) emitWorker() {
	g.w("")
	g.w("void worker(int ops, int seed) {")
	g.w("  int s = seed;")
	g.w("  int i = 0;")
	g.w("  while (i < ops) {")
	g.w("    s = (s * 1103515245 + 12345) %% 1073741824;")
	g.w("    int pick = s %% %d;", len(g.helpers))
	for i, h := range g.helpers {
		if i == 0 {
			g.w("    if (pick == %d) {", i)
		} else {
			g.w("    } else { if (pick == %d) {", i)
		}
		g.w("      int r%d = %s(i);", i, h)
	}
	// Close the else-if ladder: the last if plus one brace per else.
	g.w("    " + strings.Repeat("}", len(g.helpers)))
	g.w("    i = i + 1;")
	g.w("  }")
	g.w("}")
}
