package progen

import (
	"errors"
	"testing"

	"lockinfer/internal/infer"
	"lockinfer/internal/interp"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// TestConcurrentGeneratorCompiles checks generated concurrent programs
// survive the whole pipeline.
func TestConcurrentGeneratorCompiles(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := GenerateConcurrent(ConcurrentSpec{Seed: seed})
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		if len(prog.Sections) == 0 {
			t.Fatalf("seed %d: no atomic sections", seed)
		}
	}
}

// TestSoundnessFuzz is the pipeline-level Theorem 1 fuzzer: random
// concurrent programs, random k, executed with 3 threads on the checking
// interpreter. A Violation is always a bug; RuntimeErrors would indicate a
// generator defect (bodies are written to be memory safe).
func TestSoundnessFuzz(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 3
	}
	for seed := int64(0); seed < int64(rounds); seed++ {
		k := int(seed % 5 * 2) // 0,2,4,6,8
		src := GenerateConcurrent(ConcurrentSpec{Seed: 1000 + seed})
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pts := steens.Run(prog)
		results := infer.New(prog, pts, infer.Options{K: k}).AnalyzeAll()
		m := interp.NewMachine(prog, pts, transform.SectionLocks(results))
		m.Checked = true
		if err := m.Init(); err != nil {
			t.Fatalf("seed %d: init: %v", seed, err)
		}
		if _, err := m.Call(0, "init", nil); err != nil {
			t.Fatalf("seed %d: program init: %v", seed, err)
		}
		specs := []interp.ThreadSpec{
			{Fn: "worker", Args: []interp.Value{interp.IntV(25), interp.IntV(seed)}},
			{Fn: "worker", Args: []interp.Value{interp.IntV(25), interp.IntV(seed + 77)}},
			{Fn: "worker", Args: []interp.Value{interp.IntV(25), interp.IntV(seed + 991)}},
		}
		if err := m.Run(specs); err != nil {
			var v *interp.Violation
			if errors.As(err, &v) {
				t.Fatalf("seed %d k=%d: SOUNDNESS VIOLATION: %v\n%s", seed, k, err, src)
			}
			t.Fatalf("seed %d k=%d: runtime error (generator defect): %v", seed, k, err)
		}
	}
}
