package progen

import (
	"testing"
	"time"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/steens"
)

// TestGeneratedProgramsCompile checks that generated programs parse, lower
// and analyze at a small size.
func TestGeneratedProgramsCompile(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "tiny", KLoC: 0.8, Seed: 1},
		{Name: "small", KLoC: 2.0, Seed: 2},
	} {
		src := Generate(spec)
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec.Name, err)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatalf("%s: lower: %v", spec.Name, err)
		}
		if len(prog.Sections) != 1 {
			t.Errorf("%s: %d sections, want 1", spec.Name, len(prog.Sections))
		}
		pts := steens.Run(prog)
		res := infer.New(prog, pts, infer.Options{K: 3}).AnalyzeAll()
		if len(res[0].Locks) == 0 {
			t.Errorf("%s: wrapped main inferred no locks", spec.Name)
		}
	}
}

// TestDeterminism checks that the same spec yields byte-identical output.
func TestDeterminism(t *testing.T) {
	spec := Spec{Name: "d", KLoC: 1.0, Seed: 42}
	if Generate(spec) != Generate(spec) {
		t.Fatal("generator is not deterministic")
	}
}

// TestSizeTargets checks the generated size tracks the requested KLoC.
func TestSizeTargets(t *testing.T) {
	for _, kloc := range []float64{1, 5, 10} {
		src := Generate(Spec{Name: "s", KLoC: kloc, Seed: 7})
		lines := Lines(src)
		want := int(kloc * 1000)
		if lines < want*8/10 || lines > want*12/10 {
			t.Errorf("KLoC=%.1f produced %d lines, want about %d", kloc, lines, want)
		}
	}
}

// TestAnalysisScalesToSPECSizes is a smoke test that the largest SPEC
// substitute analyzes within a sane time bound at k=0.
func TestAnalysisScalesToSPECSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("large generation")
	}
	spec := SPECPrograms()[0] // gzip, 10.3 KLoC
	src := Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	pts := steens.Run(prog)
	infer.New(prog, pts, infer.Options{K: 0}).AnalyzeAll()
	if d := time.Since(start); d > 2*time.Minute {
		t.Errorf("k=0 analysis of %s took %v", spec.Name, d)
	}
}
