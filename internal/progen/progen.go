// Package progen generates large, deterministic mini-C programs. The paper
// measures analysis scalability on seven SPECint2000 programs (10–72 KLoC)
// with main wrapped in a single atomic section; those sources are not
// available here, so this generator produces pointer-heavy programs with
// the same size profile — many small functions, struct graphs, chain
// walks, stores through pointers and deep call structure — which exercise
// the identical analysis code paths (Steensgaard unification, backward
// dataflow, k-limiting, function summaries). DESIGN.md §3 records the
// substitution.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Spec describes one synthetic program.
type Spec struct {
	Name string
	// KLoC is the approximate target size in thousands of lines.
	KLoC float64
	Seed int64
}

// SPECPrograms returns the seven SPECint2000 stand-ins with the sizes of
// Table 1.
func SPECPrograms() []Spec {
	return []Spec{
		{Name: "gzip", KLoC: 10.3, Seed: 101},
		{Name: "parser", KLoC: 14.2, Seed: 102},
		{Name: "vpr", KLoC: 20.4, Seed: 103},
		{Name: "crafty", KLoC: 21.2, Seed: 104},
		{Name: "twolf", KLoC: 23.1, Seed: 105},
		{Name: "gap", KLoC: 71.4, Seed: 106},
		{Name: "vortex", KLoC: 71.5, Seed: 107},
	}
}

// generator carries the emission state.
type generator struct {
	r  *rand.Rand
	b  strings.Builder
	ln int

	nstructs int
	// fields[s] lists (fieldName, fieldStruct) pairs; fieldStruct is -1 for
	// int fields, otherwise the pointee struct index.
	fields [][]fieldInfo
	// funcs records emitted function signatures: parameter struct indices
	// and the returned struct index (-1 for int).
	funcs []funcSig
}

type fieldInfo struct {
	name string
	st   int // -1 = int, else struct index
}

type funcSig struct {
	name   string
	params []int // struct indices (pointer params) followed by one int
	ret    int   // struct index, -1 = int
}

// Generate produces the program text.
func Generate(spec Spec) string {
	g := &generator{r: rand.New(rand.NewSource(spec.Seed))}
	targetLines := int(spec.KLoC * 1000)
	g.nstructs = 6 + g.r.Intn(6)
	g.emitStructs()
	g.emitGlobals()
	for g.ln < targetLines-60 {
		g.emitFunc()
	}
	g.emitMain()
	return g.b.String()
}

func (g *generator) w(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
	g.ln++
}

func (g *generator) emitStructs() {
	g.fields = make([][]fieldInfo, g.nstructs)
	for s := 0; s < g.nstructs; s++ {
		nf := 2 + g.r.Intn(3)
		for f := 0; f < nf; f++ {
			fi := fieldInfo{name: fmt.Sprintf("f%d_%d", s, f), st: -1}
			if g.r.Intn(3) != 0 {
				fi.st = g.r.Intn(g.nstructs)
			}
			g.fields[s] = append(g.fields[s], fi)
		}
		// Guarantee a self link so chain walks exist.
		g.fields[s] = append(g.fields[s], fieldInfo{name: fmt.Sprintf("f%d_self", s), st: s})
	}
	for s := 0; s < g.nstructs; s++ {
		g.w("struct T%d {", s)
		for _, fi := range g.fields[s] {
			if fi.st < 0 {
				g.w("  int %s;", fi.name)
			} else {
				g.w("  T%d* %s;", fi.st, fi.name)
			}
		}
		g.w("}")
	}
}

func (g *generator) emitGlobals() {
	for s := 0; s < g.nstructs; s++ {
		g.w("T%d* glob%d;", s, s)
	}
	g.w("int gcount;")
}

// env tracks in-scope variables by type during body generation.
type env struct {
	ptrs [][]string // per struct index
	ints []string
}

func (e *env) ptr(r *rand.Rand, st int) string {
	vs := e.ptrs[st]
	if len(vs) == 0 {
		return ""
	}
	return vs[r.Intn(len(vs))]
}

func (e *env) intv(r *rand.Rand) string {
	return e.ints[r.Intn(len(e.ints))]
}

// mark/reset scope the environment around nested blocks: variables declared
// inside a block must not be referenced after it.
type envMark struct {
	ptrs []int
	ints int
}

func (e *env) mark() envMark {
	m := envMark{ptrs: make([]int, len(e.ptrs)), ints: len(e.ints)}
	for i, vs := range e.ptrs {
		m.ptrs[i] = len(vs)
	}
	return m
}

func (e *env) reset(m envMark) {
	for i := range e.ptrs {
		e.ptrs[i] = e.ptrs[i][:m.ptrs[i]]
	}
	e.ints = e.ints[:m.ints]
}

func (g *generator) emitFunc() {
	id := len(g.funcs)
	sig := funcSig{name: fmt.Sprintf("fn%d", id)}
	np := 1 + g.r.Intn(2)
	for i := 0; i < np; i++ {
		sig.params = append(sig.params, g.r.Intn(g.nstructs))
	}
	sig.ret = -1
	if g.r.Intn(2) == 0 {
		sig.ret = g.r.Intn(g.nstructs)
	}
	g.funcs = append(g.funcs, sig)

	e := &env{ptrs: make([][]string, g.nstructs), ints: []string{"n"}}
	var decl []string
	for i, st := range sig.params {
		name := fmt.Sprintf("p%d", i)
		decl = append(decl, fmt.Sprintf("T%d* %s", st, name))
		e.ptrs[st] = append(e.ptrs[st], name)
	}
	decl = append(decl, "int n")
	retType := "int"
	if sig.ret >= 0 {
		retType = fmt.Sprintf("T%d*", sig.ret)
	}
	g.w("%s %s(%s) {", retType, sig.name, strings.Join(decl, ", "))

	nstmts := 6 + g.r.Intn(14)
	tmp := 0
	for i := 0; i < nstmts; i++ {
		g.emitStmt(e, &tmp, 1)
	}
	// Return something of the right type.
	if sig.ret < 0 {
		g.w("  return n + gcount;")
	} else {
		if v := e.ptr(g.r, sig.ret); v != "" {
			g.w("  return %s;", v)
		} else {
			g.w("  return new T%d;", sig.ret)
		}
	}
	g.w("}")
}

// emitStmt writes one statement into the current body.
func (g *generator) emitStmt(e *env, tmp *int, depth int) {
	ind := strings.Repeat("  ", depth)
	fresh := func() string {
		*tmp++
		return fmt.Sprintf("t%d", *tmp)
	}
	choice := g.r.Intn(10)
	switch {
	case choice < 2: // allocation
		st := g.r.Intn(g.nstructs)
		v := fresh()
		g.w("%sT%d* %s = new T%d;", ind, st, v, st)
		e.ptrs[st] = append(e.ptrs[st], v)
	case choice < 4: // field load
		st := g.r.Intn(g.nstructs)
		p := e.ptr(g.r, st)
		if p == "" {
			g.w("%sgcount = gcount + 1;", ind)
			return
		}
		fi := g.fields[st][g.r.Intn(len(g.fields[st]))]
		v := fresh()
		if fi.st < 0 {
			g.w("%sint %s = %s->%s;", ind, v, p, fi.name)
			e.ints = append(e.ints, v)
		} else {
			g.w("%sT%d* %s = %s->%s;", ind, fi.st, v, p, fi.name)
			e.ptrs[fi.st] = append(e.ptrs[fi.st], v)
		}
	case choice < 6: // field store
		st := g.r.Intn(g.nstructs)
		p := e.ptr(g.r, st)
		if p == "" {
			g.w("%sgcount = gcount + 2;", ind)
			return
		}
		fi := g.fields[st][g.r.Intn(len(g.fields[st]))]
		if fi.st < 0 {
			g.w("%s%s->%s = %s + %d;", ind, p, fi.name, e.intv(g.r), g.r.Intn(100))
		} else if q := e.ptr(g.r, fi.st); q != "" {
			g.w("%s%s->%s = %s;", ind, p, fi.name, q)
		} else {
			g.w("%s%s->%s = null;", ind, p, fi.name)
		}
	case choice < 7 && depth < 3: // chain walk
		st := g.r.Intn(g.nstructs)
		p := e.ptr(g.r, st)
		if p == "" {
			return
		}
		v := fresh()
		self := fmt.Sprintf("f%d_self", st)
		g.w("%sT%d* %s = %s;", ind, st, v, p)
		g.w("%swhile (%s != null) {", ind, v)
		g.w("%s  %s = %s->%s;", ind, v, v, self)
		g.w("%s}", ind)
	case choice < 8 && depth < 3: // conditional
		g.w("%sif (%s > %d) {", ind, e.intv(g.r), g.r.Intn(50))
		m := e.mark()
		g.emitStmt(e, tmp, depth+1)
		e.reset(m)
		g.w("%s} else {", ind)
		g.emitStmt(e, tmp, depth+1)
		e.reset(m)
		g.w("%s}", ind)
	case choice < 9 && len(g.funcs) > 1: // call an earlier function
		callee := g.funcs[g.r.Intn(len(g.funcs)-1)]
		var args []string
		ok := true
		for _, st := range callee.params {
			a := e.ptr(g.r, st)
			if a == "" {
				ok = false
				break
			}
			args = append(args, a)
		}
		if !ok {
			g.w("%sgcount = gcount + 3;", ind)
			return
		}
		args = append(args, e.intv(g.r))
		v := fresh()
		if callee.ret < 0 {
			g.w("%sint %s = %s(%s);", ind, v, callee.name, strings.Join(args, ", "))
			e.ints = append(e.ints, v)
		} else {
			g.w("%sT%d* %s = %s(%s);", ind, callee.ret, v, callee.name, strings.Join(args, ", "))
			e.ptrs[callee.ret] = append(e.ptrs[callee.ret], v)
		}
	default: // int arithmetic
		v := fresh()
		g.w("%sint %s = %s * %d + %s;", ind, v, e.intv(g.r), 1+g.r.Intn(7), e.intv(g.r))
		e.ints = append(e.ints, v)
	}
}

// emitMain wraps the whole computation in one atomic section, as the paper
// does for the SPEC programs.
func (g *generator) emitMain() {
	g.w("void main() {")
	for s := 0; s < g.nstructs; s++ {
		g.w("  glob%d = new T%d;", s, s)
	}
	g.w("  atomic {")
	// Call a sample of functions with global arguments.
	ncalls := 10 + g.r.Intn(10)
	for i := 0; i < ncalls && len(g.funcs) > 0; i++ {
		callee := g.funcs[g.r.Intn(len(g.funcs))]
		var args []string
		for _, st := range callee.params {
			args = append(args, fmt.Sprintf("glob%d", st))
		}
		args = append(args, fmt.Sprintf("%d", 1+g.r.Intn(20)))
		if callee.ret < 0 {
			g.w("    gcount = gcount + %s(%s);", callee.name, strings.Join(args, ", "))
		} else {
			g.w("    glob%d = %s(%s);", callee.ret, callee.name, strings.Join(args, ", "))
		}
	}
	g.w("  }")
	g.w("}")
}

// Lines counts the lines of a generated program.
func Lines(src string) int {
	return strings.Count(src, "\n") + 1
}
