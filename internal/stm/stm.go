// Package stm is a TL2-style software transactional memory, the optimistic
// baseline the paper compares against (Dice, Shalev, Shavit: "Transactional
// Locking II", DISC 2006). It implements the global-version-clock algorithm:
// transactions read a version snapshot, validate every read against it,
// lock their write set in a canonical order at commit time, bump the clock,
// re-validate the read set and write back. Conflicts abort and re-execute
// the transaction, with bounded exponential backoff.
package stm

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"lockinfer/internal/mem"
)

// Runtime is one STM instance: a global version clock plus statistics.
type Runtime struct {
	// SkipValidation disables both validation points — the read-time
	// version/lock check and the commit-time read-set re-validation — while
	// still computing them. It exists only for fault injection: the
	// conformance harness proves it can catch an optimistic runtime that
	// stops validating. Set before any transaction runs.
	SkipValidation bool

	clock atomic.Uint64

	commits atomic.Int64
	aborts  atomic.Int64
	ignored atomic.Int64
}

// New returns a fresh STM runtime.
func New() *Runtime {
	return &Runtime{}
}

// Commits returns the number of successfully committed transactions.
func (rt *Runtime) Commits() int64 { return rt.commits.Load() }

// Aborts returns the number of aborted transaction attempts.
func (rt *Runtime) Aborts() int64 { return rt.aborts.Load() }

// IgnoredConflicts returns the number of conflicts validation detected but
// ignored under SkipValidation; the mutation tests use it to prove the
// injected fault actually fired.
func (rt *Runtime) IgnoredConflicts() int64 { return rt.ignored.Load() }

// abortSignal unwinds an attempt; it never escapes Atomic.
type abortSignal struct{}

// Tx is one transaction attempt. It is valid only inside the function
// passed to Atomic.
type Tx struct {
	rt     *Runtime
	rv     uint64
	reads  []*mem.Cell
	writes map[*mem.Cell]any
	worder []*mem.Cell
	hooks  *Hooks
}

// Hooks customize the commit protocol; the hybrid engine uses them to
// serialize optimistic write-commits against active pessimistic sections.
type Hooks struct {
	// PreWriteCommit runs immediately before a writing commit's lock phase;
	// the function it returns runs after the commit attempt finishes,
	// whether it succeeded or aborted. Read-only commits — already
	// linearized by read-time validation — never invoke it.
	PreWriteCommit func() func()
}

// Atomic runs fn transactionally, retrying on conflict until it commits.
// fn must confine its side effects to cell reads and writes through tx.
func (rt *Runtime) Atomic(fn func(tx *Tx)) {
	rt.AtomicBounded(fn, 0, nil)
}

// AtomicBounded runs fn transactionally for at most maxAttempts attempts
// (0 means unbounded), with optional commit hooks. It reports whether an
// attempt committed and how many attempts aborted — the hybrid engine's
// per-section abort budget.
func (rt *Runtime) AtomicBounded(fn func(tx *Tx), maxAttempts int, hooks *Hooks) (committed bool, aborts int) {
	backoff := 0
	for {
		if rt.attempt(fn, hooks) {
			rt.commits.Add(1)
			return true, aborts
		}
		rt.aborts.Add(1)
		aborts++
		if maxAttempts > 0 && aborts >= maxAttempts {
			return false, aborts
		}
		// Bounded randomized exponential backoff.
		if backoff < 10 {
			backoff++
		}
		spins := rand.Intn(1 << backoff)
		if spins > 256 {
			time.Sleep(time.Duration(spins) * time.Nanosecond)
		} else {
			for i := 0; i < spins; i++ {
				runtime.Gosched()
			}
		}
	}
}

// attempt runs one optimistic execution of fn; it reports commit success.
func (rt *Runtime) attempt(fn func(tx *Tx), hooks *Hooks) (ok bool) {
	tx := &Tx{rt: rt, rv: rt.clock.Load(), writes: map[*mem.Cell]any{}, hooks: hooks}
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); !isAbort {
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	return tx.commit()
}

func (tx *Tx) abort() { panic(abortSignal{}) }

// Load transactionally reads a cell.
func (tx *Tx) Load(c *mem.Cell) any {
	if v, ok := tx.writes[c]; ok {
		return v
	}
	m1 := c.Meta()
	if mem.MetaLocked(m1) {
		tx.conflict()
	}
	v := c.Load()
	m2 := c.Meta()
	if m1 != m2 || mem.MetaVersion(m1) > tx.rv {
		tx.conflict()
	}
	tx.reads = append(tx.reads, c)
	return v
}

// conflict handles a detected read-time conflict: abort normally, count and
// continue under SkipValidation.
func (tx *Tx) conflict() {
	if tx.rt.SkipValidation {
		tx.rt.ignored.Add(1)
		return
	}
	tx.abort()
}

// Store transactionally writes a cell (buffered until commit).
func (tx *Tx) Store(c *mem.Cell, v any) {
	if _, ok := tx.writes[c]; !ok {
		tx.worder = append(tx.worder, c)
	}
	tx.writes[c] = v
}

// commit runs the TL2 commit protocol.
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions commit immediately: every read was
		// validated against rv at read time.
		return true
	}
	if tx.hooks != nil && tx.hooks.PreWriteCommit != nil {
		post := tx.hooks.PreWriteCommit()
		if post != nil {
			defer post()
		}
	}
	// Lock the write set in cell-id order with a bounded spin.
	order := tx.worder
	insertionSortByID(order)
	locked := 0
	for _, c := range order {
		if !spinLock(c) {
			for i := 0; i < locked; i++ {
				order[i].UnlockMetaSameVersion()
			}
			return false
		}
		locked++
	}
	wv := tx.rt.clock.Add(1)
	// Validate the read set unless no other transaction committed since rv.
	if wv != tx.rv+1 {
		for _, c := range tx.reads {
			m := c.Meta()
			if _, mine := tx.writes[c]; mem.MetaLocked(m) && !mine {
				if tx.rt.SkipValidation {
					tx.rt.ignored.Add(1)
					continue
				}
				tx.unlockAll(order)
				return false
			}
			if mem.MetaVersion(m) > tx.rv {
				if tx.rt.SkipValidation {
					tx.rt.ignored.Add(1)
					continue
				}
				tx.unlockAll(order)
				return false
			}
		}
	}
	for _, c := range order {
		c.Store(tx.writes[c])
		c.UnlockMeta(wv)
	}
	return true
}

func (tx *Tx) unlockAll(order []*mem.Cell) {
	for _, c := range order {
		c.UnlockMetaSameVersion()
	}
}

func spinLock(c *mem.Cell) bool {
	for i := 0; i < 64; i++ {
		if c.TryLockMeta() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// PessLock meta-locks a cell on behalf of a pessimistic section, spinning
// until it wins. The holder must eventually release it via PessPublish, so
// optimistic transactions see the in-place writes as a version bump.
func PessLock(c *mem.Cell) {
	for !c.TryLockMeta() {
		runtime.Gosched()
	}
}

// PessPublish releases a pessimistic section's meta-locked cells under a
// fresh clock value, making its in-place writes visible to the TL2 protocol
// as one committed update.
func (rt *Runtime) PessPublish(cells []*mem.Cell) {
	if len(cells) == 0 {
		return
	}
	wv := rt.clock.Add(1)
	for _, c := range cells {
		c.UnlockMeta(wv)
	}
}

func insertionSortByID(cs []*mem.Cell) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j].ID() > c.ID() {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}
