// Package stm is a TL2-style software transactional memory, the optimistic
// baseline the paper compares against (Dice, Shalev, Shavit: "Transactional
// Locking II", DISC 2006). It implements the global-version-clock algorithm:
// transactions read a version snapshot, validate every read against it,
// lock their write set in a canonical order at commit time, bump the clock,
// re-validate the read set and write back. Conflicts abort and re-execute
// the transaction, with bounded exponential backoff.
package stm

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"lockinfer/internal/mem"
)

// Runtime is one STM instance: a global version clock plus statistics.
type Runtime struct {
	clock atomic.Uint64

	commits atomic.Int64
	aborts  atomic.Int64
}

// New returns a fresh STM runtime.
func New() *Runtime {
	return &Runtime{}
}

// Commits returns the number of successfully committed transactions.
func (rt *Runtime) Commits() int64 { return rt.commits.Load() }

// Aborts returns the number of aborted transaction attempts.
func (rt *Runtime) Aborts() int64 { return rt.aborts.Load() }

// abortSignal unwinds an attempt; it never escapes Atomic.
type abortSignal struct{}

// Tx is one transaction attempt. It is valid only inside the function
// passed to Atomic.
type Tx struct {
	rt     *Runtime
	rv     uint64
	reads  []*mem.Cell
	writes map[*mem.Cell]any
	worder []*mem.Cell
}

// Atomic runs fn transactionally, retrying on conflict until it commits.
// fn must confine its side effects to cell reads and writes through tx.
func (rt *Runtime) Atomic(fn func(tx *Tx)) {
	backoff := 0
	for {
		if rt.attempt(fn) {
			rt.commits.Add(1)
			return
		}
		rt.aborts.Add(1)
		// Bounded randomized exponential backoff.
		if backoff < 10 {
			backoff++
		}
		spins := rand.Intn(1 << backoff)
		if spins > 256 {
			time.Sleep(time.Duration(spins) * time.Nanosecond)
		} else {
			for i := 0; i < spins; i++ {
				runtime.Gosched()
			}
		}
	}
}

// attempt runs one optimistic execution of fn; it reports commit success.
func (rt *Runtime) attempt(fn func(tx *Tx)) (ok bool) {
	tx := &Tx{rt: rt, rv: rt.clock.Load(), writes: map[*mem.Cell]any{}}
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); !isAbort {
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	return tx.commit()
}

func (tx *Tx) abort() { panic(abortSignal{}) }

// Load transactionally reads a cell.
func (tx *Tx) Load(c *mem.Cell) any {
	if v, ok := tx.writes[c]; ok {
		return v
	}
	m1 := c.Meta()
	if mem.MetaLocked(m1) {
		tx.abort()
	}
	v := c.Load()
	m2 := c.Meta()
	if m1 != m2 || mem.MetaVersion(m1) > tx.rv {
		tx.abort()
	}
	tx.reads = append(tx.reads, c)
	return v
}

// Store transactionally writes a cell (buffered until commit).
func (tx *Tx) Store(c *mem.Cell, v any) {
	if _, ok := tx.writes[c]; !ok {
		tx.worder = append(tx.worder, c)
	}
	tx.writes[c] = v
}

// commit runs the TL2 commit protocol.
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions commit immediately: every read was
		// validated against rv at read time.
		return true
	}
	// Lock the write set in cell-id order with a bounded spin.
	order := tx.worder
	insertionSortByID(order)
	locked := 0
	for _, c := range order {
		if !spinLock(c) {
			for i := 0; i < locked; i++ {
				order[i].UnlockMetaSameVersion()
			}
			return false
		}
		locked++
	}
	wv := tx.rt.clock.Add(1)
	// Validate the read set unless no other transaction committed since rv.
	if wv != tx.rv+1 {
		for _, c := range tx.reads {
			m := c.Meta()
			if _, mine := tx.writes[c]; mem.MetaLocked(m) && !mine {
				tx.unlockAll(order)
				return false
			}
			if mem.MetaVersion(m) > tx.rv {
				tx.unlockAll(order)
				return false
			}
		}
	}
	for _, c := range order {
		c.Store(tx.writes[c])
		c.UnlockMeta(wv)
	}
	return true
}

func (tx *Tx) unlockAll(order []*mem.Cell) {
	for _, c := range order {
		c.UnlockMetaSameVersion()
	}
}

func spinLock(c *mem.Cell) bool {
	for i := 0; i < 64; i++ {
		if c.TryLockMeta() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

func insertionSortByID(cs []*mem.Cell) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j].ID() > c.ID() {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}
