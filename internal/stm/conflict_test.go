package stm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lockinfer/internal/conform"
	"lockinfer/internal/mem"
	"lockinfer/internal/oracle"
	"lockinfer/internal/stm"
)

// Table-driven conflict-window tests: each scenario stresses one part of
// the TL2 protocol (read validation at commit, write-skew prevention,
// abort accounting) across goroutine counts. These run the raw runtime;
// TestConformWorkloadsUnderSTM drives the same engine through the
// conformance harness's generated workloads.

var goroutineCounts = []int{2, 4, 8}

// Commit-time read validation: concurrent increments on one cell must
// never lose an update, and the attempt ledger must balance exactly —
// every attempt either commits or aborts.
func TestConflictWindowCounter(t *testing.T) {
	const opsPer = 200
	for _, gs := range goroutineCounts {
		gs := gs
		t.Run(fmt.Sprintf("goroutines=%d", gs), func(t *testing.T) {
			t.Parallel()
			rt := stm.New()
			c := mem.NewCell(0)
			var attempts atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						rt.Atomic(func(tx *stm.Tx) {
							attempts.Add(1)
							tx.Store(c, tx.Load(c).(int)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := c.Load().(int); got != gs*opsPer {
				t.Fatalf("lost updates: counter = %d, want %d", got, gs*opsPer)
			}
			if rt.Commits() != int64(gs*opsPer) {
				t.Fatalf("commits = %d, want %d", rt.Commits(), gs*opsPer)
			}
			if attempts.Load() != rt.Commits()+rt.Aborts() {
				t.Fatalf("attempt ledger does not balance: %d attempts, %d commits + %d aborts",
					attempts.Load(), rt.Commits(), rt.Aborts())
			}
		})
	}
}

// Conditional transfers: each transaction reads a guard and moves one unit
// while stock remains. Serializability means exactly the initial stock is
// moved — a transaction acting on a stale read of the guard would move too
// much or too little.
func TestConflictWindowGuardedTransfer(t *testing.T) {
	const stock = 16
	for _, gs := range goroutineCounts {
		gs := gs
		t.Run(fmt.Sprintf("goroutines=%d", gs), func(t *testing.T) {
			t.Parallel()
			rt := stm.New()
			src := mem.NewCell(stock)
			dst := mem.NewCell(0)
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < stock; i++ { // enough attempts to drain regardless of split
						rt.Atomic(func(tx *stm.Tx) {
							have := tx.Load(src).(int)
							if have > 0 {
								tx.Store(src, have-1)
								tx.Store(dst, tx.Load(dst).(int)+1)
							}
						})
					}
				}()
			}
			wg.Wait()
			s, d := src.Load().(int), dst.Load().(int)
			if s != 0 || d != stock {
				t.Fatalf("guarded transfer broke serializability: src=%d dst=%d, want 0/%d", s, d, stock)
			}
		})
	}
}

// Write-skew: every transaction reads both cells and zeroes one of them
// only while their sum exceeds 1. Under any serial order at most one
// zeroing can fire per cell pair, so the invariant sum >= 1 must hold; a
// snapshot-isolation-style engine (no read validation of the *other* cell)
// would let two goroutines zero both.
func TestConflictWindowWriteSkew(t *testing.T) {
	const rounds = 50
	for _, gs := range goroutineCounts {
		gs := gs
		t.Run(fmt.Sprintf("goroutines=%d", gs), func(t *testing.T) {
			t.Parallel()
			for round := 0; round < rounds; round++ {
				rt := stm.New()
				a := mem.NewCell(1)
				b := mem.NewCell(1)
				var wg sync.WaitGroup
				for g := 0; g < gs; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						rt.Atomic(func(tx *stm.Tx) {
							sum := tx.Load(a).(int) + tx.Load(b).(int)
							if sum > 1 {
								if g%2 == 0 {
									tx.Store(a, 0)
								} else {
									tx.Store(b, 0)
								}
							}
						})
					}()
				}
				wg.Wait()
				if sum := a.Load().(int) + b.Load().(int); sum < 1 {
					t.Fatalf("write skew: both cells zeroed (round %d)", round)
				}
			}
		})
	}
}

// The same generated workloads the conformance harness sweeps, run on the
// STM interpreter engine across goroutine counts: the final state must
// match a serialization and the runtime must show real transactional
// traffic.
func TestConformWorkloadsUnderSTM(t *testing.T) {
	for _, threads := range []int{2, 4} {
		threads := threads
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				tg, err := oracle.FromProgen(seed, 2, threads, 2)
				if err != nil {
					t.Fatal(err)
				}
				res, err := conform.Check(tg, conform.Options{
					Engines: []conform.Engine{conform.EngineSTM},
					Repeat:  1,
					Log:     t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Err(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Runs[0].Commits == 0 {
					t.Fatalf("seed %d: no transactions committed", seed)
				}
			}
		})
	}
}
