package stm

import (
	"sync"
	"testing"

	"lockinfer/internal/mem"
)

func TestSequentialReadWrite(t *testing.T) {
	rt := New()
	c := mem.NewCell(1)
	rt.Atomic(func(tx *Tx) {
		if got := tx.Load(c).(int); got != 1 {
			t.Errorf("Load = %d, want 1", got)
		}
		tx.Store(c, 2)
		if got := tx.Load(c).(int); got != 2 {
			t.Errorf("Load after Store = %d, want 2 (read own write)", got)
		}
	})
	if got := c.Load().(int); got != 2 {
		t.Errorf("committed value = %d, want 2", got)
	}
	if rt.Commits() != 1 {
		t.Errorf("commits = %d, want 1", rt.Commits())
	}
}

func TestCounterNoLostUpdates(t *testing.T) {
	rt := New()
	c := mem.NewCell(0)
	const threads, iters = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				rt.Atomic(func(tx *Tx) {
					tx.Store(c, tx.Load(c).(int)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := c.Load().(int); got != threads*iters {
		t.Errorf("counter = %d, want %d", got, threads*iters)
	}
}

// TestBankInvariant checks atomicity: transfers between accounts preserve
// the total balance under concurrent readers that would observe any torn
// intermediate state.
func TestBankInvariant(t *testing.T) {
	rt := New()
	const accounts = 16
	const total = accounts * 100
	cells := make([]*mem.Cell, accounts)
	for i := range cells {
		cells[i] = mem.NewCell(100)
	}
	var workers sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 1)
	for w := 0; w < 4; w++ {
		w := w
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 2000; i++ {
				from, to := (w+i)%accounts, (w*7+i*3+1)%accounts
				if from == to {
					continue
				}
				rt.Atomic(func(tx *Tx) {
					a := tx.Load(cells[from]).(int)
					b := tx.Load(cells[to]).(int)
					tx.Store(cells[from], a-1)
					tx.Store(cells[to], b+1)
				})
			}
		}()
	}
	auditorDone := make(chan struct{})
	go func() {
		defer close(auditorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			rt.Atomic(func(tx *Tx) {
				sum = 0
				for _, c := range cells {
					sum += tx.Load(c).(int)
				}
			})
			if sum != total {
				select {
				case errs <- "auditor observed a torn total":
				default:
				}
				return
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-auditorDone
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	sum := 0
	for _, c := range cells {
		sum += c.Load().(int)
	}
	if sum != total {
		t.Errorf("final total = %d, want %d", sum, total)
	}
}

// TestAbortsAreCounted forces a conflict and checks abort accounting.
func TestAbortsAreCounted(t *testing.T) {
	rt := New()
	c := mem.NewCell(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 400; j++ {
				rt.Atomic(func(tx *Tx) {
					v := tx.Load(c).(int)
					// Widen the conflict window.
					x := 0
					for k := 0; k < 50; k++ {
						x += k
					}
					_ = x
					tx.Store(c, v+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := c.Load().(int); got != 8*400 {
		t.Fatalf("counter = %d, want %d", got, 8*400)
	}
	if rt.Commits() != 8*400 {
		t.Errorf("commits = %d, want %d", rt.Commits(), 8*400)
	}
	t.Logf("aborts = %d", rt.Aborts())
}

// TestReadOnlySeesConsistentSnapshot checks opacity for read-only
// transactions: two cells updated together are never observed out of sync.
func TestReadOnlySeesConsistentSnapshot(t *testing.T) {
	rt := New()
	a, b := mem.NewCell(0), mem.NewCell(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 3000; i++ {
			rt.Atomic(func(tx *Tx) {
				tx.Store(a, i)
				tx.Store(b, -i)
			})
		}
		close(stop)
	}()
	bad := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			if bad > 0 {
				t.Errorf("%d inconsistent snapshots observed", bad)
			}
			return
		default:
		}
		var va, vb int
		rt.Atomic(func(tx *Tx) {
			va = tx.Load(a).(int)
			vb = tx.Load(b).(int)
		})
		if va+vb != 0 {
			bad++
		}
	}
}

// TestWriteSkewPrevented: TL2 validates the read set at commit, so the
// classic write-skew anomaly (both threads read both cells, each writes one)
// must not occur.
func TestWriteSkewPrevented(t *testing.T) {
	rt := New()
	for round := 0; round < 200; round++ {
		a, b := mem.NewCell(1), mem.NewCell(1)
		var wg sync.WaitGroup
		run := func(mine, other *mem.Cell) {
			defer wg.Done()
			rt.Atomic(func(tx *Tx) {
				sum := tx.Load(a).(int) + tx.Load(b).(int)
				if sum == 2 {
					tx.Store(mine, 0)
				}
				_ = other
			})
		}
		wg.Add(2)
		go run(a, b)
		go run(b, a)
		wg.Wait()
		if a.Load().(int)+b.Load().(int) == 0 {
			t.Fatalf("write skew: both cells zeroed in round %d", round)
		}
	}
}
