// Multi-goroutine throughput mode: unlike the paper-reproduction tables
// (which run on the deterministic machine simulator), this mode executes
// the native workloads on the real sharded lock runtime and measures
// wall-clock operations per second, so the repository's perf trajectory is
// machine-readable (BENCH_PR2.json) from PR 2 onward.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"lockinfer/internal/mgl"
	"lockinfer/internal/workload"
)

// ThroughputSchema versions the BENCH_*.json layout.
const ThroughputSchema = "lockinfer/throughput/v1"

// tputWork is the in-section spin padding for throughput runs: small
// enough that lock-runtime overhead dominates, nonzero so sections still
// have bodies.
const tputWork = 10

// ThroughputOptions parameterizes a throughput sweep.
type ThroughputOptions struct {
	// Goroutines lists the concurrency levels to sweep (default 1,2,4,8).
	Goroutines []int
	// OpsPerG is the operation count per goroutine (default 10000 — long
	// enough that each cell runs tens of milliseconds and GC timing noise
	// averages out).
	OpsPerG int
	// Reps is how many times each cell is measured; the fastest repetition
	// is reported (default 5 — the wall-clock minimum filters scheduler
	// and CPU-steal noise, which on shared machines exceeds the regression
	// gate's tolerance).
	Reps int
	// Seed fixes the workload randomness.
	Seed int64
}

func (o ThroughputOptions) withDefaults() ThroughputOptions {
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{1, 2, 4, 8}
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 10000
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

// ThroughputResult is one measured cell of the sweep.
type ThroughputResult struct {
	Workload   string  `json:"workload"`
	Runtime    string  `json:"runtime"`
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Lock-runtime statistics (zero for the global-mutex runtime).
	Acquires int64 `json:"acquires"`
	Waits    int64 `json:"waits"`
	// FastPath counts acquisitions granted by the sharded runtime's atomic
	// fast path (always zero for the reference runtime).
	FastPath int64 `json:"fast_path"`
	// ModeAcquires is the per-mode acquire histogram (sharded runtime
	// only): how many grants each of IS/IX/S/SIX/X received.
	ModeAcquires map[string]int64 `json:"mode_acquires,omitempty"`
}

// ThroughputReport is the BENCH_PR2.json payload.
type ThroughputReport struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Goroutines []int  `json:"goroutines"`
	OpsPerG    int    `json:"ops_per_goroutine"`
	// Reps is the per-cell repetition count; each cell reports its fastest
	// repetition (the wall-clock minimum filters machine noise).
	Reps    int                `json:"reps"`
	Seed    int64              `json:"seed"`
	Results []ThroughputResult `json:"results"`
	// SpeedupVsRef maps workload → sharded/reference ops-per-second ratio
	// at the highest swept concurrency level.
	SpeedupVsRef map[string]float64 `json:"speedup_vs_ref"`
}

// tputCase is one workload constructor of the throughput suite. The fine
// grain is used where the workload supports it, so the suite mixes fine
// per-cell and coarse partition locks — the §5.2 scenario the sharded
// runtime exists for. The accounts workload is the designated
// lock-dominated mixed coarse+fine case (two fine writes per transfer,
// coarse-read audits, near-empty section bodies).
type tputCase struct {
	name string
	mk   func() workload.Workload
}

func tputCases() []tputCase {
	return []tputCase{
		{"accounts", func() workload.Workload {
			w := workload.NewAccounts("accounts", workload.HighMix)
			w.SetWork(tputWork)
			return w
		}},
		{"hashtable", func() workload.Workload {
			w := workload.NewHashtable2("hashtable", workload.HighMix, workload.GrainFine)
			w.SetWork(tputWork)
			return w
		}},
		{"list", func() workload.Workload {
			w := workload.NewList("list", workload.LowMix)
			w.SetWork(tputWork)
			return w
		}},
		{"rbtree", func() workload.Workload {
			w := workload.NewRBTree("rbtree", workload.LowMix)
			w.SetWork(tputWork)
			return w
		}},
	}
}

// Runtime identifiers in throughput reports.
const (
	RuntimeSharded = "mgl"     // the sharded Manager (this PR's runtime)
	RuntimeRef     = "mgl-ref" // the retained pre-sharding baseline
	RuntimeGlobal  = "global"  // one mutex per program
)

func tputExec(runtime string) workload.Exec {
	switch runtime {
	case RuntimeSharded:
		return workload.NewMGLExec(RuntimeSharded)
	case RuntimeRef:
		return workload.NewRefMGLExec(RuntimeRef)
	default:
		return workload.NewGlobalExec()
	}
}

// Throughput sweeps workloads × runtimes × goroutine counts and returns
// the report.
func Throughput(opt ThroughputOptions) (*ThroughputReport, error) {
	opt = opt.withDefaults()
	rep := &ThroughputReport{
		Schema:       ThroughputSchema,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Goroutines:   opt.Goroutines,
		OpsPerG:      opt.OpsPerG,
		Reps:         opt.Reps,
		Seed:         opt.Seed,
		SpeedupVsRef: map[string]float64{},
	}
	runtimes := []string{RuntimeSharded, RuntimeRef, RuntimeGlobal}
	for _, tc := range tputCases() {
		for _, rtName := range runtimes {
			for _, g := range opt.Goroutines {
				// Level the GC playing field: an untimed warmup run sizes
				// the adaptive heap goal and a forced collection puts every
				// repetition behind the same starting line. Without this,
				// cells early in the sweep absorb the cold-start
				// collections and the runtime comparison is biased by
				// sweep order.
				warm := tc.mk()
				if _, err := workload.Run(warm, tputExec(rtName), workload.RunConfig{
					Threads:      g,
					OpsPerThread: opt.OpsPerG/4 + 1,
					Seed:         opt.Seed,
				}); err != nil {
					return nil, fmt.Errorf("throughput warmup %s/%s g=%d: %w", tc.name, rtName, g, err)
				}
				var best ThroughputResult
				for attempt := 0; attempt < opt.Reps; attempt++ {
					runtime.GC()
					ex := tputExec(rtName)
					w := tc.mk()
					elapsed, err := workload.Run(w, ex, workload.RunConfig{
						Threads:      g,
						OpsPerThread: opt.OpsPerG,
						Seed:         opt.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("throughput %s/%s g=%d: %w", tc.name, rtName, g, err)
					}
					if attempt > 0 && elapsed.Nanoseconds() >= best.ElapsedNS {
						continue
					}
					res := ThroughputResult{
						Workload:   tc.name,
						Runtime:    rtName,
						Goroutines: g,
						Ops:        int64(g) * int64(opt.OpsPerG),
						ElapsedNS:  elapsed.Nanoseconds(),
						OpsPerSec:  float64(g) * float64(opt.OpsPerG) / elapsed.Seconds(),
					}
					if me, ok := ex.(*workload.MGLExec); ok {
						res.Acquires = me.Runtime().Acquires()
						res.Waits = me.Runtime().Waits()
						if m := me.Manager(); m != nil {
							res.FastPath = m.FastPathHits()
							hist := m.ModeAcquires()
							res.ModeAcquires = map[string]int64{}
							for mode := mgl.IS; mode <= mgl.X; mode++ {
								res.ModeAcquires[mode.String()] = hist[mode]
							}
						}
					}
					best = res
				}
				rep.Results = append(rep.Results, best)
			}
		}
	}
	maxG := opt.Goroutines[len(opt.Goroutines)-1]
	for _, tc := range tputCases() {
		sharded := rep.find(tc.name, RuntimeSharded, maxG)
		ref := rep.find(tc.name, RuntimeRef, maxG)
		if sharded != nil && ref != nil && ref.OpsPerSec > 0 {
			rep.SpeedupVsRef[tc.name] = sharded.OpsPerSec / ref.OpsPerSec
		}
	}
	return rep, nil
}

// find returns the matching result cell, or nil.
func (r *ThroughputReport) find(workload, runtime string, goroutines int) *ThroughputResult {
	for i := range r.Results {
		c := &r.Results[i]
		if c.Workload == workload && c.Runtime == runtime && c.Goroutines == goroutines {
			return c
		}
	}
	return nil
}

// FormatThroughput renders the report as an aligned text table.
func FormatThroughput(rep *ThroughputReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %5s %12s %10s %10s %10s\n",
		"workload", "runtime", "gor", "ops/sec", "waits", "fastpath", "elapsed")
	for _, res := range rep.Results {
		fmt.Fprintf(&b, "%-10s %-8s %5d %12.0f %10d %10d %10s\n",
			res.Workload, res.Runtime, res.Goroutines, res.OpsPerSec,
			res.Waits, res.FastPath, time.Duration(res.ElapsedNS).Round(time.Microsecond))
	}
	names := make([]string, 0, len(rep.SpeedupVsRef))
	for name := range rep.SpeedupVsRef {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "speedup vs pre-sharding runtime (%s, %d goroutines): %.2fx\n",
			name, rep.Goroutines[len(rep.Goroutines)-1], rep.SpeedupVsRef[name])
	}
	return b.String()
}
