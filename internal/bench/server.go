// Server load sweep: lockinferd under open-loop traffic (BENCH_PR8.json).
// An in-process daemon serves a mixed-tenant workload — executes against
// mgl/stm/hybrid worlds of the counter and hashtable programs, repeat
// program submissions (exercising the shared artifact cache and the
// compile singleflight), and metrics scrapes — while the load generator
// steps through target RPS levels and records tail latency, shed load and
// the achieved completion rate. Saturation throughput is the best achieved
// rate over the sweep; the cache hit rate comes from the daemon's own
// /metrics counters.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"lockinfer/internal/loadgen"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
	"lockinfer/internal/server"
)

// ServerSchema versions the BENCH_PR8.json layout.
const ServerSchema = "lockinfer/server-load/v1"

// ServerBenchOptions parameterizes the sweep.
type ServerBenchOptions struct {
	// RPSLevels are the open-loop arrival rates to step through (default
	// 50, 100, 200, 400, 800).
	RPSLevels []float64
	// LevelDuration is the arrival phase per level (default 4s).
	LevelDuration time.Duration
	// Short shrinks the sweep to a CI smoke (2 levels x 1.5s).
	Short bool
	// Seed fixes the traffic mix randomness.
	Seed int64
}

func (o ServerBenchOptions) withDefaults() ServerBenchOptions {
	if len(o.RPSLevels) == 0 {
		o.RPSLevels = []float64{50, 100, 200, 400, 800}
	}
	if o.LevelDuration <= 0 {
		o.LevelDuration = 4 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.Short {
		o.RPSLevels = []float64{50, 200}
		o.LevelDuration = 1500 * time.Millisecond
	}
	return o
}

// ServerLevel is one measured RPS step.
type ServerLevel struct {
	TargetRPS   float64 `json:"target_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50NS       int64   `json:"p50_ns"`
	P99NS       int64   `json:"p99_ns"`
	P999NS      int64   `json:"p999_ns"`
	MaxNS       int64   `json:"max_ns"`
	Done        int64   `json:"done"`
	Rejected    int64   `json:"rejected"`
	Timeouts    int64   `json:"timeouts"`
	Dropped     int64   `json:"dropped"`
	Failed      int64   `json:"failed"`
	ErrorRate   float64 `json:"error_rate"`
}

// ServerReport is the BENCH_PR8.json payload.
type ServerReport struct {
	Schema     string        `json:"schema"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	LevelDurNS int64         `json:"level_duration_ns"`
	Seed       int64         `json:"seed"`
	Levels     []ServerLevel `json:"levels"`
	// SaturationRPS is the best achieved completion rate over the sweep —
	// the daemon's capacity under this mix on this host.
	SaturationRPS float64 `json:"saturation_rps"`
	// Pipeline cache counters from the daemon's /metrics at sweep end: the
	// hit rate is the shared-artifact story under multi-tenant traffic.
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Compiles        int64   `json:"compiles"`
	CompileDedups   int64   `json:"compile_dedups"`
	EngineFallbacks int64   `json:"engine_fallbacks"`
	Executes        int64   `json:"executes"`
	ExecuteErrors   int64   `json:"execute_errors"`
	Notes           string  `json:"notes,omitempty"`
}

// ServerBench stands up an in-process daemon, lays out the mixed-tenant
// worlds, and sweeps the RPS levels.
func ServerBench(opt ServerBenchOptions) (*ServerReport, error) {
	opt = opt.withDefaults()
	srv := server.New(server.Config{
		Cache:          pipeline.NewCache(0),
		RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512}}

	mix, err := serverMix(client, ts.URL)
	if err != nil {
		return nil, err
	}
	rep := &ServerReport{
		Schema:     ServerSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		LevelDurNS: opt.LevelDuration.Nanoseconds(),
		Seed:       opt.Seed,
	}
	if rep.GOMAXPROCS < 2 {
		rep.Notes = "GOMAXPROCS=1: the daemon, the interpreter threads and the load " +
			"generator time-share one CPU, so tail latencies include generator-side " +
			"scheduling delay and the saturation point is far below multi-core capacity."
	}
	for _, rps := range opt.RPSLevels {
		res, err := loadgen.Drive(context.Background(), client, ts.URL, mix, loadgen.Config{
			TargetRPS:      rps,
			Duration:       opt.LevelDuration,
			MaxOutstanding: 512,
			Timeout:        10 * time.Second,
			Seed:           opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: server sweep at %.0f rps: %w", rps, err)
		}
		lvl := ServerLevel{
			TargetRPS:   rps,
			OfferedRPS:  res.OfferedRPS,
			AchievedRPS: res.AchievedRPS,
			P50NS:       res.P50NS,
			P99NS:       res.P99NS,
			P999NS:      res.P999NS,
			MaxNS:       res.MaxNS,
			Done:        res.Done,
			Rejected:    res.Rejected,
			Timeouts:    res.Timeout,
			Dropped:     res.Dropped,
			Failed:      res.Failed,
			ErrorRate:   res.ErrorRate(),
		}
		rep.Levels = append(rep.Levels, lvl)
		if lvl.AchievedRPS > rep.SaturationRPS {
			rep.SaturationRPS = lvl.AchievedRPS
		}
	}

	var snap server.MetricsSnapshot
	if err := getJSON(client, ts.URL+"/metrics", &snap); err != nil {
		return nil, fmt.Errorf("bench: scrape /metrics: %w", err)
	}
	rep.CacheHits, rep.CacheMisses = snap.CacheHits, snap.CacheMisses
	rep.CacheHitRate = snap.CacheHitRate
	rep.Compiles, rep.CompileDedups = snap.Compiles, snap.CompileDedups
	rep.EngineFallbacks = snap.EngineFallbacks
	rep.Executes, rep.ExecuteErrors = snap.Executes, snap.ExecuteErrors
	if rep.ExecuteErrors > 0 {
		return nil, fmt.Errorf("bench: %d execute errors under load — the sweep is only valid clean", rep.ExecuteErrors)
	}
	return rep, nil
}

// serverMix registers the bench programs and worlds and returns the
// weighted traffic mix: counter executes on all three in-process engines,
// a heavier hashtable execute, periodic re-submissions of both programs
// (cache + singleflight traffic) and a metrics scrape.
func serverMix(client *http.Client, base string) ([]loadgen.Op, error) {
	counter, err := progs.Get("counter")
	if err != nil {
		return nil, err
	}
	hashtable, err := progs.Get("hashtable")
	if err != nil {
		return nil, err
	}
	counterID, err := submit(client, base, "bench-counter", "counter", counter.Source())
	if err != nil {
		return nil, err
	}
	htID, err := submit(client, base, "bench-ht", "hashtable", hashtable.Source())
	if err != nil {
		return nil, err
	}

	type worldKey struct{ tenant, prog, engine string }
	worlds := map[worldKey]string{}
	for _, wk := range []worldKey{
		{"bench-counter", counterID, server.EngineMGL},
		{"bench-counter", counterID, server.EngineSTM},
		{"bench-counter", counterID, server.EngineHybrid},
		{"bench-ht", htID, server.EngineMGL},
	} {
		var setup *server.SpecJSON
		if wk.prog == htID {
			setup = &server.SpecJSON{Fn: "init"}
		}
		id, err := world(client, base, wk.tenant, wk.prog, wk.engine, setup)
		if err != nil {
			return nil, err
		}
		worlds[wk] = id
	}

	execBody := func(tenant, worldID string, threads []server.SpecJSON) []byte {
		b, _ := json.Marshal(server.ExecuteRequest{Tenant: tenant, World: worldID, Threads: threads})
		return b
	}
	bump := []server.SpecJSON{{Fn: "bump", Args: []int64{16}}, {Fn: "bump", Args: []int64{16}}}
	htWork := []server.SpecJSON{{Fn: "worker", Args: []int64{8, 101, 66, 17}}, {Fn: "worker", Args: []int64{8, 202, 66, 17}}}
	submitBody, _ := json.Marshal(server.SubmitRequest{Tenant: "bench-resub", Name: "counter", Source: counter.Source()})
	// Same sources at a different k: distinct program ids, so these reach
	// pipeline.Compile and hit the shared cache's k-independent artifacts
	// (parse, points-to) from the k=default compiles above.
	submitK2Counter, _ := json.Marshal(server.SubmitRequest{
		Tenant: "bench-resub", Name: "counter-k2", Source: counter.Source(), K: 2, KSet: true})
	submitK2HT, _ := json.Marshal(server.SubmitRequest{
		Tenant: "bench-resub", Name: "ht-k2", Source: hashtable.Source(), K: 2, KSet: true})

	return []loadgen.Op{
		{Name: "exec-counter-mgl", Weight: 30, Method: "POST", Path: "/v1/execute",
			Body: execBody("bench-counter", worlds[worldKey{"bench-counter", counterID, server.EngineMGL}], bump)},
		{Name: "exec-counter-stm", Weight: 20, Method: "POST", Path: "/v1/execute",
			Body: execBody("bench-counter", worlds[worldKey{"bench-counter", counterID, server.EngineSTM}], bump)},
		{Name: "exec-counter-hybrid", Weight: 20, Method: "POST", Path: "/v1/execute",
			Body: execBody("bench-counter", worlds[worldKey{"bench-counter", counterID, server.EngineHybrid}], bump)},
		{Name: "exec-ht-mgl", Weight: 20, Method: "POST", Path: "/v1/execute",
			Body: execBody("bench-ht", worlds[worldKey{"bench-ht", htID, server.EngineMGL}], htWork)},
		{Name: "submit-counter", Weight: 3, Method: "POST", Path: "/v1/programs", Body: submitBody},
		{Name: "submit-counter-k2", Weight: 1, Method: "POST", Path: "/v1/programs", Body: submitK2Counter},
		{Name: "submit-ht-k2", Weight: 1, Method: "POST", Path: "/v1/programs", Body: submitK2HT},
		{Name: "metrics", Weight: 5, Method: "GET", Path: "/metrics"},
	}, nil
}

// submit registers a program and returns its id.
func submit(client *http.Client, base, tenant, name, source string) (string, error) {
	var resp server.SubmitResponse
	if err := postJSON(client, base+"/v1/programs",
		server.SubmitRequest{Tenant: tenant, Name: name, Source: source}, &resp); err != nil {
		return "", fmt.Errorf("submit %s: %w", name, err)
	}
	return resp.ID, nil
}

// world creates a world and returns its id.
func world(client *http.Client, base, tenant, prog, engine string, setup *server.SpecJSON) (string, error) {
	var resp server.WorldResponse
	if err := postJSON(client, base+"/v1/worlds",
		server.WorldRequest{Tenant: tenant, Program: prog, Engine: engine, Setup: setup}, &resp); err != nil {
		return "", fmt.Errorf("world %s/%s: %w", prog, engine, err)
	}
	return resp.ID, nil
}

func postJSON(client *http.Client, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb server.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("%s: %d %s", url, resp.StatusCode, eb.Error.Message)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// FormatServerBench renders the report as an aligned text table.
func FormatServerBench(rep *ServerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %9s %9s %10s %10s %10s %7s %7s %7s\n",
		"target", "offered", "achieved", "p50", "p99", "p999", "done", "shed", "errs")
	for _, l := range rep.Levels {
		fmt.Fprintf(&b, "%8.0f %9.1f %9.1f %10s %10s %10s %7d %7d %7d\n",
			l.TargetRPS, l.OfferedRPS, l.AchievedRPS,
			time.Duration(l.P50NS).Round(10*time.Microsecond),
			time.Duration(l.P99NS).Round(10*time.Microsecond),
			time.Duration(l.P999NS).Round(10*time.Microsecond),
			l.Done, l.Rejected+l.Dropped, l.Timeouts+l.Failed)
	}
	fmt.Fprintf(&b, "saturation: %.1f req/s; pipeline cache hit rate %.1f%% (%d/%d); compiles %d (+%d deduped)\n",
		rep.SaturationRPS, rep.CacheHitRate*100, rep.CacheHits, rep.CacheHits+rep.CacheMisses,
		rep.Compiles, rep.CompileDedups)
	if rep.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", rep.Notes)
	}
	return b.String()
}

// WriteServerBench stores the report as indented JSON.
func WriteServerBench(path string, rep *ServerReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadServerBench reads a stored server-load report.
func LoadServerBench(path string) (*ServerReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &ServerReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != ServerSchema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, ServerSchema)
	}
	return rep, nil
}
