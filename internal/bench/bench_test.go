package bench

import (
	"testing"

	"lockinfer/internal/sim"
)

// small returns a fast configuration with the paper's 8-thread shape.
func small() RunOptions {
	return RunOptions{Cores: 8, Threads: 8, OpsPerThread: 250, Seed: 11}
}

func rowsByName(t *testing.T, opt RunOptions) map[string]Table2Row {
	t.Helper()
	rows, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Table2Row{}
	for _, r := range rows {
		out[r.Program] = r
	}
	return out
}

// TestTable2Shapes asserts the qualitative structure of Table 2: who wins
// and loses in each row, per the paper's §6.3 analysis.
func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape replication; covered by make check-long")
	}
	rows := rowsByName(t, small())
	gt := func(name string, a, b sim.Time, what string) {
		if a <= b {
			t.Errorf("%s: expected %s (%d > %d)", name, what, a, b)
		}
	}
	// STM loses where rollbacks dominate.
	for _, name := range []string{"genome", "vacation", "kmeans", "bayes", "hashtable-high"} {
		r := rows[name]
		gt(name, r.STM, r.Coarse, "STM slower than coarse locks")
	}
	// STM wins the low-contention micro-benchmarks and labyrinth.
	for _, name := range []string{"labyrinth", "rbtree-low", "rbtree-high", "list-low",
		"hashtable-low", "hashtable-2-low", "hashtable-2-high", "TH-low"} {
		r := rows[name]
		gt(name, r.Coarse, r.STM, "STM faster than coarse locks")
	}
	// Read/write coarse locks beat the global lock roughly 2x in the low
	// settings (more gets -> shared mode).
	for _, name := range []string{"rbtree-low", "list-low", "hashtable-low"} {
		r := rows[name]
		ratio := float64(r.Global) / float64(r.Coarse)
		if ratio < 1.3 {
			t.Errorf("%s: coarse only %.2fx better than global, want >1.3x", name, ratio)
		}
	}
	// In the high settings coarse is roughly the global lock.
	for _, name := range []string{"rbtree-high", "list-high", "hashtable-high", "genome", "bayes"} {
		r := rows[name]
		ratio := float64(r.Coarse) / float64(r.Global)
		if ratio < 0.9 || ratio > 1.25 {
			t.Errorf("%s: coarse/global = %.2f, want about 1", name, ratio)
		}
	}
	// Fine-grain locks halve hashtable-2-high (the paper's headline win
	// for expression locks).
	{
		r := rows["hashtable-2-high"]
		ratio := float64(r.Coarse) / float64(r.Fine)
		if ratio < 1.4 {
			t.Errorf("hashtable-2-high: fine only %.2fx better than coarse, want >1.4x", ratio)
		}
	}
	// Fine-grain locks only add overhead on genome and kmeans.
	for _, name := range []string{"genome", "kmeans"} {
		r := rows[name]
		if r.Fine <= r.Coarse {
			t.Errorf("%s: fine (%d) should cost more than coarse (%d)", name, r.Fine, r.Coarse)
		}
	}
	// TH: disjoint structures let coarse locks beat the global lock in
	// both settings.
	for _, name := range []string{"TH-low", "TH-high"} {
		r := rows[name]
		ratio := float64(r.Global) / float64(r.Coarse)
		if ratio < 1.5 {
			t.Errorf("%s: coarse only %.2fx better than global, want >1.5x", name, ratio)
		}
	}
	// Vacation's abort storm: far more aborts than commits.
	{
		r := rows["vacation"]
		if r.Aborts < 2*r.Commits {
			t.Errorf("vacation: aborts=%d commits=%d; expected an abort storm", r.Aborts, r.Commits)
		}
	}
}

// TestFigure8Shapes asserts the scalability trends of Figure 8.
func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape replication; covered by make check-long")
	}
	series, err := Figure8(small())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8Series{}
	for _, s := range series {
		byName[s.Program] = s
	}
	at := func(s Fig8Series, rt string, threads int) sim.Time {
		for i, th := range s.Threads {
			if th == threads {
				return s.Times[rt][i]
			}
		}
		t.Fatalf("no %d-thread point", threads)
		return 0
	}
	// Total work is fixed, so a scaling runtime's curve decreases with
	// threads. TH scales under coarse locks (disjoint partitions).
	th := byName["TH-high"]
	if v8, v1 := at(th, "coarse", 8), at(th, "coarse", 1); float64(v8) > 0.7*float64(v1) {
		t.Errorf("TH-high coarse does not scale: 1thr=%d 8thr=%d", v1, v8)
	}
	// genome gets no benefit from threads under locks (fully serialized).
	g := byName["genome"]
	if v8, v1 := at(g, "coarse", 8), at(g, "coarse", 1); float64(v8) < 0.75*float64(v1) {
		t.Errorf("genome coarse unexpectedly scales: 1thr=%d 8thr=%d", v1, v8)
	}
	// hashtable-2 under fine locks stops improving between 4 and 8 threads
	// (put/get contention), per the paper's observation.
	h2 := byName["hashtable-2-high"]
	if v8, v4 := at(h2, "fine", 8), at(h2, "fine", 4); float64(v8) < 0.7*float64(v4) {
		t.Errorf("hashtable-2-high fine improved 4->8 threads too much: %d -> %d", v4, v8)
	}
	// rbtree under the STM keeps scaling to 8 threads.
	rb := byName["rbtree-high"]
	if v8, v1 := at(rb, "stm", 8), at(rb, "stm", 1); float64(v8) > 0.6*float64(v1) {
		t.Errorf("rbtree-high stm does not scale: 1thr=%d 8thr=%d", v1, v8)
	}
}

// TestTable1Shape checks analysis-time trends on a scaled-down corpus.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape replication; covered by make check-long")
	}
	rows, err := Table1(Table1Options{SPECScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var largest, smallest *Table1Row
	for i := range rows {
		r := &rows[i]
		if r.TimeK9 < r.TimeK0/2 {
			t.Errorf("%s: k=9 (%v) much faster than k=0 (%v)", r.Program, r.TimeK9, r.TimeK0)
		}
		switch r.Program {
		case "gzip":
			smallest = r
		case "vortex":
			largest = r
		}
	}
	if smallest == nil || largest == nil {
		t.Fatal("missing SPEC rows")
	}
	if largest.TimeK9 < smallest.TimeK9 {
		t.Errorf("analysis time does not grow with size: vortex %v < gzip %v",
			largest.TimeK9, smallest.TimeK9)
	}
}

// TestFigure7Shape checks the lock-distribution trends.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape replication; covered by make check-long")
	}
	cols, err := Figure7([]int{0, 1, 3, 6, 9})
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]Fig7Col{}
	for _, c := range cols {
		byK[c.K] = c
	}
	if c := byK[0]; c.FineRO+c.FineRW != 0 {
		t.Errorf("k=0 produced fine locks: %+v", c)
	}
	if c := byK[3]; c.FineRO+c.FineRW == 0 {
		t.Errorf("k=3 produced no fine locks")
	}
	// Coarse locks are progressively replaced.
	if byK[3].CoarseRO+byK[3].CoarseRW >= byK[0].CoarseRO+byK[0].CoarseRW {
		t.Errorf("coarse count did not drop from k=0 (%d) to k=3 (%d)",
			byK[0].CoarseRO+byK[0].CoarseRW, byK[3].CoarseRO+byK[3].CoarseRW)
	}
	// Plateau: k=6 to k=9 changes little.
	if d := byK[9].Total() - byK[6].Total(); d < -3 || d > 3 {
		t.Errorf("no plateau: total k=6 %d vs k=9 %d", byK[6].Total(), byK[9].Total())
	}
}

// TestAblationShapes checks that both ablated dimensions matter.
func TestAblationShapes(t *testing.T) {
	ro, err := AblateReadOnlyLocks(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ro {
		if r.Factor < 1.25 {
			t.Errorf("read-only ablation on %s only %.2fx; Σε should matter", r.Program, r.Factor)
		}
	}
	parts, err := AblatePartitions(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range parts {
		if r.Factor < 1.3 {
			t.Errorf("partition ablation on %s only %.2fx; Σ≡ should matter", r.Program, r.Factor)
		}
	}
}

// TestDeterminism: identical configurations yield identical simulated
// times.
func TestDeterminism(t *testing.T) {
	opt := RunOptions{Cores: 8, Threads: 4, OpsPerThread: 100, Seed: 3}
	a := rowsByName(t, opt)
	b := rowsByName(t, opt)
	for name, ra := range a {
		if rb := b[name]; ra != rb {
			t.Errorf("%s: non-deterministic results %+v vs %+v", name, ra, rb)
		}
	}
}
