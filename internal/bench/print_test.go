package bench

import (
	"fmt"
	"testing"
)

func TestPrintAll(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cols, err := Figure7([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatFigure7(cols))
	rows, err := AblateReadOnlyLocks(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatAblation("read-only ablation", rows))
	rows2, err := AblatePartitions(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatAblation("partition ablation", rows2))
}
