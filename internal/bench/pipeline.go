// Pipeline-bench mode: serial-versus-parallel inference wall time over the
// same program sets the harnesses compile — the progen conform sweep, the
// hand-written corpus, and a sections-heavy generated suite — at 1, 2, 4
// and 8 workers. The machine-readable report (BENCH_PR5.json) records the
// per-suite speedups, and, when a suite cannot demonstrate parallel
// speedup (too few sections per program, or a single-CPU host), says why
// in Notes instead of silently reporting a flat curve.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lockinfer/internal/infer"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
)

// PipelineSchema versions the BENCH_PR5.json layout.
const PipelineSchema = "lockinfer/pipeline-bench/v1"

// PipelineBenchOptions parameterizes the sweep.
type PipelineBenchOptions struct {
	// Workers lists the inference worker counts (default 1,2,4,8; 1 is the
	// serial baseline and must be present).
	Workers []int
	// Seeds is the progen seed count of the conform-sweep suite (default
	// 50, matching lockconform's default sweep).
	Seeds int
	// HeavyFuncs sizes the sections-heavy suite's generated programs
	// (default 40 helper functions, ~40-80 atomic sections per program).
	HeavyFuncs int
	// HeavySeeds is the program count of the sections-heavy suite
	// (default 4).
	HeavySeeds int
	// Reps measures each cell this many times and reports the fastest
	// (default 3).
	Reps int
	// Short shrinks everything for CI: 10 seeds, 2 heavy programs, 2 reps,
	// workers 1 and 4.
	Short bool
}

func (o PipelineBenchOptions) withDefaults() PipelineBenchOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Seeds == 0 {
		o.Seeds = 50
	}
	if o.HeavyFuncs == 0 {
		o.HeavyFuncs = 40
	}
	if o.HeavySeeds == 0 {
		o.HeavySeeds = 4
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Short {
		o.Workers = []int{1, 4}
		o.Seeds = 10
		o.HeavySeeds = 2
		o.Reps = 2
	}
	return o
}

// PipelineCell is one (suite, workers) measurement.
type PipelineCell struct {
	Suite    string `json:"suite"`
	Workers  int    `json:"workers"`
	Programs int    `json:"programs"`
	Sections int    `json:"sections"`
	// InferNS is the summed inference wall time across the suite's
	// programs (fastest of Reps repetitions).
	InferNS int64 `json:"infer_ns"`
	// Speedup is the serial suite time divided by this cell's time.
	Speedup float64 `json:"speedup"`
}

// PipelineReport is the BENCH_PR5.json payload.
type PipelineReport struct {
	Schema     string         `json:"schema"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Cells      []PipelineCell `json:"cells"`
	// Notes explains suites whose speedup curves cannot be meaningful on
	// this host or corpus — the logged alternative the acceptance criteria
	// allow when parallel speedup is physically unobtainable.
	Notes []string `json:"notes,omitempty"`
}

// pipelineSuite is a named set of pre-compiled artifacts: the benchmark
// times only the inference pass, over programs whose front end and
// points-to analysis already ran.
type pipelineSuite struct {
	name  string
	k     int
	progs []*pipeline.Compilation
}

func buildSuites(o PipelineBenchOptions) ([]pipelineSuite, error) {
	compile := func(name, src string, k int) (*pipeline.Compilation, error) {
		c, err := pipeline.Compile(src, pipeline.Options{
			Name: name, NoCache: true, Trace: pipeline.NewTrace(),
		}.WithK(k))
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		return c, nil
	}

	// Suite 1: what `lockconform` compiles — progen seeds at k=2 plus the
	// concurrent corpus trio.
	conform := pipelineSuite{name: "conform-sweep", k: 2}
	for seed := int64(1); seed <= int64(o.Seeds); seed++ {
		sp, err := compile(fmt.Sprintf("progen/seed=%d", seed),
			progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}), 2)
		if err != nil {
			return nil, err
		}
		conform.progs = append(conform.progs, sp)
	}
	for _, name := range []string{"move", "hashtable", "list"} {
		p, err := progs.Get(name)
		if err != nil {
			return nil, err
		}
		sp, err := compile(name, p.Source(), 2)
		if err != nil {
			return nil, err
		}
		conform.progs = append(conform.progs, sp)
	}

	// Suite 2: the hand-written corpus at the paper's deepest bound.
	corpus := pipelineSuite{name: "corpus", k: 9}
	for _, p := range progs.All() {
		sp, err := compile(p.Name, p.Source(), 9)
		if err != nil {
			return nil, err
		}
		corpus.progs = append(corpus.progs, sp)
	}

	// Suite 3: generated programs with many atomic sections each, where
	// per-section fan-out has enough work to amortize the fork.
	heavy := pipelineSuite{name: "sections-heavy", k: 3}
	for seed := int64(1); seed <= int64(o.HeavySeeds); seed++ {
		sp, err := compile(fmt.Sprintf("heavy/seed=%d", seed),
			progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed, Funcs: o.HeavyFuncs}), 3)
		if err != nil {
			return nil, err
		}
		heavy.progs = append(heavy.progs, sp)
	}
	return []pipelineSuite{conform, corpus, heavy}, nil
}

// PipelineBench measures serial-versus-parallel inference wall time.
func PipelineBench(opt PipelineBenchOptions) (*PipelineReport, error) {
	o := opt.withDefaults()
	suites, err := buildSuites(o)
	if err != nil {
		return nil, err
	}
	rep := &PipelineReport{
		Schema:     PipelineSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, suite := range suites {
		sections := 0
		for _, sp := range suite.progs {
			sections += len(sp.Program.Sections)
		}
		serialNS := int64(0)
		for _, workers := range o.Workers {
			best := int64(0)
			for r := 0; r < o.Reps; r++ {
				start := time.Now()
				for _, sp := range suite.progs {
					eng := infer.New(sp.Program, sp.Points, infer.Options{K: suite.k})
					if workers > 1 {
						eng.AnalyzeAllParallel(workers)
					} else {
						eng.AnalyzeAll()
					}
				}
				if ns := time.Since(start).Nanoseconds(); best == 0 || ns < best {
					best = ns
				}
			}
			if workers == 1 {
				serialNS = best
			}
			cell := PipelineCell{
				Suite:    suite.name,
				Workers:  workers,
				Programs: len(suite.progs),
				Sections: sections,
				InferNS:  best,
			}
			if serialNS > 0 && best > 0 {
				cell.Speedup = float64(serialNS) / float64(best)
			}
			rep.Cells = append(rep.Cells, cell)
		}
		if avg := float64(sections) / float64(len(suite.progs)); avg < 4 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: %.1f atomic sections per program on average — too few for section-parallel speedup; the sweep validates determinism and overhead, not scaling",
				suite.name, avg))
		}
	}
	if rep.GOMAXPROCS == 1 {
		rep.Notes = append(rep.Notes,
			"GOMAXPROCS=1: single-CPU host, so parallel workers cannot run concurrently and wall-time speedup is physically unobtainable here; the parallel driver's value on this host is validated by the determinism property tests (internal/pipeline), and speedup should be re-measured on a multi-core host")
	}
	return rep, nil
}

// FormatPipelineBench renders the report as a table plus its notes.
func FormatPipelineBench(rep *PipelineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %9s %9s %12s %8s\n",
		"suite", "workers", "programs", "sections", "infer", "speedup")
	for _, c := range rep.Cells {
		fmt.Fprintf(&b, "%-16s %8d %9d %9d %12s %7.2fx\n",
			c.Suite, c.Workers, c.Programs, c.Sections,
			time.Duration(c.InferNS).Round(time.Microsecond), c.Speedup)
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WritePipelineBench persists the report (the BENCH_PR5.json artifact).
func WritePipelineBench(path string, rep *PipelineReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
