// Hybrid-runtime contention sweep: the read-heavy vs write-heavy extremes
// of the adaptive engine's design space, measured as wall-clock throughput
// on the native workload runtimes (BENCH_PR7.json). The claim under test:
// the hybrid tracks the optimistic runtime where optimism wins (read-heavy,
// few conflicts) and the pessimistic runtime where locking wins
// (write-heavy, persistent conflicts), without per-workload tuning.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lockinfer/internal/hybrid"
	"lockinfer/internal/workload"
)

// HybridSchema versions the BENCH_PR7.json layout.
const HybridSchema = "lockinfer/hybrid-sweep/v1"

// HybridOptions parameterizes the sweep.
type HybridOptions struct {
	// Goroutines lists the concurrency levels to sweep (default 1,2,4,8).
	Goroutines []int
	// OpsPerG is the operation count per goroutine (default 10000).
	OpsPerG int
	// Reps is how many times each cell is measured; the fastest repetition
	// is reported (default 5).
	Reps int
	// Seed fixes the workload randomness.
	Seed int64
}

func (o HybridOptions) withDefaults() HybridOptions {
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{1, 2, 4, 8}
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 10000
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

// HybridResult is one measured cell of the sweep.
type HybridResult struct {
	Workload   string  `json:"workload"`
	Runtime    string  `json:"runtime"`
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Adaptive-policy counters (hybrid runtime only).
	OptRuns   int64 `json:"opt_runs,omitempty"`
	OptAborts int64 `json:"opt_aborts,omitempty"`
	PessRuns  int64 `json:"pess_runs,omitempty"`
	Fallbacks int64 `json:"fallbacks,omitempty"`
}

// HybridReport is the BENCH_PR7.json payload.
type HybridReport struct {
	Schema     string         `json:"schema"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Goroutines []int          `json:"goroutines"`
	OpsPerG    int            `json:"ops_per_goroutine"`
	Reps       int            `json:"reps"`
	Seed       int64          `json:"seed"`
	Results    []HybridResult `json:"results"`
	// HybridVsBestPure maps workload → hybrid / best-pure-runtime
	// ops-per-second ratio at the highest swept concurrency level, where
	// "best pure" is whichever of mgl-fine or stm won that cell.
	HybridVsBestPure map[string]float64 `json:"hybrid_vs_best_pure"`
	// HybridVsSTM maps workload → hybrid / stm ops-per-second at the highest
	// swept concurrency level: the adaptive machinery's overhead over the
	// mode the policy actually selected (on conflict-free hosts the hybrid
	// never leaves the optimistic path, so this is the measurable cost).
	HybridVsSTM map[string]float64 `json:"hybrid_vs_stm"`
	// Notes carries measurement provenance (host limitations etc.).
	Notes string `json:"notes,omitempty"`
}

// The sweep's two contention extremes, both on the fixed-size hashtable
// (the workload with a genuinely fine-grain inferred plan).
func hybridCases() []tputCase {
	return []tputCase{
		{"ht2-read", func() workload.Workload {
			w := workload.NewHashtable2("ht2-read", workload.ReadHeavyMix, workload.GrainFine)
			w.SetWork(tputWork)
			return w
		}},
		{"ht2-write", func() workload.Workload {
			w := workload.NewHashtable2("ht2-write", workload.WriteHeavyMix, workload.GrainFine)
			w.SetWork(tputWork)
			return w
		}},
	}
}

// RuntimeHybrid identifies the adaptive runtime in hybrid-sweep reports;
// the pure runtimes reuse RuntimeSharded ("mgl") and "stm".
const (
	RuntimeHybrid = "hybrid"
	RuntimeSTM    = "stm"
)

func hybridExec(runtime string) workload.Exec {
	switch runtime {
	case RuntimeSharded:
		return workload.NewMGLExec(RuntimeSharded)
	case RuntimeSTM:
		return workload.NewSTMExec()
	default:
		return workload.NewHybridExec(hybrid.Config{})
	}
}

// HybridSweep measures both contention extremes under the pure pessimistic
// (mgl, fine plan), pure optimistic (stm) and adaptive (hybrid, default
// policy) runtimes.
func HybridSweep(opt HybridOptions) (*HybridReport, error) {
	opt = opt.withDefaults()
	rep := &HybridReport{
		Schema:           HybridSchema,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Goroutines:       opt.Goroutines,
		OpsPerG:          opt.OpsPerG,
		Reps:             opt.Reps,
		Seed:             opt.Seed,
		HybridVsBestPure: map[string]float64{},
		HybridVsSTM:      map[string]float64{},
	}
	if rep.GOMAXPROCS < 2 {
		rep.Notes = "GOMAXPROCS=1: goroutines time-share one CPU, so transactions " +
			"almost never overlap and the abort signal that drives the write-heavy " +
			"lock fallback cannot materialize; the hybrid stays on its optimistic " +
			"path at both extremes and its ratio against the pure lock runtime " +
			"reflects the stm-vs-mgl gap, not adaptive overhead. Compare the hybrid " +
			"against stm on this host; the fallback path is exercised by the " +
			"conformance and property suites instead."
	}
	runtimes := []string{RuntimeSharded, RuntimeSTM, RuntimeHybrid}
	for _, tc := range hybridCases() {
		for _, rtName := range runtimes {
			for _, g := range opt.Goroutines {
				// Same GC leveling as the throughput sweep: untimed warmup,
				// then a forced collection before every timed repetition.
				warm := tc.mk()
				if _, err := workload.Run(warm, hybridExec(rtName), workload.RunConfig{
					Threads:      g,
					OpsPerThread: opt.OpsPerG/4 + 1,
					Seed:         opt.Seed,
				}); err != nil {
					return nil, fmt.Errorf("hybrid warmup %s/%s g=%d: %w", tc.name, rtName, g, err)
				}
				var best HybridResult
				for attempt := 0; attempt < opt.Reps; attempt++ {
					runtime.GC()
					ex := hybridExec(rtName)
					w := tc.mk()
					elapsed, err := workload.Run(w, ex, workload.RunConfig{
						Threads:      g,
						OpsPerThread: opt.OpsPerG,
						Seed:         opt.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("hybrid %s/%s g=%d: %w", tc.name, rtName, g, err)
					}
					if attempt > 0 && elapsed.Nanoseconds() >= best.ElapsedNS {
						continue
					}
					res := HybridResult{
						Workload:   tc.name,
						Runtime:    rtName,
						Goroutines: g,
						Ops:        int64(g) * int64(opt.OpsPerG),
						ElapsedNS:  elapsed.Nanoseconds(),
						OpsPerSec:  float64(g) * float64(opt.OpsPerG) / elapsed.Seconds(),
					}
					if he, ok := ex.(*workload.HybridExec); ok {
						st := he.Policy().Stats()
						res.OptRuns, res.OptAborts = st.OptRuns, st.OptAborts
						res.PessRuns, res.Fallbacks = st.PessRuns, st.Fallbacks
					}
					best = res
				}
				rep.Results = append(rep.Results, best)
			}
		}
	}
	maxG := opt.Goroutines[len(opt.Goroutines)-1]
	for _, tc := range hybridCases() {
		hyb := rep.find(tc.name, RuntimeHybrid, maxG)
		mglRes := rep.find(tc.name, RuntimeSharded, maxG)
		stmRes := rep.find(tc.name, RuntimeSTM, maxG)
		if hyb == nil || mglRes == nil || stmRes == nil {
			continue
		}
		bestPure := mglRes.OpsPerSec
		if stmRes.OpsPerSec > bestPure {
			bestPure = stmRes.OpsPerSec
		}
		if bestPure > 0 {
			rep.HybridVsBestPure[tc.name] = hyb.OpsPerSec / bestPure
		}
		if stmRes.OpsPerSec > 0 {
			rep.HybridVsSTM[tc.name] = hyb.OpsPerSec / stmRes.OpsPerSec
		}
	}
	return rep, nil
}

// find returns the matching result cell, or nil.
func (r *HybridReport) find(workload, runtime string, goroutines int) *HybridResult {
	for i := range r.Results {
		c := &r.Results[i]
		if c.Workload == workload && c.Runtime == runtime && c.Goroutines == goroutines {
			return c
		}
	}
	return nil
}

// FormatHybrid renders the report as an aligned text table.
func FormatHybrid(rep *HybridReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %5s %12s %9s %9s %9s %10s\n",
		"workload", "runtime", "gor", "ops/sec", "opt", "pess", "fallbacks", "elapsed")
	for _, res := range rep.Results {
		fmt.Fprintf(&b, "%-10s %-8s %5d %12.0f %9d %9d %9d %10s\n",
			res.Workload, res.Runtime, res.Goroutines, res.OpsPerSec,
			res.OptRuns, res.PessRuns, res.Fallbacks,
			time.Duration(res.ElapsedNS).Round(time.Microsecond))
	}
	for _, tc := range hybridCases() {
		if ratio, ok := rep.HybridVsBestPure[tc.name]; ok {
			fmt.Fprintf(&b, "hybrid vs best pure runtime (%s, %d goroutines): %.2fx\n",
				tc.name, rep.Goroutines[len(rep.Goroutines)-1], ratio)
		}
		if ratio, ok := rep.HybridVsSTM[tc.name]; ok {
			fmt.Fprintf(&b, "hybrid vs stm (%s, %d goroutines): %.2fx\n",
				tc.name, rep.Goroutines[len(rep.Goroutines)-1], ratio)
		}
	}
	if rep.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", rep.Notes)
	}
	return b.String()
}

// WriteHybrid stores the report as indented JSON.
func WriteHybrid(path string, rep *HybridReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHybrid reads a stored hybrid-sweep report.
func LoadHybrid(path string) (*HybridReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &HybridReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != HybridSchema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, HybridSchema)
	}
	return rep, nil
}
