package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"lockinfer/internal/mgl"
	"lockinfer/internal/sim"
	"lockinfer/internal/workload"
)

// This file implements ablation studies for the design choices DESIGN.md
// calls out: the read/write effect dimension Σε (what is lost when every
// lock is acquired exclusively) and the points-to partition dimension Σ≡
// (what is lost when every coarse lock collapses to the single global
// lock). Each isolates one factor of the Σk × Σ≡ × Σε product scheme.

// descRewriter wraps a workload and rewrites every lock descriptor its
// operations emit.
type descRewriter struct {
	workload.Workload
	rewrite func(mgl.Req) mgl.Req
}

// Op implements workload.Workload.
func (w descRewriter) Op(r *rand.Rand) workload.Op {
	op := w.Workload.Op(r)
	inner := op.Locks
	if inner != nil {
		op.Locks = func(add func(mgl.Req)) {
			inner(func(q mgl.Req) { add(w.rewrite(q)) })
		}
	}
	return op
}

// AblationRow reports one ablated configuration.
type AblationRow struct {
	Program  string
	Baseline sim.Time // the full scheme
	Ablated  sim.Time // one dimension removed
	// Factor is Ablated / Baseline: above 1 means the dimension helps.
	Factor float64
}

// AblateReadOnlyLocks measures read-heavy benchmarks with Σε disabled
// (every lock exclusive). The paper credits read/write modes for the ~2x
// win of coarse locks over the global lock in the low-contention settings.
func AblateReadOnlyLocks(opt RunOptions) ([]AblationRow, error) {
	forceX := func(q mgl.Req) mgl.Req { q.Write = true; return q }
	cases := []Benchmark{
		{Name: "rbtree-low", Coarse: func() workload.Workload {
			return workload.NewRBTree("rbtree-low", workload.LowMix)
		}},
		{Name: "list-low", Coarse: func() workload.Workload {
			return workload.NewList("list-low", workload.LowMix)
		}},
		{Name: "hashtable-low", Coarse: func() workload.Workload {
			return workload.NewHashtable("hashtable-low", workload.LowMix)
		}},
	}
	var rows []AblationRow
	for _, bm := range cases {
		base, err := sim.Run(bm.Coarse(), sim.ModeMGL, opt.config())
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", bm.Name, err)
		}
		abl, err := sim.Run(descRewriter{Workload: bm.Coarse(), rewrite: forceX},
			sim.ModeMGL, opt.config())
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", bm.Name, err)
		}
		rows = append(rows, AblationRow{
			Program:  bm.Name,
			Baseline: base.SimTime,
			Ablated:  abl.SimTime,
			Factor:   float64(abl.SimTime) / float64(base.SimTime),
		})
	}
	return rows, nil
}

// AblatePartitions measures TH with Σ≡ disabled (every coarse descriptor
// collapsed to the global root). The paper credits disjoint partitions for
// TH's win over the global lock.
func AblatePartitions(opt RunOptions) ([]AblationRow, error) {
	toGlobal := func(q mgl.Req) mgl.Req {
		return mgl.Req{Global: true, Write: q.Write}
	}
	cases := []Benchmark{
		{Name: "TH-low", Coarse: func() workload.Workload {
			return workload.NewTH("TH-low", workload.LowMix)
		}},
		{Name: "TH-high", Coarse: func() workload.Workload {
			return workload.NewTH("TH-high", workload.HighMix)
		}},
	}
	var rows []AblationRow
	for _, bm := range cases {
		base, err := sim.Run(bm.Coarse(), sim.ModeMGL, opt.config())
		if err != nil {
			return nil, err
		}
		abl, err := sim.Run(descRewriter{Workload: bm.Coarse(), rewrite: toGlobal},
			sim.ModeMGL, opt.config())
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Program:  bm.Name,
			Baseline: base.SimTime,
			Ablated:  abl.SimTime,
			Factor:   float64(abl.SimTime) / float64(base.SimTime),
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-18s %12s %12s %8s\n", title,
		"Program", "full", "ablated", "factor")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %12d %7.2fx\n",
			r.Program, r.Baseline, r.Ablated, r.Factor)
	}
	return b.String()
}
