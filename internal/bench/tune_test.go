package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateTune = flag.Bool("update", false, "rewrite the tune decision golden")

// TestTuneDecisionsGolden pins the refinement decisions of the 20-seed tune
// sweep against testdata/tune_decisions.golden — the `make tune-short`
// gate. The decisions come from a deterministic single-worker calibration
// profile, so the artifact is byte-reproducible on any host. Regenerate
// with `go test ./internal/bench -run TestTuneDecisionsGolden -update`
// after an intentional refiner change.
func TestTuneDecisionsGolden(t *testing.T) {
	opt := TuneOptions{Seeds: 20, Ops: 4}
	got, err := TuneDecisions(opt)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tune_decisions.golden")
	if *updateTune {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("tune decisions differ from %s; run with -update if intentional\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestTuneBenchReducesAcquires is the PR's headline acceptance property on
// a reduced budget: the profile→refine→re-run loop must cut dynamic
// lock-tree grants by at least 20% on the cold-heavy sweep.
func TestTuneBenchReducesAcquires(t *testing.T) {
	opt := TuneOptions{Short: true}
	if testing.Short() {
		opt = TuneOptions{Seeds: 2, Ops: 4, Reps: 1}
	}
	rep, err := TuneBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewritten == 0 {
		t.Error("tune sweep rewrote no plans")
	}
	if rep.TotalAcquiresBefore <= rep.TotalAcquiresAfter {
		t.Errorf("acquires did not drop: %d -> %d", rep.TotalAcquiresBefore, rep.TotalAcquiresAfter)
	}
	if rep.AcquireReduction < 0.20 {
		t.Errorf("acquire reduction %.1f%% below the 20%% bar\n%s",
			100*rep.AcquireReduction, FormatTune(rep))
	}
	for _, p := range rep.Programs {
		if p.OpsPerSecBefore <= 0 || p.OpsPerSecAfter <= 0 {
			t.Errorf("%s: non-positive throughput %v/%v", p.Name, p.OpsPerSecBefore, p.OpsPerSecAfter)
		}
	}
	t.Logf("acquires %d -> %d (%.1f%% reduction), throughput ratio %.2f",
		rep.TotalAcquiresBefore, rep.TotalAcquiresAfter, 100*rep.AcquireReduction, rep.ThroughputRatio)
}

// TestTuneReportRoundTrip checks WriteTune/LoadTune and the schema gate.
func TestTuneReportRoundTrip(t *testing.T) {
	rep, err := TuneBench(TuneOptions{Seeds: 1, Ops: 2, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := WriteTune(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTune(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAcquiresBefore != rep.TotalAcquiresBefore || len(got.Programs) != len(rep.Programs) {
		t.Errorf("round-trip mismatch: %+v vs %+v", got, rep)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTune(bad); err == nil {
		t.Error("LoadTune accepted a wrong schema")
	}
}
