package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultGateTolerance is the allowed fractional throughput regression
// before the bench gate fails (20%, per the PR acceptance criteria).
const DefaultGateTolerance = 0.20

// LoadThroughput reads a throughput report from a JSON file.
func LoadThroughput(path string) (*ThroughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ThroughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != ThroughputSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, ThroughputSchema)
	}
	return &rep, nil
}

// WriteThroughput writes a throughput report as indented JSON.
func WriteThroughput(path string, rep *ThroughputReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareBaseline gates the current report against a committed baseline:
// any sharded-runtime cell whose ops/sec falls more than tol below the
// baseline's matching cell fails the gate. Only the sharded runtime is
// gated — the reference and global runtimes are comparison points, not
// products. Cells present in only one report are ignored (workload sets
// may grow across PRs).
func CompareBaseline(baseline, current *ThroughputReport, tol float64) error {
	if tol <= 0 {
		tol = DefaultGateTolerance
	}
	var fails []string
	for i := range baseline.Results {
		base := &baseline.Results[i]
		if base.Runtime != RuntimeSharded {
			continue
		}
		cur := current.find(base.Workload, base.Runtime, base.Goroutines)
		if cur == nil || base.OpsPerSec <= 0 {
			continue
		}
		floor := base.OpsPerSec * (1 - tol)
		if cur.OpsPerSec < floor {
			fails = append(fails, fmt.Sprintf(
				"%s g=%d: %.0f ops/sec vs baseline %.0f (floor %.0f)",
				base.Workload, base.Goroutines, cur.OpsPerSec, base.OpsPerSec, floor))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("throughput regression >%d%%:\n  %s",
			int(tol*100), strings.Join(fails, "\n  "))
	}
	return nil
}
