package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func tputReport(cells ...ThroughputResult) *ThroughputReport {
	return &ThroughputReport{
		Schema:     ThroughputSchema,
		Goroutines: []int{8},
		Results:    cells,
	}
}

func cell(workload, runtime string, g int, opsPerSec float64) ThroughputResult {
	return ThroughputResult{Workload: workload, Runtime: runtime, Goroutines: g, OpsPerSec: opsPerSec}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := tputReport(cell("hashtable", RuntimeSharded, 8, 1000))
	// 15% down: within the 20% tolerance.
	cur := tputReport(cell("hashtable", RuntimeSharded, 8, 850))
	if err := CompareBaseline(base, cur, 0.20); err != nil {
		t.Fatalf("within tolerance, got %v", err)
	}
}

func TestCompareBaselineFailsOnRegression(t *testing.T) {
	base := tputReport(cell("hashtable", RuntimeSharded, 8, 1000))
	cur := tputReport(cell("hashtable", RuntimeSharded, 8, 700))
	err := CompareBaseline(base, cur, 0.20)
	if err == nil {
		t.Fatal("30% regression passed the gate")
	}
	if !strings.Contains(err.Error(), "hashtable g=8") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
}

func TestCompareBaselineIgnoresNonShardedAndMissing(t *testing.T) {
	base := tputReport(
		cell("hashtable", RuntimeRef, 8, 1000),  // not gated
		cell("rbtree", RuntimeSharded, 8, 1000), // no matching current cell
		cell("list", RuntimeSharded, 8, 0),      // zero baseline ignored
	)
	cur := tputReport(
		cell("hashtable", RuntimeRef, 8, 1),
		cell("list", RuntimeSharded, 8, 1),
	)
	if err := CompareBaseline(base, cur, 0.20); err != nil {
		t.Fatalf("non-gated cells failed the gate: %v", err)
	}
}

func TestThroughputReportRoundTrip(t *testing.T) {
	rep := tputReport(cell("hashtable", RuntimeSharded, 8, 1234.5))
	rep.Results[0].ModeAcquires = map[string]int64{"IX": 3, "X": 7}
	rep.SpeedupVsRef = map[string]float64{"hashtable": 2.5}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteThroughput(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadThroughput(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].OpsPerSec != 1234.5 || got.Results[0].ModeAcquires["X"] != 7 {
		t.Fatalf("round trip mismatch: %+v", got.Results[0])
	}
	if got.SpeedupVsRef["hashtable"] != 2.5 {
		t.Fatalf("speedup lost in round trip: %+v", got.SpeedupVsRef)
	}
}

func TestLoadThroughputRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := tputReport()
	rep.Schema = "something/else"
	if err := WriteThroughput(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadThroughput(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestThroughputSmoke runs a tiny sweep end to end: every cell populated,
// sharded cells carry fast-path and histogram stats.
func TestThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep")
	}
	rep, err := Throughput(ThroughputOptions{Goroutines: []int{2}, OpsPerG: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4*3 { // 4 workloads x 3 runtimes x 1 level
		t.Fatalf("got %d cells, want 12", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.OpsPerSec <= 0 {
			t.Errorf("%s/%s: zero throughput", res.Workload, res.Runtime)
		}
		switch res.Runtime {
		case RuntimeSharded:
			if res.Acquires == 0 || len(res.ModeAcquires) == 0 {
				t.Errorf("%s/mgl: missing stats: %+v", res.Workload, res)
			}
		case RuntimeRef:
			if res.Acquires == 0 {
				t.Errorf("%s/mgl-ref: missing acquires", res.Workload)
			}
			if res.FastPath != 0 || res.ModeAcquires != nil {
				t.Errorf("%s/mgl-ref: sharded-only stats set: %+v", res.Workload, res)
			}
		}
	}
	for wl, sp := range rep.SpeedupVsRef {
		if sp <= 0 {
			t.Errorf("speedup %s: %v", wl, sp)
		}
	}
}
