// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6):
//
//   - Table 1: program sizes, atomic-section counts and analysis times at
//     k=0 and k=9, over the SPEC-substitute corpus, the STAMP-like kernels
//     and the micro-benchmarks;
//   - Figure 7: the combined lock distribution (fine/coarse × ro/rw) as k
//     sweeps 0..9;
//   - Table 2: simulated 8-thread execution times under Global, Coarse
//     (k=0), Fine+Coarse (k=9) and the TL2-style STM;
//   - Figure 8: execution time versus thread count (1,2,4,8) for rbtree,
//     hashtable-2, TH, genome and kmeans.
//
// Absolute numbers differ from the paper's testbed (the runtime experiments
// execute on the deterministic machine simulator of internal/sim); the
// shapes — who wins, by roughly what factor, where the crossovers fall —
// are the reproduction target, and EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"strings"
	"time"

	"lockinfer/internal/pipeline"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/sim"
	"lockinfer/internal/workload"
)

// Table1Row is one line of Table 1.
type Table1Row struct {
	Program  string
	KLoC     float64
	Sections int
	TimeK0   time.Duration
	TimeK9   time.Duration
}

// Table1Options scales the experiment for tests.
type Table1Options struct {
	// SPECScale multiplies the SPEC-substitute sizes (1.0 = the paper's
	// KLoC; tests use a small fraction). Zero means 1.0.
	SPECScale float64
	// SkipSPEC drops the SPEC-substitute rows entirely.
	SkipSPEC bool
}

// Table1 measures analysis times over the full corpus.
func Table1(opt Table1Options) ([]Table1Row, error) {
	scale := opt.SPECScale
	if scale == 0 {
		scale = 1.0
	}
	var rows []Table1Row
	if !opt.SkipSPEC {
		for _, spec := range progen.SPECPrograms() {
			spec.KLoC *= scale
			src := progen.Generate(spec)
			row, err := table1Row(spec.Name, src, float64(progen.Lines(src))/1000)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	for _, p := range progs.All() {
		if p.Name == "move" || p.Name == "fig2" {
			continue
		}
		row, err := table1Row(p.Name, p.Source(), float64(p.Lines())/1000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table1Row(name, src string, kloc float64) (Table1Row, error) {
	c, t0, err := timeAnalysis(name, src, 0)
	if err != nil {
		return Table1Row{}, err
	}
	_, t9, err := timeAnalysis(name, src, 9)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{
		Program:  name,
		KLoC:     kloc,
		Sections: len(c.Program.Sections),
		TimeK0:   t0,
		TimeK9:   t9,
	}, nil
}

// timeAnalysis compiles src uncached and reports the points-to plus lock
// inference wall time — the two phases the paper's Table 1 column covers —
// as measured by the pipeline's own trace.
func timeAnalysis(name, src string, k int) (*pipeline.Compilation, time.Duration, error) {
	tr := pipeline.NewTrace()
	c, err := pipeline.Compile(src, pipeline.Options{Name: name, NoCache: true, Trace: tr}.WithK(k))
	if err != nil {
		return nil, 0, fmt.Errorf("bench: %w", err)
	}
	return c, tr.WallOf("pointsto") + tr.WallOf("infer"), nil
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %12s\n",
		"Program", "KLoC", "Atomic", "k=0", "k=9")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f %8d %12s %12s\n",
			r.Program, r.KLoC, r.Sections,
			r.TimeK0.Round(time.Microsecond), r.TimeK9.Round(time.Microsecond))
	}
	return b.String()
}

// Fig7Col is one bar of Figure 7: the combined lock counts over every
// atomic section of every program at one k.
type Fig7Col struct {
	K        int
	FineRO   int
	FineRW   int
	CoarseRO int
	CoarseRW int
}

// Total returns the combined number of locks.
func (c Fig7Col) Total() int { return c.FineRO + c.FineRW + c.CoarseRO + c.CoarseRW }

// Figure7 computes the lock distribution for each k over the mini-C corpus
// (the concurrent programs, as in the paper: SPEC programs contribute
// nothing to lock-count trends they were not designed for).
func Figure7(ks []int) ([]Fig7Col, error) {
	var out []Fig7Col
	for _, k := range ks {
		col := Fig7Col{K: k}
		for _, p := range progs.All() {
			if p.Name == "fig2" {
				continue
			}
			c, err := progs.Compile(p, k)
			if err != nil {
				return nil, err
			}
			for _, r := range c.Results {
				fro, frw, cro, crw := r.Count()
				col.FineRO += fro
				col.FineRW += frw
				col.CoarseRO += cro
				col.CoarseRW += crw
			}
		}
		out = append(out, col)
	}
	return out, nil
}

// FormatFigure7 renders the series as an ASCII table plus bars.
func FormatFigure7(cols []Fig7Col) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %8s %8s %9s %9s %7s\n",
		"k", "fine-ro", "fine-rw", "coarse-ro", "coarse-rw", "total")
	for _, c := range cols {
		fmt.Fprintf(&b, "%-4d %8d %8d %9d %9d %7d\n",
			c.K, c.FineRO, c.FineRW, c.CoarseRO, c.CoarseRW, c.Total())
	}
	b.WriteString("\n")
	for _, c := range cols {
		fmt.Fprintf(&b, "k=%d |%s%s%s%s\n", c.K,
			strings.Repeat("F", c.FineRO), strings.Repeat("f", c.FineRW),
			strings.Repeat("C", c.CoarseRO), strings.Repeat("c", c.CoarseRW))
	}
	b.WriteString("(F fine-ro, f fine-rw, C coarse-ro, c coarse-rw)\n")
	return b.String()
}

// Benchmark names one Table 2 row: builders for the coarse (k=0) and fine
// (k=9) lock-plan variants of the workload.
type Benchmark struct {
	Name   string
	Coarse func() workload.Workload
	Fine   func() workload.Workload
}

// Table2Benchmarks returns the fifteen rows of Table 2 in the paper's
// order.
func Table2Benchmarks() []Benchmark {
	mk := func(name string, f func(workload.Grain) workload.Workload) Benchmark {
		return Benchmark{
			Name:   name,
			Coarse: func() workload.Workload { return f(workload.GrainCoarse) },
			Fine:   func() workload.Workload { return f(workload.GrainFine) },
		}
	}
	return []Benchmark{
		mk("genome", func(g workload.Grain) workload.Workload { return workload.NewGenome("genome", g) }),
		mk("vacation", func(workload.Grain) workload.Workload { return workload.NewVacation("vacation") }),
		mk("kmeans", func(g workload.Grain) workload.Workload { return workload.NewKmeans("kmeans", g) }),
		mk("bayes", func(workload.Grain) workload.Workload { return workload.NewBayes("bayes") }),
		mk("labyrinth", func(workload.Grain) workload.Workload { return workload.NewLabyrinth("labyrinth") }),
		mk("hashtable-high", func(workload.Grain) workload.Workload {
			return workload.NewHashtable("hashtable-high", workload.HighMix)
		}),
		mk("hashtable-low", func(workload.Grain) workload.Workload {
			return workload.NewHashtable("hashtable-low", workload.LowMix)
		}),
		mk("rbtree-high", func(workload.Grain) workload.Workload {
			return workload.NewRBTree("rbtree-high", workload.HighMix)
		}),
		mk("rbtree-low", func(workload.Grain) workload.Workload {
			return workload.NewRBTree("rbtree-low", workload.LowMix)
		}),
		mk("list-high", func(workload.Grain) workload.Workload {
			return workload.NewList("list-high", workload.HighMix)
		}),
		mk("list-low", func(workload.Grain) workload.Workload {
			return workload.NewList("list-low", workload.LowMix)
		}),
		mk("hashtable-2-high", func(g workload.Grain) workload.Workload {
			return workload.NewHashtable2("hashtable-2-high", workload.HighMix, g)
		}),
		mk("hashtable-2-low", func(g workload.Grain) workload.Workload {
			return workload.NewHashtable2("hashtable-2-low", workload.LowMix, g)
		}),
		mk("TH-high", func(workload.Grain) workload.Workload {
			return workload.NewTH("TH-high", workload.HighMix)
		}),
		mk("TH-low", func(workload.Grain) workload.Workload {
			return workload.NewTH("TH-low", workload.LowMix)
		}),
	}
}

// Table2Row is one measured row.
type Table2Row struct {
	Program string
	Global  sim.Time
	Coarse  sim.Time
	Fine    sim.Time
	STM     sim.Time
	// STM diagnostics, the paper's abort commentary.
	Commits int64
	Aborts  int64
}

// RunOptions parameterizes the simulated runtime experiments.
type RunOptions struct {
	Cores        int
	Threads      int
	OpsPerThread int
	Seed         int64
}

// Defaults returns the paper's 8-thread configuration.
func Defaults() RunOptions {
	return RunOptions{Cores: 8, Threads: 8, OpsPerThread: 400, Seed: 11}
}

func (o RunOptions) config() sim.Config {
	return sim.Config{
		Cores: o.Cores, Threads: o.Threads,
		OpsPerThread: o.OpsPerThread, Seed: o.Seed,
	}
}

// Table2 measures every benchmark under the four runtimes.
func Table2(opt RunOptions) ([]Table2Row, error) {
	var rows []Table2Row
	for _, bm := range Table2Benchmarks() {
		row, err := measure(bm, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measure(bm Benchmark, opt RunOptions) (Table2Row, error) {
	cfg := opt.config()
	row := Table2Row{Program: bm.Name}
	g, err := sim.Run(bm.Coarse(), sim.ModeGlobal, cfg)
	if err != nil {
		return row, fmt.Errorf("bench: %s/global: %w", bm.Name, err)
	}
	c, err := sim.Run(bm.Coarse(), sim.ModeMGL, cfg)
	if err != nil {
		return row, fmt.Errorf("bench: %s/coarse: %w", bm.Name, err)
	}
	f, err := sim.Run(bm.Fine(), sim.ModeMGL, cfg)
	if err != nil {
		return row, fmt.Errorf("bench: %s/fine: %w", bm.Name, err)
	}
	s, err := sim.Run(bm.Coarse(), sim.ModeSTM, cfg)
	if err != nil {
		return row, fmt.Errorf("bench: %s/stm: %w", bm.Name, err)
	}
	row.Global, row.Coarse, row.Fine, row.STM = g.SimTime, c.SimTime, f.SimTime, s.SimTime
	row.Commits, row.Aborts = s.Commits, s.Aborts
	return row, nil
}

// FormatTable2 renders the rows like the paper's Table 2 (simulated time
// units).
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %10s %10s\n",
		"Program", "Global", "Coarse", "Fine+Crs", "STM", "aborts")
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %10s %10s\n",
		"", "", "(k=0)", "(k=9)", "", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10d %10d %10d %10d %10d\n",
			r.Program, r.Global, r.Coarse, r.Fine, r.STM, r.Aborts)
	}
	return b.String()
}

// Fig8Series is one program's scalability curves.
type Fig8Series struct {
	Program string
	Threads []int
	// Times[runtime][i] is the simulated time at Threads[i]; runtimes are
	// "global", "coarse", "fine", "stm".
	Times map[string][]sim.Time
}

// Figure8Programs lists the five programs the paper plots.
func Figure8Programs() []string {
	return []string{"rbtree-high", "hashtable-2-high", "TH-high", "genome", "kmeans"}
}

// Figure8 measures the scalability curves at 1, 2, 4 and 8 threads.
func Figure8(opt RunOptions) ([]Fig8Series, error) {
	byName := map[string]Benchmark{}
	for _, bm := range Table2Benchmarks() {
		byName[bm.Name] = bm
	}
	threads := []int{1, 2, 4, 8}
	var out []Fig8Series
	for _, name := range Figure8Programs() {
		bm, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown figure 8 program %q", name)
		}
		series := Fig8Series{
			Program: name,
			Threads: threads,
			Times:   map[string][]sim.Time{},
		}
		for _, th := range threads {
			// Fixed total work divided among threads, so the curves read as
			// the paper's time-versus-threads plots.
			o := opt
			o.Threads = th
			o.OpsPerThread = opt.OpsPerThread * 8 / th
			row, err := measure(bm, o)
			if err != nil {
				return nil, err
			}
			series.Times["global"] = append(series.Times["global"], row.Global)
			series.Times["coarse"] = append(series.Times["coarse"], row.Coarse)
			series.Times["fine"] = append(series.Times["fine"], row.Fine)
			series.Times["stm"] = append(series.Times["stm"], row.STM)
		}
		out = append(out, series)
	}
	return out, nil
}

// FormatFigure8 renders the curves as text.
func FormatFigure8(series []Fig8Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s\n", s.Program)
		fmt.Fprintf(&b, "  %-8s", "threads")
		for _, th := range s.Threads {
			fmt.Fprintf(&b, " %10d", th)
		}
		b.WriteString("\n")
		for _, rt := range []string{"global", "coarse", "fine", "stm"} {
			fmt.Fprintf(&b, "  %-8s", rt)
			for _, v := range s.Times[rt] {
				fmt.Fprintf(&b, " %10d", v)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
