package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestHybridSweepSmoke runs a miniature contention sweep and checks the
// report shape: one cell per workload × runtime × level, policy counters on
// the hybrid cells, both ratio maps populated, and a lossless JSON
// round-trip.
func TestHybridSweepSmoke(t *testing.T) {
	opt := HybridOptions{Goroutines: []int{1, 2}, OpsPerG: 300, Reps: 1, Seed: 5}
	rep, err := HybridSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * 3 * len(opt.Goroutines)
	if len(rep.Results) != wantCells {
		t.Fatalf("%d result cells, want %d", len(rep.Results), wantCells)
	}
	for _, tc := range hybridCases() {
		for _, g := range opt.Goroutines {
			hyb := rep.find(tc.name, RuntimeHybrid, g)
			if hyb == nil {
				t.Fatalf("no hybrid cell for %s g=%d", tc.name, g)
			}
			if hyb.OpsPerSec <= 0 {
				t.Errorf("%s g=%d: non-positive throughput", tc.name, g)
			}
			total := int64(g) * int64(opt.OpsPerG)
			if hyb.OptRuns+hyb.PessRuns != total {
				t.Errorf("%s g=%d: opt %d + pess %d != %d ops",
					tc.name, g, hyb.OptRuns, hyb.PessRuns, total)
			}
		}
		if rep.HybridVsBestPure[tc.name] <= 0 {
			t.Errorf("missing hybrid-vs-best-pure ratio for %s", tc.name)
		}
		if rep.HybridVsSTM[tc.name] <= 0 {
			t.Errorf("missing hybrid-vs-stm ratio for %s", tc.name)
		}
	}
	if !strings.Contains(FormatHybrid(rep), "hybrid vs best pure runtime") {
		t.Error("formatted table lacks the summary ratio lines")
	}

	path := filepath.Join(t.TempDir(), "hybrid.json")
	if err := WriteHybrid(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHybrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != HybridSchema || len(got.Results) != len(rep.Results) {
		t.Errorf("round trip mismatch: schema %q, %d cells", got.Schema, len(got.Results))
	}
	for wl, ratio := range rep.HybridVsBestPure {
		if got.HybridVsBestPure[wl] != ratio {
			t.Errorf("round trip ratio mismatch for %s", wl)
		}
	}
}

// TestLoadHybridRejectsWrongSchema mirrors the throughput gate's schema
// check.
func TestLoadHybridRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &HybridReport{Schema: "something/else"}
	if err := WriteHybrid(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHybrid(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
