// Interpreter-vs-native execution benchmark: the same mini-C workloads
// (the PR 2 throughput sweep's corpus programs) run once on the
// tree-walking interpreter and once as the codegen backend's compiled
// binary, both with the dynamic oracles off, and the report records the
// wall-clock ratio. This is ROADMAP item 1's measurement: how much speed
// the interpreter leaves on the table.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"lockinfer/internal/codegen"
	"lockinfer/internal/interp"
	"lockinfer/internal/oracle"
	"lockinfer/internal/progs"
)

// CodegenSchema versions the BENCH_PR6.json layout.
const CodegenSchema = "lockinfer/codegen-bench/v1"

// Engine identifiers in codegen-bench reports.
const (
	CodegenEngineInterp = "interp"
	CodegenEngineNative = "native"
)

// CodegenBenchOptions parameterizes the interpreter-vs-native sweep.
type CodegenBenchOptions struct {
	// Goroutines lists the concurrency levels to sweep (default 1,2,4,8).
	Goroutines []int
	// OpsPerG is the operation count per worker (default 2000 — the
	// interpreter rows dominate wall time, so the budget is far below the
	// in-process throughput sweep's).
	OpsPerG int
	// Reps measures each cell this many times and keeps the fastest
	// (default 3).
	Reps int
	// K is the inference bound (default 2, matching the conform sweep).
	K int
	// Short reduces the budget for CI smoke runs.
	Short bool
}

func (o CodegenBenchOptions) withDefaults() CodegenBenchOptions {
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{1, 2, 4, 8}
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 2000
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.K == 0 {
		o.K = 2
	}
	if o.Short {
		o.Goroutines = []int{1, 2}
		o.OpsPerG = 200
		o.Reps = 1
	}
	return o
}

// codegenWorkloads is the swept corpus subset — the same four shapes the
// PR 2 throughput sweep measures (mixed coarse+fine accounts, fine-grain
// hashtable, coarse list and rbtree).
func codegenWorkloads() []string {
	return []string{"accounts", "hashtable", "list", "rbtree"}
}

// CodegenResult is one measured cell.
type CodegenResult struct {
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"`
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// CodegenReport is the BENCH_PR6.json payload.
type CodegenReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Goroutines []int  `json:"goroutines"`
	OpsPerG    int    `json:"ops_per_goroutine"`
	Reps       int    `json:"reps"`
	// Speedup maps workload → native/interpreter ops-per-second ratio at
	// the highest swept concurrency level.
	Speedup map[string]float64 `json:"speedup"`
	// Notes explains cells or hosts where the numbers need context (e.g.
	// single-CPU machines where concurrency levels cannot scale).
	Notes   []string        `json:"notes,omitempty"`
	Results []CodegenResult `json:"results"`
}

// CodegenBench sweeps workloads × engines × goroutine counts. Both engines
// run unchecked (no §4.2 checker, no race detector, no watcher): the
// comparison is execution machinery only, with identical lock plans held
// by both sides. Native timing is the binary's self-reported concurrent
// phase, excluding process startup and the one-time go build (which the
// build cache amortizes away across runs anyway).
func CodegenBench(opt CodegenBenchOptions) (*CodegenReport, error) {
	opt = opt.withDefaults()
	rep := &CodegenReport{
		Schema:     CodegenSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: opt.Goroutines,
		OpsPerG:    opt.OpsPerG,
		Reps:       opt.Reps,
		Speedup:    map[string]float64{},
	}
	for _, name := range codegenWorkloads() {
		p, err := progs.Get(name)
		if err != nil {
			return nil, err
		}
		// One emitted binary per workload: thread count and ops are process
		// arguments, so every concurrency level reuses the same build.
		base, err := oracle.FromCorpus(p, opt.K, 1, opt.OpsPerG)
		if err != nil {
			return nil, err
		}
		bin, err := codegen.BuildProgram(codegen.Program{
			Name:     base.Name,
			Prog:     base.Prog,
			Pts:      base.Pts,
			Variants: codegen.DefaultVariants(base.Plan),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: build %s: %w", name, err)
		}
		for _, g := range opt.Goroutines {
			tg, err := oracle.FromCorpus(p, opt.K, g, opt.OpsPerG)
			if err != nil {
				return nil, err
			}
			interpNS, err := benchInterp(tg, opt.Reps)
			if err != nil {
				return nil, fmt.Errorf("bench: interp %s g=%d: %w", name, g, err)
			}
			rep.Results = append(rep.Results, codegenCell(name, CodegenEngineInterp, g, opt.OpsPerG, interpNS))
			nativeNS, err := benchNative(bin, tg, opt.Reps)
			if err != nil {
				return nil, fmt.Errorf("bench: native %s g=%d: %w", name, g, err)
			}
			rep.Results = append(rep.Results, codegenCell(name, CodegenEngineNative, g, opt.OpsPerG, nativeNS))
		}
	}
	maxG := opt.Goroutines[len(opt.Goroutines)-1]
	for _, name := range codegenWorkloads() {
		in := rep.find(name, CodegenEngineInterp, maxG)
		nat := rep.find(name, CodegenEngineNative, maxG)
		if in != nil && nat != nil && in.OpsPerSec > 0 {
			rep.Speedup[name] = nat.OpsPerSec / in.OpsPerSec
		}
	}
	if rep.GOMAXPROCS == 1 {
		rep.Notes = append(rep.Notes,
			"host has GOMAXPROCS=1: goroutine counts >1 cannot scale on either engine; the interp-vs-native ratio is still meaningful (same scheduler for both)")
	}
	rep.Notes = append(rep.Notes,
		"native elapsed is the binary's self-reported concurrent phase; process startup and the cached go build are excluded")
	return rep, nil
}

func codegenCell(workload, engine string, g, opsPerG int, elapsedNS int64) CodegenResult {
	ops := int64(g) * int64(opsPerG)
	return CodegenResult{
		Workload:   workload,
		Engine:     engine,
		Goroutines: g,
		Ops:        ops,
		ElapsedNS:  elapsedNS,
		OpsPerSec:  float64(ops) / (float64(elapsedNS) / 1e9),
	}
}

// benchInterp times the interpreter's concurrent phase (threads only;
// globals and setup run untimed, mirroring the native binary's protocol).
func benchInterp(tg *oracle.Target, reps int) (int64, error) {
	best := int64(0)
	for rep := 0; rep < reps; rep++ {
		m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
		m.Checked = false
		if err := m.Init(); err != nil {
			return 0, err
		}
		if tg.Setup != nil {
			if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
				return 0, err
			}
		}
		runtime.GC()
		start := time.Now()
		if err := m.Run(tg.Threads); err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Nanoseconds()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// benchNative times the compiled binary's concurrent phase via its
// elapsed_ns protocol line.
func benchNative(bin string, tg *oracle.Target, reps int) (int64, error) {
	opts := codegen.RunOptions{Unchecked: true, NoWatch: true}
	if tg.Setup != nil {
		s, err := benchSpec(*tg.Setup)
		if err != nil {
			return 0, err
		}
		opts.Setup = &s
	}
	for _, th := range tg.Threads {
		s, err := benchSpec(th)
		if err != nil {
			return 0, err
		}
		opts.Threads = append(opts.Threads, s)
	}
	best := int64(0)
	for rep := 0; rep < reps; rep++ {
		res, err := codegen.Run(bin, opts)
		if err != nil {
			return 0, err
		}
		if len(res.Flags) > 0 {
			return 0, fmt.Errorf("native run flagged: %s", res.Flags[0])
		}
		elapsed := res.Elapsed.Nanoseconds()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

func benchSpec(ts interp.ThreadSpec) (codegen.Spec, error) {
	s := codegen.Spec{Fn: ts.Fn}
	for _, a := range ts.Args {
		if a.Kind != interp.VInt {
			return s, fmt.Errorf("non-integer thread arg %s", a)
		}
		s.Args = append(s.Args, a.Int)
	}
	return s, nil
}

// find returns the matching result cell, or nil.
func (r *CodegenReport) find(workload, engine string, goroutines int) *CodegenResult {
	for i := range r.Results {
		c := &r.Results[i]
		if c.Workload == workload && c.Engine == engine && c.Goroutines == goroutines {
			return c
		}
	}
	return nil
}

// FormatCodegenBench renders the report as an aligned text table.
func FormatCodegenBench(rep *CodegenReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %5s %12s %12s\n", "workload", "engine", "gor", "ops/sec", "elapsed")
	for _, res := range rep.Results {
		fmt.Fprintf(&b, "%-10s %-8s %5d %12.0f %12s\n",
			res.Workload, res.Engine, res.Goroutines, res.OpsPerSec,
			time.Duration(res.ElapsedNS).Round(time.Microsecond))
	}
	names := make([]string, 0, len(rep.Speedup))
	for name := range rep.Speedup {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "native vs interpreter (%s, %d goroutines): %.1fx\n",
			name, rep.Goroutines[len(rep.Goroutines)-1], rep.Speedup[name])
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCodegenBench persists the report (the BENCH_PR6.json artifact).
func WriteCodegenBench(path string, rep *CodegenReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
