package bench

import (
	"testing"

	"lockinfer/internal/workload"
)

func BenchmarkShardedAccounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewAccounts("accounts", workload.HighMix)
		w.SetWork(tputWork)
		ex := workload.NewMGLExec("mgl")
		if _, err := workload.Run(w, ex, workload.RunConfig{Threads: 8, OpsPerThread: 20000, Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefAccounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewAccounts("accounts", workload.HighMix)
		w.SetWork(tputWork)
		ex := workload.NewRefMGLExec("mgl-ref")
		if _, err := workload.Run(w, ex, workload.RunConfig{Threads: 8, OpsPerThread: 20000, Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedHashtable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewHashtable2("hashtable", workload.HighMix, workload.GrainFine)
		w.SetWork(tputWork)
		ex := workload.NewMGLExec("mgl")
		if _, err := workload.Run(w, ex, workload.RunConfig{Threads: 8, OpsPerThread: 4000, Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefHashtable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewHashtable2("hashtable", workload.HighMix, workload.GrainFine)
		w.SetWork(tputWork)
		ex := workload.NewRefMGLExec("mgl-ref")
		if _, err := workload.Run(w, ex, workload.RunConfig{Threads: 8, OpsPerThread: 4000, Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}
