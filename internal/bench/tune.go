// Profile-guided tuning sweep: the runtime→inference feedback loop measured
// end to end (BENCH_PR10.json). Each program is profiled on an uncontended
// calibration run, its plan is rewritten by the refinement pass
// (internal/refine), the refined plan is re-audited for soundness, and both
// plans then execute the same concurrent workload — the report records the
// dynamic lock-acquire reduction (the deterministic, host-independent win:
// a demoted section acquires two tree nodes instead of three) and the
// wall-clock throughput on both sides (host-dependent; see Notes).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lockinfer/internal/audit"
	"lockinfer/internal/conform"
	"lockinfer/internal/oracle"
	"lockinfer/internal/refine"
)

// TuneSchema versions the BENCH_PR10.json layout.
const TuneSchema = "lockinfer/tune-sweep/v1"

// TuneOptions parameterizes the profile-guided tuning sweep.
type TuneOptions struct {
	// SeedStart is the first progen seed (default 1).
	SeedStart int64
	// Seeds is how many progen programs to sweep (default 20).
	Seeds int64
	// K is the inference bound (default 2, matching the conform sweep).
	K int
	// Threads is the concurrency of the timed runs (default 2).
	Threads int
	// Ops is the operation count per worker for the timed runs
	// (default 200).
	Ops int
	// Reps measures each timed cell this many times and keeps the fastest
	// (default 3).
	Reps int
	// Short reduces the budget for CI smoke runs (5 seeds, 1 rep).
	Short bool
}

func (o TuneOptions) withDefaults() TuneOptions {
	if o.SeedStart == 0 {
		o.SeedStart = 1
	}
	if o.Seeds == 0 {
		o.Seeds = 20
	}
	if o.K == 0 {
		o.K = 2
	}
	if o.Threads == 0 {
		o.Threads = 2
	}
	if o.Ops == 0 {
		o.Ops = 200
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Short {
		o.Seeds = 5
		o.Ops = 50
		o.Reps = 1
	}
	return o
}

// TuneProgram is one program's before/after measurement.
type TuneProgram struct {
	Name string `json:"name"`
	// Decisions is the refinement decision log (demotions and splits).
	Decisions []string `json:"decisions"`
	// AcquiresBefore/After count dynamic lock-tree grants over the timed
	// workload shape (schedule-independent: every section body acquires a
	// fixed node set per execution).
	AcquiresBefore int64 `json:"acquires_before"`
	AcquiresAfter  int64 `json:"acquires_after"`
	// OpsPerSec on the concurrent interpreter runs, both plans
	// (host-dependent).
	OpsPerSecBefore float64 `json:"ops_per_sec_before"`
	OpsPerSecAfter  float64 `json:"ops_per_sec_after"`
}

// TuneReport is the BENCH_PR10.json payload.
type TuneReport struct {
	Schema     string        `json:"schema"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	SeedStart  int64         `json:"seed_start"`
	Seeds      int64         `json:"seeds"`
	K          int           `json:"k"`
	Threads    int           `json:"threads"`
	Ops        int           `json:"ops_per_worker"`
	Reps       int           `json:"reps"`
	Programs   []TuneProgram `json:"programs"`
	// TotalAcquiresBefore/After aggregate the per-program acquire counts.
	TotalAcquiresBefore int64 `json:"total_acquires_before"`
	TotalAcquiresAfter  int64 `json:"total_acquires_after"`
	// AcquireReduction is 1 - after/before: the sweep's headline number.
	AcquireReduction float64 `json:"acquire_reduction"`
	// ThroughputRatio is aggregate refined/baseline ops-per-second
	// (host-dependent; >1 means the refined plans ran faster).
	ThroughputRatio float64 `json:"throughput_ratio"`
	// Rewritten counts programs whose plan the refiner changed.
	Rewritten int      `json:"rewritten"`
	Notes     []string `json:"notes,omitempty"`
}

// calibrationTarget returns the target restricted to one worker: the
// uncontended calibration run whose profile is deterministic (fixed acquire
// counts, zero waits), so the refinement decisions — and the tune goldens —
// are reproducible on any host.
func calibrationTarget(tg *oracle.Target) *oracle.Target {
	calib := *tg
	if len(calib.Threads) > 1 {
		calib.Threads = calib.Threads[:1]
	}
	return &calib
}

// tuneProgram closes the loop for one target: calibrate, refine, re-audit,
// and return the refined target plus the decision log.
func tuneProgram(tg *oracle.Target) (*oracle.Target, *refine.Result, error) {
	prof, err := conform.CollectProfile(calibrationTarget(tg))
	if err != nil {
		return nil, nil, err
	}
	rtg, res := conform.RefineTarget(tg, prof, refine.Options{})
	// A refined plan that fails the static auditor must never be measured,
	// let alone shipped: re-derive the soundness proof from scratch.
	rep := audit.Run(tg.Prog, tg.Pts, tg.C.Andersen(), rtg.Plan, audit.Options{})
	if err := rep.Err(); err != nil {
		return nil, nil, fmt.Errorf("bench: refined plan for %s fails audit: %w", tg.Name, err)
	}
	return rtg, res, nil
}

// acquireCount profiles one concurrent execution and returns the total
// lock-tree grant count, which is schedule-independent.
func acquireCount(tg *oracle.Target) (int64, error) {
	prof, err := conform.CollectProfile(tg)
	if err != nil {
		return 0, err
	}
	return prof.TotalAcquires(), nil
}

// TuneBench runs the profile→refine→re-run loop over a cold-heavy progen
// sweep (generated programs under an uncontended workload, where fine locks
// are pure overhead) and reports the acquire-count and wall-clock deltas.
func TuneBench(opt TuneOptions) (*TuneReport, error) {
	opt = opt.withDefaults()
	rep := &TuneReport{
		Schema:     TuneSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SeedStart:  opt.SeedStart,
		Seeds:      opt.Seeds,
		K:          opt.K,
		Threads:    opt.Threads,
		Ops:        opt.Ops,
		Reps:       opt.Reps,
	}
	var tputBefore, tputAfter float64
	for seed := opt.SeedStart; seed < opt.SeedStart+opt.Seeds; seed++ {
		tg, err := oracle.FromProgen(seed, opt.K, opt.Threads, opt.Ops)
		if err != nil {
			return nil, err
		}
		rtg, res, err := tuneProgram(tg)
		if err != nil {
			return nil, err
		}
		p := TuneProgram{Name: tg.Name, Decisions: res.Lines()}
		if p.AcquiresBefore, err = acquireCount(tg); err != nil {
			return nil, err
		}
		if p.AcquiresAfter, err = acquireCount(rtg); err != nil {
			return nil, err
		}
		beforeNS, err := benchInterp(tg, opt.Reps)
		if err != nil {
			return nil, fmt.Errorf("bench: tune baseline %s: %w", tg.Name, err)
		}
		afterNS, err := benchInterp(rtg, opt.Reps)
		if err != nil {
			return nil, fmt.Errorf("bench: tune refined %s: %w", tg.Name, err)
		}
		ops := float64(opt.Threads) * float64(opt.Ops)
		p.OpsPerSecBefore = ops / (float64(beforeNS) / 1e9)
		p.OpsPerSecAfter = ops / (float64(afterNS) / 1e9)
		tputBefore += p.OpsPerSecBefore
		tputAfter += p.OpsPerSecAfter
		rep.TotalAcquiresBefore += p.AcquiresBefore
		rep.TotalAcquiresAfter += p.AcquiresAfter
		if res.Changed() {
			rep.Rewritten++
		}
		rep.Programs = append(rep.Programs, p)
	}
	if rep.TotalAcquiresBefore > 0 {
		rep.AcquireReduction = 1 - float64(rep.TotalAcquiresAfter)/float64(rep.TotalAcquiresBefore)
	}
	if tputBefore > 0 {
		rep.ThroughputRatio = tputAfter / tputBefore
	}
	rep.Notes = append(rep.Notes,
		"acquire counts are dynamic lock-tree grants over the timed workload shape; they are schedule-independent and reproduce exactly on any host",
		"throughput_ratio is wall-clock and host-dependent: on lightly loaded multi-core hosts the demoted plans win by skipping one tree node per section entry, but the interpreter's dispatch cost dominates and the ratio is noisy",
		"profiles come from a single-worker calibration run, so the refinement decisions are deterministic; contended refinement paths (splits) are exercised by the refine and conform suites")
	return rep, nil
}

// TuneDecisions renders the refinement decision log of the sweep as a
// stable text artifact — the tune golden `make tune-short` checks. Only the
// deterministic calibration profile feeds the refiner, so the output is
// byte-reproducible on any host.
func TuneDecisions(opt TuneOptions) (string, error) {
	opt = opt.withDefaults()
	var b strings.Builder
	for seed := opt.SeedStart; seed < opt.SeedStart+opt.Seeds; seed++ {
		tg, err := oracle.FromProgen(seed, opt.K, opt.Threads, opt.Ops)
		if err != nil {
			return "", err
		}
		_, res, err := tuneProgram(tg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s:\n", tg.Name)
		for _, line := range res.Lines() {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String(), nil
}

// FormatTune renders the report as an aligned text table.
func FormatTune(rep *TuneReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %8s %12s %12s\n",
		"program", "acq-before", "acq-after", "delta", "ops/s-before", "ops/s-after")
	for _, p := range rep.Programs {
		delta := "-"
		if p.AcquiresBefore > 0 {
			delta = fmt.Sprintf("%.0f%%", 100*(1-float64(p.AcquiresAfter)/float64(p.AcquiresBefore)))
		}
		fmt.Fprintf(&b, "%-18s %10d %10d %8s %12.0f %12.0f\n",
			p.Name, p.AcquiresBefore, p.AcquiresAfter, delta,
			p.OpsPerSecBefore, p.OpsPerSecAfter)
	}
	fmt.Fprintf(&b, "plans rewritten: %d/%d\n", rep.Rewritten, len(rep.Programs))
	fmt.Fprintf(&b, "total acquires: %d -> %d (%.1f%% reduction)\n",
		rep.TotalAcquiresBefore, rep.TotalAcquiresAfter, 100*rep.AcquireReduction)
	fmt.Fprintf(&b, "aggregate throughput ratio (refined/baseline): %.2fx\n", rep.ThroughputRatio)
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteTune persists the report (the BENCH_PR10.json artifact).
func WriteTune(path string, rep *TuneReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTune reads a stored tune-sweep report.
func LoadTune(path string) (*TuneReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &TuneReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != TuneSchema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, TuneSchema)
	}
	return rep, nil
}
