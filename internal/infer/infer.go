// Package infer implements the lock inference analysis of Section 4 of
// "Inferring Locks for Atomic Sections" (PLDI 2008): a backward
// interprocedural dataflow analysis that computes, for every atomic section,
// a set of locks that protects every shared location the section may access.
//
// The implemented instance is the paper's Σk × Σ≡ × Σε scheme (§4.3):
// fine-grain locks are k-limited access paths paired with their Steensgaard
// points-to class and an effect; paths that exceed the k limit (or otherwise
// stop being expressible at the section entry) are coarsened to their
// points-to-class lock, which is flow-insensitive and flows directly into
// the section's solution. Transfer functions are implemented by recursive
// substitution on paths (the closure operator of Figure 4 is never
// materialized), stores consult the Steensgaard may-alias oracle, and calls
// use function summaries with map/unmap and src provenance tracking exactly
// as described in §4.3.
package infer

import (
	"fmt"

	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// AliasOracle answers the may-alias queries of the store transfer function
// (S_{*x=y} and index-stability checks): which dereference prefixes can read
// the cell a store writes. Both *steens.Analysis and *andersen.Analysis
// satisfy it — the NodeIDs are shared — so the inclusion-based analysis can
// be swapped in for strictly fewer spurious store alternatives while the
// lock partition itself stays Σ≡ (lock classes name runtime partitions, so
// they must keep coming from the same analysis the runtimes use).
type AliasOracle interface {
	VarCell(v *ir.Var) steens.NodeID
	Pointee(n steens.NodeID) steens.NodeID
	MayAlias(n1, n2 steens.NodeID) bool
}

// Options configures the engine.
type Options struct {
	// K bounds the length (operation count) of fine-grain lock expressions;
	// longer paths coarsen to their points-to-class lock. The paper sweeps
	// K from 0 to 9.
	K int
	// IndexMax bounds the node count of symbolic array-index expressions;
	// larger indices coarsen. Zero means the default of 8.
	IndexMax int
	// Specs supplies function specifications for external (pre-compiled)
	// functions, per §4.3. An external function without a spec is treated
	// fully conservatively (the global lock). The same specs should be
	// passed to steens.RunWithSpecs.
	Specs map[string]steens.ExternSpec
	// Aliases overrides the store-transfer alias oracle (default: the
	// Steensgaard analysis itself). Passing an andersen.Analysis built over
	// the same program tightens the S_{*x=y} rule without changing the lock
	// name space.
	Aliases AliasOracle
}

func (o Options) indexMax() int {
	if o.IndexMax <= 0 {
		return 8
	}
	return o.IndexMax
}

// Result is the analysis outcome for one atomic section.
type Result struct {
	Section *ir.Section
	// Locks is the minimized lock set to acquire at the section entry.
	Locks locks.Set
}

// Count returns the number of locks in the four categories of Figure 7:
// fine-grain read-only, fine-grain read-write, coarse-grain read-only and
// coarse-grain read-write. The global ⊤ lock counts as coarse read-write.
func (r *Result) Count() (fineRO, fineRW, coarseRO, coarseRW int) {
	for _, l := range r.Locks {
		switch {
		case l.Fine && l.Eff == locks.RO:
			fineRO++
		case l.Fine:
			fineRW++
		case l.Eff == locks.RO:
			coarseRO++
		default:
			coarseRW++
		}
	}
	return
}

// Engine runs the inference over one program.
type Engine struct {
	prog *ir.Program
	pts  *steens.Analysis
	als  AliasOracle // store-transfer alias oracle (defaults to pts)
	opts Options

	storeSum  map[*ir.Func]map[steens.NodeID]bool
	summaries map[*ir.Func]*summary
	instances map[*ir.Func]*instance // summary instances, created on demand
	externs   map[string]*externInfo
	queue     []task
	queued    map[task]bool
	stats     Stats
}

// Stats counts the work an engine (and, for the parallel driver, its
// per-section children) performed. The pipeline surfaces these as the
// infer pass's observability record.
type Stats struct {
	// Sections is the number of atomic sections analyzed.
	Sections int
	// Tasks is the number of worklist tasks processed (the backward
	// dataflow's iteration count).
	Tasks int64
	// Facts is the cumulative number of dataflow items written at
	// statement before-points (each fixpoint refinement rewrites a
	// statement's whole fact, so this counts item-writes, not the final
	// fact sizes).
	Facts int64
	// Summaries is the number of function summaries instantiated.
	Summaries int
	// Workers records the driver used for the last Analyze drive: 1 for
	// the serial engine, >1 for AnalyzeAllParallel.
	Workers int
}

// Stats returns the work counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// externInfo is an ExternSpec resolved against the points-to analysis.
type externInfo struct {
	// locks are the flow-insensitive coarse locks covering the function's
	// own accesses.
	locks []locks.Inferred
	// stores are the cell classes the function may write through.
	stores map[steens.NodeID]bool
	// retClosure holds the classes that can contain the returned pointer's
	// targets (nil when unknown).
	retClosure []steens.NodeID
}

type task struct {
	inst *instance
	stmt int
}

// New creates an engine for prog using a previously computed points-to
// analysis.
func New(prog *ir.Program, pts *steens.Analysis, opts Options) *Engine {
	e := &Engine{
		prog:      prog,
		pts:       pts,
		als:       opts.Aliases,
		opts:      opts,
		storeSum:  pts.StoreSummary(),
		summaries: map[*ir.Func]*summary{},
		instances: map[*ir.Func]*instance{},
		externs:   map[string]*externInfo{},
		queued:    map[task]bool{},
	}
	if e.als == nil {
		e.als = pts
	}
	for name, spec := range opts.Specs {
		e.externs[name] = e.resolveSpec(spec)
	}
	return e
}

// resolveSpec turns a global-rooted spec into classes and coarse locks.
func (e *Engine) resolveSpec(spec steens.ExternSpec) *externInfo {
	info := &externInfo{stores: map[steens.NodeID]bool{}}
	for _, root := range spec.Reads {
		for _, c := range e.pts.GlobalClosure(e.prog, root) {
			info.locks = append(info.locks, locks.CoarseLock(c, locks.RO))
		}
	}
	for _, root := range spec.Writes {
		for _, c := range e.pts.GlobalClosure(e.prog, root) {
			info.locks = append(info.locks, locks.CoarseLock(c, locks.RW))
			info.stores[e.pts.Rep(c)] = true
		}
	}
	if spec.ReturnsFrom != "" {
		info.retClosure = e.pts.GlobalClosure(e.prog, spec.ReturnsFrom)
	}
	return info
}

// AnalyzeAll analyzes every atomic section of the program, in order.
func (e *Engine) AnalyzeAll() []*Result {
	e.stats.Workers = 1
	out := make([]*Result, 0, len(e.prog.Sections))
	for _, sec := range e.prog.Sections {
		out = append(out, e.AnalyzeSection(sec))
	}
	return out
}

// AnalyzeSection analyzes one atomic section and returns the locks to be
// acquired at its entry.
func (e *Engine) AnalyzeSection(sec *ir.Section) *Result {
	e.stats.Sections++
	inst := newInstance(e, sec.Fn, sec.Begin, sec.End, nil)
	// Seed: every statement of the body contributes its G set; enqueue the
	// whole range in reverse for a good initial order.
	for i := sec.End; i >= sec.Begin; i-- {
		e.enqueue(task{inst, i})
	}
	e.run()
	set := locks.NewSet()
	for _, it := range inst.fact[sec.Begin] {
		set.Add(it.lock)
	}
	set.AddAll(inst.coarse)
	return &Result{Section: sec, Locks: set.Minimize()}
}

func (e *Engine) enqueue(t task) {
	if t.stmt < t.inst.lo || t.stmt > t.inst.hi {
		return
	}
	if e.queued[t] {
		return
	}
	e.queued[t] = true
	e.queue = append(e.queue, t)
}

func (e *Engine) run() {
	for len(e.queue) > 0 {
		t := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		delete(e.queued, t)
		e.stats.Tasks++
		t.inst.process(t.stmt)
	}
}

// item is one dataflow fact: a fine-grain lock tagged with its provenance.
// src is the canonical key of the exit lock it derives from, or genSrc for
// locks generated by the analyzed code's own accesses.
type item struct {
	lock locks.Inferred
	src  string
}

const genSrc = "$gen"

func itemKey(it item) string { return it.lock.Key() + "|" + it.src }

// instance is one dataflow computation over a statement range of a
// function: either an atomic section body (sum == nil) or a whole function
// body computing a summary (sum != nil).
type instance struct {
	eng    *Engine
	fn     *ir.Func
	lo, hi int
	fact   []map[string]item
	// coarse accumulates flow-insensitive coarse locks for section
	// instances. Summary instances attribute coarse locks to their src
	// bucket instead.
	coarse locks.Set
	sum    *summary
}

func newInstance(e *Engine, fn *ir.Func, lo, hi int, sum *summary) *instance {
	return &instance{
		eng:    e,
		fn:     fn,
		lo:     lo,
		hi:     hi,
		fact:   make([]map[string]item, len(fn.Stmts)),
		coarse: locks.NewSet(),
		sum:    sum,
	}
}

// out computes the union of the facts at the before-points of i's
// successors, restricted to the instance range.
func (in *instance) out(i int) map[string]item {
	s := in.fn.Stmts[i]
	res := map[string]item{}
	for _, j := range s.Succs {
		if j < in.lo || j > in.hi {
			continue
		}
		for k, it := range in.fact[j] {
			res[k] = it
		}
	}
	return res
}

// process recomputes the fact before statement i and propagates changes.
func (in *instance) process(i int) {
	s := in.fn.Stmts[i]
	var nf map[string]item
	switch {
	case in.sum != nil && s.Op == ir.OpExit:
		// The fact at the exit is exactly the seeded exit locks.
		nf = map[string]item{}
		for key, l := range in.sum.seeds {
			it := item{lock: l, src: key}
			nf[itemKey(it)] = it
		}
	case in.sum == nil && s.Op == ir.OpAtomicEnd && i == in.hi:
		nf = map[string]item{} // no locks needed past the section end
	default:
		nf = in.transfer(i, in.out(i))
	}
	if !factChanged(in.fact[i], nf) {
		return
	}
	in.eng.stats.Facts += int64(len(nf))
	in.fact[i] = nf
	for _, p := range s.Preds {
		in.eng.enqueue(task{in, p})
	}
	if in.sum != nil && i == 0 {
		in.sum.publishEntry(nf)
	}
}

// factChanged reports whether new contains any item absent from old.
// Facts grow monotonically, so a subset check suffices.
func factChanged(old, new map[string]item) bool {
	if len(new) > len(old) {
		return true
	}
	for k := range new {
		if _, ok := old[k]; !ok {
			return true
		}
	}
	return false
}

// emitCoarse records a coarse lock: flow-insensitively for a section
// instance, or into the src bucket of a summary.
func (in *instance) emitCoarse(l locks.Inferred, src string) {
	if in.sum != nil {
		in.sum.addEntry(src, l)
		return
	}
	in.coarse.Add(l)
}

// classOf computes the Steensgaard class of the cell a path protects.
func (e *Engine) classOf(p locks.Path) steens.NodeID {
	n := e.pts.VarCell(p.Base)
	for _, op := range p.Ops {
		if op.Kind == locks.OpDeref {
			n = e.pts.Pointee(n)
		}
	}
	return n
}

// aliasClassOf computes the alias-oracle node of the cell a path reads —
// classOf evaluated in the (possibly finer) oracle domain.
func (e *Engine) aliasClassOf(p locks.Path) steens.NodeID {
	n := e.als.VarCell(p.Base)
	for _, op := range p.Ops {
		if op.Kind == locks.OpDeref {
			n = e.als.Pointee(n)
		}
	}
	return n
}

// coarseOf returns the coarse lock covering everything a path could
// protect.
func (e *Engine) coarseOf(p locks.Path, eff locks.Eff) locks.Inferred {
	return locks.CoarseLock(e.classOf(p), eff)
}

// addPath inserts a fine lock for path p (coarsening if p exceeds the k
// limit or carries an oversized index) into dst.
func (in *instance) addPath(dst map[string]item, p locks.Path, eff locks.Eff, src string) {
	if p.ExprLen() > in.eng.opts.K || in.indexTooBig(p) {
		in.emitCoarse(in.eng.coarseOf(p, eff), src)
		return
	}
	it := item{lock: locks.FineLock(p, in.eng.classOf(p), eff), src: src}
	dst[itemKey(it)] = it
}

func (in *instance) indexTooBig(p locks.Path) bool {
	for _, op := range p.Ops {
		if op.Kind == locks.OpIndex && op.Index.Size() > in.eng.opts.indexMax() {
			return true
		}
	}
	return false
}

func (e *Engine) String() string {
	return fmt.Sprintf("infer.Engine(k=%d)", e.opts.K)
}
