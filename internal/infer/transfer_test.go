package infer

import (
	"strings"
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/steens"
)

// analyzeOpts mirrors analyze with explicit engine options.
func analyzeOpts(t *testing.T, src string, opts Options) (*ir.Program, []*Result) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	pts := steens.Run(prog)
	return prog, New(prog, pts, opts).AnalyzeAll()
}

// joinNames is a helper over the test harness in infer_test.go.
func joinNames(t *testing.T, src string, k int) string {
	t.Helper()
	prog, res := analyze(t, src, k)
	var all []string
	for _, r := range res {
		all = append(all, lockNames(prog, r)...)
	}
	return strings.Join(all, " ")
}

// TestStoreStrongUpdate: a store through the exact syntactic prefix
// replaces the lock (the Q rule); the old path must not survive.
func TestStoreStrongUpdate(t *testing.T) {
	src := `
struct obj { int* data; }
void f(obj* x, int* w) {
  atomic {
    int* z = x->data;
    x->data = w;
    int* y = x->data;
    *y = 1;
  }
}
`
	// The *y access at the end goes through the freshly stored value: the
	// backward trace of *ȳ crosses the store x->data = w and must become
	// *w̄ (the strong update), while also needing the earlier read locks.
	got := joinNames(t, src, 4)
	if !strings.Contains(got, "&(*w)/rw") {
		t.Errorf("strong update lost the stored value: %v", got)
	}
}

// TestStoreWeakUpdate: a store through a *may*-aliased pointer keeps both
// alternatives.
func TestStoreWeakUpdate(t *testing.T) {
	src := `
struct obj { int* data; }
void f(obj* a, obj* b, int* w, int flip) {
  if (flip > 0) {
    a = b;
  }
  atomic {
    a->data = w;
    int* z = b->data;
    *z = 1;
  }
}
`
	got := joinNames(t, src, 4)
	if !strings.Contains(got, "&(*w)/rw") {
		t.Errorf("aliased store alternative missing: %v", got)
	}
	if !strings.Contains(got, "&(*(b->data))/rw") {
		t.Errorf("weak update dropped the original path: %v", got)
	}
}

// TestSummaryReusedAcrossCallSites: the same callee summary unmaps through
// different actuals at each call site.
func TestSummaryReusedAcrossCallSites(t *testing.T) {
	src := `
struct list { list* next; int v; }
void poke(list* l) {
  l->v = 1;
}
void f(list* p, list* q) {
  atomic {
    poke(p);
    poke(q);
  }
}
`
	got := joinNames(t, src, 3)
	if !strings.Contains(got, "&(p->v)/rw") || !strings.Contains(got, "&(q->v)/rw") {
		t.Errorf("summary not re-rooted per call site: %v", got)
	}
}

// TestTwoSectionsIndependent: each atomic section gets its own lock set.
func TestTwoSectionsIndependent(t *testing.T) {
	src := `
struct obj { int v; }
obj* a;
obj* b;
void f() {
  atomic {
    a->v = 1;
  }
  atomic {
    int x = b->v;
  }
}
`
	prog, res := analyze(t, src, 3)
	if len(res) != 2 {
		t.Fatalf("%d sections", len(res))
	}
	first := strings.Join(lockNames(prog, res[0]), " ")
	second := strings.Join(lockNames(prog, res[1]), " ")
	if strings.Contains(first, "b->v") || strings.Contains(second, "a->v") {
		t.Errorf("sections leaked into each other:\n%s\n%s", first, second)
	}
	if !strings.Contains(first, "&(a->v)/rw") {
		t.Errorf("first section: %v", first)
	}
	if !strings.Contains(second, "&(b->v)/ro") {
		t.Errorf("second section: %v", second)
	}
}

// TestBranchMerge: locks from both branches survive the merge.
func TestBranchMerge(t *testing.T) {
	src := `
struct obj { int v; }
void f(obj* a, obj* b, int c) {
  atomic {
    if (c > 0) {
      a->v = 1;
    } else {
      b->v = 2;
    }
  }
}
`
	got := joinNames(t, src, 3)
	if !strings.Contains(got, "&(a->v)/rw") || !strings.Contains(got, "&(b->v)/rw") {
		t.Errorf("merge lost a branch: %v", got)
	}
}

// TestIndexMaxCoarsens: an index expression beyond the bound coarsens.
func TestIndexMaxCoarsens(t *testing.T) {
	src := `
void f(int* a, int k) {
  atomic {
    int i = k + k;
    i = i * 3 + k;
    i = i * 5 + k;
    i = i * 7 + k;
    a[i] = 1;
  }
}
`
	// With a tiny index bound the lock must coarsen; with a large one it
	// stays fine.
	prog, resSmall := analyzeOpts(t, src, Options{K: 9, IndexMax: 3})
	fro, frw, _, crw := resSmall[0].Count()
	if frw != 0 {
		t.Errorf("IndexMax=3: expected no fine rw lock, got fine(ro=%d,rw=%d)", fro, frw)
	}
	if crw == 0 {
		t.Error("IndexMax=3: expected a coarse rw lock")
	}
	prog2, resBig := analyzeOpts(t, src, Options{K: 9, IndexMax: 64})
	_, frwBig, _, _ := resBig[0].Count()
	if frwBig == 0 {
		t.Errorf("IndexMax=64: expected the fine indexed lock to survive: %v",
			resBig[0].Locks.Strings(prog2))
	}
	_ = prog
}

// TestIndexThroughLoadCoarsens: an index loaded from the heap is not
// stable at the section entry and must coarsen.
func TestIndexThroughLoadCoarsens(t *testing.T) {
	src := `
struct hdr { int size; }
void f(int* a, hdr* h, int k) {
  atomic {
    int n = h->size;
    int i = k % n;
    a[i] = 1;
  }
}
`
	prog, res := analyze(t, src, 9)
	_, frw, _, crw := res[0].Count()
	if frw != 0 {
		t.Errorf("heap-dependent index survived as fine: %v", res[0].Locks.Strings(prog))
	}
	if crw == 0 {
		t.Error("expected coarse rw coverage for the indexed store")
	}
}

// TestEffectUpgradeThroughMerge: a location read on one path and written
// on another ends up rw after minimization.
func TestEffectUpgradeThroughMerge(t *testing.T) {
	src := `
struct obj { int v; }
void f(obj* a, int c) {
  atomic {
    if (c > 0) {
      a->v = 1;
    } else {
      int x = a->v;
    }
  }
}
`
	prog, res := analyze(t, src, 3)
	got := strings.Join(lockNames(prog, res[0]), " ")
	if !strings.Contains(got, "&(a->v)/rw") {
		t.Errorf("missing rw lock: %v", got)
	}
	if strings.Contains(got, "&(a->v)/ro") {
		t.Errorf("redundant ro lock survived minimization: %v", got)
	}
}

// TestChainedFieldPaths: multi-step fixed paths stay fine at sufficient k
// and coarsen below it.
func TestChainedFieldPaths(t *testing.T) {
	src := `
struct inner { int v; }
struct outer { inner* in; }
void f(outer* o) {
  atomic {
    o->in->v = 1;
  }
}
`
	// Path &(o->in->v) = *ō +in deref +v: expression length 5.
	gotBig := joinNames(t, src, 5)
	if !strings.Contains(gotBig, "&(o->in->v)/rw") {
		t.Errorf("k=5 should keep the chained path: %v", gotBig)
	}
	prog, resSmall := analyze(t, src, 4)
	gotSmall := strings.Join(lockNames(prog, resSmall[0]), " ")
	if strings.Contains(gotSmall, "o->in->v") {
		t.Errorf("k=4 kept an over-long path: %v", gotSmall)
	}
}

// TestNopAndBranchNoLocks: nop and control flow over locals need no locks.
func TestNopAndBranchNoLocks(t *testing.T) {
	src := `
void f(int n) {
  atomic {
    int i = 0;
    while (i < n) {
      nop;
      i = i + 1;
    }
  }
}
`
	_, res := analyze(t, src, 3)
	if len(res[0].Locks) != 0 {
		t.Errorf("local-only section inferred locks: %v", res[0].Locks.Sorted())
	}
}
