package infer

import (
	"strings"
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

const externSrc = `
struct node { node* next; int v; }
node* registry;

int hash(int x);
void publish(node* n);
node* lookup(int k);

void work(int k) {
  atomic {
    int h = hash(k);
    node* n = new node;
    n->v = h;
    publish(n);
    node* m = lookup(k);
    if (m != null) {
      m->v = m->v + 1;
    }
  }
}
`

func analyzeExtern(t *testing.T, specs map[string]steens.ExternSpec) (*ir.Program, []*Result) {
	t.Helper()
	ast, err := lang.Parse(externSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	pts := steens.RunWithSpecs(prog, specs)
	eng := New(prog, pts, Options{K: 3, Specs: specs})
	return prog, eng.AnalyzeAll()
}

// TestExternWithSpecs: specified library functions contribute their coarse
// locks, returned pointers coarsen into the return closure, and no global
// lock is needed.
func TestExternWithSpecs(t *testing.T) {
	specs := map[string]steens.ExternSpec{
		"hash":    {}, // pure
		"publish": {Writes: []string{"registry"}},
		"lookup":  {Reads: []string{"registry"}, ReturnsFrom: "registry"},
	}
	prog, res := analyzeExtern(t, specs)
	set := res[0].Locks
	hasGlobal := false
	hasCoarseRW := false
	for _, l := range set.Sorted() {
		if l.IsGlobal() {
			hasGlobal = true
		}
		if !l.Fine && !l.IsGlobal() && l.Eff == locks.RW {
			hasCoarseRW = true
		}
	}
	if hasGlobal {
		t.Errorf("specs provided, but the global lock was inferred: %v", set.Strings(prog))
	}
	if !hasCoarseRW {
		t.Errorf("expected coarse rw locks over the registry closure: %v", set.Strings(prog))
	}
	// The m->v access (through lookup's return) must be covered: some rw
	// lock must cover the node class (the registry closure includes it).
	nodeCls := coveringClassForReturnedNodes(t, prog, specs)
	covered := false
	for _, l := range set.Sorted() {
		if !l.Fine && !l.IsGlobal() && l.Eff == locks.RW && l.Class == nodeCls {
			covered = true
		}
	}
	if !covered {
		t.Errorf("node class %d not covered rw: %v", nodeCls, set.Strings(prog))
	}
}

func coveringClassForReturnedNodes(t *testing.T, prog *ir.Program, specs map[string]steens.ExternSpec) steens.NodeID {
	t.Helper()
	pts := steens.RunWithSpecs(prog, specs)
	work := prog.Func("work")
	for _, v := range work.Vars {
		if v.Name == "m" {
			return pts.Pointee(pts.VarCell(v))
		}
	}
	t.Fatal("no var m")
	return 0
}

// TestExternWithoutSpecFallsBackToGlobal: an unspecified external function
// forces the fully conservative global lock.
func TestExternWithoutSpecFallsBackToGlobal(t *testing.T) {
	prog, res := analyzeExtern(t, nil)
	if !res[0].Locks.Has(locks.GlobalLock()) {
		t.Errorf("expected the global lock for unspecified externs: %v",
			res[0].Locks.Strings(prog))
	}
}

// TestExternSpecStoreConflict: a caller fine lock whose dereference chain
// passes through a class the spec says the callee writes gains a coarse
// alternative.
func TestExternSpecStoreConflict(t *testing.T) {
	src := `
struct box { int* slot; }
box* shared;
void mutate(box* b);

void work(box* mine) {
  atomic {
    int* p = mine->slot;
    mutate(mine);
    *p = 1;
  }
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	// mutate may rewrite mine->slot: the spec's Writes closure covers the
	// box class (shared and mine unify through the formal b).
	specs := map[string]steens.ExternSpec{"mutate": {Writes: []string{"shared"}}}
	pts := steens.RunWithSpecs(prog, specs)
	// Force the unification the spec relies on: shared and mine flow into
	// mutate's formal in real library usage; here we link them in source
	// via the global. Without flow, classes differ and the conflict check
	// has nothing to find, so verify both outcomes consistently.
	res := New(prog, pts, Options{K: 4, Specs: specs}).AnalyzeAll()
	out := strings.Join(res[0].Locks.Strings(prog), " ")
	if !strings.Contains(out, "rw") {
		t.Errorf("expected rw coverage after extern store: %v", out)
	}
}
