package infer

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// AnalyzeAllParallel analyzes every atomic section of the program on up to
// workers goroutines and returns the results in section order, byte-for-byte
// identical to AnalyzeAll.
//
// The driver is deterministic by construction: each section is analyzed by a
// fresh child engine whose mutable state (summaries, worklist, and a private
// clone of the points-to union-find, the one structure Pointee can extend)
// is its own, while the read-only inputs — the program, the store summaries,
// the resolved extern specs, the options — are shared. A section's result is
// therefore a pure function of (program, points-to, options, section),
// independent of worker count and goroutine schedule; the merge simply
// places results at their section index. Equality with the serial engine
// additionally relies on the serial engine's cross-section summary reuse
// being observationally pure (summary entries are partitioned by src bucket
// and grow monotonically to the same per-seed fixpoints a fresh engine
// reaches); TestParallelMatchesSerial asserts this over the generated corpus
// and the property suite runs it under the race detector.
//
// workers <= 0 selects GOMAXPROCS. A single worker, a single section, or a
// custom alias oracle (whose internals the driver cannot clone) all fall
// back to the serial engine.
func (e *Engine) AnalyzeAllParallel(workers int) []*Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	secs := e.prog.Sections
	st, defaultOracle := e.als.(*steens.Analysis)
	defaultOracle = defaultOracle && st == e.pts
	if workers == 1 || len(secs) < 2 || !defaultOracle {
		return e.AnalyzeAll()
	}
	if workers > len(secs) {
		workers = len(secs)
	}
	out := make([]*Result, len(secs))
	var next atomic.Int64
	var mu sync.Mutex // guards the stats merge
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(secs) {
					return
				}
				child := e.fork()
				res := child.AnalyzeSection(secs[i])
				out[i] = res
				mu.Lock()
				e.stats.Sections += child.stats.Sections
				e.stats.Tasks += child.stats.Tasks
				e.stats.Facts += child.stats.Facts
				e.stats.Summaries += child.stats.Summaries
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	e.stats.Workers = workers
	return out
}

// fork builds a child engine for one section: fresh dataflow state over a
// private points-to clone, sharing every immutable input with the parent.
func (e *Engine) fork() *Engine {
	pts := e.pts.Clone()
	return &Engine{
		prog:      e.prog,
		pts:       pts,
		als:       pts,
		opts:      e.opts,
		storeSum:  e.storeSum,
		externs:   e.externs,
		summaries: map[*ir.Func]*summary{},
		instances: map[*ir.Func]*instance{},
		queued:    map[task]bool{},
	}
}
