package infer

import (
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
)

// transfer computes the fact before statement i from the fact after it,
// implementing Figure 4 of the paper by substitution on access paths: the T
// relation rewrites locks whose prefix the statement redefines, and the G
// sets contribute locks for the statement's own accesses.
func (in *instance) transfer(i int, out map[string]item) map[string]item {
	s := in.fn.Stmts[i]
	nf := make(map[string]item, len(out)+2)
	switch s.Op {
	case ir.OpCall:
		in.transferCall(i, s, out, nf)
	case ir.OpStore:
		for _, it := range out {
			in.transferStore(s, it, nf)
		}
	default:
		for _, it := range out {
			in.transferAssign(s, it, nf)
		}
	}
	in.gen(s, nf)
	return nf
}

// keep copies an item into nf unchanged.
func (in *instance) keep(nf map[string]item, it item) { nf[itemKey(it)] = it }

// transferAssign handles every non-call, non-store statement form.
func (in *instance) transferAssign(s *ir.Stmt, it item, nf map[string]item) {
	dst := s.Dst
	if dst == nil || s.Op == ir.OpBranch || s.Op == ir.OpGoto || s.Op == ir.OpNop ||
		s.Op == ir.OpAtomicBegin || s.Op == ir.OpAtomicEnd || s.Op == ir.OpExit {
		in.keep(nf, it)
		return
	}
	p := it.lock.Path
	if p.Base == dst && p.Len() > 0 {
		// The lock's *dst̄ prefix is redefined: apply the S relation.
		in.rewriteDeref(s, it, nf)
		return
	}
	// closure(Id): the lock is unaffected unless an index expression
	// mentions the defined variable, in which case the index is rewritten
	// backward through the definition.
	if !pathMentionsIndexVar(p, dst) {
		in.keep(nf, it)
		return
	}
	repl, ok := indexReplacement(s)
	if !ok {
		// The index value is not expressible before this statement
		// (e.g. it was loaded from the heap): coarsen.
		in.emitCoarse(in.eng.coarseOf(p, it.lock.Eff), it.src)
		return
	}
	np := substIndexVar(p, dst, repl)
	in.addPath(nf, np, it.lock.Eff, it.src)
}

// rewriteDeref applies the S relation of Figure 4 to a lock rooted at
// *dst̄, for the statement defining dst.
func (in *instance) rewriteDeref(s *ir.Stmt, it item, nf map[string]item) {
	p := it.lock.Path
	rest := p.Ops[1:]
	switch s.Op {
	case ir.OpCopy: // S_{x=y}: *x̄ -> *ȳ
		in.addPath(nf, prepend(s.Src, []locks.PathOp{deref()}, rest), it.lock.Eff, it.src)
	case ir.OpAddrOf: // S_{x=&y}: *x̄ -> ȳ
		in.addPath(nf, prepend(s.Src, nil, rest), it.lock.Eff, it.src)
	case ir.OpLoad: // S_{x=*y}: *x̄ -> *(*ȳ)
		in.addPath(nf, prepend(s.Src, []locks.PathOp{deref(), deref()}, rest), it.lock.Eff, it.src)
	case ir.OpField: // S_{x=y+f}: *x̄ -> *ȳ+f
		in.addPath(nf, prepend(s.Src, []locks.PathOp{deref(), field(s.Field)}, rest), it.lock.Eff, it.src)
	case ir.OpIndex: // x = y @ z: *x̄ -> *ȳ@z
		in.addPath(nf, prepend(s.Src, []locks.PathOp{deref(), index(locks.IVarExpr(s.Src2))}, rest), it.lock.Eff, it.src)
	case ir.OpNew:
		// S_{x=new} = {}: the object is fresh, so nothing needs protection
		// before the allocation. The lock is dropped (this produces the
		// Figure 7 dip: section-allocated objects need no entry locks).
	case ir.OpNull, ir.OpConst, ir.OpArith, ir.OpUnary:
		// S_{x=null} = {}: a dereference of dst below this point cannot
		// observe a pre-statement location through dst.
	default:
		// Defensive: keep soundness by coarsening.
		in.emitCoarse(in.eng.coarseOf(p, it.lock.Eff), it.src)
	}
}

// transferStore handles *x = y. Any lock dereferencing a cell that may
// alias the written cell gains a *ȳ-rooted alternative (the S_{*x=y} rule);
// the syntactic *(*x̄) prefix is strongly updated (the Q_{*x} rule); all
// other locks persist (weak update).
func (in *instance) transferStore(s *ir.Stmt, it item, nf map[string]item) {
	p := it.lock.Path
	writtenClass := in.eng.als.Pointee(in.eng.als.VarCell(s.Dst))
	// Walk the dereferences of p: position j reads the cell addressed by
	// the prefix p.Ops[:j].
	for j, op := range p.Ops {
		if op.Kind != locks.OpDeref {
			continue
		}
		prefix := locks.Path{Base: p.Base, Ops: p.Ops[:j]}
		if in.eng.als.MayAlias(in.eng.aliasClassOf(prefix), writtenClass) {
			// The value read at this dereference may be y's value.
			in.addPath(nf, prepend(s.Src, []locks.PathOp{deref()}, p.Ops[j+1:]), it.lock.Eff, it.src)
		}
	}
	// Q_{*x}: the exact *(*x̄) prefix is strongly updated and drops out of
	// the identity closure.
	if p.Base == s.Dst && p.Len() >= 2 &&
		p.Ops[0].Kind == locks.OpDeref && p.Ops[1].Kind == locks.OpDeref {
		return
	}
	// An index expression whose variable cell may alias the written cell is
	// no longer stable across the store.
	for _, v := range pathIndexVars(p) {
		if in.eng.als.MayAlias(in.eng.als.VarCell(v), writtenClass) {
			in.emitCoarse(in.eng.coarseOf(p, it.lock.Eff), it.src)
			return
		}
	}
	in.keep(nf, it)
}

// gen adds the G locks for the statement's own accesses (Figure 4, bottom):
// the store target with effect rw, every other dereferenced cell with ro,
// and the cells of accessed variables that are shared (globals or
// address-taken locals).
func (in *instance) gen(s *ir.Stmt, nf map[string]item) {
	read := func(v *ir.Var) { in.genVar(nf, v, locks.RO) }
	write := func(v *ir.Var) { in.genVar(nf, v, locks.RW) }
	switch s.Op {
	case ir.OpCopy:
		read(s.Src)
		write(s.Dst)
	case ir.OpAddrOf:
		write(s.Dst) // &y reads no cell
	case ir.OpLoad:
		in.addPath(nf, locks.Path{Base: s.Src, Ops: []locks.PathOp{deref()}}, locks.RO, genSrc)
		read(s.Src)
		write(s.Dst)
	case ir.OpStore:
		in.addPath(nf, locks.Path{Base: s.Dst, Ops: []locks.PathOp{deref()}}, locks.RW, genSrc)
		read(s.Dst)
		read(s.Src)
	case ir.OpField:
		read(s.Src)
		write(s.Dst)
	case ir.OpIndex:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpNew:
		if s.Src2 != nil {
			read(s.Src2)
		}
		write(s.Dst)
	case ir.OpNull, ir.OpConst:
		write(s.Dst)
	case ir.OpArith:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpUnary:
		read(s.Src)
		write(s.Dst)
	case ir.OpBranch:
		read(s.Src)
	case ir.OpCall:
		for _, a := range s.Args {
			read(a)
		}
		if s.Dst != nil {
			write(s.Dst)
		}
	}
}

// genVar adds the variable-cell lock x̄ when the variable is shared. The
// paper omits x̄ for thread-local variables whose address is never stored;
// we use the conservative address-never-taken criterion.
func (in *instance) genVar(nf map[string]item, v *ir.Var, eff locks.Eff) {
	if v == nil || !(v.Global || v.AddrTaken) {
		return
	}
	in.addPath(nf, locks.VarPath(v), eff, genSrc)
}

func deref() locks.PathOp { return locks.PathOp{Kind: locks.OpDeref} }

func field(f ir.FieldID) locks.PathOp { return locks.PathOp{Kind: locks.OpField, Field: f} }

func index(e *locks.IExpr) locks.PathOp { return locks.PathOp{Kind: locks.OpIndex, Index: e} }

// prepend builds the path base·ops·rest.
func prepend(base *ir.Var, ops []locks.PathOp, rest []locks.PathOp) locks.Path {
	all := make([]locks.PathOp, 0, len(ops)+len(rest))
	all = append(all, ops...)
	all = append(all, rest...)
	return locks.Path{Base: base, Ops: all}
}

// pathMentionsIndexVar reports whether any index expression of p references v.
func pathMentionsIndexVar(p locks.Path, v *ir.Var) bool {
	for _, op := range p.Ops {
		if op.Kind == locks.OpIndex && op.Index.Mentions(v) {
			return true
		}
	}
	return false
}

// pathIndexVars returns all variables referenced by p's index expressions.
func pathIndexVars(p locks.Path) []*ir.Var {
	var out []*ir.Var
	for _, op := range p.Ops {
		if op.Kind == locks.OpIndex {
			out = op.Index.Vars(out)
		}
	}
	return out
}

// indexReplacement returns the backward substitution for an integer
// variable defined by s, when the definition is expressible as a symbolic
// index expression.
func indexReplacement(s *ir.Stmt) (*locks.IExpr, bool) {
	switch s.Op {
	case ir.OpConst:
		return locks.IConstExpr(s.Const), true
	case ir.OpCopy:
		return locks.IVarExpr(s.Src), true
	case ir.OpArith:
		return locks.IBinExpr(s.Arith, locks.IVarExpr(s.Src), locks.IVarExpr(s.Src2)), true
	case ir.OpUnary:
		return locks.IUnExpr(s.Unop, locks.IVarExpr(s.Src)), true
	default:
		return nil, false
	}
}

// substIndexVar rewrites every occurrence of v inside p's index
// expressions.
func substIndexVar(p locks.Path, v *ir.Var, repl *locks.IExpr) locks.Path {
	ops := make([]locks.PathOp, len(p.Ops))
	copy(ops, p.Ops)
	for i, op := range ops {
		if op.Kind == locks.OpIndex {
			ops[i].Index = op.Index.Subst(v, repl)
		}
	}
	return locks.Path{Base: p.Base, Ops: ops}
}
