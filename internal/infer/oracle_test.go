package infer_test

// External test package: exercises Options.Aliases (the store-transfer
// alias oracle swap) end to end through the oracle harness, which the
// in-package tests cannot import without a cycle.

import (
	"testing"

	"lockinfer/internal/andersen"
	"lockinfer/internal/infer"
	"lockinfer/internal/oracle"
	"lockinfer/internal/transform"
)

// TestExplicitSteensOracleIsDefault: passing the Steensgaard analysis as
// the alias oracle explicitly must reproduce the default plans exactly.
func TestExplicitSteensOracleIsDefault(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tg, err := oracle.FromProgen(seed, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		eng := infer.New(tg.Prog, tg.Pts, infer.Options{K: 2, Aliases: tg.Pts})
		plan := transform.SectionLocks(eng.AnalyzeAll())
		for id, want := range tg.Plan {
			got := plan[id]
			if len(got) != len(want) {
				t.Fatalf("seed %d section %d: %d locks with explicit oracle, %d default",
					seed, id, len(got), len(want))
			}
			for key := range want {
				if !got.Has(want[key]) {
					t.Fatalf("seed %d section %d: missing %s under explicit oracle",
						seed, id, want[key])
				}
			}
		}
	}
}

// TestAndersenOraclePlansRunClean: plans inferred with the inclusion-based
// alias oracle stay sound under checked execution — the dynamic half of the
// tentpole's swap-in guarantee (the static half is audited in
// internal/audit).
func TestAndersenOraclePlansRunClean(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tg, err := oracle.FromProgen(seed, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		and := andersen.Run(tg.Prog)
		eng := infer.New(tg.Prog, tg.Pts, infer.Options{K: 2, Aliases: and})
		tg.Plan = transform.SectionLocks(eng.AnalyzeAll())
		rep, err := tg.RunOnce(true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: andersen-oracle plan tripped the oracle: %v", seed, err)
		}
	}
}
