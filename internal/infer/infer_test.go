package infer

import (
	"sort"
	"strings"
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// analyze parses, lowers and analyzes src with the given k, returning the
// program and the per-section results.
func analyze(t *testing.T, src string, k int) (*ir.Program, []*Result) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	pts := steens.Run(prog)
	eng := New(prog, pts, Options{K: k})
	return prog, eng.AnalyzeAll()
}

// lockNames renders the minimized lock set, keeping paths readable and
// collapsing coarse locks to "coarse/<eff>" for position-independent
// comparison.
func lockNames(prog *ir.Program, r *Result) []string {
	var out []string
	for _, l := range r.Locks.Sorted() {
		if l.Fine {
			out = append(out, l.Path.CellString(func(f ir.FieldID) string {
				return prog.FieldName(f)
			})+"/"+l.Eff.String())
		} else if l.IsGlobal() {
			out = append(out, "global/rw")
		} else {
			out = append(out, "coarse/"+l.Eff.String())
		}
	}
	sort.Strings(out)
	return out
}

const listDecls = `
struct elem { elem* next; int* data; }
struct list { elem* head; }
`

const moveSrc = listDecls + `
void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null) {
        x = x->next;
      }
      x->next = y;
    }
  }
}
`

// TestMoveExample reproduces Figure 1(c): with k=3 the section needs fine
// rw locks on &(to->head) and &(from->head) plus the coarse lock E over the
// list elements.
func TestMoveExample(t *testing.T) {
	prog, res := analyze(t, moveSrc, 3)
	if len(res) != 1 {
		t.Fatalf("expected 1 section, got %d", len(res))
	}
	got := lockNames(prog, res[0])
	want := []string{"&(from->head)/rw", "&(to->head)/rw", "coarse/rw"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("locks = %v, want %v", got, want)
	}
	// The coarse lock must cover the elem class, not the list class: the
	// fine locks and the coarse lock live in different partitions.
	for _, l := range res[0].Locks.Sorted() {
		if !l.Fine {
			for _, fl := range res[0].Locks.Sorted() {
				if fl.Fine && fl.Class == l.Class {
					t.Errorf("coarse lock shares class %d with fine lock %s", l.Class, fl)
				}
			}
		}
	}
}

// TestMoveK0AllCoarse checks that with k=0 every heap access coarsens, as in
// Figure 7's first column.
func TestMoveK0AllCoarse(t *testing.T) {
	_, res := analyze(t, moveSrc, 0)
	fro, frw, cro, crw := res[0].Count()
	if fro != 0 || frw != 0 {
		t.Errorf("k=0 produced fine locks: ro=%d rw=%d", fro, frw)
	}
	if cro+crw == 0 {
		t.Errorf("k=0 produced no coarse locks")
	}
}

const fig2Src = `
struct obj { int* data; }
void test(obj* x, obj* y, int* w) {
  obj* tmp;
  if (w == null) {
    x = y;
  }
  atomic {
    x->data = w;
    int* z = y->data;
    *z = null;
  }
}
`

// TestFig2BackwardTracing reproduces the Figure 2 example: the *z access
// traces back to both y->data (the unaliased case) and w (the case where
// the store through x->data redirected it).
func TestFig2BackwardTracing(t *testing.T) {
	prog, res := analyze(t, fig2Src, 4)
	if len(res) != 1 {
		t.Fatalf("expected 1 section, got %d", len(res))
	}
	got := lockNames(prog, res[0])
	want := []string{
		"&(*(y->data))/rw", // the *z target via y->data
		"&(*w)/rw",         // the *z target via the aliased store
		"&(x->data)/rw",    // the store's own cell
		"&(y->data)/ro",    // the load's own cell
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("locks = %v\nwant %v", got, want)
	}
}

// TestAllocationKill checks that objects allocated inside the section need
// no lock at the entry (the S_{x=new} = {} rule).
func TestAllocationKill(t *testing.T) {
	src := listDecls + `
void fresh(list* l) {
  atomic {
    elem* e = new elem;
    e->next = null;
    e->data = null;
  }
}
`
	_, res := analyze(t, src, 5)
	if n := len(res[0].Locks); n != 0 {
		t.Errorf("expected no locks for section touching only fresh objects, got %d: %v",
			n, res[0].Locks.Sorted())
	}
}

// TestGlobalVariableLock checks that accesses to a global's own cell are
// protected by a fine lock on the global.
func TestGlobalVariableLock(t *testing.T) {
	src := `
int counter;
void bump() {
  atomic {
    counter = counter + 1;
  }
}
`
	prog, res := analyze(t, src, 3)
	got := lockNames(prog, res[0])
	want := []string{"&(counter)/rw"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("locks = %v, want %v", got, want)
	}
}

// TestReadOnlySection checks that a pure reader gets only ro locks.
func TestReadOnlySection(t *testing.T) {
	src := listDecls + `
int probe(list* l) {
  int found;
  atomic {
    elem* e = l->head;
    found = 0;
    if (e != null) {
      found = 1;
    }
  }
  return found;
}
`
	_, res := analyze(t, src, 3)
	for _, l := range res[0].Locks.Sorted() {
		if l.Eff != locks.RO {
			t.Errorf("pure reader produced non-ro lock %s", l)
		}
	}
	if len(res[0].Locks) == 0 {
		t.Error("expected at least the l->head lock")
	}
}

// TestInterproceduralSummary checks that accesses inside callees surface at
// the caller's section entry, re-rooted through the argument binding.
func TestInterproceduralSummary(t *testing.T) {
	src := listDecls + `
void clear(list* l) {
  l->head = null;
}
void run(list* a) {
  atomic {
    clear(a);
  }
}
`
	prog, res := analyze(t, src, 3)
	got := lockNames(prog, res[0])
	want := []string{"&(a->head)/rw"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("locks = %v, want %v", got, want)
	}
}

// TestInterproceduralReturnMapping checks the map step across x = ret_f.
func TestInterproceduralReturnMapping(t *testing.T) {
	src := listDecls + `
elem* first(list* l) {
  elem* e = l->head;
  return e;
}
void run(list* a) {
  atomic {
    elem* e = first(a);
    e->data = null;
  }
}
`
	prog, res := analyze(t, src, 5)
	got := strings.Join(lockNames(prog, res[0]), " ")
	// e->data traces to (a->head)->data through the callee.
	if !strings.Contains(got, "&(a->head->data)/rw") &&
		!strings.Contains(got, "coarse/rw") {
		t.Errorf("expected e->data re-rooted through callee or coarsened, got %v", got)
	}
	if !strings.Contains(got, "&(a->head)/ro") {
		t.Errorf("expected callee's own load lock &(a->head)/ro, got %v", got)
	}
}

// TestRecursionTerminates checks that recursive functions converge.
func TestRecursionTerminates(t *testing.T) {
	src := listDecls + `
int length(elem* e) {
  int n = 0;
  if (e != null) {
    n = 1 + length(e->next);
  }
  return n;
}
void run(list* l) {
  atomic {
    int n = length(l->head);
  }
}
`
	_, res := analyze(t, src, 3)
	if len(res[0].Locks) == 0 {
		t.Error("expected locks covering the recursive traversal")
	}
	// The traversal is unbounded, so a coarse ro lock over elems must be
	// present.
	foundCoarse := false
	for _, l := range res[0].Locks.Sorted() {
		if !l.Fine {
			foundCoarse = true
			if l.Eff != locks.RO {
				t.Errorf("recursive read-only traversal produced %s", l)
			}
		}
	}
	if !foundCoarse {
		t.Errorf("expected a coarse lock, got %v", res[0].Locks.Sorted())
	}
}

// TestIndexPathFine checks that an array access with an entry-computable
// index stays fine-grain (the hashtable-2 scenario).
func TestIndexPathFine(t *testing.T) {
	src := `
struct entry { entry* next; int key; }
struct table { entry** buckets; }
void put(table* t, int key, entry* e) {
  atomic {
    int h = key % 16;
    entry* old = t->buckets[h];
    e->next = old;
    t->buckets[h] = e;
  }
}
`
	prog, res := analyze(t, src, 5)
	got := strings.Join(lockNames(prog, res[0]), " ")
	if !strings.Contains(got, "&(t->buckets[(key % 16)])/rw") {
		t.Errorf("expected fine bucket lock with symbolic index, got %v", got)
	}
}

// TestMergeRedundancy checks the ⊔ rule: a lock is dropped when a coarser
// one is present.
func TestMergeRedundancy(t *testing.T) {
	set := locks.NewSet(
		locks.CoarseLock(5, locks.RW),
		locks.CoarseLock(5, locks.RO),
		locks.FineLock(locks.Path{}, 5, locks.RO),
		locks.CoarseLock(7, locks.RO),
	)
	m := set.Minimize()
	if len(m) != 2 {
		t.Fatalf("minimized to %d locks, want 2: %v", len(m), m.Sorted())
	}
	if !m.Has(locks.CoarseLock(5, locks.RW)) || !m.Has(locks.CoarseLock(7, locks.RO)) {
		t.Errorf("wrong survivors: %v", m.Sorted())
	}
}
