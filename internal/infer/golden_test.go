package infer

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// transferGoldenCases are the Figure 4 transfer-function exemplars (the
// same programs as the assertion tests in transfer_test.go). The golden
// snapshot pins the COMPLETE inferred lock sets across a k sweep, so any
// transfer-function change that shifts a lock set — even one the targeted
// assertions don't inspect — shows up as a diff.
var transferGoldenCases = []struct {
	name string
	src  string
}{
	{"store-strong-update", `
struct obj { int* data; }
void f(obj* x, int* w) {
  atomic {
    int* z = x->data;
    x->data = w;
    int* y = x->data;
    *y = 1;
  }
}
`},
	{"store-weak-update", `
struct obj { int* data; }
void f(obj* a, obj* b, int* w, int flip) {
  if (flip > 0) {
    a = b;
  }
  atomic {
    a->data = w;
    int* z = b->data;
    *z = 1;
  }
}
`},
	{"summary-reuse", `
struct list { list* next; int v; }
void poke(list* l) {
  l->v = 1;
}
void f(list* p, list* q) {
  atomic {
    poke(p);
    poke(q);
  }
}
`},
	{"two-sections", `
struct obj { int v; }
obj* a;
obj* b;
void f() {
  atomic {
    a->v = 1;
  }
  atomic {
    int x = b->v;
  }
}
`},
	{"branch-merge", `
struct obj { int v; }
void f(obj* a, obj* b, int c) {
  atomic {
    if (c > 0) {
      a->v = 1;
    } else {
      b->v = 2;
    }
  }
}
`},
	{"effect-upgrade", `
struct obj { int v; }
void f(obj* a, int c) {
  atomic {
    if (c > 0) {
      a->v = 1;
    } else {
      int x = a->v;
    }
  }
}
`},
	{"chained-fields", `
struct inner { int v; }
struct outer { inner* in; }
void f(outer* o) {
  atomic {
    o->in->v = 1;
  }
}
`},
	{"local-only", `
void f(int n) {
  atomic {
    int i = 0;
    while (i < n) {
      nop;
      i = i + 1;
    }
  }
}
`},
}

// TestTransferGolden snapshots the inferred lock sets for the Fig. 4
// transfer-function cases at k ∈ {1, 3, 5}. Run with -update to accept an
// intentional change.
func TestTransferGolden(t *testing.T) {
	var b strings.Builder
	for _, c := range transferGoldenCases {
		for _, k := range []int{1, 3, 5} {
			prog, res := analyze(t, c.src, k)
			for _, r := range res {
				names := lockNames(prog, r)
				if len(names) == 0 {
					names = []string{"(none)"}
				}
				fmt.Fprintf(&b, "%s k=%d section=%d: %s\n",
					c.name, k, r.Section.ID, strings.Join(names, " "))
			}
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "transfer_locks.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("transfer lock sets drifted from golden snapshot (run with -update if intended)\ndiff:\n%s",
			diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff for the failure message.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	seen := map[string]bool{}
	for _, l := range wl {
		seen[l] = true
	}
	inGot := map[string]bool{}
	for _, l := range gl {
		inGot[l] = true
	}
	for _, l := range wl {
		if !inGot[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range gl {
		if !seen[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
