package infer

import (
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// summary caches the analysis of one function, per §4.3: for each exit lock
// l (keyed canonically), entry[src(l)] is the set of locks at the function
// entry that protect the same locations l protected at the exit. The genSrc
// bucket holds the locks demanded by the function's own accesses (its G
// sets and, transitively, those of its callees).
type summary struct {
	fn *ir.Func
	// seeds are the exit locks demanded so far, by canonical key.
	seeds map[string]locks.Inferred
	// entry maps a src key (a seed key or genSrc) to entry locks.
	entry map[string]locks.Set
	// dependents are call-site tasks to re-enqueue when entry grows.
	dependents map[task]bool
	inst       *instance
}

// summaryFor returns (creating and scheduling on first use) the summary of
// fn.
func (e *Engine) summaryFor(fn *ir.Func) *summary {
	if s, ok := e.summaries[fn]; ok {
		return s
	}
	s := &summary{
		fn:         fn,
		seeds:      map[string]locks.Inferred{},
		entry:      map[string]locks.Set{},
		dependents: map[task]bool{},
	}
	e.summaries[fn] = s
	e.stats.Summaries++
	inst := newInstance(e, fn, 0, len(fn.Stmts)-1, s)
	s.inst = inst
	e.instances[fn] = inst
	// Schedule the whole body so the genSrc bucket (the function's own
	// accesses) is computed.
	for i := len(fn.Stmts) - 1; i >= 0; i-- {
		e.enqueue(task{inst, i})
	}
	return s
}

// seed demands the summary for a new exit lock.
func (e *Engine) seed(s *summary, l locks.Inferred) {
	key := l.Key()
	if _, ok := s.seeds[key]; ok {
		return
	}
	s.seeds[key] = l
	e.enqueue(task{s.inst, s.fn.Exit})
}

// addEntry records an entry lock for a src bucket, notifying dependents on
// growth.
func (s *summary) addEntry(src string, l locks.Inferred) {
	set, ok := s.entry[src]
	if !ok {
		set = locks.NewSet()
		s.entry[src] = set
	}
	if set.Add(l) {
		for t := range s.dependents {
			t.inst.eng.enqueue(t)
		}
	}
}

// publishEntry folds the fact at the function entry into the summary
// buckets.
func (s *summary) publishEntry(fact map[string]item) {
	for _, it := range fact {
		s.addEntry(it.src, it.lock)
	}
}

// transferCall implements the transfer function for x = f(a0,...,an):
// ret-rooted locks map into the callee and their summarized entry locks
// unmap back through the argument bindings; other locks survive the call
// unless the callee may store through an aliasing cell, in which case a
// coarse alternative is added; and the callee's own access locks (genSrc
// bucket) are unmapped into the caller.
func (in *instance) transferCall(i int, s *ir.Stmt, out map[string]item, nf map[string]item) {
	callee := in.eng.prog.Func(s.Callee)
	if callee == nil {
		// Unknown callee: be sound, not precise.
		in.emitCoarse(locks.GlobalLock(), genSrc)
		for _, it := range out {
			in.keep(nf, it)
		}
		return
	}
	if callee.External {
		in.transferExternCall(s, callee, out, nf)
		return
	}
	sum := in.eng.summaryFor(callee)
	sum.dependents[task{in, i}] = true
	stores := in.eng.storeSum[callee]

	// The callee's own accesses, translated to the call site.
	for _, l := range sum.entry[genSrc] {
		in.unmapEntryLock(nf, l, s, callee, genSrc)
	}

	for _, it := range out {
		p := it.lock.Path
		if it.lock.Fine && s.Dst != nil && p.Base == s.Dst && p.Len() > 0 {
			// Map through x = ret_f (S_{x=ret}: *x̄ -> *ret̄), then consult
			// the summary.
			exitPath := locks.Path{Base: callee.RetVar, Ops: p.Ops}
			exitLock := locks.FineLock(exitPath, it.lock.Class, it.lock.Eff)
			in.eng.seed(sum, exitLock)
			for _, l := range sum.entry[exitLock.Key()] {
				in.unmapEntryLock(nf, l, s, callee, it.src)
			}
			continue
		}
		// The lock survives the call; add a coarse alternative when a store
		// inside the callee may redirect one of its dereferences or change
		// one of its index variables.
		if callStoreConflict(in.eng, stores, p) {
			in.emitCoarse(in.eng.coarseOf(p, it.lock.Eff), it.src)
		}
		in.keep(nf, it)
	}
}

// callStoreConflict reports whether a callee that stores through the given
// cell classes could invalidate path p.
func callStoreConflict(e *Engine, stores map[steens.NodeID]bool, p locks.Path) bool {
	for j, op := range p.Ops {
		if op.Kind != locks.OpDeref {
			continue
		}
		prefix := locks.Path{Base: p.Base, Ops: p.Ops[:j]}
		if stores[e.pts.Rep(e.classOf(prefix))] {
			return true
		}
	}
	for _, v := range pathIndexVars(p) {
		if stores[e.pts.Rep(e.pts.VarCell(v))] {
			return true
		}
	}
	return false
}

// unmapEntryLock translates a lock valid at the callee's entry to the point
// before the call, modeling the bindings p_i = a_i: formal-rooted locks are
// re-rooted at the actuals; global-rooted locks pass through; locks rooted
// at callee locals (including formal cells themselves, which are fresh per
// invocation) coarsen to their points-to class.
func (in *instance) unmapEntryLock(nf map[string]item, l locks.Inferred, call *ir.Stmt, callee *ir.Func, src string) {
	if !l.Fine {
		in.emitCoarse(l, src)
		return
	}
	p := l.Path
	np, ok := in.rebindPath(p, call, callee)
	if !ok {
		in.emitCoarse(locks.CoarseLock(l.Class, l.Eff), src)
		return
	}
	in.addPath(nf, np, l.Eff, src)
}

// rebindPath rewrites a callee-scoped path into caller scope; it reports
// false when the path mentions a callee variable with no caller-side
// counterpart.
func (in *instance) rebindPath(p locks.Path, call *ir.Stmt, callee *ir.Func) (locks.Path, bool) {
	formalActual := func(v *ir.Var) (*ir.Var, bool) {
		for i, prm := range callee.Params {
			if prm == v && i < len(call.Args) {
				return call.Args[i], true
			}
		}
		return nil, false
	}
	base := p.Base
	if base.Owner == callee {
		actual, ok := formalActual(base)
		if !ok || p.Len() == 0 {
			// A callee local, or the formal's own fresh cell: not nameable
			// before the call.
			return locks.Path{}, false
		}
		base = actual
	}
	ops := make([]locks.PathOp, len(p.Ops))
	copy(ops, p.Ops)
	for i, op := range ops {
		if op.Kind != locks.OpIndex {
			continue
		}
		idx := op.Index
		for _, v := range idx.Vars(nil) {
			if v.Owner != callee {
				continue
			}
			actual, ok := formalActual(v)
			if !ok {
				return locks.Path{}, false
			}
			idx = idx.Subst(v, locks.IVarExpr(actual))
		}
		ops[i].Index = idx
	}
	return locks.Path{Base: base, Ops: ops}, true
}

// transferExternCall handles calls to pre-compiled functions using their
// specification (§4.3): the spec's coarse locks cover the callee's own
// accesses; locks that survive around the call gain a coarse alternative
// when the spec says the callee may store through an aliasing class; and
// locks rooted at the returned pointer coarsen into the spec's return
// closure. An external function without a spec falls back to the global
// lock, which covers everything.
func (in *instance) transferExternCall(s *ir.Stmt, callee *ir.Func, out, nf map[string]item) {
	info := in.eng.externs[callee.Name]
	if info == nil {
		in.emitCoarse(locks.GlobalLock(), genSrc)
		for _, it := range out {
			in.keep(nf, it)
		}
		return
	}
	for _, l := range info.locks {
		in.emitCoarse(l, genSrc)
	}
	for _, it := range out {
		p := it.lock.Path
		if it.lock.Fine && s.Dst != nil && p.Base == s.Dst && p.Len() > 0 {
			// Rooted at the returned pointer: expressible only through the
			// spec's return closure.
			if len(info.retClosure) == 0 {
				in.emitCoarse(locks.GlobalLock(), it.src)
				continue
			}
			for _, c := range info.retClosure {
				in.emitCoarse(locks.CoarseLock(c, it.lock.Eff), it.src)
			}
			continue
		}
		if callStoreConflict(in.eng, info.stores, p) {
			in.emitCoarse(in.eng.coarseOf(p, it.lock.Eff), it.src)
		}
		in.keep(nf, it)
	}
}
