package infer

import (
	"testing"

	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// TestGenericAgainstSpecialized is a differential test between the two
// framework instantiations on one program: the specialized engine's k=0
// solution (coarse Σ≡ × Σε locks) must be contained in the generic
// flow-insensitive engine's Σ≡ × Σε solution. (The generic engine has no
// kill rules, so it may additionally protect section-allocated objects.)
// The corpus-wide version of this check lives in the progs package.
func TestGenericAgainstSpecialized(t *testing.T) {
	prog, res := analyze(t, moveSrc, 0)
	pts := steens.Run(prog)
	sch := locks.Product{S1: locks.PointsScheme{A: pts}, S2: locks.EffScheme{}}
	for _, r := range res {
		generic := FlowInsensitive(prog, r.Section, sch)
		for _, l := range r.Locks.Sorted() {
			if l.IsGlobal() {
				continue
			}
			if !genericCovers(pts, generic, l.Class, l.Eff) {
				t.Errorf("section %d: specialized lock %s not covered by generic solution",
					r.Section.ID, l)
			}
		}
	}
}

// genericCovers reports whether a Σ≡ × Σε generic solution covers the
// given class and effect.
func genericCovers(pts *steens.Analysis, generic []locks.Lock, class steens.NodeID, eff locks.Eff) bool {
	for _, g := range generic {
		pl := g.(locks.PairLock)
		ptsL := pl.A.(locks.PointsLock)
		effL := pl.B.(locks.EffLock)
		if (ptsL.Top || pts.Rep(ptsL.Class) == pts.Rep(class)) && eff.Leq(effL.Eff) {
			return true
		}
	}
	return false
}

// TestGenericEffScheme: at Σε alone, a read-only section needs just the
// "ro" lock and a writing section the "rw" lock.
func TestGenericEffScheme(t *testing.T) {
	src := `
struct obj { int v; }
obj* g;
void reader() {
  atomic {
    int x = g->v;
  }
}
void writer() {
  atomic {
    g->v = 1;
  }
}
`
	prog, _ := analyze(t, src, 0)
	for _, sec := range prog.Sections {
		out := FlowInsensitive(prog, sec, locks.EffScheme{})
		if len(out) != 1 {
			t.Fatalf("section in %s: %d locks, want 1", sec.Fn.Name, len(out))
		}
		eff := out[0].(locks.EffLock).Eff
		if sec.Fn.Name == "reader" && eff != locks.RO {
			t.Errorf("reader got %s", eff)
		}
		if sec.Fn.Name == "writer" && eff != locks.RW {
			t.Errorf("writer got %s", eff)
		}
	}
}

// TestGenericFieldScheme: Σi protects by field offset; a section touching
// only one field needs only that field's lock (plus ⊤ for the variable
// cells it reads, which Σi maps to ⊤ — minimization keeps ⊤ then).
func TestGenericFieldScheme(t *testing.T) {
	src := `
struct obj { int a; int b; }
void f(obj* p) {
  atomic {
    p->a = 1;
  }
}
`
	prog, _ := analyze(t, src, 0)
	out := FlowInsensitive(prog, prog.Sections[0], locks.FieldScheme{})
	// The store target is field a -> {a}; the read of p itself maps to ⊤,
	// which absorbs everything in minimization.
	if len(out) != 1 {
		t.Fatalf("%d locks, want 1 (⊤ absorbs)", len(out))
	}
	if !out[0].(locks.FieldLock).All {
		t.Errorf("expected ⊤ after minimization, got %s", out[0])
	}
}

// TestGenericFieldSchemeNoVarReads: with only heap accesses through a
// non-shared local, Σi yields exactly the accessed field set.
func TestGenericFieldSchemeFields(t *testing.T) {
	src := `
struct obj { int a; int b; }
obj* g;
void f() {
  atomic {
    g->a = 1;
  }
}
`
	prog, _ := analyze(t, src, 0)
	out := FlowInsensitive(prog, prog.Sections[0], locks.FieldScheme{})
	// g is a global: its cell read maps to ⊤ under Σi, so ⊤ wins again —
	// demonstrating why Σi alone is a poor scheme (the paper presents it
	// only as an example instance).
	foundTop := false
	for _, l := range out {
		if l.(locks.FieldLock).All {
			foundTop = true
		}
	}
	if !foundTop {
		t.Errorf("expected ⊤ in %v", out)
	}
}

// TestGenericPointsScheme: disjoint structures get disjoint class locks.
func TestGenericPointsScheme(t *testing.T) {
	src := `
struct a { int v; }
struct b { int v; }
a* ga;
b* gb;
void f() {
  atomic {
    ga->v = 1;
    int x = gb->v;
  }
}
`
	prog, _ := analyze(t, src, 0)
	pts := steens.Run(prog)
	out := FlowInsensitive(prog, prog.Sections[0], locks.PointsScheme{A: pts})
	classes := map[string]bool{}
	for _, l := range out {
		classes[l.Key()] = true
	}
	// Expect at least: ga's cell class, gb's cell class, the a-object
	// class and the b-object class — all distinct, no ⊤.
	if len(classes) < 4 {
		t.Errorf("expected >=4 distinct class locks, got %v", out)
	}
	for _, l := range out {
		if l.(locks.PointsLock).Top {
			t.Errorf("unexpected ⊤ lock: %v", out)
		}
	}
}
