package infer

import (
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
)

// This file implements the framework of §4.1 for an arbitrary
// flow-insensitive abstract lock scheme. A flow-insensitive lock protects
// the same locations at every program point, so every transfer function of
// Figure 4 maps it to itself and the fixed point collapses to the union of
// the G sets over the section and its transitive callees — precisely the
// observation the paper makes for points-to locks in §4.3. The instances of
// §3.3.1 other than Σk (Σ≡, Σε, Σi, and their products) are all
// flow-insensitive, so this engine runs the framework at any of them; the
// flow-sensitive Σk component requires the substitution-based engine in
// transfer.go. A differential test checks the two engines agree where their
// domains overlap (Σ≡ × Σε versus the specialized engine's coarse locks).

// FlowInsensitive analyzes one atomic section under a flow-insensitive
// scheme, returning the minimized lock set for the section entry.
func FlowInsensitive(prog *ir.Program, sec *ir.Section, sch locks.Scheme) []locks.Lock {
	c := &genericCollector{
		prog:    prog,
		sch:     sch,
		found:   map[string]locks.Lock{},
		visited: map[*ir.Func]bool{},
	}
	for i := sec.Begin + 1; i < sec.End; i++ {
		c.stmt(sec.Fn.Stmts[i])
	}
	return c.minimized()
}

type genericCollector struct {
	prog    *ir.Program
	sch     locks.Scheme
	found   map[string]locks.Lock
	visited map[*ir.Func]bool
}

func (c *genericCollector) add(l locks.Lock) { c.found[l.Key()] = l }

// pathLock builds the ê lock for an access path (§3.3's inductive
// construction) under the collector's scheme.
func (c *genericCollector) pathLock(p locks.Path, eff locks.Eff) locks.Lock {
	return locks.ExprLockFor(c.sch, p, eff)
}

// varAccess records an access to a variable's own cell when it is shared.
func (c *genericCollector) varAccess(v *ir.Var, eff locks.Eff) {
	if v == nil || !(v.Global || v.AddrTaken) {
		return
	}
	c.add(c.sch.Var(v, eff))
}

// stmt contributes the statement's G locks (Figure 4, bottom).
func (c *genericCollector) stmt(s *ir.Stmt) {
	read := func(v *ir.Var) { c.varAccess(v, locks.RO) }
	write := func(v *ir.Var) { c.varAccess(v, locks.RW) }
	deref := func(v *ir.Var, eff locks.Eff) {
		c.add(c.pathLock(locks.VarPath(v).Append(locks.PathOp{Kind: locks.OpDeref}), eff))
	}
	switch s.Op {
	case ir.OpCopy:
		read(s.Src)
		write(s.Dst)
	case ir.OpAddrOf:
		write(s.Dst)
	case ir.OpLoad:
		deref(s.Src, locks.RO)
		read(s.Src)
		write(s.Dst)
	case ir.OpStore:
		deref(s.Dst, locks.RW)
		read(s.Dst)
		read(s.Src)
	case ir.OpField, ir.OpIndex:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpNew:
		read(s.Src2)
		write(s.Dst)
	case ir.OpNull, ir.OpConst:
		write(s.Dst)
	case ir.OpArith, ir.OpUnary:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpBranch:
		read(s.Src)
	case ir.OpCall:
		for _, a := range s.Args {
			read(a)
		}
		if s.Dst != nil {
			write(s.Dst)
		}
		c.call(s.Callee)
	}
}

// call folds a callee's accesses into the section. Flow-insensitive locks
// need no re-rooting across the call boundary: a lock over the formal's
// cell or targets covers the actual's, because the underlying scheme's
// domain (points-to classes, effects, fields) is context-insensitive.
func (c *genericCollector) call(name string) {
	f := c.prog.Func(name)
	if f == nil {
		c.add(c.sch.Top())
		return
	}
	if f.External {
		// No specification channel in the generic engine: be conservative.
		c.add(c.sch.Top())
		return
	}
	if c.visited[f] {
		return
	}
	c.visited[f] = true
	for _, s := range f.Stmts {
		c.stmt(s)
	}
}

// minimized drops every lock strictly below another (the merge rule).
func (c *genericCollector) minimized() []locks.Lock {
	var out []locks.Lock
	for _, l := range c.found {
		redundant := false
		for _, o := range c.found {
			if l.Key() == o.Key() {
				continue
			}
			// l is redundant if o is coarser (l ≤ o); break ties between
			// mutually-leq locks by key so exactly one survives.
			if c.sch.Leq(l, o) && (!c.sch.Leq(o, l) || l.Key() < o.Key()) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}
