package infer

import (
	"fmt"
	"strings"
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/progen"
	"lockinfer/internal/steens"
)

func compileRaw(t *testing.T, src string) (*ir.Program, *steens.Analysis) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog, steens.Run(prog)
}

// renderResults renders every section's minimized locks over a shared
// program, for byte-wise serial/parallel comparison.
func renderResults(prog *ir.Program, results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "#%d: %s\n", r.Section.ID, strings.Join(lockNames(prog, r), " "))
	}
	return b.String()
}

// TestAnalyzeAllParallelMatchesSerial pins the parallel driver's contract
// at the engine level: for any worker count, section results are identical
// to the serial engine's over the same program and points-to analysis.
// (The pipeline package re-checks this as a corpus-wide property through
// Plan/GlobalPlan/CoarsePlan.)
func TestAnalyzeAllParallelMatchesSerial(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed})
		prog, pts := compileRaw(t, src)
		serial := renderResults(prog, New(prog, pts, Options{K: 2}).AnalyzeAll())
		for _, workers := range []int{0, 2, 8} {
			eng := New(prog, pts, Options{K: 2})
			got := renderResults(prog, eng.AnalyzeAllParallel(workers))
			if got != serial {
				t.Errorf("seed %d workers %d: results differ from serial\nserial:\n%s\nparallel:\n%s",
					seed, workers, serial, got)
			}
			if len(prog.Sections) >= 2 && workers >= 2 && eng.Stats().Workers < 2 {
				t.Errorf("seed %d workers %d: engine reports serial drive (%+v)", seed, workers, eng.Stats())
			}
		}
	}
}

// TestAnalyzeAllParallelFallbacks covers the serial fallbacks: one worker,
// fewer than two sections, and a non-Steensgaard alias oracle (whose state
// cannot be cloned per worker).
func TestAnalyzeAllParallelFallbacks(t *testing.T) {
	prog, pts := compileRaw(t, `
int g;
void bump() { atomic { g = g + 1; } }
`)
	eng := New(prog, pts, Options{K: 2})
	res := eng.AnalyzeAllParallel(8) // single section: serial path
	if len(res) != 1 || eng.Stats().Workers != 1 {
		t.Errorf("single-section program drove %d workers over %d results",
			eng.Stats().Workers, len(res))
	}

	multi := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: 4})
	mprog, mpts := compileRaw(t, multi)
	eng = New(mprog, mpts, Options{K: 2})
	if eng.AnalyzeAllParallel(1); eng.Stats().Workers != 1 {
		t.Errorf("workers=1 reported %d workers", eng.Stats().Workers)
	}

	custom := New(mprog, mpts, Options{K: 2, Aliases: fullOracle{mpts}})
	serial := renderResults(mprog, New(mprog, mpts, Options{K: 2}).AnalyzeAll())
	got := renderResults(mprog, custom.AnalyzeAllParallel(4))
	if custom.Stats().Workers != 1 {
		t.Errorf("custom alias oracle drove %d workers, want serial fallback", custom.Stats().Workers)
	}
	if got != serial {
		t.Errorf("custom-oracle fallback diverged from serial:\n%s\nvs\n%s", got, serial)
	}
}

// fullOracle wraps the Steensgaard analysis behind a distinct type so the
// parallel driver cannot recognize (and clone) it.
type fullOracle struct{ a *steens.Analysis }

func (o fullOracle) VarCell(v *ir.Var) steens.NodeID       { return o.a.VarCell(v) }
func (o fullOracle) Pointee(n steens.NodeID) steens.NodeID { return o.a.Pointee(n) }
func (o fullOracle) MayAlias(x, y steens.NodeID) bool      { return o.a.MayAlias(x, y) }
