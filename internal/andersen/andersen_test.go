package andersen

import (
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/steens"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Run(prog)
}

func varOf(t *testing.T, prog *ir.Program, fn, name string) *ir.Var {
	t.Helper()
	f := prog.Func(fn)
	for _, v := range f.Vars {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no var %s in %s", name, fn)
	return nil
}

// TestDirectionalAssignment: p = q flows q's targets into p but not p's
// into q — the precision Steensgaard's bidirectional unification gives up.
func TestDirectionalAssignment(t *testing.T) {
	prog, a := analyze(t, `
int ga; int gb;
int* p; int* q;
void f() {
  p = &ga;
  q = &gb;
  p = q;
}
`)
	gaCell := a.VarCell(prog.Global("ga"))
	gbCell := a.VarCell(prog.Global("gb"))
	p := prog.Global("p")
	q := prog.Global("q")
	if !a.MayAlias(a.Pointee(a.VarCell(p)), gaCell) || !a.MayAlias(a.Pointee(a.VarCell(p)), gbCell) {
		t.Errorf("pts(p) = %v, want both ga and gb", a.PointsTo(p))
	}
	if a.MayAlias(a.Pointee(a.VarCell(q)), gaCell) {
		t.Errorf("pts(q) = %v spuriously contains ga", a.PointsTo(q))
	}
	// Steensgaard on the same program cannot make the distinction.
	st := steens.Run(prog)
	if !st.MayAlias(st.Pointee(st.VarCell(q)), st.VarCell(prog.Global("ga"))) {
		t.Error("expected the unification analysis to conflate q's pointee with ga")
	}
}

// TestCycleCollapse: a copy cycle (mutually assigned pointers) merges
// constraint nodes without losing the points-to solution.
func TestCycleCollapse(t *testing.T) {
	prog, a := analyze(t, `
struct node { node* next; }
node* head;
void init() {
  head = new node;
  head->next = head;
}
void shuffle(int n) {
  node* x = head;
  node* y = x;
  while (n > 0) {
    x = y;
    y = x;
    n = n - 1;
  }
}
`)
	if a.Collapsed() == 0 {
		t.Error("expected the x<->y copy cycle to collapse constraint nodes")
	}
	x := varOf(t, prog, "shuffle", "x")
	y := varOf(t, prog, "shuffle", "y")
	head := prog.Global("head")
	if !a.MayAlias(a.Pointee(a.VarCell(x)), a.Pointee(a.VarCell(head))) ||
		!a.MayAlias(a.Pointee(a.VarCell(x)), a.Pointee(a.VarCell(y))) {
		t.Error("collapsed nodes lost the list cell")
	}
}

// TestLoadStorePropagation: values stored through one pointer are observed
// by loads through an alias of it.
func TestLoadStorePropagation(t *testing.T) {
	prog, a := analyze(t, `
struct box { int* v; }
int g;
void f() {
  box* b = new box;
  box* c = b;
  int* p = &g;
  b->v = p;
  int* out = c->v;
}
`)
	out := varOf(t, prog, "f", "out")
	if !a.MayAlias(a.Pointee(a.VarCell(out)), a.VarCell(prog.Global("g"))) {
		t.Errorf("pts(out) = %v, want g's cell", a.PointsTo(out))
	}
}

// TestEmptySetNotReflexive: MayAlias on a pointer that targets nothing is
// false even against itself — an empty set denotes no location.
func TestEmptySetNotReflexive(t *testing.T) {
	prog, a := analyze(t, `
int* p;
void f() { p = null; }
`)
	pt := a.Pointee(a.VarCell(prog.Global("p")))
	if a.MayAlias(pt, pt) {
		t.Error("empty points-to set must not alias anything, itself included")
	}
}

// TestExternSpec: a spec'd external call flows the ReturnsFrom closure into
// the call's result and retains pointer arguments in the Writes closure.
func TestExternSpec(t *testing.T) {
	src := `
struct node { node* next; }
node* pool;
node* take();
void stash(node* n);
void init() { pool = new node; }
void f() {
  node* x = take();
  node* mine = new node;
  stash(mine);
  node* y = pool->next;
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]steens.ExternSpec{
		"take":  {Reads: []string{"pool"}, ReturnsFrom: "pool"},
		"stash": {Writes: []string{"pool"}},
	}
	a := RunWithSpecs(prog, specs)
	x := varOf(t, prog, "f", "x")
	pool := prog.Global("pool")
	if !a.MayAlias(a.Pointee(a.VarCell(x)), a.Pointee(a.VarCell(pool))) {
		t.Errorf("pts(x) = %v, want pool's targets", a.PointsTo(x))
	}
	// stash may have linked mine into the pool structure: loading pool->next
	// must see mine's allocation.
	y := varOf(t, prog, "f", "y")
	mine := varOf(t, prog, "f", "mine")
	if !a.MayAlias(a.Pointee(a.VarCell(y)), a.Pointee(a.VarCell(mine))) {
		t.Errorf("pts(y) = %v, missing the stashed allocation", a.PointsTo(y))
	}
}

// TestRefinementCountsSplitClasses: on the directional-assignment program
// the Σ≡ class holding ga and gb splits into Andersen components.
func TestRefinementCountsSplitClasses(t *testing.T) {
	prog, a := analyze(t, `
int ga; int gb;
int* p; int* q;
void f() {
  p = &ga;
  q = &gb;
}
void g() {
  int* r = p;
  r = q;
}
`)
	st := steens.Run(prog)
	ref := a.Refinement(st)
	// r = p; r = q unifies the two pointees in Σ≡, but no Andersen points-to
	// set holds ga and gb together... unless r's set does. r's set is
	// {ga, gb}, which co-locates them: the refinement must count that as one
	// component, proving the counting is co-occurrence, not class size.
	cls := st.Rep(st.VarCell(prog.Global("ga")))
	if got := ref[cls]; got != 1 {
		t.Errorf("Refinement[%d] = %d, want 1 (r's set co-locates ga and gb)", cls, got)
	}
}

// TestRefinementSplit: Steensgaard's recursive pointee unification is the
// imprecision source the refinement counter measures. A double-indirect
// pointer aimed at two different pointers unifies the pointers' cells and,
// recursively, their targets — but no Andersen points-to set ever holds the
// two targets together, so the merged Σ≡ class counts two sub-classes.
func TestRefinementSplit(t *testing.T) {
	prog, a := analyze(t, `
int g1; int g2;
int* p; int* q;
int** pp;
void f(int c) {
  p = &g1;
  q = &g2;
  pp = &p;
  if (c != 0) {
    pp = &q;
  }
}
`)
	st := steens.Run(prog)
	g1 := prog.Global("g1")
	g2 := prog.Global("g2")
	cls := st.Rep(st.VarCell(g1))
	if st.Rep(st.VarCell(g2)) != cls {
		t.Fatal("expected the unification analysis to merge g1 and g2")
	}
	if a.MayAlias(a.VarCell(g1), a.VarCell(g2)) {
		t.Fatal("andersen must keep g1 and g2 apart")
	}
	if got := a.Refinement(st)[cls]; got != 2 {
		t.Errorf("Refinement[%d] = %d, want 2 (g1 and g2 never co-reside)", cls, got)
	}
}

// TestSubsetOfSteensgaard is the inclusion-vs-unification ordering on a
// handwritten program: every Andersen may-alias pair is a Steensgaard
// may-alias pair (the differential sweep over generated programs lives in
// internal/audit).
func TestSubsetOfSteensgaard(t *testing.T) {
	src := `
struct node { node* next; int v; }
node* h1; node* h2;
void init() {
  h1 = new node;
  h2 = new node;
  h1->next = new node;
  h2->next = h1;
}
void f(node* x) {
  node* c = x;
  while (c != null) {
    c->v = 1;
    c = c->next;
  }
}
void worker(int n) {
  f(h1);
  f(h2);
}
`
	prog, a := analyze(t, src)
	st := steens.Run(prog)
	var cells []*ir.Var
	cells = append(cells, prog.Globals...)
	for _, f := range prog.Funcs {
		cells = append(cells, f.Vars...)
	}
	for _, v1 := range cells {
		for _, v2 := range cells {
			for depth := 0; depth < 3; depth++ {
				n1, n2 := a.VarCell(v1), a.VarCell(v2)
				s1, s2 := st.VarCell(v1), st.VarCell(v2)
				for d := 0; d < depth; d++ {
					n1, n2 = a.Pointee(n1), a.Pointee(n2)
					s1, s2 = st.Pointee(s1), st.Pointee(s2)
				}
				if a.MayAlias(n1, n2) && !st.MayAlias(s1, s2) {
					t.Fatalf("andersen aliases %s~%s at depth %d but steens does not",
						v1.Name, v2.Name, depth)
				}
			}
		}
	}
}
