// Package andersen implements Andersen's inclusion-based points-to analysis
// over the IR: subset constraints solved on a constraint graph by wave
// propagation with online cycle collapsing (copy-edge strongly-connected
// components are merged through a union-find before each propagation wave).
//
// The abstraction deliberately matches internal/steens cell-for-cell — one
// abstract location per variable cell and per allocation site, field offsets
// folded into the object (the paper's Σ≡ granularity, l_s + i = s) — so the
// two analyses answer the same queries over the same domain and differ only
// in precision: Andersen propagates subsets along directed edges where
// Steensgaard unifies, so andersen.MayAlias ⊆ steens.MayAlias. The package
// exposes the same VarCell/SiteClass/Pointee/Rep/MayAlias surface as
// internal/steens (NodeID is a type alias), which lets it slot directly into
// infer's store-transfer alias oracle and lets the static lock-plan auditor
// quantify how many locations each Σ≡ class lumps together.
//
// A NodeID names an interned points-to set: ids below the location count are
// the singleton sets ({loc i} has id i), larger ids are canonicalized
// composite sets, so equal sets always share an id and Rep is the identity.
package andersen

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// NodeID is an interned points-to set. It aliases steens.NodeID so the two
// analyses are interchangeable behind infer's AliasOracle interface.
type NodeID = steens.NodeID

// Analysis is the solved constraint system for one program.
type Analysis struct {
	prog *ir.Program

	// Abstract locations: variable cells first, then allocation sites.
	varLoc  map[*ir.Var]int
	siteLoc []int
	locVar  []*ir.Var // inverse of varLoc; nil entries are sites
	locSite []int     // -1 for variable cells
	nloc    int

	// Constraint graph state, indexed by union-find representative.
	uf   []int
	pts  []locset
	succ []map[int]bool

	// Complex (pts-dependent) constraints, re-evaluated each wave.
	loads  [][2]int // x = *y: (dst, src)
	stores [][2]int // *x = y: (dst, src)
	reach  [][2]int // spec Writes: every loc reachable from root may point at arg's targets

	collapsed int // locations merged by cycle collapsing
	rounds    int // solver waves run to reach the fixpoint

	// Interned composite sets (ids nloc, nloc+1, ...).
	setIDs map[string]NodeID
	sets   [][]int

	pointeeCache map[NodeID]NodeID
}

// locset is a sorted, duplicate-free set of location ids.
type locset []int

func (s locset) has(x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// add inserts x, reporting whether the set changed.
func (s *locset) add(x int) bool {
	i := sort.SearchInts(*s, x)
	if i < len(*s) && (*s)[i] == x {
		return false
	}
	*s = append(*s, 0)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = x
	return true
}

// union folds o into s, reporting whether s changed.
func (s *locset) union(o locset) bool {
	changed := false
	for _, x := range o {
		if s.add(x) {
			changed = true
		}
	}
	return changed
}

func (s locset) intersects(o locset) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Run performs the analysis on prog without external-function specs.
func Run(prog *ir.Program) *Analysis {
	return RunWithSpecs(prog, nil)
}

// RunWithSpecs performs the analysis with external-function specifications,
// mirroring steens.RunWithSpecs: a spec'd call contributes the inclusion
// constraints its spec implies (returned pointers flow from the ReturnsFrom
// global; pointer arguments may be retained anywhere in the Writes
// closures). Unlike the unification analysis no fixed pass count is needed —
// the spec constraints are complex constraints solved to the same fixpoint
// as loads and stores.
func RunWithSpecs(prog *ir.Program, specs map[string]steens.ExternSpec) *Analysis {
	a := &Analysis{
		prog:         prog,
		varLoc:       map[*ir.Var]int{},
		setIDs:       map[string]NodeID{},
		pointeeCache: map[NodeID]NodeID{},
	}
	for _, g := range prog.Globals {
		a.newVarLoc(g)
	}
	for _, f := range prog.Funcs {
		for _, v := range f.Vars {
			a.newVarLoc(v)
		}
	}
	a.siteLoc = make([]int, prog.NumSites)
	for i := range a.siteLoc {
		a.siteLoc[i] = a.newLoc(nil, i)
	}
	a.nloc = len(a.uf)
	for _, f := range prog.Funcs {
		for _, s := range f.Stmts {
			a.constrain(s, specs)
		}
	}
	a.solve()
	return a
}

func (a *Analysis) newLoc(v *ir.Var, site int) int {
	id := len(a.uf)
	a.uf = append(a.uf, id)
	a.pts = append(a.pts, nil)
	a.succ = append(a.succ, nil)
	a.locVar = append(a.locVar, v)
	a.locSite = append(a.locSite, site)
	return id
}

func (a *Analysis) newVarLoc(v *ir.Var) {
	a.varLoc[v] = a.newLoc(v, -1)
}

// find resolves a constraint-graph node to its representative. Collapsed
// cycles share one node; location identities inside pts sets are never
// rewritten, only the graph nodes holding them merge.
func (a *Analysis) find(x int) int {
	for a.uf[x] != x {
		a.uf[x] = a.uf[a.uf[x]]
		x = a.uf[x]
	}
	return x
}

// merge unifies two constraint-graph nodes (cycle collapsing), joining
// their points-to sets and successor edges.
func (a *Analysis) merge(x, y int) {
	x, y = a.find(x), a.find(y)
	if x == y {
		return
	}
	a.uf[y] = x
	a.pts[x].union(a.pts[y])
	a.pts[y] = nil
	for s := range a.succ[y] {
		a.addEdge(x, s)
	}
	a.succ[y] = nil
	a.collapsed++
}

// addEdge inserts the copy edge from→to (pts(to) ⊇ pts(from)), reporting
// whether it is new.
func (a *Analysis) addEdge(from, to int) bool {
	from, to = a.find(from), a.find(to)
	if from == to {
		return false
	}
	if a.succ[from] == nil {
		a.succ[from] = map[int]bool{}
	}
	if a.succ[from][to] {
		return false
	}
	a.succ[from][to] = true
	return true
}

// constrain translates one statement into constraints. The rules mirror
// steens.stmt with subset edges in place of unifications (see DESIGN.md
// §7.8 for the rule table).
func (a *Analysis) constrain(s *ir.Stmt, specs map[string]steens.ExternSpec) {
	l := func(v *ir.Var) int { return a.varLoc[v] }
	switch s.Op {
	case ir.OpCopy:
		a.addEdge(l(s.Src), l(s.Dst))
	case ir.OpAddrOf:
		a.pts[a.find(l(s.Dst))].add(l(s.Src))
	case ir.OpLoad:
		a.loads = append(a.loads, [2]int{l(s.Dst), l(s.Src)})
	case ir.OpStore:
		a.stores = append(a.stores, [2]int{l(s.Dst), l(s.Src)})
	case ir.OpField, ir.OpIndex:
		// Field-insensitive: the member's cell is the object's cell, so the
		// offset behaves like a copy of the base pointer.
		a.addEdge(l(s.Src), l(s.Dst))
	case ir.OpNew:
		a.pts[a.find(l(s.Dst))].add(a.siteLoc[s.Site])
	case ir.OpCall:
		callee := a.prog.Func(s.Callee)
		if callee == nil {
			return
		}
		if callee.External {
			spec, ok := specs[s.Callee]
			if !ok {
				return
			}
			a.constrainSpec(s, spec)
			return
		}
		for i, arg := range s.Args {
			if i < len(callee.Params) {
				a.addEdge(l(arg), l(callee.Params[i]))
			}
		}
		if s.Dst != nil && callee.RetVar != nil {
			a.addEdge(l(callee.RetVar), l(s.Dst))
		}
	}
}

// constrainSpec adds the inclusion constraints of one spec'd external call.
func (a *Analysis) constrainSpec(call *ir.Stmt, spec steens.ExternSpec) {
	if call.Dst != nil && spec.ReturnsFrom != "" {
		if g := a.prog.Global(spec.ReturnsFrom); g != nil {
			// The returned pointer targets what the root global targets.
			a.addEdge(a.varLoc[g], a.varLoc[call.Dst])
		}
	}
	for _, root := range spec.Writes {
		g := a.prog.Global(root)
		if g == nil {
			continue
		}
		for _, arg := range call.Args {
			if !arg.Type.IsPointer() {
				continue
			}
			a.reach = append(a.reach, [2]int{a.varLoc[g], a.varLoc[arg]})
		}
	}
}

// solve runs waves of (cycle collapse, transitive propagation, complex
// constraint evaluation) until nothing changes.
func (a *Analysis) solve() {
	for {
		a.rounds++
		a.collapseCycles()
		a.propagate()
		if !a.applyComplex() {
			return
		}
	}
}

// Rounds returns the number of solver waves run to reach the fixpoint.
func (a *Analysis) Rounds() int { return a.rounds }

// collapseCycles merges every copy-edge strongly-connected component into a
// single constraint node (iterative Tarjan over representatives).
func (a *Analysis) collapseCycles() {
	n := len(a.uf)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 1

	type frame struct {
		v     int
		succs []int
		i     int
	}
	succsOf := func(v int) []int {
		out := make([]int, 0, len(a.succ[v]))
		for s := range a.succ[v] {
			out = append(out, a.find(s))
		}
		sort.Ints(out)
		return out
	}
	for root := 0; root < n; root++ {
		if a.find(root) != root || index[root] >= 0 {
			continue
		}
		frames := []frame{{v: root, succs: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if w == f.v {
					continue
				}
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop: close the SCC rooted at f.v if it is one.
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				for _, w := range comp[1:] {
					a.merge(comp[0], w)
				}
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
}

// propagate pushes points-to sets along copy edges to a fixpoint.
func (a *Analysis) propagate() {
	work := make([]int, 0, len(a.uf))
	queued := make([]bool, len(a.uf))
	for i := range a.uf {
		if a.find(i) == i && len(a.pts[i]) > 0 {
			work = append(work, i)
			queued[i] = true
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		queued[v] = false
		v = a.find(v)
		for s := range a.succ[v] {
			s = a.find(s)
			if s == v {
				continue
			}
			if a.pts[s].union(a.pts[v]) && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
}

// applyComplex evaluates the pts-dependent constraints, reporting whether
// any new edge or membership appeared (a new wave is then needed).
func (a *Analysis) applyComplex() bool {
	changed := false
	for _, ld := range a.loads {
		dst, src := ld[0], ld[1]
		for _, tgt := range a.pts[a.find(src)] {
			if a.addEdge(tgt, dst) {
				changed = true
			}
		}
	}
	for _, st := range a.stores {
		dst, src := st[0], st[1]
		for _, tgt := range a.pts[a.find(dst)] {
			if a.addEdge(src, tgt) {
				changed = true
			}
		}
	}
	for _, rc := range a.reach {
		root, arg := rc[0], rc[1]
		for _, tgt := range a.reachFrom(root) {
			if a.addEdge(arg, tgt) {
				changed = true
			}
		}
	}
	return changed
}

// reachFrom returns the locations reachable from root's targets by
// transitively following points-to membership (the inclusion analogue of
// steens.ReachableClasses on a pointee chain).
func (a *Analysis) reachFrom(root int) []int {
	seen := map[int]bool{}
	frontier := append([]int(nil), a.pts[a.find(root)]...)
	var out []int
	for len(frontier) > 0 {
		loc := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if seen[loc] {
			continue
		}
		seen[loc] = true
		out = append(out, loc)
		frontier = append(frontier, a.pts[a.find(loc)]...)
	}
	sort.Ints(out)
	return out
}

// intern canonicalizes a sorted location set to its NodeID: singletons keep
// their location id, larger (or empty) sets get a content-hashed composite
// id, so set equality is id equality and Rep is the identity.
func (a *Analysis) intern(locs []int) NodeID {
	if len(locs) == 1 {
		return NodeID(locs[0])
	}
	var b strings.Builder
	for _, l := range locs {
		fmt.Fprintf(&b, "%d,", l)
	}
	key := b.String()
	if id, ok := a.setIDs[key]; ok {
		return id
	}
	id := NodeID(a.nloc + len(a.sets))
	a.setIDs[key] = id
	a.sets = append(a.sets, append([]int(nil), locs...))
	return id
}

// Members returns the abstract locations a node denotes.
func (a *Analysis) Members(n NodeID) []int {
	if int(n) < a.nloc {
		return []int{int(n)}
	}
	return a.sets[int(n)-a.nloc]
}

// VarCell returns the node for variable v's own cell (&v).
func (a *Analysis) VarCell(v *ir.Var) NodeID { return NodeID(a.varLoc[v]) }

// SiteClass returns the node for allocation site id's objects.
func (a *Analysis) SiteClass(site int) NodeID { return NodeID(a.siteLoc[site]) }

// Rep is the identity: interned ids are already canonical. It exists for
// surface parity with steens.Analysis.
func (a *Analysis) Rep(n NodeID) NodeID { return n }

// Pointee returns the node denoting everything a cell of n may point to:
// the union of the points-to sets of n's locations. Like steens.Pointee it
// is a single-threaded query (it populates an internal cache).
func (a *Analysis) Pointee(n NodeID) NodeID {
	if id, ok := a.pointeeCache[n]; ok {
		return id
	}
	var u locset
	for _, loc := range a.Members(n) {
		u.union(a.pts[a.find(loc)])
	}
	id := a.intern(u)
	a.pointeeCache[n] = id
	return id
}

// MayAlias reports whether two nodes may denote a common location: their
// interned sets intersect. Note that unlike the unification analysis this
// is not an equivalence — it is reflexive only on non-empty sets (an empty
// points-to set denotes no location at all, so nothing aliases it, itself
// included).
func (a *Analysis) MayAlias(n1, n2 NodeID) bool {
	m1, m2 := locset(a.Members(n1)), locset(a.Members(n2))
	return m1.intersects(m2)
}

// PointsTo returns the location set of variable v's cell.
func (a *Analysis) PointsTo(v *ir.Var) []int {
	return append([]int(nil), a.pts[a.find(a.varLoc[v])]...)
}

// GlobalReach resolves a global name to its reachable location set: the
// global's own cell plus everything transitively reachable through it (the
// inclusion analogue of steens.GlobalClosure).
func (a *Analysis) GlobalReach(prog *ir.Program, name string) []int {
	g := prog.Global(name)
	if g == nil {
		return nil
	}
	out := append([]int{a.varLoc[g]}, a.reachFrom(a.varLoc[g])...)
	sort.Ints(out)
	// reachFrom excludes the root cell, so at most the root could repeat
	// (a self-reaching global); drop adjacent duplicates.
	dedup := out[:1]
	for _, l := range out[1:] {
		if l != dedup[len(dedup)-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

// NumLocations returns the size of the abstract location domain.
func (a *Analysis) NumLocations() int { return a.nloc }

// Collapsed returns how many constraint nodes cycle collapsing merged.
func (a *Analysis) Collapsed() int { return a.collapsed }

// LocLabel renders one abstract location.
func (a *Analysis) LocLabel(loc int) string {
	if v := a.locVar[loc]; v != nil {
		if v.Owner != nil {
			return v.Owner.Name + "." + v.Name
		}
		return v.Name
	}
	return a.prog.SiteNames[a.locSite[loc]]
}

// LocSteensClass maps an abstract location to its Σ≡ class in st (the two
// analyses share the location domain, so the mapping is exact).
func (a *Analysis) LocSteensClass(st *steens.Analysis, loc int) steens.NodeID {
	if v := a.locVar[loc]; v != nil {
		return st.VarCell(v)
	}
	return st.SiteClass(a.locSite[loc])
}

// Refinement quantifies how much precision the unification analysis gives
// up: for every Σ≡ class it counts the inclusion-analysis sub-classes the
// class splits into — the connected components, under points-to-set
// co-occurrence, of the class's locations that some pointer can actually
// reach. Two locations are co-resident (one sub-class) iff some points-to
// set contains both; a Σ≡ class counted 1 lost nothing, a class counted c>1
// merged c provably independent lock partitions.
func (a *Analysis) Refinement(st *steens.Analysis) map[steens.NodeID]int {
	// Union-find over locations linked by co-occurrence.
	parent := make([]int, a.nloc)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	pointed := make([]bool, a.nloc)
	link := func(set locset) {
		for i, l := range set {
			pointed[l] = true
			if i > 0 {
				parent[find(set[i-1])] = find(l)
			}
		}
	}
	for i := range a.uf {
		if a.find(i) == i {
			link(a.pts[i])
		}
	}
	// Count distinct components per Σ≡ class, over pointed-to locations.
	comps := map[steens.NodeID]map[int]bool{}
	for loc := 0; loc < a.nloc; loc++ {
		if !pointed[loc] {
			continue
		}
		cls := st.Rep(a.LocSteensClass(st, loc))
		if comps[cls] == nil {
			comps[cls] = map[int]bool{}
		}
		comps[cls][find(loc)] = true
	}
	out := make(map[steens.NodeID]int, len(comps))
	for cls, set := range comps {
		out[cls] = len(set)
	}
	return out
}
