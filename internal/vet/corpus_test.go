package vet_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lockinfer/internal/audit"
	"lockinfer/internal/gofront"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/vet"
)

var update = flag.Bool("update", false, "rewrite the golden lockvet outputs")

const corpusDir = "../../testdata/goprogs"

// corpusFiles returns the corpus sources, with repo-relative names so the
// goldens match what `lockvet testdata/goprogs/x.go` prints from the root.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) < 16 {
		t.Fatalf("corpus has %d files, want at least 16 (8 buggy/clean pairs)", len(names))
	}
	return names
}

func renderReport(rep *vet.Report) string {
	var b strings.Builder
	for _, d := range rep.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, d := range rep.Subset {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorpusGoldens runs the full lockvet analysis over every corpus package
// and compares against the golden outputs. Buggy packages must be flagged,
// clean variants must be silent, and nothing may fall out of the gofront
// subset. Regenerate with `go test ./internal/vet -run Goldens -update`.
func TestCorpusGoldens(t *testing.T) {
	for _, name := range corpusFiles(t) {
		t.Run(strings.TrimSuffix(name, ".go"), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := gofront.LowerSource("testdata/goprogs/"+name, string(src))
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.Errors) > 0 {
				t.Errorf("corpus package is not fully in the subset: %v", pkg.Errors[0])
			}
			rep := vet.Analyze(pkg, vet.Options{})
			got := renderReport(rep)

			clean := strings.HasSuffix(name, "_clean.go")
			if clean && rep.Failed() {
				t.Errorf("clean variant flagged:\n%s", got)
			}
			if !clean && !rep.Failed() {
				t.Error("buggy package produced no diagnostics")
			}

			goldenPath := filepath.Join(corpusDir, "golden", strings.TrimSuffix(name, ".go")+".txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from golden %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestCorpusBugClasses pins that each seeded defect class is reported with
// the right diagnostic kind at least once across the corpus.
func TestCorpusBugClasses(t *testing.T) {
	wantKinds := map[string]string{
		"account_two_mutexes.go":  "inconsistent",
		"cache_rwmutex.go":        "unguarded",
		"counter_inconsistent.go": "unguarded",
		"double_guard.go":         "inconsistent",
		"order_inversion.go":      "lock-order",
		"publish_unguarded.go":    "unguarded",
		"register_directive.go":   "unguarded",
		"stats_mixed.go":          "unguarded",
	}
	for name, kind := range wantKinds {
		src, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := gofront.LowerSource("testdata/goprogs/"+name, string(src))
		if err != nil {
			t.Fatal(err)
		}
		rep := vet.Analyze(pkg, vet.Options{NoSuggest: true})
		found := false
		for _, d := range rep.Diags {
			if d.Kind == kind {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %q diagnostic; got %v", name, kind, rep.Diags)
		}
	}
}

// TestShowcaseEndToEnd drives one corpus package through the whole paper
// pipeline: Go source → gofront → IR → inferred plan → audit, which must
// come back sound, with a non-empty plan for every directive section.
func TestShowcaseEndToEnd(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(corpusDir, "register_directive_clean.go"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipeline.Compile(string(src), pipeline.Options{
		Name: "register_directive_clean.go", Trace: pipeline.NewTrace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.GoPackage == nil {
		t.Fatal("pipeline did not detect Go source")
	}
	if got := len(c.Program.Sections); got != 3 {
		t.Fatalf("lowered %d sections, want 3", got)
	}
	plan := c.Plan()
	for i := range c.Program.Sections {
		if len(plan[i]) == 0 {
			t.Errorf("directive section %d inferred an empty plan", i)
		}
	}
	rep := audit.Run(c.Program, c.Points, c.Andersen(), plan, audit.Options{})
	if !rep.Sound() {
		t.Errorf("audit of the inferred plan is unsound: %v", rep.Err())
	}
}
