package vet

// The structural half of the analysis: interprocedural fixpoints over the
// gofront metadata (effective guards, thread contexts, concurrency windows)
// and the slot-consistency and lock-order checks built on them.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"lockinfer/internal/audit"
	"lockinfer/internal/gofront"
)

type engine struct {
	pkg   *gofront.Package
	known map[string]bool // in-package function minic names

	// eff[fn] is the set of guards held on *every* path that reaches fn:
	// the intersection over call sites of (held at the call ∪ eff[caller]).
	// Spawned callees start a fresh goroutine, so a go call contributes the
	// empty set regardless of what the spawner held.
	eff map[string]map[string]bool

	// ctxs[fn] is the set of thread contexts fn may execute in: "main" for
	// call-graph roots and their callees, one "go <file:line>" context per
	// spawn site reaching fn.
	ctxs map[string]map[string]bool

	roots      map[string]bool
	transSpawn map[string]bool      // fn spawns, directly or transitively
	firstConc  map[string]token.Pos // first spawn-reaching statement in fn
	joinPos    map[string]token.Pos // earliest barrier after fn's last spawn

	// singleDriver is the unique spawning root, when there is exactly one —
	// the case where pre-spawn and post-join accesses in it are provably
	// single-threaded.
	singleDriver string
}

func newEngine(pkg *gofront.Package) *engine {
	e := &engine{
		pkg:        pkg,
		known:      map[string]bool{},
		eff:        map[string]map[string]bool{},
		ctxs:       map[string]map[string]bool{},
		roots:      map[string]bool{},
		transSpawn: map[string]bool{},
		firstConc:  map[string]token.Pos{},
		joinPos:    map[string]token.Pos{},
	}
	for _, fi := range pkg.Funcs {
		e.known[fi.MinicName] = true
	}
	if pkg.InitFn != "" {
		e.known[pkg.InitFn] = true
	}
	return e
}

func (e *engine) fnNames() []string {
	out := make([]string, 0, len(e.known))
	for fn := range e.known {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

func setOf(items []string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, s := range items {
		m[s] = true
	}
	return m
}

func intersectInto(dst map[string]bool, src map[string]bool) bool {
	changed := false
	for g := range dst {
		if !src[g] {
			delete(dst, g)
			changed = true
		}
	}
	return changed
}

// solveEffectiveGuards runs the decreasing fixpoint for eff. Functions with
// no in-package callers are entry points and hold nothing on entry.
func (e *engine) solveEffectiveGuards() {
	all := map[string]bool{gofront.AtomicGuard: true}
	for _, g := range e.pkg.Guards {
		all[g] = true
	}
	hasCaller := map[string]bool{}
	for _, c := range e.pkg.Calls {
		if e.known[c.Callee] {
			hasCaller[c.Callee] = true
		}
	}
	for _, fn := range e.fnNames() {
		if hasCaller[fn] && fn != e.pkg.InitFn {
			cp := make(map[string]bool, len(all))
			for g := range all {
				cp[g] = true
			}
			e.eff[fn] = cp
		} else {
			e.eff[fn] = map[string]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range e.pkg.Calls {
			if !e.known[c.Callee] || c.Callee == e.pkg.InitFn {
				continue
			}
			avail := map[string]bool{}
			if !c.Go {
				avail = setOf(c.Held)
				for g := range e.eff[c.Caller] {
					avail[g] = true
				}
			}
			if intersectInto(e.eff[c.Callee], avail) {
				changed = true
			}
		}
	}
}

// solveContexts propagates thread contexts over the call graph.
func (e *engine) solveContexts() {
	called := map[string]bool{}
	for _, c := range e.pkg.Calls {
		if e.known[c.Callee] {
			called[c.Callee] = true
		}
	}
	for _, fn := range e.fnNames() {
		e.ctxs[fn] = map[string]bool{}
		if !called[fn] {
			e.roots[fn] = true
			e.ctxs[fn]["main"] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range e.pkg.Calls {
			if !e.known[c.Callee] {
				continue
			}
			dst := e.ctxs[c.Callee]
			if c.Go {
				p := e.pkg.Position(c.Pos)
				ctx := fmt.Sprintf("go %s:%d", p.Filename, p.Line)
				if !dst[ctx] {
					dst[ctx] = true
					changed = true
				}
				continue
			}
			for ctx := range e.ctxs[c.Caller] {
				if !dst[ctx] {
					dst[ctx] = true
					changed = true
				}
			}
		}
	}
}

// solveConcurrencyWindows computes, per function, where concurrency begins
// (the first spawn-reaching statement) and where it provably ends (the
// earliest wg.Wait barrier after the last spawn), then identifies the
// single-driver shape where those windows make accesses exempt.
func (e *engine) solveConcurrencyWindows() {
	for changed := true; changed; {
		changed = false
		for _, c := range e.pkg.Calls {
			if e.transSpawn[c.Caller] {
				continue
			}
			if c.Go || (e.known[c.Callee] && e.transSpawn[c.Callee]) {
				e.transSpawn[c.Caller] = true
				changed = true
			}
		}
	}
	for _, c := range e.pkg.Calls {
		conc := c.Go || (e.known[c.Callee] && e.transSpawn[c.Callee])
		if !conc {
			continue
		}
		if cur, ok := e.firstConc[c.Caller]; !ok || c.Pos < cur {
			e.firstConc[c.Caller] = c.Pos
		}
	}
	lastSpawn := map[string]token.Pos{}
	for _, c := range e.pkg.Calls {
		if c.Go && c.Pos > lastSpawn[c.Caller] {
			lastSpawn[c.Caller] = c.Pos
		}
	}
	for _, b := range e.pkg.Barriers {
		if b.Pos <= lastSpawn[b.Fn] {
			continue // a later spawn races past this Wait
		}
		if cur, ok := e.joinPos[b.Fn]; !ok || b.Pos < cur {
			e.joinPos[b.Fn] = b.Pos
		}
	}
	var spawningRoots []string
	for fn := range e.roots {
		if e.transSpawn[fn] {
			spawningRoots = append(spawningRoots, fn)
		}
	}
	if len(spawningRoots) == 1 {
		e.singleDriver = spawningRoots[0]
	}
}

// mainOnly reports that fn executes in the main context exclusively.
func (e *engine) mainOnly(fn string) bool {
	c := e.ctxs[fn]
	return len(c) == 1 && c["main"]
}

// exempt reports that the access happens while the program is provably
// single-threaded: package initialization, the single driver before its
// first spawn-reaching statement, or the single driver after all spawned
// work has been joined.
func (e *engine) exempt(a gofront.Access) bool {
	if e.pkg.InitFn != "" && a.Fn == e.pkg.InitFn {
		return true
	}
	if a.Fn != e.singleDriver || !e.mainOnly(a.Fn) {
		return false
	}
	if fc, ok := e.firstConc[a.Fn]; ok && a.Pos < fc {
		return true
	}
	if jp, ok := e.joinPos[a.Fn]; ok && a.Pos > jp {
		return true
	}
	return false
}

// heldAt is the guard set in force at an access: the locks lexically held
// plus the guards every caller chain is known to hold.
func (e *engine) heldAt(a gofront.Access) map[string]bool {
	gs := setOf(a.Held)
	for g := range e.eff[a.Fn] {
		gs[g] = true
	}
	return gs
}

// checkSlots runs the per-slot consistency check and returns the set of
// section indices implicated by the diagnostics (for the suggestion pass).
func (e *engine) checkSlots(rep *Report) map[int]bool {
	bySlot := map[string][]int{}
	for i, a := range e.pkg.Accesses {
		bySlot[a.Slot] = append(bySlot[a.Slot], i)
	}
	slots := make([]string, 0, len(bySlot))
	for s := range bySlot {
		slots = append(slots, s)
	}
	sort.Strings(slots)

	implicated := map[int]bool{}
	seen := map[string]bool{}
	for _, slot := range slots {
		var live []int
		writes := 0
		ctxSet := map[string]bool{}
		for _, i := range bySlot[slot] {
			a := e.pkg.Accesses[i]
			if e.exempt(a) {
				continue
			}
			live = append(live, i)
			if a.Write {
				writes++
			}
			for ctx := range e.ctxs[a.Fn] {
				ctxSet[ctx] = true
			}
		}
		// Only slots reachable from two thread contexts with at least one
		// write can race; everything else is vacuously consistent.
		if len(ctxSet) < 2 || writes == 0 {
			continue
		}
		held := make([]map[string]bool, len(live))
		common := map[string]bool{}
		count := map[string]int{}
		for k, i := range live {
			held[k] = e.heldAt(e.pkg.Accesses[i])
			for g := range held[k] {
				count[g]++
				if k == 0 {
					common[g] = true
				}
			}
			if k > 0 {
				intersectInto(common, held[k])
			}
		}
		if len(common) > 0 {
			continue // one lock covers every access: consistent
		}
		// The dominant guard: the lock most sites agree on.
		dominant, dn := "", 0
		for _, g := range sortedKeysByCount(count) {
			if count[g] > dn {
				dominant, dn = g, count[g]
			}
		}
		for k, i := range live {
			a := e.pkg.Accesses[i]
			if dominant != "" && held[k][dominant] {
				continue
			}
			verb := "read"
			if a.Write {
				verb = "write"
			}
			var d Diagnostic
			d.Pos = e.pkg.Position(a.Pos)
			if len(held[k]) == 0 {
				d.Kind = "unguarded"
				if dominant == "" {
					d.Msg = fmt.Sprintf("unguarded %s of %s: accessed from %d goroutine contexts with no lock held anywhere",
						verb, slot, len(ctxSet))
				} else {
					d.Msg = fmt.Sprintf("unguarded %s of %s: no lock is held on this path, but %s is guarded by %s at %d of %d access sites",
						verb, slot, slot, dominant, dn, len(live))
				}
			} else {
				d.Kind = "inconsistent"
				d.Msg = fmt.Sprintf("inconsistent guard for %s: %s held at this %s, but %s is guarded by %s at %d of %d access sites",
					slot, joinGuards(held[k]), verb, slot, dominant, dn, len(live))
			}
			key := d.Kind + "|" + slot + "|" + d.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			rep.Diags = append(rep.Diags, d)
			for _, j := range bySlot[slot] {
				if sec := e.pkg.Accesses[j].Section; sec >= 0 {
					implicated[sec] = true
				}
			}
		}
	}
	return implicated
}

// sortedKeysByCount returns guards sorted by descending count then name, so
// the dominant-guard choice is deterministic.
func sortedKeysByCount(count map[string]int) []string {
	out := make([]string, 0, len(count))
	for g := range count {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if count[out[i]] != count[out[j]] {
			return count[out[i]] > count[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// checkLockOrder builds the acquisition-order graph (held set → newly
// acquired guard, per recovered section) and reports its cycles through the
// auditor's SCC detector.
func (e *engine) checkLockOrder(rep *Report, implicated map[int]bool) {
	edges := map[string]map[string]bool{}
	type edge struct{ from, to string }
	edgePos := map[edge]token.Pos{}
	edgeSec := map[edge]int{}
	for idx, sec := range e.pkg.Sections {
		g := sec.Guard
		if g == "" {
			g = gofront.AtomicGuard
		}
		outer := setOf(sec.Held)
		for h := range e.eff[sec.Fn] {
			outer[h] = true
		}
		for h := range outer {
			if h == g {
				continue
			}
			if edges[h] == nil {
				edges[h] = map[string]bool{}
			}
			edges[h][g] = true
			ed := edge{h, g}
			if cur, ok := edgePos[ed]; !ok || sec.Pos < cur {
				edgePos[ed] = sec.Pos
				edgeSec[ed] = idx
			}
		}
	}
	for _, comp := range audit.FindCycles(edges) {
		inComp := setOf(comp)
		var cycleEdges []edge
		for _, a := range comp {
			for b := range edges[a] {
				if inComp[b] {
					cycleEdges = append(cycleEdges, edge{a, b})
				}
			}
		}
		sort.Slice(cycleEdges, func(i, j int) bool {
			return edgePos[cycleEdges[i]] < edgePos[cycleEdges[j]]
		})
		if len(cycleEdges) == 0 {
			continue
		}
		first := cycleEdges[0]
		var parts []string
		for _, ed := range cycleEdges[1:] {
			p := e.pkg.Position(edgePos[ed])
			parts = append(parts, fmt.Sprintf("%s before %s at %s:%d:%d", ed.from, ed.to, p.Filename, p.Line, p.Column))
		}
		msg := fmt.Sprintf("lock-order cycle among %s: %s is acquired before %s here",
			joinGuards(inComp), first.from, first.to)
		if len(parts) > 0 {
			msg += ", but " + strings.Join(parts, ", and ")
		}
		rep.Diags = append(rep.Diags, Diagnostic{
			Pos: e.pkg.Position(edgePos[first]), Kind: "lock-order", Msg: msg,
		})
		for _, ed := range cycleEdges {
			implicated[edgeSec[ed]] = true
		}
	}
}
