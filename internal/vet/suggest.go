package vet

// The suggestion pass: for every atomic section implicated by a diagnostic,
// run the paper's pipeline over the lowered minic program and attach a note
// with the lock plan the inference derives for that section, plus the
// auditor's footprint — concrete guidance on what the locking should be.

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/audit"
	"lockinfer/internal/gofront"
	"lockinfer/internal/pipeline"
)

func suggest(pkg *gofront.Package, implicated map[int]bool, rep *Report) {
	if len(implicated) == 0 {
		return
	}
	c, err := pipeline.Compile(pkg.Minic, pipeline.Options{Name: pkg.Name, Trace: pipeline.NewTrace()})
	if err != nil {
		// Partial lowerings can leave the minic uncompilable in principle;
		// the structural diagnostics stand on their own.
		return
	}
	plan := c.Plan()
	fp := audit.NewFootprinter(c.Program, c.Points, c.Andersen(), nil)

	secs := make([]int, 0, len(implicated))
	for i := range implicated {
		if i >= 0 && i < len(pkg.Sections) && i < len(c.Program.Sections) {
			secs = append(secs, i)
		}
	}
	sort.Ints(secs)
	for _, i := range secs {
		gsec := pkg.Sections[i]
		irSec := c.Program.Sections[i]
		set := plan[irSec.ID]
		planTxt := "the empty plan (it touches only section-local data)"
		if names := set.Strings(c.Program); len(names) > 0 {
			planTxt = "plan [" + strings.Join(names, " ") + "]"
		}
		foot := fp.Section(irSec)
		exempt := 0
		for _, ac := range foot {
			if ac.Exempt() {
				exempt++
			}
		}
		cells := fmt.Sprintf("%d cells", len(foot))
		if len(foot) == 1 {
			cells = "1 cell"
		}
		rep.Diags = append(rep.Diags, Diagnostic{
			Pos:  pkg.Position(gsec.Pos),
			Kind: "note",
			Msg: fmt.Sprintf("the inference derives %s for the atomic section in %s (footprint: %s, %d exempt)",
				planTxt, gsec.GoFunc, cells, exempt),
		})
	}
}
