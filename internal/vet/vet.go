// Package vet implements lockvet, a lock-consistency diagnostic pass over
// real Go packages lowered by internal/gofront. It reports four classes of
// defects:
//
//   - inconsistent: a shared slot is guarded by some mutex at most sites but
//     accessed under a different (non-empty) lock set elsewhere;
//   - unguarded: a slot shared between goroutine contexts (with at least one
//     write) is accessed with no lock held on some path;
//   - lock-order: the whole-program acquisition-order graph, built from the
//     recovered sections' held-set chains, has a cycle;
//   - note: for every section implicated by a diagnostic, the lock plan the
//     paper's inference would derive for it, plus its audit footprint — what
//     the tool suggests instead of the inconsistent hand-written locking.
//
// The analysis is deliberately a *vet*: a fast, mostly-syntactic pass over
// the gofront metadata (guard identities, held sets, spawn and barrier
// events), sharpened by an interprocedural effective-guard fixpoint and a
// thread-context reachability pass. The expensive semantic machinery —
// points-to, backward inference, forward footprints — is only consulted to
// phrase the suggestions.
package vet

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"lockinfer/internal/gofront"
)

// Diagnostic is one finding, positioned in the original Go source.
type Diagnostic struct {
	Pos  token.Position
	Kind string // "inconsistent", "unguarded", "lock-order", "note", "subset"
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Kind, d.Msg)
}

// Report is the outcome of one package analysis.
type Report struct {
	// Diags are the findings, sorted by position (notes follow the
	// diagnostic that implicated their section).
	Diags []Diagnostic
	// Subset records the declarations gofront could not lower — the parts
	// of the package the analysis did not see. They are warnings, not
	// defects, and do not affect Failed().
	Subset []Diagnostic
}

// Failed reports whether the package has at least one defect (notes alone
// do not fail a package; they never appear without a parent diagnostic).
func (r *Report) Failed() bool {
	for _, d := range r.Diags {
		if d.Kind != "note" {
			return true
		}
	}
	return false
}

// Options configures Analyze.
type Options struct {
	// NoSuggest disables the inferred-plan notes (skips the pipeline run).
	NoSuggest bool
}

// Analyze runs the lock-consistency pass over a lowered package.
func Analyze(pkg *gofront.Package, opts Options) *Report {
	e := newEngine(pkg)
	e.solveEffectiveGuards()
	e.solveContexts()
	e.solveConcurrencyWindows()

	rep := &Report{}
	implicated := e.checkSlots(rep)
	e.checkLockOrder(rep, implicated)
	sortDiags(rep.Diags)
	if !opts.NoSuggest {
		n := len(rep.Diags)
		suggest(pkg, implicated, rep)
		sortDiags(rep.Diags[n:])
	}
	for _, de := range pkg.Errors {
		rep.Subset = append(rep.Subset, Diagnostic{
			Pos: de.Pos, Kind: "subset",
			Msg: fmt.Sprintf("%s not analyzed: %s", de.Decl, de.Msg),
		})
	}
	sortDiags(rep.Subset)
	return rep
}

// sortDiags orders by file, line, column, kind, message — the stable output
// contract the golden corpus pins.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Msg < b.Msg
	})
}

// joinGuards renders a guard set for messages.
func joinGuards(gs map[string]bool) string {
	if len(gs) == 0 {
		return "no lock"
	}
	out := make([]string, 0, len(gs))
	for g := range gs {
		out = append(out, g)
	}
	sort.Strings(out)
	return strings.Join(out, "+")
}
