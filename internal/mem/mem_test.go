package mem

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCellBasics(t *testing.T) {
	c := NewCell(41)
	if c.Load().(int) != 41 {
		t.Error("initial value lost")
	}
	c.Store("x")
	if c.Load().(string) != "x" {
		t.Error("store lost (and cells must accept changing types)")
	}
}

func TestIDsUniqueAndOrderable(t *testing.T) {
	const n = 1000
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				ids <- NewCell(nil).ID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate cell id %d", id)
		}
		seen[id] = true
	}
}

func TestMetaWord(t *testing.T) {
	c := NewCell(0)
	if MetaLocked(c.Meta()) {
		t.Fatal("fresh cell locked")
	}
	if !c.TryLockMeta() {
		t.Fatal("TryLockMeta failed on unlocked cell")
	}
	if c.TryLockMeta() {
		t.Fatal("TryLockMeta succeeded on locked cell")
	}
	if !MetaLocked(c.Meta()) {
		t.Fatal("lock bit missing")
	}
	c.UnlockMeta(7)
	if MetaLocked(c.Meta()) || MetaVersion(c.Meta()) != 7 {
		t.Fatalf("UnlockMeta: meta = %#x", c.Meta())
	}
	if !c.TryLockMeta() {
		t.Fatal("relock failed")
	}
	c.UnlockMetaSameVersion()
	if MetaLocked(c.Meta()) || MetaVersion(c.Meta()) != 7 {
		t.Fatalf("UnlockMetaSameVersion: meta = %#x", c.Meta())
	}
}

func TestTryLockMetaRace(t *testing.T) {
	c := NewCell(0)
	var wg sync.WaitGroup
	var wins atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if c.TryLockMeta() {
					wins.Add(1)
					c.UnlockMeta(MetaVersion(c.Meta()) + 1)
				}
			}
		}()
	}
	wg.Wait()
	if wins.Load() == 0 {
		t.Error("no goroutine ever acquired the meta lock")
	}
}
