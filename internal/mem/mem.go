// Package mem provides the shared mutable cells that the native workloads
// operate on. A Cell is one memory word holding an arbitrary value, with a
// TL2-style version/lock word so the same data structures can run under
// pessimistic lock runtimes (direct access, protected by inferred locks) and
// under the optimistic STM baseline (versioned access). Each cell carries a
// unique orderable identity used both for fine-grain lock descriptors and
// for the STM's ordered commit locking.
package mem

import "sync/atomic"

var nextID atomic.Uint64

// Cell is one shared memory word.
type Cell struct {
	id uint64
	// meta is version<<1 | lockbit, maintained by the STM.
	meta atomic.Uint64
	val  atomic.Pointer[any]
}

// NewCell allocates a cell holding v.
func NewCell(v any) *Cell {
	c := &Cell{id: nextID.Add(1)}
	c.val.Store(&v)
	return c
}

// ID returns the cell's unique orderable identity.
func (c *Cell) ID() uint64 { return c.id }

// Load reads the cell directly. Callers must hold a protecting lock (or be
// single-threaded); the STM uses TxLoad instead.
func (c *Cell) Load() any { return *c.val.Load() }

// Store writes the cell directly. Callers must hold a protecting lock.
func (c *Cell) Store(v any) { c.val.Store(&v) }

// Meta atomically reads the version/lock word.
func (c *Cell) Meta() uint64 { return c.meta.Load() }

// MetaLocked reports whether a meta word carries the lock bit.
func MetaLocked(m uint64) bool { return m&1 != 0 }

// MetaVersion extracts the version from a meta word.
func MetaVersion(m uint64) uint64 { return m >> 1 }

// TryLockMeta attempts to set the lock bit over an unlocked meta word; it
// reports success.
func (c *Cell) TryLockMeta() bool {
	m := c.meta.Load()
	if MetaLocked(m) {
		return false
	}
	return c.meta.CompareAndSwap(m, m|1)
}

// UnlockMeta clears the lock bit, installing the given version.
func (c *Cell) UnlockMeta(version uint64) { c.meta.Store(version << 1) }

// UnlockMetaSameVersion clears the lock bit, keeping the old version (used
// when releasing after an aborted commit).
func (c *Cell) UnlockMetaSameVersion() {
	m := c.meta.Load()
	c.meta.Store(m &^ 1)
}
