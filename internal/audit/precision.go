package audit

// Machine-readable precision report: how many locks each section acquires,
// how large its audited footprint is, and how much finer the
// inclusion-based points-to partition is than the unification-based one
// the locks are named after.

import (
	"sort"

	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// SectionPrecision summarizes one section.
type SectionPrecision struct {
	Section          int  `json:"section"`
	FineRO           int  `json:"fine_ro"`
	FineRW           int  `json:"fine_rw"`
	CoarseRO         int  `json:"coarse_ro"`
	CoarseRW         int  `json:"coarse_rw"`
	Global           bool `json:"global"`
	FootprintClasses int  `json:"footprint_classes"`
	AndersenLocs     int  `json:"andersen_locs"`
	Violations       int  `json:"violations"`
	Waste            int  `json:"waste"`
}

// Precision is the per-program precision record.
type Precision struct {
	Program  string             `json:"program"`
	Sections []SectionPrecision `json:"sections"`
	// SteensClasses counts the Σ≡ classes that hold pointed-to locations;
	// AndersenSubclasses counts the Andersen co-reachability components
	// inside them. The difference is the refinement the inclusion-based
	// analysis offers over the unification-based one.
	SteensClasses      int `json:"steens_classes"`
	AndersenSubclasses int `json:"andersen_subclasses"`
	RefinedClasses     int `json:"refined_classes"`
	TopSections        int `json:"top_sections"`
}

// Precision computes the precision record for the report.
func (r *Report) Precision(program string) Precision {
	p := Precision{Program: program}
	for _, sa := range r.Sections {
		sp := SectionPrecision{
			Section:    sa.Section.ID,
			Violations: len(sa.Violations),
			Waste:      len(sa.Waste),
			Global:     sa.Top,
		}
		for _, l := range sa.Plan.Sorted() {
			switch {
			case l.IsGlobal():
				sp.CoarseRW++
			case l.Fine && l.Eff == locks.RO:
				sp.FineRO++
			case l.Fine:
				sp.FineRW++
			case l.Eff == locks.RO:
				sp.CoarseRO++
			default:
				sp.CoarseRW++
			}
		}
		classes := map[steens.NodeID]bool{}
		andLocs := map[int]bool{}
		for _, a := range sa.Footprint {
			if a.Class >= 0 {
				classes[r.st.Rep(a.Class)] = true
			}
			for _, l := range a.AndLocs {
				andLocs[l] = true
			}
		}
		sp.FootprintClasses = len(classes)
		sp.AndersenLocs = len(andLocs)
		if sa.Top {
			p.TopSections++
		}
		p.Sections = append(p.Sections, sp)
	}
	sort.Slice(p.Sections, func(i, j int) bool { return p.Sections[i].Section < p.Sections[j].Section })
	for _, sub := range r.and.Refinement(r.st) {
		p.SteensClasses++
		p.AndersenSubclasses += sub
		if sub > 1 {
			p.RefinedClasses++
		}
	}
	return p
}
