package audit

// Static mutation checks: every plan mutant the dynamic conformance suite
// (internal/conform) catches by execution must also be caught by the
// auditor without running anything. Dropping locks must produce coverage
// violations; permuting acquisition order must produce order-lint
// violations.

import (
	"fmt"
	"strings"

	"lockinfer/internal/andersen"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// staticPlanFor lowers one section's lock set to its canonical static
// acquisition plan.
func staticPlanFor(set locks.Set) []mgl.PlanStep {
	return transform.StaticPlan(set)
}

// ReversePlan reverses a plan's steps — the same mutation the dynamic
// suite injects through mgl.Manager.PermutePlan.
func ReversePlan(_ int64, steps []mgl.PlanStep) []mgl.PlanStep {
	out := make([]mgl.PlanStep, len(steps))
	for i, s := range steps {
		out[len(steps)-1-i] = s
	}
	return out
}

// MutantsErr reports the mutants the auditor failed to flag.
type MutantsErr struct {
	Name   string
	Missed []string
}

func (e *MutantsErr) Error() string {
	return fmt.Sprintf("%s: audit missed mutants: %s", e.Name, strings.Join(e.Missed, ", "))
}

// CheckMutants verifies that the auditor statically flags the same plan
// mutants the dynamic conformance suite catches for this program:
//
//   - drop-all: every lock removed from every section (when the plan has
//     any lock to drop) must yield at least one soundness violation;
//   - permute: reversing each section's acquisition order (when some
//     section's static plan has more than one step) must yield at least
//     one order violation. The static applicability condition is a
//     superset of the dynamic one: the static plan's step count is an
//     upper bound on the runtime plan's, since distinct synthetic fine
//     addresses may collapse to one runtime cell but never split.
//
// The unmutated plan must audit clean first; a dirty baseline means the
// mutant signal is meaningless.
func CheckMutants(name string, prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, plan map[int]locks.Set, specs map[string]steens.ExternSpec) error {
	if and == nil {
		and = andersen.RunWithSpecs(prog, specs)
	}
	base := Run(prog, st, and, plan, Options{Specs: specs})
	if err := base.Err(); err != nil {
		return fmt.Errorf("%s: baseline not clean: %w", name, err)
	}
	var missed []string

	dropped := transform.DropLock(plan, "")
	ndropped := 0
	for id, set := range plan {
		ndropped += len(set) - len(dropped[id])
	}
	if ndropped > 0 {
		rep := Run(prog, st, and, dropped, Options{Specs: specs})
		if len(rep.Violations()) == 0 {
			missed = append(missed, "drop-all")
		}
	}

	permutable := false
	for _, sec := range prog.Sections {
		if len(staticPlanFor(plan[sec.ID])) > 1 {
			permutable = true
			break
		}
	}
	if permutable {
		rep := Run(prog, st, and, plan, Options{Specs: specs, Mutator: ReversePlan})
		if len(rep.OrderViolations) == 0 {
			missed = append(missed, "permute")
		}
	}

	if len(missed) > 0 {
		return &MutantsErr{Name: name, Missed: missed}
	}
	return nil
}
