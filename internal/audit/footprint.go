package audit

// Footprint computation: for every atomic section the auditor derives, by a
// forward interprocedural analysis that is independent of the lock
// inference, the set of abstract cells the section body may read or write —
// the call-graph closure over per-function effect summaries, each access
// labelled with its Σ≡ class, its Andersen location set, its effect, and an
// origin mask. The origin mask is the static counterpart of the checking
// interpreter's freshness exemption (§4.2): an access whose pointer can only
// carry values born inside the section (allocations, null, arithmetic)
// touches cells no other thread can reach, which is exactly the case where
// the inference's S_{x=new} and S_{x=null} rules drop locks.

import (
	"fmt"

	"lockinfer/internal/andersen"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// Origin mask bits. An access is exempt from the coverage check iff its
// mask contains neither originShared nor an unresolved parameter bit.
const (
	// originShared marks values that may name pre-section structure: global
	// and address-taken cells, loads of pre-existing pointers, returns of
	// external functions.
	originShared uint64 = 1 << 0
	// originFresh marks values born inside the analyzed range: allocations
	// and the non-pointer constants the S rules of Figure 4 drop locks for.
	originFresh uint64 = 1 << 1
)

// paramBit is the origin bit for formal parameter i of the function under
// summary; callers substitute it with the actual argument's origins. Beyond
// 62 parameters the encoding saturates to originShared (never exempt).
func paramBit(i int) uint64 {
	if i > 61 {
		return originShared
	}
	return 1 << (2 + uint(i))
}

// Access is one element of a section's read/write footprint.
type Access struct {
	// Class is the Σ≡ class of the touched cell; negative means the access
	// is only coverable by the global ⊤ lock (unknown callee, or an
	// external function without a specification).
	Class steens.NodeID
	Eff   locks.Eff
	// Origins is the origin mask of the pointer the access goes through
	// (originShared for direct variable-cell accesses).
	Origins uint64
	// AndLocs is the Andersen location set of the touched cell — the
	// inclusion-based refinement of Class. Nil for ⊤ accesses.
	AndLocs []int
	// Fn/Stmt/What locate one representative occurrence for reports.
	Fn   string
	Stmt int
	What string
}

// Exempt reports that the access cannot touch pre-section structure: every
// origin is section-local (fresh allocations or non-pointer values), so the
// §4.2 checker would skip it and the inference legitimately holds no lock
// for it.
func (ac Access) Exempt() bool {
	return ac.Origins&originShared == 0 && ac.Origins>>2 == 0
}

func (ac Access) key() string {
	return fmt.Sprintf("%d|%s|%d|%v", ac.Class, ac.Eff, ac.Origins, ac.AndLocs)
}

func (ac Access) String() string {
	cls := fmt.Sprintf("pts#%d", ac.Class)
	if ac.Class < 0 {
		cls = "⊤"
	}
	return fmt.Sprintf("%s/%s (%s at %s#%d)", cls, ac.Eff, ac.What, ac.Fn, ac.Stmt)
}

// fnSummary is the interprocedural effect summary of one function: every
// access its body (and transitively its callees) may perform, with
// parameter-relative origins, plus the origin mask of its return value.
type fnSummary struct {
	accesses map[string]Access
	ret      uint64
}

// analyzer computes footprints for one program.
type analyzer struct {
	prog  *ir.Program
	st    *steens.Analysis
	and   *andersen.Analysis
	specs map[string]steens.ExternSpec
	sums  map[*ir.Func]*fnSummary
	// externAcc caches the closure accesses of spec'd externals by name.
	externAcc map[string][]Access
}

func newAnalyzer(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, specs map[string]steens.ExternSpec) *analyzer {
	z := &analyzer{
		prog:      prog,
		st:        st,
		and:       and,
		specs:     specs,
		sums:      map[*ir.Func]*fnSummary{},
		externAcc: map[string][]Access{},
	}
	z.solveSummaries()
	return z
}

// solveSummaries iterates the per-function analyses to a fixpoint over the
// call graph (summaries grow monotonically; recursion converges).
func (z *analyzer) solveSummaries() {
	for _, f := range z.prog.Funcs {
		z.sums[f] = &fnSummary{accesses: map[string]Access{}, ret: 0}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range z.prog.Funcs {
			if f.External || len(f.Stmts) == 0 {
				continue
			}
			init := map[*ir.Var]uint64{}
			for i, p := range f.Params {
				init[p] = paramBit(i)
			}
			acc, states := z.flow(f, 0, len(f.Stmts)-1, init)
			sum := z.sums[f]
			ret := uint64(originShared)
			if f.RetVar != nil {
				if st := states[f.Exit]; st != nil {
					ret = lookup(st, f.RetVar)
				}
			}
			if ret&^sum.ret != 0 {
				sum.ret |= ret
				changed = true
			}
			for _, a := range acc {
				k := a.key()
				if _, ok := sum.accesses[k]; !ok {
					sum.accesses[k] = a
					changed = true
				}
			}
		}
	}
}

// sectionFootprint computes the deduplicated footprint of one section. All
// variables default to originShared at the section entry: whatever they
// hold was computed before the section began, hence names pre-existing
// structure.
func (z *analyzer) sectionFootprint(sec *ir.Section) []Access {
	acc, _ := z.flow(sec.Fn, sec.Begin, sec.End, map[*ir.Var]uint64{})
	seen := map[string]bool{}
	var out []Access
	for _, a := range acc {
		if k := a.key(); !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// lookup reads a variable's origin mask; variables with no recorded
// definition hold pre-range values (originShared).
func lookup(state map[*ir.Var]uint64, v *ir.Var) uint64 {
	if m, ok := state[v]; ok {
		return m
	}
	return originShared
}

// flow runs the forward origin dataflow over f.Stmts[lo..hi] (successor
// edges outside the range are ignored) and returns the accesses of every
// reachable statement plus the fixpoint in-states.
func (z *analyzer) flow(f *ir.Func, lo, hi int, init map[*ir.Var]uint64) ([]Access, []map[*ir.Var]uint64) {
	in := make([]map[*ir.Var]uint64, len(f.Stmts))
	in[lo] = init
	work := []int{lo}
	queued := map[int]bool{lo: true}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		out := z.transfer(f, f.Stmts[i], in[i])
		for _, j := range f.Stmts[i].Succs {
			if j < lo || j > hi {
				continue
			}
			if joinInto(&in[j], out) && !queued[j] {
				queued[j] = true
				work = append(work, j)
			}
		}
	}
	var acc []Access
	for i := lo; i <= hi; i++ {
		if in[i] == nil {
			continue // unreachable within the range: never executes
		}
		z.collect(f, i, f.Stmts[i], in[i], &acc)
	}
	return acc, in
}

// joinInto folds src into *dst (pointwise mask union), reporting change.
// Absent entries mean originShared, so joining an explicit mask into an
// absent entry must keep the shared bit.
func joinInto(dst *map[*ir.Var]uint64, src map[*ir.Var]uint64) bool {
	if *dst == nil {
		*dst = make(map[*ir.Var]uint64, len(src))
		for v, m := range src {
			(*dst)[v] = m
		}
		return true
	}
	changed := false
	for v, m := range src {
		old, ok := (*dst)[v]
		if !ok {
			old = originShared
		}
		if m|old != old || !ok {
			(*dst)[v] = m | old
			changed = true
		}
	}
	// A variable present in dst but absent from src holds originShared on
	// the src path.
	for v, old := range *dst {
		if _, ok := src[v]; !ok && old|originShared != old {
			(*dst)[v] = old | originShared
			changed = true
		}
	}
	return changed
}

// transfer applies one statement to the origin state.
func (z *analyzer) transfer(f *ir.Func, s *ir.Stmt, state map[*ir.Var]uint64) map[*ir.Var]uint64 {
	out := make(map[*ir.Var]uint64, len(state)+1)
	for v, m := range state {
		out[v] = m
	}
	switch s.Op {
	case ir.OpCopy, ir.OpField, ir.OpIndex, ir.OpLoad:
		// Values read through a fresh object stay fresh-owned: the path to
		// them did not exist at the section entry, mirroring the backward
		// S-rule chains that drop locks through x=new definitions.
		out[s.Dst] = lookup(state, s.Src)
	case ir.OpAddrOf:
		out[s.Dst] = originShared
	case ir.OpNew:
		out[s.Dst] = originFresh
	case ir.OpNull, ir.OpConst, ir.OpArith, ir.OpUnary:
		// Non-heap values: a dereference through them observes no
		// pre-statement location (the S_{x=null} family).
		out[s.Dst] = originFresh
	case ir.OpCall:
		if s.Dst == nil {
			break
		}
		callee := z.prog.Func(s.Callee)
		if callee == nil || callee.External {
			out[s.Dst] = originShared
		} else {
			out[s.Dst] = substOrigins(z.sums[callee].ret, callee, s, state)
		}
	}
	return out
}

// substOrigins rewrites a callee-relative origin mask into the caller's
// frame: parameter bits become the matching actual's origins.
func substOrigins(mask uint64, callee *ir.Func, call *ir.Stmt, state map[*ir.Var]uint64) uint64 {
	out := mask & (originShared | originFresh)
	for i := range callee.Params {
		if mask&paramBit(i) == 0 {
			continue
		}
		if i < len(call.Args) {
			out |= lookup(state, call.Args[i])
		} else {
			out |= originShared
		}
	}
	return out
}

// collect mirrors the G sets of Figure 4 (and the checking interpreter's
// access points) exactly: dereferences touch the pointee cell, shared
// variables (globals and address-taken locals) touch their own cell, field
// and index offsets compute addresses without touching the heap, and calls
// import the callee's summary.
func (z *analyzer) collect(f *ir.Func, i int, s *ir.Stmt, state map[*ir.Var]uint64, acc *[]Access) {
	add := func(class steens.NodeID, eff locks.Eff, origins uint64, and []int, what string) {
		*acc = append(*acc, Access{
			Class: class, Eff: eff, Origins: origins, AndLocs: and,
			Fn: f.Name, Stmt: i, What: what,
		})
	}
	varAccess := func(v *ir.Var, eff locks.Eff) {
		if v == nil || !(v.Global || v.AddrTaken) {
			return
		}
		add(z.st.VarCell(v), eff, originShared,
			z.and.Members(z.and.VarCell(v)), "var "+v.Name)
	}
	deref := func(v *ir.Var, eff locks.Eff) {
		add(z.st.Rep(z.st.Pointee(z.st.VarCell(v))), eff, lookup(state, v),
			z.and.Members(z.and.Pointee(z.and.VarCell(v))), "*"+v.Name)
	}
	read := func(v *ir.Var) { varAccess(v, locks.RO) }
	write := func(v *ir.Var) { varAccess(v, locks.RW) }
	switch s.Op {
	case ir.OpCopy:
		read(s.Src)
		write(s.Dst)
	case ir.OpAddrOf:
		write(s.Dst)
	case ir.OpLoad:
		deref(s.Src, locks.RO)
		read(s.Src)
		write(s.Dst)
	case ir.OpStore:
		deref(s.Dst, locks.RW)
		read(s.Dst)
		read(s.Src)
	case ir.OpField:
		read(s.Src)
		write(s.Dst)
	case ir.OpIndex:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpNew:
		if s.Src2 != nil {
			read(s.Src2)
		}
		write(s.Dst)
	case ir.OpNull, ir.OpConst:
		write(s.Dst)
	case ir.OpArith:
		read(s.Src)
		read(s.Src2)
		write(s.Dst)
	case ir.OpUnary:
		read(s.Src)
		write(s.Dst)
	case ir.OpBranch:
		read(s.Src)
	case ir.OpCall:
		for _, a := range s.Args {
			read(a)
		}
		if s.Dst != nil {
			write(s.Dst)
		}
		z.collectCall(f, i, s, state, acc)
	}
}

// collectCall imports a callee's effects at a call site.
func (z *analyzer) collectCall(f *ir.Func, i int, s *ir.Stmt, state map[*ir.Var]uint64, acc *[]Access) {
	top := func(what string) {
		*acc = append(*acc, Access{
			Class: -1, Eff: locks.RW, Origins: originShared,
			Fn: f.Name, Stmt: i, What: what,
		})
	}
	callee := z.prog.Func(s.Callee)
	if callee == nil {
		top("call " + s.Callee + " (unknown)")
		return
	}
	if callee.External {
		spec, ok := z.specs[s.Callee]
		if !ok {
			top("extern " + s.Callee + " (no spec)")
			return
		}
		for _, a := range z.externAccesses(s.Callee, spec) {
			a.Fn, a.Stmt = f.Name, i
			*acc = append(*acc, a)
		}
		return
	}
	for _, a := range z.sums[callee].accesses {
		a.Origins = substOrigins(a.Origins, callee, s, state)
		a.Fn, a.Stmt = f.Name, i
		a.What = s.Callee + ": " + a.What
		*acc = append(*acc, a)
	}
}

// externAccesses resolves a spec's root closures to accesses, cached by
// function name (closures are call-site independent).
func (z *analyzer) externAccesses(name string, spec steens.ExternSpec) []Access {
	if acc, ok := z.externAcc[name]; ok {
		return acc
	}
	var acc []Access
	closure := func(roots []string, eff locks.Eff) {
		for _, root := range roots {
			and := z.and.GlobalReach(z.prog, root)
			for _, c := range z.st.GlobalClosure(z.prog, root) {
				acc = append(acc, Access{
					Class: c, Eff: eff, Origins: originShared, AndLocs: and,
					What: "extern " + name + " reach(" + root + ")",
				})
			}
		}
	}
	closure(spec.Reads, locks.RO)
	closure(spec.Writes, locks.RW)
	z.externAcc[name] = acc
	return acc
}
