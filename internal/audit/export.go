package audit

// Exported entry points for external diagnostic tools (cmd/lockvet) and the
// profile-guided refinement pass (internal/refine): the footprint analyzer
// and the lock-order cycle detector, usable without running a full Run()
// audit. Refine bases its split-soundness proofs on the same footprints the
// auditor later re-checks (shard.go), so a refined plan is audited by the
// very analysis that justified it.

import (
	"sort"

	"lockinfer/internal/andersen"
	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// Footprinter exposes the auditor's forward effect analysis: the set of
// abstract cells each atomic section may touch, independent of the lock
// inference. Construct once per program; Section queries are then cheap
// (computed on first use and cached).
type Footprinter struct {
	st  *steens.Analysis
	z   *analyzer
	fps map[int][]Access
}

// NewFootprinter solves the interprocedural effect summaries for prog.
// specs may be nil (externals then produce ⊤ accesses); and may be nil, in
// which case a fresh Andersen analysis is computed with specs.
func NewFootprinter(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, specs map[string]steens.ExternSpec) *Footprinter {
	if and == nil {
		and = andersen.RunWithSpecs(prog, specs)
	}
	return &Footprinter{
		st:  st,
		z:   newAnalyzer(prog, st, and, specs),
		fps: map[int][]Access{},
	}
}

// Section returns the deduplicated read/write footprint of sec. Each Access
// carries the function name and statement index of one representative
// occurrence, which callers can map back to source positions through the
// IR's statement table.
func (fp *Footprinter) Section(sec *ir.Section) []Access {
	acc, ok := fp.fps[sec.ID]
	if !ok {
		acc = fp.z.sectionFootprint(sec)
		fp.fps[sec.ID] = acc
	}
	return acc
}

// Footprint is Section under the name the refinement pass reads naturally.
func (fp *Footprinter) Footprint(sec *ir.Section) []Access { return fp.Section(sec) }

// Touches reports whether the section's non-exempt footprint reaches the
// class (Σ≡-rep normalized).
func (fp *Footprinter) Touches(sec *ir.Section, cls steens.NodeID) bool {
	rep := fp.st.Rep(cls)
	for _, a := range fp.Section(sec) {
		if a.Exempt() {
			continue
		}
		if a.Class >= 0 && fp.st.Rep(a.Class) == rep {
			return true
		}
	}
	return false
}

// ClassLocs restricts the section's non-exempt footprint to one class and
// returns the union of the matching accesses' Andersen location sets,
// sorted. ok is false when any matching access is unresolvable (an empty
// location set, or a ⊤ access that could reach the class): such a section
// has no provable slice of the partition, which disqualifies the class
// from splitting.
func (fp *Footprinter) ClassLocs(sec *ir.Section, cls steens.NodeID) (locs []int, ok bool) {
	rep := fp.st.Rep(cls)
	set := map[int]bool{}
	ok = true
	for _, a := range fp.Section(sec) {
		if a.Exempt() {
			continue
		}
		if a.Class < 0 {
			// A ⊤ access may touch any class, this one included.
			ok = false
			continue
		}
		if fp.st.Rep(a.Class) != rep {
			continue
		}
		if len(a.AndLocs) == 0 {
			ok = false
			continue
		}
		for _, l := range a.AndLocs {
			set[l] = true
		}
	}
	locs = make([]int, 0, len(set))
	for l := range set {
		locs = append(locs, l)
	}
	sort.Ints(locs)
	return locs, ok
}

// LocsOverlap reports whether two sorted location sets intersect.
func LocsOverlap(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// FindCycles returns the non-trivial strongly connected components of a
// lock-acquisition-order graph: edges[a][b] means some section acquires a
// before b. Each component is sorted for determinism, and components are
// returned in discovery order of Tarjan's algorithm over the sorted node
// list. The input graph is not modified.
func FindCycles(edges map[string]map[string]bool) [][]string {
	cp := make(map[string]map[string]bool, len(edges))
	for n, succ := range edges {
		inner := make(map[string]bool, len(succ))
		for s, v := range succ {
			inner[s] = v
		}
		cp[n] = inner
	}
	return findCycles(cp)
}
