package audit

// Exported entry points for external diagnostic tools (cmd/lockvet): the
// footprint analyzer and the lock-order cycle detector, usable without
// running a full Run() audit.

import (
	"lockinfer/internal/andersen"
	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// Footprinter exposes the auditor's forward effect analysis: the set of
// abstract cells each atomic section may touch, independent of the lock
// inference. Construct once per program; Section queries are then cheap.
type Footprinter struct {
	z *analyzer
}

// NewFootprinter solves the interprocedural effect summaries for prog.
// specs may be nil (externals then produce ⊤ accesses).
func NewFootprinter(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, specs map[string]steens.ExternSpec) *Footprinter {
	return &Footprinter{z: newAnalyzer(prog, st, and, specs)}
}

// Section returns the deduplicated read/write footprint of sec. Each Access
// carries the function name and statement index of one representative
// occurrence, which callers can map back to source positions through the
// IR's statement table.
func (fp *Footprinter) Section(sec *ir.Section) []Access {
	return fp.z.sectionFootprint(sec)
}

// FindCycles returns the non-trivial strongly connected components of a
// lock-acquisition-order graph: edges[a][b] means some section acquires a
// before b. Each component is sorted for determinism, and components are
// returned in discovery order of Tarjan's algorithm over the sorted node
// list. The input graph is not modified.
func FindCycles(edges map[string]map[string]bool) [][]string {
	cp := make(map[string]map[string]bool, len(edges))
	for n, succ := range edges {
		inner := make(map[string]bool, len(succ))
		for s, v := range succ {
			inner[s] = v
		}
		cp[n] = inner
	}
	return findCycles(cp)
}
