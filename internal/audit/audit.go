// Package audit is a translation validator for the lock inference: an
// independent static re-derivation of what each atomic section touches,
// checked against what the emitted plan protects. It shares no code with
// the backward dataflow of internal/infer — footprints come from a forward
// interprocedural effect analysis refined by an inclusion-based
// (Andersen-style) points-to analysis — so a bug in the inference's
// transfer functions shows up as a soundness violation here rather than
// silently shipping an under-locked plan. The auditor also lints the
// static lock-acquisition order (the whole-program analogue of the
// runtime's mgl.Watcher) and reports waste (locks protecting nothing the
// section touches) and ⊤ fallbacks.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/andersen"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
	"lockinfer/internal/steens"
)

// Options configures a run.
type Options struct {
	// Specs are the extern function specifications used when the plan was
	// inferred; the audit resolves the same roots through its own analyses.
	Specs map[string]steens.ExternSpec
	// Mutator, when set, permutes each section's static plan before the
	// order lint (mirrors mgl.Manager.PermutePlan; the session is the
	// section id). Coverage checking always uses the unmutated set — a
	// permutation changes order, not protection.
	Mutator func(section int64, steps []mgl.PlanStep) []mgl.PlanStep
}

// SectionAudit is the verdict for one atomic section.
type SectionAudit struct {
	Section *ir.Section
	// Plan is the section's inferred lock set as evaluated.
	Plan locks.Set
	// Footprint is the audited access set (deduplicated).
	Footprint []Access
	// Violations are non-exempt accesses no acquired lock covers — each one
	// is a potential data race in the transformed program.
	Violations []Access
	// Waste lists class locks whose class the footprint never touches.
	Waste []locks.Inferred
	// Top reports that the plan contains the global ⊤ lock.
	Top bool
	// Steps is the static acquisition plan (post-Mutator if one is set).
	Steps []mgl.PlanStep
}

// OrderViolation is a non-canonical adjacent pair in a section's static
// acquisition plan — the static analogue of mgl.Watcher's order check.
type OrderViolation struct {
	Section    int
	Prev, Next mgl.PlanStep
}

func (v OrderViolation) String() string {
	return fmt.Sprintf("section %d acquires %v before %v (non-canonical order)",
		v.Section, v.Prev, v.Next)
}

// Report is the audit outcome for one program.
type Report struct {
	Sections        []*SectionAudit
	OrderViolations []OrderViolation
	// OrderCycles are cycles in the whole-program static lock-order graph
	// (nodes are lock identities, edges are consecutive acquisitions): the
	// static Goodlock condition for deadlock freedom.
	OrderCycles [][]string
	// ShardViolations are failed split-lock side conditions (see shard.go):
	// a shard whose footprint-disjointness proof does not re-derive.
	ShardViolations []ShardViolation

	prog *ir.Program
	st   *steens.Analysis
	and  *andersen.Analysis
}

// Run audits a plan. st must be the analysis the plan's classes came from;
// and may be nil, in which case a fresh Andersen analysis is computed over
// prog with opts.Specs.
func Run(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, plan map[int]locks.Set, opts Options) *Report {
	if and == nil {
		and = andersen.RunWithSpecs(prog, opts.Specs)
	}
	fp := NewFootprinter(prog, st, and, opts.Specs)
	rep := &Report{prog: prog, st: st, and: and}
	for _, sec := range prog.Sections {
		set := plan[sec.ID]
		sa := &SectionAudit{Section: sec, Plan: set}
		sa.Footprint = fp.Footprint(sec)
		auditCoverage(st, set, sa)
		rep.Sections = append(rep.Sections, sa)
	}
	rep.checkShards(fp, plan)
	rep.lintOrder(plan, opts.Mutator)
	return rep
}

// auditCoverage evaluates the lock set down to denotations over Σ≡ class
// representatives and checks every footprint access against them.
func auditCoverage(st *steens.Analysis, set locks.Set, sa *SectionAudit) {
	var dens []locks.Denotation
	classLocks := map[steens.NodeID]locks.Inferred{}
	for _, l := range set.Sorted() {
		if l.IsGlobal() {
			sa.Top = true
			dens = append(dens, locks.DenoteAll(l.Eff))
			continue
		}
		rep := st.Rep(l.Class)
		// A fine lock's runtime denotation is one cell of its class; the
		// audit's location domain is classes, so crediting the whole class
		// is the sound direction for coverage (§3.2: the acquired fine lock
		// and the accessed cell agree on the class, and within a class the
		// inference only emits a fine lock for the very path it protects).
		dens = append(dens, locks.Denote(l.Eff, rep))
		if old, ok := classLocks[rep]; !ok || l.Eff == locks.RW && old.Eff == locks.RO {
			classLocks[rep] = l
		}
	}
	touched := map[steens.NodeID]bool{}
	for _, a := range sa.Footprint {
		if a.Class >= 0 {
			touched[st.Rep(a.Class)] = true
		}
		if a.Exempt() {
			continue
		}
		if !covered(st, dens, a) {
			sa.Violations = append(sa.Violations, a)
		}
	}
	// Waste: a class lock protecting nothing the section touches. ⊤ plans
	// are excused — the fallback is the point of ⊤ — and so is any plan
	// when a ⊤-requiring access exists (everything else is then shadowed).
	if !sa.Top {
		for rep, l := range classLocks {
			if !touched[rep] {
				sa.Waste = append(sa.Waste, l)
			}
		}
		sort.Slice(sa.Waste, func(i, j int) bool {
			return sa.Waste[i].Key() < sa.Waste[j].Key()
		})
	}
}

// covered reports whether any acquired denotation protects the access.
func covered(st *steens.Analysis, dens []locks.Denotation, a Access) bool {
	for _, d := range dens {
		if a.Class < 0 {
			// Only the full-domain lock can cover an unknown-callee access.
			if d.All && a.Eff.Leq(d.Eff) {
				return true
			}
			continue
		}
		if d.Covers(st.Rep(a.Class), a.Eff) {
			return true
		}
	}
	return false
}

// lintOrder checks each section's static plan for canonical order and
// builds the whole-program acquisition-order graph.
func (r *Report) lintOrder(plan map[int]locks.Set, mut func(int64, []mgl.PlanStep) []mgl.PlanStep) {
	edges := map[string]map[string]bool{}
	node := func(s mgl.PlanStep) string { return s.String() }
	for i, sec := range r.prog.Sections {
		steps := staticPlanFor(plan[sec.ID])
		if mut != nil {
			steps = mut(int64(sec.ID), steps)
		}
		r.Sections[i].Steps = steps
		for j := 1; j < len(steps); j++ {
			if mgl.StepLess(steps[j], steps[j-1]) {
				r.OrderViolations = append(r.OrderViolations, OrderViolation{
					Section: sec.ID, Prev: steps[j-1], Next: steps[j],
				})
			}
			a, b := node(steps[j-1]), node(steps[j])
			if a == b {
				continue
			}
			if edges[a] == nil {
				edges[a] = map[string]bool{}
			}
			edges[a][b] = true
		}
	}
	r.OrderCycles = findCycles(edges)
}

// findCycles returns the non-trivial strongly connected components of the
// order graph (Tarjan, iterative), each sorted for determinism.
func findCycles(edges map[string]map[string]bool) [][]string {
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	for _, succ := range edges {
		for n := range succ {
			if _, ok := edges[n]; !ok {
				edges[n] = nil
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var cycles [][]string

	type frame struct {
		n     string
		succs []string
		i     int
	}
	succsOf := func(n string) []string {
		out := make([]string, 0, len(edges[n]))
		for s := range edges[n] {
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{n: root, succs: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succs) {
				s := f.succs[f.i]
				f.i++
				if _, ok := index[s]; !ok {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{n: s, succs: succsOf(s)})
				} else if onStack[s] && index[s] < low[f.n] {
					low[f.n] = index[s]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[f.n] < low[p.n] {
					low[p.n] = low[f.n]
				}
			}
			if low[f.n] == index[f.n] {
				var comp []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == f.n {
						break
					}
				}
				if len(comp) > 1 || edges[f.n][f.n] {
					sort.Strings(comp)
					cycles = append(cycles, comp)
				}
			}
		}
	}
	return cycles
}

// Sound reports a fully clean audit: no uncovered access and no order
// defect anywhere.
func (r *Report) Sound() bool {
	for _, sa := range r.Sections {
		if len(sa.Violations) > 0 {
			return false
		}
	}
	return len(r.OrderViolations) == 0 && len(r.OrderCycles) == 0 && len(r.ShardViolations) == 0
}

// Violations flattens every section's uncovered accesses.
func (r *Report) Violations() []Access {
	var out []Access
	for _, sa := range r.Sections {
		out = append(out, sa.Violations...)
	}
	return out
}

// Err returns nil for a sound report, or one error naming every defect.
func (r *Report) Err() error {
	if r.Sound() {
		return nil
	}
	var b strings.Builder
	for _, sa := range r.Sections {
		for _, a := range sa.Violations {
			fmt.Fprintf(&b, "section %d: unprotected access %s\n", sa.Section.ID, a)
		}
	}
	for _, v := range r.OrderViolations {
		fmt.Fprintf(&b, "%s\n", v)
	}
	for _, v := range r.ShardViolations {
		fmt.Fprintf(&b, "shard violation: %s\n", v)
	}
	for _, c := range r.OrderCycles {
		fmt.Fprintf(&b, "static lock-order cycle: %s\n", strings.Join(c, " -> "))
	}
	return fmt.Errorf("audit failed:\n%s", strings.TrimRight(b.String(), "\n"))
}
