package audit

import (
	"testing"

	"lockinfer/internal/andersen"
	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// compile runs the full pipeline at k and returns everything the auditor
// needs.
func compile(t *testing.T, src string, k int, specs map[string]steens.ExternSpec) (*ir.Program, *steens.Analysis, map[int]locks.Set) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	st := steens.RunWithSpecs(prog, specs)
	eng := infer.New(prog, st, infer.Options{K: k, Specs: specs})
	return prog, st, transform.SectionLocks(eng.AnalyzeAll())
}

const accountsSrc = `
struct account { int balance; }
account* a1;
account* a2;
void init() {
  a1 = new account;
  a2 = new account;
}
void transfer(account* from, account* to, int amount) {
  atomic {
    if (from->balance >= amount) {
      from->balance = from->balance - amount;
      to->balance = to->balance + amount;
    }
  }
}
void total() {
  int t;
  atomic {
    t = a1->balance + a2->balance;
  }
}
`

// TestCleanAudit: an inferred plan audits with no violations, no waste, no
// order defects.
func TestCleanAudit(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	rep := Run(prog, st, nil, plan, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("clean program failed audit: %v", err)
	}
	for _, sa := range rep.Sections {
		if len(sa.Footprint) == 0 {
			t.Errorf("section %d has an empty footprint", sa.Section.ID)
		}
		if len(sa.Waste) > 0 {
			t.Errorf("section %d reports waste %v on an inferred plan", sa.Section.ID, sa.Waste)
		}
	}
}

// TestDropLockFlagged: removing every lock must surface at least one
// uncovered access per section that had locks.
func TestDropLockFlagged(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	dropped := transform.DropLock(plan, "")
	rep := Run(prog, st, nil, dropped, Options{})
	if len(rep.Violations()) == 0 {
		t.Fatal("audit did not flag the dropped locks")
	}
	for _, sa := range rep.Sections {
		if len(plan[sa.Section.ID]) > 0 && len(sa.Violations) == 0 {
			t.Errorf("section %d lost %d locks but shows no violation",
				sa.Section.ID, len(plan[sa.Section.ID]))
		}
	}
}

// TestDropSingleLockFlagged: dropping one named lock (not the whole plan)
// is also caught.
func TestDropSingleLockFlagged(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	var name string
	for _, set := range plan {
		for _, l := range set.Sorted() {
			name = l.String()
			break
		}
		if name != "" {
			break
		}
	}
	if name == "" {
		t.Fatal("no lock to drop")
	}
	dropped := transform.DropLock(plan, name)
	ndropped := 0
	for id := range plan {
		ndropped += len(plan[id]) - len(dropped[id])
	}
	if ndropped == 0 {
		t.Fatalf("DropLock(%q) removed nothing", name)
	}
	rep := Run(prog, st, nil, dropped, Options{})
	if len(rep.Violations()) == 0 {
		t.Fatalf("audit did not flag dropping %q", name)
	}
}

// TestReverseMutatorFlagged: reversing a multi-step acquisition plan must
// produce order violations (and, with more than one distinct lock pair, a
// cycle check exercised by the cross-program graph).
func TestReverseMutatorFlagged(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	base := Run(prog, st, nil, plan, Options{})
	if !base.Sound() {
		t.Fatal("baseline not clean")
	}
	rep := Run(prog, st, nil, plan, Options{Mutator: ReversePlan})
	if len(rep.OrderViolations) == 0 {
		t.Fatal("reversed plans produced no order violations")
	}
	if rep.Sound() {
		t.Fatal("report with order violations claims soundness")
	}
	// Coverage is order-independent: reversal must not invent access
	// violations.
	if len(rep.Violations()) != 0 {
		t.Fatalf("reversal changed coverage: %v", rep.Violations())
	}
}

// TestCheckMutants: the static mutant checker passes on a healthy
// program/plan pair.
func TestCheckMutants(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	if err := CheckMutants("accounts", prog, st, nil, plan, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFreshnessExemption: a section touching only memory it allocates needs
// (and the inference grants) no locks; the audit must agree via the origin
// mask, not report violations.
func TestFreshnessExemption(t *testing.T) {
	src := `
struct node { int v; node* next; }
void f() {
  atomic {
    node* n = new node;
    n->v = 1;
    node* m = new node;
    m->next = n;
  }
}
`
	prog, st, plan := compile(t, src, 3, nil)
	rep := Run(prog, st, nil, plan, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("fresh-only section failed audit: %v", err)
	}
	sa := rep.Sections[0]
	for _, a := range sa.Footprint {
		if a.Class >= 0 && !a.Exempt() && len(sa.Plan) == 0 {
			t.Errorf("non-exempt access %s with an empty plan escaped the checker", a)
		}
	}
}

// TestExternSpecCovered: a spec'd external call inside a section is covered
// by the inferred coarse locks over the spec closure.
func TestExternSpecCovered(t *testing.T) {
	src := `
struct node { node* next; int v; }
node* pool;
int take();
void init() { pool = new node; }
void f() {
  atomic {
    int x = take();
  }
}
`
	specs := map[string]steens.ExternSpec{
		"take": {Reads: []string{"pool"}, Writes: []string{"pool"}},
	}
	prog, st, plan := compile(t, src, 3, specs)
	rep := Run(prog, st, nil, plan, Options{Specs: specs})
	if err := rep.Err(); err != nil {
		t.Fatalf("spec'd extern failed audit: %v", err)
	}
	if rep.Sections[0].Top {
		t.Error("spec'd extern escalated to the global lock")
	}
}

// TestUnknownExternTop: an external call without a spec forces the global
// lock; the audit models it as a ⊤-only access and the plan covers it.
func TestUnknownExternTop(t *testing.T) {
	src := `
int mystery();
void f() {
  atomic {
    int x = mystery();
  }
}
`
	prog, st, plan := compile(t, src, 3, nil)
	rep := Run(prog, st, nil, plan, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("unknown extern failed audit: %v", err)
	}
	if !rep.Sections[0].Top {
		t.Error("plan for an unknown extern does not hold the global lock")
	}
	// Dropping the global lock must be a violation: the ⊤ access is only
	// coverable by ⊤.
	dropped := transform.DropLock(plan, "")
	rep2 := Run(prog, st, nil, dropped, Options{})
	if len(rep2.Violations()) == 0 {
		t.Error("dropping the global lock not flagged")
	}
}

// TestWasteDetection: a lock over a class the section never touches is
// reported as waste without making the report unsound.
func TestWasteDetection(t *testing.T) {
	src := `
int a; int b;
void f() {
  atomic {
    a = a + 1;
  }
}
`
	prog, st, plan := compile(t, src, 3, nil)
	// Plant a spurious coarse lock on b's class.
	bClass := st.VarCell(prog.Global("b"))
	for id := range plan {
		plan[id].Add(locks.CoarseLock(bClass, locks.RW))
	}
	rep := Run(prog, st, nil, plan, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("extra lock made the audit unsound: %v", err)
	}
	waste := 0
	for _, sa := range rep.Sections {
		waste += len(sa.Waste)
	}
	if waste == 0 {
		t.Error("spurious lock on an untouched class not reported as waste")
	}
}

// TestPrecisionReport: the machine-readable report carries the section
// population and the refinement counters.
func TestPrecisionReport(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	rep := Run(prog, st, nil, plan, Options{})
	p := rep.Precision("accounts")
	if p.Program != "accounts" || len(p.Sections) != 2 {
		t.Fatalf("precision = %+v, want 2 sections", p)
	}
	for _, sp := range p.Sections {
		if sp.FootprintClasses == 0 {
			t.Errorf("section %d records no footprint classes", sp.Section)
		}
		if sp.Violations != 0 || sp.Waste != 0 {
			t.Errorf("section %d records defects on a clean plan: %+v", sp.Section, sp)
		}
	}
	if p.SteensClasses == 0 || p.AndersenSubclasses < p.SteensClasses {
		t.Errorf("refinement counters inconsistent: %+v", p)
	}
}

// TestAndersenOracleInInfer: swapping the inclusion-based analysis into the
// inference's store-transfer oracle yields a plan that still audits clean —
// the tentpole integration point.
func TestAndersenOracleInInfer(t *testing.T) {
	for _, src := range []string{accountsSrc, `
struct node { node* next; int v; }
node* head;
void init() { head = new node; }
void f(node* n) {
  atomic {
    n->next = head;
    head = n;
  }
}
void worker(int k) {
  node* mine = new node;
  f(mine);
}
`} {
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatal(err)
		}
		st := steens.Run(prog)
		and := andersen.Run(prog)
		eng := infer.New(prog, st, infer.Options{K: 3, Aliases: and})
		plan := transform.SectionLocks(eng.AnalyzeAll())
		rep := Run(prog, st, and, plan, Options{})
		if err := rep.Err(); err != nil {
			t.Fatalf("andersen-oracle plan failed audit: %v", err)
		}
	}
}
