package audit

// In-package coverage of the exported analysis surface (export.go): the
// standalone Footprinter, the disjointness primitives the refinement pass
// builds its split proofs on, and the cycle detector — plus the report and
// violation stringers the cmd tools print.

import (
	"reflect"
	"strings"
	"testing"

	"lockinfer/internal/andersen"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

const disjointSrc = `
int x;
int y;
void fx() { atomic { x = x + 1; } }
void fy() { atomic { y = y + 1; } }
`

func TestFootprinterDisjointness(t *testing.T) {
	prog, st, _ := compile(t, disjointSrc, 3, nil)
	// nil Andersen: the footprinter computes its own.
	fp := NewFootprinter(prog, st, nil, nil)
	if len(prog.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(prog.Sections))
	}
	secX, secY := prog.Sections[0], prog.Sections[1]

	accX := fp.Section(secX)
	if len(accX) == 0 {
		t.Fatal("empty footprint for fx's section")
	}
	if got := fp.Footprint(secX); !reflect.DeepEqual(got, accX) {
		t.Error("Footprint and Section disagree")
	}
	clsX := accX[0].Class
	if clsX < 0 {
		t.Fatalf("fx's access did not resolve to a class: %v", accX[0])
	}
	if !fp.Touches(secX, clsX) {
		t.Errorf("fx's section does not touch its own class pts#%d", clsX)
	}
	if fp.Touches(secY, clsX) {
		t.Errorf("fy's section touches fx's class pts#%d", clsX)
	}

	locsX, ok := fp.ClassLocs(secX, clsX)
	if !ok || len(locsX) == 0 {
		t.Fatalf("ClassLocs(fx, pts#%d) = %v, %v; want resolvable and non-empty", clsX, locsX, ok)
	}
	clsY := fp.Section(secY)[0].Class
	locsY, ok := fp.ClassLocs(secY, clsY)
	if !ok || len(locsY) == 0 {
		t.Fatalf("ClassLocs(fy, pts#%d) = %v, %v; want resolvable and non-empty", clsY, locsY, ok)
	}
	if LocsOverlap(locsX, locsY) {
		t.Errorf("disjoint sections' location sets overlap: %v vs %v", locsX, locsY)
	}
	if !LocsOverlap(locsX, locsX) {
		t.Error("a location set does not overlap itself")
	}
	if LocsOverlap(nil, locsY) {
		t.Error("empty set overlaps")
	}
}

// TestFootprinterTopDisqualifies: a section with an unknown extern call has
// a ⊤ access, so no class slice of it is provable.
func TestFootprinterTopDisqualifies(t *testing.T) {
	src := `
int x;
void mystery();
void f() { atomic { mystery(); x = 1; } }
`
	prog, st, _ := compile(t, src, 3, nil)
	fp := NewFootprinter(prog, st, andersen.Run(prog), nil)
	sec := prog.Sections[0]
	cls := steens.NodeID(-1)
	for _, a := range fp.Section(sec) {
		if a.Class >= 0 {
			cls = a.Class
		}
	}
	if cls < 0 {
		t.Fatalf("no classed access in footprint %v", fp.Section(sec))
	}
	if _, ok := fp.ClassLocs(sec, cls); ok {
		t.Error("ClassLocs proved a slice of a section with a ⊤ access")
	}
}

func TestFindCycles(t *testing.T) {
	edges := map[string]map[string]bool{
		"a": {"b": true},
		"b": {"a": true},
		"c": {"d": true},
	}
	cycles := FindCycles(edges)
	if len(cycles) != 1 || !reflect.DeepEqual(cycles[0], []string{"a", "b"}) {
		t.Errorf("FindCycles = %v, want [[a b]]", cycles)
	}
	// The input graph is untouched (FindCycles copies before Tarjan).
	if !reflect.DeepEqual(edges["a"], map[string]bool{"b": true}) || len(edges["c"]) != 1 {
		t.Errorf("FindCycles mutated its input: %v", edges)
	}
	if got := FindCycles(nil); len(got) != 0 {
		t.Errorf("FindCycles(nil) = %v", got)
	}
}

// TestReportErrNamesDefects: an unsound report's Err names every defect
// class with the stringers the cmd tools print.
func TestReportErrNamesDefects(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	rep := Run(prog, st, nil, plan, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("clean plan audits unsound: %v", err)
	}
	dropped := transform.DropLock(plan, "")
	rep = Run(prog, st, nil, dropped, Options{})
	err := rep.Err()
	if err == nil {
		t.Fatal("dropped-locks plan audits sound")
	}
	if !strings.Contains(err.Error(), "unprotected access") {
		t.Errorf("Err does not name the unprotected accesses: %v", err)
	}
	if !strings.Contains(err.Error(), "pts#") && !strings.Contains(err.Error(), "⊤") {
		t.Errorf("Err does not render the access class: %v", err)
	}
}

func TestViolationStringers(t *testing.T) {
	ov := OrderViolation{Section: 3}
	if s := ov.String(); !strings.Contains(s, "section 3") || !strings.Contains(s, "non-canonical") {
		t.Errorf("OrderViolation.String() = %q", s)
	}
	sv := ShardViolation{Class: 7, Section: 1, Other: -1, Reason: "unprovable"}
	if s := sv.String(); !strings.Contains(s, "section 1") || !strings.Contains(s, "pts#7") {
		t.Errorf("single-section ShardViolation.String() = %q", s)
	}
	sv.Other = 2
	if s := sv.String(); !strings.Contains(s, "sections 1 and 2") {
		t.Errorf("pairwise ShardViolation.String() = %q", s)
	}
	me := &MutantsErr{Name: "prog", Missed: []string{"drop-all"}}
	if s := me.Error(); !strings.Contains(s, "prog") || !strings.Contains(s, "drop-all") {
		t.Errorf("MutantsErr.Error() = %q", s)
	}
}
