package audit_test

import (
	"testing"

	"lockinfer/internal/audit"
	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/transform"

	"lockinfer/internal/steens"
)

// FuzzAudit is the no-false-positives property as a fuzz target: for any
// program the front end accepts, the plan the inference produces must audit
// clean — zero soundness violations, zero order defects. Any counterexample
// is either an inference bug (an access the backward analysis misses) or an
// audit bug (a footprint the forward analysis over-approximates past the
// plan); both are real defects worth a minimized reproducer.
func FuzzAudit(f *testing.F) {
	for _, p := range append(progs.All(), progs.Examples()...) {
		f.Add(p.Source())
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}))
	}
	f.Add("int g; void f() { atomic { g = g + 1; } }")
	f.Add("struct n { int v; n *next; } n* h; void w(int k) { atomic { h->v = k; } }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		ast, err := lang.Parse(src)
		if err != nil {
			return
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			return
		}
		if len(prog.Sections) == 0 {
			return
		}
		st := steens.Run(prog)
		eng := infer.New(prog, st, infer.Options{K: 2})
		plan := transform.SectionLocks(eng.AnalyzeAll())
		rep := audit.Run(prog, st, nil, plan, audit.Options{})
		if err := rep.Err(); err != nil {
			t.Fatalf("inferred plan failed audit:\n%v\n--- program ---\n%s", err, src)
		}
	})
}
