package audit_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockinfer/internal/andersen"
	"lockinfer/internal/audit"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/oracle"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/steens"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestAndersenSubsetOfSteensgaard is the differential property over
// generated programs: on every cell pair at pointer depths 0–2, an
// Andersen may-alias implies a Steensgaard may-alias (inclusion refines
// unification, never contradicts it).
func TestAndersenSubsetOfSteensgaard(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed})
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := steens.Run(prog)
		and := andersen.Run(prog)
		var cells []*ir.Var
		cells = append(cells, prog.Globals...)
		for _, f := range prog.Funcs {
			cells = append(cells, f.Vars...)
		}
		for _, v1 := range cells {
			for _, v2 := range cells {
				n1, n2 := and.VarCell(v1), and.VarCell(v2)
				s1, s2 := st.VarCell(v1), st.VarCell(v2)
				for depth := 0; depth <= 2; depth++ {
					if and.MayAlias(n1, n2) && !st.MayAlias(s1, s2) {
						t.Fatalf("seed %d: andersen aliases %s~%s at depth %d, steens does not",
							seed, v1.Name, v2.Name, depth)
					}
					n1, n2 = and.Pointee(n1), and.Pointee(n2)
					s1, s2 = st.Pointee(s1), st.Pointee(s2)
				}
			}
		}
	}
}

// TestRefinementGolden pins the Steensgaard-vs-Andersen refinement counts
// over the progen sweep: a precision regression in either analysis (or in
// the counting itself) shows up as a golden diff. Regenerate with
// `go test ./internal/audit -run TestRefinementGolden -update`.
func TestRefinementGolden(t *testing.T) {
	var b strings.Builder
	for seed := int64(1); seed <= 20; seed++ {
		tg, err := oracle.FromProgen(seed, 2, 2, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		and := andersen.Run(tg.Prog)
		classes, subs, refined := 0, 0, 0
		for _, n := range and.Refinement(tg.Pts) {
			classes++
			subs += n
			if n > 1 {
				refined++
			}
		}
		fmt.Fprintf(&b, "seed=%d steens_classes=%d andersen_subclasses=%d refined=%d collapsed=%d\n",
			seed, classes, subs, refined, and.Collapsed())
	}
	got := b.String()
	golden := filepath.Join("testdata", "refinement.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("refinement counts drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestStaticMatchesDynamicOrderCheck cross-validates the two order
// checkers: the same plan-reversal fault must be flagged by the static
// lint and by the runtime Watcher on an actual execution.
func TestStaticMatchesDynamicOrderCheck(t *testing.T) {
	p, err := progs.Get("move")
	if err != nil {
		t.Fatal(err)
	}
	tg, err := oracle.FromCorpus(p, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srep := audit.Run(tg.Prog, tg.Pts, nil, tg.Plan, audit.Options{Mutator: audit.ReversePlan})
	if len(srep.OrderViolations) == 0 {
		t.Fatal("static lint did not flag the reversed plans")
	}
	tg.PlanMutator = audit.ReversePlan
	drep, err := tg.RunOnce(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(drep.OrderViolations) == 0 {
		t.Fatal("runtime watcher did not flag the reversed plans")
	}
}
