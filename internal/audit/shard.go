package audit

import (
	"fmt"
	"sort"

	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// Shard re-proof. A split-lock shard (locks.ShardLock) is a fine leaf in
// the runtime tree whose coverage nevertheless extends to its whole class:
// two sections holding different shards of one class run concurrently. That
// is sound only under the refinement pass's side conditions, which the
// auditor re-derives from its own footprints instead of trusting the
// refiner:
//
//  1. a section holds at most one shard of a class (two shards of the same
//     class in one plan protect nothing extra and signal a confused
//     rewrite);
//  2. no section holds a fine path lock on a split class — a path leaf and
//     a shard leaf are compatible under the class's IX, so the path lock
//     would not exclude the shard holders it may alias;
//  3. sections holding different shards of a class have disjoint,
//     fully-resolvable Andersen footprints within that class — the actual
//     disjointness proof.
//
// A plan that fails any condition gets ShardViolations and the report is
// unsound — this is exactly how the split-without-disjointness-proof
// mutant is flagged.

// ShardViolation is one failed shard side condition.
type ShardViolation struct {
	// Class is the split class (Σ≡-rep normalized).
	Class steens.NodeID
	// Section and Other are the offending section ids; Other is -1 for
	// single-section defects.
	Section, Other int
	Reason         string
}

func (v ShardViolation) String() string {
	if v.Other < 0 {
		return fmt.Sprintf("section %d: shard of pts#%d: %s", v.Section, v.Class, v.Reason)
	}
	return fmt.Sprintf("sections %d and %d: shards of pts#%d: %s", v.Section, v.Other, v.Class, v.Reason)
}

// checkShards re-proves every shard in the plan, appending violations to
// the report. fp shares the analyzer that computed the section footprints.
func (r *Report) checkShards(fp *Footprinter, plan map[int]locks.Set) {
	shardUses := map[steens.NodeID][]shardUse{}
	for _, sec := range r.prog.Sections {
		held := map[steens.NodeID]int{}
		for _, l := range plan[sec.ID].Sorted() {
			if !l.IsShard() {
				continue
			}
			rep := r.st.Rep(l.Class)
			if prev, ok := held[rep]; ok && prev != l.Shard {
				r.ShardViolations = append(r.ShardViolations, ShardViolation{
					Class: rep, Section: sec.ID, Other: -1,
					Reason: fmt.Sprintf("holds shards s%d and s%d of one class", prev, l.Shard),
				})
				continue
			}
			if _, ok := held[rep]; !ok {
				held[rep] = l.Shard
				shardUses[rep] = append(shardUses[rep], shardUse{sec: sec.ID, shard: l.Shard})
			}
		}
	}
	if len(shardUses) == 0 {
		return
	}
	// Condition 2: no path-fine locks on a split class, anywhere.
	for _, sec := range r.prog.Sections {
		for _, l := range plan[sec.ID].Sorted() {
			if !l.Fine {
				continue
			}
			rep := r.st.Rep(l.Class)
			if _, split := shardUses[rep]; split {
				r.ShardViolations = append(r.ShardViolations, ShardViolation{
					Class: rep, Section: sec.ID, Other: -1,
					Reason: fmt.Sprintf("path lock %s on a split class", l),
				})
			}
		}
	}
	// Condition 3: pairwise disjoint, resolvable footprints across shards.
	classes := make([]steens.NodeID, 0, len(shardUses))
	for cls := range shardUses {
		classes = append(classes, cls)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	secByID := map[int]*ir.Section{}
	for _, sec := range r.prog.Sections {
		secByID[sec.ID] = sec
	}
	for _, cls := range classes {
		uses := shardUses[cls]
		type secLocs struct {
			use  shardUse
			locs []int
			ok   bool
		}
		sls := make([]secLocs, len(uses))
		for i, u := range uses {
			locs, ok := fp.ClassLocs(secByID[u.sec], cls)
			sls[i] = secLocs{use: u, locs: locs, ok: ok}
			if !ok {
				r.ShardViolations = append(r.ShardViolations, ShardViolation{
					Class: cls, Section: u.sec, Other: -1,
					Reason: "footprint in the split class is not fully resolvable",
				})
			}
		}
		for i := 0; i < len(sls); i++ {
			for j := i + 1; j < len(sls); j++ {
				a, b := sls[i], sls[j]
				if a.use.shard == b.use.shard {
					continue // same shard: mutually exclusive at runtime
				}
				if !a.ok || !b.ok {
					continue // already reported above
				}
				if LocsOverlap(a.locs, b.locs) {
					r.ShardViolations = append(r.ShardViolations, ShardViolation{
						Class: cls, Section: a.use.sec, Other: b.use.sec,
						Reason: fmt.Sprintf("overlapping footprints under different shards s%d/s%d", a.use.shard, b.use.shard),
					})
				}
			}
		}
	}
}

// shardUse records one section holding one shard of a class.
type shardUse struct {
	sec   int
	shard int
}
