package locks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/steens"
)

func TestEffLattice(t *testing.T) {
	if !RO.Leq(RW) || RW.Leq(RO) || !RO.Leq(RO) || !RW.Leq(RW) {
		t.Error("Leq wrong")
	}
	if RO.Join(RW) != RW || RO.Join(RO) != RO || RW.Meet(RO) != RO || RW.Meet(RW) != RW {
		t.Error("Join/Meet wrong")
	}
}

// TestConcreteSemantics reproduces the §3.2 example relations.
func TestConcreteSemantics(t *testing.T) {
	v, w := "v", "w"
	fineV := Denote(RW, v)
	fineVRead := Denote(RO, v)
	fineW := Denote(RW, w)
	global := DenoteAll(RW)
	readGlobal := DenoteAll(RO)

	if !Conflict(fineV, fineV) {
		t.Error("rw lock must conflict with itself")
	}
	if Conflict(fineVRead, fineVRead) {
		t.Error("two read locks never conflict")
	}
	if Conflict(fineV, fineW) {
		t.Error("disjoint locks never conflict")
	}
	if !Conflict(global, fineV) {
		t.Error("the global lock conflicts with any write lock's target")
	}
	if Conflict(readGlobal, fineVRead) {
		t.Error("read-global vs read-fine must not conflict")
	}
	if !Coarser(global, fineV) || Coarser(fineV, global) {
		t.Error("coarser-than wrong for the global lock")
	}
	if !Coarser(fineV, fineVRead) {
		t.Error("rw on v is coarser than ro on v")
	}
	// Pair locks: the meet of the components (§3.2 lock pairs).
	pair := Meet(global, fineVRead)
	if !pair.Covers(v, RO) || pair.Covers(v, RW) || pair.Covers(w, RO) {
		t.Errorf("pair lock semantics wrong: %+v", pair)
	}
}

func TestDenotationLeqIsPartialOrder(t *testing.T) {
	locsets := [][]any{{}, {"a"}, {"b"}, {"a", "b"}}
	var all []Denotation
	for _, ls := range locsets {
		for _, e := range []Eff{RO, RW} {
			all = append(all, Denote(e, ls...))
		}
	}
	all = append(all, DenoteAll(RO), DenoteAll(RW))
	for _, a := range all {
		if !a.Leq(a) {
			t.Errorf("Leq not reflexive on %+v", a)
		}
		for _, b := range all {
			for _, c := range all {
				if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
					t.Errorf("Leq not transitive: %+v %+v %+v", a, b, c)
				}
			}
		}
	}
}

// buildScheme compiles a small program to obtain real vars/fields/points-to
// data for scheme tests.
func buildScheme(t *testing.T) (*ir.Program, *steens.Analysis, []*ir.Var, []ir.FieldID) {
	t.Helper()
	src := `
struct n { n* next; int* data; }
n* g;
void f(n* a, n* b, int* w) {
  n* x = a->next;
  b->data = w;
  g = b;
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	pts := steens.Run(prog)
	f := prog.Func("f")
	vars := append([]*ir.Var{}, f.Params...)
	vars = append(vars, prog.Globals...)
	fields := []ir.FieldID{prog.InternField("next"), prog.InternField("data")}
	return prog, pts, vars, fields
}

// schemeLaws checks the join-semilattice laws and operator totality for one
// scheme over a generated universe of locks.
func schemeLaws(t *testing.T, name string, s Scheme, vars []*ir.Var, fields []ir.FieldID) {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	genLock := func(depth int) Lock {
		l := s.Var(vars[r.Intn(len(vars))], Eff(r.Intn(2)))
		for i := 0; i < depth; i++ {
			if r.Intn(2) == 0 {
				l = s.Deref(l, Eff(r.Intn(2)))
			} else {
				l = s.Field(l, fields[r.Intn(len(fields))], Eff(r.Intn(2)))
			}
		}
		return l
	}
	var universe []Lock
	for i := 0; i < 40; i++ {
		universe = append(universe, genLock(r.Intn(4)))
	}
	universe = append(universe, s.Top())
	top := s.Top()
	for _, a := range universe {
		if !s.Leq(a, a) {
			t.Errorf("%s: Leq not reflexive on %s", name, a)
		}
		if !s.Leq(a, top) {
			t.Errorf("%s: %s not below ⊤", name, a)
		}
		for _, b := range universe {
			j := s.Join(a, b)
			if !s.Leq(a, j) || !s.Leq(b, j) {
				t.Errorf("%s: Join(%s,%s)=%s is not an upper bound", name, a, b, j)
			}
			if s.Join(b, a).Key() != j.Key() {
				t.Errorf("%s: Join not commutative on %s,%s", name, a, b)
			}
			if s.Leq(a, b) && s.Leq(b, a) && a.Key() != b.Key() {
				t.Errorf("%s: antisymmetry violated: %s vs %s", name, a, b)
			}
			for _, c := range universe {
				if s.Leq(a, b) && s.Leq(b, c) && !s.Leq(a, c) {
					t.Errorf("%s: transitivity violated", name)
				}
			}
		}
	}
}

func TestSchemeLaws(t *testing.T) {
	_, pts, vars, fields := buildScheme(t)
	schemes := map[string]Scheme{
		"Σk":     ExprScheme{K: 3},
		"Σ≡":     PointsScheme{A: pts},
		"Σε":     EffScheme{},
		"Σi":     FieldScheme{},
		"Σk×Σ≡":  Product{S1: ExprScheme{K: 3}, S2: PointsScheme{A: pts}},
		"(Σ×Σ)ε": Product{S1: Product{S1: ExprScheme{K: 2}, S2: PointsScheme{A: pts}}, S2: EffScheme{}},
	}
	for name, s := range schemes {
		schemeLaws(t, name, s, vars, fields)
	}
}

// TestKLimiting checks Σk's collapse to ⊤.
func TestKLimiting(t *testing.T) {
	_, _, vars, fields := buildScheme(t)
	s := ExprScheme{K: 2}
	l := s.Var(vars[0], RO) // length 1
	if l.(ExprLock).Top {
		t.Fatal("x̄ collapsed at k=2")
	}
	l = s.Deref(l, RO) // length 2
	if l.(ExprLock).Top {
		t.Fatal("*x̄ collapsed at k=2")
	}
	l2 := s.Field(l, fields[0], RO) // length 3 > 2
	if !l2.(ExprLock).Top {
		t.Error("length-3 expression survived k=2")
	}
	if got := s.Deref(l2, RO); !got.(ExprLock).Top {
		t.Error("⊤ not absorbing")
	}
}

// TestExprLockFor checks the §3.3 inductive construction against Σε: the
// final operation carries the requested effect, prefixes read-only.
func TestExprLockFor(t *testing.T) {
	_, _, vars, fields := buildScheme(t)
	p := VarPath(vars[0]).
		Append(PathOp{Kind: OpDeref}).
		Append(PathOp{Kind: OpField, Field: fields[0]})
	l := ExprLockFor(EffScheme{}, p, RW)
	if l.(EffLock).Eff != RW {
		t.Errorf("final effect lost: %s", l)
	}
	l = ExprLockFor(EffScheme{}, p, RO)
	if l.(EffLock).Eff != RO {
		t.Errorf("ro effect lost: %s", l)
	}
}

// TestPathPrinting checks the address-expression renderer.
func TestPathPrinting(t *testing.T) {
	prog, _, vars, fields := buildScheme(t)
	a := vars[0]
	name := func(f ir.FieldID) string { return prog.FieldName(f) }
	cases := []struct {
		path Path
		want string
	}{
		{VarPath(a), "&(a)"},
		{VarPath(a).Append(PathOp{Kind: OpDeref}), "&(*a)"},
		{VarPath(a).Append(PathOp{Kind: OpDeref}).Append(PathOp{Kind: OpField, Field: fields[0]}),
			"&(a->next)"},
		{VarPath(a).Append(PathOp{Kind: OpDeref}).Append(PathOp{Kind: OpField, Field: fields[0]}).
			Append(PathOp{Kind: OpDeref}), "&(*(a->next))"},
		{VarPath(a).Append(PathOp{Kind: OpDeref}).
			Append(PathOp{Kind: OpIndex, Index: IConstExpr(3)}), "&(a[3])"},
	}
	for _, c := range cases {
		if got := c.path.CellString(name); got != c.want {
			t.Errorf("CellString = %q, want %q", got, c.want)
		}
	}
}

// TestIExprOps checks the symbolic index expression helpers.
func TestIExprOps(t *testing.T) {
	_, _, vars, _ := buildScheme(t)
	v, w := vars[0], vars[1]
	e := IBinExpr(lang.BMod, IVarExpr(v), IConstExpr(16))
	if e.Size() != 3 {
		t.Errorf("Size = %d, want 3", e.Size())
	}
	if !e.Mentions(v) || e.Mentions(w) {
		t.Error("Mentions wrong")
	}
	sub := e.Subst(v, IVarExpr(w))
	if !sub.Mentions(w) || sub.Mentions(v) {
		t.Error("Subst wrong")
	}
	if e.Mentions(w) {
		t.Error("Subst mutated the original")
	}
	if e.Key() == sub.Key() {
		t.Error("keys should differ after substitution")
	}
	unchanged := e.Subst(w, IConstExpr(1))
	if unchanged != e {
		t.Error("no-op substitution should share the tree")
	}
}

// TestInferredOrder property-checks Less: irreflexive, antisymmetric, and
// consistent with Leq.
func TestInferredOrder(t *testing.T) {
	gen := func(seed int64) Inferred {
		r := rand.New(rand.NewSource(seed))
		switch r.Intn(4) {
		case 0:
			return GlobalLock()
		case 1:
			return CoarseLock(steens.NodeID(r.Intn(3)), Eff(r.Intn(2)))
		case 2:
			return ShardLock(steens.NodeID(r.Intn(3)), 1+r.Intn(3), Eff(r.Intn(2)))
		default:
			return FineLock(Path{}, steens.NodeID(r.Intn(3)), Eff(r.Intn(2)))
		}
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		if a.Less(a) || b.Less(b) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && !a.Leq(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestShardLocks pins the split-lock shard kind: identity, rendering, and
// its place in the tree order (a leaf below its class's coarse lock,
// sibling to every other shard and to path locks).
func TestShardLocks(t *testing.T) {
	s1 := ShardLock(3, 1, RW)
	s2 := ShardLock(3, 2, RW)
	s1ro := ShardLock(3, 1, RO)
	coarse := CoarseLock(3, RW)
	fine := FineLock(Path{}, 3, RW)

	if !s1.IsShard() || s1.IsGlobal() || coarse.IsShard() || fine.IsShard() {
		t.Fatalf("IsShard misclassifies")
	}
	if s1.Key() == s2.Key() || s1.Key() == coarse.Key() || s1.Key() == s1ro.Key() {
		t.Errorf("shard keys not distinct: %s %s %s %s", s1.Key(), s2.Key(), coarse.Key(), s1ro.Key())
	}
	if got := s2.String(); got != "pts#3.s2/rw" {
		t.Errorf("String = %q, want pts#3.s2/rw", got)
	}

	if !s1.Less(coarse) || !s1.Less(GlobalLock()) {
		t.Errorf("shard should sit below its coarse lock and the root")
	}
	if coarse.Less(s1) {
		t.Errorf("coarse lock must not sit below a shard")
	}
	if s1.Less(s2) || s2.Less(s1) {
		t.Errorf("sibling shards must be incomparable")
	}
	if fine.Less(s1) || s1.Less(fine) {
		t.Errorf("path locks and shards must be incomparable")
	}
	if !s1ro.Less(s1) || s1.Less(s1ro) {
		t.Errorf("same shard orders by effect")
	}
	if s1.Less(ShardLock(4, 1, RW)) {
		t.Errorf("shards of different classes must be incomparable")
	}

	// Minimize drops shards when their coarse lock is also held.
	m := NewSet(s1, s2, coarse).Minimize()
	if len(m) != 1 || !m.Has(coarse) {
		t.Errorf("Minimize(shards+coarse) = %v", m.Sorted())
	}

	// Sorted: coarse before its shards, shards numerically.
	got := NewSet(s2, coarse, s1, CoarseLock(2, RW)).Sorted()
	want := []string{"pts#2/rw", "pts#3/rw", "pts#3.s1/rw", "pts#3.s2/rw"}
	for i, l := range got {
		if l.String() != want[i] {
			t.Fatalf("Sorted[%d] = %s, want %s (full: %v)", i, l, want[i], got)
		}
	}
}

// TestSetMinimize checks redundancy elimination over random sets.
func TestSetMinimize(t *testing.T) {
	f := func(seeds []int64) bool {
		set := NewSet()
		for _, s := range seeds {
			r := rand.New(rand.NewSource(s))
			switch r.Intn(4) {
			case 0:
				set.Add(GlobalLock())
			case 1:
				set.Add(CoarseLock(steens.NodeID(r.Intn(3)), Eff(r.Intn(2))))
			case 2:
				set.Add(ShardLock(steens.NodeID(r.Intn(3)), 1+r.Intn(3), Eff(r.Intn(2))))
			default:
				set.Add(FineLock(Path{}, steens.NodeID(r.Intn(3)), Eff(r.Intn(2))))
			}
		}
		m := set.Minimize()
		// No survivor dominates another.
		for _, a := range m {
			for _, b := range m {
				if a.Less(b) {
					return false
				}
			}
		}
		// Every dropped lock is dominated by a survivor.
		for _, a := range set {
			if m.Has(a) {
				continue
			}
			dominated := false
			for _, b := range m {
				if a.Less(b) {
					dominated = true
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
