package locks

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// Lock is an abstract lock name drawn from some scheme's semilattice L.
// Locks are compared through their canonical Key.
type Lock interface {
	// Key returns a canonical identifier; two locks of the same scheme are
	// equal iff their keys are equal.
	Key() string
	String() string
}

// Scheme is an abstract lock scheme Σ = (L, ≤, ⊤, ⋅̄, +, ∗) as defined in
// §3.3 of the paper. All implemented instances are flow-insensitive, so the
// program-point parameter of the formal operators is omitted; the effect
// parameter is kept.
type Scheme interface {
	// Top returns the greatest lock ⊤, a global lock protecting (Loc, rw).
	Top() Lock
	// Var returns x̄ᵉ, a lock protecting the cell of variable x.
	Var(x *ir.Var, eff Eff) Lock
	// Field returns l +ᵉ f, a lock protecting the field-f offset of every
	// location protected by l.
	Field(l Lock, f ir.FieldID, eff Eff) Lock
	// Deref returns ∗ᵉ l, a lock protecting every location pointed to by a
	// location protected by l.
	Deref(l Lock, eff Eff) Lock
	// Leq reports a ≤ b (b is coarser than a).
	Leq(a, b Lock) bool
	// Join returns the least upper bound of a and b.
	Join(a, b Lock) Lock
}

// ExprLock is the lock of Σk: a k-limited access path, or ⊤.
type ExprLock struct {
	Top  bool
	Path Path
}

// Key implements Lock.
func (l ExprLock) Key() string {
	if l.Top {
		return "T"
	}
	return l.Path.Key()
}

func (l ExprLock) String() string {
	if l.Top {
		return "⊤"
	}
	return l.Path.String()
}

// ExprScheme is Σk: expression locks with k-limiting (§3.3.1). Expressions
// of length greater than K collapse to ⊤.
type ExprScheme struct {
	K int
}

// Top implements Scheme.
func (s ExprScheme) Top() Lock { return ExprLock{Top: true} }

// Var implements Scheme. Σk ignores the effect (all locks protect rw).
func (s ExprScheme) Var(x *ir.Var, _ Eff) Lock { return s.limit(VarPath(x)) }

// Field implements Scheme.
func (s ExprScheme) Field(l Lock, f ir.FieldID, _ Eff) Lock {
	el := l.(ExprLock)
	if el.Top {
		return el
	}
	return s.limit(el.Path.Append(PathOp{Kind: OpField, Field: f}))
}

// Deref implements Scheme.
func (s ExprScheme) Deref(l Lock, _ Eff) Lock {
	el := l.(ExprLock)
	if el.Top {
		return el
	}
	return s.limit(el.Path.Append(PathOp{Kind: OpDeref}))
}

func (s ExprScheme) limit(p Path) Lock {
	if p.ExprLen() > s.K {
		return ExprLock{Top: true}
	}
	return ExprLock{Path: p}
}

// Leq implements Scheme: the order is flat below ⊤.
func (s ExprScheme) Leq(a, b Lock) bool {
	return b.(ExprLock).Top || a.Key() == b.Key()
}

// Join implements Scheme.
func (s ExprScheme) Join(a, b Lock) Lock {
	if a.Key() == b.Key() {
		return a
	}
	return ExprLock{Top: true}
}

// PointsLock is the lock of Σ≡: one Steensgaard points-to class, or ⊤.
type PointsLock struct {
	Top   bool
	Class steens.NodeID
}

// Key implements Lock.
func (l PointsLock) Key() string {
	if l.Top {
		return "T"
	}
	return fmt.Sprintf("P%d", l.Class)
}

func (l PointsLock) String() string {
	if l.Top {
		return "⊤"
	}
	return fmt.Sprintf("pts#%d", l.Class)
}

// PointsScheme is Σ≡: points-to set locks from a unification-based pointer
// analysis (§3.3.1).
type PointsScheme struct {
	A *steens.Analysis
}

// Top implements Scheme.
func (s PointsScheme) Top() Lock { return PointsLock{Top: true} }

// Var implements Scheme: x̄ is the class of &x.
func (s PointsScheme) Var(x *ir.Var, _ Eff) Lock {
	return PointsLock{Class: s.A.VarCell(x)}
}

// Field implements Scheme: l_s + i = s (field-insensitive classes).
func (s PointsScheme) Field(l Lock, _ ir.FieldID, _ Eff) Lock { return l }

// Deref implements Scheme: ∗ l_s = s' where s → s'.
func (s PointsScheme) Deref(l Lock, _ Eff) Lock {
	pl := l.(PointsLock)
	if pl.Top {
		return pl
	}
	return PointsLock{Class: s.A.Pointee(pl.Class)}
}

// Leq implements Scheme: classes are pairwise disjoint, ordered only by ⊤.
func (s PointsScheme) Leq(a, b Lock) bool {
	if b.(PointsLock).Top {
		return true
	}
	pa, pb := a.(PointsLock), b.(PointsLock)
	return !pa.Top && s.A.Rep(pa.Class) == s.A.Rep(pb.Class)
}

// Join implements Scheme.
func (s PointsScheme) Join(a, b Lock) Lock {
	if s.Leq(a, b) {
		return b
	}
	if s.Leq(b, a) {
		return a
	}
	return PointsLock{Top: true}
}

// EffLock is the lock of Σε: an effect.
type EffLock struct{ Eff Eff }

// Key implements Lock.
func (l EffLock) Key() string { return l.Eff.String() }

func (l EffLock) String() string { return l.Eff.String() }

// EffScheme is Σε: read and write locks (§3.3.1). Every operator returns the
// requested effect; ⊤ is rw.
type EffScheme struct{}

// Top implements Scheme.
func (EffScheme) Top() Lock { return EffLock{Eff: RW} }

// Var implements Scheme.
func (EffScheme) Var(_ *ir.Var, eff Eff) Lock { return EffLock{Eff: eff} }

// Field implements Scheme.
func (EffScheme) Field(_ Lock, _ ir.FieldID, eff Eff) Lock { return EffLock{Eff: eff} }

// Deref implements Scheme.
func (EffScheme) Deref(_ Lock, eff Eff) Lock { return EffLock{Eff: eff} }

// Leq implements Scheme.
func (EffScheme) Leq(a, b Lock) bool { return a.(EffLock).Eff.Leq(b.(EffLock).Eff) }

// Join implements Scheme.
func (EffScheme) Join(a, b Lock) Lock {
	return EffLock{Eff: a.(EffLock).Eff.Join(b.(EffLock).Eff)}
}

// FieldLock is the lock of Σi: a set of field offsets, or the full domain F.
type FieldLock struct {
	All    bool
	Fields []ir.FieldID // sorted
}

// Key implements Lock.
func (l FieldLock) Key() string {
	if l.All {
		return "F"
	}
	parts := make([]string, len(l.Fields))
	for i, f := range l.Fields {
		parts[i] = fmt.Sprintf("%d", f)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (l FieldLock) String() string { return l.Key() }

// FieldScheme is Σi: field-based locks (§3.3.1): x̄ = ⊤, l + i = {i},
// ∗ l = ⊤; the order is set inclusion.
type FieldScheme struct{}

// Top implements Scheme.
func (FieldScheme) Top() Lock { return FieldLock{All: true} }

// Var implements Scheme.
func (FieldScheme) Var(_ *ir.Var, _ Eff) Lock { return FieldLock{All: true} }

// Field implements Scheme.
func (FieldScheme) Field(_ Lock, f ir.FieldID, _ Eff) Lock {
	return FieldLock{Fields: []ir.FieldID{f}}
}

// Deref implements Scheme.
func (FieldScheme) Deref(_ Lock, _ Eff) Lock { return FieldLock{All: true} }

// Leq implements Scheme.
func (FieldScheme) Leq(a, b Lock) bool {
	fa, fb := a.(FieldLock), b.(FieldLock)
	if fb.All {
		return true
	}
	if fa.All {
		return false
	}
	set := map[ir.FieldID]bool{}
	for _, f := range fb.Fields {
		set[f] = true
	}
	for _, f := range fa.Fields {
		if !set[f] {
			return false
		}
	}
	return true
}

// Join implements Scheme.
func (FieldScheme) Join(a, b Lock) Lock {
	fa, fb := a.(FieldLock), b.(FieldLock)
	if fa.All || fb.All {
		return FieldLock{All: true}
	}
	set := map[ir.FieldID]bool{}
	for _, f := range fa.Fields {
		set[f] = true
	}
	for _, f := range fb.Fields {
		set[f] = true
	}
	out := make([]ir.FieldID, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return FieldLock{Fields: out}
}

// PairLock is the lock of a Cartesian product scheme.
type PairLock struct {
	A, B Lock
}

// Key implements Lock.
func (l PairLock) Key() string { return "(" + l.A.Key() + "," + l.B.Key() + ")" }

func (l PairLock) String() string { return "(" + l.A.String() + ", " + l.B.String() + ")" }

// Product is the Cartesian product Σ1 × Σ2 of two schemes (§3.3.1). If both
// components are sound approximations of the concrete semantics, so is their
// product.
type Product struct {
	S1, S2 Scheme
}

// Top implements Scheme.
func (p Product) Top() Lock { return PairLock{A: p.S1.Top(), B: p.S2.Top()} }

// Var implements Scheme.
func (p Product) Var(x *ir.Var, eff Eff) Lock {
	return PairLock{A: p.S1.Var(x, eff), B: p.S2.Var(x, eff)}
}

// Field implements Scheme.
func (p Product) Field(l Lock, f ir.FieldID, eff Eff) Lock {
	pl := l.(PairLock)
	return PairLock{A: p.S1.Field(pl.A, f, eff), B: p.S2.Field(pl.B, f, eff)}
}

// Deref implements Scheme.
func (p Product) Deref(l Lock, eff Eff) Lock {
	pl := l.(PairLock)
	return PairLock{A: p.S1.Deref(pl.A, eff), B: p.S2.Deref(pl.B, eff)}
}

// Leq implements Scheme.
func (p Product) Leq(a, b Lock) bool {
	pa, pb := a.(PairLock), b.(PairLock)
	return p.S1.Leq(pa.A, pb.A) && p.S2.Leq(pa.B, pb.B)
}

// Join implements Scheme.
func (p Product) Join(a, b Lock) Lock {
	pa, pb := a.(PairLock), b.(PairLock)
	return PairLock{A: p.S1.Join(pa.A, pb.A), B: p.S2.Join(pa.B, pb.B)}
}

// ExprLockFor builds the lock ê that protects the value of an access path
// under the given scheme, per the inductive construction of §3.3:
// x̂ = x̄, ê+f = ê(ro) + f, ∗ê = ∗ ê(ro). Subexpressions are protected for
// reads only; the final operation uses eff.
func ExprLockFor(s Scheme, p Path, eff Eff) Lock {
	effAt := func(i int) Eff {
		if i == len(p.Ops)-1 {
			return eff
		}
		return RO
	}
	var l Lock
	if len(p.Ops) == 0 {
		return s.Var(p.Base, eff)
	}
	l = s.Var(p.Base, RO)
	for i, op := range p.Ops {
		switch op.Kind {
		case OpDeref:
			l = s.Deref(l, effAt(i))
		case OpField:
			l = s.Field(l, op.Field, effAt(i))
		case OpIndex:
			// Schemes treat array elements as one pseudo-field; index
			// sensitivity lives only in the engine's fine-grain paths.
			l = s.Field(l, -1, effAt(i))
		}
	}
	return l
}
