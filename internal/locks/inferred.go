package locks

import (
	"fmt"
	"sort"

	"lockinfer/internal/ir"
	"lockinfer/internal/steens"
)

// Inferred is the engine's specialized lock representation for the scheme
// Σk × Σ≡ × Σε that the paper's implementation instantiates (§4.3). It
// exploits the tree structure of that product: a lock is either
//
//   - fine-grain: (path, class, eff) — a k-limited expression lock paired
//     with the points-to class its target belongs to, or
//   - coarse-grain: (⊤, class, eff) — an entire points-to partition, or
//   - global: (⊤, ⊤, rw) — the root lock (Class < 0), or
//   - shard: (class.sN, eff) — a synthetic fine leaf under a split coarse
//     lock, produced only by the profile-guided refinement pass (see
//     internal/refine). A shard stands for "this section's slice of the
//     partition": sections holding different shards of one class are
//     allowed to run concurrently, justified by the refinement's static
//     footprint-disjointness proof, which the auditor re-derives.
type Inferred struct {
	// Fine indicates an expression lock; Path is valid only when Fine.
	Fine bool
	Path Path
	// Class is the Steensgaard class of the protected cell; negative means
	// the global ⊤ partition.
	Class steens.NodeID
	Eff   Eff
	// Shard, when positive on a non-Fine lock, selects the split-lock
	// shard of the class (a synthetic fine leaf in the runtime tree).
	Shard int
}

// GlobalLock returns the root lock (⊤, ⊤, rw).
func GlobalLock() Inferred { return Inferred{Class: -1, Eff: RW} }

// CoarseLock returns the coarse lock protecting one points-to class.
func CoarseLock(class steens.NodeID, eff Eff) Inferred {
	return Inferred{Class: class, Eff: eff}
}

// FineLock returns the expression lock for a path within a class.
func FineLock(p Path, class steens.NodeID, eff Eff) Inferred {
	return Inferred{Fine: true, Path: p, Class: class, Eff: eff}
}

// ShardLock returns shard n (n ≥ 1) of a split coarse lock.
func ShardLock(class steens.NodeID, shard int, eff Eff) Inferred {
	return Inferred{Class: class, Shard: shard, Eff: eff}
}

// IsGlobal reports whether the lock is the root ⊤ lock.
func (l Inferred) IsGlobal() bool { return !l.Fine && l.Class < 0 }

// IsShard reports whether the lock is a split-lock shard.
func (l Inferred) IsShard() bool { return !l.Fine && l.Shard > 0 }

// Key returns a canonical map key.
func (l Inferred) Key() string {
	if l.Fine {
		return fmt.Sprintf("F:%s:%d:%s", l.Path.Key(), l.Class, l.Eff)
	}
	if l.Shard > 0 {
		return fmt.Sprintf("S:%d.%d:%s", l.Class, l.Shard, l.Eff)
	}
	return fmt.Sprintf("C:%d:%s", l.Class, l.Eff)
}

// String renders the lock for reports, e.g. "&(to->head)/rw",
// "pts#3/ro" or "pts#3.s2/rw".
func (l Inferred) String() string {
	if l.Fine {
		return l.Path.String() + "/" + l.Eff.String()
	}
	if l.Class < 0 {
		return "⊤/rw"
	}
	if l.Shard > 0 {
		return fmt.Sprintf("pts#%d.s%d/%s", l.Class, l.Shard, l.Eff)
	}
	return fmt.Sprintf("pts#%d/%s", l.Class, l.Eff)
}

// Less reports the strict order l < o in the instantiated scheme's tree:
// same lock with smaller effect, a fine lock under its own class's coarse
// lock, or anything under the global root.
func (l Inferred) Less(o Inferred) bool {
	if l.Key() == o.Key() {
		return false
	}
	if o.IsGlobal() {
		return true
	}
	if l.IsGlobal() || o.Fine && !l.Fine {
		return false
	}
	if l.Class != o.Class {
		return false
	}
	if l.Fine && o.Fine {
		// Same path, weaker effect.
		return l.Path.Key() == o.Path.Key() && l.Eff.Leq(o.Eff)
	}
	if o.IsShard() {
		// A shard is a leaf: only the same shard with weaker effect sits
		// below it. Fine path locks and other shards are siblings.
		return l.IsShard() && l.Shard == o.Shard && l.Eff.Leq(o.Eff)
	}
	// l fine, shard, or weaker coarse under coarse o of the same class.
	return l.Eff.Leq(o.Eff)
}

// Leq reports l ≤ o.
func (l Inferred) Leq(o Inferred) bool { return l.Key() == o.Key() || l.Less(o) }

// Set is a set of inferred locks keyed canonically.
type Set map[string]Inferred

// NewSet returns a set holding the given locks.
func NewSet(ls ...Inferred) Set {
	s := Set{}
	for _, l := range ls {
		s.Add(l)
	}
	return s
}

// Add inserts l; it reports whether the set changed.
func (s Set) Add(l Inferred) bool {
	k := l.Key()
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = l
	return true
}

// Has reports membership.
func (s Set) Has(l Inferred) bool {
	_, ok := s[l.Key()]
	return ok
}

// Remove deletes l; it reports whether the set changed.
func (s Set) Remove(l Inferred) bool {
	k := l.Key()
	if _, ok := s[k]; !ok {
		return false
	}
	delete(s, k)
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k, l := range s {
		out[k] = l
	}
	return out
}

// AddAll inserts every lock of o; it reports whether the set changed.
func (s Set) AddAll(o Set) bool {
	changed := false
	for _, l := range o {
		if s.Add(l) {
			changed = true
		}
	}
	return changed
}

// Minimize returns the set with redundant locks removed, implementing the
// paper's merge rule: drop any l for which some strictly coarser l' is also
// in the set.
func (s Set) Minimize() Set {
	out := Set{}
	for _, l := range s {
		redundant := false
		for _, o := range s {
			if l.Less(o) {
				redundant = true
				break
			}
		}
		if !redundant {
			out.Add(l)
		}
	}
	return out
}

// Sorted returns the locks in a deterministic order: global first, then
// coarse by class, then fine by class and path key.
func (s Set) Sorted() []Inferred {
	out := make([]Inferred, 0, len(s))
	for _, l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Fine != b.Fine {
			return !a.Fine
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Fine {
			// Sort by the printed form: stable across runs, unlike the
			// pointer-identity map key.
			if pa, pb := a.Path.String(), b.Path.String(); pa != pb {
				return pa < pb
			}
		} else if a.Shard != b.Shard {
			// Coarse (Shard 0) before its shards, shards numerically.
			return a.Shard < b.Shard
		}
		return a.Eff < b.Eff
	})
	return out
}

// Strings renders the sorted locks with field names resolved through prog.
func (s Set) Strings(prog *ir.Program) []string {
	var out []string
	for _, l := range s.Sorted() {
		if l.Fine {
			out = append(out, l.Path.CellString(func(f ir.FieldID) string {
				if f < 0 {
					return ir.ElemFieldName
				}
				return prog.FieldName(f)
			})+"/"+l.Eff.String())
		} else {
			out = append(out, l.String())
		}
	}
	return out
}
