package locks

import (
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	p := NewProfile("prog.lk", "mgl")
	lp := p.Lock(RootKey())
	lp.Acquires = 10
	lp.Waits = 2
	lp.Modes[2] = 7 // IX
	lp.Modes[5] = 3 // X
	cp := p.Lock(ClassKey(3))
	cp.Acquires = 8
	fp := p.Lock(FineKey(3, 0x40))
	fp.Acquires = 5
	fp.Waits = 1
	sp := p.Section(1)
	sp.Runs = 12
	sp.Waits = 4
	sp.Aborts = 2
	sp.Fallbacks = 1

	data, err := p.WriteJSON()
	if err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ParseProfile(data)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if got.Hash() != p.Hash() {
		t.Errorf("round trip changed hash: %s vs %s", got.Hash(), p.Hash())
	}
	if got.Source != "prog.lk" || got.Engine != "mgl" {
		t.Errorf("round trip lost labels: %q %q", got.Source, got.Engine)
	}
	if got.Lock(RootKey()).Acquires != 10 || got.Lock(FineKey(3, 0x40)).Waits != 1 {
		t.Errorf("round trip lost lock counters")
	}
	if got.Section(1).Fallbacks != 1 {
		t.Errorf("round trip lost section counters")
	}
}

func TestParseProfileRejectsUnknownSchema(t *testing.T) {
	if _, err := ParseProfile([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatalf("want schema error")
	}
	if _, err := ParseProfile([]byte(`{`)); err == nil {
		t.Fatalf("want syntax error")
	}
	// A schema-less profile (hand-written fixtures) is accepted and stamped.
	p, err := ParseProfile([]byte(`{"locks":{"root":{"acquires":1,"waits":0,"modes":[0,0,0,0,0,1]}}}`))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Schema != ProfileSchema {
		t.Errorf("schema not stamped: %q", p.Schema)
	}
}

func TestProfileMerge(t *testing.T) {
	a := NewProfile("p", "mgl")
	a.Lock(ClassKey(1)).Acquires = 3
	a.Lock(ClassKey(1)).Waits = 1
	a.Section(0).Runs = 2

	b := NewProfile("", "hybrid")
	b.Lock(ClassKey(1)).Acquires = 4
	b.Lock(ClassKey(2)).Acquires = 6
	b.Section(0).Runs = 5
	b.Section(0).Fallbacks = 2
	b.Section(3).Runs = 1

	a.Merge(b)
	a.Merge(nil)
	if got := a.Lock(ClassKey(1)).Acquires; got != 7 {
		t.Errorf("class#1 acquires = %d, want 7", got)
	}
	if got := a.Lock(ClassKey(2)).Acquires; got != 6 {
		t.Errorf("class#2 acquires = %d, want 6", got)
	}
	if got := a.Section(0).Runs; got != 7 {
		t.Errorf("section 0 runs = %d, want 7", got)
	}
	if got := a.Section(3).Runs; got != 1 {
		t.Errorf("section 3 runs = %d, want 1", got)
	}
	if a.Engine != "mgl" {
		t.Errorf("merge overwrote engine: %q", a.Engine)
	}
	// Merge into a label-less profile adopts the donor's labels.
	c := &Profile{Schema: ProfileSchema}
	c.Merge(a)
	if c.Source != "p" || c.Engine != "mgl" {
		t.Errorf("merge did not adopt labels: %q %q", c.Source, c.Engine)
	}
}

func TestProfileHashStableAndSensitive(t *testing.T) {
	build := func() *Profile {
		p := NewProfile("p", "mgl")
		p.Lock(ClassKey(2)).Acquires = 5
		p.Lock(ClassKey(1)).Acquires = 9
		p.Lock(FineKey(1, 0x10)).Acquires = 4
		p.Section(2).Runs = 3
		p.Section(1).Runs = 8
		return p
	}
	a, b := build(), build()
	if a.Hash() != b.Hash() {
		t.Errorf("equal profiles hash differently")
	}
	b.Lock(ClassKey(1)).Waits++
	if a.Hash() == b.Hash() {
		t.Errorf("hash insensitive to counter change")
	}
	var nilProf *Profile
	if nilProf.Hash() != "none" {
		t.Errorf("nil hash = %q, want none", nilProf.Hash())
	}
}

func TestProfileAggregates(t *testing.T) {
	p := NewProfile("p", "mgl")
	if !p.Empty() {
		t.Errorf("fresh profile not empty")
	}
	p.Lock(RootKey()).Acquires = 2
	p.Lock(ClassKey(7)).Acquires = 3
	p.Lock(ClassKey(7)).Waits = 1
	p.Lock(FineKey(7, 0x8)).Acquires = 4
	p.Lock(FineKey(7, 0x10)).Acquires = 5
	p.Lock(FineKey(7, 0x10)).Waits = 2
	p.Lock(FineKey(9, 0x8)).Acquires = 11
	if p.Empty() {
		t.Errorf("populated profile reads empty")
	}
	if got := p.TotalAcquires(); got != 25 {
		t.Errorf("TotalAcquires = %d, want 25", got)
	}
	if got := p.TotalWaits(); got != 3 {
		t.Errorf("TotalWaits = %d, want 3", got)
	}
	coarse, fine := p.ClassStats(7)
	if coarse.Acquires != 3 || coarse.Waits != 1 {
		t.Errorf("coarse stats = %+v", coarse)
	}
	if fine.Acquires != 9 || fine.Waits != 2 {
		t.Errorf("fine stats = %+v", fine)
	}
	if c, ok := FineClass(FineKey(7, 0x8)); !ok || c != 7 {
		t.Errorf("FineClass = %d,%v", c, ok)
	}
	if _, ok := FineClass(ClassKey(7)); ok {
		t.Errorf("FineClass accepted a class key")
	}
	if _, ok := FineClass("fine#x@y"); ok {
		t.Errorf("FineClass accepted junk")
	}
	if _, ok := FineClass("fine#3"); ok {
		t.Errorf("FineClass accepted key without addr")
	}
}

func TestSectionContended(t *testing.T) {
	var nilSec *SectionProfile
	if nilSec.Contended(0.1) {
		t.Errorf("nil section contended")
	}
	s := &SectionProfile{Runs: 100, Waits: 4}
	if s.Contended(0.1) {
		t.Errorf("4/100 waits contended at ratio 0.1")
	}
	s.Fallbacks = 6
	if !s.Contended(0.1) {
		t.Errorf("10/100 waits+fallbacks not contended at ratio 0.1")
	}
	empty := &SectionProfile{}
	if empty.Contended(0) {
		t.Errorf("zero-run section contended")
	}
}
