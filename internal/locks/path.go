package locks

import (
	"fmt"
	"strings"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
)

// This file defines access paths, the representation behind the paper's
// expression locks. A path is a base variable cell x̄ followed by a sequence
// of the abstract operators * (dereference) and +f (field offset):
//
//	x̄            protects the cell of variable x            (&x)
//	*x̄           protects the cell x points to              (x, as an address)
//	*x̄+f         protects field f of the object x points to (&(x->f))
//	*(*x̄+f)      protects the cell x->f points to           (x->f as address)
//
// Array indexing extends the paper's field offsets with a symbolic integer
// index expression so that per-element fine-grain locks (e.g. a hash bucket
// chosen by the key) remain expressible at the section entry.

// OpKind is the kind of one path operation.
type OpKind uint8

// Path operation kinds.
const (
	OpDeref OpKind = iota // *
	OpField               // +f
	OpIndex               // @e (array element with symbolic index)
)

// PathOp is a single path operation.
type PathOp struct {
	Kind  OpKind
	Field ir.FieldID // OpField
	Index *IExpr     // OpIndex
}

// Path is an access path: a lock expression rooted at a variable cell.
type Path struct {
	Base *ir.Var
	Ops  []PathOp
}

// Len returns the number of operations in the path.
func (p Path) Len() int { return len(p.Ops) }

// ExprLen returns the paper's expression length used for k-limiting: the
// base variable counts one, and every offset and dereference adds one, so
// "x" has length 1 and "x->f->g->h" (three dereferences, two offsets plus
// the final one... i.e. *((*((*(x̄)+f))+g)+h) ) has length 6. With k=0 no
// expression lock survives, matching the paper's "k=0 performs no dataflow
// computation".
func (p Path) ExprLen() int { return 1 + len(p.Ops) }

// Append returns a new path with op appended (the receiver is not modified).
func (p Path) Append(op PathOp) Path {
	ops := make([]PathOp, len(p.Ops)+1)
	copy(ops, p.Ops)
	ops[len(p.Ops)] = op
	return Path{Base: p.Base, Ops: ops}
}

// Key returns a canonical map key for the path.
func (p Path) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%p", p.Base)
	for _, op := range p.Ops {
		switch op.Kind {
		case OpDeref:
			b.WriteByte('*')
		case OpField:
			fmt.Fprintf(&b, "+%d", op.Field)
		case OpIndex:
			fmt.Fprintf(&b, "@[%s]", op.Index.Key())
		}
	}
	return b.String()
}

// String renders the path as the address expression a generated program
// would pass to acquire(), e.g. "&(to->head)" for *t̄o+head.
func (p Path) String() string { return p.CellString(nil) }

// CellString renders the protected cell as an address expression. fieldName
// resolves field ids to names; when nil, ids print numerically.
func (p Path) CellString(fieldName func(ir.FieldID) string) string {
	// lv is the lvalue expression of the protected cell.
	lv := p.Base.Name
	for _, op := range p.Ops {
		switch op.Kind {
		case OpDeref:
			lv = "*" + parenIfCompound(lv)
		case OpField:
			name := fmt.Sprintf("f%d", op.Field)
			if fieldName != nil {
				name = fieldName(op.Field)
			}
			if inner, ok := strings.CutPrefix(lv, "*"); ok {
				lv = trimParens(inner) + "->" + name
			} else {
				lv = lv + "." + name
			}
		case OpIndex:
			idx := op.Index.String()
			if inner, ok := strings.CutPrefix(lv, "*"); ok {
				lv = trimParens(inner) + "[" + idx + "]"
			} else {
				lv = lv + "[" + idx + "]"
			}
		}
	}
	return "&(" + lv + ")"
}

func parenIfCompound(s string) string {
	if strings.ContainsAny(s, "->.[ ") {
		return "(" + s + ")"
	}
	return s
}

func trimParens(s string) string {
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return s[1 : len(s)-1]
	}
	return s
}

// VarPath returns the path x̄ for a variable.
func VarPath(v *ir.Var) Path { return Path{Base: v} }

// IKind is the kind of a symbolic index expression node.
type IKind uint8

// Index expression node kinds.
const (
	IVar IKind = iota
	IConst
	IBin
	IUn
)

// IExpr is a small symbolic integer expression used inside array-index path
// operations. It is immutable once built.
type IExpr struct {
	Kind  IKind
	Var   *ir.Var       // IVar
	Const int64         // IConst
	Op    lang.BinaryOp // IBin
	Unop  lang.UnaryOp  // IUn
	L, R  *IExpr        // IBin (both) and IUn (L only)
}

// IVarExpr returns a variable index expression.
func IVarExpr(v *ir.Var) *IExpr { return &IExpr{Kind: IVar, Var: v} }

// IConstExpr returns a constant index expression.
func IConstExpr(c int64) *IExpr { return &IExpr{Kind: IConst, Const: c} }

// IBinExpr returns a binary index expression.
func IBinExpr(op lang.BinaryOp, l, r *IExpr) *IExpr {
	return &IExpr{Kind: IBin, Op: op, L: l, R: r}
}

// IUnExpr returns a unary index expression.
func IUnExpr(op lang.UnaryOp, l *IExpr) *IExpr {
	return &IExpr{Kind: IUn, Unop: op, L: l}
}

// Size returns the number of nodes in the expression tree.
func (e *IExpr) Size() int {
	switch e.Kind {
	case IBin:
		return 1 + e.L.Size() + e.R.Size()
	case IUn:
		return 1 + e.L.Size()
	default:
		return 1
	}
}

// Vars appends the variables referenced by e to out and returns it.
func (e *IExpr) Vars(out []*ir.Var) []*ir.Var {
	switch e.Kind {
	case IVar:
		return append(out, e.Var)
	case IBin:
		return e.R.Vars(e.L.Vars(out))
	case IUn:
		return e.L.Vars(out)
	default:
		return out
	}
}

// Subst returns e with every occurrence of v replaced by repl, sharing
// unchanged subtrees.
func (e *IExpr) Subst(v *ir.Var, repl *IExpr) *IExpr {
	switch e.Kind {
	case IVar:
		if e.Var == v {
			return repl
		}
		return e
	case IBin:
		l, r := e.L.Subst(v, repl), e.R.Subst(v, repl)
		if l == e.L && r == e.R {
			return e
		}
		return &IExpr{Kind: IBin, Op: e.Op, L: l, R: r}
	case IUn:
		l := e.L.Subst(v, repl)
		if l == e.L {
			return e
		}
		return &IExpr{Kind: IUn, Unop: e.Unop, L: l}
	default:
		return e
	}
}

// Mentions reports whether e references variable v.
func (e *IExpr) Mentions(v *ir.Var) bool {
	switch e.Kind {
	case IVar:
		return e.Var == v
	case IBin:
		return e.L.Mentions(v) || e.R.Mentions(v)
	case IUn:
		return e.L.Mentions(v)
	default:
		return false
	}
}

// Key returns a canonical map key for the expression.
func (e *IExpr) Key() string {
	switch e.Kind {
	case IVar:
		return fmt.Sprintf("v%p", e.Var)
	case IConst:
		return fmt.Sprintf("%d", e.Const)
	case IBin:
		return "(" + e.L.Key() + e.Op.String() + e.R.Key() + ")"
	default:
		return "(" + e.Unop.String() + e.L.Key() + ")"
	}
}

// String renders the expression in surface syntax.
func (e *IExpr) String() string {
	switch e.Kind {
	case IVar:
		return e.Var.Name
	case IConst:
		return fmt.Sprintf("%d", e.Const)
	case IBin:
		return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
	default:
		return "(" + e.Unop.String() + e.L.String() + ")"
	}
}
