// Package locks implements the lock formalism of Section 3 of the paper:
// the concrete lock semantics [[l]] = (P, ε) with its conflict and
// coarser-than relations, access paths (the expression locks of Σk), and the
// abstract lock scheme interface with the paper's example instances
// (k-limited expressions, Steensgaard points-to sets, read/write effects,
// field-based locks, and Cartesian products).
package locks

// Eff is an access effect: read-only or read-write. The two-point lattice
// has RO ⊑ RW.
type Eff uint8

// Effects.
const (
	RO Eff = iota
	RW
)

// String renders the effect as "ro" or "rw".
func (e Eff) String() string {
	if e == RO {
		return "ro"
	}
	return "rw"
}

// Leq reports e ⊑ o in the effect lattice.
func (e Eff) Leq(o Eff) bool { return e == RO || o == RW }

// Join returns the least upper bound of the two effects.
func (e Eff) Join(o Eff) Eff {
	if e == RW || o == RW {
		return RW
	}
	return RO
}

// Meet returns the greatest lower bound of the two effects.
func (e Eff) Meet(o Eff) Eff {
	if e == RO || o == RO {
		return RO
	}
	return RW
}
