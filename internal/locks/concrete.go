package locks

// This file implements the concrete lock semantics of §3.2: a lock denotes a
// pair (P, ε) of a protected location set and an effect. The location domain
// is abstract (any comparable value); the checking interpreter instantiates
// it with runtime cells, and unit tests with small synthetic universes.

// Denotation is the concrete meaning [[l]] of a lock: the set of protected
// locations and the allowed access effect. All=true denotes the full
// location domain Loc (used by global locks ⊤).
type Denotation struct {
	All  bool
	Locs map[any]bool
	Eff  Eff
}

// DenoteAll returns the denotation (Loc, eff).
func DenoteAll(eff Eff) Denotation { return Denotation{All: true, Eff: eff} }

// Denote returns the denotation ({locs...}, eff).
func Denote(eff Eff, locs ...any) Denotation {
	m := make(map[any]bool, len(locs))
	for _, l := range locs {
		m[l] = true
	}
	return Denotation{Locs: m, Eff: eff}
}

// Covers reports whether the denotation protects location loc for effect
// eff, i.e. ({loc}, eff) ⊑ (P, ε).
func (d Denotation) Covers(loc any, eff Eff) bool {
	if !eff.Leq(d.Eff) {
		return false
	}
	return d.All || d.Locs[loc]
}

// Leq reports d ⊑ o in the product lattice 2^Loc × Eff.
func (d Denotation) Leq(o Denotation) bool {
	if !d.Eff.Leq(o.Eff) {
		return false
	}
	if o.All {
		return true
	}
	if d.All {
		return false
	}
	for l := range d.Locs {
		if !o.Locs[l] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two denotations protect a common location.
func (d Denotation) Intersects(o Denotation) bool {
	if d.All {
		return o.All || len(o.Locs) > 0
	}
	if o.All {
		return len(d.Locs) > 0
	}
	small, large := d.Locs, o.Locs
	if len(large) < len(small) {
		small, large = large, small
	}
	for l := range small {
		if large[l] {
			return true
		}
	}
	return false
}

// Conflict implements the paper's conflict relation: the locks protect a
// common location and at least one of them allows writes.
func Conflict(a, b Denotation) bool {
	return a.Intersects(b) && a.Eff.Join(b.Eff) != RO
}

// Coarser reports that b is coarser than a: [[a]] ⊑ [[b]].
func Coarser(b, a Denotation) bool { return a.Leq(b) }

// Meet returns the greatest lower bound of the two denotations, which is
// the concrete semantics of a pair lock (l1, l2).
func Meet(a, b Denotation) Denotation {
	eff := a.Eff.Meet(b.Eff)
	switch {
	case a.All && b.All:
		return Denotation{All: true, Eff: eff}
	case a.All:
		return Denotation{Locs: copyLocs(b.Locs), Eff: eff}
	case b.All:
		return Denotation{Locs: copyLocs(a.Locs), Eff: eff}
	}
	m := map[any]bool{}
	for l := range a.Locs {
		if b.Locs[l] {
			m[l] = true
		}
	}
	return Denotation{Locs: m, Eff: eff}
}

func copyLocs(in map[any]bool) map[any]bool {
	out := make(map[any]bool, len(in))
	for l := range in {
		out[l] = true
	}
	return out
}
