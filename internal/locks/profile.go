package locks

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Profile is the runtime lock profile every execution engine can emit after
// a run: per-lock acquire/wait counts with the per-mode histogram, and
// per-section contention counters. It is the feedback artifact of the
// profile-guided refinement pass (internal/refine) — the runtime's answer
// to "which inferred locks are actually hot, and which are dead weight".
//
// Profiles are mergeable (Merge sums counter-wise, so per-session,
// per-world or per-run profiles fold into one) and round-trip through JSON
// (WriteJSON/ParseProfile), which is how the cmd tools' -profile flag and
// lockinferd's /metrics carry them across process boundaries.
type Profile struct {
	// Schema versions the JSON layout.
	Schema string `json:"schema"`
	// Source labels the profiled program (a pipeline Options.Name, a
	// content hash, ...). Informational; Merge keeps the first non-empty.
	Source string `json:"source,omitempty"`
	// Engine names the runtime that produced the profile ("mgl", "hybrid",
	// "native", ...). Informational; Merge keeps the first non-empty.
	Engine string `json:"engine,omitempty"`
	// Locks maps canonical lock identities (see RootKey, ClassKey,
	// FineKey) to their counters.
	Locks map[string]*LockProfile `json:"locks,omitempty"`
	// Sections maps atomic-section ids to their counters.
	Sections map[int]*SectionProfile `json:"sections,omitempty"`
}

// ProfileSchema versions the Profile JSON layout.
const ProfileSchema = "lockinfer/profile/v1"

// LockProfile is the counter set of one lock-tree node.
type LockProfile struct {
	// Acquires counts grants of this node; Waits how many of them blocked.
	Acquires int64 `json:"acquires"`
	Waits    int64 `json:"waits"`
	// Modes is the per-mode grant histogram indexed by the mgl mode
	// numbering (none, IS, IX, S, SIX, X).
	Modes [6]int64 `json:"modes"`
}

// SectionProfile is the counter set of one atomic section.
type SectionProfile struct {
	// Runs counts section entries under a lock plan (pessimistic
	// executions); Waits how many of those entries blocked on at least one
	// node acquisition.
	Runs  int64 `json:"runs"`
	Waits int64 `json:"waits"`
	// Aborts counts aborted optimistic attempts and Fallbacks the
	// executions that exhausted their abort budget (hybrid engine only).
	Aborts    int64 `json:"aborts,omitempty"`
	Fallbacks int64 `json:"fallbacks,omitempty"`
}

// Contended reports that the section blocked (or fell back) in a
// nontrivial fraction of its runs: the refinement pass's and the hybrid
// policy's shared notion of "hot".
func (s *SectionProfile) Contended(ratio float64) bool {
	if s == nil || s.Runs == 0 {
		return false
	}
	return float64(s.Waits+s.Fallbacks) >= ratio*float64(s.Runs)
}

// Lock identity keys. The runtime lock tree has the root, one node per
// points-to partition, and per-address fine leaves; the keys mirror that
// shape so every engine emits the same identities.
const (
	// RootKeyName is the identity of the ⊤ root lock.
	RootKeyName = "root"
	classPrefix = "class#"
	finePrefix  = "fine#"
)

// RootKey returns the root lock's identity.
func RootKey() string { return RootKeyName }

// ClassKey returns the identity of a partition (coarse) lock.
func ClassKey(class int64) string { return classPrefix + strconv.FormatInt(class, 10) }

// FineKey returns the identity of a per-address leaf below a partition.
func FineKey(class int64, addr uint64) string {
	return finePrefix + strconv.FormatInt(class, 10) + "@" + strconv.FormatUint(addr, 16)
}

// FineClass parses a fine-leaf key back to its class; ok is false for root
// and class keys.
func FineClass(key string) (int64, bool) {
	rest, found := strings.CutPrefix(key, finePrefix)
	if !found {
		return 0, false
	}
	cls, _, found := strings.Cut(rest, "@")
	if !found {
		return 0, false
	}
	c, err := strconv.ParseInt(cls, 10, 64)
	if err != nil {
		return 0, false
	}
	return c, true
}

// NewProfile returns an empty profile for one program/engine pair.
func NewProfile(source, engine string) *Profile {
	return &Profile{
		Schema:   ProfileSchema,
		Source:   source,
		Engine:   engine,
		Locks:    map[string]*LockProfile{},
		Sections: map[int]*SectionProfile{},
	}
}

// Lock returns (creating on first use) the counters of one lock identity.
func (p *Profile) Lock(key string) *LockProfile {
	if p.Locks == nil {
		p.Locks = map[string]*LockProfile{}
	}
	lp := p.Locks[key]
	if lp == nil {
		lp = &LockProfile{}
		p.Locks[key] = lp
	}
	return lp
}

// Section returns (creating on first use) the counters of one section.
func (p *Profile) Section(id int) *SectionProfile {
	if p.Sections == nil {
		p.Sections = map[int]*SectionProfile{}
	}
	sp := p.Sections[id]
	if sp == nil {
		sp = &SectionProfile{}
		p.Sections[id] = sp
	}
	return sp
}

// Merge folds o's counters into p (counter-wise sums). Nil o is a no-op.
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	if p.Source == "" {
		p.Source = o.Source
	}
	if p.Engine == "" {
		p.Engine = o.Engine
	}
	for key, lp := range o.Locks {
		dst := p.Lock(key)
		dst.Acquires += lp.Acquires
		dst.Waits += lp.Waits
		for i := range dst.Modes {
			dst.Modes[i] += lp.Modes[i]
		}
	}
	for id, sp := range o.Sections {
		dst := p.Section(id)
		dst.Runs += sp.Runs
		dst.Waits += sp.Waits
		dst.Aborts += sp.Aborts
		dst.Fallbacks += sp.Fallbacks
	}
}

// Empty reports a profile with no observations at all.
func (p *Profile) Empty() bool {
	if p == nil {
		return true
	}
	for _, lp := range p.Locks {
		if lp.Acquires != 0 || lp.Waits != 0 {
			return false
		}
	}
	for _, sp := range p.Sections {
		if sp.Runs != 0 || sp.Aborts != 0 {
			return false
		}
	}
	return true
}

// TotalAcquires sums node grants across all locks.
func (p *Profile) TotalAcquires() int64 {
	var t int64
	for _, lp := range p.Locks {
		t += lp.Acquires
	}
	return t
}

// TotalWaits sums blocked grants across all locks.
func (p *Profile) TotalWaits() int64 {
	var t int64
	for _, lp := range p.Locks {
		t += lp.Waits
	}
	return t
}

// ClassStats aggregates one partition's counters: the coarse node itself
// plus every fine leaf below it.
func (p *Profile) ClassStats(class int64) (coarse, fine LockProfile) {
	for key, lp := range p.Locks {
		if key == ClassKey(class) {
			coarse.Acquires += lp.Acquires
			coarse.Waits += lp.Waits
		} else if c, ok := FineClass(key); ok && c == class {
			fine.Acquires += lp.Acquires
			fine.Waits += lp.Waits
		}
	}
	return coarse, fine
}

// Hash returns a stable content hash of the profile's counters — the
// refinement pass's cache-key component. Two profiles with the same
// observations hash identically regardless of map order.
func (p *Profile) Hash() string {
	if p == nil {
		return "none"
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s\n", p.Schema, p.Source, p.Engine)
	lockKeys := make([]string, 0, len(p.Locks))
	for k := range p.Locks {
		lockKeys = append(lockKeys, k)
	}
	sort.Strings(lockKeys)
	for _, k := range lockKeys {
		lp := p.Locks[k]
		fmt.Fprintf(h, "L %s %d %d %v\n", k, lp.Acquires, lp.Waits, lp.Modes)
	}
	secIDs := make([]int, 0, len(p.Sections))
	for id := range p.Sections {
		secIDs = append(secIDs, id)
	}
	sort.Ints(secIDs)
	for _, id := range secIDs {
		sp := p.Sections[id]
		fmt.Fprintf(h, "S %d %d %d %d %d\n", id, sp.Runs, sp.Waits, sp.Aborts, sp.Fallbacks)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// WriteJSON renders the profile with deterministic key order (Go maps
// marshal with sorted keys) and a trailing newline.
func (p *Profile) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseProfile reads a profile back from its JSON form.
func ParseProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("locks: parse profile: %w", err)
	}
	if p.Schema != "" && p.Schema != ProfileSchema {
		return nil, fmt.Errorf("locks: parse profile: unknown schema %q (want %s)", p.Schema, ProfileSchema)
	}
	p.Schema = ProfileSchema
	return &p, nil
}
