// Package interp executes lowered programs concurrently on a simulated
// heap, implementing the operational semantics of §4.2: threads run IR
// statements, atomic sections acquire their inferred locks through the mgl
// runtime, and in checked mode every shared access inside an atomic section
// is verified to be covered by a held lock — an unprotected access is the
// paper's stuck state and is reported as a soundness violation. The
// interpreter is the harness behind the soundness property tests and the
// end-to-end examples.
package interp

import (
	"fmt"
	"sync/atomic"

	"lockinfer/internal/ir"
)

// VKind is the kind of a runtime value.
type VKind uint8

// Value kinds.
const (
	VNull VKind = iota
	VInt
	VLoc
)

// Value is a runtime value: null, an integer, or a location (a slot of an
// object).
type Value struct {
	Kind VKind
	Int  int64
	Obj  *Object
	Off  int
}

// Null is the null value.
func Null() Value { return Value{Kind: VNull} }

// IntV returns an integer value.
func IntV(i int64) Value { return Value{Kind: VInt, Int: i} }

// LocV returns a location value.
func LocV(obj *Object, off int) Value { return Value{Kind: VLoc, Obj: obj, Off: off} }

// Truthy reports the value interpreted as a condition: nonzero ints and
// non-null locations are true.
func (v Value) Truthy() bool {
	switch v.Kind {
	case VInt:
		return v.Int != 0
	case VLoc:
		return true
	default:
		return false
	}
}

// Equal compares two values for the == operator.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case VNull:
		return true
	case VInt:
		return v.Int == o.Int
	default:
		return v.Obj == o.Obj && v.Off == o.Off
	}
}

func (v Value) String() string {
	switch v.Kind {
	case VNull:
		return "null"
	case VInt:
		return fmt.Sprintf("%d", v.Int)
	default:
		return fmt.Sprintf("loc(%s+%d)", v.Obj, v.Off)
	}
}

// objKind distinguishes heap objects from variable frames.
type objKind uint8

const (
	objHeap objKind = iota
	objGlobals
	objFrame
)

var nextObjBase atomic.Uint64

// Object is a block of slots: a heap allocation, the global-variable block,
// or one function frame (so that &local works uniformly).
type Object struct {
	kind objKind
	// base is a program-unique address: slot i has address base+i.
	base uint64
	// Site is the allocation site for heap objects, -1 otherwise.
	Site int
	// Struct gives field layout for struct allocations; nil for arrays,
	// scalar allocations and frames.
	Struct *ir.StructInfo
	// Fn is the owning function for frames.
	Fn    *ir.Func
	slots []atomic.Pointer[Value]
	// allocThread/allocEpoch identify the atomic section (if any) whose
	// executing thread allocated this object; the checker exempts accesses
	// from that same section. Zero values never match a real section.
	allocThread int
	allocEpoch  int64
}

func newObject(kind objKind, site int, n int) *Object {
	o := &Object{kind: kind, Site: site, base: nextObjBase.Add(uint64(n)) - uint64(n)}
	o.slots = make([]atomic.Pointer[Value], n)
	null := Null()
	for i := range o.slots {
		o.slots[i].Store(&null)
	}
	return o
}

// Len returns the number of slots.
func (o *Object) Len() int { return len(o.slots) }

// Addr returns the unique address of slot off.
func (o *Object) Addr(off int) uint64 { return o.base + uint64(off) }

// load reads slot off.
func (o *Object) load(off int) Value { return *o.slots[off].Load() }

// store writes slot off.
func (o *Object) store(off int, v Value) { o.slots[off].Store(&v) }

func (o *Object) String() string {
	switch o.kind {
	case objGlobals:
		return "globals"
	case objFrame:
		return "frame:" + o.Fn.Name
	default:
		return fmt.Sprintf("obj#%d@site%d", o.base, o.Site)
	}
}
