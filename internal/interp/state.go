package interp

import (
	"fmt"
	"strings"
)

// StateDump renders the machine's shared state as a canonical fingerprint:
// every global in declaration order, then every reachable heap object in
// first-visit order, with pointers printed as visit ids instead of
// addresses. Two quiescent machines that executed the same program to
// equivalent shared states — regardless of engine, schedule or allocation
// addresses — produce equal dumps, which is what the conformance harness
// compares against the serialization oracle's states. The machine must be
// quiescent (no running threads).
func (m *Machine) StateDump() string {
	var b strings.Builder
	ids := map[*Object]int{}
	var queue []*Object
	render := func(v Value) string {
		switch v.Kind {
		case VNull:
			return "_"
		case VInt:
			return fmt.Sprintf("%d", v.Int)
		default:
			id, ok := ids[v.Obj]
			if !ok {
				id = len(ids) + 1
				ids[v.Obj] = id
				queue = append(queue, v.Obj)
			}
			if v.Off != 0 {
				return fmt.Sprintf("o%d+%d", id, v.Off)
			}
			return fmt.Sprintf("o%d", id)
		}
	}
	for i, g := range m.Prog.Globals {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", g.Name, render(m.cellValue(m.globals, g.Index)))
	}
	for qi := 0; qi < len(queue); qi++ {
		obj := queue[qi]
		fmt.Fprintf(&b, " | o%d:[", ids[obj])
		for off := 0; off < obj.Len(); off++ {
			if off > 0 {
				b.WriteByte(',')
			}
			b.WriteString(render(m.cellValue(obj, off)))
		}
		b.WriteByte(']')
	}
	return b.String()
}
