package interp

import (
	"fmt"
	"testing"

	"lockinfer/internal/hybrid"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/progen"
	"lockinfer/internal/steens"
	"lockinfer/internal/stm"
)

// runSerial executes a progen program thread-by-thread (init, then each
// worker to completion) on a fresh machine and returns the canonical final
// state. Serial execution makes the outcome deterministic for every engine,
// so fingerprints are comparable byte-for-byte.
func runSerial(t *testing.T, prog *ir.Program, pts *steens.Analysis, plan map[int]locks.Set, cfg *hybrid.Config, seed int64) string {
	t.Helper()
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	if cfg != nil {
		m.UseHybrid(stm.New(), hybrid.NewPolicy(*cfg))
	}
	if err := m.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		t.Fatalf("setup: %v", err)
	}
	for i := 0; i < 2; i++ {
		args := []Value{IntV(2), IntV(seed + int64(i)*31)}
		if _, err := m.Call(i+1, "worker", args); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return m.StateDump()
}

// TestHybridMatchesLocksOnProgen is the hybrid engine's determinism
// property: over 20 generated programs at every inference granularity, the
// final-state fingerprint under the hybrid engine is byte-identical to the
// pure lock engine's — both at forced fallback (every section pessimistic)
// and never-fallback (every section one unbounded transaction).
func TestHybridMatchesLocksOnProgen(t *testing.T) {
	extremes := []struct {
		name string
		cfg  hybrid.Config
	}{
		{"force-fallback", hybrid.Config{AbortThreshold: hybrid.ForceFallback}},
		{"never-fallback", hybrid.Config{AbortThreshold: hybrid.NeverFallback}},
	}
	for seed := int64(1); seed <= 20; seed++ {
		src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed})
		for k := 1; k <= 3; k++ {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, k), func(t *testing.T) {
				prog, pts, plan := compile(t, src, k)
				want := runSerial(t, prog, pts, plan, nil, seed)
				for _, ex := range extremes {
					got := runSerial(t, prog, pts, plan, &ex.cfg, seed)
					if got != want {
						t.Errorf("%s: state diverged from pure-mgl\n got: %s\nwant: %s", ex.name, got, want)
					}
				}
			})
		}
	}
}

// runHybridCounter runs the shared-counter program concurrently under the
// hybrid engine and checks the exact final count — a real-concurrency smoke
// test of the abort/fallback/gate machinery (meaningful under -race).
func runHybridCounter(t *testing.T, cfg hybrid.Config, threads, n int) hybrid.Stats {
	t.Helper()
	prog, pts, plan := compile(t, counterSrc, 2)
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	pol := hybrid.NewPolicy(cfg)
	m.UseHybrid(stm.New(), pol)
	var specs []ThreadSpec
	for i := 0; i < threads; i++ {
		specs = append(specs, ThreadSpec{Fn: "worker", Args: []Value{IntV(int64(n))}})
	}
	if err := m.Run(specs); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := m.Global("counter")
	if err != nil {
		t.Fatalf("counter: %v", err)
	}
	if want := int64(threads * n); got.Int != want {
		t.Fatalf("counter = %d, want %d", got.Int, want)
	}
	return pol.Stats()
}

// TestHybridConcurrentCounter exercises every policy regime concurrently.
func TestHybridConcurrentCounter(t *testing.T) {
	t.Run("adaptive", func(t *testing.T) {
		st := runHybridCounter(t, hybrid.Config{AbortThreshold: 2, StickyRuns: 4}, 4, 200)
		if st.OptRuns+st.PessRuns != 4*200 {
			t.Fatalf("runs = %+v, want %d total", st, 4*200)
		}
	})
	t.Run("force-fallback", func(t *testing.T) {
		st := runHybridCounter(t, hybrid.Config{AbortThreshold: hybrid.ForceFallback}, 4, 200)
		if st.PessRuns != 4*200 || st.OptRuns != 0 {
			t.Fatalf("stats = %+v, want all-pessimistic", st)
		}
	})
	t.Run("never-fallback", func(t *testing.T) {
		st := runHybridCounter(t, hybrid.Config{AbortThreshold: hybrid.NeverFallback}, 4, 200)
		if st.OptRuns != 4*200 || st.PessRuns != 0 {
			t.Fatalf("stats = %+v, want all-optimistic", st)
		}
	})
}
