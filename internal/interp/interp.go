package interp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lockinfer/internal/hybrid"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
	"lockinfer/internal/steens"
	"lockinfer/internal/stm"
)

// Violation is a detected soundness failure: a shared access inside an
// atomic section that no held lock covers (the stuck state of the
// operational semantics).
type Violation struct {
	Thread int
	Fn     string
	Pos    lang.Pos
	What   string
	Eff    locks.Eff
}

func (v *Violation) Error() string {
	return fmt.Sprintf("soundness violation: thread %d at %s:%s accesses %s for %s with no covering lock",
		v.Thread, v.Fn, v.Pos, v.What, v.Eff)
}

// RuntimeError is a non-violation execution failure (null dereference,
// division by zero, out-of-bounds index).
type RuntimeError struct {
	Thread int
	Fn     string
	Pos    lang.Pos
	Msg    string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error: thread %d at %s:%s: %s", e.Thread, e.Fn, e.Pos, e.Msg)
}

// Machine executes one lowered program.
type Machine struct {
	Prog *ir.Program
	Pts  *steens.Analysis
	// SectionLocks maps section id to the locks acquired at its entry
	// (normally the inference result, possibly coarsened or replaced by a
	// global lock for baseline comparisons).
	SectionLocks map[int]locks.Set
	// Checked enables the per-access lock coverage check.
	Checked bool
	// NopWork is the number of spin iterations per nop statement.
	NopWork int
	// StepLimit bounds the number of statements one thread may execute
	// (0 = default of 50M), turning runaway loops into errors.
	StepLimit int64
	// Tracer, when set, observes shared accesses, section boundaries and
	// thread lifecycles (the oracle's race-detector hook).
	Tracer Tracer
	// Sched, when set, serializes threads at scheduling points (the
	// oracle's systematic-exploration hook). Thread 0 — the init/setup
	// thread — is never scheduled.
	Sched Scheduler

	// rt is the lock runtime backing atomic sections: the sharded Manager
	// by default, or any other LockRuntime installed with UseRuntime.
	rt mgl.LockRuntime
	// eng is the execution strategy for atomic sections and shared slots:
	// the pessimistic lockEngine by default, the optimistic stmEngine
	// (UseSTM), or the adaptive hybridEngine (UseHybrid).
	eng Engine
	// stmCells maps shared slots to their versioned cells (cell-backed
	// engines only).
	stmCells sync.Map

	// profiling enables runtime lock-profile collection (EnableProfiling);
	// secMu/secProf hold the per-section counters behind Profile.
	profiling bool
	secMu     sync.Mutex
	secProf   map[int]*secStat

	globals *Object
	externs map[string]ExternFunc
	initOnc sync.Once
	initErr error
}

// ExternFunc is a host (Go) implementation of an external mini-C function.
// It runs outside the checker — pre-compiled library code is trusted to
// respect its specification — and must confine itself to the values it is
// given.
type ExternFunc func(args []Value) (Value, error)

// NewMachine builds a machine over a program and its points-to analysis.
func NewMachine(prog *ir.Program, pts *steens.Analysis, sectionLocks map[int]locks.Set) *Machine {
	m := &Machine{
		Prog:         prog,
		Pts:          pts,
		SectionLocks: sectionLocks,
		rt:           mgl.NewManager(),
		eng:          lockEngine{},
	}
	m.globals = newObject(objGlobals, -1, len(prog.Globals))
	m.externs = map[string]ExternFunc{}
	for _, g := range prog.Globals {
		if !g.Type.IsPointer() {
			m.globals.store(g.Index, IntV(0))
		}
	}
	return m
}

// RegisterExtern installs the host implementation of an external function
// declared as a prototype in the program.
func (m *Machine) RegisterExtern(name string, fn ExternFunc) { m.externs[name] = fn }

// UseRuntime replaces the lock runtime backing atomic sections (e.g. the
// frozen RefManager baseline for differential execution). It must be called
// before Init, Call or Run.
func (m *Machine) UseRuntime(rt mgl.LockRuntime) { m.rt = rt }

// UseSTM switches the machine to the optimistic engine: every atomic
// section executes as a TL2 transaction on rt, with shared slots backed by
// versioned cells, instead of acquiring its inferred locks. It must be
// called before Init, Call or Run. The §4.2 coverage checker and the lock
// plan are inert under STM execution.
func (m *Machine) UseSTM(rt *stm.Runtime) { m.eng = &stmEngine{rt: rt} }

// UseHybrid switches the machine to the adaptive engine: atomic sections
// first run as TL2 transactions on rt and fall back to their inferred lock
// plans when pol says so. It must be called before Init, Call or Run. The
// §4.2 coverage checker applies to pessimistic executions only.
func (m *Machine) UseHybrid(rt *stm.Runtime, pol *hybrid.Policy) {
	m.eng = &hybridEngine{rt: rt, pol: pol}
}

// heldLock is one acquired descriptor, kept for coverage checking.
type heldLock struct {
	global bool
	fine   bool
	// shard marks a split-lock shard: a fine leaf in the runtime tree whose
	// coverage nevertheless extends to the whole class, justified by the
	// refinement pass's footprint-disjointness proof (re-checked by the
	// static auditor, not per access here).
	shard bool
	class steens.NodeID
	addr  uint64
	write bool
}

// thread is one executing thread.
type thread struct {
	m       *Machine
	id      int
	session mgl.LockSession
	held    []heldLock
	steps   int64
	limit   int64
	// epoch counts outermost atomic sections entered, marking objects the
	// thread allocates inside the current section.
	epoch int64

	// STM-engine state: the running transaction attempt, the section
	// nesting depth (flattened: inner sections join the outer transaction),
	// and the undo log of direct frame stores made inside the attempt.
	tx       *stm.Tx
	stmDepth int
	txUndo   []undoCell

	// Hybrid-engine pessimistic state: the cells this thread meta-locked for
	// in-place stores (published on section exit), the session wait count at
	// section entry (contention signal), and whether the thread holds the
	// engine's gate closed.
	pessCells []*mem.Cell
	pessWait0 int64
	pessGated bool
}

// ThreadSpec names an entry function and its arguments for one thread.
type ThreadSpec struct {
	Fn   string
	Args []Value
}

// Init runs the synthetic global-initializer function once.
func (m *Machine) Init() error {
	m.initOnc.Do(func() {
		_, m.initErr = m.Call(0, ir.InitFuncName, nil)
	})
	return m.initErr
}

// Call executes a function to completion on a fresh thread context and
// returns its value. It is intended for single-threaded setup/verification
// phases; locks are still honored.
func (m *Machine) Call(threadID int, fn string, args []Value) (Value, error) {
	f := m.Prog.Func(fn)
	if f == nil {
		return Null(), fmt.Errorf("interp: no function %q", fn)
	}
	t := m.newThread(threadID)
	// A thread that fails inside an atomic section — by error return or by
	// a panic unwinding toward Run's recovery — must not strand what it
	// holds (locks, meta-locked cells, gate registrations): the engine
	// cleans up so other threads keep making progress.
	defer m.eng.cleanup(t)
	return m.call(t, f, args)
}

func (m *Machine) newThread(id int) *thread {
	limit := m.StepLimit
	if limit <= 0 {
		limit = 50_000_000
	}
	return &thread{m: m, id: id, session: m.rt.NewLockSession(), limit: limit}
}

// Run initializes globals and executes the thread specs concurrently,
// returning the first error (violations included).
func (m *Machine) Run(specs []ThreadSpec) error {
	if err := m.Init(); err != nil {
		return err
	}
	var firstErr atomic.Pointer[errBox]
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		if m.Tracer != nil {
			m.Tracer.ThreadStart(i + 1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A runtime abort that unwinds as a panic — the deadlock
			// monitor's *DeadlockError from AcquireAll, which releases the
			// session's locks before panicking — is reported as this
			// thread's error instead of crashing the process.
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok {
						err = fmt.Errorf("interp: thread %d panic: %v", i+1, r)
					}
					firstErr.CompareAndSwap(nil, &errBox{err})
					if m.Tracer != nil {
						m.Tracer.ThreadEnd(i + 1)
					}
				}
			}()
			if _, err := m.Call(i+1, spec.Fn, spec.Args); err != nil {
				firstErr.CompareAndSwap(nil, &errBox{err})
			}
			if m.Tracer != nil {
				m.Tracer.ThreadEnd(i + 1)
			}
		}()
	}
	wg.Wait()
	if b := firstErr.Load(); b != nil {
		return b.err
	}
	return nil
}

type errBox struct{ err error }

// Global reads a global variable's current value (for test assertions).
func (m *Machine) Global(name string) (Value, error) {
	g := m.Prog.Global(name)
	if g == nil {
		return Null(), fmt.Errorf("interp: no global %q", name)
	}
	return m.cellValue(m.globals, g.Index), nil
}

// Manager exposes the machine's lock manager when it is backed by the
// default sharded runtime (for stats and the Watcher); nil when another
// runtime was installed with UseRuntime.
func (m *Machine) Manager() *mgl.Manager {
	mgr, _ := m.rt.(*mgl.Manager)
	return mgr
}

// cellOf returns the object and offset of a variable's cell.
func (m *Machine) cellOf(frame *Object, v *ir.Var) (*Object, int) {
	if v.Global {
		return m.globals, v.Index
	}
	return frame, v.Index
}

// classOfCell returns the points-to class of a runtime cell.
func (m *Machine) classOfCell(obj *Object, off int) steens.NodeID {
	switch obj.kind {
	case objHeap:
		return m.Pts.SiteClass(obj.Site)
	case objGlobals:
		return m.Pts.VarCell(m.Prog.Globals[off])
	default:
		return m.Pts.VarCell(obj.Fn.Vars[off])
	}
}

// covered reports whether the thread's held locks protect the cell for the
// effect.
func (t *thread) covered(obj *Object, off int, write bool) bool {
	cls := t.m.classOfCell(obj, off)
	addr := obj.Addr(off)
	for _, h := range t.held {
		if write && !h.write {
			continue
		}
		switch {
		case h.global:
			return true
		case h.fine:
			if h.addr == addr {
				return true
			}
		default:
			// Coarse locks and shards both cover their whole class.
			if h.class == cls {
				return true
			}
		}
	}
	return false
}

// checkAccess enforces the §4.2 semantics: inside an atomic section, every
// shared access must be covered. Whether the check applies is the engine's
// call: lock-protected execution (including the hybrid's pessimistic
// fallback) is checked; transactional execution is isolated by the
// protocol, not by lock coverage.
func (t *thread) checkAccess(f *ir.Func, s *ir.Stmt, obj *Object, off int, write bool, what string) error {
	if !t.m.Checked || !t.m.eng.checked(t) {
		return nil
	}
	if obj.allocThread == t.id && obj.allocEpoch == t.epoch {
		return nil // allocated by this thread inside this section
	}
	if t.covered(obj, off, write) {
		return nil
	}
	eff := locks.RO
	if write {
		eff = locks.RW
	}
	return &Violation{Thread: t.id, Fn: f.Name, Pos: s.Pos, What: what, Eff: eff}
}

// sharedVar mirrors the analysis rule for variable cells: only globals and
// address-taken locals are shared.
func sharedVar(v *ir.Var) bool { return v.Global || v.AddrTaken }

// loadCell and storeCell access one slot through the machine's engine.
func (t *thread) loadCell(obj *Object, off int) Value { return t.m.eng.load(t, obj, off) }

func (t *thread) storeCell(obj *Object, off int, v Value) { t.m.eng.store(t, obj, off, v) }

func (t *thread) rerr(f *ir.Func, s *ir.Stmt, format string, args ...any) error {
	return &RuntimeError{Thread: t.id, Fn: f.Name, Pos: s.Pos, Msg: fmt.Sprintf(format, args...)}
}

// readVar reads a variable cell, checking shared-variable coverage.
func (t *thread) readVar(f *ir.Func, s *ir.Stmt, frame *Object, v *ir.Var) (Value, error) {
	obj, off := t.m.cellOf(frame, v)
	if sharedVar(v) {
		if err := t.checkAccess(f, s, obj, off, false, v.Name); err != nil {
			return Null(), err
		}
		t.traceAccess(f, s, obj, off, false, v.Name)
	}
	return t.loadCell(obj, off), nil
}

// writeVar writes a variable cell, checking shared-variable coverage.
func (t *thread) writeVar(f *ir.Func, s *ir.Stmt, frame *Object, v *ir.Var, val Value) error {
	obj, off := t.m.cellOf(frame, v)
	if sharedVar(v) {
		if err := t.checkAccess(f, s, obj, off, true, v.Name); err != nil {
			return err
		}
		t.traceAccess(f, s, obj, off, true, v.Name)
	}
	t.storeCell(obj, off, val)
	return nil
}

// call runs one function on thread t and returns its result value.
func (m *Machine) call(t *thread, f *ir.Func, args []Value) (Value, error) {
	if len(args) != len(f.Params) {
		return Null(), fmt.Errorf("interp: %s expects %d args, got %d", f.Name, len(f.Params), len(args))
	}
	if f.External {
		ext := m.externs[f.Name]
		if ext == nil {
			return Null(), fmt.Errorf("interp: external function %q has no registered implementation", f.Name)
		}
		return ext(args)
	}
	frame := newObject(objFrame, -1, len(f.Vars))
	frame.Fn = f
	for i, p := range f.Params {
		frame.store(p.Index, args[i])
	}
	v, _, _, err := m.exec(t, f, frame, 0, false)
	return v, err
}

// exec interprets f's statements from pc on thread t. It returns the
// function's value when an OpExit is reached (returned true). When sub is
// true it additionally stops at the OpAtomicEnd that brings the thread's
// STM section depth back to zero and reports the statement index to
// continue from — the bound of one transactional attempt of an atomic
// section (see stmSection).
func (m *Machine) exec(t *thread, f *ir.Func, frame *Object, pc int, sub bool) (Value, bool, int, error) {
	for {
		if t.steps++; t.steps > t.limit {
			return Null(), false, -1, fmt.Errorf("interp: thread %d exceeded step limit", t.id)
		}
		// Periodic scheduling point, taken only outside atomic sections so
		// a descheduled thread never holds locks or an open transaction.
		if t.m.Sched != nil && t.steps&63 == 0 && !t.m.eng.inAtomic(t) {
			t.yield(YieldStep)
		}
		s := f.Stmts[pc]
		next := -1
		if len(s.Succs) > 0 {
			next = s.Succs[0]
		}
		switch s.Op {
		case ir.OpExit:
			if f.RetVar != nil {
				return frame.load(f.RetVar.Index), true, -1, nil
			}
			return Null(), true, -1, nil
		case ir.OpGoto:
			// next already set
		case ir.OpBranch:
			v, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			if !v.Truthy() {
				next = s.Succs[1]
			}
		case ir.OpNop:
			spin(t.m.NopWork)
		case ir.OpCopy:
			v, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			if err := t.writeVar(f, s, frame, s.Dst, v); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpConst:
			if err := t.writeVar(f, s, frame, s.Dst, IntV(s.Const)); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpNull:
			if err := t.writeVar(f, s, frame, s.Dst, Null()); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpAddrOf:
			obj, off := m.cellOf(frame, s.Src)
			if err := t.writeVar(f, s, frame, s.Dst, LocV(obj, off)); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpLoad:
			addr, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			if addr.Kind != VLoc {
				return Null(), false, -1, t.rerr(f, s, "dereference of %s", addr)
			}
			if err := t.checkAccess(f, s, addr.Obj, addr.Off, false, "*"+s.Src.Name); err != nil {
				return Null(), false, -1, err
			}
			t.traceAccess(f, s, addr.Obj, addr.Off, false, "*"+s.Src.Name)
			if err := t.writeVar(f, s, frame, s.Dst, t.loadCell(addr.Obj, addr.Off)); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpStore:
			addr, err := t.readVar(f, s, frame, s.Dst)
			if err != nil {
				return Null(), false, -1, err
			}
			val, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			if addr.Kind != VLoc {
				return Null(), false, -1, t.rerr(f, s, "store through %s", addr)
			}
			if err := t.checkAccess(f, s, addr.Obj, addr.Off, true, "*"+s.Dst.Name); err != nil {
				return Null(), false, -1, err
			}
			t.traceAccess(f, s, addr.Obj, addr.Off, true, "*"+s.Dst.Name)
			t.storeCell(addr.Obj, addr.Off, val)
		case ir.OpField:
			base, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			loc, rerr := fieldLoc(t, f, s, base, s.Field)
			if rerr != nil {
				return Null(), false, -1, rerr
			}
			if err := t.writeVar(f, s, frame, s.Dst, loc); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpIndex:
			base, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			idx, err := t.readVar(f, s, frame, s.Src2)
			if err != nil {
				return Null(), false, -1, err
			}
			loc, rerr := indexLoc(t, f, s, base, idx)
			if rerr != nil {
				return Null(), false, -1, rerr
			}
			if err := t.writeVar(f, s, frame, s.Dst, loc); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpNew:
			n := 1
			var si *ir.StructInfo
			if s.Src2 != nil {
				lv, err := t.readVar(f, s, frame, s.Src2)
				if err != nil {
					return Null(), false, -1, err
				}
				if lv.Kind != VInt || lv.Int < 0 {
					return Null(), false, -1, t.rerr(f, s, "bad array length %s", lv)
				}
				n = int(lv.Int)
			} else if s.NewType.Ptr == 0 && s.NewType.Base != "int" {
				si = m.Prog.Structs[s.NewType.Base]
				n = len(si.Fields)
			}
			obj := newObject(objHeap, s.Site, n)
			obj.Struct = si
			// Integer cells start at zero; pointer cells stay null.
			if si != nil {
				for i, ft := range si.Types {
					if !ft.IsPointer() {
						obj.store(i, IntV(0))
					}
				}
			} else if !s.NewType.IsPointer() && s.NewType.Base == "int" {
				for i := 0; i < n; i++ {
					obj.store(i, IntV(0))
				}
			}
			// Objects allocated inside an atomic section are exempt from
			// the coverage check for the rest of this section: they are
			// unreachable by other threads until published through a
			// protected cell (the paper's Lemma 2 reachability proviso).
			if t.m.eng.inAtomic(t) {
				obj.allocThread = t.id
				obj.allocEpoch = t.epoch
			}
			if err := t.writeVar(f, s, frame, s.Dst, LocV(obj, 0)); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpArith:
			l, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			r, err := t.readVar(f, s, frame, s.Src2)
			if err != nil {
				return Null(), false, -1, err
			}
			v, rerr := arith(t, f, s, l, r)
			if rerr != nil {
				return Null(), false, -1, rerr
			}
			if err := t.writeVar(f, s, frame, s.Dst, v); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpUnary:
			x, err := t.readVar(f, s, frame, s.Src)
			if err != nil {
				return Null(), false, -1, err
			}
			var v Value
			if s.Unop == lang.UNot {
				v = boolV(!x.Truthy())
			} else {
				if x.Kind != VInt {
					return Null(), false, -1, t.rerr(f, s, "negation of %s", x)
				}
				v = IntV(-x.Int)
			}
			if err := t.writeVar(f, s, frame, s.Dst, v); err != nil {
				return Null(), false, -1, err
			}
		case ir.OpCall:
			callee := m.Prog.Func(s.Callee)
			if callee == nil {
				return Null(), false, -1, t.rerr(f, s, "unknown function %q", s.Callee)
			}
			var args []Value
			for _, a := range s.Args {
				v, err := t.readVar(f, s, frame, a)
				if err != nil {
					return Null(), false, -1, err
				}
				args = append(args, v)
			}
			ret, err := m.call(t, callee, args)
			if err != nil {
				return Null(), false, -1, err
			}
			if s.Dst != nil {
				if err := t.writeVar(f, s, frame, s.Dst, ret); err != nil {
					return Null(), false, -1, err
				}
			}
		case ir.OpAtomicBegin:
			act, aerr := m.eng.begin(t, f, frame, s, pc, next, sub)
			if aerr != nil {
				return Null(), false, -1, aerr
			}
			if act.stop {
				return act.ret, act.returned, act.cont, nil
			}
			next = act.cont
		case ir.OpAtomicEnd:
			act, aerr := m.eng.end(t, f, s, next, sub)
			if aerr != nil {
				return Null(), false, -1, aerr
			}
			if act.stop {
				return act.ret, act.returned, act.cont, nil
			}
			next = act.cont
		default:
			return Null(), false, -1, t.rerr(f, s, "unhandled op %s", s.Op)
		}
		pc = next
	}
}

func fieldLoc(t *thread, f *ir.Func, s *ir.Stmt, base Value, field ir.FieldID) (Value, error) {
	if base.Kind != VLoc {
		return Null(), t.rerr(f, s, "field access on %s", base)
	}
	if base.Obj.Struct == nil {
		return Null(), t.rerr(f, s, "field access on non-struct object")
	}
	off := base.Obj.Struct.Offset(field)
	if off < 0 {
		return Null(), t.rerr(f, s, "object has no field %s", t.m.Prog.FieldName(field))
	}
	return LocV(base.Obj, base.Off+off), nil
}

func indexLoc(t *thread, f *ir.Func, s *ir.Stmt, base, idx Value) (Value, error) {
	if base.Kind != VLoc {
		return Null(), t.rerr(f, s, "index of %s", base)
	}
	if idx.Kind != VInt {
		return Null(), t.rerr(f, s, "non-int index %s", idx)
	}
	off := base.Off + int(idx.Int)
	if off < 0 || off >= base.Obj.Len() {
		return Null(), t.rerr(f, s, "index %d out of bounds [0,%d)", idx.Int, base.Obj.Len())
	}
	return LocV(base.Obj, off), nil
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

func arith(t *thread, f *ir.Func, s *ir.Stmt, l, r Value) (Value, error) {
	op := s.Arith
	switch op {
	case lang.BEq:
		return boolV(l.Equal(r)), nil
	case lang.BNe:
		return boolV(!l.Equal(r)), nil
	case lang.BAnd:
		return boolV(l.Truthy() && r.Truthy()), nil
	case lang.BOr:
		return boolV(l.Truthy() || r.Truthy()), nil
	}
	if l.Kind != VInt || r.Kind != VInt {
		return Null(), t.rerr(f, s, "arithmetic on %s and %s", l, r)
	}
	a, b := l.Int, r.Int
	switch op {
	case lang.BAdd:
		return IntV(a + b), nil
	case lang.BSub:
		return IntV(a - b), nil
	case lang.BMul:
		return IntV(a * b), nil
	case lang.BDiv:
		if b == 0 {
			return Null(), t.rerr(f, s, "division by zero")
		}
		return IntV(a / b), nil
	case lang.BMod:
		if b == 0 {
			return Null(), t.rerr(f, s, "modulo by zero")
		}
		m := a % b
		if m < 0 {
			m += b
		}
		return IntV(m), nil
	case lang.BLt:
		return boolV(a < b), nil
	case lang.BLe:
		return boolV(a <= b), nil
	case lang.BGt:
		return boolV(a > b), nil
	case lang.BGe:
		return boolV(a >= b), nil
	}
	return Null(), t.rerr(f, s, "unhandled operator %s", op)
}

func spin(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = x*1103515245 + 12345
	}
	_ = x
}

// enterAtomic evaluates the section's lock descriptors and acquires them
// with the acquire-validate-retry protocol: descriptor expressions are
// evaluated, the locks acquired in the canonical order, and the expressions
// re-evaluated under the locks. Another thread may have redirected an
// intermediate pointer between the first evaluation and the acquisition;
// the re-evaluation is race-free (every cell a path traverses is covered
// read-only by the inferred prefix locks), so a stable second evaluation
// proves the descriptors name the right cells for the whole section. On a
// mismatch everything is released and the entry retried — this implements
// the atomic evaluate-and-acquire step of the paper's operational
// semantics.
func (t *thread) enterAtomic(f *ir.Func, frame *Object, section int) {
	if t.session.Nesting() > 0 {
		t.session.AcquireAll()
		return
	}
	t.epoch++
	wait0 := t.session.WaitCount()
	for {
		held, reqs := t.evalSection(frame, section)
		for _, r := range reqs {
			t.session.ToAcquire(r)
		}
		t.session.AcquireAll()
		held2, _ := t.evalSection(frame, section)
		if sameHeld(held, held2) {
			t.held = held
			t.m.recordSectionRun(section, t.session.WaitCount() > wait0)
			return
		}
		t.session.ReleaseAll()
	}
}

// evalSection evaluates all descriptors of a section against the current
// state.
func (t *thread) evalSection(frame *Object, section int) ([]heldLock, []mgl.Req) {
	var held []heldLock
	var reqs []mgl.Req
	for _, l := range t.m.SectionLocks[section].Sorted() {
		h, req, ok := t.evalLock(frame, l)
		if !ok {
			// Record the skip (class -1 covers nothing) so a path that
			// becomes evaluable or stops being evaluable between the two
			// evaluations forces a retry.
			held = append(held, heldLock{class: -1})
			continue
		}
		reqs = append(reqs, req)
		held = append(held, h)
	}
	return held, reqs
}

func sameHeld(a, b []heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalLock turns an inferred lock into a runtime descriptor, evaluating
// fine-grain path expressions against the current state (§5.2 lock
// descriptors). A path that evaluates through null or out of bounds yields
// no descriptor: the access it would protect cannot execute either.
func (t *thread) evalLock(frame *Object, l locks.Inferred) (heldLock, mgl.Req, bool) {
	write := l.Eff == locks.RW
	if !l.Fine {
		if l.IsGlobal() {
			return heldLock{global: true, write: write},
				mgl.Req{Global: true, Write: write}, true
		}
		if l.IsShard() {
			// A shard maps to a synthetic fine leaf under its class: two
			// sections holding different shards take IX on the class and run
			// concurrently; same shard still excludes.
			addr := mgl.ShardAddr(l.Shard)
			return heldLock{shard: true, class: l.Class, addr: addr, write: write},
				mgl.Req{Class: mgl.ClassID(l.Class), Fine: true, Addr: addr, Write: write}, true
		}
		return heldLock{class: l.Class, write: write},
			mgl.Req{Class: mgl.ClassID(l.Class), Write: write}, true
	}
	obj, off := t.m.cellOf(frame, l.Path.Base)
	for _, op := range l.Path.Ops {
		switch op.Kind {
		case locks.OpDeref:
			// Path cells are read through the engine's inspection path so
			// cell-backed engines (hybrid fallback) evaluate descriptors
			// against the versioned state, not the stale direct slots.
			v := t.m.cellValue(obj, off)
			if v.Kind != VLoc {
				return heldLock{}, mgl.Req{}, false
			}
			obj, off = v.Obj, v.Off
		case locks.OpField:
			if obj.Struct == nil {
				return heldLock{}, mgl.Req{}, false
			}
			fo := obj.Struct.Offset(op.Field)
			if fo < 0 {
				return heldLock{}, mgl.Req{}, false
			}
			off += fo
		case locks.OpIndex:
			iv, ok := t.evalIndex(frame, op.Index)
			if !ok {
				return heldLock{}, mgl.Req{}, false
			}
			off += int(iv)
		}
		if off < 0 || off >= obj.Len() {
			return heldLock{}, mgl.Req{}, false
		}
	}
	addr := obj.Addr(off)
	return heldLock{fine: true, class: l.Class, addr: addr, write: write},
		mgl.Req{Class: mgl.ClassID(l.Class), Fine: true, Addr: addr, Write: write}, true
}

// evalIndex evaluates a symbolic index expression at the section entry.
func (t *thread) evalIndex(frame *Object, e *locks.IExpr) (int64, bool) {
	switch e.Kind {
	case locks.IConst:
		return e.Const, true
	case locks.IVar:
		obj, off := t.m.cellOf(frame, e.Var)
		v := t.m.cellValue(obj, off)
		if v.Kind != VInt {
			return 0, false
		}
		return v.Int, true
	case locks.IBin:
		a, ok := t.evalIndex(frame, e.L)
		if !ok {
			return 0, false
		}
		b, ok := t.evalIndex(frame, e.R)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case lang.BAdd:
			return a + b, true
		case lang.BSub:
			return a - b, true
		case lang.BMul:
			return a * b, true
		case lang.BDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case lang.BMod:
			if b == 0 {
				return 0, false
			}
			m := a % b
			if m < 0 {
				m += b
			}
			return m, true
		default:
			return 0, false
		}
	default: // IUn
		a, ok := t.evalIndex(frame, e.L)
		if !ok {
			return 0, false
		}
		if e.Unop == lang.UNeg {
			return -a, true
		}
		if a == 0 {
			return 1, true
		}
		return 0, true
	}
}
