package interp

import (
	"lockinfer/internal/ir"
)

// Engine is one execution strategy for atomic sections. The machine owns
// exactly one engine for its whole life: the pessimistic lock engine
// (inferred locks on an mgl runtime — the default), the optimistic TL2
// engine (UseSTM), or the adaptive hybrid (UseHybrid). The interpreter
// core is engine-agnostic: every section boundary, every shared-slot
// access and every atomicity-sensitive decision (coverage checking,
// allocation epochs, scheduling points) dispatches through this interface,
// so engines differ only in the eight methods below and never by
// conditionals sprinkled through exec.
//
// All methods except peek run on the owning thread's goroutine; peek is
// the quiescent-inspection path (Global, StateDump) and runs with no
// threads executing.
type Engine interface {
	// begin handles an OpAtomicBegin at pc on thread t. next is the
	// statement's successor; sub mirrors exec's sub flag (the bounded
	// re-execution contract of transactional engines).
	begin(t *thread, f *ir.Func, frame *Object, s *ir.Stmt, pc, next int, sub bool) (secAction, error)
	// end handles an OpAtomicEnd.
	end(t *thread, f *ir.Func, s *ir.Stmt, next int, sub bool) (secAction, error)
	// load and store access one slot (frame, global or heap) on behalf of t.
	load(t *thread, obj *Object, off int) Value
	store(t *thread, obj *Object, off int, v Value)
	// peek reads a slot for quiescent inspection.
	peek(m *Machine, obj *Object, off int) Value
	// checked reports whether the §4.2 lock-coverage check applies to t's
	// current execution (engines whose isolation comes from the transaction
	// protocol answer false there).
	checked(t *thread) bool
	// inAtomic reports whether t is inside an atomic section.
	inAtomic(t *thread) bool
	// cleanup releases whatever t still holds after an error unwound it
	// (locks, meta-locked cells, gate registrations).
	cleanup(t *thread)
}

// secAction is an engine's verdict on a section boundary: either continue
// the enclosing exec loop at cont, or stop exec immediately and return
// (ret, returned, cont) — the transactional engines use stop both to
// propagate a return out of a section body and to bound one attempt.
type secAction struct {
	stop     bool
	ret      Value
	returned bool
	cont     int
}

// lockEngine is the pessimistic default: sections acquire their inferred
// lock plan with the §5.2 evaluate–acquire–revalidate protocol and shared
// slots are plain direct memory, protected by lock coverage.
type lockEngine struct{}

func (lockEngine) begin(t *thread, f *ir.Func, frame *Object, s *ir.Stmt, pc, next int, sub bool) (secAction, error) {
	outer := t.session.Nesting() == 0
	if outer {
		t.yield(YieldAtomicEnter)
	}
	t.enterAtomic(f, frame, s.Section)
	if outer && t.m.Tracer != nil {
		t.m.Tracer.SectionEnter(t.id, s.Section, t.session.HeldSteps())
	}
	return secAction{cont: next}, nil
}

func (lockEngine) end(t *thread, f *ir.Func, s *ir.Stmt, next int, sub bool) (secAction, error) {
	if t.session.Nesting() == 1 && t.m.Tracer != nil {
		t.m.Tracer.SectionExit(t.id, s.Section, t.session.HeldSteps())
	}
	t.session.ReleaseAll()
	if t.session.Nesting() == 0 {
		t.held = nil
		t.yield(YieldAtomicExit)
	}
	return secAction{cont: next}, nil
}

func (lockEngine) load(t *thread, obj *Object, off int) Value { return obj.load(off) }

func (lockEngine) store(t *thread, obj *Object, off int, v Value) { obj.store(off, v) }

func (lockEngine) peek(m *Machine, obj *Object, off int) Value { return obj.load(off) }

func (lockEngine) checked(t *thread) bool { return t.session.Nesting() > 0 }

func (lockEngine) inAtomic(t *thread) bool { return t.session.Nesting() > 0 }

// cleanup drains the session so a thread that failed inside an atomic
// section does not strand its locks.
func (lockEngine) cleanup(t *thread) {
	for t.session.Nesting() > 0 {
		t.session.ReleaseAll()
	}
	t.held = nil
}
