package interp

import (
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/mgl"
	"lockinfer/internal/steens"
)

// AccessEvent describes one dynamic access to a potentially-shared cell:
// a global, an address-taken local, or a heap slot.
type AccessEvent struct {
	Thread int
	// Addr is the program-unique address of the cell; Class its points-to
	// partition.
	Addr  uint64
	Class steens.NodeID
	Write bool
	// Atomic reports whether the access happened inside an atomic section.
	Atomic bool
	Fn     string
	Pos    lang.Pos
	What   string
}

// Tracer observes the machine's execution for dynamic analysis (the
// concurrency oracle). Callbacks run on the executing thread's goroutine;
// under Machine.Run several goroutines may call concurrently, so tracers
// must synchronize internally.
type Tracer interface {
	// Access fires on every potentially-shared cell access, inside or
	// outside atomic sections.
	Access(ev AccessEvent)
	// SectionEnter fires after an outermost atomic section acquired its
	// locks; held lists the acquired plan in canonical order.
	SectionEnter(thread, section int, held []mgl.PlanStep)
	// SectionExit fires when an outermost atomic section is about to
	// release its locks.
	SectionExit(thread, section int, held []mgl.PlanStep)
	// ThreadStart fires in the spawning goroutine before a Run thread
	// begins; ThreadEnd fires on the thread itself after its entry function
	// returned.
	ThreadStart(thread int)
	ThreadEnd(thread int)
}

// YieldPoint classifies a scheduling point.
type YieldPoint uint8

// Scheduling points: entry to an outermost atomic section, exit from one,
// and the periodic non-atomic checkpoint.
const (
	YieldAtomicEnter YieldPoint = iota
	YieldAtomicExit
	YieldStep
)

// Scheduler serializes thread execution for systematic schedule
// exploration. When Machine.Sched is set, every thread blocks in Yield at
// each scheduling point until the scheduler elects it to continue. All
// scheduling points are lock-free program locations (a descheduled thread
// never holds locks), so the elected thread can always make progress.
type Scheduler interface {
	Yield(thread int, point YieldPoint)
}

// yield hands control to the scheduler, if one is installed. Scheduling
// points are only taken outside atomic sections.
func (t *thread) yield(point YieldPoint) {
	if t.m.Sched == nil || t.id == 0 {
		return
	}
	t.m.Sched.Yield(t.id, point)
}

// traceAccess reports a shared-cell access to the tracer.
func (t *thread) traceAccess(f *ir.Func, s *ir.Stmt, obj *Object, off int, write bool, what string) {
	tr := t.m.Tracer
	if tr == nil {
		return
	}
	tr.Access(AccessEvent{
		Thread: t.id,
		Addr:   obj.Addr(off),
		Class:  t.m.classOfCell(obj, off),
		Write:  write,
		Atomic: t.m.eng.inAtomic(t),
		Fn:     f.Name,
		Pos:    s.Pos,
		What:   what,
	})
}
