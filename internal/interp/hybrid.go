package interp

import (
	"lockinfer/internal/hybrid"
	"lockinfer/internal/ir"
	"lockinfer/internal/mem"
	"lockinfer/internal/stm"
)

// Adaptive execution. The hybrid engine runs every outermost atomic
// section optimistically first — a TL2 transaction with a per-section abort
// budget — and re-executes it under its inferred lock plan when the budget
// is exhausted; the hybrid.Policy keeps hot sections pessimistic (sticky
// fallback) and lets quiescent ones drift back to optimism. Every shared
// slot is cell-backed (the stm engine's cell table), which is what lets the
// two modes coexist:
//
//   - Optimistic sections are ordinary TL2 transactions except for the
//     commit hook: a writing commit first asks the engine's gate for the
//     lock-free fast path, and while any pessimistic section is active it is
//     denied and must instead acquire the committing section's inferred
//     lock plan for the duration of the commit. The mgl hierarchy then
//     orders the commit against every pessimistic holder it conflicts with.
//   - Pessimistic sections acquire their plan with the §5.2
//     evaluate–acquire–revalidate protocol (after closing the gate, so
//     in-flight fast-path commits drain first and none can slip between
//     plan evaluation and the section body), read cells directly, and
//     meta-lock each cell they store to — holding the meta locks to section
//     exit, where one clock bump publishes all written cells. To a
//     concurrent transaction the whole section is one atomic commit:
//     reads of its cells abort until publication, and the publication
//     version invalidates conflicting snapshots.
//
// The commit hook evaluates lock descriptors outside the acquire-
// revalidate loop (the commit's read set was already validated, and TL2
// re-validates after the locks are held), so its coverage is approximate;
// the transaction protocol, not the plan, is what guarantees the commit's
// atomicity — the plan only orders it against pessimistic holders.
type hybridEngine struct {
	rt   *stm.Runtime
	pol  *hybrid.Policy
	gate hybrid.Gate
}

func (e *hybridEngine) begin(t *thread, f *ir.Func, frame *Object, s *ir.Stmt, pc, next int, sub bool) (secAction, error) {
	if t.stmDepth > 0 {
		t.stmDepth++ // flattened nesting: join the outer transaction
		return secAction{cont: next}, nil
	}
	if t.session.Nesting() > 0 {
		// Nested inside a pessimistic section: the outer plan covers it.
		t.session.AcquireAll()
		return secAction{cont: next}, nil
	}
	mode, budget := e.pol.Decide(s.Section)
	var aborts int
	if mode == hybrid.Opt {
		ret, returned, cont, committed, n, err := t.hybridOptSection(e, f, frame, pc, s.Section, budget)
		if err != nil {
			return secAction{}, err
		}
		if committed {
			e.pol.RecordOptimistic(s.Section, n)
			t.m.recordSectionOpt(s.Section, n)
			if returned {
				return secAction{stop: true, ret: ret, returned: true, cont: -1}, nil
			}
			return secAction{cont: cont}, nil
		}
		aborts = n
		e.pol.RecordFallback(s.Section, aborts)
		t.m.recordSectionFallback(s.Section, aborts)
	}
	// Pessimistic entry. The gate closes before the locks are acquired so
	// that once the plan's revalidation succeeds, no fast-path commit can
	// mutate the cells it named; pessGated is set first so an abort inside
	// AcquireAll (deadlock monitor) reopens the gate via cleanup.
	t.yield(YieldAtomicEnter)
	t.pessWait0 = t.session.WaitCount()
	e.gate.EnterPess()
	t.pessGated = true
	t.enterAtomic(f, frame, s.Section)
	if t.m.Tracer != nil {
		t.m.Tracer.SectionEnter(t.id, s.Section, t.session.HeldSteps())
	}
	return secAction{cont: next}, nil
}

func (e *hybridEngine) end(t *thread, f *ir.Func, s *ir.Stmt, next int, sub bool) (secAction, error) {
	if t.stmDepth > 0 {
		t.stmDepth--
		if t.stmDepth == 0 && sub {
			// One transactional attempt of the outermost section is complete.
			return secAction{stop: true, cont: next}, nil
		}
		return secAction{cont: next}, nil
	}
	if t.session.Nesting() == 1 {
		if t.m.Tracer != nil {
			t.m.Tracer.SectionExit(t.id, s.Section, t.session.HeldSteps())
		}
		// Publish before releasing the plan: a commit that was blocked on
		// the plan must observe the published versions, not locked metas.
		e.rt.PessPublish(t.pessCells)
		t.pessCells = t.pessCells[:0]
		contended := t.session.WaitCount() > t.pessWait0
		t.session.ReleaseAll()
		t.held = nil
		if t.pessGated {
			e.gate.ExitPess()
			t.pessGated = false
		}
		e.pol.RecordPessimistic(s.Section, contended)
		t.yield(YieldAtomicExit)
		return secAction{cont: next}, nil
	}
	t.session.ReleaseAll()
	return secAction{cont: next}, nil
}

func (e *hybridEngine) load(t *thread, obj *Object, off int) Value {
	if obj.kind == objFrame {
		return obj.load(off)
	}
	c := t.m.cellFor(obj, off)
	if t.tx != nil {
		return t.tx.Load(c).(Value)
	}
	// Pessimistic sections and non-atomic code read the cell directly: the
	// lock plan (or the absence of concurrent atomicity obligations) is
	// what isolates them.
	return c.Load().(Value)
}

func (e *hybridEngine) store(t *thread, obj *Object, off int, v Value) {
	if obj.kind == objFrame {
		if t.stmDepth > 0 {
			t.txUndo = append(t.txUndo, undoCell{obj, off, obj.load(off)})
		}
		obj.store(off, v)
		return
	}
	c := t.m.cellFor(obj, off)
	if t.tx != nil {
		t.tx.Store(c, v)
		return
	}
	if t.session.Nesting() > 0 {
		// Pessimistic in-place store: meta-lock the cell on first write and
		// hold it to section exit, so concurrent transactions cannot read
		// the section's intermediate states.
		if !t.holdsPessCell(c) {
			stm.PessLock(c)
			t.pessCells = append(t.pessCells, c)
		}
	}
	c.Store(v)
}

func (t *thread) holdsPessCell(c *mem.Cell) bool {
	for _, h := range t.pessCells {
		if h == c {
			return true
		}
	}
	return false
}

func (e *hybridEngine) peek(m *Machine, obj *Object, off int) Value { return m.peekCell(obj, off) }

// checked: the §4.2 coverage check applies to pessimistic sections only;
// optimistic attempts are isolated by the transaction protocol.
func (e *hybridEngine) checked(t *thread) bool { return t.session.Nesting() > 0 }

func (e *hybridEngine) inAtomic(t *thread) bool {
	return t.stmDepth > 0 || t.session.Nesting() > 0
}

// cleanup releases everything an error unwound past: the transaction state,
// meta-locked cells (published so spinning readers can proceed; the run is
// failing anyway), the lock session and the gate.
func (e *hybridEngine) cleanup(t *thread) {
	t.tx = nil
	t.stmDepth = 0
	t.txUndo = t.txUndo[:0]
	e.rt.PessPublish(t.pessCells)
	t.pessCells = t.pessCells[:0]
	for t.session.Nesting() > 0 {
		t.session.ReleaseAll()
	}
	t.held = nil
	if t.pessGated {
		e.gate.ExitPess()
		t.pessGated = false
	}
}

// hybridOptSection executes one outermost atomic section optimistically:
// up to budget transactional attempts (0 = unbounded) of the statements
// from the section's entry to its matching OpAtomicEnd. On commit it
// mirrors exec's contract like stmSection; on budget exhaustion it rolls
// back the last attempt's frame effects so the caller can re-execute the
// section pessimistically from the same local state.
func (t *thread) hybridOptSection(e *hybridEngine, f *ir.Func, frame *Object, beginPC, section, budget int) (ret Value, returned bool, contPC int, committed bool, aborts int, err error) {
	t.yield(YieldAtomicEnter)
	t.epoch++
	start := f.Stmts[beginPC].Succs[0]
	defer func() {
		t.stmDepth = 0
		t.tx = nil
		if committed {
			t.txUndo = t.txUndo[:0]
		} else {
			t.rollbackUndo()
		}
		if r := recover(); r != nil {
			if _, bail := r.(stmBail); !bail {
				panic(r)
			}
		}
	}()
	hooks := &stm.Hooks{PreWriteCommit: func() func() {
		if e.gate.EnterFree() {
			return e.gate.ExitFree
		}
		// A pessimistic section is active: commit under the section's
		// inferred plan so the lock hierarchy orders this commit against
		// every pessimistic holder it conflicts with.
		_, reqs := t.evalSection(frame, section)
		for _, r := range reqs {
			t.session.ToAcquire(r)
		}
		t.session.AcquireAll()
		return t.session.ReleaseAll
	}}
	committed, aborts = e.rt.AtomicBounded(func(tx *stm.Tx) {
		t.rollbackUndo()
		t.tx = tx
		t.stmDepth = 1
		ret, returned, contPC, err = t.m.exec(t, f, frame, start, true)
		t.tx = nil
		if err != nil {
			panic(stmBail{})
		}
	}, budget, hooks)
	if committed {
		t.yield(YieldAtomicExit)
	}
	return ret, returned, contPC, committed, aborts, err
}
