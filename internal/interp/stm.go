package interp

import (
	"lockinfer/internal/ir"
	"lockinfer/internal/mem"
	"lockinfer/internal/stm"
)

// Optimistic execution. When a machine runs on a TL2 runtime (UseSTM),
// every shared slot — globals and heap cells — is backed by a versioned
// mem.Cell, and atomic sections execute as transactions: reads and writes
// inside a section go through the transaction's read/write sets, the
// commit validates the read set against the global version clock, and
// conflicting sections retry. Frame slots stay direct (they are
// thread-private), but direct frame stores made inside an attempt are
// undo-logged so a retried attempt re-executes from the same local state.
// The hybrid engine (hybrid.go) reuses all of this cell machinery for its
// optimistic path.

// cellKey identifies one shared slot in the machine's cell table.
type cellKey struct {
	obj *Object
	off int
}

// cellFor returns the versioned cell backing a shared slot, creating it on
// first access seeded with the slot's direct value. Seeding is safe under
// concurrency: a global or heap slot's direct value is only written before
// the object is reachable by other threads (lowering-time init and OpNew
// zero-fill), so racing creators observe the same seed.
func (m *Machine) cellFor(obj *Object, off int) *mem.Cell {
	k := cellKey{obj, off}
	if c, ok := m.stmCells.Load(k); ok {
		return c.(*mem.Cell)
	}
	c, _ := m.stmCells.LoadOrStore(k, mem.NewCell(obj.load(off)))
	return c.(*mem.Cell)
}

// peekCell reads a slot for quiescent inspection through the cell table
// when the slot has a cell, directly otherwise (shared by the cell-backed
// engines' peek).
func (m *Machine) peekCell(obj *Object, off int) Value {
	if obj.kind != objFrame {
		if c, ok := m.stmCells.Load(cellKey{obj, off}); ok {
			return c.(*mem.Cell).Load().(Value)
		}
	}
	return obj.load(off)
}

// cellValue reads a slot for inspection (Global, StateDump) through the
// machine's engine.
func (m *Machine) cellValue(obj *Object, off int) Value {
	return m.eng.peek(m, obj, off)
}

// undoCell is one direct frame store performed inside a transactional
// attempt; it is rolled back before the attempt is retried.
type undoCell struct {
	obj *Object
	off int
	old Value
}

func (t *thread) rollbackUndo() {
	for i := len(t.txUndo) - 1; i >= 0; i-- {
		u := t.txUndo[i]
		u.obj.store(u.off, u.old)
	}
	t.txUndo = t.txUndo[:0]
}

// stmBail unwinds a transactional attempt that failed with an interpreter
// error: the attempt must not commit, and the runtime's retry loop must not
// re-execute it. stm's attempt recovery re-panics anything that is not its
// own abort signal, so the bail travels straight back to the section
// driver.
type stmBail struct{}

// stmEngine is the pure optimistic engine: every outermost section is one
// TL2 transaction, retried until it commits. The §4.2 coverage checker and
// the lock plan are inert — isolation comes from the transaction protocol.
type stmEngine struct {
	rt *stm.Runtime
}

func (e *stmEngine) begin(t *thread, f *ir.Func, frame *Object, s *ir.Stmt, pc, next int, sub bool) (secAction, error) {
	if t.stmDepth > 0 {
		t.stmDepth++ // flattened nesting: join the outer transaction
		return secAction{cont: next}, nil
	}
	ret, returned, cont, err := t.stmSection(e.rt, f, frame, pc)
	if err != nil {
		return secAction{}, err
	}
	if returned {
		return secAction{stop: true, ret: ret, returned: true, cont: -1}, nil
	}
	return secAction{cont: cont}, nil
}

func (e *stmEngine) end(t *thread, f *ir.Func, s *ir.Stmt, next int, sub bool) (secAction, error) {
	t.stmDepth--
	if t.stmDepth == 0 && sub {
		// One transactional attempt of the outermost section is complete;
		// hand control back to the section driver for commit.
		return secAction{stop: true, cont: next}, nil
	}
	return secAction{cont: next}, nil
}

func (e *stmEngine) load(t *thread, obj *Object, off int) Value {
	if obj.kind == objFrame {
		return obj.load(off)
	}
	c := t.m.cellFor(obj, off)
	if t.tx != nil {
		return t.tx.Load(c).(Value)
	}
	return c.Load().(Value)
}

func (e *stmEngine) store(t *thread, obj *Object, off int, v Value) {
	if obj.kind == objFrame {
		if t.stmDepth > 0 {
			t.txUndo = append(t.txUndo, undoCell{obj, off, obj.load(off)})
		}
		obj.store(off, v)
		return
	}
	c := t.m.cellFor(obj, off)
	if t.tx != nil {
		t.tx.Store(c, v)
		return
	}
	c.Store(v)
}

func (e *stmEngine) peek(m *Machine, obj *Object, off int) Value { return m.peekCell(obj, off) }

func (e *stmEngine) checked(t *thread) bool { return false }

func (e *stmEngine) inAtomic(t *thread) bool { return t.stmDepth > 0 }

// cleanup: stmSection's defer already resets all per-attempt state.
func (e *stmEngine) cleanup(t *thread) {}

// stmSection executes one outermost atomic section as a TL2 transaction:
// the statements from the section's entry to its matching OpAtomicEnd run
// inside rt.Atomic, with shared accesses going through the transaction
// (engine load/store) and frame effects undone between attempts. It
// mirrors exec's contract: either the section returned out of the function
// (ret, true), or execution continues at contPC after the section's end.
func (t *thread) stmSection(rt *stm.Runtime, f *ir.Func, frame *Object, beginPC int) (ret Value, returned bool, contPC int, err error) {
	t.epoch++
	start := f.Stmts[beginPC].Succs[0]
	defer func() {
		t.stmDepth = 0
		t.tx = nil
		t.txUndo = t.txUndo[:0]
		if r := recover(); r != nil {
			if _, bail := r.(stmBail); !bail {
				panic(r)
			}
		}
	}()
	rt.Atomic(func(tx *stm.Tx) {
		t.rollbackUndo()
		t.tx = tx
		t.stmDepth = 1
		ret, returned, contPC, err = t.m.exec(t, f, frame, start, true)
		t.tx = nil
		if err != nil {
			panic(stmBail{})
		}
	})
	return ret, returned, contPC, nil
}
