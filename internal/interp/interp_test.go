package interp

import (
	"errors"
	"strings"
	"testing"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// compile parses, lowers and analyzes a program at the given k.
func compile(t *testing.T, src string, k int) (*ir.Program, *steens.Analysis, map[int]locks.Set) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	pts := steens.Run(prog)
	results := infer.New(prog, pts, infer.Options{K: k}).AnalyzeAll()
	return prog, pts, transform.SectionLocks(results)
}

const counterSrc = `
int counter;
void worker(int n) {
  int i = 0;
  while (i < n) {
    atomic {
      counter = counter + 1;
    }
    i = i + 1;
  }
}
`

func TestSequentialExecution(t *testing.T) {
	src := `
int result;
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() {
  result = fib(10);
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	if err := m.Run([]ThreadSpec{{Fn: "main"}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, err := m.Global("result")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != VInt || v.Int != 55 {
		t.Errorf("fib(10) = %s, want 55", v)
	}
}

func TestHeapStructures(t *testing.T) {
	src := `
struct node { node* next; int val; }
int sum;
node* build(int n) {
  node* head = null;
  int i = 0;
  while (i < n) {
    node* e = new node;
    e->val = i;
    e->next = head;
    head = e;
    i = i + 1;
  }
  return head;
}
void main() {
  node* l = build(10);
  sum = 0;
  while (l != null) {
    sum = sum + l->val;
    l = l->next;
  }
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	if err := m.Run([]ThreadSpec{{Fn: "main"}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := m.Global("sum")
	if v.Int != 45 {
		t.Errorf("sum = %s, want 45", v)
	}
}

func TestArrays(t *testing.T) {
	src := `
int total;
void main() {
  int* a = new int[8];
  int i = 0;
  while (i < 8) {
    a[i] = i * i;
    i = i + 1;
  }
  total = a[3] + a[7];
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	if err := m.Run([]ThreadSpec{{Fn: "main"}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := m.Global("total")
	if v.Int != 9+49 {
		t.Errorf("total = %s, want 58", v)
	}
}

// TestCheckedCounter runs concurrent increments under the inferred locks in
// checked mode: no violation may occur and no update may be lost.
func TestCheckedCounter(t *testing.T) {
	prog, pts, plan := compile(t, counterSrc, 3)
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	const threads, n = 8, 300
	specs := make([]ThreadSpec, threads)
	for i := range specs {
		specs[i] = ThreadSpec{Fn: "worker", Args: []Value{IntV(n)}}
	}
	if err := m.Run(specs); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := m.Global("counter")
	if v.Int != threads*n {
		t.Errorf("counter = %s, want %d (atomicity broken)", v, threads*n)
	}
}

// TestViolationDetected removes all locks and checks that the checker
// reports the stuck state.
func TestViolationDetected(t *testing.T) {
	prog, pts, _ := compile(t, counterSrc, 3)
	empty := map[int]locks.Set{}
	m := NewMachine(prog, pts, empty)
	m.Checked = true
	err := m.Run([]ThreadSpec{{Fn: "worker", Args: []Value{IntV(1)}}})
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a Violation, got %v", err)
	}
}

const moveSrc = `
struct elem { elem* next; int* data; }
struct list { elem* head; }
list* l1;
list* l2;

void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null) {
        x = x->next;
      }
      x->next = y;
    }
  }
}

void setup(int n) {
  l1 = new list;
  l2 = new list;
  int i = 0;
  while (i < n) {
    elem* e = new elem;
    e->next = l1->head;
    l1->head = e;
    i = i + 1;
  }
}

int count(list* l) {
  int n = 0;
  elem* e;
  atomic {
    e = l->head;
    while (e != null) {
      n = n + 1;
      e = e->next;
    }
  }
  return n;
}

int total() {
  return count(l1) + count(l2);
}

void shuttle(int iters, int dir) {
  int i = 0;
  while (i < iters) {
    if (dir == 0) {
      move(l1, l2);
    } else {
      move(l2, l1);
    }
    i = i + 1;
  }
}
`

// TestMoveConcurrent runs the paper's Figure 1 scenario: concurrent
// move(l1,l2) and move(l2,l1). The naive fine-grain scheme deadlocks here;
// the inferred multi-grain locks must neither deadlock, nor lose elements,
// nor trip the soundness checker.
func TestMoveConcurrent(t *testing.T) {
	for _, k := range []int{0, 3, 9} {
		prog, pts, plan := compile(t, moveSrc, k)
		m := NewMachine(prog, pts, plan)
		m.Checked = true
		if err := m.Init(); err != nil {
			t.Fatalf("k=%d init: %v", k, err)
		}
		if _, err := m.Call(0, "setup", []Value{IntV(16)}); err != nil {
			t.Fatalf("k=%d setup: %v", k, err)
		}
		specs := []ThreadSpec{
			{Fn: "shuttle", Args: []Value{IntV(60), IntV(0)}},
			{Fn: "shuttle", Args: []Value{IntV(60), IntV(1)}},
			{Fn: "shuttle", Args: []Value{IntV(60), IntV(0)}},
			{Fn: "shuttle", Args: []Value{IntV(60), IntV(1)}},
		}
		if err := m.Run(specs); err != nil {
			t.Fatalf("k=%d run: %v", k, err)
		}
		v, err := m.Call(0, "total", nil)
		if err != nil {
			t.Fatalf("k=%d total: %v", k, err)
		}
		if v.Int != 16 {
			t.Errorf("k=%d: total elements = %s, want 16 (atomicity broken)", k, v)
		}
	}
}

// TestGlobalLockBaseline runs the same scenario under the single global
// lock plan.
func TestGlobalLockBaseline(t *testing.T) {
	prog, pts, _ := compile(t, moveSrc, 3)
	plan := transform.GlobalLockPlan(prog)
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "setup", []Value{IntV(10)}); err != nil {
		t.Fatal(err)
	}
	specs := []ThreadSpec{
		{Fn: "shuttle", Args: []Value{IntV(40), IntV(0)}},
		{Fn: "shuttle", Args: []Value{IntV(40), IntV(1)}},
	}
	if err := m.Run(specs); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Call(0, "total", nil)
	if v.Int != 10 {
		t.Errorf("total = %s, want 10", v)
	}
}

// TestCoarsenedPlan checks the k=0-shaped coarse plan is also sound.
func TestCoarsenedPlan(t *testing.T) {
	prog, pts, plan := compile(t, moveSrc, 9)
	coarse := transform.Coarsen(plan)
	m := NewMachine(prog, pts, coarse)
	m.Checked = true
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "setup", []Value{IntV(12)}); err != nil {
		t.Fatal(err)
	}
	specs := []ThreadSpec{
		{Fn: "shuttle", Args: []Value{IntV(50), IntV(0)}},
		{Fn: "shuttle", Args: []Value{IntV(50), IntV(1)}},
	}
	if err := m.Run(specs); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Call(0, "total", nil)
	if v.Int != 12 {
		t.Errorf("total = %s, want 12", v)
	}
}

// TestNestedAtomicRuntime checks §5.3: an inner section inside a held outer
// section acquires nothing new and releases nothing early.
func TestNestedAtomicRuntime(t *testing.T) {
	src := `
int a;
int b;
void outer() {
  atomic {
    a = a + 1;
    atomic {
      b = b + 1;
    }
    a = a + 1;
  }
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	specs := make([]ThreadSpec, 6)
	for i := range specs {
		specs[i] = ThreadSpec{Fn: "outer"}
	}
	if err := m.Run(specs); err != nil {
		t.Fatalf("run: %v", err)
	}
	av, _ := m.Global("a")
	bv, _ := m.Global("b")
	if av.Int != 12 || bv.Int != 6 {
		t.Errorf("a=%s b=%s, want 12 and 6", av, bv)
	}
}

// TestRuntimeErrors checks error reporting for null dereference and
// division by zero.
func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"nullderef", `
struct node { node* next; int v; }
void main() { node* n = null; int x = n->v; }
`, "dereference"},
		{"divzero", `
void main() { int a = 1; int b = 0; int c = a / b; }
`, "division by zero"},
		{"oob", `
void main() { int* a = new int[2]; a[5] = 1; }
`, "out of bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, pts, plan := compile(t, tc.src, 3)
			m := NewMachine(prog, pts, plan)
			err := m.Run([]ThreadSpec{{Fn: "main"}})
			var re *RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("expected RuntimeError, got %v", err)
			}
		})
	}
}

// TestExternFunctions: external (pre-compiled) functions run through
// registered host implementations, and their spec-derived locks keep the
// checked execution sound.
func TestExternFunctions(t *testing.T) {
	src := `
struct rec { int key; int val; }
rec* store;
int hash(int x);

void init() {
  store = new rec;
}

void bump(int k) {
  atomic {
    int h = hash(k);
    store->key = h;
    store->val = store->val + 1;
  }
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]steens.ExternSpec{"hash": {}}
	pts := steens.RunWithSpecs(prog, specs)
	results := infer.New(prog, pts, infer.Options{K: 3, Specs: specs}).AnalyzeAll()
	m := NewMachine(prog, pts, transform.SectionLocks(results))
	m.Checked = true
	m.RegisterExtern("hash", func(args []Value) (Value, error) {
		return IntV(args[0].Int * 2654435761 % 1024), nil
	})
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		t.Fatal(err)
	}
	specsT := []ThreadSpec{
		{Fn: "bump", Args: []Value{IntV(3)}},
		{Fn: "bump", Args: []Value{IntV(5)}},
		{Fn: "bump", Args: []Value{IntV(7)}},
	}
	if err := m.Run(specsT); err != nil {
		t.Fatalf("checked run with extern: %v", err)
	}
}

// TestExternUnregistered: calling an external function without a host
// implementation is an error, not a crash.
func TestExternUnregistered(t *testing.T) {
	src := `
int mystery(int x);
void main() { int v = mystery(1); }
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	err := m.Run([]ThreadSpec{{Fn: "main"}})
	if err == nil || !strings.Contains(err.Error(), "no registered implementation") {
		t.Fatalf("expected unregistered-extern error, got %v", err)
	}
}

// TestStepLimit: runaway loops surface as errors, not hangs.
func TestStepLimit(t *testing.T) {
	src := `
void spin() {
  int i = 1;
  while (i > 0) {
    i = i + 1;
  }
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	m.StepLimit = 10_000
	err := m.Run([]ThreadSpec{{Fn: "spin"}})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

// TestDeepRecursion: recursive calls nest frames correctly.
func TestDeepRecursion(t *testing.T) {
	src := `
int depth(int n) {
  if (n == 0) { return 0; }
  return 1 + depth(n - 1);
}
int out;
void main() { out = depth(500); }
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	if err := m.Run([]ThreadSpec{{Fn: "main"}}); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Global("out")
	if v.Int != 500 {
		t.Errorf("depth = %s, want 500", v)
	}
}

// TestAddrOfLocals: address-taken locals work through pointers and are
// protected inside sections.
func TestAddrOfLocals(t *testing.T) {
	src := `
int result;
void main() {
  int x = 5;
  int* p = &x;
  atomic {
    *p = *p + 37;
  }
  result = x;
}
`
	prog, pts, plan := compile(t, src, 3)
	m := NewMachine(prog, pts, plan)
	m.Checked = true
	if err := m.Run([]ThreadSpec{{Fn: "main"}}); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Global("result")
	if v.Int != 42 {
		t.Errorf("result = %s, want 42", v)
	}
}
