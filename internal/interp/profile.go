package interp

import (
	"sync/atomic"

	"lockinfer/internal/locks"
)

// Runtime lock profiling: with EnableProfiling set, the machine's lock
// runtime counts per-node acquires/waits (see mgl's profile support) and
// the engines count per-section runs, waits, aborts and fallbacks; Profile
// exports both as a locks.Profile — the feedback artifact the
// profile-guided refinement pass (internal/refine) consumes.

// secStat is the per-section counter set. Counters are atomic: sections are
// entered concurrently by every thread of a run.
type secStat struct {
	runs      atomic.Int64
	waits     atomic.Int64
	aborts    atomic.Int64
	fallbacks atomic.Int64
}

// EnableProfiling turns on lock-profile collection. It must be called
// before Init, Call or Run, and cannot be turned off again.
func (m *Machine) EnableProfiling() {
	m.profiling = true
	m.rt.EnableProfiling()
}

// Profiling reports whether profile collection is enabled.
func (m *Machine) Profiling() bool { return m.profiling }

// secStats returns (creating on first use) one section's counters.
func (m *Machine) secStats(section int) *secStat {
	m.secMu.Lock()
	defer m.secMu.Unlock()
	if m.secProf == nil {
		m.secProf = map[int]*secStat{}
	}
	st := m.secProf[section]
	if st == nil {
		st = &secStat{}
		m.secProf[section] = st
	}
	return st
}

// recordSectionRun counts one pessimistic (lock-plan) execution of a
// section and whether its plan acquisition blocked.
func (m *Machine) recordSectionRun(section int, waited bool) {
	if !m.profiling {
		return
	}
	st := m.secStats(section)
	st.runs.Add(1)
	if waited {
		st.waits.Add(1)
	}
}

// recordSectionOpt counts the aborted attempts of a committed optimistic
// execution (hybrid engine).
func (m *Machine) recordSectionOpt(section int, aborts int) {
	if !m.profiling || aborts == 0 {
		return
	}
	m.secStats(section).aborts.Add(int64(aborts))
}

// recordSectionFallback counts one exhausted abort budget (hybrid engine):
// the attempts it burned plus the fallback itself.
func (m *Machine) recordSectionFallback(section int, aborts int) {
	if !m.profiling {
		return
	}
	st := m.secStats(section)
	st.aborts.Add(int64(aborts))
	st.fallbacks.Add(1)
}

// Profile exports the run's lock profile: the runtime's per-lock counters
// merged with the machine's per-section counters. Safe to call while
// threads run (a live scrape observes a consistent prefix).
func (m *Machine) Profile(source, engine string) *locks.Profile {
	p := locks.NewProfile(source, engine)
	m.rt.FillProfile(p)
	m.secMu.Lock()
	defer m.secMu.Unlock()
	for id, st := range m.secProf {
		sp := p.Section(id)
		sp.Runs += st.runs.Load()
		sp.Waits += st.waits.Load()
		sp.Aborts += st.aborts.Load()
		sp.Fallbacks += st.fallbacks.Load()
	}
	return p
}

// SetSectionLocks replaces the lock plan the machine executes under (the
// lockinferd refine endpoint swaps in a refined plan). It must not be
// called while threads are running.
func (m *Machine) SetSectionLocks(plans map[int]locks.Set) { m.SectionLocks = plans }
