package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// Hashtable2 is the fixed-size hashtable variant of §6.1: a put prepends at
// the bucket head, updating a single shared location, and the table never
// resizes. With k≥2 the inference assigns the put a fine-grain lock on
// &(buckets[hash(key)]) whose index is computable at the section entry;
// gets and removes traverse the chain and keep a coarse lock. This is the
// benchmark where fine-grain locks halve the coarse execution time in the
// put-heavy setting.
type Hashtable2 struct {
	name     string
	mix      Mix
	grain    Grain
	keyRange int
	initial  int
	nbuckets int
	nopWork  int

	buckets  []*mem.Cell // fixed; each holds *hnode
	baseline int
	class    mgl.ClassID

	puts, removes atomic.Int64
}

// NewHashtable2 builds the fixed-size hashtable workload. grain selects the
// k=0 (coarse) or k=9 (fine put lock) plan.
func NewHashtable2(name string, mix Mix, grain Grain) *Hashtable2 {
	return &Hashtable2{
		name:     name,
		mix:      mix,
		grain:    grain,
		keyRange: 4096,
		initial:  1024,
		nbuckets: 256,
		nopWork:  300,
		class:    4,
	}
}

// Name implements Workload.
func (h *Hashtable2) Name() string { return h.name }

// SetWork overrides the in-section spin padding (the throughput benchmarks
// shrink it so lock-runtime overhead, not the padding, is measured).
func (h *Hashtable2) SetWork(n int) { h.nopWork = n }

// Setup implements Workload.
func (h *Hashtable2) Setup(r *rand.Rand) {
	h.buckets = make([]*mem.Cell, h.nbuckets)
	for i := range h.buckets {
		h.buckets[i] = mem.NewCell((*hnode)(nil))
	}
	h.puts.Store(0)
	h.removes.Store(0)
	h.baseline = 0
	ctx := Direct()
	for i := 0; i < h.initial; i++ {
		if h.put(ctx, r.Intn(h.keyRange)) {
			h.baseline++
		}
	}
}

// put prepends at the bucket head. Unlike Hashtable.put it does not walk
// the chain: duplicates are tolerated by construction (the key range is
// large) and filtered by get/remove taking the first match. To keep the
// single-shared-location property the duplicate check reads only the
// prepended chain of immutable keys via cells already loaded.
func (h *Hashtable2) put(ctx Ctx, key int) bool {
	cell := h.buckets[hashKey(key, h.nbuckets)]
	head := asHNode(ctx.Load(cell))
	ctx.Store(cell, &hnode{key: key, next: mem.NewCell(head)})
	return true
}

func (h *Hashtable2) get(ctx Ctx, key int) bool {
	n := asHNode(ctx.Load(h.buckets[hashKey(key, h.nbuckets)]))
	for n != nil {
		if n.key == key {
			return true
		}
		n = asHNode(ctx.Load(n.next))
	}
	return false
}

func (h *Hashtable2) remove(ctx Ctx, key int) bool {
	link := h.buckets[hashKey(key, h.nbuckets)]
	for {
		n := asHNode(ctx.Load(link))
		if n == nil {
			return false
		}
		if n.key == key {
			ctx.Store(link, asHNode(ctx.Load(n.next)))
			return true
		}
		link = n.next
	}
}

// Op implements Workload.
func (h *Hashtable2) Op(r *rand.Rand) Op {
	key := r.Intn(h.keyRange)
	kind := h.mix.pick(r)
	var ok bool
	locks := func(add func(mgl.Req)) {
		switch {
		case kind == 1 && h.grain == GrainFine:
			// The inferred fine lock: &(buckets[hash(key)]) for rw; the
			// index is computable from the operation argument at entry.
			cell := h.buckets[hashKey(key, h.nbuckets)]
			add(mgl.Req{Class: h.class, Fine: true, Addr: cell.ID(), Write: true})
		case kind == 0:
			add(mgl.Req{Class: h.class, Write: false})
		default:
			add(mgl.Req{Class: h.class, Write: true})
		}
	}
	return Op{
		Locks: locks,
		Body: func(ctx Ctx) {
			switch kind {
			case 0:
				ok = h.get(ctx, key)
			case 1:
				ok = h.put(ctx, key)
			default:
				ok = h.remove(ctx, key)
			}
		},
		Work:    h.nopWork,
		Section: kind,
		After: func() {
			if ok && kind == 1 {
				h.puts.Add(1)
			}
			if ok && kind == 2 {
				h.removes.Add(1)
			}
		},
	}
}

// Check implements Workload.
func (h *Hashtable2) Check() error {
	ctx := Direct()
	n := 0
	for i, b := range h.buckets {
		cur := asHNode(ctx.Load(b))
		for cur != nil {
			if hashKey(cur.key, h.nbuckets) != i {
				return fmt.Errorf("hashtable2: key %d in wrong bucket %d", cur.key, i)
			}
			n++
			cur = asHNode(ctx.Load(cur.next))
		}
	}
	want := h.baseline + int(h.puts.Load()) - int(h.removes.Load())
	if n != want {
		return fmt.Errorf("hashtable2: %d elements, want %d", n, want)
	}
	return nil
}
