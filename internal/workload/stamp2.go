package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// This file implements the remaining two STAMP-like kernels: vacation (the
// STM worst case: long transactions over hot reservation tables) and
// labyrinth (the STM best case: long private computation with a short,
// rarely conflicting commit).

// Vacation models the travel reservation system: each transaction reads a
// customer record, probes availability across the car/flight/room tables
// and reserves several items. Transactions are long and the item tables are
// hot, so the optimistic runtime suffers an abort storm (the paper reports
// 1.7 million aborts for one thousand commits) while the pessimistic
// runtimes serialize cheaply on coarse locks.
type Vacation struct {
	name    string
	items   int
	queries int
	nopWork int

	// tables[0..2]: availability counters for cars, flights, rooms.
	tables    [3][]*mem.Cell
	customers []*mem.Cell // per customer: reservation count
	classes   [4]mgl.ClassID

	reserved atomic.Int64
}

// NewVacation builds the vacation kernel.
func NewVacation(name string) *Vacation {
	return &Vacation{
		name:    name,
		items:   24,
		queries: 16,
		nopWork: 45,
		classes: [4]mgl.ClassID{8, 9, 10, 11},
	}
}

// Name implements Workload.
func (v *Vacation) Name() string { return v.name }

// Setup implements Workload.
func (v *Vacation) Setup(r *rand.Rand) {
	for t := range v.tables {
		v.tables[t] = make([]*mem.Cell, v.items)
		for i := range v.tables[t] {
			v.tables[t][i] = mem.NewCell(1 << 30) // effectively unlimited stock
		}
	}
	v.customers = make([]*mem.Cell, 32)
	for i := range v.customers {
		v.customers[i] = mem.NewCell(0)
	}
	v.reserved.Store(0)
}

// Op implements Workload: one make-reservation transaction.
func (v *Vacation) Op(r *rand.Rand) Op {
	cust := r.Intn(len(v.customers))
	type query struct{ table, item int }
	qs := make([]query, v.queries)
	for i := range qs {
		qs[i] = query{table: r.Intn(3), item: r.Intn(v.items)}
	}
	var booked int
	return Op{
		Locks: func(add func(mgl.Req)) {
			// The probe loop is unbounded in the analysis: coarse rw on
			// each table partition plus the customer partition.
			for _, c := range v.classes {
				add(mgl.Req{Class: c, Write: true})
			}
		},
		Body: func(ctx Ctx) {
			booked = 0
			// Probe all queried items, then reserve the cheapest per table
			// — modeled as reserving every probed item with stock.
			for _, q := range qs {
				cell := v.tables[q.table][q.item]
				stock := ctx.Load(cell).(int)
				if stock > 0 {
					ctx.Store(cell, stock-1)
					booked++
				}
			}
			cc := v.customers[cust]
			ctx.Store(cc, ctx.Load(cc).(int)+booked)
		},
		// Pricing computation between the table accesses.
		Work:  v.nopWork * v.queries,
		After: func() { v.reserved.Add(int64(booked)) },
	}
}

// Check implements Workload: stock decrements must equal customer
// reservation entries and the post-commit tally.
func (v *Vacation) Check() error {
	ctx := Direct()
	sold := 0
	for t := range v.tables {
		for _, c := range v.tables[t] {
			sold += (1 << 30) - ctx.Load(c).(int)
		}
	}
	held := 0
	for _, c := range v.customers {
		held += ctx.Load(c).(int)
	}
	if sold != held {
		return fmt.Errorf("vacation: %d items sold but customers hold %d", sold, held)
	}
	if sold != int(v.reserved.Load()) {
		return fmt.Errorf("vacation: %d items sold, tally says %d", sold, v.reserved.Load())
	}
	return nil
}

// Labyrinth models the maze router: each transaction computes an expensive
// path through a large shared grid, claims the path's cells, and (unlike
// the original, which keeps routes — our runs are far longer than one
// routing pass) releases them at the end of the same section, modeling a
// circuit-switched wire. The computation must stay inside the section (the
// path depends on the grid state), so pessimistic locks serialize it
// entirely, while the optimistic runtime overlaps the computation and
// rarely conflicts on the large grid — the one benchmark where the STM wins
// in Table 2.
type Labyrinth struct {
	name    string
	side    int
	pathLen int
	nopWork int

	grid   []*mem.Cell // 0 = free, 1 = held by an in-flight wire
	class  mgl.ClassID
	routed atomic.Int64 // committed successful routes
	failed atomic.Int64 // committed congested attempts
}

// NewLabyrinth builds the labyrinth kernel.
func NewLabyrinth(name string) *Labyrinth {
	return &Labyrinth{
		name:    name,
		side:    128,
		pathLen: 48,
		nopWork: 4000,
		class:   12,
	}
}

// Name implements Workload.
func (l *Labyrinth) Name() string { return l.name }

// Setup implements Workload.
func (l *Labyrinth) Setup(r *rand.Rand) {
	l.grid = make([]*mem.Cell, l.side*l.side)
	for i := range l.grid {
		l.grid[i] = mem.NewCell(0)
	}
	l.routed.Store(0)
	l.failed.Store(0)
}

// Op implements Workload: route one wire.
func (l *Labyrinth) Op(r *rand.Rand) Op {
	// The walk is deterministic for the op (re-executions take the same
	// path), starting at a random cell.
	start := r.Intn(len(l.grid))
	dirs := make([]int, l.pathLen-1)
	for i := range dirs {
		dirs[i] = r.Intn(4)
	}
	var got int
	return Op{
		Locks: func(add func(mgl.Req)) {
			// The path is data-dependent: coarse rw over the grid.
			add(mgl.Req{Class: l.class, Write: true})
		},
		Body: func(ctx Ctx) {
			got = 0
			// The expensive route computation happens inside the section
			// (charged via Work); here we apply its result.
			cells := l.walk(start, dirs)
			for _, c := range cells {
				if ctx.Load(c).(int) != 0 {
					return // congested: give up this route
				}
			}
			for _, c := range cells {
				ctx.Store(c, ctx.Load(c).(int)+1)
			}
			// The wire is used and torn down within the section.
			for _, c := range cells {
				ctx.Store(c, ctx.Load(c).(int)-1)
			}
			got = len(cells)
		},
		// Expensive route computation *inside* the section.
		Work: l.nopWork,
		After: func() {
			if got > 0 {
				l.routed.Add(1)
			} else {
				l.failed.Add(1)
			}
		},
	}
}

// walk produces the distinct cells of the op's path.
func (l *Labyrinth) walk(start int, dirs []int) []*mem.Cell {
	x, y := start%l.side, start/l.side
	seen := map[int]bool{}
	var cells []*mem.Cell
	visit := func(x, y int) {
		i := y*l.side + x
		if !seen[i] {
			seen[i] = true
			cells = append(cells, l.grid[i])
		}
	}
	visit(x, y)
	for _, d := range dirs {
		switch d {
		case 0:
			if x+1 < l.side {
				x++
			}
		case 1:
			if x > 0 {
				x--
			}
		case 2:
			if y+1 < l.side {
				y++
			}
		default:
			if y > 0 {
				y--
			}
		}
		visit(x, y)
	}
	return cells
}

// Check implements Workload: every committed wire released its cells, so
// any nonzero residue means two routes raced on a cell; and most routes
// must succeed (the grid is sized for low congestion).
func (l *Labyrinth) Check() error {
	ctx := Direct()
	for i, c := range l.grid {
		if v := ctx.Load(c).(int); v != 0 {
			return fmt.Errorf("labyrinth: cell %d has residue %d (routes overlapped)", i, v)
		}
	}
	routed, failed := l.routed.Load(), l.failed.Load()
	if routed+failed > 100 && failed > (routed+failed)/2 {
		return fmt.Errorf("labyrinth: %d of %d routes congested; grid mis-sized", failed, routed+failed)
	}
	return nil
}
