package workload

import (
	"fmt"
	"math/rand"
)

// TH is the two-structure benchmark of §6.1: it combines the rbtree and the
// hashtable, with each operation flipping a fair coin to choose the
// structure, so half of all accesses land on each. Because the two
// structures live in disjoint points-to partitions, coarse locks always
// exploit more parallelism than a global lock here — the headline win of
// multi-granularity locking in Table 2 and Figure 8.
type TH struct {
	name  string
	tree  *RBTree
	table *Hashtable
}

// NewTH builds the combined workload with the given mix.
func NewTH(name string, mix Mix) *TH {
	t := &TH{
		name:  name,
		tree:  NewRBTree(name+".rbtree", mix),
		table: NewHashtable(name+".hashtable", mix),
	}
	// Distinct partitions: the whole point of the benchmark.
	t.tree.class = 20
	t.table.class = 21
	return t
}

// Name implements Workload.
func (t *TH) Name() string { return t.name }

// Setup implements Workload.
func (t *TH) Setup(r *rand.Rand) {
	t.tree.Setup(r)
	t.table.Setup(r)
}

// Op implements Workload.
func (t *TH) Op(r *rand.Rand) Op {
	if r.Intn(2) == 0 {
		return t.tree.Op(r)
	}
	return t.table.Op(r)
}

// Check implements Workload.
func (t *TH) Check() error {
	if err := t.tree.Check(); err != nil {
		return fmt.Errorf("th: %w", err)
	}
	if err := t.table.Check(); err != nil {
		return fmt.Errorf("th: %w", err)
	}
	return nil
}
