package workload

import (
	"fmt"
	"math/rand"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// Accounts is the bank-transfer micro-benchmark: a fixed array of balance
// cells. A transfer moves an amount between two accounts — both cell
// indices are computable at the section entry, so the inference assigns two
// fine-grain write locks; an audit sums every balance in one section, an
// unbounded traversal that keeps a coarse read lock on the partition. The
// resulting sections mix fine and coarse descriptors over one partition,
// which is the §5.2 scenario the hierarchical runtime's intention modes
// exist for, and the section bodies are a handful of loads and stores, so
// the measured quantity is almost entirely lock-runtime overhead.
type Accounts struct {
	name      string
	mix       Mix
	naccounts int
	nopWork   int

	accounts []*mem.Cell // each holds int
	total    int
	class    mgl.ClassID
}

// NewAccounts builds the accounts workload. The mix's get percentage sets
// the audit share; every other operation is a transfer.
func NewAccounts(name string, mix Mix) *Accounts {
	return &Accounts{
		name:      name,
		mix:       mix,
		naccounts: 16,
		nopWork:   300,
		class:     8,
	}
}

// Name implements Workload.
func (a *Accounts) Name() string { return a.name }

// SetWork overrides the in-section spin padding (the throughput benchmarks
// shrink it so lock-runtime overhead, not the padding, is measured).
func (a *Accounts) SetWork(n int) { a.nopWork = n }

// Setup implements Workload.
func (a *Accounts) Setup(r *rand.Rand) {
	a.accounts = make([]*mem.Cell, a.naccounts)
	a.total = 0
	for i := range a.accounts {
		bal := 100 + r.Intn(900)
		a.accounts[i] = mem.NewCell(bal)
		a.total += bal
	}
}

// transfer moves amt from account i to account j.
func (a *Accounts) transfer(ctx Ctx, i, j, amt int) {
	ctx.Store(a.accounts[i], ctx.Load(a.accounts[i]).(int)-amt)
	ctx.Store(a.accounts[j], ctx.Load(a.accounts[j]).(int)+amt)
}

// audit sums every balance.
func (a *Accounts) audit(ctx Ctx) int {
	sum := 0
	for _, c := range a.accounts {
		sum += ctx.Load(c).(int)
	}
	return sum
}

// Op implements Workload.
func (a *Accounts) Op(r *rand.Rand) Op {
	if a.mix.pick(r) == 0 {
		return Op{
			Locks: func(add func(mgl.Req)) {
				add(mgl.Req{Class: a.class, Write: false})
			},
			Body: func(ctx Ctx) {
				if got := a.audit(ctx); got != a.total {
					panic(fmt.Sprintf("accounts: audit saw %d, want %d", got, a.total))
				}
			},
			Work: a.nopWork,
		}
	}
	i := r.Intn(a.naccounts)
	j := r.Intn(a.naccounts - 1)
	if j >= i {
		j++
	}
	amt := 1 + r.Intn(50)
	return Op{
		Locks: func(add func(mgl.Req)) {
			add(mgl.Req{Class: a.class, Fine: true, Addr: a.accounts[i].ID(), Write: true})
			add(mgl.Req{Class: a.class, Fine: true, Addr: a.accounts[j].ID(), Write: true})
		},
		Body: func(ctx Ctx) {
			a.transfer(ctx, i, j, amt)
		},
		Work: a.nopWork,
	}
}

// Check implements Workload: transfers conserve the total balance, so any
// lost update (an exclusion bug in the lock runtime) shifts the sum.
func (a *Accounts) Check() error {
	if got := a.audit(Direct()); got != a.total {
		return fmt.Errorf("accounts: total %d, want %d", got, a.total)
	}
	return nil
}
