package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// rbnode is one tree node: the key is immutable; the child links and color
// are shared cells so the STM can intercept every access.
type rbnode struct {
	key   int
	left  *mem.Cell // *rbnode
	right *mem.Cell // *rbnode
	red   *mem.Cell // bool
}

func asRB(v any) *rbnode {
	if v == nil {
		return nil
	}
	return v.(*rbnode)
}

func newRBNode(key int, red bool) *rbnode {
	return &rbnode{
		key:   key,
		left:  mem.NewCell((*rbnode)(nil)),
		right: mem.NewCell((*rbnode)(nil)),
		red:   mem.NewCell(red),
	}
}

// RBTree is the red-black tree micro-benchmark. Inserts rebalance with the
// standard recolor/rotate fixup; removals are plain BST splices (several
// research prototypes, including lock-based STAMP ports, skip delete
// rebalancing — the concurrency profile is unchanged). Every operation
// walks an unbounded path, so the inferred locks are coarse at every k;
// gets are read-only.
type RBTree struct {
	name     string
	mix      Mix
	keyRange int
	initial  int
	nopWork  int

	root     *mem.Cell
	baseline int
	class    mgl.ClassID

	puts, removes atomic.Int64
}

// NewRBTree builds the rbtree workload with the given mix.
func NewRBTree(name string, mix Mix) *RBTree {
	return &RBTree{
		name:     name,
		mix:      mix,
		keyRange: 4096,
		initial:  1024,
		nopWork:  300,
		class:    2,
	}
}

// Name implements Workload.
func (t *RBTree) Name() string { return t.name }

// SetWork overrides the in-section spin padding (the throughput benchmarks
// shrink it so lock-runtime overhead, not the padding, is measured).
func (t *RBTree) SetWork(n int) { t.nopWork = n }

// Setup implements Workload.
func (t *RBTree) Setup(r *rand.Rand) {
	t.root = mem.NewCell((*rbnode)(nil))
	t.puts.Store(0)
	t.removes.Store(0)
	t.baseline = 0
	ctx := Direct()
	for i := 0; i < t.initial; i++ {
		if t.insert(ctx, r.Intn(t.keyRange)) {
			t.baseline++
		}
	}
}

func isRed(ctx Ctx, n *rbnode) bool { return n != nil && ctx.Load(n.red).(bool) }

func setRed(ctx Ctx, n *rbnode, red bool) { ctx.Store(n.red, red) }

// rotateLeft rotates the subtree stored in link to the left.
func rotateLeft(ctx Ctx, link *mem.Cell) {
	x := asRB(ctx.Load(link))
	y := asRB(ctx.Load(x.right))
	ctx.Store(x.right, asRB(ctx.Load(y.left)))
	ctx.Store(y.left, x)
	ctx.Store(link, y)
}

// rotateRight rotates the subtree stored in link to the right.
func rotateRight(ctx Ctx, link *mem.Cell) {
	x := asRB(ctx.Load(link))
	y := asRB(ctx.Load(x.left))
	ctx.Store(x.left, asRB(ctx.Load(y.right)))
	ctx.Store(y.right, x)
	ctx.Store(link, y)
}

// pathEnt records one step of the descent: the link cell and the node it
// held.
type pathEnt struct {
	link *mem.Cell
	n    *rbnode
}

func (t *RBTree) lookup(ctx Ctx, key int) bool {
	n := asRB(ctx.Load(t.root))
	for n != nil {
		switch {
		case key == n.key:
			return true
		case key < n.key:
			n = asRB(ctx.Load(n.left))
		default:
			n = asRB(ctx.Load(n.right))
		}
	}
	return false
}

func (t *RBTree) insert(ctx Ctx, key int) bool {
	link := t.root
	var stack []pathEnt
	for {
		n := asRB(ctx.Load(link))
		if n == nil {
			break
		}
		if key == n.key {
			return false
		}
		stack = append(stack, pathEnt{link, n})
		if key < n.key {
			link = n.left
		} else {
			link = n.right
		}
	}
	z := newRBNode(key, true)
	ctx.Store(link, z)
	stack = append(stack, pathEnt{link, z})
	t.fixup(ctx, stack)
	if root := asRB(ctx.Load(t.root)); root != nil {
		setRed(ctx, root, false)
	}
	return true
}

// fixup restores the red-black invariants after inserting the node at the
// top of the descent stack.
func (t *RBTree) fixup(ctx Ctx, stack []pathEnt) {
	k := len(stack) - 1
	for k >= 2 {
		z := stack[k].n
		parent := stack[k-1]
		grand := stack[k-2]
		if !isRed(ctx, parent.n) {
			return
		}
		parentIsLeft := asRB(ctx.Load(grand.n.left)) == parent.n
		var uncle *rbnode
		if parentIsLeft {
			uncle = asRB(ctx.Load(grand.n.right))
		} else {
			uncle = asRB(ctx.Load(grand.n.left))
		}
		if isRed(ctx, uncle) {
			setRed(ctx, parent.n, false)
			setRed(ctx, uncle, false)
			setRed(ctx, grand.n, true)
			k -= 2
			continue
		}
		if parentIsLeft {
			if z == asRB(ctx.Load(parent.n.right)) {
				rotateLeft(ctx, grand.n.left)
			}
			p := asRB(ctx.Load(grand.n.left))
			setRed(ctx, p, false)
			setRed(ctx, grand.n, true)
			rotateRight(ctx, grand.link)
		} else {
			if z == asRB(ctx.Load(parent.n.left)) {
				rotateRight(ctx, grand.n.right)
			}
			p := asRB(ctx.Load(grand.n.right))
			setRed(ctx, p, false)
			setRed(ctx, grand.n, true)
			rotateLeft(ctx, grand.link)
		}
		return
	}
}

func (t *RBTree) remove(ctx Ctx, key int) bool {
	link := t.root
	for {
		n := asRB(ctx.Load(link))
		if n == nil {
			return false
		}
		if key == n.key {
			break
		}
		if key < n.key {
			link = n.left
		} else {
			link = n.right
		}
	}
	n := asRB(ctx.Load(link))
	left, right := asRB(ctx.Load(n.left)), asRB(ctx.Load(n.right))
	switch {
	case left == nil:
		ctx.Store(link, right)
	case right == nil:
		ctx.Store(link, left)
	default:
		// Replace n with its in-order successor.
		slink := n.right
		for {
			s := asRB(ctx.Load(slink))
			if asRB(ctx.Load(s.left)) == nil {
				break
			}
			slink = s.left
		}
		s := asRB(ctx.Load(slink))
		ctx.Store(slink, asRB(ctx.Load(s.right)))
		ctx.Store(s.left, asRB(ctx.Load(n.left)))
		ctx.Store(s.right, asRB(ctx.Load(n.right)))
		ctx.Store(s.red, ctx.Load(n.red).(bool))
		ctx.Store(link, s)
	}
	return true
}

// Op implements Workload.
func (t *RBTree) Op(r *rand.Rand) Op {
	key := r.Intn(t.keyRange)
	kind := t.mix.pick(r)
	write := kind != 0
	var ok bool
	return Op{
		Locks: func(add func(add mgl.Req)) {
			add(mgl.Req{Class: t.class, Write: write})
		},
		Body: func(ctx Ctx) {
			switch kind {
			case 0:
				ok = t.lookup(ctx, key)
			case 1:
				ok = t.insert(ctx, key)
			default:
				ok = t.remove(ctx, key)
			}
		},
		Work: t.nopWork,
		After: func() {
			if ok && kind == 1 {
				t.puts.Add(1)
			}
			if ok && kind == 2 {
				t.removes.Add(1)
			}
		},
	}
}

// Check implements Workload: in-order traversal must be strictly sorted and
// the size must match the op accounting.
func (t *RBTree) Check() error {
	ctx := Direct()
	n := 0
	last := -1
	var walk func(x *rbnode) error
	walk = func(x *rbnode) error {
		if x == nil {
			return nil
		}
		if err := walk(asRB(ctx.Load(x.left))); err != nil {
			return err
		}
		if x.key <= last {
			return fmt.Errorf("rbtree: order violated: %d after %d", x.key, last)
		}
		last = x.key
		n++
		return walk(asRB(ctx.Load(x.right)))
	}
	if err := walk(asRB(ctx.Load(t.root))); err != nil {
		return err
	}
	want := t.baseline + int(t.puts.Load()) - int(t.removes.Load())
	if n != want {
		return fmt.Errorf("rbtree: %d elements, want %d", n, want)
	}
	if root := asRB(ctx.Load(t.root)); isRed(ctx, root) {
		return fmt.Errorf("rbtree: red root")
	}
	return nil
}

// CheckBalance verifies the full red-black invariants (no red-red edge,
// equal black heights); valid only for insert-only runs.
func (t *RBTree) CheckBalance() error {
	ctx := Direct()
	var bh func(x *rbnode) (int, error)
	bh = func(x *rbnode) (int, error) {
		if x == nil {
			return 1, nil
		}
		l, r := asRB(ctx.Load(x.left)), asRB(ctx.Load(x.right))
		if isRed(ctx, x) && (isRed(ctx, l) || isRed(ctx, r)) {
			return 0, fmt.Errorf("rbtree: red-red edge at %d", x.key)
		}
		hl, err := bh(l)
		if err != nil {
			return 0, err
		}
		hr, err := bh(r)
		if err != nil {
			return 0, err
		}
		if hl != hr {
			return 0, fmt.Errorf("rbtree: black height mismatch at %d: %d vs %d", x.key, hl, hr)
		}
		if !isRed(ctx, x) {
			hl++
		}
		return hl, nil
	}
	_, err := bh(asRB(ctx.Load(t.root)))
	return err
}
