package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// This file implements three of the STAMP-like kernels (§6.1): genome,
// kmeans and bayes. Each captures the concurrency structure of the original
// benchmark — the property Table 2 and Figure 8 depend on — rather than its
// application logic (see DESIGN.md §3 for the substitution argument).

// Genome models the segment-deduplication phase: every operation inserts a
// batch of segments into one shared hash set. There is no parallelism for
// locks to exploit (all sections write the same partition), so coarse locks
// behave like the global lock, fine-grain locks only add protocol overhead,
// and the STM pays for conflicts on popular buckets.
type Genome struct {
	name     string
	grain    Grain
	nbuckets int
	batch    int
	nopWork  int

	buckets []*mem.Cell
	class   mgl.ClassID
	inserts atomic.Int64
	// seq hands out unique segment ids: the deduplication phase streams
	// mostly-new segments, so every batch walks full chains and appends.
	seq atomic.Int64
}

// NewGenome builds the genome kernel.
func NewGenome(name string, grain Grain) *Genome {
	return &Genome{
		name:     name,
		grain:    grain,
		nbuckets: 12,
		batch:    4,
		nopWork:  400,
		class:    5,
	}
}

// Name implements Workload.
func (g *Genome) Name() string { return g.name }

// Setup implements Workload.
func (g *Genome) Setup(r *rand.Rand) {
	g.buckets = make([]*mem.Cell, g.nbuckets)
	for i := range g.buckets {
		g.buckets[i] = mem.NewCell((*hnode)(nil))
	}
	g.inserts.Store(0)
	g.seq.Store(0)
}

func (g *Genome) insert(ctx Ctx, seg int) bool {
	link := g.buckets[hashKey(seg, g.nbuckets)]
	for {
		n := asHNode(ctx.Load(link))
		if n == nil {
			break
		}
		if n.key == seg {
			return false
		}
		link = n.next
	}
	ctx.Store(link, &hnode{key: seg, next: mem.NewCell((*hnode)(nil))})
	return true
}

// Op implements Workload.
func (g *Genome) Op(r *rand.Rand) Op {
	segs := make([]int, g.batch)
	for i := range segs {
		segs[i] = int(g.seq.Add(1))*131 + r.Intn(4) // mostly unique, a few dups
	}
	var added int
	return Op{
		Locks: func(add func(mgl.Req)) {
			// Chain traversal coarsens at every k.
			add(mgl.Req{Class: g.class, Write: true})
			if g.grain == GrainFine {
				// The k=9 analysis additionally finds the bucket-head cells
				// as fine expressions: pure protocol overhead here, since
				// the coarse rw lock already serializes.
				for _, s := range segs {
					cell := g.buckets[hashKey(s, g.nbuckets)]
					add(mgl.Req{Class: g.class, Fine: true, Addr: cell.ID(), Write: true})
				}
			}
		},
		Body: func(ctx Ctx) {
			added = 0
			for _, s := range segs {
				if g.insert(ctx, s) {
					added++
				}
			}
		},
		Work:  g.nopWork,
		After: func() { g.inserts.Add(int64(added)) },
	}
}

// Check implements Workload.
func (g *Genome) Check() error {
	ctx := Direct()
	n := 0
	seen := map[int]bool{}
	for i, b := range g.buckets {
		cur := asHNode(ctx.Load(b))
		for cur != nil {
			if hashKey(cur.key, g.nbuckets) != i {
				return fmt.Errorf("genome: segment %d in wrong bucket", cur.key)
			}
			if seen[cur.key] {
				return fmt.Errorf("genome: duplicate segment %d (dedup broken)", cur.key)
			}
			seen[cur.key] = true
			n++
			cur = asHNode(ctx.Load(cur.next))
		}
	}
	if n != int(g.inserts.Load()) {
		return fmt.Errorf("genome: %d segments, want %d", n, g.inserts.Load())
	}
	return nil
}

// Kmeans models the centroid-accumulation phase: each operation assigns one
// point to its nearest centroid and atomically adds the point into the
// centroid's running sums. Few hot centroids mean high contention: fine
// per-centroid locks buy little and cost extra protocol work, and the STM
// aborts heavily on the hot accumulator cells.
type Kmeans struct {
	name      string
	grain     Grain
	clusters  int
	dim       int
	nopWork   int
	centroids [][]*mem.Cell // per cluster: dim sum cells + 1 count cell
	// delta is the global membership-change counter the real kmeans updates
	// in the same atomic section; it serializes every operation and is the
	// reason fine-grain locks cannot help this benchmark.
	delta    *mem.Cell
	class    mgl.ClassID
	assigned atomic.Int64
}

// NewKmeans builds the kmeans kernel.
func NewKmeans(name string, grain Grain) *Kmeans {
	return &Kmeans{
		name:     name,
		grain:    grain,
		clusters: 12,
		dim:      8,
		nopWork:  220,
		class:    6,
	}
}

// Name implements Workload.
func (k *Kmeans) Name() string { return k.name }

// Setup implements Workload.
func (k *Kmeans) Setup(r *rand.Rand) {
	k.centroids = make([][]*mem.Cell, k.clusters)
	for i := range k.centroids {
		cells := make([]*mem.Cell, k.dim+1)
		for j := range cells {
			cells[j] = mem.NewCell(0)
		}
		k.centroids[i] = cells
	}
	k.delta = mem.NewCell(0)
	k.assigned.Store(0)
}

// Op implements Workload.
func (k *Kmeans) Op(r *rand.Rand) Op {
	point := make([]int, k.dim)
	for i := range point {
		point[i] = r.Intn(100)
	}
	// Nearest-centroid choice is computed outside the section in the real
	// benchmark; here a skewed pick models cluster popularity.
	c := r.Intn(k.clusters)
	if r.Intn(3) != 0 {
		c = c % (k.clusters / 3)
	}
	cells := k.centroids[c]
	return Op{
		Locks: func(add func(mgl.Req)) {
			if k.grain == GrainFine {
				// One fine rw lock per accumulator cell of the chosen
				// centroid plus the global delta cell: expressible because
				// the centroid index is an operation argument. The delta
				// lock still serializes every operation.
				for _, cell := range cells {
					add(mgl.Req{Class: k.class, Fine: true, Addr: cell.ID(), Write: true})
				}
				add(mgl.Req{Class: k.class, Fine: true, Addr: k.delta.ID(), Write: true})
				return
			}
			add(mgl.Req{Class: k.class, Write: true})
		},
		Body: func(ctx Ctx) {
			for i := 0; i < k.dim; i++ {
				ctx.Store(cells[i], ctx.Load(cells[i]).(int)+point[i])
			}
			ctx.Store(cells[k.dim], ctx.Load(cells[k.dim]).(int)+1)
			ctx.Store(k.delta, ctx.Load(k.delta).(int)+1)
		},
		Work:  k.nopWork,
		After: func() { k.assigned.Add(1) },
	}
}

// Check implements Workload: the per-centroid counts must sum to the number
// of operations.
func (k *Kmeans) Check() error {
	ctx := Direct()
	total := 0
	for _, cells := range k.centroids {
		total += ctx.Load(cells[k.dim]).(int)
	}
	if total != int(k.assigned.Load()) {
		return fmt.Errorf("kmeans: %d points accumulated, want %d (lost updates)",
			total, k.assigned.Load())
	}
	if d := ctx.Load(k.delta).(int); d != total {
		return fmt.Errorf("kmeans: delta %d disagrees with total %d", d, total)
	}
	return nil
}

// Bayes models structure learning over a shared dependency graph: long
// sections read a neighborhood of the adjacency matrix, compute a score and
// apply a small update. The access pattern is unboundedly data-dependent,
// so the inference coarsens everything; the STM pays for long transactions
// with overlapping read sets.
type Bayes struct {
	name string
	vars int
	// hot is the size of the contended region (the currently-revised
	// variable neighborhood) that updates concentrate on.
	hot     int
	reads   int
	writes  int
	nopWork int
	adj     []*mem.Cell
	class   mgl.ClassID
	updates atomic.Int64
}

// NewBayes builds the bayes kernel.
func NewBayes(name string) *Bayes {
	return &Bayes{
		name:    name,
		vars:    32,
		hot:     24,
		reads:   20,
		writes:  8,
		nopWork: 900,
		class:   7,
	}
}

// Name implements Workload.
func (b *Bayes) Name() string { return b.name }

// Setup implements Workload.
func (b *Bayes) Setup(r *rand.Rand) {
	b.adj = make([]*mem.Cell, b.vars*b.vars)
	for i := range b.adj {
		b.adj[i] = mem.NewCell(0)
	}
	b.updates.Store(0)
}

// Op implements Workload.
func (b *Bayes) Op(r *rand.Rand) Op {
	rs := make([]int, b.reads)
	for i := range rs {
		if i < b.writes {
			rs[i] = r.Intn(b.hot) // the revised neighborhood is re-read
		} else {
			rs[i] = r.Intn(len(b.adj))
		}
	}
	ws := make([]int, b.writes)
	for i := range ws {
		ws[i] = r.Intn(b.hot)
	}
	return Op{
		Locks: func(add func(mgl.Req)) {
			add(mgl.Req{Class: b.class, Write: true})
		},
		Body: func(ctx Ctx) {
			score := 0
			for _, i := range rs {
				score += ctx.Load(b.adj[i]).(int)
			}
			for _, i := range ws {
				ctx.Store(b.adj[i], ctx.Load(b.adj[i]).(int)+1)
			}
			_ = score
		},
		Work:  b.nopWork,
		After: func() { b.updates.Add(1) },
	}
}

// Check implements Workload: total edge weight equals writes applied.
func (b *Bayes) Check() error {
	ctx := Direct()
	total := 0
	for _, c := range b.adj {
		total += ctx.Load(c).(int)
	}
	if want := int(b.updates.Load()) * b.writes; total != want {
		return fmt.Errorf("bayes: total weight %d, want %d", total, want)
	}
	return nil
}
