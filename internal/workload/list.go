package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// Mix is an operation mix: percentages of lookups and inserts; the rest are
// removes. The paper's "low" setting makes gets four times more common than
// the other operations, "high" does the same for puts.
type Mix struct {
	GetPct int
	PutPct int
}

// The two micro-benchmark settings of §6.3.
var (
	LowMix  = Mix{GetPct: 66, PutPct: 17}
	HighMix = Mix{GetPct: 17, PutPct: 66}
)

// The contention extremes of the hybrid-runtime sweep: read-heavy keeps
// sections read-only (optimistic execution shines), write-heavy makes most
// sections mutate shared cells (lock fallback shines).
var (
	ReadHeavyMix  = Mix{GetPct: 90, PutPct: 6}
	WriteHeavyMix = Mix{GetPct: 10, PutPct: 60}
)

// pick draws an operation kind from the mix: 0 get, 1 put, 2 remove.
func (m Mix) pick(r *rand.Rand) int {
	p := r.Intn(100)
	switch {
	case p < m.GetPct:
		return 0
	case p < m.GetPct+m.PutPct:
		return 1
	default:
		return 2
	}
}

// lnode is one sorted-list node. The key is immutable; next is a shared
// cell holding *lnode.
type lnode struct {
	key  int
	next *mem.Cell
}

func asLNode(v any) *lnode {
	if v == nil {
		return nil
	}
	return v.(*lnode)
}

// List is the sorted linked-list micro-benchmark. All operations traverse
// an unbounded chain, so the inference yields a single coarse lock over the
// element partition at every k — matching the paper's observation that
// k=9 equals k=0 for this benchmark. Lookups take it read-only.
type List struct {
	name     string
	mix      Mix
	keyRange int
	initial  int
	nopWork  int

	head *mem.Cell
	// baseline is the number of elements actually inserted by Setup.
	baseline int
	// class is the Steensgaard partition of the list cells.
	class mgl.ClassID

	puts, removes atomic.Int64 // successful ops, counted post-commit
}

// NewList builds the list workload with the given mix.
func NewList(name string, mix Mix) *List {
	return &List{
		name:     name,
		mix:      mix,
		keyRange: 512,
		initial:  128,
		nopWork:  300,
		class:    1,
	}
}

// Name implements Workload.
func (l *List) Name() string { return l.name }

// SetWork overrides the in-section spin padding (the throughput benchmarks
// shrink it so lock-runtime overhead, not the padding, is measured).
func (l *List) SetWork(n int) { l.nopWork = n }

// Setup implements Workload.
func (l *List) Setup(r *rand.Rand) {
	l.head = mem.NewCell((*lnode)(nil))
	l.puts.Store(0)
	l.removes.Store(0)
	ctx := Direct()
	l.baseline = 0
	for i := 0; i < l.initial; i++ {
		if l.insert(ctx, r.Intn(l.keyRange)) {
			l.baseline++
		}
	}
}

func (l *List) insert(ctx Ctx, key int) bool {
	prev := l.head
	cur := asLNode(ctx.Load(prev))
	for cur != nil && cur.key < key {
		prev = cur.next
		cur = asLNode(ctx.Load(prev))
	}
	if cur != nil && cur.key == key {
		return false
	}
	n := &lnode{key: key, next: mem.NewCell(cur)}
	ctx.Store(prev, n)
	return true
}

func (l *List) lookup(ctx Ctx, key int) bool {
	cur := asLNode(ctx.Load(l.head))
	for cur != nil && cur.key < key {
		cur = asLNode(ctx.Load(cur.next))
	}
	return cur != nil && cur.key == key
}

func (l *List) remove(ctx Ctx, key int) bool {
	prev := l.head
	cur := asLNode(ctx.Load(prev))
	for cur != nil && cur.key < key {
		prev = cur.next
		cur = asLNode(ctx.Load(prev))
	}
	if cur == nil || cur.key != key {
		return false
	}
	ctx.Store(prev, asLNode(ctx.Load(cur.next)))
	return true
}

// Op implements Workload.
func (l *List) Op(r *rand.Rand) Op {
	key := r.Intn(l.keyRange)
	kind := l.mix.pick(r)
	write := kind != 0
	var ok bool
	return Op{
		Locks: func(add func(mgl.Req)) {
			// The traversal coarsens to the element partition; get is
			// read-only (Σε), put and remove need write access.
			add(mgl.Req{Class: l.class, Write: write})
		},
		Body: func(ctx Ctx) {
			switch kind {
			case 0:
				ok = l.lookup(ctx, key)
			case 1:
				ok = l.insert(ctx, key)
			default:
				ok = l.remove(ctx, key)
			}
		},
		Work: l.nopWork,
		After: func() {
			if ok && kind == 1 {
				l.puts.Add(1)
			}
			if ok && kind == 2 {
				l.removes.Add(1)
			}
		},
	}
}

// Check implements Workload: the list must be strictly sorted and its
// length must equal the initial size plus successful puts minus successful
// removes (catching lost updates).
func (l *List) Check() error {
	ctx := Direct()
	n := 0
	last := -1
	cur := asLNode(ctx.Load(l.head))
	for cur != nil {
		if cur.key <= last {
			return fmt.Errorf("list: order violated: %d after %d", cur.key, last)
		}
		last = cur.key
		n++
		cur = asLNode(ctx.Load(cur.next))
	}
	want := l.baseline + int(l.puts.Load()) - int(l.removes.Load())
	if n != want {
		return fmt.Errorf("list: %d elements, want %d (baseline %d + puts %d - removes %d)",
			n, want, l.baseline, l.puts.Load(), l.removes.Load())
	}
	return nil
}
