package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
)

// hnode is one chained-hashtable node with a mutable next link.
type hnode struct {
	key  int
	next *mem.Cell // *hnode
}

func asHNode(v any) *hnode {
	if v == nil {
		return nil
	}
	return v.(*hnode)
}

func hashKey(key, nbuckets int) int {
	h := uint32(key) * 2654435761
	return int(h % uint32(nbuckets))
}

// Hashtable is the resizing chained hashtable of §6.1: a put walks its
// bucket chain to insert and may grow and rehash the entire table, so every
// write operation can touch all elements — the inference coarsens every
// operation at any k, and an optimistic runtime suffers large rollbacks in
// the put-heavy setting. Gets are read-only.
type Hashtable struct {
	name     string
	mix      Mix
	keyRange int
	initial  int
	nopWork  int

	buckets  *mem.Cell // []*mem.Cell, each *hnode
	size     *mem.Cell // int
	baseline int
	class    mgl.ClassID

	puts, removes atomic.Int64
	// Rehashes counts table rebuilds (including re-executed attempts).
	Rehashes atomic.Int64
}

// NewHashtable builds the resizing hashtable workload.
func NewHashtable(name string, mix Mix) *Hashtable {
	return &Hashtable{
		name:     name,
		mix:      mix,
		keyRange: 65536,
		initial:  1024,
		nopWork:  300,
		class:    3,
	}
}

// Name implements Workload.
func (h *Hashtable) Name() string { return h.name }

// Setup implements Workload.
func (h *Hashtable) Setup(r *rand.Rand) {
	initial := make([]*mem.Cell, 16)
	for i := range initial {
		initial[i] = mem.NewCell((*hnode)(nil))
	}
	h.buckets = mem.NewCell(initial)
	h.size = mem.NewCell(0)
	h.puts.Store(0)
	h.removes.Store(0)
	h.Rehashes.Store(0)
	h.baseline = 0
	ctx := Direct()
	for i := 0; i < h.initial; i++ {
		if h.put(ctx, r.Intn(h.keyRange)) {
			h.baseline++
		}
	}
}

func (h *Hashtable) get(ctx Ctx, key int) bool {
	buckets := ctx.Load(h.buckets).([]*mem.Cell)
	n := asHNode(ctx.Load(buckets[hashKey(key, len(buckets))]))
	for n != nil {
		if n.key == key {
			return true
		}
		n = asHNode(ctx.Load(n.next))
	}
	return false
}

func (h *Hashtable) put(ctx Ctx, key int) bool {
	buckets := ctx.Load(h.buckets).([]*mem.Cell)
	link := buckets[hashKey(key, len(buckets))]
	// Walk the chain to its end, as the paper's hashtable does.
	for {
		n := asHNode(ctx.Load(link))
		if n == nil {
			break
		}
		if n.key == key {
			return false
		}
		link = n.next
	}
	ctx.Store(link, &hnode{key: key, next: mem.NewCell((*hnode)(nil))})
	size := ctx.Load(h.size).(int) + 1
	ctx.Store(h.size, size)
	if size > 2*len(buckets) {
		// Space-conscious growth policy (+12.5%): the table crosses its
		// load threshold repeatedly as it grows, so put-heavy runs rehash
		// often — the behavior behind the paper's hashtable-high rollback
		// observation.
		h.rehash(ctx, buckets, len(buckets)+len(buckets)/8+1)
	}
	return true
}

// rehash rebuilds the table into nb fresh buckets, touching every element.
func (h *Hashtable) rehash(ctx Ctx, old []*mem.Cell, nb int) {
	h.Rehashes.Add(1)
	fresh := make([]*mem.Cell, nb)
	for i := range fresh {
		fresh[i] = mem.NewCell((*hnode)(nil))
	}
	for _, b := range old {
		n := asHNode(ctx.Load(b))
		for n != nil {
			cell := fresh[hashKey(n.key, nb)]
			ctx.Store(cell, &hnode{key: n.key, next: mem.NewCell(asHNode(ctx.Load(cell)))})
			n = asHNode(ctx.Load(n.next))
		}
	}
	ctx.Store(h.buckets, fresh)
}

func (h *Hashtable) remove(ctx Ctx, key int) bool {
	buckets := ctx.Load(h.buckets).([]*mem.Cell)
	link := buckets[hashKey(key, len(buckets))]
	for {
		n := asHNode(ctx.Load(link))
		if n == nil {
			return false
		}
		if n.key == key {
			ctx.Store(link, asHNode(ctx.Load(n.next)))
			ctx.Store(h.size, ctx.Load(h.size).(int)-1)
			return true
		}
		link = n.next
	}
}

// Op implements Workload.
func (h *Hashtable) Op(r *rand.Rand) Op {
	key := r.Intn(h.keyRange)
	kind := h.mix.pick(r)
	write := kind != 0
	var ok bool
	return Op{
		Locks: func(add func(mgl.Req)) {
			add(mgl.Req{Class: h.class, Write: write})
		},
		Body: func(ctx Ctx) {
			switch kind {
			case 0:
				ok = h.get(ctx, key)
			case 1:
				ok = h.put(ctx, key)
			default:
				ok = h.remove(ctx, key)
			}
		},
		Work: h.nopWork,
		After: func() {
			if ok && kind == 1 {
				h.puts.Add(1)
			}
			if ok && kind == 2 {
				h.removes.Add(1)
			}
		},
	}
}

// Check implements Workload.
func (h *Hashtable) Check() error {
	ctx := Direct()
	buckets := ctx.Load(h.buckets).([]*mem.Cell)
	n := 0
	for i, b := range buckets {
		cur := asHNode(ctx.Load(b))
		for cur != nil {
			if hashKey(cur.key, len(buckets)) != i {
				return fmt.Errorf("hashtable: key %d in wrong bucket %d", cur.key, i)
			}
			n++
			cur = asHNode(ctx.Load(cur.next))
		}
	}
	if sz := ctx.Load(h.size).(int); sz != n {
		return fmt.Errorf("hashtable: size cell %d, actual %d", sz, n)
	}
	want := h.baseline + int(h.puts.Load()) - int(h.removes.Load())
	if n != want {
		return fmt.Errorf("hashtable: %d elements, want %d", n, want)
	}
	return nil
}
