package workload

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"lockinfer/internal/hybrid"
	"lockinfer/internal/mem"
)

// allWorkloads returns fresh instances of every benchmark at the given
// grain.
func allWorkloads(grain Grain) []Workload {
	return []Workload{
		NewList("list", LowMix),
		NewList("list-high", HighMix),
		NewRBTree("rbtree", LowMix),
		NewRBTree("rbtree-high", HighMix),
		NewHashtable("hashtable", LowMix),
		NewHashtable("hashtable-high", HighMix),
		NewHashtable2("hashtable-2", LowMix, grain),
		NewHashtable2("hashtable-2-high", HighMix, grain),
		NewTH("th", LowMix),
		NewGenome("genome", grain),
		NewKmeans("kmeans", grain),
		NewBayes("bayes"),
		NewVacation("vacation"),
		NewLabyrinth("labyrinth"),
	}
}

func execs() []Exec {
	return []Exec{
		NewGlobalExec(),
		NewMGLExec("mgl"),
		NewSTMExec(),
		NewHybridExec(hybrid.Config{}),
	}
}

// TestAllWorkloadsAllRuntimes runs every benchmark under every runtime and
// validates its invariants.
func TestAllWorkloadsAllRuntimes(t *testing.T) {
	for _, grain := range []Grain{GrainCoarse, GrainFine} {
		for _, w := range allWorkloads(grain) {
			for _, ex := range execs() {
				name := w.Name()
				t.Run(name+"/"+ex.Name()+grainName(grain), func(t *testing.T) {
					cfg := RunConfig{Threads: 4, OpsPerThread: 150, Seed: 42}
					if _, err := Run(w, ex, cfg); err != nil {
						t.Fatalf("%s under %s: %v", name, ex.Name(), err)
					}
				})
			}
		}
	}
}

func grainName(g Grain) string {
	if g == GrainFine {
		return "/fine"
	}
	return "/coarse"
}

// TestSequentialSemantics checks each structure's single-threaded behavior
// against a reference map.
func TestSequentialSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ctx := Direct()

	t.Run("list", func(t *testing.T) {
		l := NewList("list", LowMix)
		l.Setup(rand.New(rand.NewSource(1)))
		ref := map[int]bool{}
		cur := asLNode(ctx.Load(l.head))
		for cur != nil {
			ref[cur.key] = true
			cur = asLNode(ctx.Load(cur.next))
		}
		for i := 0; i < 2000; i++ {
			k := r.Intn(l.keyRange)
			switch r.Intn(3) {
			case 0:
				if got, want := l.lookup(ctx, k), ref[k]; got != want {
					t.Fatalf("lookup(%d) = %v, want %v", k, got, want)
				}
			case 1:
				if got, want := l.insert(ctx, k), !ref[k]; got != want {
					t.Fatalf("insert(%d) = %v, want %v", k, got, want)
				}
				ref[k] = true
			default:
				if got, want := l.remove(ctx, k), ref[k]; got != want {
					t.Fatalf("remove(%d) = %v, want %v", k, got, want)
				}
				delete(ref, k)
			}
		}
	})

	t.Run("rbtree", func(t *testing.T) {
		tr := NewRBTree("rbtree", LowMix)
		tr.Setup(rand.New(rand.NewSource(2)))
		ref := map[int]bool{}
		var collect func(n *rbnode)
		collect = func(n *rbnode) {
			if n == nil {
				return
			}
			ref[n.key] = true
			collect(asRB(ctx.Load(n.left)))
			collect(asRB(ctx.Load(n.right)))
		}
		collect(asRB(ctx.Load(tr.root)))
		for i := 0; i < 3000; i++ {
			k := r.Intn(tr.keyRange)
			switch r.Intn(3) {
			case 0:
				if got, want := tr.lookup(ctx, k), ref[k]; got != want {
					t.Fatalf("lookup(%d) = %v, want %v", k, got, want)
				}
			case 1:
				if got, want := tr.insert(ctx, k), !ref[k]; got != want {
					t.Fatalf("insert(%d) = %v, want %v", k, got, want)
				}
				ref[k] = true
			default:
				if got, want := tr.remove(ctx, k), ref[k]; got != want {
					t.Fatalf("remove(%d) = %v, want %v", k, got, want)
				}
				delete(ref, k)
			}
		}
	})

}

// TestHashtableReference drives the resizing hashtable against a map.
func TestHashtableReference(t *testing.T) {
	ctx := Direct()
	h := NewHashtable("hashtable", LowMix)
	h.buckets = nil
	h.Setup(rand.New(rand.NewSource(3)))
	r := rand.New(rand.NewSource(8))
	ref := map[int]bool{}
	// Reconstruct the setup contents.
	for k := 0; k < h.keyRange; k++ {
		if h.get(ctx, k) {
			ref[k] = true
		}
	}
	for i := 0; i < 3000; i++ {
		k := r.Intn(h.keyRange)
		switch r.Intn(3) {
		case 0:
			if got, want := h.get(ctx, k), ref[k]; got != want {
				t.Fatalf("get(%d) = %v, want %v", k, got, want)
			}
		case 1:
			if got, want := h.put(ctx, k), !ref[k]; got != want {
				t.Fatalf("put(%d) = %v, want %v", k, got, want)
			}
			ref[k] = true
		default:
			if got, want := h.remove(ctx, k), ref[k]; got != want {
				t.Fatalf("remove(%d) = %v, want %v", k, got, want)
			}
			delete(ref, k)
		}
	}
}

// TestRBTreeBalanced verifies full red-black invariants on insert-only
// runs.
func TestRBTreeBalanced(t *testing.T) {
	tr := NewRBTree("rbtree", Mix{GetPct: 0, PutPct: 100})
	tr.initial = 0
	tr.Setup(rand.New(rand.NewSource(4)))
	ctx := Direct()
	for i := 0; i < 4096; i++ {
		tr.insert(ctx, i) // adversarial ascending order
	}
	if err := tr.CheckBalance(); err != nil {
		t.Fatal(err)
	}
	// Depth must be logarithmic: 2*log2(4096+1) = 24 max for an RB tree.
	depth := 0
	var walk func(n *rbnode, d int)
	walk = func(n *rbnode, d int) {
		if n == nil {
			if d > depth {
				depth = d
			}
			return
		}
		walk(asRB(ctx.Load(n.left)), d+1)
		walk(asRB(ctx.Load(n.right)), d+1)
	}
	walk(asRB(ctx.Load(tr.root)), 0)
	if depth > 24 {
		t.Errorf("tree depth %d exceeds red-black bound 24", depth)
	}
}

// unsafeExec runs bodies with no synchronization at all, yielding between
// every access to force interleavings even on a single-core host; used to
// confirm the invariant checks actually catch atomicity violations.
type unsafeExec struct{}

type yieldingCtx struct{}

func (yieldingCtx) Load(c *mem.Cell) any {
	v := c.Load()
	runtime.Gosched()
	return v
}

func (yieldingCtx) Store(c *mem.Cell, v any) {
	runtime.Gosched()
	c.Store(v)
}

func (unsafeExec) Name() string        { return "unsafe" }
func (unsafeExec) Stats() string       { return "" }
func (unsafeExec) NewWorker() func(Op) { return func(op Op) { op.Body(yieldingCtx{}) } }

// TestChecksCatchRaces runs a write-heavy counter-style workload with no
// synchronization and expects a check failure (this also documents that the
// invariants are strong enough to detect lost updates).
func TestChecksCatchRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("racy by design")
	}
	k := NewKmeans("kmeans", GrainCoarse)
	failures := 0
	for attempt := 0; attempt < 5; attempt++ {
		cfg := RunConfig{Threads: 8, OpsPerThread: 3000, Seed: int64(attempt)}
		if _, err := Run(k, unsafeExec{}, cfg); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Error("unsynchronized execution never failed the invariant check")
	}
}

// TestStatsReporting smoke-tests the stats strings.
func TestStatsReporting(t *testing.T) {
	w := NewList("list", HighMix)
	ex := NewMGLExec("mgl-fine")
	if _, err := Run(w, ex, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Stats(), "acquires=") {
		t.Errorf("unexpected stats %q", ex.Stats())
	}
	st := NewSTMExec()
	if _, err := Run(w, st, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Stats(), "commits=") {
		t.Errorf("unexpected stats %q", st.Stats())
	}
	hy := NewHybridExec(hybrid.Config{})
	if _, err := Run(w, hy, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hy.Stats(), "fallbacks=") {
		t.Errorf("unexpected stats %q", hy.Stats())
	}
}

// TestHybridExecExtremes pins the adaptive runtime at its two degenerate
// policies — every section pessimistic, every section optimistic — on both
// contention mixes, and checks that the invariants hold and the policy
// counters reflect the pinned mode.
func TestHybridExecExtremes(t *testing.T) {
	cases := []struct {
		name string
		cfg  hybrid.Config
		pess bool
	}{
		{"force-fallback", hybrid.Config{AbortThreshold: hybrid.ForceFallback}, true},
		{"never-fallback", hybrid.Config{AbortThreshold: hybrid.NeverFallback}, false},
	}
	for _, tc := range cases {
		for _, mix := range []struct {
			name string
			mix  Mix
		}{{"read-heavy", ReadHeavyMix}, {"write-heavy", WriteHeavyMix}} {
			t.Run(tc.name+"/"+mix.name, func(t *testing.T) {
				w := NewHashtable2("ht2", mix.mix, GrainFine)
				ex := NewHybridExec(tc.cfg)
				cfg := RunConfig{Threads: 4, OpsPerThread: 200, Seed: 9}
				if _, err := Run(w, ex, cfg); err != nil {
					t.Fatal(err)
				}
				st := ex.Policy().Stats()
				total := int64(cfg.Threads * cfg.OpsPerThread)
				if tc.pess {
					if st.PessRuns != total || st.OptRuns != 0 {
						t.Errorf("forced fallback: opt=%d pess=%d, want 0/%d",
							st.OptRuns, st.PessRuns, total)
					}
				} else if st.OptRuns != total || st.PessRuns != 0 {
					t.Errorf("never fallback: opt=%d pess=%d, want %d/0",
						st.OptRuns, st.PessRuns, total)
				}
			})
		}
	}
}
