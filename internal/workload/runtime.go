// Package workload implements the benchmark programs of §6.1 as native Go
// code over shared memory cells, runnable under four concurrency runtimes:
//
//   - Global: one global mutex per atomic section (the paper's "Global"
//     column),
//   - MGL coarse: the multi-granularity lock runtime with the k=0 lock
//     plans (coarse points-to partition locks with read/write modes),
//   - MGL fine: the k=9 plans (fine per-cell locks where the inference
//     finds them, coarse otherwise),
//   - STM: the TL2-style optimistic baseline.
//
// Operation bodies are written once against the Ctx interface; lock
// runtimes execute them directly while the STM intercepts every access and
// may re-execute the body. Lock descriptor generators mirror the compiler's
// inferred locks for the mini-C versions of the same benchmarks (the
// correspondence is asserted by tests in the progs package).
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
	"lockinfer/internal/stm"
)

// Ctx provides access to shared cells inside an atomic operation.
type Ctx interface {
	Load(c *mem.Cell) any
	Store(c *mem.Cell, v any)
}

// directCtx accesses cells directly; used when locks provide exclusion.
type directCtx struct{}

func (directCtx) Load(c *mem.Cell) any     { return c.Load() }
func (directCtx) Store(c *mem.Cell, v any) { c.Store(v) }

// Direct returns a Ctx for single-threaded (setup/check) access.
func Direct() Ctx { return directCtx{} }

// Grain selects which lock plan a workload's descriptor generators emit.
type Grain int

// Lock plan grains.
const (
	// GrainCoarse mirrors the k=0 analysis: coarse partition locks only.
	GrainCoarse Grain = iota
	// GrainFine mirrors the k=9 analysis: fine per-cell locks where the
	// inference finds them.
	GrainFine
)

// Op is one atomic operation: the lock descriptors its section entry
// acquires (ignored by Global and STM) and the body.
type Op struct {
	// Locks emits the descriptors for the MGL runtimes.
	Locks func(add func(mgl.Req))
	// Body performs the operation through ctx. It must be re-executable
	// (the STM may abort and retry it).
	Body func(ctx Ctx)
	// After, if set, runs once after the atomic section commits; workloads
	// use it for exactly-once accounting of the operation's outcome.
	After func()
	// Work is the amount of in-section computation (the paper's nop padding
	// or, for kernels like labyrinth, the private work the section must
	// enclose), in spin units. Real runtimes burn it inside the section;
	// the machine simulator charges it as simulated core time.
	Work int
	// Section identifies the static atomic section this operation executes
	// (the key of the hybrid runtime's per-section adaptive state).
	// Workloads that don't set it share section 0.
	Section int
}

// Exec is a concurrency runtime executing atomic operations.
type Exec interface {
	Name() string
	// NewWorker returns the atomic-section runner for one goroutine.
	NewWorker() func(Op)
	// Stats renders runtime statistics after a run (may be empty).
	Stats() string
}

// GlobalExec serializes every atomic section with one mutex.
type GlobalExec struct {
	mu sync.Mutex
}

// NewGlobalExec returns the global-lock runtime.
func NewGlobalExec() *GlobalExec { return &GlobalExec{} }

// Name implements Exec.
func (g *GlobalExec) Name() string { return "global" }

// Stats implements Exec.
func (g *GlobalExec) Stats() string { return "" }

// NewWorker implements Exec.
func (g *GlobalExec) NewWorker() func(Op) {
	return func(op Op) {
		g.mu.Lock()
		op.Body(directCtx{})
		spinWork(op.Work)
		g.mu.Unlock()
	}
}

// MGLExec runs sections under a multi-granularity lock runtime — the
// sharded mgl.Manager by default, or the retained single-mutex
// mgl.RefManager baseline (see NewRefMGLExec).
type MGLExec struct {
	name string
	rt   mgl.LockRuntime
	m    *mgl.Manager // non-nil only for the sharded runtime
}

// NewMGLExec returns an MGL runtime with its own sharded lock tree. The
// name distinguishes the coarse and fine plan configurations in reports.
func NewMGLExec(name string) *MGLExec {
	m := mgl.NewManager()
	return &MGLExec{name: name, rt: m, m: m}
}

// NewRefMGLExec returns the pre-sharding reference MGL runtime (one global
// lookup mutex, channel-parked waiters, no plan memoization) — the
// baseline the throughput benchmarks compare the sharded runtime against.
func NewRefMGLExec(name string) *MGLExec {
	return &MGLExec{name: name, rt: mgl.NewRefManager()}
}

// Name implements Exec.
func (e *MGLExec) Name() string { return e.name }

// Stats implements Exec.
func (e *MGLExec) Stats() string {
	return fmt.Sprintf("acquires=%d waits=%d", e.rt.Acquires(), e.rt.Waits())
}

// Manager exposes the underlying sharded lock manager (nil when the exec
// wraps the reference runtime).
func (e *MGLExec) Manager() *mgl.Manager { return e.m }

// Runtime exposes the underlying lock runtime.
func (e *MGLExec) Runtime() mgl.LockRuntime { return e.rt }

// NewWorker implements Exec.
func (e *MGLExec) NewWorker() func(Op) {
	s := e.rt.NewLockSession()
	add := s.ToAcquire // a method value allocates: bind it once per worker, not per op
	return func(op Op) {
		if op.Locks != nil {
			op.Locks(add)
		}
		s.AcquireAll()
		op.Body(directCtx{})
		spinWork(op.Work)
		s.ReleaseAll()
	}
}

// STMExec runs sections as TL2 transactions.
type STMExec struct {
	rt *stm.Runtime
}

// NewSTMExec returns the optimistic runtime.
func NewSTMExec() *STMExec { return &STMExec{rt: stm.New()} }

// Name implements Exec.
func (e *STMExec) Name() string { return "stm" }

// Stats implements Exec.
func (e *STMExec) Stats() string {
	return fmt.Sprintf("commits=%d aborts=%d", e.rt.Commits(), e.rt.Aborts())
}

// Runtime exposes the underlying STM (for abort statistics).
func (e *STMExec) Runtime() *stm.Runtime { return e.rt }

type txCtx struct{ tx *stm.Tx }

func (c txCtx) Load(cell *mem.Cell) any     { return c.tx.Load(cell) }
func (c txCtx) Store(cell *mem.Cell, v any) { c.tx.Store(cell, v) }

// NewWorker implements Exec.
func (e *STMExec) NewWorker() func(Op) {
	return func(op Op) {
		e.rt.Atomic(func(tx *stm.Tx) {
			op.Body(txCtx{tx})
			spinWork(op.Work)
		})
	}
}

// Workload is one benchmark program.
type Workload interface {
	Name() string
	// Setup builds the shared state single-threaded.
	Setup(r *rand.Rand)
	// Op draws the next operation for one worker thread.
	Op(r *rand.Rand) Op
	// Check validates the workload's invariants after a run.
	Check() error
}

// RunConfig parameterizes one measurement.
type RunConfig struct {
	Threads      int
	OpsPerThread int
	Seed         int64
}

// Run executes the workload under the runtime and returns the wall-clock
// time of the parallel phase.
func Run(w Workload, ex Exec, cfg RunConfig) (time.Duration, error) {
	w.Setup(rand.New(rand.NewSource(cfg.Seed)))
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(t) + 1))
			atomic := ex.NewWorker()
			for i := 0; i < cfg.OpsPerThread; i++ {
				op := w.Op(r)
				atomic(op)
				if op.After != nil {
					op.After()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed, w.Check()
}

// spinWork burns deterministic CPU time; it models the paper's nop padding
// inside atomic sections and the private computation of kernels like
// labyrinth.
func spinWork(n int) int {
	x := 1
	for i := 0; i < n; i++ {
		x = x*1103515245 + 12345
	}
	return x
}
