package workload

import (
	"fmt"

	"lockinfer/internal/hybrid"
	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
	"lockinfer/internal/stm"
)

// HybridExec is the workload-level adaptive runtime, mirroring the
// interpreter's hybrid engine: each operation first runs as a bounded TL2
// transaction; when the per-section abort budget is exhausted it re-executes
// under the operation's lock descriptors, meta-locking the cells it stores
// to and publishing them as one version bump at section exit. The gate
// forces optimistic write-commits onto the locked path while any
// pessimistic section is active, so the two modes serialize against each
// other through the lock hierarchy.
type HybridExec struct {
	rt   *stm.Runtime
	lm   *mgl.Manager
	pol  *hybrid.Policy
	gate hybrid.Gate
}

// NewHybridExec returns the adaptive runtime with its own STM instance,
// sharded lock tree and policy state.
func NewHybridExec(cfg hybrid.Config) *HybridExec {
	return &HybridExec{
		rt:  stm.New(),
		lm:  mgl.NewManager(),
		pol: hybrid.NewPolicy(cfg),
	}
}

// Name implements Exec.
func (e *HybridExec) Name() string { return "hybrid" }

// Stats implements Exec.
func (e *HybridExec) Stats() string {
	st := e.pol.Stats()
	return fmt.Sprintf("commits=%d aborts=%d opt=%d pess=%d fallbacks=%d",
		e.rt.Commits(), e.rt.Aborts(), st.OptRuns, st.PessRuns, st.Fallbacks)
}

// Policy exposes the adaptive policy (for benchmark reporting).
func (e *HybridExec) Policy() *hybrid.Policy { return e.pol }

// pessCtx executes a pessimistic section: loads are direct (the lock plan
// isolates them) and each stored cell is meta-locked on first write so
// concurrent transactions cannot observe the section's intermediate states.
type pessCtx struct {
	held []*mem.Cell
}

func (c *pessCtx) Load(cell *mem.Cell) any { return cell.Load() }

func (c *pessCtx) Store(cell *mem.Cell, v any) {
	for _, h := range c.held {
		if h == cell {
			cell.Store(v)
			return
		}
	}
	stm.PessLock(cell)
	c.held = append(c.held, cell)
	cell.Store(v)
}

// NewWorker implements Exec.
func (e *HybridExec) NewWorker() func(Op) {
	s := e.lm.NewSession()
	add := s.ToAcquire
	ctx := &pessCtx{}
	hooks := &stm.Hooks{}
	var op Op // current operation, visible to the commit hook
	hooks.PreWriteCommit = func() func() {
		if e.gate.EnterFree() {
			return e.gate.ExitFree
		}
		if op.Locks != nil {
			op.Locks(add)
		}
		s.AcquireAll()
		return s.ReleaseAll
	}
	return func(o Op) {
		op = o
		mode, budget := e.pol.Decide(o.Section)
		if mode == hybrid.Opt {
			committed, aborts := e.rt.AtomicBounded(func(tx *stm.Tx) {
				o.Body(txCtx{tx})
				spinWork(o.Work)
			}, budget, hooks)
			if committed {
				e.pol.RecordOptimistic(o.Section, aborts)
				return
			}
			e.pol.RecordFallback(o.Section, aborts)
		}
		wait0 := s.WaitCount()
		e.gate.EnterPess()
		if o.Locks != nil {
			o.Locks(add)
		}
		s.AcquireAll()
		o.Body(ctx)
		spinWork(o.Work)
		e.rt.PessPublish(ctx.held)
		ctx.held = ctx.held[:0]
		s.ReleaseAll()
		e.gate.ExitPess()
		e.pol.RecordPessimistic(o.Section, s.WaitCount() > wait0)
	}
}
