package ir

import (
	"fmt"

	"lockinfer/internal/lang"
)

// Lower converts a parsed program into IR. It performs the type checking
// needed for a sound lowering (pointer/struct/field resolution, call arity)
// and reports the first error found.
func Lower(src *lang.Program) (*Program, error) {
	p := &Program{
		Source:    src,
		Structs:   map[string]*StructInfo{},
		fieldIDs:  map[string]int{},
		funcsByNm: map[string]*Func{},
		globalsNm: map[string]*Var{},
	}
	// Struct layouts: register all names first so self- and mutually
	// referential structs resolve.
	for _, sd := range src.Structs {
		p.Structs[sd.Name] = &StructInfo{Name: sd.Name, offsets: map[FieldID]int{}}
	}
	for _, sd := range src.Structs {
		si := p.Structs[sd.Name]
		for i, f := range sd.Fields {
			if err := p.checkType(f.Type, sd.Pos); err != nil {
				return nil, err
			}
			if f.Type.Ptr == 0 && f.Type.Base != "int" {
				return nil, errAt(sd.Pos, "field %q: struct-valued fields are not supported; use a pointer", f.Name)
			}
			id := p.InternField(f.Name)
			si.Fields = append(si.Fields, id)
			si.Types = append(si.Types, f.Type)
			si.offsets[id] = i
		}
		p.Structs[sd.Name] = si
	}
	// Globals.
	for i, g := range src.Globals {
		if err := p.checkVarType(g.Type, g.Pos); err != nil {
			return nil, err
		}
		v := &Var{Name: g.Name, Type: g.Type, Global: true, Index: i}
		p.Globals = append(p.Globals, v)
		p.globalsNm[g.Name] = v
	}
	// Function shells first so calls resolve in any order.
	for _, fd := range src.Funcs {
		f := &Func{Name: fd.Name, Ret: fd.Ret}
		p.Funcs = append(p.Funcs, f)
		p.funcsByNm[fd.Name] = f
	}
	// Synthetic initializer for globals with initializer expressions.
	initFn := &Func{Name: InitFuncName, Ret: lang.Type{Base: "void"}}
	p.Funcs = append(p.Funcs, initFn)
	p.funcsByNm[InitFuncName] = initFn
	{
		fl := newFuncLowerer(p, initFn)
		for i, g := range src.Globals {
			if g.Init == nil {
				continue
			}
			if err := fl.lowerAssignTo(p.Globals[i], g.Init, g.Pos); err != nil {
				return nil, err
			}
		}
		fl.finish()
	}
	// Function bodies.
	for _, fd := range src.Funcs {
		f := p.funcsByNm[fd.Name]
		fl := newFuncLowerer(p, f)
		for _, prm := range fd.Params {
			if err := p.checkVarType(prm.Type, fd.Pos); err != nil {
				return nil, err
			}
			v := fl.declare(prm.Name, prm.Type)
			f.Params = append(f.Params, v)
		}
		if fd.Body == nil {
			f.External = true
			continue
		}
		if !fd.Ret.IsVoid() {
			f.RetVar = fl.newTemp("ret$"+f.Name, fd.Ret)
		}
		if err := fl.block(fd.Body); err != nil {
			return nil, err
		}
		fl.finish()
	}
	return p, nil
}

// InitFuncName is the synthetic function holding global initializers.
const InitFuncName = "$init"

func (p *Program) checkType(t lang.Type, pos lang.Pos) error {
	switch t.Base {
	case "int", "void", "null":
		return nil
	default:
		if _, ok := p.Structs[t.Base]; !ok {
			return errAt(pos, "unknown type %q", t.Base)
		}
		return nil
	}
}

// checkVarType rejects variable declarations of bare struct or void type;
// all values in the language are single cells (ints or pointers).
func (p *Program) checkVarType(t lang.Type, pos lang.Pos) error {
	if err := p.checkType(t, pos); err != nil {
		return err
	}
	if t.Ptr == 0 && t.Base != "int" {
		return errAt(pos, "variables of type %s are not supported; use a pointer", t)
	}
	return nil
}

func errAt(pos lang.Pos, format string, args ...any) error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var (
	intType  = lang.Type{Base: "int"}
	nullType = lang.Type{Base: "null", Ptr: 1}
)

type scope struct {
	vars   map[string]*Var
	parent *scope
}

func (s *scope) lookup(name string) *Var {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

type funcLowerer struct {
	p  *Program
	fn *Func
	sc *scope
	// returnJumps are OpGoto statement indices to patch to the exit.
	returnJumps []int
	nextTemp    int
	// sections is the stack of open atomic section ids.
	sections []int
}

func newFuncLowerer(p *Program, fn *Func) *funcLowerer {
	return &funcLowerer{p: p, fn: fn, sc: &scope{vars: map[string]*Var{}}}
}

func (fl *funcLowerer) push() { fl.sc = &scope{vars: map[string]*Var{}, parent: fl.sc} }
func (fl *funcLowerer) pop()  { fl.sc = fl.sc.parent }

func (fl *funcLowerer) declare(name string, t lang.Type) *Var {
	v := &Var{Name: name, Type: t, Index: len(fl.fn.Vars), Owner: fl.fn}
	fl.fn.Vars = append(fl.fn.Vars, v)
	fl.sc.vars[name] = v
	return v
}

func (fl *funcLowerer) newTemp(hint string, t lang.Type) *Var {
	v := &Var{
		Name:  fmt.Sprintf("%s$%d", hint, fl.nextTemp),
		Type:  t,
		Temp:  true,
		Index: len(fl.fn.Vars),
		Owner: fl.fn,
	}
	fl.nextTemp++
	fl.fn.Vars = append(fl.fn.Vars, v)
	return v
}

// emit appends a statement and returns its index.
func (fl *funcLowerer) emit(s *Stmt) int {
	s.Section = fl.curSection()
	fl.fn.Stmts = append(fl.fn.Stmts, s)
	return len(fl.fn.Stmts) - 1
}

func (fl *funcLowerer) curSection() int {
	if len(fl.sections) == 0 {
		return -1
	}
	return fl.sections[len(fl.sections)-1]
}

// finish appends the exit statement, patches return jumps, and wires
// fallthrough edges plus predecessor lists.
func (fl *funcLowerer) finish() {
	exit := fl.emit(&Stmt{Op: OpExit})
	fl.fn.Exit = exit
	for _, i := range fl.returnJumps {
		fl.fn.Stmts[i].Succs = []int{exit}
	}
	for i, s := range fl.fn.Stmts {
		switch s.Op {
		case OpGoto, OpBranch, OpExit:
			// Succs already set (or empty for exit).
		default:
			s.Succs = []int{i + 1}
		}
	}
	for i, s := range fl.fn.Stmts {
		for _, t := range s.Succs {
			st := fl.fn.Stmts[t]
			st.Preds = append(st.Preds, i)
		}
	}
}

func (fl *funcLowerer) block(b *lang.BlockStmt) error {
	fl.push()
	defer fl.pop()
	for _, st := range b.Stmts {
		if err := fl.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (fl *funcLowerer) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.BlockStmt:
		return fl.block(st)
	case *lang.DeclStmt:
		if err := fl.p.checkVarType(st.Type, st.Pos); err != nil {
			return err
		}
		if _, ok := fl.sc.vars[st.Name]; ok {
			return errAt(st.Pos, "variable %q redeclared in this block", st.Name)
		}
		v := fl.declare(st.Name, st.Type)
		if st.Init != nil {
			return fl.lowerAssignTo(v, st.Init, st.Pos)
		}
		// Uninitialized pointers start null, ints start 0; make that explicit
		// so the backward analysis can kill paths through them.
		if st.Type.IsPointer() {
			fl.emit(&Stmt{Op: OpNull, Dst: v, Pos: st.Pos})
		} else {
			fl.emit(&Stmt{Op: OpConst, Dst: v, Const: 0, Pos: st.Pos})
		}
		return nil
	case *lang.AssignStmt:
		return fl.assign(st)
	case *lang.IfStmt:
		cond, err := fl.rvalue(st.Cond)
		if err != nil {
			return err
		}
		br := fl.emit(&Stmt{Op: OpBranch, Src: cond, Pos: st.Pos})
		thenStart := len(fl.fn.Stmts)
		if err := fl.stmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			end := len(fl.fn.Stmts)
			fl.fn.Stmts[br].Succs = []int{thenStart, end}
			return nil
		}
		skip := fl.emit(&Stmt{Op: OpGoto, Pos: st.Pos})
		elseStart := len(fl.fn.Stmts)
		if err := fl.stmt(st.Else); err != nil {
			return err
		}
		end := len(fl.fn.Stmts)
		fl.fn.Stmts[br].Succs = []int{thenStart, elseStart}
		fl.fn.Stmts[skip].Succs = []int{end}
		return nil
	case *lang.WhileStmt:
		condStart := len(fl.fn.Stmts)
		cond, err := fl.rvalue(st.Cond)
		if err != nil {
			return err
		}
		br := fl.emit(&Stmt{Op: OpBranch, Src: cond, Pos: st.Pos})
		bodyStart := len(fl.fn.Stmts)
		if err := fl.stmt(st.Body); err != nil {
			return err
		}
		fl.emit(&Stmt{Op: OpGoto, Succs: []int{condStart}, Pos: st.Pos})
		end := len(fl.fn.Stmts)
		fl.fn.Stmts[br].Succs = []int{bodyStart, end}
		return nil
	case *lang.AtomicStmt:
		id := len(fl.p.Sections)
		sec := &Section{ID: id, Fn: fl.fn, Pos: st.Pos}
		fl.p.Sections = append(fl.p.Sections, sec)
		sec.Begin = fl.emit(&Stmt{Op: OpAtomicBegin, Section: -2, Pos: st.Pos})
		// The begin/end markers carry their own section id (not the
		// enclosing one); body statements carry the innermost id.
		fl.fn.Stmts[sec.Begin].Section = id
		fl.sections = append(fl.sections, id)
		err := fl.block(st.Body)
		fl.sections = fl.sections[:len(fl.sections)-1]
		if err != nil {
			return err
		}
		sec.End = fl.emit(&Stmt{Op: OpAtomicEnd, Pos: st.Pos})
		fl.fn.Stmts[sec.End].Section = id
		return nil
	case *lang.ReturnStmt:
		if len(fl.sections) > 0 {
			return errAt(st.Pos, "return inside an atomic section is not supported")
		}
		if st.Value != nil {
			if fl.fn.RetVar == nil {
				return errAt(st.Pos, "void function %q returns a value", fl.fn.Name)
			}
			if err := fl.lowerAssignTo(fl.fn.RetVar, st.Value, st.Pos); err != nil {
				return err
			}
		} else if fl.fn.RetVar != nil {
			return errAt(st.Pos, "function %q must return a value", fl.fn.Name)
		}
		fl.returnJumps = append(fl.returnJumps, fl.emit(&Stmt{Op: OpGoto, Pos: st.Pos}))
		return nil
	case *lang.ExprStmt:
		call, ok := st.X.(*lang.CallExpr)
		if !ok {
			return errAt(st.Pos, "expression statement must be a call")
		}
		_, err := fl.call(call, true)
		return err
	case *lang.NopStmt:
		fl.emit(&Stmt{Op: OpNop, Pos: st.Pos})
		return nil
	default:
		return errAt(s.StmtPos(), "unsupported statement %T", s)
	}
}

// assign lowers "lhs = rhs".
func (fl *funcLowerer) assign(st *lang.AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *lang.Ident:
		v := fl.lookupVar(lhs.Name)
		if v == nil {
			return errAt(lhs.Pos, "undefined variable %q", lhs.Name)
		}
		return fl.lowerAssignTo(v, st.RHS, st.Pos)
	case *lang.Deref:
		addr, err := fl.rvalue(lhs.X)
		if err != nil {
			return err
		}
		if !addr.Type.IsPointer() {
			return errAt(lhs.Pos, "cannot store through non-pointer type %s", addr.Type)
		}
		return fl.storeTo(addr, st.RHS, st.Pos)
	case *lang.FieldAccess:
		addr, err := fl.fieldAddr(lhs)
		if err != nil {
			return err
		}
		return fl.storeTo(addr, st.RHS, st.Pos)
	case *lang.IndexExpr:
		addr, err := fl.indexAddr(lhs)
		if err != nil {
			return err
		}
		return fl.storeTo(addr, st.RHS, st.Pos)
	default:
		return errAt(st.Pos, "invalid assignment target %T", st.LHS)
	}
}

// storeTo lowers "*addr = rhs".
func (fl *funcLowerer) storeTo(addr *Var, rhs lang.Expr, pos lang.Pos) error {
	v, err := fl.rvalue(rhs)
	if err != nil {
		return err
	}
	fl.emit(&Stmt{Op: OpStore, Dst: addr, Src: v, Pos: pos})
	return nil
}

// lowerAssignTo lowers "dst = rhs" writing the final operation directly into
// dst so the IR matches the paper's assignment forms without extra copies.
func (fl *funcLowerer) lowerAssignTo(dst *Var, rhs lang.Expr, pos lang.Pos) error {
	switch e := rhs.(type) {
	case *lang.Ident:
		v := fl.lookupVar(e.Name)
		if v == nil {
			return errAt(e.Pos, "undefined variable %q", e.Name)
		}
		fl.emit(&Stmt{Op: OpCopy, Dst: dst, Src: v, Pos: pos})
		return nil
	case *lang.IntLit:
		fl.emit(&Stmt{Op: OpConst, Dst: dst, Const: e.Value, Pos: pos})
		return nil
	case *lang.NullLit:
		fl.emit(&Stmt{Op: OpNull, Dst: dst, Pos: pos})
		return nil
	case *lang.AddrOf:
		v := fl.lookupVar(e.Name)
		if v == nil {
			return errAt(e.Pos, "undefined variable %q", e.Name)
		}
		v.AddrTaken = true
		fl.emit(&Stmt{Op: OpAddrOf, Dst: dst, Src: v, Pos: pos})
		return nil
	case *lang.Deref:
		addr, err := fl.rvalue(e.X)
		if err != nil {
			return err
		}
		if !addr.Type.IsPointer() {
			return errAt(e.Pos, "cannot dereference non-pointer type %s", addr.Type)
		}
		fl.emit(&Stmt{Op: OpLoad, Dst: dst, Src: addr, Pos: pos})
		return nil
	case *lang.FieldAccess:
		addr, err := fl.fieldAddr(e)
		if err != nil {
			return err
		}
		fl.emit(&Stmt{Op: OpLoad, Dst: dst, Src: addr, Pos: pos})
		return nil
	case *lang.IndexExpr:
		addr, err := fl.indexAddr(e)
		if err != nil {
			return err
		}
		fl.emit(&Stmt{Op: OpLoad, Dst: dst, Src: addr, Pos: pos})
		return nil
	case *lang.NewExpr:
		return fl.lowerNew(dst, e, pos)
	case *lang.CallExpr:
		return fl.callInto(dst, e)
	case *lang.Binary:
		l, err := fl.rvalue(e.L)
		if err != nil {
			return err
		}
		r, err := fl.rvalue(e.R)
		if err != nil {
			return err
		}
		if err := checkBinary(e, l, r); err != nil {
			return err
		}
		fl.emit(&Stmt{Op: OpArith, Dst: dst, Src: l, Src2: r, Arith: e.Op, Pos: pos})
		return nil
	case *lang.Unary:
		x, err := fl.rvalue(e.X)
		if err != nil {
			return err
		}
		if x.Type.IsPointer() {
			return errAt(e.Pos, "unary %s requires an int operand", e.Op)
		}
		fl.emit(&Stmt{Op: OpUnary, Dst: dst, Src: x, Unop: e.Op, Pos: pos})
		return nil
	default:
		return errAt(rhs.ExprPos(), "unsupported expression %T", rhs)
	}
}

func checkBinary(e *lang.Binary, l, r *Var) error {
	lp, rp := l.Type.IsPointer(), r.Type.IsPointer()
	switch e.Op {
	case lang.BEq, lang.BNe:
		if lp != rp && l.Type.Base != "null" && r.Type.Base != "null" {
			return errAt(e.Pos, "cannot compare %s with %s", l.Type, r.Type)
		}
		return nil
	default:
		if lp || rp {
			return errAt(e.Pos, "operator %s requires int operands, got %s and %s",
				e.Op, l.Type, r.Type)
		}
		return nil
	}
}

// rvalue lowers e into a variable (reusing the variable itself for plain
// identifier expressions).
func (fl *funcLowerer) rvalue(e lang.Expr) (*Var, error) {
	if id, ok := e.(*lang.Ident); ok {
		v := fl.lookupVar(id.Name)
		if v == nil {
			return nil, errAt(id.Pos, "undefined variable %q", id.Name)
		}
		return v, nil
	}
	t, err := fl.exprType(e)
	if err != nil {
		return nil, err
	}
	tmp := fl.newTemp("t", t)
	if err := fl.lowerAssignTo(tmp, e, e.ExprPos()); err != nil {
		return nil, err
	}
	return tmp, nil
}

// fieldAddr lowers e.X->Name to an address variable via OpField.
func (fl *funcLowerer) fieldAddr(e *lang.FieldAccess) (*Var, error) {
	base, err := fl.rvalue(e.X)
	if err != nil {
		return nil, err
	}
	ft, err := fl.fieldType(base.Type, e.Name, e.Pos)
	if err != nil {
		return nil, err
	}
	addr := fl.newTemp("f$"+e.Name, lang.Type{Base: ft.Base, Ptr: ft.Ptr + 1})
	fl.emit(&Stmt{Op: OpField, Dst: addr, Src: base, Field: fl.p.InternField(e.Name), Pos: e.Pos})
	return addr, nil
}

// indexAddr lowers e.X[e.I] to an address variable via OpIndex.
func (fl *funcLowerer) indexAddr(e *lang.IndexExpr) (*Var, error) {
	base, err := fl.rvalue(e.X)
	if err != nil {
		return nil, err
	}
	if !base.Type.IsPointer() {
		return nil, errAt(e.Pos, "cannot index non-pointer type %s", base.Type)
	}
	idx, err := fl.rvalue(e.I)
	if err != nil {
		return nil, err
	}
	if idx.Type.IsPointer() {
		return nil, errAt(e.Pos, "array index must be an int")
	}
	addr := fl.newTemp("a", base.Type)
	fl.emit(&Stmt{Op: OpIndex, Dst: addr, Src: base, Src2: idx, Pos: e.Pos})
	return addr, nil
}

func (fl *funcLowerer) lowerNew(dst *Var, e *lang.NewExpr, pos lang.Pos) error {
	if err := fl.p.checkType(e.Type, e.Pos); err != nil {
		return err
	}
	st := &Stmt{Op: OpNew, Dst: dst, NewType: e.Type, Site: fl.p.NumSites, Pos: pos}
	if e.Len != nil {
		n, err := fl.rvalue(e.Len)
		if err != nil {
			return err
		}
		if n.Type.IsPointer() {
			return errAt(e.Pos, "array length must be an int")
		}
		st.Src2 = n
	}
	fl.p.SiteNames = append(fl.p.SiteNames,
		fmt.Sprintf("%s:%s:new %s", fl.fn.Name, pos, e.Type))
	fl.p.NumSites++
	fl.emit(st)
	return nil
}

func (fl *funcLowerer) callInto(dst *Var, e *lang.CallExpr) error {
	v, err := fl.callStmt(e, dst)
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// call lowers a call expression; statement-position void calls pass
// stmtOK=true.
func (fl *funcLowerer) call(e *lang.CallExpr, stmtOK bool) (*Var, error) {
	callee := fl.p.Func(e.Name)
	if callee == nil {
		return nil, errAt(e.Pos, "undefined function %q", e.Name)
	}
	if callee.Ret.IsVoid() {
		if !stmtOK {
			return nil, errAt(e.Pos, "void function %q used as a value", e.Name)
		}
		return nil, fl.callInto(nil, e)
	}
	tmp := fl.newTemp("r$"+e.Name, callee.Ret)
	if err := fl.callInto(tmp, e); err != nil {
		return nil, err
	}
	return tmp, nil
}

func (fl *funcLowerer) callStmt(e *lang.CallExpr, dst *Var) (*Var, error) {
	callee := fl.p.Func(e.Name)
	if callee == nil {
		return nil, errAt(e.Pos, "undefined function %q", e.Name)
	}
	if dst != nil && callee.Ret.IsVoid() {
		return nil, errAt(e.Pos, "void function %q used as a value", e.Name)
	}
	decl := fl.p.Source.Func(e.Name)
	if len(e.Args) != len(decl.Params) {
		return nil, errAt(e.Pos, "function %q takes %d arguments, got %d",
			e.Name, len(decl.Params), len(e.Args))
	}
	var args []*Var
	for _, a := range e.Args {
		av, err := fl.rvalue(a)
		if err != nil {
			return nil, err
		}
		args = append(args, av)
	}
	fl.emit(&Stmt{Op: OpCall, Dst: dst, Callee: e.Name, Args: args, Pos: e.Pos})
	return dst, nil
}

func (fl *funcLowerer) lookupVar(name string) *Var {
	if v := fl.sc.lookup(name); v != nil {
		return v
	}
	return fl.p.globalsNm[name]
}

func (fl *funcLowerer) fieldType(base lang.Type, field string, pos lang.Pos) (lang.Type, error) {
	if base.Ptr != 1 {
		return lang.Type{}, errAt(pos, "-> requires a struct pointer, got %s", base)
	}
	si, ok := fl.p.Structs[base.Base]
	if !ok {
		return lang.Type{}, errAt(pos, "-> requires a struct pointer, got %s", base)
	}
	off := si.Offset(fl.p.InternField(field))
	if off < 0 {
		return lang.Type{}, errAt(pos, "struct %q has no field %q", base.Base, field)
	}
	return si.Types[off], nil
}

// exprType computes the static type of an expression without emitting code.
func (fl *funcLowerer) exprType(e lang.Expr) (lang.Type, error) {
	switch x := e.(type) {
	case *lang.Ident:
		v := fl.lookupVar(x.Name)
		if v == nil {
			return lang.Type{}, errAt(x.Pos, "undefined variable %q", x.Name)
		}
		return v.Type, nil
	case *lang.IntLit:
		return intType, nil
	case *lang.NullLit:
		return nullType, nil
	case *lang.AddrOf:
		v := fl.lookupVar(x.Name)
		if v == nil {
			return lang.Type{}, errAt(x.Pos, "undefined variable %q", x.Name)
		}
		return lang.Type{Base: v.Type.Base, Ptr: v.Type.Ptr + 1}, nil
	case *lang.Deref:
		t, err := fl.exprType(x.X)
		if err != nil {
			return lang.Type{}, err
		}
		if !t.IsPointer() {
			return lang.Type{}, errAt(x.Pos, "cannot dereference non-pointer type %s", t)
		}
		return t.Elem(), nil
	case *lang.FieldAccess:
		t, err := fl.exprType(x.X)
		if err != nil {
			return lang.Type{}, err
		}
		return fl.fieldType(t, x.Name, x.Pos)
	case *lang.IndexExpr:
		t, err := fl.exprType(x.X)
		if err != nil {
			return lang.Type{}, err
		}
		if !t.IsPointer() {
			return lang.Type{}, errAt(x.Pos, "cannot index non-pointer type %s", t)
		}
		return t.Elem(), nil
	case *lang.NewExpr:
		return lang.Type{Base: x.Type.Base, Ptr: x.Type.Ptr + 1}, nil
	case *lang.CallExpr:
		callee := fl.p.Func(x.Name)
		if callee == nil {
			return lang.Type{}, errAt(x.Pos, "undefined function %q", x.Name)
		}
		if callee.Ret.IsVoid() {
			return lang.Type{}, errAt(x.Pos, "void function %q used as a value", x.Name)
		}
		return callee.Ret, nil
	case *lang.Binary:
		return intType, nil
	case *lang.Unary:
		return intType, nil
	default:
		return lang.Type{}, errAt(e.ExprPos(), "unsupported expression %T", e)
	}
}
