// Package ir defines the intermediate representation used by the lock
// inference analysis: three-address statements matching exactly the forms of
// Figure 4 in the paper (x=y, x=y+f, x=&y, x=*y, *x=y, x=new, x=null, calls),
// plus integer arithmetic, branches and atomic-section markers. Functions are
// statement-indexed control-flow graphs with explicit predecessor and
// successor edges, which is the shape the backward dataflow engine consumes.
package ir

import (
	"fmt"

	"lockinfer/internal/lang"
)

// FieldID is a program-wide interned field name. Array elements use the
// distinguished ElemField ("[]"), reflecting the paper's convention that
// array and structure dereferences are both modeled as field offsets.
type FieldID int

// Var is a variable: a global, a function parameter, a named local, or a
// compiler temporary. Vars are compared by pointer identity.
type Var struct {
	Name   string
	Type   lang.Type
	Global bool
	// AddrTaken records whether &x occurs anywhere; the inference engine
	// must conservatively protect such variables' cells.
	AddrTaken bool
	// Temp marks compiler-generated temporaries.
	Temp bool
	// Index is the position in Func.Vars (locals) or Program.Globals.
	Index int
	// Owner is the defining function; nil for globals.
	Owner *Func
}

func (v *Var) String() string { return v.Name }

// Op is a statement opcode.
type Op uint8

// Statement opcodes. The comment shows the concrete form, with x = Dst,
// y = Src, z = Src2.
const (
	OpCopy   Op = iota // x = y
	OpAddrOf           // x = &y
	OpLoad             // x = *y
	OpStore            // *x = y        (x is Dst, y is Src)
	OpField            // x = y + f     (address of field f of *y's cell)
	OpIndex            // x = y @ z     (address of element z of array y)
	OpNew              // x = new T     or x = new T[z]
	OpNull             // x = null
	OpConst            // x = c
	OpArith            // x = y <binop> z
	OpUnary            // x = <unop> y
	OpCall             // x = f(args)   (Dst nil for void calls)
	OpBranch           // if y goto Succs[0] else Succs[1]
	OpGoto             // goto Succs[0]
	OpNop              // padding work unit
	OpAtomicBegin
	OpAtomicEnd
	OpExit // function exit pseudo-statement (single, last)
)

var opNames = [...]string{
	OpCopy: "copy", OpAddrOf: "addrof", OpLoad: "load", OpStore: "store",
	OpField: "field", OpIndex: "index", OpNew: "new", OpNull: "null",
	OpConst: "const", OpArith: "arith", OpUnary: "unary", OpCall: "call",
	OpBranch: "branch", OpGoto: "goto", OpNop: "nop",
	OpAtomicBegin: "atomic.begin", OpAtomicEnd: "atomic.end", OpExit: "exit",
}

func (o Op) String() string { return opNames[o] }

// Stmt is a single IR statement. Control flow is explicit through Succs and
// Preds, which hold statement indices within the owning function.
type Stmt struct {
	Op      Op
	Dst     *Var
	Src     *Var
	Src2    *Var
	Field   FieldID       // OpField
	Const   int64         // OpConst
	Arith   lang.BinaryOp // OpArith
	Unop    lang.UnaryOp  // OpUnary
	Callee  string        // OpCall
	Args    []*Var        // OpCall
	NewType lang.Type     // OpNew: element type allocated
	Site    int           // OpNew: program-wide allocation site id
	Section int           // id of innermost enclosing atomic section, or -1
	Succs   []int
	Preds   []int
	Pos     lang.Pos
}

// Func is a lowered function body.
type Func struct {
	Name   string
	Params []*Var
	RetVar *Var // nil for void functions
	Ret    lang.Type
	Vars   []*Var // all locals: params, named locals, temporaries
	Stmts  []*Stmt
	// Exit is the index of the single OpExit statement.
	Exit int
	// External marks a pre-compiled function (prototype only): the body is
	// empty and the analysis relies on a specification.
	External bool
}

// Entry returns the index of the function's entry statement.
func (f *Func) Entry() int { return 0 }

// Section is one atomic section: the statement range between its begin and
// end markers within Fn. Lowering is linear, so every statement of the
// section body has index in (Begin, End).
type Section struct {
	ID    int
	Fn    *Func
	Begin int // index of the OpAtomicBegin statement
	End   int // index of the OpAtomicEnd statement
	Pos   lang.Pos
}

// Contains reports whether statement index i of s.Fn lies strictly inside
// the section body.
func (s *Section) Contains(i int) bool { return i > s.Begin && i < s.End }

// StructInfo is the lowered layout of a struct type.
type StructInfo struct {
	Name   string
	Fields []FieldID
	Types  []lang.Type
	// ByField maps a program-wide field id to its slot offset, or -1.
	offsets map[FieldID]int
}

// Offset returns the slot offset of field f within the struct, or -1 if the
// struct has no such field.
func (si *StructInfo) Offset(f FieldID) int {
	if o, ok := si.offsets[f]; ok {
		return o
	}
	return -1
}

// Program is a lowered compilation unit.
type Program struct {
	Source   *lang.Program
	Globals  []*Var
	Funcs    []*Func
	Sections []*Section
	Structs  map[string]*StructInfo

	fieldNames []string
	fieldIDs   map[string]int
	funcsByNm  map[string]*Func
	globalsNm  map[string]*Var

	// NumSites is the number of allocation sites; OpNew.Site < NumSites.
	NumSites int
	// SiteNames describes each allocation site for diagnostics.
	SiteNames []string
}

// ElemFieldName is the pseudo-field used for array elements.
const ElemFieldName = "[]"

// FieldName returns the interned name of a field id.
func (p *Program) FieldName(f FieldID) string { return p.fieldNames[f] }

// FieldCount returns the number of interned field names.
func (p *Program) FieldCount() int { return len(p.fieldNames) }

// InternField returns the id for a field name, interning it if new.
func (p *Program) InternField(name string) FieldID {
	if id, ok := p.fieldIDs[name]; ok {
		return FieldID(id)
	}
	id := len(p.fieldNames)
	p.fieldNames = append(p.fieldNames, name)
	p.fieldIDs[name] = id
	return FieldID(id)
}

// ElemField returns the id of the array-element pseudo-field.
func (p *Program) ElemField() FieldID { return p.InternField(ElemFieldName) }

// Func returns the lowered function with the given name, or nil.
func (p *Program) Func(name string) *Func { return p.funcsByNm[name] }

// Global returns the global variable with the given name, or nil.
func (p *Program) Global(name string) *Var { return p.globalsNm[name] }

// String renders a statement for diagnostics, given its owning program (for
// field names).
func (p *Program) StmtString(s *Stmt) string {
	switch s.Op {
	case OpCopy:
		return fmt.Sprintf("%s = %s", s.Dst, s.Src)
	case OpAddrOf:
		return fmt.Sprintf("%s = &%s", s.Dst, s.Src)
	case OpLoad:
		return fmt.Sprintf("%s = *%s", s.Dst, s.Src)
	case OpStore:
		return fmt.Sprintf("*%s = %s", s.Dst, s.Src)
	case OpField:
		return fmt.Sprintf("%s = %s + %s", s.Dst, s.Src, p.FieldName(s.Field))
	case OpIndex:
		return fmt.Sprintf("%s = %s @ %s", s.Dst, s.Src, s.Src2)
	case OpNew:
		if s.Src2 != nil {
			return fmt.Sprintf("%s = new %s[%s] #%d", s.Dst, s.NewType, s.Src2, s.Site)
		}
		return fmt.Sprintf("%s = new %s #%d", s.Dst, s.NewType, s.Site)
	case OpNull:
		return fmt.Sprintf("%s = null", s.Dst)
	case OpConst:
		return fmt.Sprintf("%s = %d", s.Dst, s.Const)
	case OpArith:
		return fmt.Sprintf("%s = %s %s %s", s.Dst, s.Src, s.Arith, s.Src2)
	case OpUnary:
		return fmt.Sprintf("%s = %s%s", s.Dst, s.Unop, s.Src)
	case OpCall:
		args := ""
		for i, a := range s.Args {
			if i > 0 {
				args += ", "
			}
			args += a.Name
		}
		if s.Dst != nil {
			return fmt.Sprintf("%s = %s(%s)", s.Dst, s.Callee, args)
		}
		return fmt.Sprintf("%s(%s)", s.Callee, args)
	case OpBranch:
		return fmt.Sprintf("if %s goto %d else %d", s.Src, s.Succs[0], s.Succs[1])
	case OpGoto:
		return fmt.Sprintf("goto %d", s.Succs[0])
	case OpNop:
		return "nop"
	case OpAtomicBegin:
		return fmt.Sprintf("atomic.begin #%d", s.Section)
	case OpAtomicEnd:
		return fmt.Sprintf("atomic.end #%d", s.Section)
	case OpExit:
		return "exit"
	}
	return fmt.Sprintf("op(%d)", s.Op)
}

// FuncString renders a whole function for diagnostics and golden tests.
func (p *Program) FuncString(f *Func) string {
	out := fmt.Sprintf("func %s:\n", f.Name)
	for i, s := range f.Stmts {
		out += fmt.Sprintf("  %3d: %s\n", i, p.StmtString(s))
	}
	return out
}
