package ir

import (
	"strings"
	"testing"

	"lockinfer/internal/lang"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const miniSrc = `
struct node { node* next; int v; }
node* head;
int sum(node* n) {
  int s = 0;
  while (n != null) {
    s = s + n->v;
    n = n->next;
  }
  return s;
}
void push(int v) {
  atomic {
    node* e = new node;
    e->v = v;
    e->next = head;
    head = e;
  }
}
`

// TestCFGInvariants checks predecessor/successor consistency on every
// function of a lowered program.
func TestCFGInvariants(t *testing.T) {
	p := lower(t, miniSrc)
	for _, f := range p.Funcs {
		checkCFG(t, p, f)
	}
}

func checkCFG(t *testing.T, p *Program, f *Func) {
	t.Helper()
	n := len(f.Stmts)
	if n == 0 {
		t.Fatalf("%s: empty body", f.Name)
	}
	if f.Stmts[f.Exit].Op != OpExit || f.Exit != n-1 {
		t.Errorf("%s: exit is not the final statement", f.Name)
	}
	for i, s := range f.Stmts {
		if s.Op == OpExit && len(s.Succs) != 0 {
			t.Errorf("%s:%d exit has successors", f.Name, i)
		}
		if s.Op != OpExit && len(s.Succs) == 0 {
			t.Errorf("%s:%d (%s) has no successors", f.Name, i, p.StmtString(s))
		}
		for _, j := range s.Succs {
			if j < 0 || j >= n {
				t.Fatalf("%s:%d successor %d out of range", f.Name, i, j)
			}
			found := false
			for _, back := range f.Stmts[j].Preds {
				if back == i {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: edge %d->%d missing from preds", f.Name, i, j)
			}
		}
		for _, j := range s.Preds {
			found := false
			for _, fwd := range f.Stmts[j].Succs {
				if fwd == i {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: pred edge %d->%d missing from succs", f.Name, j, i)
			}
		}
	}
}

// TestSectionRanges checks that atomic markers delimit contiguous ranges
// and that body statements carry the section id.
func TestSectionRanges(t *testing.T) {
	p := lower(t, miniSrc)
	if len(p.Sections) != 1 {
		t.Fatalf("%d sections, want 1", len(p.Sections))
	}
	sec := p.Sections[0]
	f := sec.Fn
	if f.Stmts[sec.Begin].Op != OpAtomicBegin || f.Stmts[sec.End].Op != OpAtomicEnd {
		t.Fatal("section markers wrong")
	}
	for i := sec.Begin + 1; i < sec.End; i++ {
		if f.Stmts[i].Section != sec.ID {
			t.Errorf("stmt %d has section %d, want %d", i, f.Stmts[i].Section, sec.ID)
		}
		if !sec.Contains(i) {
			t.Errorf("Contains(%d) = false inside the body", i)
		}
	}
	if sec.Contains(sec.Begin) || sec.Contains(sec.End) {
		t.Error("Contains includes the markers")
	}
}

// TestLoweringForms checks that only the paper's statement forms appear.
func TestLoweringForms(t *testing.T) {
	p := lower(t, miniSrc)
	for _, f := range p.Funcs {
		for i, s := range f.Stmts {
			switch s.Op {
			case OpCopy, OpAddrOf, OpLoad, OpStore, OpField, OpIndex, OpNew,
				OpNull, OpConst, OpArith, OpUnary, OpCall, OpBranch, OpGoto,
				OpNop, OpAtomicBegin, OpAtomicEnd, OpExit:
			default:
				t.Errorf("%s:%d unexpected op %v", f.Name, i, s.Op)
			}
			if s.Op == OpStore && (s.Dst == nil || s.Src == nil) {
				t.Errorf("%s:%d malformed store", f.Name, i)
			}
		}
	}
}

// TestWhileLoopShape checks the loop wiring: the branch exits past the
// back-edge goto.
func TestWhileLoopShape(t *testing.T) {
	p := lower(t, miniSrc)
	f := p.Func("sum")
	var branch *Stmt
	for _, s := range f.Stmts {
		if s.Op == OpBranch {
			branch = s
		}
	}
	if branch == nil {
		t.Fatal("no branch in sum")
	}
	if len(branch.Succs) != 2 || branch.Succs[0] == branch.Succs[1] {
		t.Fatalf("branch succs = %v", branch.Succs)
	}
}

// TestGlobalsAndInit checks the synthetic initializer function.
func TestGlobalsAndInit(t *testing.T) {
	p := lower(t, `
struct s { int x; }
s* g = new s;
int n = 41 + 1;
void main() { n = 0; }
`)
	init := p.Func(InitFuncName)
	if init == nil {
		t.Fatal("no $init function")
	}
	sawNew, sawArith := false, false
	for _, s := range init.Stmts {
		if s.Op == OpNew {
			sawNew = true
		}
		if s.Op == OpArith {
			sawArith = true
		}
	}
	if !sawNew || !sawArith {
		t.Errorf("initializer missing statements: new=%v arith=%v", sawNew, sawArith)
	}
	if p.Global("g") == nil || p.Global("n") == nil {
		t.Error("globals not registered")
	}
}

// TestAddrTaken checks the escape marking used by the shared-variable rule.
func TestAddrTaken(t *testing.T) {
	p := lower(t, `
void f() {
  int x = 0;
  int y = 0;
  int* p = &x;
  *p = 1;
  y = y + 1;
}
`)
	f := p.Func("f")
	byName := map[string]*Var{}
	for _, v := range f.Vars {
		byName[v.Name] = v
	}
	if !byName["x"].AddrTaken {
		t.Error("x should be address-taken")
	}
	if byName["y"].AddrTaken {
		t.Error("y should not be address-taken")
	}
}

// TestLoweringErrors checks the type errors the lowering catches.
func TestLoweringErrors(t *testing.T) {
	cases := map[string]string{
		"deref int":          "void f() { int x = 0; int y = *x; }",
		"field on int":       "void f() { int x = 0; int y = x->v; }",
		"unknown field":      "struct s { int a; } void f(s* p) { p->b = 1; }",
		"unknown type":       "void f() { q* x = null; }",
		"unknown fn":         "void f() { g(); }",
		"arity":              "void g(int a) {} void f() { g(); }",
		"void as value":      "void g() {} void f() { int x = g(); }",
		"bare struct var":    "struct s { int a; } void f() { s x; }",
		"bare struct field":  "struct s { int a; } struct t { s inner; }",
		"return in atomic":   "int f() { atomic { return 1; } }",
		"missing return val": "int f() { return; }",
		"value from void":    "void f() { return 1; }",
		"arith on ptr":       "struct s { int a; } void f(s* p) { int x = p + 1; }",
		"undefined var":      "void f() { x = 1; }",
		"redeclared":         "void f() { int x = 1; int x = 2; }",
	}
	for name, src := range cases {
		ast, err := lang.Parse(src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", name, err)
			continue
		}
		if _, err := Lower(ast); err == nil {
			t.Errorf("%s: Lower succeeded, want error", name)
		}
	}
}

// TestStmtString smoke-tests the IR printer.
func TestStmtString(t *testing.T) {
	p := lower(t, miniSrc)
	out := p.FuncString(p.Func("push"))
	for _, want := range []string{"new node", "atomic.begin", "atomic.end", "+ next"} {
		if !strings.Contains(out, want) {
			t.Errorf("FuncString missing %q:\n%s", want, out)
		}
	}
}

// TestFieldInterning checks program-wide field ids.
func TestFieldInterning(t *testing.T) {
	p := lower(t, `
struct a { int f; }
struct b { int f; int g; }
void m(a* x, b* y) { x->f = 1; y->f = 2; y->g = 3; }
`)
	fa := p.InternField("f")
	if p.FieldName(fa) != "f" {
		t.Error("intern/name mismatch")
	}
	if p.InternField("f") != fa {
		t.Error("re-interning changed the id")
	}
	sa, sb := p.Structs["a"], p.Structs["b"]
	if sa.Offset(fa) != 0 || sb.Offset(fa) != 0 || sb.Offset(p.InternField("g")) != 1 {
		t.Error("field offsets wrong")
	}
	if sa.Offset(p.InternField("g")) != -1 {
		t.Error("missing field should give -1")
	}
}
