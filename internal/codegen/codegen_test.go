package codegen_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockinfer/internal/codegen"

	"lockinfer/internal/interp"
	"lockinfer/internal/locks"
	"lockinfer/internal/oracle"
	"lockinfer/internal/progs"
	"lockinfer/internal/refine"
	"lockinfer/internal/steens"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fromTarget adapts an oracle target into the emitter input plus native
// run specs. Oracle targets carry interp.Value args; the native binary
// takes raw integers.
func fromTarget(t *testing.T, tg *oracle.Target) (codegen.Program, codegen.RunOptions) {
	t.Helper()
	p := codegen.Program{
		Name:     tg.Name,
		Prog:     tg.Prog,
		Pts:      tg.Pts,
		Variants: codegen.DefaultVariants(tg.Plan),
	}
	opts := codegen.RunOptions{}
	if tg.Setup != nil {
		s := toSpec(t, *tg.Setup)
		opts.Setup = &s
	}
	for _, th := range tg.Threads {
		opts.Threads = append(opts.Threads, toSpec(t, th))
	}
	return p, opts
}

func toSpec(t *testing.T, ts interp.ThreadSpec) codegen.Spec {
	t.Helper()
	s := codegen.Spec{Fn: ts.Fn}
	for _, a := range ts.Args {
		if a.Kind != interp.VInt {
			t.Fatalf("non-int arg %v in thread spec", a)
		}
		s.Args = append(s.Args, a.Int)
	}
	return s
}

// interpDump runs the target on the checking interpreter and returns the
// canonical state fingerprint.
func interpDump(t *testing.T, tg *oracle.Target) string {
	t.Helper()
	m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
	m.Checked = true
	if err := m.Init(); err != nil {
		t.Fatalf("interp init: %v", err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			t.Fatalf("interp setup: %v", err)
		}
	}
	if err := m.Run(tg.Threads); err != nil {
		t.Fatalf("interp run: %v", err)
	}
	return m.StateDump()
}

// goldenTargets is the fixed program set for golden and determinism tests:
// the smallest corpus program plus one generated program.
func goldenTargets(t *testing.T) map[string]*oracle.Target {
	t.Helper()
	out := map[string]*oracle.Target{}
	mv, err := progs.Get("move")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := oracle.FromCorpus(mv, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	out["move"] = tgt
	pg, err := oracle.FromProgen(7, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["progen7"] = pg
	return out
}

// TestGolden pins the emitted source for the fixed program set. Regenerate
// with `go test ./internal/codegen -run TestGolden -update` after an
// intentional emitter change.
func TestGolden(t *testing.T) {
	for name, tg := range goldenTargets(t) {
		t.Run(name, func(t *testing.T) {
			p, _ := fromTarget(t, tg)
			src, err := codegen.Emit(p)
			if err != nil {
				t.Fatalf("emit: %v", err)
			}
			path := filepath.Join("testdata", name+".go.golden")
			if *update {
				if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if src != string(want) {
				t.Errorf("emitted source differs from %s; run with -update if intentional\nfirst divergence: %s",
					path, firstDiff(src, string(want)))
			}
		})
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: got %q, want %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: got %d lines, want %d", len(al), len(bl))
}

// TestEmitDeterminism: the same IR + plan emits byte-identical source
// across repeated calls (map iteration must never leak into the output).
func TestEmitDeterminism(t *testing.T) {
	for name, tg := range goldenTargets(t) {
		p, _ := fromTarget(t, tg)
		first, err := codegen.Emit(p)
		if err != nil {
			t.Fatalf("%s: emit: %v", name, err)
		}
		for i := 0; i < 5; i++ {
			again, err := codegen.Emit(p)
			if err != nil {
				t.Fatalf("%s: emit #%d: %v", name, i, err)
			}
			if again != first {
				t.Fatalf("%s: emission #%d differs from first: %s", name, i, firstDiff(again, first))
			}
		}
	}
}

// TestNativeMatchesInterp is the backend's core correctness claim on
// deterministic schedules: with a single worker thread, the native
// binary's state fingerprint equals interp.StateDump byte for byte.
func TestNativeMatchesInterp(t *testing.T) {
	cases := []*oracle.Target{}
	for _, name := range []string{"move", "counter", "list"} {
		p, err := progs.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tg, err := oracle.FromCorpus(p, 2, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tg)
	}
	for _, seed := range []int64{1, 7, 13} {
		tg, err := oracle.FromProgen(seed, 2, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tg)
	}
	for _, tg := range cases {
		t.Run(tg.Name, func(t *testing.T) {
			want := interpDump(t, tg)
			p, opts := fromTarget(t, tg)
			res, err := codegen.Native(p, opts)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if len(res.Flags) > 0 {
				t.Fatalf("native run flagged: %v", res.Flags)
			}
			if res.State != want {
				t.Errorf("state mismatch\nnative: %s\ninterp: %s", res.State, want)
			}
		})
	}
}

// TestNativeDropAllFlagged: running the baked drop-all variant under the
// checker must surface a soundness violation for a program whose plan has
// locks to drop.
func TestNativeDropAllFlagged(t *testing.T) {
	mv, err := progs.Get("move")
	if err != nil {
		t.Fatal(err)
	}
	tg, err := oracle.FromCorpus(mv, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := tg.DropLock(""); n == 0 {
		t.Skip("plan has no locks to drop")
	}
	p, opts := fromTarget(t, tg)
	opts.Plan = codegen.VariantDropAll
	res, err := codegen.Native(p, opts)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	if len(res.Flags) == 0 {
		t.Fatal("drop-all variant ran clean; checker should have flagged uncovered accesses")
	}
	found := false
	for _, f := range res.Flags {
		if strings.Contains(f, "soundness violation") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a soundness violation flag, got %v", res.Flags)
	}
}

// TestNativePermuteMutant: -mutate permute must report how many
// multi-step plans it reversed, so the harness can tell an effective
// mutation from a vacuous one.
func TestNativePermuteMutant(t *testing.T) {
	mv, err := progs.Get("move")
	if err != nil {
		t.Fatal(err)
	}
	tg, err := oracle.FromCorpus(mv, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, opts := fromTarget(t, tg)
	opts.Mutate = "permute"
	res, err := codegen.Native(p, opts)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	// move's transfer section acquires two account locks, so the mutation
	// must have had something to reverse; whether the watcher catches an
	// order violation depends on the schedule, but the count is reliable.
	if res.Permuted == 0 {
		t.Error("permute mutation reversed no plans; expected multi-step acquisitions")
	}
}

// TestNativeShardedPlan: a refined plan with shard locks compiles, runs
// clean under the coverage checker, and matches the interpreter's state
// fingerprint — the native backend's slice of the split-lock story.
func TestNativeShardedPlan(t *testing.T) {
	const src = `
struct counter { int n; }
counter* c1;
counter* c2;
void init() {
  c1 = new counter;
  c2 = new counter;
}
counter* pick(int which) {
  if (which) { return c1; }
  return c2;
}
void bump1() {
  atomic { c1->n = c1->n + 1; }
}
void bump2() {
  atomic { c2->n = c2->n + 1; }
}
`
	setup := interp.ThreadSpec{Fn: "init"}
	tg, err := oracle.FromSource("shards", src, 0,
		[]interp.ThreadSpec{{Fn: "bump1"}, {Fn: "bump2"}}, &setup)
	if err != nil {
		t.Fatal(err)
	}
	// Find the class both bump sections coarse-hold and mark it hot.
	held := map[steens.NodeID]int{}
	for _, set := range tg.Plan {
		for _, l := range set.Sorted() {
			if !l.Fine && !l.IsGlobal() && l.Eff == locks.RW {
				held[tg.Pts.Rep(l.Class)]++
			}
		}
	}
	prof := locks.NewProfile("shards", "test")
	for c, n := range held {
		if n >= 2 {
			lp := prof.Lock(locks.ClassKey(int64(c)))
			lp.Acquires = 100
			lp.Waits = 40
		}
	}
	res := refine.Refine(tg.Prog, tg.Pts, tg.C.Andersen(), tg.Plan, prof, refine.Options{})
	shards := 0
	for _, set := range res.Plan {
		for _, l := range set.Sorted() {
			if l.IsShard() {
				shards++
			}
		}
	}
	if shards < 2 {
		t.Fatalf("precondition: refinement produced %d shard locks, want >= 2: %v", shards, res.Lines())
	}
	tg.Plan = res.Plan
	want := interpDump(t, tg)
	p, opts := fromTarget(t, tg)
	nres, err := codegen.Native(p, opts)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	if len(nres.Flags) > 0 {
		t.Fatalf("sharded plan flagged: %v", nres.Flags)
	}
	if nres.State != want {
		t.Errorf("state mismatch\nnative: %s\ninterp: %s", nres.State, want)
	}
}

// TestBuildCache: rebuilding identical source must reuse the cached
// binary instead of invoking the compiler again.
func TestBuildCache(t *testing.T) {
	tg, err := oracle.FromProgen(3, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fromTarget(t, tg)
	src, err := codegen.Emit(p)
	if err != nil {
		t.Fatal(err)
	}
	bin1, err := codegen.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	before := codegen.Builds()
	bin2, err := codegen.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if bin1 != bin2 {
		t.Errorf("cache returned different paths: %s vs %s", bin1, bin2)
	}
	if codegen.Builds() != before {
		t.Errorf("second codegen.Build recompiled; want cache hit")
	}
}

// TestUnsupportedExterns: programs with external functions are rejected
// with a useful error — naming both the extern and the call site — instead
// of emitting an uncompilable binary.
func TestUnsupportedExterns(t *testing.T) {
	tg, err := oracle.FromSource("ext", `
void log_it(int x);
int g;
void work() { atomic { g = g + 1; log_it(g); } }
`, 2, []interp.ThreadSpec{{Fn: "work"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fromTarget(t, tg)
	if _, err := codegen.Emit(p); err == nil {
		t.Fatal("expected codegen.Emit to reject external function")
	} else if !strings.Contains(err.Error(), "log_it") {
		t.Errorf("error should name the extern: %v", err)
	} else if !strings.Contains(err.Error(), "called from work at line 4") {
		t.Errorf("error should name the call site: %v", err)
	}
}

// TestUnsupportedExternUncalled: an extern nobody calls is still rejected,
// without a call-site clause.
func TestUnsupportedExternUncalled(t *testing.T) {
	tg, err := oracle.FromSource("extdead", `
void log_it(int x);
int g;
void work() { atomic { g = g + 1; } }
`, 2, []interp.ThreadSpec{{Fn: "work"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fromTarget(t, tg)
	_, err = codegen.Emit(p)
	if err == nil {
		t.Fatal("expected codegen.Emit to reject external function")
	}
	if !strings.Contains(err.Error(), "log_it") || strings.Contains(err.Error(), "called from") {
		t.Errorf("uncalled extern should be named without a call site: %v", err)
	}
}
