package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// cacheDirFor mirrors Build's key derivation so tests against the real
// module cache can clean up their entries afterwards.
func cacheDirFor(t *testing.T, src string) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	mglFP, err := mglFingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(runtime.Version() + "\x00" + mglFP + "\x00" + src))
	return filepath.Join(root, cacheDirName, "b"+hex.EncodeToString(sum[:])[:20])
}

// TestPrune fills a cache past capacity with staggered modification times:
// exactly the oldest entries must go, and non-cache entries (plain files,
// differently named directories) must survive.
func TestPrune(t *testing.T) {
	cacheDir := t.TempDir()
	base := time.Now().Add(-2 * time.Hour)
	n := cacheCap + 5
	for i := 0; i < n; i++ {
		dir := filepath.Join(cacheDir, "b"+strconv.Itoa(1000+i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(dir, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(cacheDir, "other"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, "bnotes"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	prune(cacheDir)

	// prune removes enough of the oldest entries to bring the count
	// strictly under capacity for the build about to land.
	removed := n - cacheCap + 1
	for i := 0; i < n; i++ {
		_, err := os.Stat(filepath.Join(cacheDir, "b"+strconv.Itoa(1000+i)))
		if i < removed && err == nil {
			t.Errorf("old entry %d survived pruning", i)
		}
		if i >= removed && err != nil {
			t.Errorf("young entry %d was pruned: %v", i, err)
		}
	}
	for _, keep := range []string{"other", "bnotes"} {
		if _, err := os.Stat(filepath.Join(cacheDir, keep)); err != nil {
			t.Errorf("non-cache entry %s was pruned: %v", keep, err)
		}
	}
}

// TestPruneUnderCapacity: a missing or under-capacity cache is a no-op.
func TestPruneUnderCapacity(t *testing.T) {
	prune(filepath.Join(t.TempDir(), "missing"))
	cacheDir := t.TempDir()
	dir := filepath.Join(cacheDir, "bkeep")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	prune(cacheDir)
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("under-capacity entry was pruned: %v", err)
	}
}

// TestCompile drives the compile step against a scratch module: a valid
// program produces a binary and counts as a compiler invocation, an invalid
// one surfaces the go build diagnostics.
func TestCompile(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module scratch\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(root, cacheDirName, "bgood")
	bin := filepath.Join(dir, "prog")
	before := Builds()
	if err := compile(root, dir, bin, "package main\n\nfunc main() {}\n"); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := os.Stat(bin); err != nil {
		t.Fatalf("no binary produced: %v", err)
	}
	if got := Builds(); got != before+1 {
		t.Errorf("Builds() = %d, want %d", got, before+1)
	}

	dir = filepath.Join(root, cacheDirName, "bbad")
	err := compile(root, dir, filepath.Join(dir, "prog"), "package main\n\nfunc main() { undefined() }\n")
	if err == nil || !strings.Contains(err.Error(), "go build") {
		t.Fatalf("compile of broken source: %v, want go build error", err)
	}
}

// TestBuildBadSourceRetries: a failed build must not be pinned — the
// in-flight marker is cleared so a later call re-attempts (and re-reports)
// the compile instead of returning a stale success.
func TestBuildBadSourceRetries(t *testing.T) {
	src := "package main\n\nfunc main() { this is not Go }\n"
	defer os.RemoveAll(cacheDirFor(t, src))
	if _, err := Build(src); err == nil {
		t.Fatal("Build of broken source succeeded")
	}
	if _, err := Build(src); err == nil {
		t.Fatal("Build retry of broken source succeeded")
	}
}

// TestBuildVanishedBinary: if a cached binary disappears after its build
// completed in this process, Build reports it rather than handing back a
// path that no longer resolves.
func TestBuildVanishedBinary(t *testing.T) {
	src := "package main\n\nfunc main() {}\n\n// codegen cache-eviction probe\n"
	dir := cacheDirFor(t, src)
	defer os.RemoveAll(dir)
	bin, err := Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := os.Remove(bin); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(src); err == nil || !strings.Contains(err.Error(), "vanished") {
		t.Fatalf("Build after eviction: %v, want vanished-binary error", err)
	}
}
