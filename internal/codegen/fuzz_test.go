package codegen_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"lockinfer/internal/codegen"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// FuzzCodegen is the well-formedness property as a fuzz target: for any
// program the front end accepts, the emitted Go source must parse and
// type-check. Running the binary is the conformance harness's job; this
// target's value is sweeping the emitter's structural corners (label
// placement, shadowing, unused temps, struct table shapes) far past the
// fixed test set, without paying a compile-execute cycle per input.
func FuzzCodegen(f *testing.F) {
	for _, p := range append(progs.All(), progs.Examples()...) {
		f.Add(p.Source())
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}))
	}
	f.Add("int g; void f() { atomic { g = g + 1; } }")
	f.Add("struct n { int v; n *next; } n* h; void w(int k) { atomic { h->v = k; } }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		ast_, err := lang.Parse(src)
		if err != nil {
			return
		}
		prog, err := ir.Lower(ast_)
		if err != nil {
			return
		}
		if codegen.Unsupported(prog) != nil {
			return
		}
		st := steens.Run(prog)
		eng := infer.New(prog, st, infer.Options{K: 2})
		plan := transform.SectionLocks(eng.AnalyzeAll())
		out, err := codegen.Emit(codegen.Program{
			Name:     "fuzz",
			Prog:     prog,
			Pts:      st,
			Variants: codegen.DefaultVariants(plan),
		})
		if err != nil {
			t.Fatalf("emit failed on accepted program: %v\n--- program ---\n%s", err, src)
		}
		checkWellFormed(t, out, src)
	})
}

// checkWellFormed asserts the emitted source passes go/parser and
// go/types. The type check resolves imports from source (the emitted
// program imports lockinfer/internal/mgl, which has no export data on a
// clean checkout), so every standard-library and in-repo dependency is
// type-checked transitively.
func checkWellFormed(t *testing.T, out, minic string) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "lockgen_main.go", out, parser.AllErrors)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n--- mini-C ---\n%s\n--- emitted ---\n%s", err, minic, out)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("main", fset, []*ast.File{file}, nil); err != nil {
		t.Fatalf("emitted source does not type-check: %v\n--- mini-C ---\n%s\n--- emitted ---\n%s", err, minic, out)
	}
}

// TestEmittedSourceTypeChecks runs the fuzz property once over the whole
// corpus and a progen sample, so `go test` (not just `go test -fuzz`)
// guards well-formedness.
func TestEmittedSourceTypeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer type check is slow")
	}
	srcs := []string{}
	for _, p := range progs.All() {
		srcs = append(srcs, p.Source())
	}
	srcs = append(srcs, progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: 11}))
	for i, src := range srcs {
		ast_, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prog, err := ir.Lower(ast_)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if codegen.Unsupported(prog) != nil {
			continue
		}
		st := steens.Run(prog)
		eng := infer.New(prog, st, infer.Options{K: 2})
		plan := transform.SectionLocks(eng.AnalyzeAll())
		out, err := codegen.Emit(codegen.Program{Name: "wf", Prog: prog, Pts: st, Variants: codegen.DefaultVariants(plan)})
		if err != nil {
			t.Fatalf("case %d: emit: %v", i, err)
		}
		checkWellFormed(t, out, src)
	}
}
