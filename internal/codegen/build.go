package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The build cache. Emitted programs compile into <module>/.lockgen/<hash>/
// — a dot-directory, so `go build ./...` and `go test ./...` never see the
// generated packages, while explicit builds from inside it still resolve
// the lockinfer/internal/mgl import (the directory lives under the module
// root). The hash covers the emitted source, the mgl package sources and
// the toolchain version, so a binary is reused across runs, tests and
// processes until any input changes — this is the cached-build budget that
// keeps the conformance sweep fast.

// cacheDirName is the on-disk build cache, relative to the module root.
const cacheDirName = ".lockgen"

// cacheCap bounds the number of cached build directories; the oldest (by
// modification time) are pruned when a new build would exceed it.
const cacheCap = 192

var (
	buildMu  sync.Mutex
	buildInF = map[string]*sync.Once{}

	// Builds counts actual `go build` invocations (cache misses), for
	// tests asserting cache behavior.
	builds atomic.Int64
)

// Builds reports the number of compiler invocations this process made.
func Builds() int64 { return builds.Load() }

// moduleRoot locates the enclosing module by walking up from the working
// directory to the first go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", fmt.Errorf("codegen: getwd: %w", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("codegen: no go.mod above working directory")
		}
		dir = parent
	}
}

// mglFingerprint hashes the non-test sources of internal/mgl: the emitted
// binary links them in, so a manager change must invalidate cached builds.
func mglFingerprint(root string) (string, error) {
	dir := filepath.Join(root, "internal", "mgl")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("codegen: read %s: %w", dir, err)
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", fmt.Errorf("codegen: read %s: %w", name, err)
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Build compiles emitted source into a cached binary and returns its path.
// Identical source (plus identical mgl and toolchain) returns the cached
// binary without invoking the compiler; concurrent callers of the same
// source share one build.
func Build(src string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	mglFP, err := mglFingerprint(root)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(runtime.Version() + "\x00" + mglFP + "\x00" + src))
	key := hex.EncodeToString(sum[:])[:20]
	dir := filepath.Join(root, cacheDirName, "b"+key)
	bin := filepath.Join(dir, "prog")

	buildMu.Lock()
	once := buildInF[key]
	if once == nil {
		once = &sync.Once{}
		buildInF[key] = once
	}
	buildMu.Unlock()

	var buildErr error
	once.Do(func() {
		if _, err := os.Stat(bin); err == nil {
			return // built by a previous process
		}
		buildErr = compile(root, dir, bin, src)
	})
	if buildErr != nil {
		// Let a later call retry rather than pinning the failure.
		buildMu.Lock()
		delete(buildInF, key)
		buildMu.Unlock()
		return "", buildErr
	}
	if _, err := os.Stat(bin); err != nil {
		return "", fmt.Errorf("codegen: cached binary vanished: %w", err)
	}
	return bin, nil
}

func compile(root, dir, bin, src string) error {
	prune(filepath.Join(root, cacheDirName))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		return fmt.Errorf("codegen: go toolchain not found: %w", err)
	}
	cmd := exec.Command(goTool, "build", "-o", bin, ".")
	cmd.Dir = dir
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("codegen: go build: %v\n%s", err, out)
	}
	builds.Add(1)
	return nil
}

// prune deletes the oldest cache entries when the cache is over capacity.
func prune(cacheDir string) {
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) < cacheCap {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var dirs []aged
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "b") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		dirs = append(dirs, aged{ent.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].mod < dirs[j].mod })
	for i := 0; i <= len(dirs)-cacheCap; i++ {
		os.RemoveAll(filepath.Join(cacheDir, dirs[i].name))
	}
}
