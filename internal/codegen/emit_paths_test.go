package codegen_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"lockinfer/internal/codegen"
	"lockinfer/internal/interp"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/oracle"
)

// finePathSrc has an array, a struct and a spare function, so tests can
// assemble fine-grain lock descriptors over every path and index-expression
// shape the emitter supports.
const finePathSrc = `
struct Node { int val; Node* next; }

int* a;
int g;
Node* head;

void init() {
  a = new int[8];
  g = 1;
  head = new Node;
}

void worker(int i) {
  atomic {
    a[i] = a[i] + 1;
    head->val = head->val + 1;
  }
}

void other(int j) {
  g = j;
}
`

func finePathTarget(t *testing.T) *oracle.Target {
	t.Helper()
	tg, err := oracle.FromSource("finepaths", finePathSrc, 3,
		[]interp.ThreadSpec{{Fn: "worker", Args: []interp.Value{interp.IntV(1)}}},
		&interp.ThreadSpec{Fn: "init"})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// TestEmitFineIndexPaths hand-builds a plan whose fine locks walk every
// path operation (deref, field, array element) and every index-expression
// node (constant, local and global variable, each arithmetic operator, the
// non-arithmetic bail-out, both unaries), and checks the emitted evaluators
// still form a parseable program.
func TestEmitFineIndexPaths(t *testing.T) {
	tg := finePathTarget(t)
	prog := tg.Prog
	sec := prog.Sections[0]
	fn := sec.Fn
	aV, gV, hV := prog.Global("a"), prog.Global("g"), prog.Global("head")
	if aV == nil || gV == nil || hV == nil {
		t.Fatal("missing globals in the lowered program")
	}
	if len(fn.Params) == 0 {
		t.Fatalf("section function %s has no params", fn.Name)
	}
	iV := fn.Params[0]
	valField := prog.InternField("val")

	deref := locks.PathOp{Kind: locks.OpDeref}
	elem := func(e *locks.IExpr, eff locks.Eff) locks.Inferred {
		return locks.FineLock(locks.Path{Base: aV, Ops: []locks.PathOp{deref, {Kind: locks.OpIndex, Index: e}}}, 0, eff)
	}
	set := locks.NewSet(
		elem(locks.IConstExpr(3), locks.RW),
		elem(locks.IVarExpr(iV), locks.RW),
		elem(locks.IVarExpr(gV), locks.RO),
		elem(locks.IBinExpr(lang.BAdd, locks.IVarExpr(iV), locks.IConstExpr(1)), locks.RW),
		elem(locks.IBinExpr(lang.BSub, locks.IVarExpr(iV), locks.IConstExpr(1)), locks.RW),
		elem(locks.IBinExpr(lang.BMul, locks.IVarExpr(iV), locks.IConstExpr(2)), locks.RW),
		elem(locks.IBinExpr(lang.BDiv, locks.IVarExpr(iV), locks.IConstExpr(2)), locks.RW),
		elem(locks.IBinExpr(lang.BMod, locks.IVarExpr(iV), locks.IConstExpr(4)), locks.RW),
		elem(locks.IBinExpr(lang.BLt, locks.IVarExpr(iV), locks.IConstExpr(4)), locks.RW),
		elem(locks.IUnExpr(lang.UNeg, locks.IConstExpr(1)), locks.RW),
		elem(locks.IUnExpr(lang.UNot, locks.IVarExpr(iV)), locks.RW),
		locks.FineLock(locks.Path{Base: hV, Ops: []locks.PathOp{deref, {Kind: locks.OpField, Field: valField}}}, 1, locks.RW),
		locks.FineLock(locks.Path{Base: hV, Ops: []locks.PathOp{deref, {Kind: locks.OpField, Field: -1}}}, 1, locks.RO),
	)

	p := codegen.Program{
		Name: "finepaths", Prog: prog, Pts: tg.Pts,
		Variants: []codegen.Variant{{Name: codegen.VariantInferred, Plan: map[int]locks.Set{sec.ID: set}}},
	}
	src, err := codegen.Emit(p)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "lockgen_main.go", src, parser.AllErrors); err != nil {
		t.Fatalf("emitted source does not parse: %v\n--- emitted ---\n%s", err, src)
	}
	for _, want := range []string{
		"pa_v0_s0_0",           // fine-path helpers were generated
		"&(a[(i + 1)])/rw",     // lockComment renders index arithmetic
		"&(head->val)/rw",      // ... and field paths
		"return nil, 0, false", // bail-outs present (bad index, non-arith op)
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted source is missing %q", want)
		}
	}
}

// TestEmitForeignPathOwners: a descriptor rooted at (or indexing through) a
// local of some other function can never be evaluated at this section's
// entry; Emit must reject both shapes.
func TestEmitForeignPathOwners(t *testing.T) {
	tg := finePathTarget(t)
	prog := tg.Prog
	sec := prog.Sections[0]
	other := prog.Func("other")
	if other == nil || len(other.Params) == 0 {
		t.Fatal("missing helper function in the lowered program")
	}
	foreign := other.Params[0]
	aV := prog.Global("a")

	emit := func(set locks.Set) error {
		_, err := codegen.Emit(codegen.Program{
			Name: "foreign", Prog: prog, Pts: tg.Pts,
			Variants: []codegen.Variant{{Name: codegen.VariantInferred, Plan: map[int]locks.Set{sec.ID: set}}},
		})
		return err
	}

	err := emit(locks.NewSet(locks.FineLock(locks.VarPath(foreign), 0, locks.RW)))
	if err == nil || !strings.Contains(err.Error(), "belongs to") {
		t.Errorf("foreign path base: %v, want ownership error", err)
	}
	err = emit(locks.NewSet(locks.FineLock(locks.Path{
		Base: aV,
		Ops:  []locks.PathOp{{Kind: locks.OpDeref}, {Kind: locks.OpIndex, Index: locks.IVarExpr(foreign)}},
	}, 0, locks.RW)))
	if err == nil || !strings.Contains(err.Error(), "index var") {
		t.Errorf("foreign index var: %v, want ownership error", err)
	}
}

// TestEmitErrors covers the emitter's input validation: missing analyses,
// out-of-order section ids, bad variant tables, and the default plan when
// no variants are supplied.
func TestEmitErrors(t *testing.T) {
	tg := finePathTarget(t)

	if _, err := codegen.Emit(codegen.Program{Name: "x", Prog: tg.Prog}); err == nil ||
		!strings.Contains(err.Error(), "nil program or points-to") {
		t.Errorf("nil points-to: %v, want validation error", err)
	}

	p, _ := fromTarget(t, tg)
	old := p.Prog.Sections[0].ID
	p.Prog.Sections[0].ID = old + 7
	_, err := codegen.Emit(p)
	p.Prog.Sections[0].ID = old
	if err == nil || !strings.Contains(err.Error(), "non-sequential section id") {
		t.Errorf("shuffled section ids: %v, want validation error", err)
	}

	p, _ = fromTarget(t, tg)
	p.Variants = []codegen.Variant{{Name: "x"}, {Name: "x"}}
	if _, err := codegen.Emit(p); err == nil || !strings.Contains(err.Error(), "duplicate or empty variant") {
		t.Errorf("duplicate variant names: %v, want validation error", err)
	}
	p.Variants = []codegen.Variant{{Name: ""}}
	if _, err := codegen.Emit(p); err == nil || !strings.Contains(err.Error(), "duplicate or empty variant") {
		t.Errorf("empty variant name: %v, want validation error", err)
	}

	p, _ = fromTarget(t, tg)
	p.Variants = nil
	src, err := codegen.Emit(p)
	if err != nil {
		t.Fatalf("emit with default variants: %v", err)
	}
	if !strings.Contains(src, "(no locks)") {
		t.Error("default variant should carry the empty plan")
	}
}
