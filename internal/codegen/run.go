package codegen

import (
	"context"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Spec names an entry function and its integer arguments, mirroring
// interp.ThreadSpec for the native binary's -setup/-thread flags.
type Spec struct {
	Fn   string
	Args []int64
}

func (s Spec) flagValue() string {
	if len(s.Args) == 0 {
		return s.Fn
	}
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = strconv.FormatInt(a, 10)
	}
	return s.Fn + ":" + strings.Join(parts, ",")
}

// RunOptions configures one execution of an emitted binary.
type RunOptions struct {
	// Plan selects a baked-in variant; empty means VariantInferred.
	Plan string
	// Mutate enables a runtime plan mutation ("permute" reverses every
	// multi-step acquisition plan); empty runs the plan as compiled.
	Mutate string
	// Unchecked disables the §4.2 coverage checker (benchmark mode).
	Unchecked bool
	// NoWatch disables the lock-order watcher (benchmark mode).
	NoWatch bool
	// NopWork spins this many iterations per guarded access, modeling
	// critical-section work in throughput benchmarks.
	NopWork int
	// Setup, if non-nil, runs on the main goroutine after $init and
	// before the threads start.
	Setup *Spec
	// Threads run concurrently, one goroutine each, in order of thread id.
	Threads []Spec
	// Timeout bounds the process; zero means 30s.
	Timeout time.Duration
}

// RunResult is the parsed output of one native execution.
type RunResult struct {
	// State is the canonical fingerprint, byte-compatible with
	// interp.StateDump of the equivalent interpreted run.
	State string
	// Flags are the runtime errors and violations the binary reported:
	// soundness violations, program errors, deadlocks, watcher findings.
	Flags []string
	// Permuted counts acquisition plans the permute mutation actually
	// changed (plans of length <= 1 are permutation-invariant); only
	// meaningful when RunOptions.Mutate was set.
	Permuted int64
	// Elapsed is the binary's self-reported wall time for the concurrent
	// phase, excluding process startup and state dumping.
	Elapsed time.Duration
}

// Run executes a built binary with the given options and parses its
// state/flag/permuted/elapsed_ns output protocol.
func Run(bin string, opts RunOptions) (*RunResult, error) {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	args := []string{}
	if opts.Plan != "" {
		args = append(args, "-plan", opts.Plan)
	}
	if opts.Mutate != "" {
		args = append(args, "-mutate", opts.Mutate)
	}
	if opts.Unchecked {
		args = append(args, "-unchecked")
	}
	if opts.NoWatch {
		args = append(args, "-nowatch")
	}
	if opts.NopWork > 0 {
		args = append(args, "-nopwork", strconv.Itoa(opts.NopWork))
	}
	if opts.Setup != nil {
		args = append(args, "-setup", opts.Setup.flagValue())
	}
	for _, th := range opts.Threads {
		args = append(args, "-thread", th.flagValue())
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if ctx.Err() == context.DeadlineExceeded {
		return nil, fmt.Errorf("codegen: native run timed out after %s", timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("codegen: native run failed: %v\n%s", err, out)
	}
	return parseOutput(string(out))
}

func parseOutput(out string) (*RunResult, error) {
	res := &RunResult{}
	sawState := false
	for _, ln := range strings.Split(out, "\n") {
		ln = strings.TrimRight(ln, "\r")
		if ln == "" {
			continue
		}
		key, rest, _ := strings.Cut(ln, " ")
		switch key {
		case "state":
			res.State = rest
			sawState = true
		case "flag":
			res.Flags = append(res.Flags, rest)
		case "permuted":
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("codegen: bad permuted line %q", ln)
			}
			res.Permuted = n
		case "elapsed_ns":
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("codegen: bad elapsed_ns line %q", ln)
			}
			res.Elapsed = time.Duration(n)
		default:
			return nil, fmt.Errorf("codegen: unexpected output line %q", ln)
		}
	}
	if !sawState {
		return nil, fmt.Errorf("codegen: native run produced no state line:\n%s", out)
	}
	return res, nil
}

// Native emits, builds and runs a program in one call — the convenience
// path used by cmd/lockgen and the conformance engine.
func Native(p Program, opts RunOptions) (*RunResult, error) {
	bin, err := BuildProgram(p)
	if err != nil {
		return nil, err
	}
	return Run(bin, opts)
}

// BuildProgram emits p and compiles it, returning the cached binary path.
func BuildProgram(p Program) (string, error) {
	src, err := Emit(p)
	if err != nil {
		return "", err
	}
	return Build(src)
}
