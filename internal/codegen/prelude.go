package codegen

// prelude is the static tail of every emitted program: the runtime that
// mirrors internal/interp's semantics — value and object model, the §4.2
// coverage checker with the allocation-epoch exemption, the
// evaluate-acquire-revalidate section entry, the canonical state dump —
// plus the process driver (flag parsing, thread spawning, output protocol).
// It references generated identifiers by well-known names: ctGlobals,
// glIntSlots, gNames, evalVariants, funcs, State.
//
// Output protocol (one line each, in order):
//
//	state <StateDump fingerprint>
//	flag <finding>          (zero or more: violations, runtime errors,
//	                         watcher order violations/cycles/deadlocks)
//	permuted <n>            (only with -mutate permute: effective permutations)
//	elapsed_ns <n>          (wall time of the concurrent phase only)
const prelude = `
// ---- native runtime prelude (static; mirrors internal/interp) ----

// V is a runtime value: null (K=0), integer (K=1), or location (K=2, a
// slot of an object).
type V struct {
	O   *Obj
	I   int64
	Off int32
	K   uint8
}

func iv(i int64) V           { return V{K: 1, I: i} }
func lv(o *Obj, off int32) V { return V{K: 2, O: o, Off: off} }

func bv(b bool) V {
	if b {
		return iv(1)
	}
	return iv(0)
}

func truthy(v V) bool { return v.K == 2 || v.K == 1 && v.I != 0 }

func eqV(a, b V) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case 0:
		return true
	case 1:
		return a.I == b.I
	default:
		return a.O == b.O && a.Off == b.Off
	}
}

func vstr(v V) string {
	switch v.K {
	case 0:
		return "null"
	case 1:
		return strconv.FormatInt(v.I, 10)
	default:
		return fmt.Sprintf("loc(+%d)", v.Off)
	}
}

// SType is a lowered struct layout: slot count, field-id → slot offset,
// and the integer-typed slots (initialized to zero on allocation).
type SType struct {
	name string
	n    int32
	off  map[int32]int32
	ints []int32
}

func (s *SType) offOf(f int32) int32 {
	if o, ok := s.off[f]; ok {
		return o
	}
	return -1
}

// Obj is a block of slots: a heap allocation, the globals block, or a
// function frame (so &local and &global work uniformly). base is a
// program-unique address; slot i has address base+i.
type Obj struct {
	C    []V
	st   *SType
	ct   []int64 // per-slot class table (globals, frames); nil for heap
	cls  int64   // per-object class (heap objects: the site's class)
	base uint64
	// allocT/allocE identify the atomic section (thread, epoch) that
	// allocated this object; the checker exempts accesses from that same
	// section (the paper's Lemma 2 reachability proviso).
	allocT int32
	allocE int64
}

var objBase atomic.Uint64

func newObj(n int) *Obj {
	return &Obj{C: make([]V, n), base: objBase.Add(uint64(n)) - uint64(n)}
}

func newFrame(ct []int64, n int) *Obj {
	o := newObj(n)
	o.ct = ct
	return o
}

func (o *Obj) clsOf(off int32) int64 {
	if o.ct != nil {
		return o.ct[off]
	}
	return o.cls
}

// gl is the globals block (integer slots start at zero, pointers null).
var gl = func() *Obj {
	o := newFrame(ctGlobals, len(ctGlobals))
	for _, i := range glIntSlots {
		o.C[i] = iv(0)
	}
	return o
}()

// held is one acquired lock descriptor, kept for coverage checking.
// Class -1 records a fine path that did not evaluate (covers nothing, but
// makes evaluability changes visible to the revalidation). A shard (s) is a
// synthetic fine leaf that covers its whole class: the static disjointness
// proof the auditor re-derives is what makes that sound.
type held struct {
	a          uint64
	c          int64
	g, f, s, w bool
}

func heldEq(a, b []held) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalFn evaluates one section's lock descriptors against the current
// state; with rq it also files them with the session (to-acquire).
type evalFn func(t *T, fr *Obj, rq bool) []held

// RT is the per-process runtime: the lock manager, the selected plan
// variant's evaluators, and the run configuration.
type RT struct {
	man     *mgl.Manager
	eval    []evalFn
	checked bool
	nop     int

	mu    sync.Mutex
	flags []string

	permuted atomic.Int64
}

func (rt *RT) flag(msg string) {
	rt.mu.Lock()
	rt.flags = append(rt.flags, msg)
	rt.mu.Unlock()
}

// T is one executing thread.
type T struct {
	rt      *RT
	sess    *mgl.Session
	held    []held
	epoch   int64
	id      int32
	checked bool
	nop     int
}

func (rt *RT) newT(id int32) *T {
	return &T{rt: rt, sess: rt.man.NewSession(), id: id, checked: rt.checked, nop: rt.nop}
}

// progErr is a recoverable execution failure (soundness violation or
// runtime error), reported as a flag by the thread driver.
type progErr struct{ msg string }

func (t *T) failf(format string, args ...any) {
	panic(progErr{msg: fmt.Sprintf("thread %d: ", t.id) + fmt.Sprintf(format, args...)})
}

// ck enforces the §4.2 coverage check: inside an atomic section every
// shared access must be covered by a held lock.
func (t *T) ck(o *Obj, off int32, w bool, what string) {
	if t.sess.Nesting() == 0 {
		return
	}
	if o.allocT == t.id && o.allocE == t.epoch {
		return // allocated by this thread inside this section
	}
	cls := o.clsOf(off)
	addr := o.base + uint64(off)
	for _, h := range t.held {
		if w && !h.w {
			continue
		}
		switch {
		case h.g:
			return
		case h.f:
			if h.a == addr {
				return
			}
		default:
			// Coarse locks and shards both cover their whole class.
			if h.c == cls {
				return
			}
		}
	}
	eff := "ro"
	if w {
		eff = "rw"
	}
	panic(progErr{msg: fmt.Sprintf(
		"soundness violation: thread %d accesses %s for %s with no covering lock", t.id, what, eff)})
}

func (t *T) rd(o *Obj, off int32, what string) V {
	if t.checked {
		t.ck(o, off, false, what)
	}
	return o.C[off]
}

func (t *T) wr(o *Obj, off int32, v V, what string) {
	if t.checked {
		t.ck(o, off, true, what)
	}
	o.C[off] = v
}

func (t *T) ld(a V, what string) V {
	if a.K != 2 {
		t.failf("dereference of %s", vstr(a))
	}
	if t.checked {
		t.ck(a.O, a.Off, false, what)
	}
	return a.O.C[a.Off]
}

func (t *T) stv(a V, v V, what string) {
	if a.K != 2 {
		t.failf("store through %s", vstr(a))
	}
	if t.checked {
		t.ck(a.O, a.Off, true, what)
	}
	a.O.C[a.Off] = v
}

func (t *T) n(v V) int64 {
	if v.K != 1 {
		t.failf("arithmetic on %s", vstr(v))
	}
	return v.I
}

func (t *T) neg(v V) int64 {
	if v.K != 1 {
		t.failf("negation of %s", vstr(v))
	}
	return -v.I
}

func (t *T) div(l, r V) V {
	a, b := t.n(l), t.n(r)
	if b == 0 {
		t.failf("division by zero")
	}
	return iv(a / b)
}

func (t *T) mod(l, r V) V {
	a, b := t.n(l), t.n(r)
	if b == 0 {
		t.failf("modulo by zero")
	}
	m := a % b
	if m < 0 {
		m += b
	}
	return iv(m)
}

func (t *T) fieldLoc(b V, f int32, name string) V {
	if b.K != 2 {
		t.failf("field access on %s", vstr(b))
	}
	if b.O.st == nil {
		t.failf("field access on non-struct object")
	}
	fo := b.O.st.offOf(f)
	if fo < 0 {
		t.failf("object has no field %s", name)
	}
	return lv(b.O, b.Off+fo)
}

func (t *T) indexLoc(b, ix V) V {
	if b.K != 2 {
		t.failf("index of %s", vstr(b))
	}
	if ix.K != 1 {
		t.failf("non-int index %s", vstr(ix))
	}
	j := int(b.Off) + int(ix.I)
	if j < 0 || j >= len(b.O.C) {
		t.failf("index %d out of bounds [0,%d)", ix.I, len(b.O.C))
	}
	return lv(b.O, int32(j))
}

// mark records the allocating section for the checker exemption.
func (t *T) mark(o *Obj) {
	if t.sess.Nesting() > 0 {
		o.allocT = t.id
		o.allocE = t.epoch
	}
}

// alloc allocates a struct object (integer fields zeroed).
func (t *T) alloc(site int, cls int64, st *SType) V {
	o := newObj(int(st.n))
	o.st = st
	o.cls = cls
	for _, i := range st.ints {
		o.C[i] = iv(0)
	}
	t.mark(o)
	return lv(o, 0)
}

// allocN allocates n scalar cells (ints zeroed when ints; else null).
func (t *T) allocN(site int, cls int64, n V, ints bool) V {
	if n.K != 1 || n.I < 0 {
		t.failf("bad array length %s", vstr(n))
	}
	o := newObj(int(n.I))
	o.cls = cls
	if ints {
		for i := range o.C {
			o.C[i] = iv(0)
		}
	}
	t.mark(o)
	return lv(o, 0)
}

// enter implements the evaluate-acquire-revalidate entry protocol of the
// operational semantics: evaluate the section's descriptors, acquire in
// canonical order, re-evaluate under the locks, retry on any difference.
// Nested sections just bump the session (the outer locks cover them).
func (t *T) enter(fr *Obj, sec int) {
	if t.sess.Nesting() > 0 {
		t.sess.AcquireAll()
		return
	}
	t.epoch++
	ev := t.rt.eval[sec]
	for {
		hs := ev(t, fr, true)
		t.sess.AcquireAll()
		if heldEq(hs, ev(t, fr, false)) {
			t.held = hs
			return
		}
		t.sess.ReleaseAll()
	}
}

func (t *T) exit() {
	t.sess.ReleaseAll()
	if t.sess.Nesting() == 0 {
		t.held = nil
	}
}

func spinN(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = x*1103515245 + 12345
	}
	_ = x
}

// runThread runs one entry function to completion, converting panics
// (violations, runtime errors, the watcher's deadlock aborts) into flags
// and draining the session so no lock is stranded.
func runThread(t *T, fn string, args []V) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case progErr:
				t.rt.flag(e.msg)
			case error:
				t.rt.flag(e.Error())
			default:
				t.rt.flag(fmt.Sprintf("thread %d panic: %v", t.id, r))
			}
		}
		for t.sess.Nesting() > 0 {
			t.sess.ReleaseAll()
		}
	}()
	f, ok := funcs[fn]
	if !ok {
		t.rt.flag(fmt.Sprintf("no function %q", fn))
		return
	}
	f(t, args)
}

// dump renders the canonical fingerprint, byte-identical to the
// interpreter's StateDump: globals in declaration order, then reachable
// objects in first-visit order with pointers as visit ids.
func (s State) dump() string {
	var b strings.Builder
	ids := map[*Obj]int{}
	var queue []*Obj
	render := func(v V) string {
		switch v.K {
		case 0:
			return "_"
		case 1:
			return strconv.FormatInt(v.I, 10)
		default:
			id, ok := ids[v.O]
			if !ok {
				id = len(ids) + 1
				ids[v.O] = id
				queue = append(queue, v.O)
			}
			if v.Off != 0 {
				return fmt.Sprintf("o%d+%d", id, v.Off)
			}
			return fmt.Sprintf("o%d", id)
		}
	}
	for i, name := range gNames {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", name, render(s.o.C[i]))
	}
	for qi := 0; qi < len(queue); qi++ {
		o := queue[qi]
		fmt.Fprintf(&b, " | o%d:[", ids[o])
		for off := range o.C {
			if off > 0 {
				b.WriteByte(',')
			}
			b.WriteString(render(o.C[off]))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ---- process driver ----

type threadSpec struct {
	fn   string
	args []V
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "error:", msg)
	fmt.Fprintln(os.Stderr, "usage: prog [-plan name] [-mutate permute] [-unchecked] [-nowatch]")
	fmt.Fprintln(os.Stderr, "            [-nopwork n] [-setup fn:a,b] [-thread fn:a,b]...")
	os.Exit(2)
}

// parseSpec parses "fn" or "fn:1,2,3".
func parseSpec(s string) (string, []V) {
	fn, rest, ok := strings.Cut(s, ":")
	if fn == "" {
		usage("empty function name in spec " + strconv.Quote(s))
	}
	if !ok || rest == "" {
		return fn, nil
	}
	var args []V
	for _, a := range strings.Split(rest, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
		if err != nil {
			usage("bad argument in spec " + strconv.Quote(s))
		}
		args = append(args, iv(n))
	}
	return fn, args
}

func oneLine(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "\n", "; "), "\r", "")
}

func main() {
	var (
		plan    = "inferred"
		mutate  = ""
		checked = true
		watch   = true
		nop     = 0
		setup   *threadSpec
		threads []threadSpec
	)
	args := os.Args[1:]
	next := func(i *int, flag string) string {
		*i++
		if *i >= len(args) {
			usage("missing value for " + flag)
		}
		return args[*i]
	}
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-plan":
			plan = next(&i, a)
		case "-mutate":
			mutate = next(&i, a)
		case "-unchecked":
			checked = false
		case "-nowatch":
			watch = false
		case "-nopwork":
			n, err := strconv.Atoi(next(&i, a))
			if err != nil || n < 0 {
				usage("bad -nopwork value")
			}
			nop = n
		case "-setup":
			fn, av := parseSpec(next(&i, a))
			setup = &threadSpec{fn: fn, args: av}
		case "-thread":
			fn, av := parseSpec(next(&i, a))
			threads = append(threads, threadSpec{fn: fn, args: av})
		default:
			usage("unknown flag " + strconv.Quote(a))
		}
	}
	ev, ok := evalVariants[plan]
	if !ok {
		usage("unknown plan variant " + strconv.Quote(plan))
	}
	man := mgl.NewManager()
	var w *mgl.Watcher
	if watch {
		w = mgl.NewWatcher()
		man.SetWatcher(w)
	}
	rt := &RT{man: man, eval: ev, checked: checked, nop: nop}
	switch mutate {
	case "":
	case "permute":
		// Reverse every acquisition plan (counting only the effective,
		// multi-step reversals) — the negative-conformance fault.
		man.PermutePlan = func(_ int64, steps []mgl.PlanStep) []mgl.PlanStep {
			if len(steps) > 1 {
				rt.permuted.Add(1)
			}
			out := make([]mgl.PlanStep, len(steps))
			for i, st := range steps {
				out[len(steps)-1-i] = st
			}
			return out
		}
	default:
		usage("unknown mutation " + strconv.Quote(mutate))
	}
	t0 := rt.newT(0)
	runThread(t0, "$init", nil)
	if setup != nil {
		runThread(t0, setup.fn, setup.args)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i, sp := range threads {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			runThread(rt.newT(int32(i+1)), sp.fn, sp.args)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if w != nil {
		for _, v := range w.OrderViolations() {
			rt.flag(v.String())
		}
		for _, c := range w.LockOrderCycles() {
			rt.flag(c.String())
		}
		for _, d := range w.Deadlocks() {
			d := d
			rt.flag(d.Error())
		}
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "state %s\n", State{o: gl}.dump())
	for _, f := range rt.flags {
		fmt.Fprintf(out, "flag %s\n", oneLine(f))
	}
	if mutate != "" {
		fmt.Fprintf(out, "permuted %d\n", rt.permuted.Load())
	}
	fmt.Fprintf(out, "elapsed_ns %d\n", elapsed.Nanoseconds())
	out.Flush()
}
`
