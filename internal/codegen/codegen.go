// Package codegen is the native backend: it emits a real Go program from
// the lowered IR plus the inferred lock plan, compiles it with the host
// toolchain, and runs the binary as a fifth conformance engine.
//
// The emitted program is one self-contained main package that imports only
// the standard library and lockinfer/internal/mgl — the same sharded
// multi-granularity lock manager the interpreter uses. Every atomic section
// compiles to the paper's §4.1 form: evaluate the section's lock
// descriptors, session.ToAcquire each, session.AcquireAll(), re-validate,
// run the body, session.ReleaseAll(). Thread specs become real goroutines.
// Shared state lives in a generated typed State struct backed by the
// canonical globals object, and the binary prints the interpreter's exact
// StateDump fingerprint, so the conformance harness can compare a native
// run against the serialization oracle byte for byte.
//
// Translation is deliberately semantics-preserving down to failure modes:
// the emitted runtime mirrors internal/interp cell for cell (value model,
// §4.2 coverage checker, allocation-epoch exemption, null/bounds/zero
// errors, the evaluate-acquire-revalidate retry loop), which is what makes
// "native run conforms" a meaningful statement about the backend rather
// than about a looser re-implementation.
package codegen

import (
	"fmt"
	"sort"

	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// Variant is one named lock plan baked into the emitted binary. Emitting
// the mutant plans alongside the inferred one (selected at run time with
// -plan) means one compiled binary serves the positive conformance run and
// every negative-conformance rerun.
type Variant struct {
	Name string
	Plan map[int]locks.Set
}

// Canonical variant names.
const (
	VariantInferred = "inferred"
	VariantDropAll  = "drop-all"
)

// DefaultVariants pairs the inferred plan with its drop-all-locks mutant
// (transform.DropLock with the match-everything name).
func DefaultVariants(plan map[int]locks.Set) []Variant {
	return []Variant{
		{Name: VariantInferred, Plan: plan},
		{Name: VariantDropAll, Plan: transform.DropLock(plan, "")},
	}
}

// Program is the emitter input: a lowered program, its points-to analysis
// (classes are baked into the generated tables), and the plan variants.
type Program struct {
	// Name labels the program in the generated header ("counter",
	// "progen/seed=7/k=2", ...).
	Name string
	Prog *ir.Program
	Pts  *steens.Analysis
	// Variants are the plans to bake in; empty means the set of sections
	// with no locks at all (only meaningful for lock-free programs).
	Variants []Variant
}

// Unsupported reports why a program is outside the backend's IR subset,
// nil when it can be emitted. The only exclusion is external functions:
// their host implementations live in the driving Go process and cannot be
// carried into a standalone binary. The error names the extern and, when
// something in the program calls it, the first call site.
func Unsupported(prog *ir.Program) error {
	for _, f := range prog.Funcs {
		if !f.External {
			continue
		}
		for _, caller := range prog.Funcs {
			if caller.External {
				continue
			}
			for _, s := range caller.Stmts {
				if s.Op == ir.OpCall && s.Callee == f.Name {
					return fmt.Errorf("codegen: external function %q has no native implementation (called from %s at line %d)",
						f.Name, caller.Name, s.Pos.Line)
				}
			}
		}
		return fmt.Errorf("codegen: external function %q has no native implementation", f.Name)
	}
	return nil
}

// Emit renders p as one Go source file (package main). The output is
// deterministic: the same IR, points-to partition and plans yield
// byte-identical source.
func Emit(p Program) (string, error) {
	if p.Prog == nil || p.Pts == nil {
		return "", fmt.Errorf("codegen: nil program or points-to analysis")
	}
	if err := Unsupported(p.Prog); err != nil {
		return "", err
	}
	for i, sec := range p.Prog.Sections {
		if sec.ID != i {
			return "", fmt.Errorf("codegen: non-sequential section id %d at index %d", sec.ID, i)
		}
	}
	if len(p.Variants) == 0 {
		p.Variants = []Variant{{Name: VariantInferred, Plan: map[int]locks.Set{}}}
	}
	seen := map[string]bool{}
	for _, v := range p.Variants {
		if v.Name == "" || seen[v.Name] {
			return "", fmt.Errorf("codegen: duplicate or empty variant name %q", v.Name)
		}
		seen[v.Name] = true
	}
	e := &emitter{p: p}
	return e.emit()
}

// sortedStructs returns the program's struct layouts in name order.
func sortedStructs(prog *ir.Program) []*ir.StructInfo {
	names := make([]string, 0, len(prog.Structs))
	for name := range prog.Structs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*ir.StructInfo, len(names))
	for i, name := range names {
		out[i] = prog.Structs[name]
	}
	return out
}
