package refine

import (
	"strings"
	"testing"

	"lockinfer/internal/audit"
	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// compile runs the frontend+inference pipeline at k and returns everything
// the refiner needs.
func compile(t *testing.T, src string, k int, specs map[string]steens.ExternSpec) (*ir.Program, *steens.Analysis, map[int]locks.Set) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	st := steens.RunWithSpecs(prog, specs)
	eng := infer.New(prog, st, infer.Options{K: k, Specs: specs})
	return prog, st, transform.SectionLocks(eng.AnalyzeAll())
}

// accountsSrc infers fine path locks at k=3: the demotion target.
const accountsSrc = `
struct account { int balance; }
account* a1;
account* a2;
void init() {
  a1 = new account;
  a2 = new account;
}
void transfer(int amount) {
  atomic {
    if (a1->balance >= amount) {
      a1->balance = a1->balance - amount;
      a2->balance = a2->balance + amount;
    }
  }
}
void total() {
  int t;
  atomic {
    t = a1->balance + a2->balance;
  }
}
`

// countersSrc: pick() unifies the two counters in Σ≡ (one coarse lock for
// both) while the inclusion-based analysis keeps the two sections'
// footprints disjoint — the split target.
const countersSrc = `
struct counter { int n; }
counter* c1;
counter* c2;
void init() {
  c1 = new counter;
  c2 = new counter;
}
counter* pick(int which) {
  if (which) { return c1; }
  return c2;
}
void bump1() {
  atomic { c1->n = c1->n + 1; }
}
void bump2() {
  atomic { c2->n = c2->n + 1; }
}
`

// fineClasses returns the classes with fine path locks in the plan.
func fineClasses(plan map[int]locks.Set) []steens.NodeID {
	var out []steens.NodeID
	seen := map[steens.NodeID]bool{}
	for _, set := range plan {
		for _, l := range set.Sorted() {
			if l.Fine && !seen[l.Class] {
				seen[l.Class] = true
				out = append(out, l.Class)
			}
		}
	}
	return out
}

// coldProfile marks every fine leaf and class of the plan observed and
// uncontended.
func coldProfile(plan map[int]locks.Set) *locks.Profile {
	p := locks.NewProfile("test", "mgl")
	for _, set := range plan {
		for _, l := range set.Sorted() {
			switch {
			case l.IsGlobal():
				p.Lock(locks.RootKey()).Acquires += 10
			case l.Fine:
				p.Lock(locks.FineKey(int64(l.Class), 1)).Acquires += 10
			default:
				p.Lock(locks.ClassKey(int64(l.Class))).Acquires += 10
			}
		}
	}
	return p
}

func planAcquires(plan map[int]locks.Set) int {
	total := 0
	for _, set := range plan {
		total += len(transform.StaticPlan(set))
	}
	return total
}

func TestDemoteColdFineLocks(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	if len(fineClasses(plan)) == 0 {
		t.Fatalf("precondition: plan has no fine locks: %v", plan)
	}
	prof := coldProfile(plan)
	res := Refine(prog, st, nil, plan, prof, Options{})
	if !res.Changed() {
		t.Fatalf("cold profile refined nothing; plan %v", plan)
	}
	for _, d := range res.Decisions {
		if d.Kind != "demote" {
			t.Errorf("unexpected decision %s", d)
		}
	}
	if got := fineClasses(res.Plan); len(got) != 0 {
		t.Errorf("fine locks survive demotion: %v", got)
	}
	before, after := planAcquires(plan), planAcquires(res.Plan)
	if after >= before {
		t.Errorf("demotion did not cut static acquires: %d -> %d", before, after)
	}
	// Sound by construction: the refined plan passes the independent audit.
	if err := audit.Run(prog, st, nil, res.Plan, audit.Options{}).Err(); err != nil {
		t.Errorf("refined plan fails audit: %v", err)
	}
	// And Verify accepts the honest refinement.
	if err := Verify(prog, st, nil, plan, res.Plan, prof, Options{}); err != nil {
		t.Errorf("Verify rejects honest refinement: %v", err)
	}
}

func TestDemoteRespectsContention(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	prof := coldProfile(plan)
	// Any wait on the class's fine leaves vetoes demotion.
	for _, c := range fineClasses(plan) {
		prof.Lock(locks.FineKey(int64(c), 1)).Waits = 5
	}
	res := Refine(prog, st, nil, plan, prof, Options{})
	if res.Changed() {
		t.Errorf("contended fine locks were demoted: %v", res.Lines())
	}
}

func TestUnobservedClassLeftAlone(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	res := Refine(prog, st, nil, plan, locks.NewProfile("t", "mgl"), Options{})
	if res.Changed() {
		t.Errorf("empty profile refined the plan: %v", res.Lines())
	}
	if len(res.Lines()) != 1 || res.Lines()[0] != "no change" {
		t.Errorf("no-op Lines = %v", res.Lines())
	}
	res = Refine(prog, st, nil, plan, nil, Options{})
	if res.Changed() {
		t.Errorf("nil profile refined the plan")
	}
}

func splitSetup(t *testing.T) (*ir.Program, *steens.Analysis, map[int]locks.Set, steens.NodeID) {
	t.Helper()
	prog, st, plan := compile(t, countersSrc, 0, nil)
	// Precondition: the two bump sections hold the same RW coarse lock.
	held := map[steens.NodeID]map[int]bool{}
	for id, set := range plan {
		for _, l := range set.Sorted() {
			if !l.Fine && !l.IsGlobal() && l.Eff == locks.RW {
				rep := st.Rep(l.Class)
				if held[rep] == nil {
					held[rep] = map[int]bool{}
				}
				held[rep][id] = true
			}
		}
	}
	for class, secs := range held {
		if len(secs) >= 2 {
			return prog, st, plan, class
		}
	}
	t.Fatalf("precondition: sections do not share a coarse class; plan %v", plan)
	return nil, nil, nil, -1
}

func hotProfile(class steens.NodeID) *locks.Profile {
	p := locks.NewProfile("test", "mgl")
	lp := p.Lock(locks.ClassKey(int64(class)))
	lp.Acquires = 100
	lp.Waits = 40
	return p
}

func TestSplitHotCoarseLock(t *testing.T) {
	prog, st, plan, class := splitSetup(t)
	res := Refine(prog, st, nil, plan, hotProfile(class), Options{})
	if !res.Changed() {
		t.Fatalf("hot disjoint coarse lock was not split; plan %v", plan)
	}
	var split *Decision
	for i := range res.Decisions {
		if res.Decisions[i].Kind == "split" {
			split = &res.Decisions[i]
		}
	}
	if split == nil {
		t.Fatalf("no split decision: %v", res.Lines())
	}
	shards := map[int]bool{}
	for _, s := range split.Shards {
		shards[s] = true
	}
	if len(shards) < 2 {
		t.Errorf("split produced %d shard groups, want >= 2: %s", len(shards), split)
	}
	// The refined plan's shards survive the auditor's independent re-proof.
	rep := audit.Run(prog, st, nil, res.Plan, audit.Options{})
	if err := rep.Err(); err != nil {
		t.Errorf("refined plan fails audit: %v", err)
	}
	if err := Verify(prog, st, nil, plan, res.Plan, hotProfile(class), Options{}); err != nil {
		t.Errorf("Verify rejects honest split: %v", err)
	}
}

func TestColdCoarseLockNotSplit(t *testing.T) {
	prog, st, plan, class := splitSetup(t)
	p := locks.NewProfile("test", "mgl")
	p.Lock(locks.ClassKey(int64(class))).Acquires = 100 // zero waits
	res := Refine(prog, st, nil, plan, p, Options{})
	for _, d := range res.Decisions {
		if d.Kind == "split" {
			t.Errorf("cold coarse lock was split: %s", d)
		}
	}
}

// TestSplitRefusedWithoutProof: when the two sections' footprints overlap
// (both bump a shared counter), heat alone must not split the class.
func TestSplitRefusedWithoutProof(t *testing.T) {
	const overlapSrc = `
struct counter { int n; }
counter* c1;
counter* c2;
void init() {
  c1 = new counter;
  c2 = new counter;
}
counter* pick(int which) {
  if (which) { return c1; }
  return c2;
}
void bumpBoth() {
  atomic { c1->n = c1->n + 1; c2->n = c2->n + 1; }
}
void bump2() {
  atomic { c2->n = c2->n + 1; }
}
`
	prog, st, plan := compile(t, overlapSrc, 0, nil)
	var class steens.NodeID = -1
	for _, set := range plan {
		for _, l := range set.Sorted() {
			if !l.Fine && !l.IsGlobal() {
				class = st.Rep(l.Class)
			}
		}
	}
	if class < 0 {
		t.Fatalf("precondition: no coarse lock in plan %v", plan)
	}
	res := Refine(prog, st, nil, plan, hotProfile(class), Options{})
	for _, d := range res.Decisions {
		if d.Kind == "split" && d.Class == class {
			// Both sections touch c2's cell: they must share a shard group,
			// so a split of this class can never separate them.
			groups := map[int]bool{}
			for _, s := range d.Shards {
				groups[s] = true
			}
			if len(groups) > 1 {
				t.Errorf("overlapping sections split apart: %s", d)
			}
		}
	}
}

func TestVerifyFlagsDemoteHotMutant(t *testing.T) {
	prog, st, plan := compile(t, accountsSrc, 3, nil)
	prof := coldProfile(plan)
	mut, hot, ok := MutantDemoteHot(plan, prof)
	if !ok {
		t.Fatalf("mutant not applicable to a fine-locked plan")
	}
	if err := Verify(prog, st, nil, plan, mut, hot, Options{}); err == nil {
		t.Errorf("Verify accepted a demoted hot lock")
	}
}

func TestAuditFlagsSplitNoProofMutant(t *testing.T) {
	prog, st, plan := compile(t, countersSrc, 0, nil)
	mut, ok := MutantSplitNoProof(prog, st, nil, plan, nil)
	if !ok {
		t.Fatalf("mutant not applicable to a coarse-shared plan")
	}
	rep := audit.Run(prog, st, nil, mut, audit.Options{})
	if len(rep.ShardViolations) == 0 {
		t.Errorf("audit accepted a proof-less split")
	}
	if rep.Err() == nil {
		t.Errorf("audit report reads sound for a proof-less split")
	}
}

// TestDeterminism: the decision log and the refined plan are byte-identical
// across repeated runs (the pipeline caches refinement on plan+profile
// hashes, and goldens diff the rendered log).
func TestDeterminism(t *testing.T) {
	progA, stA, planA := compile(t, accountsSrc, 3, nil)
	prof := coldProfile(planA)
	base := render(Refine(progA, stA, nil, planA, prof, Options{}))
	for i := 0; i < 5; i++ {
		prog, st, plan := compile(t, accountsSrc, 3, nil)
		got := render(Refine(prog, st, nil, plan, coldProfile(plan), Options{}))
		if got != base {
			t.Fatalf("refinement not deterministic:\n--- run 0\n%s\n--- run %d\n%s", base, i+1, got)
		}
	}
}

func render(res *Result) string {
	var b strings.Builder
	for _, line := range res.Lines() {
		b.WriteString(line)
		b.WriteString("\n")
	}
	for _, id := range sortedSections(res.Plan) {
		b.WriteString(joinLocks(res.Plan[id]))
		b.WriteString("\n")
	}
	return b.String()
}
