// Package refine is the profile-guided lock-granularity refinement pass:
// the runtime→inference feedback loop closed. It consumes a runtime lock
// profile (locks.Profile — per-lock acquire/wait counters plus per-section
// contention, emitted by any of the execution engines) and rewrites the
// inferred plan in two sound directions:
//
//   - Demote: fine-grain (Σk) locks of a class the profile shows observed
//     but uncontended are replaced by their Σ≡ ancestor, the class's coarse
//     lock. A fine acquisition costs three tree nodes (root IX, class IX,
//     leaf X) where the coarse costs two (root IX, class X); on cold
//     classes the extra granularity buys no concurrency, so demotion cuts
//     the acquire count with no contention price. Demotion is sound by
//     construction: the coarse lock strictly dominates every lock it
//     replaces (locks.Inferred.Less), so everything the section's original
//     plan covered remains covered.
//
//   - Split: a coarse lock the profile shows hot is split into shards
//     (locks.ShardLock) — synthetic fine leaves under the class node —
//     when a static proof exists that the sections contending for it have
//     pairwise-disjoint footprints within the class. Sections in different
//     shards then hold class-IX plus distinct leaves and run concurrently;
//     sections whose footprints may overlap share a shard and stay
//     mutually exclusive. The proof obligations (every touching section
//     holds the coarse lock or ⊤, no path locks on the class, pairwise
//     Andersen-disjoint resolvable footprints) are re-derived from the
//     audit package's independent footprint analysis, and the auditor
//     re-checks them on the refined plan (audit's shard re-proof), so a
//     split is never taken on the refiner's say-so alone.
//
// The pass is deterministic: classes are visited in sorted order, sections
// in sorted order, and the output plan and decision log depend only on the
// (plan, profile, options) triple — never on map iteration or parallelism.
package refine

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/andersen"
	"lockinfer/internal/audit"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// Options tunes the refinement policy. The zero value means the defaults.
type Options struct {
	// MinAcquires is the observation floor: the profile must show at least
	// this many acquires on a class's locks before the pass will act on it
	// (default 1 — any observation counts).
	MinAcquires int64
	// SplitWaitRatio is the heat threshold for splitting: a coarse lock is
	// hot when waits ≥ ratio × acquires (default 0.05).
	SplitWaitRatio float64
	// Specs are the extern specifications for the footprint analysis —
	// the same ones the plan was inferred and audited under.
	Specs map[string]steens.ExternSpec
}

// Default thresholds for zero Options fields.
const (
	DefaultMinAcquires    = 1
	DefaultSplitWaitRatio = 0.05
)

func (o Options) withDefaults() Options {
	if o.MinAcquires == 0 {
		o.MinAcquires = DefaultMinAcquires
	}
	if o.SplitWaitRatio == 0 {
		o.SplitWaitRatio = DefaultSplitWaitRatio
	}
	return o
}

// Decision is the provenance record of one refinement: which class was
// rewritten, in which sections, and why the profile and the static side
// conditions justified it.
type Decision struct {
	// Kind is "demote" or "split".
	Kind string `json:"kind"`
	// Class is the rewritten Σ≡ class.
	Class steens.NodeID `json:"class"`
	// Sections lists the affected section ids, sorted.
	Sections []int `json:"sections"`
	// Shards maps section id → assigned shard (split only).
	Shards map[int]int `json:"shards,omitempty"`
	// Reason cites the profile evidence and, for splits, the proof shape.
	Reason string `json:"reason"`
}

func (d Decision) String() string {
	if d.Kind == "split" {
		parts := make([]string, 0, len(d.Sections))
		for _, s := range d.Sections {
			parts = append(parts, fmt.Sprintf("%d→s%d", s, d.Shards[s]))
		}
		return fmt.Sprintf("split pts#%d [%s]: %s", d.Class, strings.Join(parts, " "), d.Reason)
	}
	return fmt.Sprintf("demote pts#%d sections %v: %s", d.Class, d.Sections, d.Reason)
}

// Result is a refined plan plus its decision log.
type Result struct {
	// Plan is the refined per-section lock plan. Sections the pass did not
	// touch share their locks.Set with the input plan.
	Plan map[int]locks.Set
	// Decisions are the rewrites taken, in deterministic order (demotions
	// by class, then splits by class).
	Decisions []Decision
}

// Changed reports whether the pass rewrote anything.
func (r *Result) Changed() bool { return len(r.Decisions) > 0 }

// Lines renders the decision log one decision per line (the golden-test
// and -trace format). A no-op refinement renders as a single "no change".
func (r *Result) Lines() []string {
	if !r.Changed() {
		return []string{"no change"}
	}
	out := make([]string, len(r.Decisions))
	for i, d := range r.Decisions {
		out[i] = d.String()
	}
	return out
}

// Refine applies the profile-guided rewrite to a plan. st must be the
// analysis the plan's classes came from; and may be nil (a fresh Andersen
// analysis is computed with opts.Specs). A nil or empty profile returns
// the plan unchanged: no evidence, no rewrite.
func Refine(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, plan map[int]locks.Set, prof *locks.Profile, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{Plan: plan}
	if prof.Empty() {
		return res
	}
	out := make(map[int]locks.Set, len(plan))
	for id, set := range plan {
		out[id] = set
	}
	res.Plan = out

	demote(prog, out, prof, opts, res)
	split(prog, st, and, out, prof, opts, res)
	return res
}

// classUse indexes one class's appearances across the plan.
type classUse struct {
	fineSecs   []int // sections holding path locks of the class
	coarseSecs []int // sections holding the class's coarse lock
	shardSecs  []int // sections already holding shards of the class
}

// indexPlan groups plan locks by class, visiting sections in sorted order
// so every slice comes out sorted.
func indexPlan(out map[int]locks.Set) (map[steens.NodeID]*classUse, []steens.NodeID) {
	uses := map[steens.NodeID]*classUse{}
	use := func(c steens.NodeID) *classUse {
		u := uses[c]
		if u == nil {
			u = &classUse{}
			uses[c] = u
		}
		return u
	}
	for _, id := range sortedSections(out) {
		seenFine := map[steens.NodeID]bool{}
		for _, l := range out[id].Sorted() {
			switch {
			case l.IsGlobal():
			case l.Fine:
				if !seenFine[l.Class] {
					seenFine[l.Class] = true
					u := use(l.Class)
					u.fineSecs = append(u.fineSecs, id)
				}
			case l.IsShard():
				u := use(l.Class)
				u.shardSecs = append(u.shardSecs, id)
			default:
				u := use(l.Class)
				u.coarseSecs = append(u.coarseSecs, id)
			}
		}
	}
	classes := make([]steens.NodeID, 0, len(uses))
	for c := range uses {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	return uses, classes
}

func sortedSections(plan map[int]locks.Set) []int {
	ids := make([]int, 0, len(plan))
	for id := range plan {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// demote replaces the fine locks of observed-but-uncontended classes with
// their coarse ancestor.
func demote(prog *ir.Program, out map[int]locks.Set, prof *locks.Profile, opts Options, res *Result) {
	uses, classes := indexPlan(out)
	for _, c := range classes {
		u := uses[c]
		if len(u.fineSecs) == 0 {
			continue
		}
		coarse, fine := prof.ClassStats(int64(c))
		if fine.Acquires < opts.MinAcquires {
			continue // unobserved: the profile has no opinion
		}
		if fine.Waits != 0 || coarse.Waits != 0 {
			continue // contended: the granularity is earning its keep
		}
		for _, id := range u.fineSecs {
			ns := out[id].Clone()
			eff := locks.RO
			for _, l := range out[id].Sorted() {
				if l.Fine && l.Class == c {
					ns.Remove(l)
					if l.Eff == locks.RW {
						eff = locks.RW
					}
				}
			}
			ns.Add(locks.CoarseLock(c, eff))
			out[id] = ns.Minimize()
		}
		res.Decisions = append(res.Decisions, Decision{
			Kind: "demote", Class: c, Sections: u.fineSecs,
			Reason: fmt.Sprintf("%d fine acquires, 0 waits", fine.Acquires),
		})
	}
}

// split shards hot coarse locks whose contenders have provably disjoint
// footprints within the class.
func split(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, out map[int]locks.Set, prof *locks.Profile, opts Options, res *Result) {
	uses, classes := indexPlan(out)
	var fp *audit.Footprinter // built lazily: only hot classes pay for it
	secByID := map[int]*ir.Section{}
	for _, sec := range prog.Sections {
		secByID[sec.ID] = sec
	}
	for _, c := range classes {
		u := uses[c]
		if len(u.coarseSecs) < 2 || len(u.fineSecs) > 0 || len(u.shardSecs) > 0 {
			continue // nothing to split, a path lock in the way, or already split
		}
		coarse, _ := prof.ClassStats(int64(c))
		if coarse.Acquires < opts.MinAcquires || coarse.Waits == 0 {
			continue
		}
		if float64(coarse.Waits) < opts.SplitWaitRatio*float64(coarse.Acquires) {
			continue // warm, not hot
		}
		if fp == nil {
			fp = audit.NewFootprinter(prog, st, and, opts.Specs)
		}
		// Side condition: every section whose non-exempt footprint touches
		// the class must hold its coarse lock or ⊤ (⊤ holders exclude every
		// shard via the root, so they need no shard of their own).
		holder := map[int]bool{}
		for _, id := range u.coarseSecs {
			holder[id] = true
		}
		sound := true
		for _, sec := range prog.Sections {
			if holder[sec.ID] || !fp.Touches(sec, c) {
				continue
			}
			if !out[sec.ID].Has(locks.GlobalLock()) {
				sound = false // a toucher the shards would not exclude
				break
			}
		}
		if !sound {
			continue
		}
		// The disjointness proof: per-section class-restricted Andersen
		// location sets, fully resolvable, grouped by overlap (union-find).
		locsets := make([][]int, len(u.coarseSecs))
		proved := true
		for i, id := range u.coarseSecs {
			locs, ok := fp.ClassLocs(secByID[id], c)
			if !ok {
				proved = false
				break
			}
			locsets[i] = locs
		}
		if !proved {
			continue
		}
		parent := make([]int, len(u.coarseSecs))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for i := 0; i < len(locsets); i++ {
			for j := i + 1; j < len(locsets); j++ {
				if audit.LocsOverlap(locsets[i], locsets[j]) {
					ri, rj := find(i), find(j)
					if ri != rj {
						if ri > rj {
							ri, rj = rj, ri
						}
						parent[rj] = ri
					}
				}
			}
		}
		// Number the overlap groups 1..G in first-section order.
		shardOf := map[int]int{}
		group := map[int]int{}
		next := 1
		for i, id := range u.coarseSecs {
			r := find(i)
			g, ok := group[r]
			if !ok {
				g = next
				next++
				group[r] = g
			}
			shardOf[id] = g
		}
		if next <= 2 {
			continue // one group: everything may overlap, a split buys nothing
		}
		for _, id := range u.coarseSecs {
			ns := out[id].Clone()
			eff := locks.RO
			for _, l := range out[id].Sorted() {
				if !l.Fine && !l.IsGlobal() && !l.IsShard() && l.Class == c {
					ns.Remove(l)
					if l.Eff == locks.RW {
						eff = locks.RW
					}
				}
			}
			ns.Add(locks.ShardLock(c, shardOf[id], eff))
			out[id] = ns
		}
		res.Decisions = append(res.Decisions, Decision{
			Kind: "split", Class: c, Sections: u.coarseSecs, Shards: shardOf,
			Reason: fmt.Sprintf("%d/%d waits, %d disjoint groups", coarse.Waits, coarse.Acquires, next-1),
		})
	}
}

// Verify recomputes the refinement and rejects a claimed refined plan that
// differs — the recompute-and-compare checker that flags a tampered
// refinement (e.g. the demote-a-hot-lock mutant) deterministically.
func Verify(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, plan map[int]locks.Set, refined map[int]locks.Set, prof *locks.Profile, opts Options) error {
	want := Refine(prog, st, and, plan, prof, opts)
	var diffs []string
	for _, id := range sortedSections(plan) {
		w, g := want.Plan[id], refined[id]
		if !sameSet(w, g) {
			diffs = append(diffs, fmt.Sprintf("section %d: got {%s}, want {%s}",
				id, joinLocks(g), joinLocks(w)))
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("refine: plan does not match recomputed refinement:\n%s", strings.Join(diffs, "\n"))
}

func sameSet(a, b locks.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func joinLocks(s locks.Set) string {
	var parts []string
	for _, l := range s.Sorted() {
		parts = append(parts, l.String())
	}
	return strings.Join(parts, ", ")
}
