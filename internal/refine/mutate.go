package refine

import (
	"lockinfer/internal/andersen"
	"lockinfer/internal/audit"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

// Mutation operators for the refinement checkers — each returns a plan (and
// possibly a doctored profile) embodying one way a buggy refiner could go
// wrong, which the conformance suite then expects the checkers to flag:
//
//   - MutantDemoteHot builds the plan a refiner would emit if it demoted a
//     class whose profile shows contention — exactly the rewrite the demote
//     policy must refuse. Verify flags it by recompute-and-compare.
//   - MutantSplitNoProof builds a split whose disjointness proof does not
//     hold. The static auditor flags it (shard re-proof violations), as
//     does Verify.

// MutantDemoteHot picks the first fine-locked class of the plan, demotes
// it everywhere, and returns a profile doctored to show that class's fine
// locks contended. ok is false when the plan has no fine locks to demote.
func MutantDemoteHot(plan map[int]locks.Set, prof *locks.Profile) (mut map[int]locks.Set, hot *locks.Profile, ok bool) {
	var class steens.NodeID
	found := false
	for _, id := range sortedSections(plan) {
		for _, l := range plan[id].Sorted() {
			if l.Fine {
				class = l.Class
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return nil, nil, false
	}
	mut = make(map[int]locks.Set, len(plan))
	for id, set := range plan {
		ns := set.Clone()
		eff := locks.RO
		changed := false
		for _, l := range set.Sorted() {
			if l.Fine && l.Class == class {
				ns.Remove(l)
				changed = true
				if l.Eff == locks.RW {
					eff = locks.RW
				}
			}
		}
		if changed {
			ns.Add(locks.CoarseLock(class, eff))
			ns = ns.Minimize()
		}
		mut[id] = ns
	}
	// Doctor the profile: the class's fine leaves were acquired often and
	// blocked often — the signature of granularity that is earning its
	// keep, which demotion would throw away.
	hot = &locks.Profile{Schema: locks.ProfileSchema}
	hot.Merge(prof)
	lp := hot.Lock(locks.FineKey(int64(class), 1))
	if lp.Acquires < 100 {
		lp.Acquires += 100
	}
	lp.Waits += 50
	return mut, hot, true
}

// MutantSplitNoProof shards a coarse-locked class without a disjointness
// proof. It prefers an assignment the footprints genuinely refute (every
// coarse-holding section gets its own shard even where footprints
// overlap); when the sections happen to be disjoint — a legitimate split —
// it degrades to giving one section two shards of the class, which breaks
// the one-shard-per-section side condition instead. Either way the
// auditor's shard re-proof must reject the plan. ok is false when no class
// is coarse-held by at least two sections.
func MutantSplitNoProof(prog *ir.Program, st *steens.Analysis, and *andersen.Analysis, plan map[int]locks.Set, specs map[string]steens.ExternSpec) (map[int]locks.Set, bool) {
	uses, classes := indexPlan(plan)
	for _, c := range classes {
		u := uses[c]
		if len(u.coarseSecs) < 2 || len(u.shardSecs) > 0 {
			continue
		}
		mut := shardEach(plan, c, u.coarseSecs)
		rep := audit.Run(prog, st, and, mut, audit.Options{Specs: specs})
		if len(rep.ShardViolations) > 0 {
			return mut, true
		}
		// The distinct-shard assignment was actually sound: break the
		// single-shard side condition instead.
		return doubleShard(plan, c, u.coarseSecs[0]), true
	}
	return nil, false
}

// shardEach gives every listed section its own shard of class c.
func shardEach(plan map[int]locks.Set, c steens.NodeID, secs []int) map[int]locks.Set {
	out := make(map[int]locks.Set, len(plan))
	for id, set := range plan {
		out[id] = set
	}
	for i, id := range secs {
		ns := out[id].Clone()
		eff := removeCoarse(ns, out[id], c)
		ns.Add(locks.ShardLock(c, i+1, eff))
		out[id] = ns
	}
	return out
}

// doubleShard gives one section two distinct shards of class c.
func doubleShard(plan map[int]locks.Set, c steens.NodeID, sec int) map[int]locks.Set {
	out := make(map[int]locks.Set, len(plan))
	for id, set := range plan {
		out[id] = set
	}
	ns := out[sec].Clone()
	eff := removeCoarse(ns, out[sec], c)
	ns.Add(locks.ShardLock(c, 1, eff))
	ns.Add(locks.ShardLock(c, 2, eff))
	out[sec] = ns
	return out
}

// removeCoarse drops class c's coarse lock from ns and returns its effect.
func removeCoarse(ns locks.Set, orig locks.Set, c steens.NodeID) locks.Eff {
	eff := locks.RO
	for _, l := range orig.Sorted() {
		if !l.Fine && !l.IsGlobal() && !l.IsShard() && l.Class == c {
			ns.Remove(l)
			if l.Eff == locks.RW {
				eff = locks.RW
			}
		}
	}
	return eff
}
