// Package steens implements Steensgaard's flow- and context-insensitive
// unification-based points-to analysis over the IR. The analysis produces
// the points-to-set lock partition Σ≡ of the paper (each equivalence class
// of abstract cells is one coarse-grain lock) and the mayAlias oracle
// consumed by the lock inference transfer functions.
//
// The abstraction is field-insensitive: a field offset stays within the
// object's class, matching the paper's Σ≡ definition (l_s + i = s).
package steens

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/ir"
)

// NodeID identifies an abstract cell class. IDs are stable for a given
// program; use Rep to normalize to the class representative.
type NodeID int

// Analysis is the result of running Steensgaard's algorithm on a program.
type Analysis struct {
	prog    *ir.Program
	parent  []NodeID
	rank    []int
	pointee []NodeID // -1 when absent; meaningful on representatives

	varNode  map[*ir.Var]NodeID
	siteNode []NodeID // indexed by allocation site

	// class member bookkeeping for labels and for the concrete checker.
	classVars  map[NodeID][]*ir.Var
	classSites map[NodeID][]int
}

// Run performs the points-to analysis on prog.
func Run(prog *ir.Program) *Analysis {
	a := &Analysis{
		prog:    prog,
		varNode: map[*ir.Var]NodeID{},
	}
	for _, g := range prog.Globals {
		a.varNode[g] = a.newNode()
	}
	for _, f := range prog.Funcs {
		for _, v := range f.Vars {
			a.varNode[v] = a.newNode()
		}
	}
	a.siteNode = make([]NodeID, prog.NumSites)
	for i := range a.siteNode {
		a.siteNode[i] = a.newNode()
	}
	for _, f := range prog.Funcs {
		for _, s := range f.Stmts {
			a.stmt(f, s)
		}
	}
	a.buildMembers()
	return a
}

func (a *Analysis) newNode() NodeID {
	id := NodeID(len(a.parent))
	a.parent = append(a.parent, id)
	a.rank = append(a.rank, 0)
	a.pointee = append(a.pointee, -1)
	return id
}

// Rep returns the representative of n's class. It performs no path
// compression: after the analysis is built the structure is queried
// concurrently (the checking interpreter resolves cell classes from many
// threads), so Rep must be a pure read. compressAll flattens every chain
// once construction finishes, keeping lookups O(1).
func (a *Analysis) Rep(n NodeID) NodeID {
	for a.parent[n] != n {
		n = a.parent[n]
	}
	return n
}

// compressAll points every node directly at its root.
func (a *Analysis) compressAll() {
	for i := range a.parent {
		a.parent[i] = a.Rep(NodeID(i))
	}
}

// pointeeExists reports the existing pointee class of n, without
// materializing one.
func (a *Analysis) pointeeExists(n NodeID) (NodeID, bool) {
	n = a.Rep(n)
	if a.pointee[n] < 0 {
		return 0, false
	}
	return a.Rep(a.pointee[n]), true
}

// Pointee returns the class reached by dereferencing a cell of class n,
// creating an empty class if the program never stores a pointer there.
func (a *Analysis) Pointee(n NodeID) NodeID {
	n = a.Rep(n)
	if a.pointee[n] < 0 {
		a.pointee[n] = a.newNode()
	}
	return a.Rep(a.pointee[n])
}

// union merges the classes of x and y, recursively unifying pointees.
func (a *Analysis) union(x, y NodeID) {
	x, y = a.Rep(x), a.Rep(y)
	if x == y {
		return
	}
	if a.rank[x] < a.rank[y] {
		x, y = y, x
	}
	if a.rank[x] == a.rank[y] {
		a.rank[x]++
	}
	px, py := a.pointee[x], a.pointee[y]
	a.parent[y] = x
	switch {
	case px < 0:
		a.pointee[x] = py
	case py < 0:
		// keep px
	default:
		a.union(px, py)
	}
}

// join unifies the pointees of two cells (the effect of an assignment
// between them).
func (a *Analysis) join(x, y NodeID) {
	a.union(a.Pointee(x), a.Pointee(y))
}

func (a *Analysis) stmt(f *ir.Func, s *ir.Stmt) {
	v := func(x *ir.Var) NodeID { return a.varNode[x] }
	switch s.Op {
	case ir.OpCopy:
		a.join(v(s.Dst), v(s.Src))
	case ir.OpAddrOf:
		a.union(a.Pointee(v(s.Dst)), v(s.Src))
	case ir.OpLoad:
		a.union(a.Pointee(v(s.Dst)), a.Pointee(a.Pointee(v(s.Src))))
	case ir.OpStore:
		a.union(a.Pointee(a.Pointee(v(s.Dst))), a.Pointee(v(s.Src)))
	case ir.OpField, ir.OpIndex:
		// Field-insensitive: the field's cell lives in the same class as the
		// object's base cell.
		a.join(v(s.Dst), v(s.Src))
	case ir.OpNew:
		a.union(a.Pointee(v(s.Dst)), a.siteNode[s.Site])
	case ir.OpCall:
		callee := a.prog.Func(s.Callee)
		if callee == nil {
			return
		}
		for i, arg := range s.Args {
			if i < len(callee.Params) {
				a.join(v(callee.Params[i]), v(arg))
			}
		}
		if s.Dst != nil && callee.RetVar != nil {
			a.join(v(s.Dst), v(callee.RetVar))
		}
	}
}

func (a *Analysis) buildMembers() {
	a.compressAll()
	a.classVars = map[NodeID][]*ir.Var{}
	a.classSites = map[NodeID][]int{}
	for _, g := range a.prog.Globals {
		r := a.Rep(a.varNode[g])
		a.classVars[r] = append(a.classVars[r], g)
	}
	for _, f := range a.prog.Funcs {
		for _, vv := range f.Vars {
			r := a.Rep(a.varNode[vv])
			a.classVars[r] = append(a.classVars[r], vv)
		}
	}
	for site, n := range a.siteNode {
		r := a.Rep(n)
		a.classSites[r] = append(a.classSites[r], site)
	}
}

// VarCell returns the class of variable v's own cell (&v).
func (a *Analysis) VarCell(v *ir.Var) NodeID { return a.Rep(a.varNode[v]) }

// SiteClass returns the class containing allocation site id.
func (a *Analysis) SiteClass(site int) NodeID { return a.Rep(a.siteNode[site]) }

// ClassSites returns the allocation sites whose objects belong to class n.
func (a *Analysis) ClassSites(n NodeID) []int { return a.classSites[a.Rep(n)] }

// ClassVars returns the variables whose cells belong to class n.
func (a *Analysis) ClassVars(n NodeID) []*ir.Var { return a.classVars[a.Rep(n)] }

// MayAlias reports whether two cell classes may denote a common location.
// With a unification-based analysis this is exactly class equality.
func (a *Analysis) MayAlias(n1, n2 NodeID) bool { return a.Rep(n1) == a.Rep(n2) }

// ClassLabel renders a human-readable description of a class, listing a few
// member variables and allocation sites.
func (a *Analysis) ClassLabel(n NodeID) string {
	n = a.Rep(n)
	var parts []string
	for i, v := range a.classVars[n] {
		if i == 3 {
			parts = append(parts, "...")
			break
		}
		if v.Owner != nil {
			parts = append(parts, v.Owner.Name+"."+v.Name)
		} else {
			parts = append(parts, v.Name)
		}
	}
	for i, s := range a.classSites[n] {
		if i == 3 {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, a.prog.SiteNames[s])
	}
	if len(parts) == 0 {
		return fmt.Sprintf("class#%d", n)
	}
	return fmt.Sprintf("class#%d{%s}", n, strings.Join(parts, ","))
}

// StoreSummary computes, for every function, the set of cell classes that
// the function (or anything it transitively calls) may store through a
// pointer. The inference engine uses it to decide whether a lock expression
// can be invalidated by a call.
func (a *Analysis) StoreSummary() map[*ir.Func]map[NodeID]bool {
	direct := map[*ir.Func]map[NodeID]bool{}
	callees := map[*ir.Func][]*ir.Func{}
	for _, f := range a.prog.Funcs {
		direct[f] = map[NodeID]bool{}
		for _, s := range f.Stmts {
			switch s.Op {
			case ir.OpStore:
				// The written cell is the pointee of the address variable.
				direct[f][a.Pointee(a.VarCell(s.Dst))] = true
			case ir.OpCall:
				if c := a.prog.Func(s.Callee); c != nil {
					callees[f] = append(callees[f], c)
				}
			}
		}
	}
	// Propagate to a fixed point over the call graph.
	changed := true
	for changed {
		changed = false
		for _, f := range a.prog.Funcs {
			for _, c := range callees[f] {
				for n := range direct[c] {
					if !direct[f][n] {
						direct[f][n] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// NumNodes returns the size of the abstract-cell graph, including classes
// materialized by Pointee after construction. The parallel inference driver
// uses it to assert that analyzing a section never grows the graph (so
// per-section clones stay in the same NodeID space as the shared original).
func (a *Analysis) NumNodes() int { return len(a.parent) }

// Clone returns a copy of the analysis whose union-find and pointee tables
// are private, so a Pointee call that materializes a class in the clone
// cannot race with (or become visible to) readers of the original. The
// immutable post-construction state — the program, the variable and
// allocation-site tables, the class-member indexes — is shared.
func (a *Analysis) Clone() *Analysis {
	cp := *a
	cp.parent = append([]NodeID(nil), a.parent...)
	cp.rank = append([]int(nil), a.rank...)
	cp.pointee = append([]NodeID(nil), a.pointee...)
	return &cp
}

// Classes returns the sorted list of representative ids that have at least
// one member (a variable cell or an allocation site).
func (a *Analysis) Classes() []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	add := func(n NodeID) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for n := range a.classVars {
		add(a.Rep(n))
	}
	for n := range a.classSites {
		add(a.Rep(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
