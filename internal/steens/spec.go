package steens

import "lockinfer/internal/ir"

// ExternSpec is a function specification for a pre-compiled (external)
// function, per §4.3 "Supporting pre-compiled libraries": since coarse
// locks are flow-insensitive, a list of coarse-grain locks can protect
// everything a library function does. Roots name global variables; the
// function may access any location reachable from them.
//
// The spec also asserts a retention discipline the analysis relies on: the
// function may store argument pointers only into structure reachable from
// its Writes roots (modeled conservatively by unifying the argument
// pointees into the Writes closure).
type ExternSpec struct {
	// Reads lists globals whose reachable structure the function may read.
	Reads []string
	// Writes lists globals whose reachable structure the function may
	// mutate (and where it may store its pointer arguments).
	Writes []string
	// ReturnsFrom optionally names a global whose reachable structure
	// contains the returned pointer. Empty for int/void returns or
	// functions returning fresh private objects.
	ReturnsFrom string
}

// RunWithSpecs performs the points-to analysis with external-function
// specifications: calls to external functions contribute the unification
// constraints their specs imply.
func RunWithSpecs(prog *ir.Program, specs map[string]ExternSpec) *Analysis {
	a := Run(prog)
	if len(specs) == 0 {
		return a
	}
	// Apply spec constraints and re-close: iterate to a fixed point since
	// unifications can enable each other (classes are finite, unions
	// monotone).
	for pass := 0; pass < 4; pass++ {
		for _, f := range prog.Funcs {
			for _, s := range f.Stmts {
				if s.Op != ir.OpCall {
					continue
				}
				callee := prog.Func(s.Callee)
				if callee == nil || !callee.External {
					continue
				}
				spec, ok := specs[s.Callee]
				if !ok {
					continue
				}
				a.applySpec(prog, s, spec)
			}
		}
	}
	a.buildMembers()
	return a
}

func (a *Analysis) applySpec(prog *ir.Program, call *ir.Stmt, spec ExternSpec) {
	// Returned pointers live in the ReturnsFrom closure.
	if call.Dst != nil && spec.ReturnsFrom != "" {
		if g := prog.Global(spec.ReturnsFrom); g != nil {
			a.union(a.Pointee(a.VarCell(call.Dst)), a.Pointee(a.VarCell(g)))
		}
	}
	// Pointer arguments may be retained anywhere in the Writes closure:
	// every cell class reachable from a Writes root may point at the
	// argument's targets.
	for _, root := range spec.Writes {
		g := prog.Global(root)
		if g == nil {
			continue
		}
		closure := a.ReachableClasses(a.Pointee(a.VarCell(g)))
		for _, arg := range call.Args {
			if !arg.Type.IsPointer() {
				continue
			}
			for _, c := range closure {
				a.union(a.Pointee(c), a.Pointee(a.VarCell(arg)))
			}
		}
	}
}

// ReachableClasses returns the cell classes reachable from start by
// following pointee edges, including start. Exploration follows only
// pointee links that already exist (it never materializes fresh leaf
// classes) and stops on cycles. Every returned id is a representative and
// the list is duplicate-free even when callers race the walk against later
// unions: the result is re-normalized through Rep before returning, so two
// visited nodes that have since been merged collapse to one entry.
func (a *Analysis) ReachableClasses(start NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	cur := a.Rep(start)
	for {
		if seen[cur] {
			break
		}
		seen[cur] = true
		out = append(out, cur)
		next, ok := a.pointeeExists(cur)
		if !ok {
			break
		}
		cur = next
	}
	return dedupeNodes(a, out)
}

// GlobalClosure resolves a global name to its reachable cell classes
// (starting at the global's target, i.e. what the pointer leads to).
//
// GlobalClosure is a pure read: it never materializes a pointee class. A
// global that holds no pointer (an int counter, say) closes over exactly its
// own cell — the previous behavior of minting an empty phantom class here
// both mutated the analysis from a query path (breaking Rep's concurrent-
// read contract) and double-counted classes downstream, since the phantom
// could later be unified into a real class that the closure already listed.
func (a *Analysis) GlobalClosure(prog *ir.Program, name string) []NodeID {
	g := prog.Global(name)
	if g == nil {
		return nil
	}
	// Include the global's own cell plus everything reachable through it.
	out := []NodeID{a.VarCell(g)}
	if p, ok := a.pointeeExists(a.VarCell(g)); ok {
		out = append(out, a.ReachableClasses(p)...)
	}
	return dedupeNodes(a, out)
}

func dedupeNodes(a *Analysis, in []NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, n := range in {
		r := a.Rep(n)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
