package steens

import (
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestGlobalClosureIsPure: closing over a pointer-free global (an int
// counter) must return exactly the global's own cell and must not
// materialize a pointee class — the query used to mint an empty phantom
// class, mutating the analysis from a read path.
func TestGlobalClosureIsPure(t *testing.T) {
	prog, a := analyze(t, `
int counter;
void bump() {
  atomic { counter = counter + 1; }
}
`)
	g := prog.Global("counter")
	before := len(a.Classes())
	got := a.GlobalClosure(prog, "counter")
	if len(got) != 1 || got[0] != a.Rep(a.VarCell(g)) {
		t.Errorf("GlobalClosure(counter) = %v, want exactly [%d]", got, a.Rep(a.VarCell(g)))
	}
	if after := len(a.Classes()); after != before {
		t.Errorf("GlobalClosure materialized classes: %d -> %d", before, after)
	}
	// Repeated queries agree (no state mutated by the first).
	again := a.GlobalClosure(prog, "counter")
	if len(again) != len(got) || again[0] != got[0] {
		t.Errorf("GlobalClosure not idempotent: %v then %v", got, again)
	}
}

// TestGlobalClosureDedupesThroughRep: when unification merges nodes along a
// reachability chain (a self-referential structure), the closure must list
// each surviving representative once.
func TestGlobalClosureDedupesThroughRep(t *testing.T) {
	prog, a := analyze(t, `
struct node { node* next; int v; }
node* head;
void init() {
  head = new node;
  head->next = head;
}
`)
	got := a.GlobalClosure(prog, "head")
	seen := map[NodeID]bool{}
	for _, n := range got {
		if n != a.Rep(n) {
			t.Errorf("closure contains non-representative %d (rep %d)", n, a.Rep(n))
		}
		if seen[n] {
			t.Errorf("closure lists %d twice: %v", n, got)
		}
		seen[n] = true
	}
	// The closure must reach the list cell class.
	cell := a.Rep(a.Pointee(a.VarCell(prog.Global("head"))))
	if !seen[cell] {
		t.Errorf("closure %v missing the list cell class %d", got, cell)
	}
}

// TestReachableClassesAllReps: every id ReachableClasses returns is a
// representative, pairwise distinct, also under specs that unify mid-walk
// structures.
func TestReachableClassesAllReps(t *testing.T) {
	src := `
struct node { node* next; }
node* pool;
void link(node* n);
void init() {
  pool = new node;
  pool->next = new node;
}
void f() {
  node* mine = new node;
  link(mine);
}
`
	prog := lower(t, src)
	specs := map[string]ExternSpec{
		"link": {Writes: []string{"pool"}},
	}
	a := RunWithSpecs(prog, specs)
	for _, start := range []NodeID{
		a.VarCell(prog.Global("pool")),
		a.Pointee(a.VarCell(prog.Global("pool"))),
	} {
		got := a.ReachableClasses(start)
		seen := map[NodeID]bool{}
		for _, n := range got {
			if n != a.Rep(n) {
				t.Errorf("ReachableClasses(%d) yields non-representative %d", start, n)
			}
			if seen[n] {
				t.Errorf("ReachableClasses(%d) lists %d twice: %v", start, n, got)
			}
			seen[n] = true
		}
	}
}
