package steens

import (
	"testing"

	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/progen"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Run(prog)
}

func varOf(t *testing.T, prog *ir.Program, fn, name string) *ir.Var {
	t.Helper()
	f := prog.Func(fn)
	for _, v := range f.Vars {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no var %s in %s", name, fn)
	return nil
}

// TestAssignmentUnifiesPointees: after x = y, x and y point into the same
// class.
func TestAssignmentUnifiesPointees(t *testing.T) {
	prog, a := analyze(t, `
struct s { int v; }
void f() {
  s* x = new s;
  s* y = new s;
  x = y;
  s* z = new s;
}
`)
	x := varOf(t, prog, "f", "x")
	y := varOf(t, prog, "f", "y")
	z := varOf(t, prog, "f", "z")
	if a.Pointee(a.VarCell(x)) != a.Pointee(a.VarCell(y)) {
		t.Error("x and y pointees not unified")
	}
	if a.Pointee(a.VarCell(x)) == a.Pointee(a.VarCell(z)) {
		t.Error("z spuriously unified")
	}
}

// TestAddressOf: p = &x makes p point at x's cell class.
func TestAddressOf(t *testing.T) {
	prog, a := analyze(t, `
void f() {
  int x = 0;
  int* p = &x;
  *p = 1;
}
`)
	x := varOf(t, prog, "f", "x")
	p := varOf(t, prog, "f", "p")
	if a.Pointee(a.VarCell(p)) != a.VarCell(x) {
		t.Error("p does not point at x's cell")
	}
}

// TestHeapChains: list nodes unify into one recursive class.
func TestHeapChains(t *testing.T) {
	prog, a := analyze(t, `
struct n { n* next; }
void f() {
  n* head = null;
  int i = 0;
  while (i < 3) {
    n* e = new n;
    e->next = head;
    head = e;
    i = i + 1;
  }
  n* c = head;
  while (c != null) {
    c = c->next;
  }
}
`)
	head := varOf(t, prog, "f", "head")
	cls := a.Pointee(a.VarCell(head))
	// The recursive next field keeps the chain in one class.
	if a.Pointee(cls) != cls {
		t.Errorf("recursive structure not self-unified: %d -> %d", cls, a.Pointee(cls))
	}
	if len(a.ClassSites(cls)) == 0 {
		t.Error("allocation site not in the chain class")
	}
}

// TestCallBindings: actuals unify with formals, returns with call targets.
func TestCallBindings(t *testing.T) {
	prog, a := analyze(t, `
struct s { int v; }
s* id(s* p) { return p; }
void f() {
  s* x = new s;
  s* y = id(x);
}
`)
	x := varOf(t, prog, "f", "x")
	y := varOf(t, prog, "f", "y")
	p := varOf(t, prog, "id", "p")
	if a.Pointee(a.VarCell(x)) != a.Pointee(a.VarCell(p)) {
		t.Error("actual/formal not unified")
	}
	if a.Pointee(a.VarCell(x)) != a.Pointee(a.VarCell(y)) {
		t.Error("return value not unified")
	}
}

// TestDisjointStructuresStayDisjoint is the property TH depends on.
func TestDisjointStructuresStayDisjoint(t *testing.T) {
	prog, a := analyze(t, `
struct tn { tn* left; }
struct hn { hn* next; }
tn* tree;
hn* table;
void f() {
  tree = new tn;
  table = new hn;
}
`)
	tree := prog.Global("tree")
	table := prog.Global("table")
	if a.MayAlias(a.Pointee(a.VarCell(tree)), a.Pointee(a.VarCell(table))) {
		t.Error("tree and table objects unified despite no flow between them")
	}
}

// TestMayAliasProperties: reflexive and symmetric, on a generated program.
func TestMayAliasProperties(t *testing.T) {
	src := progen.Generate(progen.Spec{Name: "alias", KLoC: 1.5, Seed: 21})
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	a := Run(prog)
	var cells []NodeID
	for _, f := range prog.Funcs {
		for _, v := range f.Vars {
			cells = append(cells, a.VarCell(v))
		}
		if len(cells) > 60 {
			break
		}
	}
	for _, c1 := range cells {
		if !a.MayAlias(c1, c1) {
			t.Fatal("MayAlias not reflexive")
		}
		for _, c2 := range cells {
			if a.MayAlias(c1, c2) != a.MayAlias(c2, c1) {
				t.Fatal("MayAlias not symmetric")
			}
		}
	}
}

// TestStoreSummaryTransitive: a caller's summary includes its callees'
// stores.
func TestStoreSummaryTransitive(t *testing.T) {
	prog, a := analyze(t, `
struct s { int v; }
void leaf(s* p) { p->v = 1; }
void mid(s* p) { leaf(p); }
void top(s* p) { mid(p); }
void pure(int n) { int x = n + 1; }
`)
	sum := a.StoreSummary()
	leafStores := sum[prog.Func("leaf")]
	topStores := sum[prog.Func("top")]
	if len(leafStores) == 0 {
		t.Fatal("leaf has no stores")
	}
	for n := range leafStores {
		if !topStores[n] {
			t.Errorf("top missing callee store class %d", n)
		}
	}
	if len(sum[prog.Func("pure")]) != 0 {
		t.Error("pure function has store classes")
	}
}

// TestSoundnessAgainstInterp: classes are stable under Rep, and every
// variable belongs to its reported class.
func TestClassBookkeeping(t *testing.T) {
	prog, a := analyze(t, `
struct s { int v; }
s* g;
void f() { g = new s; }
`)
	g := prog.Global("g")
	cls := a.VarCell(g)
	if a.Rep(cls) != cls {
		t.Error("VarCell should return a representative")
	}
	found := false
	for _, v := range a.ClassVars(cls) {
		if v == g {
			found = true
		}
	}
	if !found {
		t.Error("g not listed in its own class")
	}
	if a.ClassLabel(cls) == "" {
		t.Error("empty class label")
	}
	if len(a.Classes()) == 0 {
		t.Error("no classes reported")
	}
}
