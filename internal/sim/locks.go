package sim

import "lockinfer/internal/mgl"

// LockTree is the multi-granularity lock hierarchy in simulated time. It
// reuses the real runtime's mode lattice, compatibility matrix and
// plan-building (mgl.BuildPlan); only blocking is simulated.
type LockTree struct {
	e       *Engine
	root    *snode
	classes map[mgl.ClassID]*snode
	fine    map[fineKey]*snode
	waits   int64
}

type fineKey struct {
	class mgl.ClassID
	addr  uint64
}

// NewLockTree creates an empty hierarchy on the engine.
func NewLockTree(e *Engine) *LockTree {
	return &LockTree{
		e:       e,
		root:    &snode{},
		classes: map[mgl.ClassID]*snode{},
		fine:    map[fineKey]*snode{},
	}
}

// Waits returns the number of acquisitions that had to block.
func (lt *LockTree) Waits() int64 { return lt.waits }

func (lt *LockTree) node(st mgl.PlanStep) *snode {
	switch st.Kind {
	case 0:
		return lt.root
	case 1:
		n, ok := lt.classes[st.Class]
		if !ok {
			n = &snode{}
			lt.classes[st.Class] = n
		}
		return n
	default:
		k := fineKey{st.Class, st.Addr}
		n, ok := lt.fine[k]
		if !ok {
			n = &snode{}
			lt.fine[k] = n
		}
		return n
	}
}

// AcquireAll acquires the plan for reqs top-down in the canonical order and
// calls then once every node is held. The returned value via then's closure
// is released with ReleaseAll(plan).
func (lt *LockTree) AcquireAll(reqs []mgl.Req, then func(held []HeldStep)) {
	steps := mgl.BuildPlan(reqs)
	held := make([]HeldStep, 0, len(steps))
	var next func(i int)
	next = func(i int) {
		if i == len(steps) {
			then(held)
			return
		}
		n := lt.node(steps[i])
		mode := steps[i].Mode
		n.acquire(lt, mode, func() {
			held = append(held, HeldStep{n: n, mode: mode})
			next(i + 1)
		})
	}
	next(0)
}

// HeldStep is one acquired (node, mode) pair.
type HeldStep struct {
	n    *snode
	mode mgl.Mode
}

// ReleaseAll releases the held nodes bottom-up.
func (lt *LockTree) ReleaseAll(held []HeldStep) {
	for i := len(held) - 1; i >= 0; i-- {
		held[i].n.release(lt.e, held[i].mode)
	}
}

// snode is one simulated lock node with the FIFO grant discipline of the
// real runtime.
type snode struct {
	count [6]int
	queue []swaiter
}

type swaiter struct {
	mode mgl.Mode
	cont func()
}

func (n *snode) compatible(mode mgl.Mode) bool {
	for m := mgl.IS; m <= mgl.X; m++ {
		if n.count[m] > 0 && !mgl.Compatible(mode, m) {
			return false
		}
	}
	return true
}

func (n *snode) acquire(lt *LockTree, mode mgl.Mode, cont func()) {
	if len(n.queue) == 0 && n.compatible(mode) {
		n.count[mode]++
		cont()
		return
	}
	lt.waits++
	n.queue = append(n.queue, swaiter{mode: mode, cont: cont})
}

func (n *snode) release(e *Engine, mode mgl.Mode) {
	n.count[mode]--
	for len(n.queue) > 0 && n.compatible(n.queue[0].mode) {
		w := n.queue[0]
		n.queue = n.queue[1:]
		n.count[w.mode]++
		e.After(0, w.cont)
	}
}
