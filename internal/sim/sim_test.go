package sim

import (
	"testing"

	"lockinfer/internal/mgl"
	"lockinfer/internal/workload"
)

// TestEngineOrdering: events fire in time order, FIFO within a timestamp.
func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(10, func() { order = append(order, 2) })
	e.After(5, func() { order = append(order, 1) })
	e.After(10, func() { order = append(order, 3) })
	end := e.Run()
	if end != 10 {
		t.Errorf("final time = %d, want 10", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

// TestCoreLimit: four equal computations on two cores take two rounds.
func TestCoreLimit(t *testing.T) {
	e := NewEngine(2)
	done := 0
	for i := 0; i < 4; i++ {
		e.After(0, func() {
			e.Compute(100, func() { done++ })
		})
	}
	end := e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if end != 200 {
		t.Errorf("4 x 100 units on 2 cores finished at %d, want 200", end)
	}
}

// TestComputeParallel: independent computations overlap up to the core
// count.
func TestComputeParallel(t *testing.T) {
	e := NewEngine(8)
	for i := 0; i < 8; i++ {
		e.After(0, func() { e.Compute(50, func() {}) })
	}
	if end := e.Run(); end != 50 {
		t.Errorf("8 units on 8 cores finished at %d, want 50", end)
	}
}

// TestLockTreeExclusion: two X holders serialize; S holders share.
func TestLockTreeExclusion(t *testing.T) {
	e := NewEngine(8)
	lt := NewLockTree(e)
	var busy, peak int
	section := func(write bool) {
		reqs := []mgl.Req{{Class: 1, Write: write}}
		lt.AcquireAll(reqs, func(held []HeldStep) {
			busy++
			if busy > peak {
				peak = busy
			}
			e.Compute(100, func() {
				busy--
				lt.ReleaseAll(held)
			})
		})
	}
	// Two writers: must serialize.
	e.After(0, func() { section(true) })
	e.After(0, func() { section(true) })
	if end := e.Run(); end != 200 {
		t.Errorf("two X sections finished at %d, want 200", end)
	}
	if peak != 1 {
		t.Errorf("X sections overlapped: peak=%d", peak)
	}
	// Two readers: run together.
	peak, busy = 0, 0
	e2 := NewEngine(8)
	lt2 := NewLockTree(e2)
	sectionR := func() {
		lt2.AcquireAll([]mgl.Req{{Class: 1, Write: false}}, func(held []HeldStep) {
			busy++
			if busy > peak {
				peak = busy
			}
			e2.Compute(100, func() {
				busy--
				lt2.ReleaseAll(held)
			})
		})
	}
	e2.After(0, sectionR)
	e2.After(0, sectionR)
	if end := e2.Run(); end != 100 {
		t.Errorf("two S sections finished at %d, want 100", end)
	}
	if peak != 2 {
		t.Errorf("S sections did not overlap: peak=%d", peak)
	}
}

// TestLockTreeIntention: coarse X excludes fine X under the same class but
// not under another class.
func TestLockTreeIntention(t *testing.T) {
	e := NewEngine(8)
	lt := NewLockTree(e)
	var timeline []string
	hold := func(name string, reqs []mgl.Req, dur Time) {
		lt.AcquireAll(reqs, func(held []HeldStep) {
			timeline = append(timeline, name+"+")
			e.Compute(dur, func() {
				timeline = append(timeline, name+"-")
				lt.ReleaseAll(held)
			})
		})
	}
	e.After(0, func() { hold("coarse1", []mgl.Req{{Class: 1, Write: true}}, 100) })
	e.After(1, func() { hold("fine1", []mgl.Req{{Class: 1, Fine: true, Addr: 9, Write: true}}, 10) })
	e.After(1, func() { hold("fine2", []mgl.Req{{Class: 2, Fine: true, Addr: 9, Write: true}}, 10) })
	e.Run()
	idx := map[string]int{}
	for i, ev := range timeline {
		idx[ev] = i
	}
	if !(idx["fine2+"] < idx["coarse1-"]) {
		t.Errorf("fine lock under class 2 was blocked by coarse X on class 1: %v", timeline)
	}
	if !(idx["fine1+"] > idx["coarse1-"]) {
		t.Errorf("fine lock under class 1 overlapped coarse X: %v", timeline)
	}
}

// TestSTMSimSerializable: concurrent increments are never lost in the
// simulated TL2.
func TestSTMSimSerializable(t *testing.T) {
	w := workload.NewKmeans("kmeans", workload.GrainCoarse)
	res, err := Run(w, ModeSTM, Config{Cores: 8, Threads: 8, OpsPerThread: 300, Seed: 5})
	if err != nil {
		t.Fatalf("invariants failed under simulated STM: %v", err)
	}
	if res.Commits != 8*300 {
		t.Errorf("commits = %d, want %d", res.Commits, 8*300)
	}
	if res.Aborts == 0 {
		t.Error("hot-cell workload produced no aborts; conflict detection broken?")
	}
}

// TestAllWorkloadsAllSimModes runs every benchmark under every simulated
// runtime and validates invariants.
func TestAllWorkloadsAllSimModes(t *testing.T) {
	builders := []func() workload.Workload{
		func() workload.Workload { return workload.NewList("list", workload.LowMix) },
		func() workload.Workload { return workload.NewRBTree("rbtree", workload.HighMix) },
		func() workload.Workload { return workload.NewHashtable("hashtable", workload.HighMix) },
		func() workload.Workload { return workload.NewHashtable2("h2", workload.HighMix, workload.GrainFine) },
		func() workload.Workload { return workload.NewTH("th", workload.LowMix) },
		func() workload.Workload { return workload.NewGenome("genome", workload.GrainFine) },
		func() workload.Workload { return workload.NewKmeans("kmeans", workload.GrainFine) },
		func() workload.Workload { return workload.NewBayes("bayes") },
		func() workload.Workload { return workload.NewVacation("vacation") },
		func() workload.Workload { return workload.NewLabyrinth("labyrinth") },
	}
	for _, mk := range builders {
		for _, mode := range []Mode{ModeGlobal, ModeMGL, ModeSTM} {
			w := mk()
			if _, err := Run(w, mode, Config{Cores: 4, Threads: 4, OpsPerThread: 120, Seed: 9}); err != nil {
				t.Errorf("%s under %s: %v", w.Name(), mode, err)
			}
		}
	}
}

// TestMoreCoresNeverSlower: adding cores cannot increase simulated time.
func TestMoreCoresNeverSlower(t *testing.T) {
	mk := func() workload.Workload { return workload.NewRBTree("rbtree", workload.LowMix) }
	var prev Time
	for i, cores := range []int{1, 2, 4, 8} {
		res, err := Run(mk(), ModeMGL, Config{Cores: cores, Threads: 8, OpsPerThread: 150, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.SimTime > prev+prev/20 {
			t.Errorf("%d cores slower than fewer: %d > %d", cores, res.SimTime, prev)
		}
		prev = res.SimTime
	}
}
