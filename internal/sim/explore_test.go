package sim

import (
	"fmt"
	"testing"

	"lockinfer/internal/workload"
)

// TestExploreShapes prints Table-2-shaped numbers for manual calibration;
// assertions live in the bench package.
func TestExploreShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration only")
	}
	type row struct {
		name   string
		coarse func() workload.Workload
		fine   func() workload.Workload
	}
	rows := []row{
		{"genome", func() workload.Workload { return workload.NewGenome("genome", workload.GrainCoarse) },
			func() workload.Workload { return workload.NewGenome("genome", workload.GrainFine) }},
		{"vacation", func() workload.Workload { return workload.NewVacation("vacation") },
			func() workload.Workload { return workload.NewVacation("vacation") }},
		{"kmeans", func() workload.Workload { return workload.NewKmeans("kmeans", workload.GrainCoarse) },
			func() workload.Workload { return workload.NewKmeans("kmeans", workload.GrainFine) }},
		{"bayes", func() workload.Workload { return workload.NewBayes("bayes") },
			func() workload.Workload { return workload.NewBayes("bayes") }},
		{"labyrinth", func() workload.Workload { return workload.NewLabyrinth("labyrinth") },
			func() workload.Workload { return workload.NewLabyrinth("labyrinth") }},
		{"hash-high", func() workload.Workload { return workload.NewHashtable("h", workload.HighMix) },
			func() workload.Workload { return workload.NewHashtable("h", workload.HighMix) }},
		{"hash-low", func() workload.Workload { return workload.NewHashtable("h", workload.LowMix) },
			func() workload.Workload { return workload.NewHashtable("h", workload.LowMix) }},
		{"rbtree-high", func() workload.Workload { return workload.NewRBTree("r", workload.HighMix) },
			func() workload.Workload { return workload.NewRBTree("r", workload.HighMix) }},
		{"rbtree-low", func() workload.Workload { return workload.NewRBTree("r", workload.LowMix) },
			func() workload.Workload { return workload.NewRBTree("r", workload.LowMix) }},
		{"list-high", func() workload.Workload { return workload.NewList("l", workload.HighMix) },
			func() workload.Workload { return workload.NewList("l", workload.HighMix) }},
		{"list-low", func() workload.Workload { return workload.NewList("l", workload.LowMix) },
			func() workload.Workload { return workload.NewList("l", workload.LowMix) }},
		{"ht2-high", func() workload.Workload { return workload.NewHashtable2("h2", workload.HighMix, workload.GrainCoarse) },
			func() workload.Workload { return workload.NewHashtable2("h2", workload.HighMix, workload.GrainFine) }},
		{"ht2-low", func() workload.Workload { return workload.NewHashtable2("h2", workload.LowMix, workload.GrainCoarse) },
			func() workload.Workload { return workload.NewHashtable2("h2", workload.LowMix, workload.GrainFine) }},
		{"th-high", func() workload.Workload { return workload.NewTH("th", workload.HighMix) },
			func() workload.Workload { return workload.NewTH("th", workload.HighMix) }},
		{"th-low", func() workload.Workload { return workload.NewTH("th", workload.LowMix) },
			func() workload.Workload { return workload.NewTH("th", workload.LowMix) }},
	}
	cfg := Config{Cores: 8, Threads: 8, OpsPerThread: 400, Seed: 11}
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "program", "global", "coarse", "fine", "stm", "aborts")
	for _, r := range rows {
		g, err := Run(r.coarse(), ModeGlobal, cfg)
		if err != nil {
			t.Fatalf("%s global: %v", r.name, err)
		}
		c, err := Run(r.coarse(), ModeMGL, cfg)
		if err != nil {
			t.Fatalf("%s coarse: %v", r.name, err)
		}
		f, err := Run(r.fine(), ModeMGL, cfg)
		if err != nil {
			t.Fatalf("%s fine: %v", r.name, err)
		}
		s, err := Run(r.coarse(), ModeSTM, cfg)
		if err != nil {
			t.Fatalf("%s stm: %v", r.name, err)
		}
		fmt.Printf("%-12s %10d %10d %10d %10d %10d\n",
			r.name, g.SimTime, c.SimTime, f.SimTime, s.SimTime, s.Aborts)
	}
}
