package sim

import (
	"fmt"
	"testing"

	"lockinfer/internal/workload"
)

// TestExploreShapes checks the Table-2-shaped relations between the four
// runtimes on every workload (and still prints the table for manual
// calibration). The invariants, with tolerances wide enough to survive
// cost-model tweaks but tight enough to catch real regressions:
//
//   - every mode terminates with positive simulated time;
//   - hierarchical locking's overhead over the single global lock is
//     bounded (coarse ≤ global × 1.2) — acquiring a few coarse locks
//     costs more per section but never degrades throughput wholesale;
//   - read-heavy mixes (low-mix rows) exploit S-mode parallelism: coarse
//     MGL strictly beats the global X lock;
//   - where the workload distinguishes grains (ht2), fine-grain locking
//     strictly beats coarse — the paper's headline win;
//   - the STM baseline always records work (positive time) and conflicts
//     (aborts) under contention;
//   - the engine is deterministic: re-running one configuration
//     reproduces the identical simulated time.
func TestExploreShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration only")
	}
	type row struct {
		name   string
		coarse func() workload.Workload
		fine   func() workload.Workload
		// readParallel marks read-heavy mixes where coarse S-mode locking
		// must strictly beat the global exclusive lock.
		readParallel bool
		// fineFaster marks workloads whose fine variant genuinely uses a
		// finer grain, which must strictly beat coarse.
		fineFaster bool
	}
	rows := []row{
		{name: "genome",
			coarse: func() workload.Workload { return workload.NewGenome("genome", workload.GrainCoarse) },
			fine:   func() workload.Workload { return workload.NewGenome("genome", workload.GrainFine) }},
		{name: "vacation",
			coarse: func() workload.Workload { return workload.NewVacation("vacation") },
			fine:   func() workload.Workload { return workload.NewVacation("vacation") }},
		{name: "kmeans",
			coarse: func() workload.Workload { return workload.NewKmeans("kmeans", workload.GrainCoarse) },
			fine:   func() workload.Workload { return workload.NewKmeans("kmeans", workload.GrainFine) }},
		{name: "bayes",
			coarse: func() workload.Workload { return workload.NewBayes("bayes") },
			fine:   func() workload.Workload { return workload.NewBayes("bayes") }},
		{name: "labyrinth",
			coarse: func() workload.Workload { return workload.NewLabyrinth("labyrinth") },
			fine:   func() workload.Workload { return workload.NewLabyrinth("labyrinth") }},
		{name: "hash-high",
			coarse: func() workload.Workload { return workload.NewHashtable("h", workload.HighMix) },
			fine:   func() workload.Workload { return workload.NewHashtable("h", workload.HighMix) }},
		{name: "hash-low",
			coarse:       func() workload.Workload { return workload.NewHashtable("h", workload.LowMix) },
			fine:         func() workload.Workload { return workload.NewHashtable("h", workload.LowMix) },
			readParallel: true},
		{name: "rbtree-high",
			coarse: func() workload.Workload { return workload.NewRBTree("r", workload.HighMix) },
			fine:   func() workload.Workload { return workload.NewRBTree("r", workload.HighMix) }},
		{name: "rbtree-low",
			coarse:       func() workload.Workload { return workload.NewRBTree("r", workload.LowMix) },
			fine:         func() workload.Workload { return workload.NewRBTree("r", workload.LowMix) },
			readParallel: true},
		{name: "list-high",
			coarse: func() workload.Workload { return workload.NewList("l", workload.HighMix) },
			fine:   func() workload.Workload { return workload.NewList("l", workload.HighMix) }},
		{name: "list-low",
			coarse:       func() workload.Workload { return workload.NewList("l", workload.LowMix) },
			fine:         func() workload.Workload { return workload.NewList("l", workload.LowMix) },
			readParallel: true},
		{name: "ht2-high",
			coarse:     func() workload.Workload { return workload.NewHashtable2("h2", workload.HighMix, workload.GrainCoarse) },
			fine:       func() workload.Workload { return workload.NewHashtable2("h2", workload.HighMix, workload.GrainFine) },
			fineFaster: true},
		{name: "ht2-low",
			coarse:     func() workload.Workload { return workload.NewHashtable2("h2", workload.LowMix, workload.GrainCoarse) },
			fine:       func() workload.Workload { return workload.NewHashtable2("h2", workload.LowMix, workload.GrainFine) },
			fineFaster: true},
		{name: "th-high",
			coarse: func() workload.Workload { return workload.NewTH("th", workload.HighMix) },
			fine:   func() workload.Workload { return workload.NewTH("th", workload.HighMix) }},
		{name: "th-low",
			coarse:       func() workload.Workload { return workload.NewTH("th", workload.LowMix) },
			fine:         func() workload.Workload { return workload.NewTH("th", workload.LowMix) },
			readParallel: true},
	}
	cfg := Config{Cores: 8, Threads: 8, OpsPerThread: 400, Seed: 11}
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "program", "global", "coarse", "fine", "stm", "aborts")
	for _, r := range rows {
		g, err := Run(r.coarse(), ModeGlobal, cfg)
		if err != nil {
			t.Fatalf("%s global: %v", r.name, err)
		}
		c, err := Run(r.coarse(), ModeMGL, cfg)
		if err != nil {
			t.Fatalf("%s coarse: %v", r.name, err)
		}
		f, err := Run(r.fine(), ModeMGL, cfg)
		if err != nil {
			t.Fatalf("%s fine: %v", r.name, err)
		}
		s, err := Run(r.coarse(), ModeSTM, cfg)
		if err != nil {
			t.Fatalf("%s stm: %v", r.name, err)
		}
		fmt.Printf("%-12s %10d %10d %10d %10d %10d\n",
			r.name, g.SimTime, c.SimTime, f.SimTime, s.SimTime, s.Aborts)

		if g.SimTime <= 0 || c.SimTime <= 0 || f.SimTime <= 0 || s.SimTime <= 0 {
			t.Errorf("%s: non-positive simulated time (g=%d c=%d f=%d s=%d)",
				r.name, g.SimTime, c.SimTime, f.SimTime, s.SimTime)
		}
		// Hierarchical locking overhead over the global lock is bounded.
		if float64(c.SimTime) > 1.2*float64(g.SimTime) {
			t.Errorf("%s: coarse MGL %d exceeds global %d by more than 20%%",
				r.name, c.SimTime, g.SimTime)
		}
		if r.readParallel && c.SimTime >= g.SimTime {
			t.Errorf("%s: read-heavy mix should beat the global lock (coarse %d >= global %d)",
				r.name, c.SimTime, g.SimTime)
		}
		if r.fineFaster && f.SimTime >= c.SimTime {
			t.Errorf("%s: fine grain should beat coarse (fine %d >= coarse %d)",
				r.name, f.SimTime, c.SimTime)
		}
		if s.Aborts <= 0 {
			t.Errorf("%s: STM recorded no aborts under contention", r.name)
		}
	}

	// Determinism: one configuration re-run must reproduce identically.
	a, err := Run(rows[0].coarse(), ModeMGL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rows[0].coarse(), ModeMGL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime {
		t.Errorf("simulator nondeterministic: %d vs %d", a.SimTime, b.SimTime)
	}
}
