// Package sim is a deterministic discrete-event simulator of a small
// multiprocessor running the benchmark workloads under the four concurrency
// runtimes. The paper's runtime evaluation was performed on an 8-core Xeon;
// this host may have any number of physical cores, so the performance
// experiments (Table 2, Figure 8) run on this simulated machine instead:
// threads occupy simulated cores for the duration of their computation,
// lock waits and STM aborts unfold in simulated time, and every run is
// exactly reproducible. DESIGN.md §3 records the substitution argument; the
// real goroutine-based runtimes remain in internal/{mgl,stm,workload} and
// carry the correctness burden.
package sim

import "container/heap"

// Time is simulated time in abstract cost units.
type Time = int64

type event struct {
	t   Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the event loop plus the core model: at most Cores computation
// segments run concurrently; further ready threads queue FIFO.
type Engine struct {
	now   Time
	seq   int64
	pq    eventHeap
	cores int
	busy  int
	ready []func()
}

// NewEngine creates a simulator with the given number of cores.
func NewEngine(cores int) *Engine {
	if cores < 1 {
		cores = 1
	}
	return &Engine{cores: cores}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// After schedules fn to run d units from now.
func (e *Engine) After(d Time, fn func()) {
	e.seq++
	heap.Push(&e.pq, event{t: e.now + d, seq: e.seq, fn: fn})
}

// Compute occupies one core for d units, then calls then. If all cores are
// busy the thread waits (FIFO) for a free core first.
func (e *Engine) Compute(d Time, then func()) {
	if e.busy >= e.cores {
		e.ready = append(e.ready, func() { e.Compute(d, then) })
		return
	}
	e.busy++
	e.After(d, func() {
		e.busy--
		e.wake()
		then()
	})
}

func (e *Engine) wake() {
	for e.busy < e.cores && len(e.ready) > 0 {
		next := e.ready[0]
		e.ready = e.ready[1:]
		next()
	}
}

// Run drains the event queue and returns the final simulated time.
func (e *Engine) Run() Time {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.t
		ev.fn()
	}
	return e.now
}
