package sim

import (
	"math/rand"

	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
	"lockinfer/internal/workload"
)

// Mode selects the simulated concurrency runtime.
type Mode int

// Simulated runtimes, matching the four columns of Table 2.
const (
	// ModeGlobal serializes every section on the single root lock.
	ModeGlobal Mode = iota
	// ModeMGL uses the workload's lock descriptors (the workload instance's
	// grain decides coarse-only vs fine+coarse).
	ModeMGL
	// ModeSTM runs sections as TL2-style transactions.
	ModeSTM
)

func (m Mode) String() string {
	switch m {
	case ModeGlobal:
		return "global"
	case ModeMGL:
		return "mgl"
	default:
		return "stm"
	}
}

// CostModel assigns simulated durations, in abstract units, to the
// primitive actions. The defaults are calibrated so that relative shapes —
// not absolute times — match the paper's testbed (see EXPERIMENTS.md).
type CostModel struct {
	// Access is the cost of one shared cell access under locks.
	Access Time
	// LockNode is the protocol cost of acquiring and releasing one node of
	// the lock hierarchy.
	LockNode Time
	// STMAccess is the cost of one instrumented transactional access.
	STMAccess Time
	// STMCommitPerWrite is the commit cost per written cell.
	STMCommitPerWrite Time
	// STMBase is the fixed begin+commit bookkeeping cost per attempt.
	STMBase Time
	// Think is the cost of inter-operation work outside sections.
	Think Time
	// WorkUnit scales Op.Work (in-section computation).
	WorkUnit Time
	// AbortBackoffBase scales the exponential backoff after an abort.
	AbortBackoffBase Time
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Access:            2,
		LockNode:          18,
		STMAccess:         6,
		STMCommitPerWrite: 12,
		STMBase:           20,
		Think:             30,
		WorkUnit:          1,
		AbortBackoffBase:  4,
	}
}

// Config parameterizes one simulated measurement.
type Config struct {
	Cores        int
	Threads      int
	OpsPerThread int
	Seed         int64
	Costs        CostModel
}

// Result reports one simulated run.
type Result struct {
	// SimTime is the simulated wall-clock duration of the parallel phase.
	SimTime Time
	// Commits and Aborts report STM behavior (commits == total ops).
	Commits int64
	Aborts  int64
	// Waits counts blocking lock acquisitions.
	Waits int64
}

// countCtx counts accesses while executing directly (lock modes).
type countCtx struct{ n int }

func (c *countCtx) Load(cell *mem.Cell) any     { c.n++; return cell.Load() }
func (c *countCtx) Store(cell *mem.Cell, v any) { c.n++; cell.Store(v) }

// bufCtx buffers writes and records reads (STM mode).
type bufCtx struct {
	reads  []*mem.Cell
	writes map[*mem.Cell]any
	n      int
}

func newBufCtx() *bufCtx { return &bufCtx{writes: map[*mem.Cell]any{}} }

func (c *bufCtx) Load(cell *mem.Cell) any {
	c.n++
	if v, ok := c.writes[cell]; ok {
		return v
	}
	c.reads = append(c.reads, cell)
	return cell.Load()
}

func (c *bufCtx) Store(cell *mem.Cell, v any) {
	c.n++
	c.writes[cell] = v
}

// Run simulates the workload under the mode and returns the result. The
// workload's own invariant check runs afterwards, as in workload.Run.
func Run(w workload.Workload, mode Mode, cfg Config) (Result, error) {
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	w.Setup(rand.New(rand.NewSource(cfg.Seed)))
	e := NewEngine(cfg.Cores)
	lt := NewLockTree(e)
	st := &simSTM{lastCommit: map[*mem.Cell]int64{}}
	res := Result{}

	for t := 0; t < cfg.Threads; t++ {
		r := rand.New(rand.NewSource(cfg.Seed + int64(t) + 1))
		remaining := cfg.OpsPerThread
		var step func()
		step = func() {
			if remaining == 0 {
				return
			}
			remaining--
			op := w.Op(r)
			done := func() {
				if op.After != nil {
					op.After()
				}
				step()
			}
			switch mode {
			case ModeGlobal, ModeMGL:
				runLocked(e, lt, cfg.Costs, mode, op, done)
			default:
				runSTM(e, st, cfg.Costs, op, done)
			}
		}
		e.After(0, step)
	}
	res.SimTime = e.Run()
	res.Waits = lt.Waits()
	res.Commits = st.commits
	res.Aborts = st.aborts
	return res, w.Check()
}

// runLocked simulates one operation under a lock runtime: think time, the
// acquisition protocol (charged per plan node), the possibly-blocking
// acquisition, the section body on a core, release.
func runLocked(e *Engine, lt *LockTree, cm CostModel, mode Mode, op workload.Op, done func()) {
	var reqs []mgl.Req
	if mode == ModeGlobal {
		reqs = []mgl.Req{{Global: true, Write: true}}
	} else if op.Locks != nil {
		op.Locks(func(r mgl.Req) { reqs = append(reqs, r) })
	}
	nodes := len(mgl.BuildPlan(reqs))
	e.Compute(cm.Think, func() {
		lt.AcquireAll(reqs, func(held []HeldStep) {
			// The body executes atomically at grant time; its duration —
			// including the per-node protocol work, which happens while
			// deeper nodes are already held — is charged before release.
			var cnt countCtx
			op.Body(&cnt)
			dur := cm.LockNode*Time(nodes) + Time(cnt.n)*cm.Access + Time(op.Work)*cm.WorkUnit
			e.Compute(dur, func() {
				lt.ReleaseAll(held)
				done()
			})
		})
	})
}

// simSTM is the TL2 model in simulated time: per-cell last-commit
// timestamps substitute for the global version clock.
type simSTM struct {
	// version is the logical global version clock; lastCommit records the
	// commit version of each cell (exactly TL2's versioned write locks).
	version    int64
	lastCommit map[*mem.Cell]int64
	commits    int64
	aborts     int64
}

// runSTM simulates one transaction: the body executes against the committed
// state at start time with buffered writes; at start+duration the read and
// write sets are validated against commits that happened in between; on
// conflict the attempt is aborted (its core time already charged) and
// retried after backoff.
func runSTM(e *Engine, st *simSTM, cm CostModel, op workload.Op, done func()) {
	attempt := 0
	var try func()
	try = func() {
		start := st.version
		buf := newBufCtx()
		op.Body(buf)
		dur := cm.STMBase + Time(buf.n)*cm.STMAccess +
			Time(len(buf.writes))*cm.STMCommitPerWrite + Time(op.Work)*cm.WorkUnit
		e.Compute(dur, func() {
			if st.validate(buf, start) {
				st.version++
				for cell, v := range buf.writes {
					cell.Store(v)
					st.lastCommit[cell] = st.version
				}
				st.commits++
				done()
				return
			}
			st.aborts++
			attempt++
			backoff := cm.AbortBackoffBase << min(attempt, 4)
			e.After(backoff, try)
		})
	}
	// Think time happens outside the transaction window.
	e.Compute(cm.Think, try)
}

// validate reports whether no concurrent commit invalidated the attempt's
// read or write set.
func (st *simSTM) validate(buf *bufCtx, start int64) bool {
	for _, c := range buf.reads {
		if st.lastCommit[c] > start {
			return false
		}
	}
	for c := range buf.writes {
		if st.lastCommit[c] > start {
			return false
		}
	}
	return true
}
