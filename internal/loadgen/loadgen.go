// Package loadgen drives a lockinferd instance with open-loop HTTP load:
// requests fire on a fixed arrival schedule derived from the target RPS,
// regardless of how fast the server answers, so saturation shows up as
// rising latency and shed load instead of a politely self-throttling
// closed loop. Outstanding requests are bounded — arrivals beyond the
// bound are counted as dropped, which keeps a saturated run from
// accumulating unbounded goroutines while preserving the open-loop
// arrival process for the requests that do fire.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Op is one weighted request template in the traffic mix.
type Op struct {
	// Name labels the op in per-op stats (and replay accounting).
	Name string
	// Weight is the op's relative share of arrivals (default 1).
	Weight int
	// Method and Path address the endpoint; Body is the JSON payload
	// (GET ops leave it nil).
	Method string
	Path   string
	Body   []byte
}

// Config parameterizes one run.
type Config struct {
	// TargetRPS is the open-loop arrival rate.
	TargetRPS float64
	// Duration bounds the arrival phase; completions are awaited after.
	Duration time.Duration
	// MaxOutstanding bounds concurrently outstanding requests (default
	// 256); arrivals beyond it are dropped, not queued.
	MaxOutstanding int
	// Timeout is the per-request client timeout (default 10s).
	Timeout time.Duration
	// Seed fixes the op-selection randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// OpStats is the per-op outcome tally.
type OpStats struct {
	Sent int64 `json:"sent"`
	// Done counts 2xx completions — for execute ops, runs the server
	// finished and answered in time (the replay-conformance accounting
	// uses this).
	Done int64 `json:"done"`
	// Rejected counts 503 load sheds, Timeout 504s and client-side
	// deadline misses, Failed every other non-2xx or transport error.
	Rejected int64 `json:"rejected"`
	Timeout  int64 `json:"timeout"`
	Failed   int64 `json:"failed"`
}

// Result aggregates one run.
type Result struct {
	// Target and achieved arrival/completion rates.
	TargetRPS   float64 `json:"target_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Totals over every op.
	Sent     int64 `json:"sent"`
	Done     int64 `json:"done"`
	Dropped  int64 `json:"dropped"`
	Rejected int64 `json:"rejected"`
	Timeout  int64 `json:"timeout"`
	Failed   int64 `json:"failed"`
	// Latency percentiles over completed (2xx) requests, nanoseconds.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
	// Elapsed covers arrivals plus the completion wait.
	ElapsedNS int64               `json:"elapsed_ns"`
	PerOp     map[string]*OpStats `json:"per_op"`
}

// ErrorRate is (rejected+timeout+failed+dropped)/sent-or-dropped.
func (r *Result) ErrorRate() float64 {
	total := r.Sent + r.Dropped
	if total == 0 {
		return 0
	}
	return float64(r.Rejected+r.Timeout+r.Failed+r.Dropped) / float64(total)
}

// Drive runs the open-loop arrival process against baseURL until
// cfg.Duration elapses (or ctx cancels), waits for outstanding requests,
// and reports the aggregate.
func Drive(ctx context.Context, client *http.Client, baseURL string, mix []Op, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.TargetRPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: TargetRPS and Duration are required")
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty op mix")
	}
	if client == nil {
		client = &http.Client{}
	}

	res := &Result{TargetRPS: cfg.TargetRPS, PerOp: map[string]*OpStats{}}
	var mu sync.Mutex // guards latencies and PerOp
	var latencies []int64
	for _, op := range mix {
		res.PerOp[op.Name] = &OpStats{}
	}
	pick := picker(mix, cfg.Seed)

	var outstanding atomic.Int64
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.TargetRPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	end := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()

arrivals:
	for now := start; now.Before(end); {
		select {
		case <-ctx.Done():
			break arrivals
		case now = <-tick.C:
		}
		op := pick()
		if outstanding.Load() >= int64(cfg.MaxOutstanding) {
			res.Dropped++
			continue
		}
		outstanding.Add(1)
		res.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer outstanding.Add(-1)
			lat, class := fire(client, baseURL, op, cfg.Timeout)
			mu.Lock()
			st := res.PerOp[op.Name]
			st.Sent++
			switch class {
			case classDone:
				st.Done++
				latencies = append(latencies, lat.Nanoseconds())
			case classRejected:
				st.Rejected++
			case classTimeout:
				st.Timeout++
			default:
				st.Failed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.ElapsedNS = time.Since(start).Nanoseconds()

	for _, st := range res.PerOp {
		res.Done += st.Done
		res.Rejected += st.Rejected
		res.Timeout += st.Timeout
		res.Failed += st.Failed
	}
	elapsedSec := float64(res.ElapsedNS) / float64(time.Second)
	if elapsedSec > 0 {
		res.OfferedRPS = float64(res.Sent+res.Dropped) / elapsedSec
		res.AchievedRPS = float64(res.Done) / elapsedSec
	}
	res.P50NS, res.P99NS, res.P999NS, res.MaxNS = percentiles(latencies)
	return res, nil
}

// request outcome classes.
const (
	classDone = iota
	classRejected
	classTimeout
	classFailed
)

// fire issues one request and classifies the outcome.
func fire(client *http.Client, baseURL string, op Op, timeout time.Duration) (time.Duration, int) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var body io.Reader
	if op.Body != nil {
		body = bytes.NewReader(op.Body)
	}
	req, err := http.NewRequestWithContext(ctx, op.Method, baseURL+op.Path, body)
	if err != nil {
		return 0, classFailed
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			return lat, classTimeout
		}
		return lat, classFailed
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		return lat, classDone
	case resp.StatusCode == http.StatusServiceUnavailable:
		return lat, classRejected
	case resp.StatusCode == http.StatusGatewayTimeout:
		return lat, classTimeout
	default:
		return lat, classFailed
	}
}

// picker returns a deterministic weighted op selector.
func picker(mix []Op, seed int64) func() Op {
	total := 0
	for _, op := range mix {
		w := op.Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func() Op {
		mu.Lock()
		n := rng.Intn(total)
		mu.Unlock()
		for _, op := range mix {
			w := op.Weight
			if w <= 0 {
				w = 1
			}
			if n < w {
				return op
			}
			n -= w
		}
		return mix[len(mix)-1]
	}
}

// percentiles reports p50/p99/p999/max over the samples (zeros when empty).
func percentiles(ns []int64) (p50, p99, p999, max int64) {
	if len(ns) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return at(0.50), at(0.99), at(0.999), ns[len(ns)-1]
}
