package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDriveClassifiesOutcomes runs the generator against a server with one
// fast endpoint, one that always sheds load, and one that always overruns
// the client deadline, then checks every outcome lands in its class.
func TestDriveClassifiesOutcomes(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("/busy", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	mix := []Op{
		{Name: "ok", Weight: 6, Method: "GET", Path: "/ok"},
		{Name: "busy", Weight: 3, Method: "GET", Path: "/busy"},
		{Name: "slow", Weight: 1, Method: "GET", Path: "/slow"},
	}
	res, err := Drive(context.Background(), ts.Client(), ts.URL, mix, Config{
		TargetRPS: 200,
		Duration:  500 * time.Millisecond,
		Timeout:   100 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if res.Sent == 0 {
		t.Fatalf("no arrivals fired: %+v", res)
	}
	if res.Done == 0 || res.Rejected == 0 || res.Timeout == 0 {
		t.Fatalf("outcome classes missing: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	var sum int64
	for name, st := range res.PerOp {
		if got := st.Done + st.Rejected + st.Timeout + st.Failed; got != st.Sent {
			t.Fatalf("op %s outcomes don't add up: %+v", name, st)
		}
		sum += st.Sent
	}
	if sum != res.Sent {
		t.Fatalf("per-op sent %d != total %d", sum, res.Sent)
	}
	if res.PerOp["busy"].Done != 0 || res.PerOp["busy"].Rejected == 0 {
		t.Fatalf("busy endpoint misclassified: %+v", res.PerOp["busy"])
	}
	if res.PerOp["slow"].Timeout == 0 {
		t.Fatalf("slow endpoint never timed out: %+v", res.PerOp["slow"])
	}
	if res.P50NS <= 0 || res.P50NS > res.P99NS || res.P99NS > res.P999NS || res.P999NS > res.MaxNS {
		t.Fatalf("percentiles out of order: p50=%d p99=%d p999=%d max=%d",
			res.P50NS, res.P99NS, res.P999NS, res.MaxNS)
	}
	if res.ErrorRate() <= 0 || res.ErrorRate() >= 1 {
		t.Fatalf("error rate %v with mixed outcomes", res.ErrorRate())
	}
}

// TestDriveBoundsOutstanding saturates a stalled server and checks the
// generator sheds arrivals beyond MaxOutstanding instead of hoarding
// goroutines — and that the drop count reconciles.
func TestDriveBoundsOutstanding(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	res, err := Drive(context.Background(), ts.Client(), ts.URL, []Op{{Name: "stall", Method: "GET", Path: "/"}},
		Config{
			TargetRPS:      500,
			Duration:       300 * time.Millisecond,
			MaxOutstanding: 8,
			Timeout:        50 * time.Millisecond,
			Seed:           1,
		})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if res.Dropped == 0 {
		t.Fatalf("stalled server produced no drops: %+v", res)
	}
	if res.Sent+res.Dropped < 50 {
		t.Fatalf("arrival process stalled: sent %d dropped %d", res.Sent, res.Dropped)
	}
}

// TestPickerDeterministic fixes the seed and demands identical op
// sequences — the soak's replay accounting depends on reproducible mixes.
func TestPickerDeterministic(t *testing.T) {
	mix := []Op{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}, {Name: "c"}}
	p1, p2 := picker(mix, 7), picker(mix, 7)
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		a, b := p1(), p2()
		if a.Name != b.Name {
			t.Fatalf("draw %d diverged: %s vs %s", i, a.Name, b.Name)
		}
		counts[a.Name]++
	}
	for _, op := range mix {
		if counts[op.Name] == 0 {
			t.Fatalf("op %s never drawn: %v", op.Name, counts)
		}
	}
	if counts["a"] <= counts["b"] {
		t.Fatalf("weights ignored: %v", counts)
	}
}

func TestPercentiles(t *testing.T) {
	var ns []int64
	for i := int64(1); i <= 1000; i++ {
		ns = append(ns, i)
	}
	p50, p99, p999, max := percentiles(ns)
	if p50 != 500 || p99 != 990 || p999 != 999 || max != 1000 {
		t.Fatalf("percentiles over 1..1000: p50=%d p99=%d p999=%d max=%d", p50, p99, p999, max)
	}
	if a, b, c, d := percentiles(nil); a != 0 || b != 0 || c != 0 || d != 0 {
		t.Fatalf("empty percentiles: %d %d %d %d", a, b, c, d)
	}
}

// TestDriveValidation rejects a zero config and an empty mix.
func TestDriveValidation(t *testing.T) {
	if _, err := Drive(context.Background(), nil, "http://x", []Op{{Name: "a"}}, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Drive(context.Background(), nil, "http://x", nil, Config{TargetRPS: 1, Duration: time.Second}); err == nil {
		t.Fatal("empty mix accepted")
	}
}
