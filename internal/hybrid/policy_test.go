package hybrid

import (
	"sync"
	"testing"

	"lockinfer/internal/locks"
)

// TestDecide covers the threshold-crossing matrix: configuration × section
// state → mode and attempt budget.
func TestDecide(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		setup      func(p *Policy) // mutate per-section state before Decide
		section    int
		wantMode   Mode
		wantBudget int
	}{
		{
			name:       "defaults start optimistic with default budget",
			cfg:        Config{},
			wantMode:   Opt,
			wantBudget: DefaultAbortThreshold,
		},
		{
			name:       "explicit threshold is the attempt budget",
			cfg:        Config{AbortThreshold: 7},
			wantMode:   Opt,
			wantBudget: 7,
		},
		{
			name:       "ForceFallback goes straight to locks",
			cfg:        Config{AbortThreshold: ForceFallback},
			wantMode:   Pess,
			wantBudget: 0,
		},
		{
			name:       "NeverFallback retries unbounded",
			cfg:        Config{AbortThreshold: NeverFallback},
			wantMode:   Opt,
			wantBudget: 0,
		},
		{
			name:     "section past the budget turns pessimistic",
			cfg:      Config{AbortThreshold: 2, StickyRuns: 4},
			setup:    func(p *Policy) { p.RecordFallback(5, 2) },
			section:  5,
			wantMode: Pess,
		},
		{
			name:       "fallback of one section leaves others optimistic",
			cfg:        Config{AbortThreshold: 2, StickyRuns: 4},
			setup:      func(p *Policy) { p.RecordFallback(5, 2) },
			section:    6,
			wantMode:   Opt,
			wantBudget: 2,
		},
		{
			name: "decayed section returns to optimism",
			cfg:  Config{AbortThreshold: 2, StickyRuns: 2},
			setup: func(p *Policy) {
				p.RecordFallback(1, 2)
				p.RecordPessimistic(1, false)
				p.RecordPessimistic(1, false)
			},
			section:    1,
			wantMode:   Opt,
			wantBudget: 2,
		},
		{
			name: "contended pessimistic run refreshes stickiness",
			cfg:  Config{AbortThreshold: 2, StickyRuns: 2},
			setup: func(p *Policy) {
				p.RecordFallback(1, 2)
				p.RecordPessimistic(1, false)
				p.RecordPessimistic(1, true) // refresh
				p.RecordPessimistic(1, false)
			},
			section:  1,
			wantMode: Pess,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPolicy(tc.cfg)
			if tc.setup != nil {
				tc.setup(p)
			}
			mode, budget := p.Decide(tc.section)
			if mode != tc.wantMode {
				t.Fatalf("mode = %v, want %v", mode, tc.wantMode)
			}
			if mode == Opt && budget != tc.wantBudget {
				t.Fatalf("budget = %d, want %d", budget, tc.wantBudget)
			}
		})
	}
}

// TestStickyDecay walks one section through a fallback and the full decay
// back to optimism, checking the budget at each step.
func TestStickyDecay(t *testing.T) {
	p := NewPolicy(Config{AbortThreshold: 3, StickyRuns: 3})
	if got := p.Sticky(0); got != 0 {
		t.Fatalf("initial sticky = %d, want 0", got)
	}
	p.RecordFallback(0, 3)
	for want := 3; want > 0; want-- {
		if got := p.Sticky(0); got != want {
			t.Fatalf("sticky = %d, want %d", got, want)
		}
		if mode, _ := p.Decide(0); mode != Pess {
			t.Fatalf("mode at sticky=%d is %v, want Pess", want, mode)
		}
		p.RecordPessimistic(0, false)
	}
	if got := p.Sticky(0); got != 0 {
		t.Fatalf("sticky after decay = %d, want 0", got)
	}
	if mode, _ := p.Decide(0); mode != Opt {
		t.Fatalf("mode after decay = %v, want Opt", mode)
	}
	// Decaying an already-optimistic section must not underflow.
	p.RecordPessimistic(0, false)
	if got := p.Sticky(0); got != 0 {
		t.Fatalf("sticky after extra decay = %d, want 0", got)
	}
}

// TestPerSectionIsolation hammers two sections from concurrent goroutines
// and checks their states never bleed into each other.
func TestPerSectionIsolation(t *testing.T) {
	p := NewPolicy(Config{AbortThreshold: 2, StickyRuns: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.RecordFallback(1, 2)
				p.RecordOptimistic(2, 0)
				p.RecordPessimistic(1, true)
			}
		}()
	}
	wg.Wait()
	if mode, _ := p.Decide(1); mode != Pess {
		t.Fatalf("section 1 mode = %v, want Pess", mode)
	}
	if mode, _ := p.Decide(2); mode != Opt {
		t.Fatalf("section 2 mode = %v, want Opt", mode)
	}
	if got := p.Sticky(2); got != 0 {
		t.Fatalf("section 2 sticky = %d, want 0", got)
	}
	st := p.Stats()
	if st.Fallbacks != 800 || st.OptRuns != 800 || st.PessRuns != 800 {
		t.Fatalf("stats = %+v, want 800 each of fallbacks/optRuns/pessRuns", st)
	}
}

// TestProfileSeeding pins the proactive-fallback satellite at both
// extremes: a section the profile shows under sustained contention starts
// sticky-pessimistic, an uncontended one starts optimistic — and the seeded
// budget still decays back to optimism through quiet pessimistic runs.
func TestProfileSeeding(t *testing.T) {
	prof := locks.NewProfile("p", "hybrid")
	hot := prof.Section(1)
	hot.Runs = 100
	hot.Waits = 40
	hot.Fallbacks = 20 // 60% contended: well past any sane ratio
	cold := prof.Section(2)
	cold.Runs = 100 // zero waits, zero fallbacks

	p := NewPolicy(Config{Profile: prof})
	if mode, _ := p.Decide(1); mode != Pess {
		t.Errorf("hot section: Decide = %s, want pess", mode)
	}
	if got := p.Sticky(1); got != DefaultStickyRuns {
		t.Errorf("hot section sticky = %d, want %d", got, DefaultStickyRuns)
	}
	if mode, budget := p.Decide(2); mode != Opt || budget != DefaultAbortThreshold {
		t.Errorf("cold section: Decide = %s/%d, want opt/%d", mode, budget, DefaultAbortThreshold)
	}
	// Unprofiled sections behave like cold ones.
	if mode, _ := p.Decide(99); mode != Opt {
		t.Errorf("unprofiled section: Decide = %s, want opt", mode)
	}
	// The seed is a budget, not a sentence: quiet runs decay it away.
	for i := 0; i < DefaultStickyRuns; i++ {
		p.RecordPessimistic(1, false)
	}
	if mode, _ := p.Decide(1); mode != Opt {
		t.Errorf("hot section after decay: Decide = %s, want opt", mode)
	}

	// No profile: everything starts optimistic regardless of ratio config.
	p2 := NewPolicy(Config{ProfileRatio: 0.01})
	if mode, _ := p2.Decide(1); mode != Opt {
		t.Errorf("profile-less policy: Decide = %s, want opt", mode)
	}

	// Ratio is honored: at ratio 0.7 the 60%-contended section stays opt.
	p3 := NewPolicy(Config{Profile: prof, ProfileRatio: 0.7})
	if mode, _ := p3.Decide(1); mode != Opt {
		t.Errorf("high-ratio policy: Decide = %s, want opt", mode)
	}
}
