package hybrid

import (
	"runtime"
	"sync/atomic"
)

// Gate serializes optimistic write-commits against pessimistic sections.
//
// While no pessimistic section is active, optimistic transactions commit on
// the pure TL2 path: EnterFree registers the in-flight commit and ExitFree
// retires it — two atomic ops, no locks. The moment any thread goes
// pessimistic (EnterPess), new write-commits are denied the free path and
// must instead acquire the committing section's inferred lock plan, which
// the lock hierarchy orders against the pessimistic holder. EnterPess spins
// until the in-flight free commits drain, so a pessimistic section never
// observes a half-applied optimistic commit and — because it drains before
// the section acquires its locks — free committers can never mutate cells
// between the section's plan evaluation and its body.
//
// The spin cannot deadlock: free commits are short, lock-free, and never
// wait on the gate themselves.
type Gate struct {
	pess     atomic.Int32
	inflight atomic.Int32
}

// EnterFree tries to register an optimistic write-commit on the lock-free
// fast path; it reports false while any pessimistic section is active (the
// commit must then take the locked path). On true, the caller must pair
// with ExitFree.
func (g *Gate) EnterFree() bool {
	g.inflight.Add(1)
	if g.pess.Load() != 0 {
		g.inflight.Add(-1)
		return false
	}
	return true
}

// ExitFree retires a free-path commit registered by EnterFree.
func (g *Gate) ExitFree() {
	g.inflight.Add(-1)
}

// EnterPess marks a pessimistic section active and waits for in-flight
// free-path commits to drain. Pair with ExitPess.
func (g *Gate) EnterPess() {
	g.pess.Add(1)
	for g.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// ExitPess retires a pessimistic section.
func (g *Gate) ExitPess() {
	g.pess.Add(-1)
}

// PessActive reports whether any pessimistic section is active (exposed for
// tests).
func (g *Gate) PessActive() bool { return g.pess.Load() != 0 }
