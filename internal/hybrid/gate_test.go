package hybrid

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateFastPath: with no pessimistic section active, free commits are
// admitted and retire cleanly.
func TestGateFastPath(t *testing.T) {
	var g Gate
	if !g.EnterFree() {
		t.Fatal("EnterFree denied with no pessimistic section active")
	}
	g.ExitFree()
	if g.PessActive() {
		t.Fatal("PessActive true with no pessimistic section")
	}
}

// TestGateDeniesWhilePess: free-path commits are denied for the whole span
// of a pessimistic section and admitted again after it exits.
func TestGateDeniesWhilePess(t *testing.T) {
	var g Gate
	g.EnterPess()
	if g.EnterFree() {
		t.Fatal("EnterFree admitted while a pessimistic section is active")
	}
	g.ExitPess()
	if !g.EnterFree() {
		t.Fatal("EnterFree denied after the pessimistic section exited")
	}
	g.ExitFree()
}

// TestGateNestedPess: overlapping pessimistic sections keep the gate closed
// until the last one exits.
func TestGateNestedPess(t *testing.T) {
	var g Gate
	g.EnterPess()
	g.EnterPess()
	g.ExitPess()
	if g.EnterFree() {
		t.Fatal("EnterFree admitted while one pessimistic section remains")
	}
	g.ExitPess()
	if !g.EnterFree() {
		t.Fatal("EnterFree denied after all pessimistic sections exited")
	}
	g.ExitFree()
}

// TestGateExclusion stress-checks the invariant the hybrid engine depends
// on: a pessimistic section never runs while a free-path commit is in
// flight. Free committers hold a counter high inside their critical span;
// the pessimistic thread asserts it reads zero right after EnterPess.
func TestGateExclusion(t *testing.T) {
	var g Gate
	var inCrit atomic.Int32
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if g.EnterFree() {
					inCrit.Add(1)
					inCrit.Add(-1)
					g.ExitFree()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		g.EnterPess()
		if n := inCrit.Load(); n != 0 {
			t.Errorf("free commit in flight during pessimistic section: %d", n)
		}
		g.ExitPess()
	}
	stop.Store(true)
	wg.Wait()
}
