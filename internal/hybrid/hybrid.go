// Package hybrid is the adaptive policy behind the machine's hybrid
// execution engine: every atomic section first runs optimistically as a TL2
// transaction, and sections whose abort rate crosses a budget fall back to
// their inferred lock plan, pessimistically. Fallback is sticky — a section
// that fell back stays pessimistic for a run budget, refreshed while its
// lock acquisitions keep blocking and decayed back toward optimism while
// they don't. All state is per-section, so one hot section falling back
// never pessimizes the rest of the program.
package hybrid

import (
	"sync"
	"sync/atomic"

	"lockinfer/internal/locks"
)

// Mode is the policy's verdict for one execution of a section.
type Mode uint8

const (
	// Opt: run the section as a (possibly attempt-bounded) transaction.
	Opt Mode = iota
	// Pess: run the section under its inferred lock plan.
	Pess
)

func (m Mode) String() string {
	if m == Pess {
		return "pess"
	}
	return "opt"
}

// Sentinel thresholds: ForceFallback sends every section straight to its
// lock plan (the property tests' "always pessimistic" extreme), and
// NeverFallback grants unbounded optimistic retries (the "pure STM"
// extreme).
const (
	ForceFallback = -1
	NeverFallback = 1 << 30
)

// Defaults used for zero Config fields.
const (
	DefaultAbortThreshold = 3
	DefaultStickyRuns     = 8
)

// Config tunes the policy. The zero value means the defaults, not zero
// budgets; use the sentinels above for the degenerate policies.
type Config struct {
	// AbortThreshold is the per-execution abort budget of the optimistic
	// attempt loop: after this many aborted attempts the section falls back
	// to its lock plan. ForceFallback skips optimism entirely;
	// NeverFallback (or anything ≥ it) retries forever.
	AbortThreshold int
	// StickyRuns is how many subsequent executions of a section stay
	// pessimistic after a fallback. Uncontended pessimistic runs decay the
	// budget; contended ones refresh it.
	StickyRuns int
	// Profile, when set, seeds the per-section state from a prior run's
	// lock profile: a section whose profile shows sustained contention
	// (Contended at ProfileRatio) starts sticky-pessimistic instead of
	// rediscovering the contention through aborted attempts.
	Profile *locks.Profile
	// ProfileRatio is the Contended threshold for profile seeding
	// (0 means DefaultProfileRatio).
	ProfileRatio float64
}

// DefaultProfileRatio: a section blocking or falling back in a quarter of
// its profiled runs counts as contended.
const DefaultProfileRatio = 0.25

func (c Config) withDefaults() Config {
	if c.AbortThreshold == 0 {
		c.AbortThreshold = DefaultAbortThreshold
	}
	if c.StickyRuns == 0 {
		c.StickyRuns = DefaultStickyRuns
	}
	if c.ProfileRatio == 0 {
		c.ProfileRatio = DefaultProfileRatio
	}
	return c
}

// Policy holds the adaptive per-section state. All methods are safe for
// concurrent use by the machine's threads.
type Policy struct {
	cfg  Config
	secs sync.Map // section id (int) -> *secState

	optRuns   atomic.Int64
	optAborts atomic.Int64
	pessRuns  atomic.Int64
	fallbacks atomic.Int64
}

// secState is one section's adaptive state: the remaining sticky-fallback
// run budget (0 = optimistic).
type secState struct {
	sticky atomic.Int32
}

// NewPolicy returns a policy with cfg's zero fields defaulted.
func NewPolicy(cfg Config) *Policy {
	return &Policy{cfg: cfg.withDefaults()}
}

func (p *Policy) state(section int) *secState {
	if s, ok := p.secs.Load(section); ok {
		return s.(*secState)
	}
	st := &secState{}
	if prof := p.cfg.Profile; prof != nil {
		// Proactive fallback: a section the profile shows under sustained
		// contention starts with a full sticky budget, skipping the aborted
		// optimistic attempts it would burn rediscovering that. Uncontended
		// pessimistic runs still decay it back to optimism.
		if prof.Sections[section].Contended(p.cfg.ProfileRatio) {
			st.sticky.Store(int32(p.cfg.StickyRuns))
		}
	}
	s, _ := p.secs.LoadOrStore(section, st)
	return s.(*secState)
}

// Decide picks the mode for one execution of a section. For Opt it also
// returns the attempt budget to pass to the transactional runtime
// (0 = unbounded).
func (p *Policy) Decide(section int) (Mode, int) {
	if p.cfg.AbortThreshold < 0 {
		return Pess, 0
	}
	if p.cfg.AbortThreshold >= NeverFallback {
		return Opt, 0
	}
	if p.state(section).sticky.Load() > 0 {
		return Pess, 0
	}
	return Opt, p.cfg.AbortThreshold
}

// RecordOptimistic accounts one optimistic execution that committed after
// aborts failed attempts.
func (p *Policy) RecordOptimistic(section int, aborts int) {
	p.optRuns.Add(1)
	p.optAborts.Add(int64(aborts))
}

// RecordFallback accounts one execution whose optimistic attempts exhausted
// the abort budget; the section turns sticky-pessimistic.
func (p *Policy) RecordFallback(section int, aborts int) {
	p.optAborts.Add(int64(aborts))
	p.fallbacks.Add(1)
	p.state(section).sticky.Store(int32(p.cfg.StickyRuns))
}

// RecordPessimistic accounts one pessimistic execution. A contended run
// (the section's lock acquisitions blocked) refreshes the sticky budget; an
// uncontended one decays it, so quiescent sections drift back to optimism.
func (p *Policy) RecordPessimistic(section int, contended bool) {
	p.pessRuns.Add(1)
	s := p.state(section)
	if contended {
		s.sticky.Store(int32(p.cfg.StickyRuns))
		return
	}
	for {
		v := s.sticky.Load()
		if v <= 0 {
			return
		}
		if s.sticky.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// Sticky returns a section's remaining sticky-pessimistic run budget
// (exposed for tests and diagnostics).
func (p *Policy) Sticky(section int) int {
	return int(p.state(section).sticky.Load())
}

// Stats is a snapshot of the policy's counters.
type Stats struct {
	// OptRuns counts executions that committed optimistically; OptAborts
	// the aborted attempts across all optimistic executions (including
	// those that ended in fallback).
	OptRuns   int64
	OptAborts int64
	// PessRuns counts executions under the lock plan (forced, sticky or
	// fallback); Fallbacks the executions that exhausted the abort budget.
	PessRuns  int64
	Fallbacks int64
}

// Stats returns a snapshot of the policy counters.
func (p *Policy) Stats() Stats {
	return Stats{
		OptRuns:   p.optRuns.Load(),
		OptAborts: p.optAborts.Load(),
		PessRuns:  p.pessRuns.Load(),
		Fallbacks: p.fallbacks.Load(),
	}
}
