package gofront

// Expression lowering into minic text. Calls and composite literals are
// hoisted into fresh temporaries (minic keeps calls at statement level and
// has no literal aggregates), so every returned text is a side-effect-free
// minic expression. Shared-slot reads and writes are recorded into the
// sidecar as they lower.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var binOps = map[token.Token]string{
	token.ADD: "+", token.SUB: "-", token.MUL: "*", token.QUO: "/", token.REM: "%",
	token.EQL: "==", token.NEQ: "!=", token.LSS: "<", token.LEQ: "<=",
	token.GTR: ">", token.GEQ: ">=", token.LAND: "&&", token.LOR: "||",
}

// isIdentText reports whether s is a bare identifier (no wrapping needed
// before -> or [ postfix operators).
func isIdentText(s string) bool {
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func postfixBase(s string) string {
	if isIdentText(s) {
		return s
	}
	return "(" + s + ")"
}

func (f *fnLowerer) rvalue(e ast.Expr) (string, error) {
	if txt, ok := f.l.constText(e); ok {
		return txt, nil
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return f.rvalue(x.X)
	case *ast.Ident:
		return f.identText(x, false)
	case *ast.SelectorExpr:
		return f.selectorText(x, false)
	case *ast.StarExpr:
		if t := f.l.info.Types[x].Type; t != nil {
			if _, isStruct := f.l.structValue(t); isStruct {
				// *p where p points to a struct: the pointer itself is our
				// representation of the value (only legal as a select base).
				return f.rvalue(x.X)
			}
		}
		inner, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		return "*(" + inner + ")", nil
	case *ast.UnaryExpr:
		return f.unaryText(x)
	case *ast.BinaryExpr:
		op, ok := binOps[x.Op]
		if !ok {
			return "", errAt(x.OpPos, "operator %s is outside the subset", x.Op)
		}
		lt, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		rt, err := f.rvalue(x.Y)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", lt, op, rt), nil
	case *ast.CallExpr:
		return f.callRvalue(x)
	case *ast.CompositeLit:
		return f.compositeText(x)
	case *ast.IndexExpr:
		base, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		idx, err := f.rvalue(x.Index)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", postfixBase(base), idx), nil
	case *ast.FuncLit:
		return "", errAt(x.Pos(), "function literals are only supported directly under a go statement")
	case *ast.TypeAssertExpr:
		return "", errAt(x.Pos(), "type assertions (interfaces) are outside the subset")
	case *ast.SliceExpr:
		return "", errAt(x.Pos(), "slicing is outside the subset")
	}
	return "", errAt(e.Pos(), "expression form %T is outside the subset", e)
}

func (f *fnLowerer) unaryText(x *ast.UnaryExpr) (string, error) {
	switch x.Op {
	case token.NOT:
		inner, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		return "!(" + inner + ")", nil
	case token.SUB:
		inner, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		return "-(" + inner + ")", nil
	case token.AND:
		switch target := ast.Unparen(x.X).(type) {
		case *ast.Ident:
			obj := f.l.info.Uses[target]
			if g := f.l.globalOf[obj]; g != nil {
				if g.kind != gSlot {
					return "", errAt(x.Pos(), "cannot take the address of a sync object")
				}
				if g.pointerized {
					return g.minicName, nil // the pointer IS the value's address
				}
				return "&" + g.minicName, nil
			}
			if obj != nil {
				if f.pointerized[obj] {
					return f.rename[obj], nil
				}
				if n, ok := f.rename[obj]; ok {
					return "&" + n, nil
				}
			}
			return "", errAt(x.Pos(), "cannot take the address of %s", target.Name)
		case *ast.CompositeLit:
			return f.compositeText(target)
		}
		return "", errAt(x.Pos(), "& is only supported on variables and composite literals")
	}
	return "", errAt(x.Pos(), "operator %s is outside the subset", x.Op)
}

func (f *fnLowerer) identText(id *ast.Ident, write bool) (string, error) {
	obj := f.l.info.Uses[id]
	switch o := obj.(type) {
	case *types.Nil:
		return "null", nil
	case *types.Var:
		if g := f.l.globalOf[obj]; g != nil {
			switch g.kind {
			case gSlot:
				f.record(obj.Name(), write, id.Pos())
				return g.minicName, nil
			case gRejected:
				return "", errAt(id.Pos(), "uses rejected package variable %s", id.Name)
			default:
				return "", errAt(id.Pos(), "sync object %s cannot be used as a value", id.Name)
			}
		}
		if f.wgLocals[obj] {
			return "", errAt(id.Pos(), "WaitGroup %s cannot be used as a value", id.Name)
		}
		if n, ok := f.rename[obj]; ok {
			return n, nil
		}
		return "", errAt(id.Pos(), "identifier %s did not lower (captured or out-of-subset binding)", id.Name)
	case *types.Func:
		return "", errAt(id.Pos(), "function values are outside the subset")
	case *types.Const:
		return "", errAt(id.Pos(), "constant %s is not an integer constant", id.Name)
	case *types.Builtin, *types.TypeName, *types.PkgName:
		return "", errAt(id.Pos(), "%s cannot be used as a value", id.Name)
	case nil:
		return "", errAt(id.Pos(), "identifier %s did not resolve", id.Name)
	default:
		_ = o
		return "", errAt(id.Pos(), "identifier %s is outside the subset", id.Name)
	}
}

func (f *fnLowerer) selectorText(x *ast.SelectorExpr, write bool) (string, error) {
	selection := f.l.info.Selections[x]
	if selection == nil {
		return "", errAt(x.Pos(), "qualified identifier %s is outside the subset", x.Sel.Name)
	}
	if selection.Kind() != types.FieldVal {
		return "", errAt(x.Pos(), "method values are outside the subset")
	}
	if len(selection.Index()) > 1 {
		return "", errAt(x.Pos(), "promoted fields are outside the subset")
	}
	sName, _, ok := goStructName(selection.Recv())
	if !ok {
		return "", errAt(x.Pos(), "field select on a non-struct value")
	}
	vobj, _ := selection.Obj().(*types.Var)
	if vobj == nil {
		return "", errAt(x.Pos(), "field did not resolve")
	}
	if isMutexType(vobj.Type()) || isWaitGroupType(vobj.Type()) {
		return "", errAt(x.Pos(), "sync field %s cannot be used as a value", vobj.Name())
	}
	var srec *structRec
	for _, sr := range f.l.structs {
		if sr.obj.Name() == sName {
			srec = sr
			break
		}
	}
	if srec == nil || !srec.ok {
		return "", errAt(x.Pos(), "field select on rejected or foreign struct %s", sName)
	}
	fr := srec.fieldByGo(vobj.Name())
	if fr == nil {
		return "", errAt(x.Pos(), "field %s.%s did not lower", sName, vobj.Name())
	}
	base, err := f.rvalue(x.X)
	if err != nil {
		return "", err
	}
	f.record(sName+"."+vobj.Name(), write, x.Sel.Pos())
	return postfixBase(base) + "->" + fr.minicName, nil
}

// slotOf resolves e to a sidecar slot identity when it denotes one directly.
func (f *fnLowerer) slotOf(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := f.l.info.Uses[x]
		if g := f.l.globalOf[obj]; g != nil && g.kind == gSlot {
			return obj.Name()
		}
	case *ast.SelectorExpr:
		selection := f.l.info.Selections[x]
		if selection != nil && selection.Kind() == types.FieldVal {
			if sName, _, ok := goStructName(selection.Recv()); ok {
				return sName + "." + x.Sel.Name
			}
		}
	case *ast.IndexExpr:
		return f.slotOf(x.X)
	}
	return ""
}

func (f *fnLowerer) lvalue(e ast.Expr) (string, error) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return f.lvalue(x.X)
	case *ast.Ident:
		return f.identText(x, true)
	case *ast.SelectorExpr:
		return f.selectorText(x, true)
	case *ast.StarExpr:
		if t := f.l.info.Types[x].Type; t != nil {
			if _, isStruct := f.l.structValue(t); isStruct {
				return "", errAt(x.Pos(), "struct-value assignment is outside the subset")
			}
		}
		inner, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		return "*(" + inner + ")", nil
	case *ast.IndexExpr:
		base, err := f.rvalue(x.X)
		if err != nil {
			return "", err
		}
		if slot := f.slotOf(x.X); slot != "" {
			// Element writes count as writes to the owning slot.
			f.record(slot, true, x.Pos())
		}
		idx, err := f.rvalue(x.Index)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", postfixBase(base), idx), nil
	}
	return "", errAt(e.Pos(), "assignment target form %T is outside the subset", e)
}

// compositeText lowers a composite literal by allocating and filling a fresh
// object, returning the temp holding the pointer (structs) or the array
// base. Writes into the fresh object are thread-local and not recorded.
func (f *fnLowerer) compositeText(cl *ast.CompositeLit) (string, error) {
	t := f.l.info.Types[cl].Type
	if t == nil {
		return "", errAt(cl.Pos(), "composite literal type did not resolve")
	}
	if srec, isStruct := f.l.structValue(t); isStruct {
		if srec == nil || !srec.ok {
			return "", errAt(cl.Pos(), "composite literal of a rejected or foreign struct type")
		}
		tmp := f.tmp()
		f.e.emitf(cl.Pos(), "%s* %s = new %s;", srec.minicName, tmp, srec.minicName)
		for i, elt := range cl.Elts {
			goField, val, err := f.compositeField(srec, i, elt)
			if err != nil {
				return "", err
			}
			fr := srec.fieldByGo(goField)
			rv, err := f.rvalue(val)
			if err != nil {
				return "", err
			}
			f.e.emitf(val.Pos(), "%s->%s = %s;", tmp, fr.minicName, rv)
		}
		return tmp, nil
	}
	if sl, ok := types.Unalias(t).(*types.Slice); ok {
		elemMt, err := f.l.mtypeOf(sl.Elem())
		if err != nil {
			return "", errAt(cl.Pos(), "slice literal: %v", err)
		}
		for _, elt := range cl.Elts {
			if _, isKV := elt.(*ast.KeyValueExpr); isKV {
				return "", errAt(elt.Pos(), "keyed slice literals are outside the subset")
			}
		}
		tmp := f.tmp()
		f.e.emitf(cl.Pos(), "%s* %s = new %s[%d];", elemMt, tmp, elemMt, len(cl.Elts))
		for i, elt := range cl.Elts {
			rv, err := f.rvalue(elt)
			if err != nil {
				return "", err
			}
			f.e.emitf(elt.Pos(), "%s[%d] = %s;", tmp, i, rv)
		}
		return tmp, nil
	}
	return "", errAt(cl.Pos(), "composite literal type is outside the subset")
}

// compositeField resolves element i of a struct composite literal to the
// Go field name and value expression.
func (f *fnLowerer) compositeField(srec *structRec, i int, elt ast.Expr) (string, ast.Expr, error) {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		key, isIdent := kv.Key.(*ast.Ident)
		if !isIdent {
			return "", nil, errAt(kv.Pos(), "non-identifier composite keys are outside the subset")
		}
		if srec.mutexes[key.Name] || srec.wgFields[key.Name] {
			return "", nil, errAt(kv.Pos(), "sync fields cannot be initialized in a composite literal")
		}
		if srec.fieldByGo(key.Name) == nil {
			return "", nil, errAt(kv.Pos(), "unknown field %s in composite literal", key.Name)
		}
		return key.Name, kv.Value, nil
	}
	if len(srec.mutexes) > 0 || len(srec.wgFields) > 0 || i >= len(srec.fields) {
		return "", nil, errAt(elt.Pos(), "positional composite literals are only supported for structs without sync fields")
	}
	return srec.fields[i].goName, elt, nil
}

// callRvalue lowers a call in expression position: conversions are no-ops,
// make/new allocate, and real calls hoist into a temp.
func (f *fnLowerer) callRvalue(call *ast.CallExpr) (string, error) {
	if tv, ok := f.l.info.Types[call.Fun]; ok && tv.IsType() {
		mt, err := f.l.mtypeOf(tv.Type)
		if err != nil {
			return "", errAt(call.Pos(), "conversion: %v", err)
		}
		_ = mt // all subset conversions are representation no-ops
		return f.rvalue(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := f.l.info.Uses[id].(*types.Builtin); isBuiltin {
			return f.builtinRvalue(b.Name(), call)
		}
	}
	text, isVoid, retMt, err := f.callExprRet(call, false)
	if err != nil {
		return "", err
	}
	if isVoid {
		return "", errAt(call.Pos(), "void call used as a value")
	}
	tmp := f.tmp()
	f.e.emitf(call.Pos(), "%s %s = %s;", retMt, tmp, text)
	return tmp, nil
}

func (f *fnLowerer) builtinRvalue(name string, call *ast.CallExpr) (string, error) {
	switch name {
	case "make":
		t := f.l.info.Types[call].Type
		sl, ok := types.Unalias(t).(*types.Slice)
		if !ok {
			return "", errAt(call.Pos(), "make is only supported for slices")
		}
		elemMt, err := f.l.mtypeOf(sl.Elem())
		if err != nil {
			return "", errAt(call.Pos(), "make: %v", err)
		}
		if len(call.Args) < 2 {
			return "", errAt(call.Pos(), "make needs an explicit length")
		}
		n, err := f.rvalue(call.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("new %s[%s]", elemMt, n), nil
	case "new":
		t := f.l.info.Types[call.Args[0]].Type
		if srec, isStruct := f.l.structValue(t); isStruct && srec != nil && srec.ok {
			return "new " + srec.minicName, nil
		}
		mt, err := f.l.mtypeOf(t)
		if err != nil {
			return "", errAt(call.Pos(), "new: %v", err)
		}
		return "new " + mt.String(), nil
	case "len", "cap":
		return "", errAt(call.Pos(), "%s is outside the subset (track lengths in explicit variables)", name)
	}
	return "", errAt(call.Pos(), "builtin %s is outside the subset", name)
}

// callExpr lowers a call to a package function or method, recording the
// call edge. Used both for statements and (via callRvalue) expressions.
func (f *fnLowerer) callExpr(call *ast.CallExpr, spawn bool) (string, bool, error) {
	text, isVoid, _, err := f.callExprRet(call, spawn)
	return text, isVoid, err
}

func (f *fnLowerer) callExprRet(call *ast.CallExpr, spawn bool) (string, bool, mtype, error) {
	var rec *funcRec
	recvText := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := f.l.info.Uses[fun]
		fobj, isFunc := obj.(*types.Func)
		if !isFunc {
			return "", false, mtype{}, errAt(call.Pos(), "call target %s is outside the subset", fun.Name)
		}
		rec = f.l.funcOf[fobj]
		if rec == nil {
			return "", false, mtype{}, errAt(call.Pos(), "call to %s is outside the subset", fun.Name)
		}
	case *ast.SelectorExpr:
		selection := f.l.info.Selections[fun]
		if selection == nil || selection.Kind() != types.MethodVal {
			return "", false, mtype{}, errAt(call.Pos(), "call form is outside the subset")
		}
		rec = f.l.funcOf[selection.Obj()]
		if rec == nil {
			return "", false, mtype{}, errAt(call.Pos(), "method %s is outside the subset", fun.Sel.Name)
		}
		rt, err := f.rvalue(fun.X)
		if err != nil {
			return "", false, mtype{}, err
		}
		recvText = rt
	default:
		return "", false, mtype{}, errAt(call.Pos(), "call form %T is outside the subset", call.Fun)
	}
	if rec.state == fnAbsent {
		return "", false, mtype{}, errAt(call.Pos(), "calls rejected function %s (%s)", rec.goName, rec.rejectMsg)
	}
	var args []string
	if rec.hasRecv {
		if recvText == "" {
			return "", false, mtype{}, errAt(call.Pos(), "method called without a receiver")
		}
		args = append(args, recvText)
	}
	rest, err := f.callArgsAfterRecv(rec, call.Args)
	if err != nil {
		return "", false, mtype{}, err
	}
	args = append(args, rest...)
	f.recordCall(rec.minicName, spawn, call.Pos())
	ret := mtype{base: "void"}
	if rec.ret != nil {
		ret = *rec.ret
	}
	return fmt.Sprintf("%s(%s)", rec.minicName, strings.Join(args, ", ")), rec.ret == nil, ret, nil
}

// callArgs lowers a full argument list against rec's parameters (no
// receiver), skipping dropped WaitGroup parameters.
func (f *fnLowerer) callArgs(rec *funcRec, args []ast.Expr) ([]string, error) {
	return f.callArgsAfterRecv(rec, args)
}

func (f *fnLowerer) callArgsAfterRecv(rec *funcRec, args []ast.Expr) ([]string, error) {
	params := rec.params
	if rec.hasRecv {
		params = params[1:]
	}
	if len(args) != len(params) {
		return nil, errAt(argPos(args), "argument count mismatch calling %s", rec.goName)
	}
	var out []string
	for i, arg := range args {
		if params[i].wg {
			continue // WaitGroup plumbing is dropped; spawns are tracked directly
		}
		rv, err := f.rvalue(arg)
		if err != nil {
			return nil, err
		}
		out = append(out, rv)
	}
	return out, nil
}

func argPos(args []ast.Expr) token.Pos {
	if len(args) > 0 {
		return args[0].Pos()
	}
	return token.NoPos
}
