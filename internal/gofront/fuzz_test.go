package gofront_test

import (
	"os"
	"path/filepath"
	"testing"

	"lockinfer/internal/gofront"
	"lockinfer/internal/pipeline"
)

// fuzzSeeds loads the real-Go corpus (every buggy/clean pair under
// testdata/goprogs) plus a few handwritten seeds covering the frontend's
// trickier paths: recovered spans with hoisted locals, directives, lifted
// goroutine literals, WaitGroups, and out-of-subset constructs.
func fuzzSeeds(f *testing.F) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "goprogs", "*.go"))
	if err != nil {
		f.Fatalf("globbing corpus: %v", err)
	}
	if len(matches) == 0 {
		f.Fatal("no corpus seeds found")
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading %s: %v", path, err)
		}
		f.Add(string(data))
	}
	f.Add("package p\n\nvar x int\n\nfunc f() { x = 1 }\n")
	f.Add("package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar g int\n\nfunc f() int {\n\tmu.Lock()\n\tv := g\n\tmu.Unlock()\n\treturn v\n}\n")
	f.Add("package p\n\nimport \"sync\"\n\nfunc f() {\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo func() {\n\t\twg.Done()\n\t}()\n\twg.Wait()\n}\n")
	f.Add("package p\n\nvar g int\n\nfunc f() {\n\t//lockinfer:atomic\n\t{\n\t\tg++\n\t}\n}\n")
	f.Add("package p\n\nfunc f(ch chan int) { <-ch }\n")
	f.Add("package p\n\ntype T struct{ n int }\n\nfunc f() int {\n\tt := &T{n: 3}\n\tfor i := 0; i < 4; i++ {\n\t\tt.n += i\n\t}\n\treturn t.n\n}\n")
}

// FuzzGoFront hammers the real-Go frontend: any input may be rejected (as a
// whole, or declaration by declaration) but must never panic, and whenever
// a package lowers, the minic program it emits must compile through the full
// pipeline — gofront only ever hands the rest of the compiler well-formed
// programs, even under partial lowering.
func FuzzGoFront(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		pkg, err := gofront.LowerSource("fuzz.go", src)
		if err != nil {
			return
		}
		if _, err := pipeline.Compile(pkg.Minic, pipeline.Options{Trace: pipeline.NewTrace()}); err != nil {
			t.Fatalf("lowered package does not compile: %v\n--- minic ---\n%s", err, pkg.Minic)
		}
	})
}
