package gofront

// Type checking. The frontend runs the real go/types checker over the
// package, but hermetically: the only importable package is a synthesized
// "sync" (Mutex, RWMutex, WaitGroup with their locking/waiting methods),
// so lowering needs no compiled standard library, no module cache and no
// network. Type errors do not abort the lowering — they are collected and
// charged to the declaration they occur in, which is what makes partial
// lowering of real files work.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// syncPackage synthesizes the subset of package sync the frontend models.
func syncPackage() *types.Package {
	pkg := types.NewPackage("sync", "sync")
	mkType := func(name string, methods []string) *types.Named {
		tn := types.NewTypeName(token.NoPos, pkg, name, nil)
		named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
		for _, m := range methods {
			recv := types.NewVar(token.NoPos, pkg, "x", types.NewPointer(named))
			sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
			named.AddMethod(types.NewFunc(token.NoPos, pkg, m, sig))
		}
		pkg.Scope().Insert(tn)
		return named
	}
	mkType("Mutex", []string{"Lock", "Unlock", "TryLock"})
	mkType("RWMutex", []string{"Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock"})
	// WaitGroup.Add takes an int; model the signature faithfully so calls
	// type-check.
	wg := mkType("WaitGroup", []string{"Done", "Wait"})
	recv := types.NewVar(token.NoPos, pkg, "x", types.NewPointer(wg))
	delta := types.NewVar(token.NoPos, pkg, "delta", types.Typ[types.Int])
	sig := types.NewSignatureType(recv, nil, nil, types.NewTuple(delta), nil, false)
	wg.AddMethod(types.NewFunc(token.NoPos, pkg, "Add", sig))
	pkg.MarkComplete()
	return pkg
}

// syncImporter resolves "sync" to the synthesized package and refuses
// everything else (the resulting type errors become per-declaration
// rejections).
type syncImporter struct{ sync *types.Package }

func (im *syncImporter) Import(path string) (*types.Package, error) {
	if path == "sync" {
		if im.sync == nil {
			im.sync = syncPackage()
		}
		return im.sync, nil
	}
	return nil, fmt.Errorf("import %q is outside the lowering subset (only \"sync\" is modeled)", path)
}

// typeErrors runs the checker, returning the populated info plus the
// collected hard errors (soft errors — unused variables and imports — do
// not affect lowering soundness and are dropped).
func typecheck(fset *token.FileSet, files []*ast.File, name string) (*types.Info, *types.Package, []types.Error) {
	var hard []types.Error
	conf := types.Config{
		Importer: &syncImporter{},
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && !te.Soft {
				hard = append(hard, te)
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Check returns the first error; everything is in `hard` already.
	tpkg, _ := conf.Check(name, fset, files, info)
	return info, tpkg, hard
}

// isSyncType reports whether t (possibly behind pointers) is the named
// sync type with the given name.
func isSyncType(t types.Type, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

func isMutexType(t types.Type) bool {
	return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
}

func isWaitGroupType(t types.Type) bool { return isSyncType(t, "WaitGroup") }
